(* Parallel scheduler equivalence: the jobs=4 worker-pool schedule must be
   observationally identical to the serial jobs=1 schedule — same
   per-instruction constants, same shared-hole encodings, same hole
   bindings — on both engine paths:

   - the RV32I decoder (the examples/riscv_decoder problem): independent
     per-instruction CEGIS loops, fanned out over the Pool;
   - the GCD accelerator (the examples/gcd_accelerator problem): Shared
     FSM-encoding holes force the serial joint fallback, which must simply
     ignore [jobs].

   Determinism rests on structural term ordering (Term.struct_compare) and
   index-ordered merging; these tests are the regression net for both. *)

let solve ~jobs problem =
  let options = Synth.Engine.(default_options |> with_jobs jobs) in
  match Synth.Engine.synthesize ~options problem with
  | Synth.Engine.Solved s -> s
  | _ -> Alcotest.fail "synthesis failed"

let check_same name mk =
  let s1 = solve ~jobs:1 (mk ()) in
  let s4 = solve ~jobs:4 (mk ()) in
  Alcotest.(check bool) (name ^ ": per_instr identical") true
    (s1.Synth.Engine.per_instr = s4.Synth.Engine.per_instr);
  Alcotest.(check bool) (name ^ ": shared identical") true
    (s1.Synth.Engine.shared = s4.Synth.Engine.shared);
  Alcotest.(check bool) (name ^ ": bindings identical") true
    (s1.Synth.Engine.bindings = s4.Synth.Engine.bindings)

let test_riscv_decoder () =
  check_same "rv32i" (fun () -> Designs.Riscv_single.problem Isa.Rv32.RV32I)

let test_gcd () = check_same "gcd" (fun () -> Designs.Gcd.problem ())

let test_verify_jobs () =
  (* verification fan-out: verdict list keeps instruction order and every
     verdict matches the serial run *)
  let problem = Designs.Accumulator.problem () in
  let problem =
    { problem with
      Synth.Engine.design = Designs.Accumulator.reference_design () }
  in
  let v1 = Synth.Engine.verify ~jobs:1 problem in
  let v4 = Synth.Engine.verify ~jobs:4 problem in
  Alcotest.(check int) "same number of verdicts" (List.length v1)
    (List.length v4);
  List.iter2
    (fun (n1, d1) (n2, d2) ->
      Alcotest.(check string) "instruction order preserved" n1 n2;
      let same =
        match (d1, d2) with
        | Synth.Engine.Verified, Synth.Engine.Verified
        | Synth.Engine.Violated _, Synth.Engine.Violated _
        | Synth.Engine.Inconclusive, Synth.Engine.Inconclusive ->
            true
        | _ -> false
      in
      Alcotest.(check bool) ("verdict for " ^ n1) true same)
    v1 v4

let test_jobs_validation () =
  (match Synth.Engine.(default_options |> with_jobs 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "with_jobs 0 must be rejected");
  match
    Synth.Engine.synthesize
      ~options:
        {
          Synth.Engine.default_options with
          Synth.Engine.schedule =
            { Synth.Engine.Schedule.mode = Synth.Engine.Per_instruction; jobs = -2 };
        }
      (Designs.Accumulator.problem ())
  with
  | exception Synth.Engine.Engine_error _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "synthesize must reject jobs < 1"

let () =
  Alcotest.run "parallel"
    [ ("equivalence",
       [ Alcotest.test_case "riscv decoder, independent path" `Quick
           test_riscv_decoder;
         Alcotest.test_case "gcd accelerator, joint fallback" `Quick test_gcd;
         Alcotest.test_case "verify fans out identically" `Quick
           test_verify_jobs;
         Alcotest.test_case "jobs validation" `Quick test_jobs_validation ]) ]
