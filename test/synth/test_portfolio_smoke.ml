(* @portfolio-smoke: a 2-racer portfolio on the accumulator (FSM-style
   shared holes, so the joint CEGIS path — the one the portfolio hooks
   into — carries the verification) must solve, record its races and a
   winner in the tally, and produce bindings identical to a sequential
   run: the determinism contract, end to end. *)

let solve ?options ?race_tally problem =
  match Synth.Engine.synthesize ?options ?race_tally problem with
  | Synth.Engine.Solved s -> s
  | _ -> Alcotest.fail "synthesis did not solve"

let test_smoke () =
  let seq = solve (Designs.Accumulator.problem ()) in
  let tally = Synth.Portfolio.create_tally () in
  let options = Synth.Engine.(default_options |> with_portfolio 2) in
  let raced = solve ~options ~race_tally:tally (Designs.Accumulator.problem ()) in
  Alcotest.(check bool) "hole bindings identical" true
    (seq.Synth.Engine.bindings = raced.Synth.Engine.bindings);
  Alcotest.(check (list string)) "same instructions"
    (List.map fst seq.Synth.Engine.per_instr)
    (List.map fst raced.Synth.Engine.per_instr);
  List.iter2
    (fun (instr, hs) (_, hr) ->
      List.iter2
        (fun (h, v) (h', v') ->
          Alcotest.(check string) (instr ^ " hole name") h h';
          Alcotest.(check bool)
            (Printf.sprintf "%s %s identical" instr h)
            true (Bitvec.equal v v'))
        hs hr)
    seq.Synth.Engine.per_instr raced.Synth.Engine.per_instr;
  let s = Synth.Portfolio.read_tally tally in
  Alcotest.(check bool) "races ran" true (s.Synth.Portfolio.races > 0);
  Alcotest.(check bool) "winners recorded" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Synth.Portfolio.win_counts
    > 0)

let () =
  Alcotest.run "portfolio-smoke"
    [
      ( "portfolio-smoke",
        [ Alcotest.test_case "race = sequential" `Quick test_smoke ] );
    ]
