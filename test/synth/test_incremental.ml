(* Incremental-session equivalence: the engine with [incremental] (the
   default) must be a pure performance change, never a correctness one.

   - On the small case studies (accumulator, pipelined ALU) the incremental
     and fresh modes currently find the exact same hole constants — locked
     in here as a regression net.
   - On larger designs the modes may legitimately diverge (persistent
     learned clauses steer the solver to a different correct model), so
     the guarantee checked there is semantic: the incremental solution's
     completed design passes full refinement verification.
   - Incremental mode must encode strictly fewer SAT clauses than fresh
     mode whenever a loop runs at least two CEGIS iterations — re-blasting
     the shared cones is exactly the work sessions exist to avoid.
   - Within incremental mode, bindings are independent of [jobs] (the
     test_parallel suite covers this for the default options; here the
     fresh mode gets the same check so the escape hatch stays healthy).
   - [Engine.verify] verdicts must agree between incremental and fresh. *)

let solve ~incremental ?(jobs = 1) problem =
  let options =
    Synth.Engine.(default_options |> with_incremental incremental |> with_jobs jobs)
  in
  match Synth.Engine.synthesize ~options problem with
  | Synth.Engine.Solved s -> s
  | _ -> Alcotest.fail "synthesis failed"

let test_same_bindings_small () =
  List.iter
    (fun (name, mk) ->
      let si = solve ~incremental:true (mk ()) in
      let sf = solve ~incremental:false (mk ()) in
      Alcotest.(check bool) (name ^ ": per_instr identical") true
        (si.Synth.Engine.per_instr = sf.Synth.Engine.per_instr);
      Alcotest.(check bool) (name ^ ": shared identical") true
        (si.Synth.Engine.shared = sf.Synth.Engine.shared);
      Alcotest.(check bool) (name ^ ": bindings identical") true
        (si.Synth.Engine.bindings = sf.Synth.Engine.bindings))
    [ ("accumulator", Designs.Accumulator.problem);
      ("alu", Designs.Alu.problem) ]

let test_fewer_clauses () =
  List.iter
    (fun (name, mk) ->
      let si = solve ~incremental:true (mk ()) in
      let sf = solve ~incremental:false (mk ()) in
      let ci = si.Synth.Engine.stats.Synth.Engine.blasted_clauses in
      let cf = sf.Synth.Engine.stats.Synth.Engine.blasted_clauses in
      Alcotest.(check bool)
        (Printf.sprintf "%s: looped (%d iterations)" name
           si.Synth.Engine.stats.Synth.Engine.iterations)
        true
        (si.Synth.Engine.stats.Synth.Engine.iterations >= 2);
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d < %d clauses" name ci cf)
        true (ci < cf))
    [ ("accumulator", Designs.Accumulator.problem);
      ("alu", Designs.Alu.problem) ]

let test_fresh_jobs_determinism () =
  (* the --no-incremental escape hatch keeps the scheduler-independence
     guarantee of the original fresh-solver engine *)
  let s1 = solve ~incremental:false ~jobs:1 (Designs.Alu.problem ()) in
  let s4 = solve ~incremental:false ~jobs:4 (Designs.Alu.problem ()) in
  Alcotest.(check bool) "fresh bindings identical across schedules" true
    (s1.Synth.Engine.per_instr = s4.Synth.Engine.per_instr
    && s1.Synth.Engine.shared = s4.Synth.Engine.shared
    && s1.Synth.Engine.bindings = s4.Synth.Engine.bindings)

let test_rv32_incremental_verifies () =
  (* the large-design guarantee: whatever model the incremental sessions
     steer the search to, the completed core passes refinement checking *)
  let problem = Designs.Riscv_single.problem Isa.Rv32.RV32I in
  let s = solve ~incremental:true ~jobs:4 problem in
  let vproblem =
    { problem with Synth.Engine.design = s.Synth.Engine.completed }
  in
  let verdicts = Synth.Engine.verify ~jobs:4 ~incremental:true vproblem in
  List.iter
    (fun (iname, v) ->
      Alcotest.(check bool) (iname ^ " verified") true
        (v = Synth.Engine.Verified))
    verdicts

let test_verify_modes_agree () =
  let problem = Designs.Accumulator.problem () in
  let problem =
    { problem with
      Synth.Engine.design = Designs.Accumulator.reference_design () }
  in
  let vi = Synth.Engine.verify ~incremental:true problem in
  let vf = Synth.Engine.verify ~incremental:false problem in
  Alcotest.(check int) "same number of verdicts" (List.length vf)
    (List.length vi);
  List.iter2
    (fun (n1, d1) (n2, d2) ->
      Alcotest.(check string) "instruction order preserved" n1 n2;
      let same =
        match (d1, d2) with
        | Synth.Engine.Verified, Synth.Engine.Verified
        | Synth.Engine.Violated _, Synth.Engine.Violated _
        | Synth.Engine.Inconclusive, Synth.Engine.Inconclusive ->
            true
        | _ -> false
      in
      Alcotest.(check bool) ("verdict for " ^ n1) true same)
    vi vf

let () =
  Alcotest.run "incremental"
    [ ("equivalence",
       [ Alcotest.test_case "small designs: identical bindings" `Quick
           test_same_bindings_small;
         Alcotest.test_case "strictly fewer blasted clauses" `Quick
           test_fewer_clauses;
         Alcotest.test_case "fresh mode stays schedule-deterministic" `Quick
           test_fresh_jobs_determinism;
         Alcotest.test_case "rv32 incremental solution verifies" `Quick
           test_rv32_incremental_verifies;
         Alcotest.test_case "verify verdicts agree across modes" `Quick
           test_verify_modes_agree ]) ]
