(* Tests for Synth.Refine — field refinement of verification queries.

   The load-bearing property is equisatisfiability: for any formula that
   conjoins its own pinning equalities, refining must not change the
   solver's sat/unsat answer.  Checked against random formulas and random
   (possibly overlapping, possibly conflicting) pins. *)

let tt = Term.const (Bitvec.ones 1)

(* {1 Unit tests} *)

let test_full_pin () =
  let w = Term.var "rfw" 8 in
  let c = Bitvec.of_int ~width:8 0xab in
  let pre = Term.eq w (Term.const c) in
  let pins = Synth.Refine.collect pre in
  Alcotest.(check bool) "has pins" false (Synth.Refine.is_empty pins);
  Alcotest.(check bool) "base becomes the constant" true
    (Term.equal (Synth.Refine.apply pins w) (Term.const c))

let test_no_pins () =
  let x = Term.var "rfx" 8 and y = Term.var "rfy" 8 in
  let pre = Term.ult x y in
  Alcotest.(check bool) "no pins from an inequality" true
    (Synth.Refine.is_empty (Synth.Refine.collect pre))

let test_field_pin_folds_decode () =
  (* the canonical decode shape: pinning the selector field must fold the
     comparison to true before any solver runs *)
  let w = Term.var "rfd" 8 in
  let sel = Term.extract ~high:7 ~low:4 w in
  let pre = Term.eq sel (Term.const (Bitvec.of_int ~width:4 0xa)) in
  let pins = Synth.Refine.collect pre in
  Alcotest.(check bool) "decode comparison folds to true" true
    (Term.equal (Synth.Refine.apply pins pre) tt);
  (* the unpinned field survives as an extract of the original base *)
  let low = Term.extract ~high:3 ~low:0 w in
  Alcotest.(check bool) "unpinned field unchanged" true
    (Term.equal (Synth.Refine.apply pins low) low)

let test_read_base () =
  (* pins apply to uninterpreted memory reads (the fetched instruction) *)
  let m = { Term.mem_name = "rf_imem"; addr_width = 4; data_width = 8 } in
  let fetch = Term.read m (Term.var "rfpc" 4) in
  let pre =
    Term.eq (Term.extract ~high:3 ~low:0 fetch)
      (Term.const (Bitvec.of_int ~width:4 5))
  in
  let pins = Synth.Refine.collect pre in
  Alcotest.(check bool) "read field folds" true
    (Term.equal
       (Synth.Refine.apply pins (Term.extract ~high:3 ~low:0 fetch))
       (Term.const (Bitvec.of_int ~width:4 5)))

let test_selection_mux_collapses () =
  (* the motivating structure: with the selector pinned, the mux over an
     expensive arm and a cheap arm must collapse to the selected arm *)
  let w = Term.var "rfm" 8 in
  let a = Term.var "rfa" 8 and b = Term.var "rfb" 8 in
  let sel = Term.eq (Term.extract ~high:7 ~low:6 w) (Term.const (Bitvec.of_int ~width:2 2)) in
  let mux = Term.ite sel (Term.mul a b) (Term.add a b) in
  let pre =
    Term.eq (Term.extract ~high:7 ~low:6 w) (Term.const (Bitvec.of_int ~width:2 2))
  in
  let pins = Synth.Refine.collect pre in
  Alcotest.(check bool) "mux collapses to the multiply arm" true
    (Term.equal (Synth.Refine.apply pins mux) (Term.mul a b))

(* {1 The equisatisfiability property} *)

(* A small self-contained formula generator: width-1 terms over one 8-bit
   pinnable base, two free 8-bit variables, and a free boolean. *)

let gen_formula : Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let base = Term.var "qrw" 8 in
  let gen_word8 =
    fix
      (fun self size ->
        if size <= 0 then
          oneofl
            [ base;
              Term.var "qra" 8;
              Term.var "qrb" 8;
              Term.const (Bitvec.of_int ~width:8 0x5c) ]
        else
          let sub = self (size / 2) in
          oneof
            [ map2 Term.add sub sub;
              map2 Term.sub sub sub;
              map2 Term.band sub sub;
              map2 Term.bor sub sub;
              map2 Term.bxor sub sub;
              map2 Term.mul sub sub;
              map Term.bnot sub;
              (* extract a field of the base and widen it back *)
              ( 0 -- 4 >>= fun lo ->
                let hi = min 7 (lo + 3) in
                map
                  (fun s ->
                    Term.concat
                      (Term.extract ~high:hi ~low:lo base)
                      (Term.extract ~high:(6 - (hi - lo)) ~low:0 s))
                  sub );
              map3 Term.ite
                (map2 Term.eq sub sub)
                sub sub ])
      3
  in
  let open QCheck.Gen in
  oneof
    [ map2 Term.eq gen_word8 gen_word8;
      map2 Term.ult gen_word8 gen_word8;
      map2 Term.slt gen_word8 gen_word8;
      map2
        (fun a b -> Term.band (Term.eq a b) (Term.var "qrc" 1))
        gen_word8 gen_word8 ]

let gen_pins : Term.t QCheck.Gen.t =
  (* 0..3 random field pins on the base; ranges may overlap and conflict *)
  let open QCheck.Gen in
  let base = Term.var "qrw" 8 in
  let gen_pin =
    0 -- 7 >>= fun lo ->
    0 -- (7 - lo) >>= fun len ->
    let hi = lo + len in
    0 -- ((1 lsl (len + 1)) - 1) >>= fun v ->
    return
      (Term.eq
         (Term.extract ~high:hi ~low:lo base)
         (Term.const (Bitvec.of_int ~width:(len + 1) v)))
  in
  0 -- 3 >>= fun n ->
  list_size (return n) gen_pin >>= fun pins ->
  return (List.fold_left Term.band tt pins)

let sat_answer t =
  match Solver.check ~budget:100_000 [ t ] with
  | Solver.Unsat _ -> Some false
  | Solver.Sat _ -> Some true
  | Solver.Unknown _ -> None

let prop_equisat =
  QCheck.Test.make ~count:400 ~name:"refined query is equisatisfiable"
    (QCheck.make QCheck.Gen.(pair gen_pins gen_formula))
    (fun (pre, f) ->
      let violation = Term.band pre f in
      let refined = Synth.Refine.apply (Synth.Refine.collect pre) violation in
      match (sat_answer violation, sat_answer refined) with
      | Some a, Some b -> a = b
      | _ -> QCheck.assume_fail ())

let prop_refined_not_larger =
  QCheck.Test.make ~count:400 ~name:"refinement never grows the DAG much"
    (QCheck.make QCheck.Gen.(pair gen_pins gen_formula))
    (fun (pre, f) ->
      (* each refined base adds at most a handful of concat/const nodes; a
         blowup here would mean the rewrite recurses somewhere it should
         not *)
      let violation = Term.band pre f in
      let refined = Synth.Refine.apply (Synth.Refine.collect pre) violation in
      Term.size refined <= Term.size violation + 16)

let () =
  Alcotest.run "refine"
    [ ("refine",
       [ Alcotest.test_case "full pin" `Quick test_full_pin;
         Alcotest.test_case "no pins" `Quick test_no_pins;
         Alcotest.test_case "field pin folds decode" `Quick
           test_field_pin_folds_decode;
         Alcotest.test_case "read base" `Quick test_read_base;
         Alcotest.test_case "selection mux collapses" `Quick
           test_selection_mux_collapses ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_equisat;
         QCheck_alcotest.to_alcotest prop_refined_not_larger ]) ]
