(* The resilience layer end to end: the retry-ladder arithmetic, pool
   task retries, and whole-engine recovery under installed fault plans.

   The key acceptance property is recovery transparency: a run that hits
   spurious Unknowns, a worker crash, and a corrupted model must not just
   still solve — it must emit bit-for-bit the bindings of the fault-free
   run, at any job count.  Spurious Unknowns leave solver state untouched,
   corruption damages only the returned model copy (a session retry
   reproduces the honest model via phase saving), and crashed tasks replay
   on a fresh arena, so nothing a planned fault does can steer the search.

   Fault plans are process-global: every test installs under Fun.protect
   so a failure cannot leak a plan into later tests. *)

let with_plan s f =
  Fault.install (Fault.parse s);
  Fun.protect ~finally:Fault.clear f

(* ---------- ladder arithmetic ---------- *)

let test_policy_validation () =
  let rejects f =
    Alcotest.(check bool) "Invalid_argument" true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  rejects (fun () -> Synth.Resilience.make ~retries:(-1) ());
  rejects (fun () -> Synth.Resilience.make ~escalation_factor:0 ());
  rejects (fun () -> Synth.Engine.(default_options |> with_retries (-1)));
  rejects (fun () -> Synth.Engine.(default_options |> with_escalation_factor 0))

let test_budget_ladder () =
  let p = Synth.Resilience.make ~retries:2 ~escalation_factor:4 () in
  Alcotest.(check int) "attempts" 3 (Synth.Resilience.attempts p);
  (* total 1600 over 3 attempts at factor 4: 100, 400, then the rest *)
  let b k remaining =
    Synth.Resilience.attempt_budget p ~total:1600 ~remaining ~attempt:k
  in
  Alcotest.(check int) "first attempt" 100 (b 1 1600);
  Alcotest.(check int) "second attempt" 400 (b 2 1500);
  Alcotest.(check int) "final gets the rest" 1100 (b 3 1100);
  Alcotest.(check int) "capped by remaining" 50 (b 2 50);
  (* the unlimited default saturates instead of overflowing: attempt 2 of
     a max_int ladder is b1 * 4 = (max_int / 16) * 4, huge and positive *)
  let unlimited k =
    Synth.Resilience.attempt_budget p ~total:max_int ~remaining:max_int
      ~attempt:k
  in
  Alcotest.(check bool) "saturating arithmetic" true
    (unlimited 2 >= max_int / 8);
  Alcotest.(check int) "final attempt unlimited" max_int (unlimited 3)

let test_deadline_slicing () =
  let p = Synth.Resilience.make ~retries:2 ~escalation_factor:2 () in
  let slice = Synth.Resilience.slice_deadline p ~now:100.0 in
  Alcotest.(check bool) "no hard deadline" true
    (slice ~hard:None ~tasks_left:4 ~attempt:1 = None);
  (* 40s left over 4 tasks = 10s base share, doubling per attempt *)
  let at k = slice ~hard:(Some 140.0) ~tasks_left:4 ~attempt:k in
  Alcotest.(check (option (float 1e-9))) "first share" (Some 110.0) (at 1);
  Alcotest.(check (option (float 1e-9))) "second share" (Some 120.0) (at 2);
  Alcotest.(check (option (float 1e-9))) "final gets hard" (Some 140.0) (at 3);
  (* shares clamp to the hard deadline *)
  Alcotest.(check (option (float 1e-9)))
    "clamped" (Some 140.0)
    (slice ~hard:(Some 140.0) ~tasks_left:1 ~attempt:2)

(* ---------- pool task retries ---------- *)

let test_pool_retry_recovers () =
  with_plan "crash@2" (fun () ->
      let retried = Atomic.make 0 in
      let results =
        Synth.Pool.map_arena ~jobs:1 ~make:(fun () -> ()) ~retries:1 ~retried
          (fun () x -> x * 10)
          [ 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "all results" [ 10; 20; 30 ] results;
      Alcotest.(check int) "one retry" 1 (Atomic.get retried))

let test_pool_retry_exhausts () =
  (* both attempts of the first task crash: deterministic blame *)
  with_plan "crash@1,crash@2" (fun () ->
      Alcotest.(check bool) "exhausted retries re-raise" true
        (match
           Synth.Pool.map_arena ~jobs:1 ~make:(fun () -> ()) ~retries:1
             (fun () x -> x)
             [ 1 ]
         with
        | exception Fault.Injected_crash _ -> true
        | _ -> false))

(* ---------- whole-engine recovery ---------- *)

let solve ?(jobs = 1) ?retries ?validate_models problem =
  let options =
    Synth.Engine.(
      default_options |> with_jobs jobs
      |> Option.fold ~none:Fun.id ~some:with_retries retries
      |> Option.fold ~none:Fun.id ~some:with_validate_models validate_models)
  in
  match Synth.Engine.synthesize ~options problem with
  | Synth.Engine.Solved s -> s
  | _ -> Alcotest.fail "synthesis failed"

let test_spurious_unknowns_recover () =
  let clean = solve (Designs.Accumulator.problem ()) in
  with_plan "unknown@1,unknown@2" (fun () ->
      let s = solve (Designs.Accumulator.problem ()) in
      let st = s.Synth.Engine.stats in
      Alcotest.(check int) "two ladder retries" 2
        st.Synth.Engine.retried_queries;
      Alcotest.(check int) "one fresh-solver fallback" 1
        st.Synth.Engine.degraded_queries;
      Alcotest.(check bool) "bindings identical to fault-free" true
        (s.Synth.Engine.bindings = clean.Synth.Engine.bindings))

let test_corrupt_model_rejected () =
  let clean = solve (Designs.Accumulator.problem ()) in
  with_plan "corrupt@1,seed=7" (fun () ->
      let s = solve ~validate_models:true (Designs.Accumulator.problem ()) in
      let st = s.Synth.Engine.stats in
      Alcotest.(check int) "corruption detected" 1
        st.Synth.Engine.validation_failures;
      Alcotest.(check int) "recovered by one retry" 1
        st.Synth.Engine.retried_queries;
      Alcotest.(check int) "no degradation needed" 0
        st.Synth.Engine.degraded_queries;
      (* the session retry reproduces the honest model, so the corruption
         leaves no trace in the result *)
      Alcotest.(check bool) "bindings identical to fault-free" true
        (s.Synth.Engine.bindings = clean.Synth.Engine.bindings))

let test_corrupt_without_validation_undetected () =
  (* negative control: with validation off the corrupted model is trusted
     and the counters stay at zero — this is exactly what validate_models
     buys.  (The run may still solve or fail downstream; only the counters
     are the point here.) *)
  with_plan "corrupt@1,seed=7" (fun () ->
      let options = Synth.Engine.default_options in
      let st =
        match
          Synth.Engine.synthesize ~options (Designs.Accumulator.problem ())
        with
        | Synth.Engine.Solved s -> s.Synth.Engine.stats
        | Synth.Engine.Timeout st
        | Synth.Engine.Unrealizable { stats = st; _ }
        | Synth.Engine.Union_failed { stats = st; _ }
        | Synth.Engine.Not_independent { stats = st; _ } ->
            st
      in
      Alcotest.(check int) "nothing rejected" 0
        st.Synth.Engine.validation_failures)

let test_corrupt_degrades_to_fresh () =
  (* with retrying disabled a rejected model must still not be emitted:
     the ladder grants one bonus fresh-solver rung *)
  with_plan "corrupt@1,seed=7" (fun () ->
      let s =
        solve ~retries:0 ~validate_models:true (Designs.Accumulator.problem ())
      in
      let st = s.Synth.Engine.stats in
      Alcotest.(check int) "corruption detected" 1
        st.Synth.Engine.validation_failures;
      Alcotest.(check bool) "fresh-solver fallback ran" true
        (st.Synth.Engine.degraded_queries >= 1))

let rv32_plan = "unknown@5,unknown@40,corrupt@12,crash@2,seed=7"

let test_rv32_fault_transparency () =
  (* the acceptance criterion: rv32-single under spurious Unknowns, a
     worker crash, and a corrupted model solves with bindings identical
     to the fault-free jobs=1 run, at jobs=1 and jobs=4 *)
  let problem () = Designs.Riscv_single.problem Isa.Rv32.RV32I in
  let clean = solve (problem ()) in
  let check_run jobs =
    with_plan rv32_plan (fun () ->
        let s = solve ~jobs ~validate_models:true (problem ()) in
        let st = s.Synth.Engine.stats in
        let tag f = Printf.sprintf "jobs=%d: %s" jobs f in
        Alcotest.(check bool) (tag "faults fired") true (Fault.fired () > 0);
        Alcotest.(check bool) (tag "ladder retried") true
          (st.Synth.Engine.retried_queries >= 1);
        Alcotest.(check bool) (tag "crashed task retried") true
          (st.Synth.Engine.task_retries >= 1);
        Alcotest.(check bool) (tag "per_instr identical") true
          (s.Synth.Engine.per_instr = clean.Synth.Engine.per_instr);
        Alcotest.(check bool) (tag "shared identical") true
          (s.Synth.Engine.shared = clean.Synth.Engine.shared);
        Alcotest.(check bool) (tag "bindings identical") true
          (s.Synth.Engine.bindings = clean.Synth.Engine.bindings))
  in
  check_run 1;
  check_run 4

let test_verify_under_faults () =
  (* refinement checking of a correct design recovers from a spurious
     Unknown and a worker crash without any Inconclusive verdict *)
  let problem = Designs.Accumulator.problem () in
  let problem =
    { problem with
      Synth.Engine.design = Designs.Accumulator.reference_design () }
  in
  with_plan "unknown@1,crash@1" (fun () ->
      let verdicts = Synth.Engine.verify ~jobs:2 ~validate_models:true problem in
      Alcotest.(check bool) "faults fired" true (Fault.fired () > 0);
      List.iter
        (fun (iname, v) ->
          Alcotest.(check bool) (iname ^ " verified") true
            (v = Synth.Engine.Verified))
        verdicts)

let () =
  Alcotest.run "resilience"
    [ ("ladder",
       [ Alcotest.test_case "policy validation" `Quick test_policy_validation;
         Alcotest.test_case "budget escalation" `Quick test_budget_ladder;
         Alcotest.test_case "deadline slicing" `Quick test_deadline_slicing ]);
      ("pool",
       [ Alcotest.test_case "crash retried on fresh state" `Quick
           test_pool_retry_recovers;
         Alcotest.test_case "exhausted retries blame" `Quick
           test_pool_retry_exhausts ]);
      ("engine",
       [ Alcotest.test_case "spurious unknowns recover" `Quick
           test_spurious_unknowns_recover;
         Alcotest.test_case "corrupted model rejected" `Quick
           test_corrupt_model_rejected;
         Alcotest.test_case "corruption invisible without validation" `Quick
           test_corrupt_without_validation_undetected;
         Alcotest.test_case "rejected model degrades to fresh" `Quick
           test_corrupt_degrades_to_fresh;
         Alcotest.test_case "rv32 fault transparency" `Slow
           test_rv32_fault_transparency;
         Alcotest.test_case "verify recovers" `Quick test_verify_under_faults ]) ]
