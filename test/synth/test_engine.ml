(* End-to-end tests of the synthesis engine on the paper's §2 examples:
   the three-stage ALU machine (decoder-style control, pipelined) and the
   accumulator (FSM-style control with shared state-encoding holes).

   Correctness of a synthesized design is established two ways:
   1. the engine's own verification (CEGIS terminates only on UNSAT), and
   2. cycle-accurate co-simulation against the hand-written reference. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal
let b w n = Bitvec.of_int ~width:w n

let solve ?options problem =
  match Synth.Engine.synthesize ?options problem with
  | Synth.Engine.Solved s -> s
  | Synth.Engine.Timeout _ -> Alcotest.fail "synthesis timed out"
  | Synth.Engine.Unrealizable { instr; _ } ->
      Alcotest.failf "unrealizable (%s)" (Option.value instr ~default:"?")
  | Synth.Engine.Union_failed { diagnostic; _ } ->
      Alcotest.failf "union failed: %s" diagnostic
  | Synth.Engine.Not_independent _ -> Alcotest.fail "not independent" 

(* {1 ALU} *)

let simulate_alu design ~cycles ~stimulus ~mem_image =
  let st =
    Oyster.Interp.init
      ~mem_init:(fun _ _ _ addr -> mem_image.(Bitvec.to_int_exn addr))
      design
  in
  for c = 0 to cycles - 1 do
    let op, dest, src1, src2 = stimulus c in
    ignore
      (Oyster.Interp.step
         ~inputs:(fun name _ ->
           match name with
           | "op" -> b 2 op
           | "dest" -> b 2 dest
           | "src1" -> b 2 src1
           | "src2" -> b 2 src2
           | _ -> assert false)
         st)
  done;
  Array.init 4 (fun i -> Oyster.Interp.read_mem st "regfile" (b 2 i))

let test_alu_synthesis () =
  let solved = solve (Designs.Alu.problem ()) in
  (* reg_we must be constant 1 across instructions; alu_sel mirrors op *)
  List.iter
    (fun (iname, holes) ->
      Alcotest.check bv (iname ^ " we") (b 1 1) (List.assoc "reg_we" holes);
      let expected_sel =
        match iname with "ADD" -> 1 | "SUB" -> 2 | "XOR" -> 3 | _ -> -1
      in
      Alcotest.check bv (iname ^ " sel") (b 2 expected_sel)
        (List.assoc "alu_sel" holes))
    solved.Synth.Engine.per_instr;
  (* co-simulate against the reference on random decodable stimulus *)
  let reference = Designs.Alu.reference_design () in
  let rng = Random.State.make [| 11 |] in
  for _trial = 1 to 10 do
    let stim =
      Array.init 16 (fun _ ->
          ( 1 + Random.State.int rng 3,
            Random.State.int rng 4,
            Random.State.int rng 4,
            Random.State.int rng 4 ))
    in
    let mem_image = Array.init 4 (fun _ -> b 8 (Random.State.int rng 256)) in
    let r1 =
      simulate_alu solved.Synth.Engine.completed ~cycles:16
        ~stimulus:(fun c -> stim.(c))
        ~mem_image
    in
    let r2 =
      simulate_alu reference ~cycles:16 ~stimulus:(fun c -> stim.(c)) ~mem_image
    in
    Array.iteri
      (fun i v -> Alcotest.check bv (Printf.sprintf "reg %d" i) v r1.(i))
      r2
  done

let test_alu_monolithic () =
  let options =
    Synth.Engine.(default_options |> with_mode Monolithic)
  in
  let solved = solve ~options (Designs.Alu.problem ()) in
  List.iter
    (fun (iname, holes) ->
      let expected_sel =
        match iname with "ADD" -> 1 | "SUB" -> 2 | "XOR" -> 3 | _ -> -1
      in
      Alcotest.check bv (iname ^ " sel mono") (b 2 expected_sel)
        (List.assoc "alu_sel" holes))
    solved.Synth.Engine.per_instr

let test_alu_timeout () =
  let options = Synth.Engine.(default_options |> with_conflict_budget 1) in
  match Synth.Engine.synthesize ~options (Designs.Alu.problem ()) with
  | Synth.Engine.Timeout _ -> ()
  | _ -> Alcotest.fail "expected timeout with conflict budget 1"

let test_alu_unrealizable () =
  (* an instruction the datapath cannot implement: regs[dest] := rs1 + 1 *)
  let s = Ila.Spec.create "alu_bad" in
  let op = Ila.Spec.new_bv_input s "op" 2 in
  let dest = Ila.Spec.new_bv_input s "dest" 2 in
  let src1 = Ila.Spec.new_bv_input s "src1" 2 in
  let _ = Ila.Spec.new_bv_input s "src2" 2 in
  let _ = Ila.Spec.new_mem_state s "regs" ~addr_width:2 ~data_width:8 in
  let open Ila.Expr in
  let i = Ila.Spec.new_instr s "INC" in
  Ila.Spec.set_decode i (op == of_int ~width:2 1);
  Ila.Spec.set_mem_update i "regs"
    [ (dest, load "regs" src1 + of_int ~width:8 1) ];
  let problem =
    { Synth.Engine.design = Designs.Alu.sketch (); spec = s;
      af = Designs.Alu.abstraction () }
  in
  match Synth.Engine.synthesize problem with
  | Synth.Engine.Unrealizable { instr = Some "INC"; _ } -> ()
  | Synth.Engine.Unrealizable { instr = None; _ } -> ()
  | Synth.Engine.Solved _ -> Alcotest.fail "expected unrealizable, got solved"
  | _ -> Alcotest.fail "expected unrealizable"

(* {1 Accumulator (FSM with shared holes)} *)

let test_accumulator_synthesis () =
  let solved = solve (Designs.Accumulator.problem ()) in
  (* the selector encodings are forced by the spec's state constants *)
  Alcotest.check bv "enc_reset" (b 2 Designs.Accumulator.reset_enc)
    (List.assoc "enc_reset" solved.Synth.Engine.shared);
  Alcotest.check bv "enc_go" (b 2 Designs.Accumulator.go_enc)
    (List.assoc "enc_go" solved.Synth.Engine.shared);
  (* per-instruction next-state values match the spec transitions *)
  List.iter
    (fun (iname, holes) ->
      let expected =
        match iname with
        | "reset_instr" -> Designs.Accumulator.reset_enc
        | "go_instr" -> Designs.Accumulator.go_enc
        | "stop_instr" -> Designs.Accumulator.stop_enc
        | _ -> -1
      in
      Alcotest.check bv (iname ^ " next") (b 2 expected)
        (List.assoc "next" holes))
    solved.Synth.Engine.per_instr;
  (* co-simulate a scripted run: reset, accumulate 3+2+1, stop *)
  let run design =
    let st = Oyster.Interp.init design in
    (* state register starts at 0 = STOP *)
    let feed (reset, go, stop, v) =
      ignore
        (Oyster.Interp.step
           ~inputs:(fun name _ ->
             match name with
             | "reset" -> b 1 reset
             | "go" -> b 1 go
             | "stop" -> b 1 stop
             | "val" -> b 2 v
             | _ -> assert false)
           st)
    in
    List.iter feed
      [ (1, 0, 0, 0);  (* STOP -reset-> RESET, acc := 0 *)
        (0, 1, 0, 3);  (* RESET -go-> GO, acc += 3 *)
        (0, 0, 0, 2);  (* GO -¬stop-> GO, acc += 2 *)
        (0, 0, 0, 1);  (* GO -¬stop-> GO, acc += 1 *)
        (0, 0, 1, 0)   (* GO -stop-> STOP, acc unchanged *)
      ];
    Oyster.Interp.get_register st "acc"
  in
  Alcotest.check bv "acc total" (b 8 6) (run solved.Synth.Engine.completed);
  Alcotest.check bv "reference acc total" (b 8 6)
    (run (Designs.Accumulator.reference_design ()))

(* {1 Independence checks} *)

let test_independence () =
  let problem = Designs.Alu.problem () in
  let trace =
    Oyster.Symbolic.eval problem.Synth.Engine.design
      ~cycles:problem.Synth.Engine.af.Ila.Absfun.cycles
  in
  let conds =
    Ila.Conditions.compile problem.Synth.Engine.spec problem.Synth.Engine.af trace
  in
  let excl = Synth.Independence.check_mutual_exclusion conds in
  Alcotest.(check (list (pair string string))) "no overlap" []
    excl.Synth.Independence.overlapping;
  let fb = Synth.Independence.check_no_feedback problem.Synth.Engine.design in
  Alcotest.(check int) "no feedback" 0
    (List.length fb.Synth.Independence.feedback_paths)

let test_feedback_detected () =
  (* a design where a hole's output feeds its own dependency wire *)
  let open Hdl.Builder in
  let c = create "fb" in
  let x = input c "x" 1 in
  let h = hole c "h" 1 ~deps:[ x ] in
  let y = wire c "y" (h &: x) in
  let h2 = hole c "h2" 1 ~deps:[ y ] in
  output c "o" (h2 |: y);
  let d = finalize c in
  let fb = Synth.Independence.check_no_feedback d in
  Alcotest.(check bool) "feedback found" true
    (List.length fb.Synth.Independence.feedback_paths > 0);
  (* whitelisting the cut wire silences it *)
  let fb' = Synth.Independence.check_no_feedback ~allowed_cuts:[ "y" ] d in
  Alcotest.(check int) "cut silences" 0 (List.length fb'.Synth.Independence.feedback_paths)

let test_overlapping_decodes () =
  (* two instructions that can decode together *)
  let s = Ila.Spec.create "overlap" in
  let op = Ila.Spec.new_bv_input s "op" 2 in
  let _ = Ila.Spec.new_bv_input s "dest" 2 in
  let _ = Ila.Spec.new_bv_input s "src1" 2 in
  let _ = Ila.Spec.new_bv_input s "src2" 2 in
  let _ = Ila.Spec.new_mem_state s "regs" ~addr_width:2 ~data_width:8 in
  let open Ila.Expr in
  let i1 = Ila.Spec.new_instr s "A" in
  Ila.Spec.set_decode i1 (op == of_int ~width:2 1);
  let i2 = Ila.Spec.new_instr s "B" in
  Ila.Spec.set_decode i2 ((op == of_int ~width:2 1) || (op == of_int ~width:2 2));
  let trace = Oyster.Symbolic.eval (Designs.Alu.sketch ()) ~cycles:3 in
  let conds = Ila.Conditions.compile s (Designs.Alu.abstraction ()) trace in
  let excl = Synth.Independence.check_mutual_exclusion conds in
  Alcotest.(check (list (pair string string))) "overlap found" [ ("A", "B") ]
    excl.Synth.Independence.overlapping

let test_independence_gate () =
  (* with check_independence, an overlapping specification is rejected
     before any synthesis happens *)
  let s = Ila.Spec.create "overlap_gate" in
  let op = Ila.Spec.new_bv_input s "op" 2 in
  let _ = Ila.Spec.new_bv_input s "dest" 2 in
  let _ = Ila.Spec.new_bv_input s "src1" 2 in
  let _ = Ila.Spec.new_bv_input s "src2" 2 in
  let _ = Ila.Spec.new_mem_state s "regs" ~addr_width:2 ~data_width:8 in
  let open Ila.Expr in
  let i1 = Ila.Spec.new_instr s "A" in
  Ila.Spec.set_decode i1 (op == of_int ~width:2 1);
  let i2 = Ila.Spec.new_instr s "B" in
  Ila.Spec.set_decode i2 (op == of_int ~width:2 1);
  let problem =
    { Synth.Engine.design = Designs.Alu.sketch (); spec = s;
      af = Designs.Alu.abstraction () }
  in
  let options =
    Synth.Engine.(default_options |> with_check_independence true)
  in
  (match Synth.Engine.synthesize ~options problem with
  | Synth.Engine.Not_independent { overlapping = [ ("A", "B") ]; _ } -> ()
  | Synth.Engine.Not_independent _ -> Alcotest.fail "wrong overlap report"
  | _ -> Alcotest.fail "expected Not_independent");
  (* ... and a well-formed problem still synthesizes under the gate *)
  match Synth.Engine.synthesize ~options (Designs.Alu.problem ()) with
  | Synth.Engine.Solved _ -> ()
  | _ -> Alcotest.fail "independent problem rejected"

(* {1 Don't-care minimization} *)

let test_minimize () =
  let problem = Designs.Alu.problem () in
  let solved = solve problem in
  let m = Synth.Minimize.run problem solved in
  Alcotest.(check bool) "checks performed" true
    (m.Synth.Minimize.minimize_stats.Synth.Minimize.checks > 0);
  (* the minimized design must still co-simulate with the reference *)
  let reference = Designs.Alu.reference_design () in
  let rng = Random.State.make [| 55 |] in
  for _ = 1 to 5 do
    let stim =
      Array.init 12 (fun _ ->
          ( 1 + Random.State.int rng 3,
            Random.State.int rng 4,
            Random.State.int rng 4,
            Random.State.int rng 4 ))
    in
    let mem_image = Array.init 4 (fun _ -> b 8 (Random.State.int rng 256)) in
    let r1 =
      simulate_alu m.Synth.Minimize.solved.Synth.Engine.completed ~cycles:12
        ~stimulus:(fun c -> stim.(c))
        ~mem_image
    in
    let r2 =
      simulate_alu reference ~cycles:12 ~stimulus:(fun c -> stim.(c)) ~mem_image
    in
    Array.iteri
      (fun i v -> Alcotest.check bv (Printf.sprintf "minimized reg %d" i) v r1.(i))
      r2
  done;
  (* minimization never grows the control *)
  Alcotest.(check bool) "control no larger" true
    (Hdl.Pyrtl.bindings_loc m.Synth.Minimize.solved.Synth.Engine.bindings
    <= Hdl.Pyrtl.bindings_loc solved.Synth.Engine.bindings)

let () =
  Alcotest.run "engine"
    [ ("alu",
       [ Alcotest.test_case "per-instruction synthesis" `Quick test_alu_synthesis;
         Alcotest.test_case "monolithic synthesis" `Quick test_alu_monolithic;
         Alcotest.test_case "timeout" `Quick test_alu_timeout;
         Alcotest.test_case "unrealizable" `Quick test_alu_unrealizable ]);
      ("accumulator",
       [ Alcotest.test_case "joint synthesis" `Quick test_accumulator_synthesis ]);
      ("independence",
       [ Alcotest.test_case "alu independent" `Quick test_independence;
         Alcotest.test_case "feedback detection" `Quick test_feedback_detected;
         Alcotest.test_case "overlapping decodes" `Quick test_overlapping_decodes ]);
      ("minimize", [ Alcotest.test_case "don't-cares" `Quick test_minimize ]);
      ("gate",
       [ Alcotest.test_case "independence pre-check" `Quick test_independence_gate ]) ]
