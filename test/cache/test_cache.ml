(* The cross-run synthesis cache: entry-format robustness (truncation,
   corruption, version skew must all degrade to misses, never to wrong
   answers or crashes), concurrent writers, and the end-to-end
   cold-vs-warm engine contract — warm reruns reproduce the cold
   bindings bit for bit with fewer solver queries, at jobs=1 and
   jobs=4. *)

let dir_counter = ref 0

(* a fresh store per test; the dune sandbox owns the cwd, so local
   directories need no cleanup *)
let fresh_dir () =
  incr dir_counter;
  Printf.sprintf "cache-test-%d.%d" (Unix.getpid ()) !dir_counter

let bv w i = Bitvec.of_int ~width:w i

let sample_bindings =
  [ ("h_op", bv 4 9); ("h_sel", bv 2 1); ("h_imm", bv 8 255) ]

let sample_constraints =
  let x = Term.var "h_op" 4 and y = Term.var "h_sel" 2 in
  [ Term.eq x (Term.of_int ~width:4 9);
    Term.ne y (Term.of_int ~width:2 3) ]

let accept _ _ = true
let reject _ _ = false

let store_sample c fp =
  Owl_cache.store_result c ~fp ~bindings:sample_bindings
    ~constraints:sample_constraints

let check_counters c ~hits ~misses ~stale ~writes =
  let k = Owl_cache.counters c in
  Alcotest.(check int) "hits" hits k.Owl_cache.hits;
  Alcotest.(check int) "misses" misses k.Owl_cache.misses;
  Alcotest.(check int) "stale" stale k.Owl_cache.stale;
  Alcotest.(check int) "writes" writes k.Owl_cache.writes

(* the single entry file of a one-entry result tier *)
let entry_file c =
  let dir = Filename.concat (Owl_cache.dir c) "r" in
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun n -> not (String.length n >= 4 && String.sub n 0 4 = "tmp."))
  with
  | [ name ] -> Filename.concat dir name
  | l -> Alcotest.failf "expected one entry, found %d" (List.length l)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_result_roundtrip () =
  let c = Owl_cache.open_dir (fresh_dir ()) in
  let fp = Owl_cache.fingerprint "problem-a" in
  Alcotest.(check bool) "absent" true
    (Owl_cache.lookup_result c ~fp ~validate:accept = None);
  store_sample c fp;
  (match Owl_cache.lookup_result c ~fp ~validate:(fun bindings constraints ->
       Alcotest.(check int) "constraint count" 2 (List.length constraints);
       List.for_all2
         (fun (n, v) (n', v') -> n = n' && Bitvec.equal v v')
         bindings sample_bindings)
   with
  | Some bindings ->
      Alcotest.(check int) "binding count" 3 (List.length bindings);
      List.iter2
        (fun (n, v) (n', v') ->
          Alcotest.(check string) "name" n' n;
          Alcotest.(check bool) "value" true (Bitvec.equal v v'))
        bindings sample_bindings
  | None -> Alcotest.fail "expected a hit");
  check_counters c ~hits:1 ~misses:1 ~stale:0 ~writes:1

let reject_validation () =
  let c = Owl_cache.open_dir (fresh_dir ()) in
  let fp = Owl_cache.fingerprint "problem-b" in
  store_sample c fp;
  Alcotest.(check bool) "rejected entry reads as miss" true
    (Owl_cache.lookup_result c ~fp ~validate:reject = None);
  (* an exception inside validate is also just a miss *)
  Alcotest.(check bool) "throwing validate reads as miss" true
    (Owl_cache.lookup_result c ~fp ~validate:(fun _ _ -> failwith "boom")
     = None);
  check_counters c ~hits:0 ~misses:0 ~stale:2 ~writes:1

let test_truncated_entry () =
  let c = Owl_cache.open_dir (fresh_dir ()) in
  let fp = Owl_cache.fingerprint "problem-c" in
  store_sample c fp;
  let path = entry_file c in
  let full = read_file path in
  (* every strict prefix must classify as stale (or absent for length 0),
     never crash, never return bindings *)
  for len = 0 to String.length full - 1 do
    write_file path (String.sub full 0 len);
    Alcotest.(check bool)
      (Printf.sprintf "truncated to %d bytes" len)
      true
      (Owl_cache.lookup_result c ~fp ~validate:accept = None)
  done;
  (* trailing junk is also stale: the header pins the exact length *)
  write_file path (full ^ "x");
  Alcotest.(check bool) "trailing junk" true
    (Owl_cache.lookup_result c ~fp ~validate:accept = None);
  (* restoring the original bytes restores the hit *)
  write_file path full;
  Alcotest.(check bool) "restored" true
    (Owl_cache.lookup_result c ~fp ~validate:accept <> None)

let test_corrupted_entry () =
  let c = Owl_cache.open_dir (fresh_dir ()) in
  let fp = Owl_cache.fingerprint "problem-d" in
  store_sample c fp;
  let path = entry_file c in
  let full = read_file path in
  (* flip one byte at a time across the whole file: header corruption,
     checksum mismatches, payload bit rot — all must read as a miss *)
  let steps = max 1 (String.length full / 7) in
  let pos = ref 0 in
  while !pos < String.length full do
    let b = Bytes.of_string full in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x20));
    write_file path (Bytes.to_string b);
    Alcotest.(check bool)
      (Printf.sprintf "byte %d flipped" !pos)
      true
      (Owl_cache.lookup_result c ~fp ~validate:accept = None);
    pos := !pos + steps
  done

let test_version_mismatch () =
  let c = Owl_cache.open_dir (fresh_dir ()) in
  let fp = Owl_cache.fingerprint "problem-e" in
  store_sample c fp;
  let path = entry_file c in
  let full = read_file path in
  let nl = String.index full '\n' in
  let header = String.sub full 0 nl in
  let payload = String.sub full (nl + 1) (String.length full - nl - 1) in
  (match String.split_on_char ' ' header with
  | [ magic; v; kind; sha; len ] ->
      Alcotest.(check string) "magic" "owl-cache" magic;
      Alcotest.(check int) "stamped version" Owl_cache.format_version
        (int_of_string v);
      (* same payload, same checksum, future version stamp: must be
         invalidated without being parsed *)
      write_file path
        (Printf.sprintf "%s %d %s %s %s\n%s" magic
           (Owl_cache.format_version + 1)
           kind sha len payload);
      Alcotest.(check bool) "future version reads as miss" true
        (Owl_cache.lookup_result c ~fp ~validate:accept = None);
      (* kind confusion (a warm entry's bytes under a result name) too *)
      write_file path
        (Printf.sprintf "%s %s warm %s %s\n%s" magic v sha len payload);
      Alcotest.(check bool) "kind mismatch reads as miss" true
        (Owl_cache.lookup_result c ~fp ~validate:accept = None)
  | _ -> Alcotest.fail "unexpected header shape");
  let k = Owl_cache.counters c in
  Alcotest.(check int) "both classified stale" 2 k.Owl_cache.stale

let test_warm_roundtrip () =
  let c = Owl_cache.open_dir (fresh_dir ()) in
  let key = Owl_cache.fingerprint "warm-key" in
  let exact_fp = Owl_cache.fingerprint "warm-exact" in
  Alcotest.(check bool) "absent" true (Owl_cache.lookup_warm c ~key = None);
  let w =
    { Owl_cache.exact_fp;
      clauses = [ [ 1; -2; 3 ]; [ -1 ]; [ 2; 4 ] ];
      cex = sample_constraints }
  in
  Owl_cache.store_warm c ~key w;
  (match Owl_cache.lookup_warm c ~key with
  | Some w' ->
      Alcotest.(check string) "exact fp" exact_fp w'.Owl_cache.exact_fp;
      Alcotest.(check (list (list int))) "clauses" w.Owl_cache.clauses
        w'.Owl_cache.clauses;
      Alcotest.(check int) "cex count" 2 (List.length w'.Owl_cache.cex);
      (* deserialized terms are hash-consed back to equal DAGs: byte
         equality of the canonical serialization is the contract *)
      Alcotest.(check string) "cex terms"
        (Term.serialize w.Owl_cache.cex)
        (Term.serialize w'.Owl_cache.cex)
  | None -> Alcotest.fail "expected warm state");
  (* clauses survive an empty-cex entry and vice versa *)
  let key2 = Owl_cache.fingerprint "warm-key-2" in
  Owl_cache.store_warm c ~key:key2
    { Owl_cache.exact_fp; clauses = []; cex = [] };
  match Owl_cache.lookup_warm c ~key:key2 with
  | Some w' ->
      Alcotest.(check int) "no clauses" 0 (List.length w'.Owl_cache.clauses);
      Alcotest.(check int) "no cex" 0 (List.length w'.Owl_cache.cex)
  | None -> Alcotest.fail "expected empty warm state"

let test_stats_and_clear () =
  let c = Owl_cache.open_dir (fresh_dir ()) in
  store_sample c (Owl_cache.fingerprint "p1");
  store_sample c (Owl_cache.fingerprint "p2");
  Owl_cache.store_warm c
    ~key:(Owl_cache.fingerprint "w1")
    { Owl_cache.exact_fp = Owl_cache.fingerprint "p1";
      clauses = [ [ 1 ] ]; cex = [] };
  let s = Owl_cache.disk_stats c in
  Alcotest.(check int) "result entries" 2 s.Owl_cache.result_entries;
  Alcotest.(check int) "warm entries" 1 s.Owl_cache.warm_entries;
  Alcotest.(check bool) "bytes counted" true (s.Owl_cache.total_bytes > 0);
  Alcotest.(check int) "clear removes all" 3 (Owl_cache.clear c);
  let s = Owl_cache.disk_stats c in
  Alcotest.(check int) "empty after clear" 0
    (s.Owl_cache.result_entries + s.Owl_cache.warm_entries)

(* Concurrent writers racing on the same fingerprints: publication is
   atomic rename, so readers running amid the writes must only ever see
   complete valid entries (a miss is fine; a crash or torn read is not). *)
let test_concurrent_writers () =
  let root = fresh_dir () in
  let fps =
    List.init 4 (fun i -> Owl_cache.fingerprint (Printf.sprintf "shared-%d" i))
  in
  let writer _ =
    Domain.spawn (fun () ->
        let c = Owl_cache.open_dir root in
        for round = 1 to 25 do
          List.iter
            (fun fp ->
              store_sample c fp;
              match Owl_cache.lookup_result c ~fp ~validate:accept with
              | Some bindings ->
                  if List.length bindings <> 3 then
                    failwith "torn read: wrong binding count"
              | None ->
                  (* racing rename can momentarily miss; staleness cannot
                     happen because every published entry is valid *)
                  ignore round)
            fps
        done;
        Owl_cache.counters c)
  in
  let counters = List.map Domain.join (List.init 4 writer) in
  let total field = List.fold_left (fun a k -> a + field k) 0 counters in
  Alcotest.(check int) "no stale reads under contention" 0
    (total (fun k -> k.Owl_cache.stale));
  Alcotest.(check int) "all writes landed" 400
    (total (fun k -> k.Owl_cache.writes));
  let c = Owl_cache.open_dir root in
  List.iter
    (fun fp ->
      Alcotest.(check bool) "final entry valid" true
        (Owl_cache.lookup_result c ~fp ~validate:accept <> None))
    fps;
  let s = Owl_cache.disk_stats c in
  Alcotest.(check int) "one entry per fingerprint" 4
    s.Owl_cache.result_entries

(* {1 End-to-end engine contract} *)

let solve ~jobs ~cache () =
  let options =
    Synth.Engine.(
      default_options |> with_jobs jobs |> with_cache cache)
  in
  match Synth.Engine.synthesize ~options (Designs.Alu.problem ()) with
  | Synth.Engine.Solved s -> s
  | _ -> Alcotest.fail "alu synthesis failed"

let same_bindings (a : Synth.Engine.solved) (b : Synth.Engine.solved) =
  a.Synth.Engine.per_instr = b.Synth.Engine.per_instr
  && a.Synth.Engine.shared = b.Synth.Engine.shared

let test_cold_vs_warm () =
  let root = fresh_dir () in
  let baseline = solve ~jobs:1 ~cache:None () in
  let with_handle jobs f =
    let c = Owl_cache.open_dir root in
    let s = solve ~jobs ~cache:(Some c) () in
    f s (Owl_cache.counters c)
  in
  with_handle 1 (fun cold k ->
      Alcotest.(check bool) "cold run writes entries" true
        (k.Owl_cache.writes > 0);
      Alcotest.(check bool) "cold = uncached bindings" true
        (same_bindings baseline cold));
  with_handle 1 (fun warm k ->
      Alcotest.(check bool) "warm hits" true (k.Owl_cache.hits > 0);
      Alcotest.(check int) "warm run queries" 0
        warm.Synth.Engine.stats.Synth.Engine.queries;
      Alcotest.(check bool) "warm j1 bit-identical" true
        (same_bindings baseline warm));
  with_handle 4 (fun warm4 k ->
      Alcotest.(check bool) "warm j4 hits" true (k.Owl_cache.hits > 0);
      Alcotest.(check int) "warm j4 queries" 0
        warm4.Synth.Engine.stats.Synth.Engine.queries;
      Alcotest.(check bool) "warm j4 bit-identical" true
        (same_bindings baseline warm4))

(* a corrupted store must degrade to a clean re-solve with the same
   answer — the cache can never change results, only speed *)
let test_corrupt_store_resolves () =
  let root = fresh_dir () in
  let c = Owl_cache.open_dir root in
  let cold = solve ~jobs:1 ~cache:(Some c) () in
  (* trash every entry of both tiers in place *)
  List.iter
    (fun tier ->
      let d = Filename.concat root tier in
      Array.iter
        (fun name ->
          write_file (Filename.concat d name)
            "owl-cache 1 result deadbeef 4\njunk")
        (Sys.readdir d))
    [ "r"; "w" ];
  let c2 = Owl_cache.open_dir root in
  let again = solve ~jobs:1 ~cache:(Some c2) () in
  let k = Owl_cache.counters c2 in
  Alcotest.(check bool) "corrupt entries classified stale" true
    (k.Owl_cache.stale > 0);
  Alcotest.(check int) "no hits from junk" 0 k.Owl_cache.hits;
  Alcotest.(check bool) "re-solve matches" true (same_bindings cold again);
  Alcotest.(check bool) "store repopulated" true (k.Owl_cache.writes > 0)

let () =
  Alcotest.run "cache"
    [ ("store",
       [ Alcotest.test_case "result roundtrip" `Quick test_result_roundtrip;
         Alcotest.test_case "failed validation" `Quick reject_validation;
         Alcotest.test_case "truncated entry" `Quick test_truncated_entry;
         Alcotest.test_case "corrupted entry" `Quick test_corrupted_entry;
         Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
         Alcotest.test_case "warm roundtrip" `Quick test_warm_roundtrip;
         Alcotest.test_case "stats and clear" `Quick test_stats_and_clear;
         Alcotest.test_case "concurrent writers" `Quick
           test_concurrent_writers ]);
      ("engine",
       [ Alcotest.test_case "cold vs warm bit-identical" `Quick
           test_cold_vs_warm;
         Alcotest.test_case "corrupt store re-solves" `Quick
           test_corrupt_store_resolves ]) ]
