(* Tests for the AES-128 accelerator (paper §4.3):

   - generated tables match FIPS-197 spot values;
   - the byte-level reference matches the FIPS-197 example vector;
   - the ILA specification, evaluated concretely, matches the reference;
   - FSM control synthesis succeeds, discovers consistent state encodings,
     and the completed accelerator encrypts correctly. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let fips_key = Bitvec.of_string "128'x000102030405060708090a0b0c0d0e0f"
let fips_pt = Bitvec.of_string "128'x00112233445566778899aabbccddeeff"
let fips_ct = Bitvec.of_string "128'x69c4e0d86a7b0430d8cdb78070b4c55a"

let test_tables () =
  Alcotest.(check int) "sbox[0]" 0x63 Designs.Aes_tables.sbox.(0);
  Alcotest.(check int) "sbox[1]" 0x7c Designs.Aes_tables.sbox.(1);
  Alcotest.(check int) "sbox[0x53]" 0xed Designs.Aes_tables.sbox.(0x53);
  Alcotest.(check int) "sbox[0xff]" 0x16 Designs.Aes_tables.sbox.(0xff);
  Alcotest.(check int) "rcon[1]" 0x01 Designs.Aes_tables.rcon.(1);
  Alcotest.(check int) "rcon[8]" 0x80 Designs.Aes_tables.rcon.(8);
  Alcotest.(check int) "rcon[10]" 0x36 Designs.Aes_tables.rcon.(10);
  (* gf arithmetic sanity: 0x57 * 0x83 = 0xc1 (FIPS-197 example) *)
  Alcotest.(check int) "gf_mul" 0xc1 (Designs.Aes_tables.gf_mul 0x57 0x83)

let test_reference_vector () =
  Alcotest.check bv "FIPS-197" fips_ct (Designs.Aes_reference.encrypt fips_key fips_pt)

(* Run the ILA spec concretely for 11 architectural steps. *)
let spec_encrypt key pt =
  let spec = Designs.Aes.spec () in
  let st = Ila.Spec.init_state spec in
  let inputs = function
    | "key_in" -> key
    | "plaintext" -> pt
    | n -> failwith ("unexpected input " ^ n)
  in
  for _ = 1 to 11 do
    match Ila.Spec.step_concrete spec st ~inputs with
    | Some _ -> ()
    | None -> Alcotest.fail "spec stalled"
  done;
  Ila.Spec.get_bv st "ciphertext"

let random_block rng =
  Bitvec.of_bits (Array.init 128 (fun _ -> Random.State.bool rng))

let test_spec_matches_reference () =
  Alcotest.check bv "FIPS vector via spec" fips_ct (spec_encrypt fips_key fips_pt);
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 10 do
    let key = random_block rng and pt = random_block rng in
    Alcotest.check bv "random block"
      (Designs.Aes_reference.encrypt key pt)
      (spec_encrypt key pt)
  done

let test_reference_design () =
  let d = Designs.Aes.reference_design () in
  Alcotest.check bv "FIPS vector via datapath" fips_ct
    (Designs.Aes.run_accelerator d ~key:fips_key ~plaintext:fips_pt)

let test_synthesis () =
  match Synth.Engine.synthesize (Designs.Aes.problem ()) with
  | Synth.Engine.Solved s ->
      (* the three state encodings must be pairwise distinct *)
      let enc n = List.assoc n s.Synth.Engine.shared in
      let e1 = enc "enc_first" and e2 = enc "enc_mid" and e3 = enc "enc_final" in
      Alcotest.(check bool) "encodings distinct" true
        ((not (Bitvec.equal e1 e2)) && (not (Bitvec.equal e2 e3))
        && not (Bitvec.equal e1 e3));
      (* per-instruction transition values agree with the encodings *)
      let state_of i =
        List.assoc "state" (List.assoc i s.Synth.Engine.per_instr)
      in
      Alcotest.check bv "first" e1 (state_of "FirstRound");
      Alcotest.check bv "mid" e2 (state_of "IntermediateRound");
      Alcotest.check bv "final" e3 (state_of "FinalRound");
      (* the completed accelerator encrypts correctly *)
      Alcotest.check bv "FIPS vector" fips_ct
        (Designs.Aes.run_accelerator s.Synth.Engine.completed ~key:fips_key
           ~plaintext:fips_pt);
      let rng = Random.State.make [| 23 |] in
      for _ = 1 to 5 do
        let key = random_block rng and pt = random_block rng in
        Alcotest.check bv "random"
          (Designs.Aes_reference.encrypt key pt)
          (Designs.Aes.run_accelerator s.Synth.Engine.completed ~key ~plaintext:pt)
      done
  | Synth.Engine.Timeout _ -> Alcotest.fail "timeout"
  | Synth.Engine.Unrealizable _ -> Alcotest.fail "unrealizable"
  | Synth.Engine.Union_failed { diagnostic; _ } -> Alcotest.fail diagnostic
  | Synth.Engine.Not_independent _ -> Alcotest.fail "not independent" 

let test_monolithic () =
  let options =
    Synth.Engine.(default_options |> with_mode Monolithic)
  in
  match Synth.Engine.synthesize ~options (Designs.Aes.problem ()) with
  | Synth.Engine.Solved s ->
      Alcotest.check bv "FIPS vector (monolithic)" fips_ct
        (Designs.Aes.run_accelerator s.Synth.Engine.completed ~key:fips_key
           ~plaintext:fips_pt)
  | _ -> Alcotest.fail "monolithic synthesis failed"

let () =
  Alcotest.run "aes"
    [ ("tables", [ Alcotest.test_case "constants" `Quick test_tables ]);
      ("reference",
       [ Alcotest.test_case "FIPS-197 vector" `Quick test_reference_vector;
         Alcotest.test_case "spec matches reference" `Quick test_spec_matches_reference;
         Alcotest.test_case "reference datapath" `Quick test_reference_design ]);
      ("synthesis",
       [ Alcotest.test_case "per-instruction" `Quick test_synthesis;
         Alcotest.test_case "monolithic" `Quick test_monolithic ]) ]
