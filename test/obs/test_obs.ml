(* Owl_obs test suite: the JSON emitter/parser pair, the null sink, span
   nesting and per-domain ordering, the deterministic ring-buffer merge,
   the Chrome trace export, and the metrics registry. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* {1 JSON} *)

let test_json_escape () =
  checks "quote" "a\\\"b" (Json.escape "a\"b");
  checks "backslash" "a\\\\b" (Json.escape "a\\b");
  checks "newline" "a\\u000ab" (Json.escape "a\nb");
  checks "tab" "\\u0009" (Json.escape "\t");
  checks "nul" "\\u0000" (Json.escape "\000");
  (* non-ASCII bytes pass through untouched, so UTF-8 stays UTF-8 *)
  checks "utf8" "caf\xc3\xa9" (Json.escape "caf\xc3\xa9");
  checks "str" "\"x\\\\y\"" (Json.str "x\\y")

let test_json_num () =
  checks "int-valued" "42" (Json.num 42.0);
  checks "negative" "-7" (Json.num (-7.0));
  checks "fraction" "2.5" (Json.num 2.5);
  checks "nan" "null" (Json.num Float.nan);
  checks "inf" "null" (Json.num Float.infinity)

let test_json_roundtrip () =
  let roundtrip s =
    match Json.parse (Json.str s) with
    | Json.String s' -> s'
    | _ -> Alcotest.fail "expected a string"
  in
  List.iter
    (fun s -> checks ("roundtrip " ^ String.escaped s) s (roundtrip s))
    [
      "plain";
      "control\n\t\r chars\012\b";
      "back\\slash and \"quotes\"";
      "non-ascii caf\xc3\xa9 \xf0\x9f\xa6\x89";
      "\000embedded\000nul\000";
    ];
  (* \uXXXX escapes decode to UTF-8, surrogate pairs included *)
  (match Json.parse "\"\\u00e9\"" with
  | Json.String s -> checks "bmp escape" "\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string");
  (match Json.parse "\"\\ud83d\\ude00\"" with
  | Json.String s -> checks "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected a string");
  (* documents compose by concatenation and parse back *)
  let doc =
    Json.obj
      [
        ("a", Json.int 1);
        ("b", Json.arr [ Json.bool true; Json.str "x" ]);
        ("c", Json.num 1.5);
      ]
  in
  match Json.parse doc with
  | Json.Obj _ as v ->
      (match Json.member "a" v with
      | Some (Json.Num f) -> checkb "a" true (f = 1.0)
      | _ -> Alcotest.fail "missing a");
      (match Json.member "b" v with
      | Some (Json.Arr [ Json.Bool true; Json.String "x" ]) -> ()
      | _ -> Alcotest.fail "bad b");
      checkb "no d" true (Json.member "d" v = None)
  | _ -> Alcotest.fail "expected an object"

let test_json_errors () =
  let fails s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.fail ("parse should fail: " ^ s)
  in
  List.iter fails
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "tru"; "nan" ]

(* {1 Null sink} *)

let test_null_sink () =
  Obs.disable ();
  Obs.disable_metrics ();
  let r = Obs.span "nothing" (fun () -> 41 + 1) in
  checki "span passes value through" 42 r;
  Obs.instant "nothing";
  checki "no events" 0 (List.length (Obs.events ()));
  checki "no drops" 0 (Obs.dropped ());
  (* exceptions pass through undisturbed *)
  (match Obs.span "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  checki "still no events" 0 (List.length (Obs.events ()))

(* {1 Spans and ordering} *)

(* per-domain streams must follow stack discipline: every End matches the
   most recent open Begin *)
let well_nested events =
  let ok = ref true in
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.event) ->
      let stack =
        match Hashtbl.find_opt stacks e.Obs.dom with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks e.Obs.dom s;
            s
      in
      match e.Obs.ph with
      | Obs.Begin -> stack := e.Obs.name :: !stack
      | Obs.End -> (
          match !stack with
          | top :: rest when top = e.Obs.name -> stack := rest
          | _ -> ok := false)
      | Obs.Instant -> ())
    events;
  Hashtbl.iter (fun _ s -> if !s <> [] then ok := false) stacks;
  !ok

let test_span_nesting () =
  Obs.enable ();
  let r =
    Obs.span "outer" ~args:[ ("k", Obs.Int 1) ] (fun () ->
        Obs.instant "mark";
        Obs.span "inner"
          ~result:(fun v -> [ ("v", Obs.Int v) ])
          (fun () -> 7))
  in
  checki "value" 7 r;
  (* a raising span still closes *)
  (match Obs.span "raiser" (fun () -> failwith "expected") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  let evs = Obs.events () in
  Obs.disable ();
  let names ph =
    List.filter_map
      (fun (e : Obs.event) -> if e.Obs.ph = ph then Some e.Obs.name else None)
      evs
  in
  check
    Alcotest.(list string)
    "begins in order"
    [ "outer"; "inner"; "raiser" ]
    (names Obs.Begin);
  check
    Alcotest.(list string)
    "ends in order"
    [ "inner"; "outer"; "raiser" ]
    (names Obs.End);
  check Alcotest.(list string) "instant" [ "mark" ] (names Obs.Instant);
  checkb "well nested" true (well_nested evs);
  (* the End of the raising span carries the exception *)
  let raiser_end =
    List.find
      (fun (e : Obs.event) -> e.Obs.ph = Obs.End && e.Obs.name = "raiser")
      evs
  in
  checkb "exception arg" true
    (List.mem_assoc "exception" raiser_end.Obs.args);
  (* result args land on the End event *)
  let inner_end =
    List.find
      (fun (e : Obs.event) -> e.Obs.ph = Obs.End && e.Obs.name = "inner")
      evs
  in
  checkb "result arg" true (inner_end.Obs.args = [ ("v", Obs.Int 7) ]);
  (* timestamps never decrease within the merged stream of one domain *)
  let rec monotonic = function
    | (a : Obs.event) :: (b : Obs.event) :: rest ->
        a.Obs.ts <= b.Obs.ts && monotonic (b :: rest)
    | _ -> true
  in
  checkb "timestamps" true (monotonic evs)

(* {1 Multi-domain recording and the deterministic merge} *)

let burst id rounds =
  for i = 1 to rounds do
    Obs.span "work"
      ~args:[ ("who", Obs.Int id); ("i", Obs.Int i) ]
      (fun () -> Obs.instant "tick" ~args:[ ("who", Obs.Int id) ])
  done

let run_burst ~domains ~rounds =
  Obs.enable ();
  let spawned =
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> burst (i + 1) rounds))
  in
  burst 0 rounds;
  List.iter Domain.join spawned;
  let evs = Obs.events () in
  Obs.disable ();
  evs

let test_merge_multi_domain () =
  List.iter
    (fun domains ->
      let rounds = 50 in
      let evs = run_burst ~domains ~rounds in
      (* every domain contributed all of its events: 2 span events + 1
         instant per round *)
      checki
        (Printf.sprintf "event count at %d domains" domains)
        (domains * rounds * 3)
        (List.length evs);
      checki "nothing dropped" 0 (Obs.dropped ());
      checkb "well nested per domain" true (well_nested evs);
      (* the merge preserves every domain's own order exactly: per-domain
         sequence numbers appear strictly increasing *)
      let last_seq = Hashtbl.create 8 in
      List.iter
        (fun (e : Obs.event) ->
          (match Hashtbl.find_opt last_seq e.Obs.dom with
          | Some prev ->
              checkb "per-domain order" true (e.Obs.seq > prev)
          | None -> ());
          Hashtbl.replace last_seq e.Obs.dom e.Obs.seq)
        evs;
      checki
        (Printf.sprintf "domains seen at %d domains" domains)
        domains
        (Hashtbl.length last_seq))
    [ 1; 4 ]

let test_merge_deterministic () =
  (* the merge is a pure function of the recorded buffers: merging twice
     yields the identical stream *)
  Obs.enable ();
  let spawned =
    List.init 3 (fun i -> Domain.spawn (fun () -> burst (i + 1) 25))
  in
  burst 0 25;
  List.iter Domain.join spawned;
  let a = Obs.events () in
  let b = Obs.events () in
  Obs.disable ();
  checkb "same stream" true (a = b);
  checki "jobs=4 event count" (4 * 25 * 3) (List.length a)

let test_drop_newest () =
  Obs.enable ~capacity:4 ();
  for i = 1 to 10 do
    Obs.instant "e" ~args:[ ("i", Obs.Int i) ]
  done;
  let evs = Obs.events () in
  let n_dropped = Obs.dropped () in
  Obs.disable ();
  checki "kept prefix" 4 (List.length evs);
  checki "dropped the rest" 6 n_dropped;
  (* drop-newest keeps the earliest events *)
  List.iteri
    (fun idx (e : Obs.event) ->
      checkb "prefix kept in order" true (e.Obs.args = [ ("i", Obs.Int (idx + 1)) ]))
    evs

(* {1 Chrome trace export} *)

let test_chrome_trace () =
  Obs.enable ();
  ignore
    (Obs.span "phase"
       ~args:[ ("answer", Obs.Int 42); ("label", Obs.Str "a \"b\"\n") ]
       (fun () ->
         Obs.instant "blip" ~args:[ ("ok", Obs.Bool true) ];
         17));
  let s = Obs.chrome_trace_string () in
  Obs.disable ();
  let doc =
    match Json.parse s with
    | v -> v
    | exception Json.Parse_error m -> Alcotest.fail ("invalid JSON: " ^ m)
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  checkb "has events" true (List.length events > 0);
  let str_member k v =
    match Json.member k v with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let phase_events =
    List.filter
      (fun e ->
        match str_member "ph" e with
        | Some ("B" | "E" | "i") -> true
        | Some "M" -> false
        | _ -> Alcotest.fail "event without a known ph")
      events
  in
  checki "B + E + i" 3 (List.length phase_events);
  (* every non-metadata event round-trips the required fields *)
  List.iter
    (fun e ->
      checkb "name" true (str_member "name" e <> None);
      (match Json.member "ts" e with
      | Some (Json.Num ts) -> checkb "ts >= 0" true (ts >= 0.0)
      | _ -> Alcotest.fail "missing ts");
      (match Json.member "pid" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "missing pid");
      match Json.member "tid" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "missing tid")
    phase_events;
  (* instants carry a scope; span args survive escaping *)
  let instant =
    List.find (fun e -> str_member "ph" e = Some "i") phase_events
  in
  checkb "instant scope" true (str_member "s" instant = Some "t");
  let begin_ev =
    List.find (fun e -> str_member "ph" e = Some "B") phase_events
  in
  match Json.member "args" begin_ev with
  | Some args -> (
      (match Json.member "answer" args with
      | Some (Json.Num f) -> checkb "int arg" true (f = 42.0)
      | _ -> Alcotest.fail "missing int arg");
      match Json.member "label" args with
      | Some (Json.String s) -> checks "escaped arg" "a \"b\"\n" s
      | _ -> Alcotest.fail "missing str arg")
  | None -> Alcotest.fail "missing args"

(* {1 Metrics} *)

let test_metrics () =
  Obs.reset_metrics ();
  let c = Obs.counter "test.counter" in
  let h = Obs.histogram "test.histogram" in
  (* disabled: recording is a no-op *)
  Obs.disable_metrics ();
  Obs.incr c;
  Obs.observe h 100;
  checkb "disabled records nothing" true
    (List.for_all
       (fun (m : Obs.metric) ->
         m.Obs.metric_name <> "test.counter"
         && m.Obs.metric_name <> "test.histogram")
       (Obs.metrics ()));
  Obs.enable_metrics ();
  Obs.incr c;
  Obs.incr ~by:4 c;
  List.iter (Obs.observe h) [ 1; 2; 3; 4; 1000 ];
  Obs.disable_metrics ();
  let find name =
    List.find (fun (m : Obs.metric) -> m.Obs.metric_name = name) (Obs.metrics ())
  in
  let mc = find "test.counter" in
  checki "counter value" 5 mc.Obs.count;
  let mh = find "test.histogram" in
  checki "histogram count" 5 mh.Obs.count;
  checki "histogram sum" 1010 mh.Obs.sum;
  checki "histogram min" 1 mh.Obs.min_value;
  checki "histogram max" 1000 mh.Obs.max_value;
  (* log-scale quantiles interpolate linearly within the landing bucket
     (and clamp to the observed min/max), so small samples no longer
     report the bucket's upper bound: the rank-4.95 sample of
     [1;2;3;4;1000] lands 95% into the [512,1023] bucket *)
  checki "p50" 3 mh.Obs.p50;
  checki "p90" 768 mh.Obs.p90;
  checki "p99" 997 mh.Obs.p99;
  checkb "summary mentions both" true
    (let s = Obs.summary_table () in
     let contains sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains "test.counter" && contains "test.histogram");
  Obs.reset_metrics ();
  checkb "reset clears" true
    (List.for_all
       (fun (m : Obs.metric) -> m.Obs.metric_name <> "test.counter")
       (Obs.metrics ()))

let test_quantile_uniform () =
  (* a dense uniform sample: interpolation recovers the true quantile
     exactly where the bucket really is uniformly filled *)
  Obs.reset_metrics ();
  Obs.enable_metrics ();
  let h = Obs.histogram "test.uniform" in
  for v = 1 to 1000 do
    Obs.observe h v
  done;
  Obs.disable_metrics ();
  let m =
    List.find
      (fun (m : Obs.metric) -> m.Obs.metric_name = "test.uniform")
      (Obs.metrics ())
  in
  checki "uniform p50" 500 m.Obs.p50;
  (* the top bucket [512,1023] is only filled to 1000, so interpolation
     overshoots within it — but the clamp to the observed max bounds it *)
  checkb "uniform p99 bounded" true (m.Obs.p99 >= 900 && m.Obs.p99 <= 1000);
  Obs.reset_metrics ()

let test_gauges () =
  Obs.reset_metrics ();
  let g = Obs.gauge "test.gauge" in
  (* disabled: setting is a no-op, and an unset gauge stays invisible *)
  Obs.disable_metrics ();
  Obs.set_gauge g 9;
  checkb "unset gauge hidden" true
    (List.for_all
       (fun (m : Obs.metric) -> m.Obs.metric_name <> "test.gauge")
       (Obs.metrics ()));
  Obs.enable_metrics ();
  Obs.set_gauge g 7;
  Obs.set_gauge g 3;
  Obs.disable_metrics ();
  checki "last level wins" 3 (Obs.gauge_value g);
  let m =
    List.find
      (fun (m : Obs.metric) -> m.Obs.metric_name = "test.gauge")
      (Obs.metrics ())
  in
  checkb "kind" true (m.Obs.metric_kind = `Gauge);
  checki "level, not a sum" 3 m.Obs.count;
  Obs.reset_metrics ();
  checkb "reset hides it again" true
    (List.for_all
       (fun (m : Obs.metric) -> m.Obs.metric_name <> "test.gauge")
       (Obs.metrics ()))

let test_windows () =
  Obs.reset_metrics ();
  Obs.enable_metrics ();
  let w = Obs.window "test.window" in
  List.iter (Obs.observe_window w) [ 1; 2; 3; 4; 1000 ];
  let m =
    List.find
      (fun (m : Obs.metric) -> m.Obs.metric_name = "test.window")
      (Obs.metrics ())
  in
  checkb "kind" true (m.Obs.metric_kind = `Window);
  checki "window count" 5 m.Obs.count;
  checki "window sum" 1010 m.Obs.sum;
  checki "window p50" 3 m.Obs.p50;
  checki "window p99" 997 m.Obs.p99;
  (* a 1-second window forgets: after the slot ages out the snapshot is
     empty again *)
  let tiny = Obs.window ~seconds:1 "test.window.tiny" in
  Obs.observe_window tiny 5;
  Unix.sleepf 1.1;
  checkb "tiny window aged out" true
    (List.for_all
       (fun (m : Obs.metric) ->
         m.Obs.metric_name <> "test.window.tiny" || m.Obs.count = 0)
       (Obs.metrics ()));
  Obs.disable_metrics ();
  Obs.reset_metrics ()

(* {1 Flight recorder and trace context} *)

let test_flight_wraparound () =
  Obs.disable ();
  Obs.enable_flight ~capacity:8 ();
  for i = 1 to 20 do
    Obs.instant "f" ~args:[ ("i", Obs.Int i) ]
  done;
  let evs = Obs.flight_events () in
  checki "ring keeps capacity" 8 (List.length evs);
  (* overwrite-oldest: the survivors are the newest 8, oldest first *)
  List.iteri
    (fun idx (e : Obs.event) ->
      checkb "newest kept in order" true
        (e.Obs.args = [ ("i", Obs.Int (13 + idx)) ]))
    evs;
  let s = Obs.flight_trace_string () in
  (match Json.parse s with
  | doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "flight dump has no traceEvents")
  | exception Json.Parse_error m ->
      Alcotest.fail ("flight dump is not valid JSON: " ^ m));
  Obs.disable_flight ();
  checki "disabled recorder is empty" 0 (List.length (Obs.flight_events ()))

let test_trace_context () =
  checkb "no initial context" true (Obs.trace_context () = None);
  Obs.enable_flight ();
  Obs.with_trace_context "req-1" (fun () ->
      checkb "context visible inside" true
        (Obs.trace_context () = Some "req-1");
      Obs.instant "a";
      Obs.span "s" (fun () -> ()));
  checkb "context restored" true (Obs.trace_context () = None);
  Obs.with_trace_context "req-2" (fun () -> Obs.instant "b");
  Obs.instant "c";
  let all = Obs.flight_events () in
  let trace_of name =
    (List.find (fun (e : Obs.event) -> e.Obs.name = name) all).Obs.trace
  in
  checkb "a tagged" true (trace_of "a" = Some "req-1");
  checkb "b tagged" true (trace_of "b" = Some "req-2");
  checkb "c untagged" true (trace_of "c" = None);
  (* the filter isolates one request's events, span Begin/End included *)
  let one = Obs.flight_events ~trace:"req-1" () in
  checki "filtered count" 3 (List.length one);
  checkb "filtered names" true
    (List.for_all
       (fun (e : Obs.event) -> e.Obs.name = "a" || e.Obs.name = "s")
       one);
  (* the filtered Chrome export tags every event with the id *)
  (match Json.parse (Obs.flight_trace_string ~trace:"req-1" ()) with
  | doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.Arr all_evs) ->
          (* skip the process/thread-name metadata events *)
          let evs =
            List.filter
              (fun ev ->
                match Json.member "ph" ev with
                | Some (Json.String "M") -> false
                | _ -> true)
              all_evs
          in
          checki "exported count" 3 (List.length evs);
          List.iter
            (fun ev ->
              match Json.member "args" ev with
              | Some args -> (
                  match Json.member "trace" args with
                  | Some (Json.String "req-1") -> ()
                  | _ -> Alcotest.fail "event missing trace arg")
              | None -> Alcotest.fail "event missing args")
            evs
      | _ -> Alcotest.fail "no traceEvents")
  | exception Json.Parse_error m ->
      Alcotest.fail ("filtered dump is not valid JSON: " ^ m));
  (* exceptions restore the context too *)
  (match Obs.with_trace_context "req-3" (fun () -> failwith "expected") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  checkb "context restored after raise" true (Obs.trace_context () = None);
  Obs.disable_flight ()

(* {1 Concurrent taps} *)

let test_tap_concurrent () =
  (* four domains, each with its own tap, while a fifth domain toggles
     the tracing epoch and the metric registry as fast as it can.  The
     races may cost epoch events (that sink is being cleared under us)
     but each tap must still observe exactly its own domain's stream, in
     order, and nothing may crash *)
  Obs.disable ();
  Obs.disable_metrics ();
  let stop = Atomic.make false in
  let toggler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Obs.enable ();
          Obs.disable ();
          Obs.enable_metrics ();
          Obs.disable_metrics ()
        done)
  in
  let rounds = 500 in
  let worker id () =
    let seen = ref [] in
    Obs.with_tap
      (fun ph name args -> if ph = Obs.Instant then seen := (name, args) :: !seen)
      (fun () ->
        for i = 1 to rounds do
          Obs.span "tapped.span" (fun () ->
              Obs.instant "tapped"
                ~args:[ ("who", Obs.Int id); ("i", Obs.Int i) ])
        done);
    let l = List.rev !seen in
    List.length l = rounds
    && List.for_all2
         (fun i (name, args) ->
           name = "tapped"
           && args = [ ("who", Obs.Int id); ("i", Obs.Int i) ])
         (List.init rounds (fun i -> i + 1))
         l
  in
  let spawned = List.init 3 (fun k -> Domain.spawn (worker (k + 1))) in
  let mine = worker 0 () in
  let oks = List.map Domain.join spawned in
  Atomic.set stop true;
  Domain.join toggler;
  (* leave the globals however the toggler's last iteration did not *)
  Obs.disable ();
  Obs.disable_metrics ();
  checkb "every tap saw exactly its own stream" true
    (mine && List.for_all Fun.id oks);
  checkb "no tap left installed" true (not (Obs.tapping ()))

let test_metrics_parallel () =
  Obs.reset_metrics ();
  Obs.enable_metrics ();
  let c = Obs.counter "test.par.counter" in
  let h = Obs.histogram "test.par.histogram" in
  let worker () =
    for i = 1 to 1000 do
      Obs.incr c;
      Obs.observe h i
    done
  in
  let spawned = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Obs.disable_metrics ();
  let find name =
    List.find (fun (m : Obs.metric) -> m.Obs.metric_name = name) (Obs.metrics ())
  in
  checki "atomic counter" 4000 (find "test.par.counter").Obs.count;
  checki "atomic histogram count" 4000 (find "test.par.histogram").Obs.count;
  checki "atomic histogram sum" (4 * 500500) (find "test.par.histogram").Obs.sum;
  Obs.reset_metrics ()

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escape" `Quick test_json_escape;
          Alcotest.test_case "num" `Quick test_json_num;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "multi-domain merge" `Quick test_merge_multi_domain;
          Alcotest.test_case "deterministic merge" `Quick
            test_merge_deterministic;
          Alcotest.test_case "drop newest" `Quick test_drop_newest;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
          Alcotest.test_case "concurrent taps" `Quick test_tap_concurrent;
        ] );
      ( "flight",
        [
          Alcotest.test_case "wraparound ring" `Quick test_flight_wraparound;
          Alcotest.test_case "trace context" `Quick test_trace_context;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and histograms" `Quick test_metrics;
          Alcotest.test_case "quantile interpolation" `Quick
            test_quantile_uniform;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "windows" `Quick test_windows;
          Alcotest.test_case "parallel recording" `Quick test_metrics_parallel;
        ] );
    ]
