(* Owl_obs test suite: the JSON emitter/parser pair, the null sink, span
   nesting and per-domain ordering, the deterministic ring-buffer merge,
   the Chrome trace export, and the metrics registry. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* {1 JSON} *)

let test_json_escape () =
  checks "quote" "a\\\"b" (Json.escape "a\"b");
  checks "backslash" "a\\\\b" (Json.escape "a\\b");
  checks "newline" "a\\u000ab" (Json.escape "a\nb");
  checks "tab" "\\u0009" (Json.escape "\t");
  checks "nul" "\\u0000" (Json.escape "\000");
  (* non-ASCII bytes pass through untouched, so UTF-8 stays UTF-8 *)
  checks "utf8" "caf\xc3\xa9" (Json.escape "caf\xc3\xa9");
  checks "str" "\"x\\\\y\"" (Json.str "x\\y")

let test_json_num () =
  checks "int-valued" "42" (Json.num 42.0);
  checks "negative" "-7" (Json.num (-7.0));
  checks "fraction" "2.5" (Json.num 2.5);
  checks "nan" "null" (Json.num Float.nan);
  checks "inf" "null" (Json.num Float.infinity)

let test_json_roundtrip () =
  let roundtrip s =
    match Json.parse (Json.str s) with
    | Json.String s' -> s'
    | _ -> Alcotest.fail "expected a string"
  in
  List.iter
    (fun s -> checks ("roundtrip " ^ String.escaped s) s (roundtrip s))
    [
      "plain";
      "control\n\t\r chars\012\b";
      "back\\slash and \"quotes\"";
      "non-ascii caf\xc3\xa9 \xf0\x9f\xa6\x89";
      "\000embedded\000nul\000";
    ];
  (* \uXXXX escapes decode to UTF-8, surrogate pairs included *)
  (match Json.parse "\"\\u00e9\"" with
  | Json.String s -> checks "bmp escape" "\xc3\xa9" s
  | _ -> Alcotest.fail "expected a string");
  (match Json.parse "\"\\ud83d\\ude00\"" with
  | Json.String s -> checks "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected a string");
  (* documents compose by concatenation and parse back *)
  let doc =
    Json.obj
      [
        ("a", Json.int 1);
        ("b", Json.arr [ Json.bool true; Json.str "x" ]);
        ("c", Json.num 1.5);
      ]
  in
  match Json.parse doc with
  | Json.Obj _ as v ->
      (match Json.member "a" v with
      | Some (Json.Num f) -> checkb "a" true (f = 1.0)
      | _ -> Alcotest.fail "missing a");
      (match Json.member "b" v with
      | Some (Json.Arr [ Json.Bool true; Json.String "x" ]) -> ()
      | _ -> Alcotest.fail "bad b");
      checkb "no d" true (Json.member "d" v = None)
  | _ -> Alcotest.fail "expected an object"

let test_json_errors () =
  let fails s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.fail ("parse should fail: " ^ s)
  in
  List.iter fails
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "tru"; "nan" ]

(* {1 Null sink} *)

let test_null_sink () =
  Obs.disable ();
  Obs.disable_metrics ();
  let r = Obs.span "nothing" (fun () -> 41 + 1) in
  checki "span passes value through" 42 r;
  Obs.instant "nothing";
  checki "no events" 0 (List.length (Obs.events ()));
  checki "no drops" 0 (Obs.dropped ());
  (* exceptions pass through undisturbed *)
  (match Obs.span "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  checki "still no events" 0 (List.length (Obs.events ()))

(* {1 Spans and ordering} *)

(* per-domain streams must follow stack discipline: every End matches the
   most recent open Begin *)
let well_nested events =
  let ok = ref true in
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.event) ->
      let stack =
        match Hashtbl.find_opt stacks e.Obs.dom with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks e.Obs.dom s;
            s
      in
      match e.Obs.ph with
      | Obs.Begin -> stack := e.Obs.name :: !stack
      | Obs.End -> (
          match !stack with
          | top :: rest when top = e.Obs.name -> stack := rest
          | _ -> ok := false)
      | Obs.Instant -> ())
    events;
  Hashtbl.iter (fun _ s -> if !s <> [] then ok := false) stacks;
  !ok

let test_span_nesting () =
  Obs.enable ();
  let r =
    Obs.span "outer" ~args:[ ("k", Obs.Int 1) ] (fun () ->
        Obs.instant "mark";
        Obs.span "inner"
          ~result:(fun v -> [ ("v", Obs.Int v) ])
          (fun () -> 7))
  in
  checki "value" 7 r;
  (* a raising span still closes *)
  (match Obs.span "raiser" (fun () -> failwith "expected") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  let evs = Obs.events () in
  Obs.disable ();
  let names ph =
    List.filter_map
      (fun (e : Obs.event) -> if e.Obs.ph = ph then Some e.Obs.name else None)
      evs
  in
  check
    Alcotest.(list string)
    "begins in order"
    [ "outer"; "inner"; "raiser" ]
    (names Obs.Begin);
  check
    Alcotest.(list string)
    "ends in order"
    [ "inner"; "outer"; "raiser" ]
    (names Obs.End);
  check Alcotest.(list string) "instant" [ "mark" ] (names Obs.Instant);
  checkb "well nested" true (well_nested evs);
  (* the End of the raising span carries the exception *)
  let raiser_end =
    List.find
      (fun (e : Obs.event) -> e.Obs.ph = Obs.End && e.Obs.name = "raiser")
      evs
  in
  checkb "exception arg" true
    (List.mem_assoc "exception" raiser_end.Obs.args);
  (* result args land on the End event *)
  let inner_end =
    List.find
      (fun (e : Obs.event) -> e.Obs.ph = Obs.End && e.Obs.name = "inner")
      evs
  in
  checkb "result arg" true (inner_end.Obs.args = [ ("v", Obs.Int 7) ]);
  (* timestamps never decrease within the merged stream of one domain *)
  let rec monotonic = function
    | (a : Obs.event) :: (b : Obs.event) :: rest ->
        a.Obs.ts <= b.Obs.ts && monotonic (b :: rest)
    | _ -> true
  in
  checkb "timestamps" true (monotonic evs)

(* {1 Multi-domain recording and the deterministic merge} *)

let burst id rounds =
  for i = 1 to rounds do
    Obs.span "work"
      ~args:[ ("who", Obs.Int id); ("i", Obs.Int i) ]
      (fun () -> Obs.instant "tick" ~args:[ ("who", Obs.Int id) ])
  done

let run_burst ~domains ~rounds =
  Obs.enable ();
  let spawned =
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> burst (i + 1) rounds))
  in
  burst 0 rounds;
  List.iter Domain.join spawned;
  let evs = Obs.events () in
  Obs.disable ();
  evs

let test_merge_multi_domain () =
  List.iter
    (fun domains ->
      let rounds = 50 in
      let evs = run_burst ~domains ~rounds in
      (* every domain contributed all of its events: 2 span events + 1
         instant per round *)
      checki
        (Printf.sprintf "event count at %d domains" domains)
        (domains * rounds * 3)
        (List.length evs);
      checki "nothing dropped" 0 (Obs.dropped ());
      checkb "well nested per domain" true (well_nested evs);
      (* the merge preserves every domain's own order exactly: per-domain
         sequence numbers appear strictly increasing *)
      let last_seq = Hashtbl.create 8 in
      List.iter
        (fun (e : Obs.event) ->
          (match Hashtbl.find_opt last_seq e.Obs.dom with
          | Some prev ->
              checkb "per-domain order" true (e.Obs.seq > prev)
          | None -> ());
          Hashtbl.replace last_seq e.Obs.dom e.Obs.seq)
        evs;
      checki
        (Printf.sprintf "domains seen at %d domains" domains)
        domains
        (Hashtbl.length last_seq))
    [ 1; 4 ]

let test_merge_deterministic () =
  (* the merge is a pure function of the recorded buffers: merging twice
     yields the identical stream *)
  Obs.enable ();
  let spawned =
    List.init 3 (fun i -> Domain.spawn (fun () -> burst (i + 1) 25))
  in
  burst 0 25;
  List.iter Domain.join spawned;
  let a = Obs.events () in
  let b = Obs.events () in
  Obs.disable ();
  checkb "same stream" true (a = b);
  checki "jobs=4 event count" (4 * 25 * 3) (List.length a)

let test_drop_newest () =
  Obs.enable ~capacity:4 ();
  for i = 1 to 10 do
    Obs.instant "e" ~args:[ ("i", Obs.Int i) ]
  done;
  let evs = Obs.events () in
  let n_dropped = Obs.dropped () in
  Obs.disable ();
  checki "kept prefix" 4 (List.length evs);
  checki "dropped the rest" 6 n_dropped;
  (* drop-newest keeps the earliest events *)
  List.iteri
    (fun idx (e : Obs.event) ->
      checkb "prefix kept in order" true (e.Obs.args = [ ("i", Obs.Int (idx + 1)) ]))
    evs

(* {1 Chrome trace export} *)

let test_chrome_trace () =
  Obs.enable ();
  ignore
    (Obs.span "phase"
       ~args:[ ("answer", Obs.Int 42); ("label", Obs.Str "a \"b\"\n") ]
       (fun () ->
         Obs.instant "blip" ~args:[ ("ok", Obs.Bool true) ];
         17));
  let s = Obs.chrome_trace_string () in
  Obs.disable ();
  let doc =
    match Json.parse s with
    | v -> v
    | exception Json.Parse_error m -> Alcotest.fail ("invalid JSON: " ^ m)
  in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  checkb "has events" true (List.length events > 0);
  let str_member k v =
    match Json.member k v with
    | Some (Json.String s) -> Some s
    | _ -> None
  in
  let phase_events =
    List.filter
      (fun e ->
        match str_member "ph" e with
        | Some ("B" | "E" | "i") -> true
        | Some "M" -> false
        | _ -> Alcotest.fail "event without a known ph")
      events
  in
  checki "B + E + i" 3 (List.length phase_events);
  (* every non-metadata event round-trips the required fields *)
  List.iter
    (fun e ->
      checkb "name" true (str_member "name" e <> None);
      (match Json.member "ts" e with
      | Some (Json.Num ts) -> checkb "ts >= 0" true (ts >= 0.0)
      | _ -> Alcotest.fail "missing ts");
      (match Json.member "pid" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "missing pid");
      match Json.member "tid" e with
      | Some (Json.Num _) -> ()
      | _ -> Alcotest.fail "missing tid")
    phase_events;
  (* instants carry a scope; span args survive escaping *)
  let instant =
    List.find (fun e -> str_member "ph" e = Some "i") phase_events
  in
  checkb "instant scope" true (str_member "s" instant = Some "t");
  let begin_ev =
    List.find (fun e -> str_member "ph" e = Some "B") phase_events
  in
  match Json.member "args" begin_ev with
  | Some args -> (
      (match Json.member "answer" args with
      | Some (Json.Num f) -> checkb "int arg" true (f = 42.0)
      | _ -> Alcotest.fail "missing int arg");
      match Json.member "label" args with
      | Some (Json.String s) -> checks "escaped arg" "a \"b\"\n" s
      | _ -> Alcotest.fail "missing str arg")
  | None -> Alcotest.fail "missing args"

(* {1 Metrics} *)

let test_metrics () =
  Obs.reset_metrics ();
  let c = Obs.counter "test.counter" in
  let h = Obs.histogram "test.histogram" in
  (* disabled: recording is a no-op *)
  Obs.disable_metrics ();
  Obs.incr c;
  Obs.observe h 100;
  checkb "disabled records nothing" true
    (List.for_all
       (fun (m : Obs.metric) ->
         m.Obs.metric_name <> "test.counter"
         && m.Obs.metric_name <> "test.histogram")
       (Obs.metrics ()));
  Obs.enable_metrics ();
  Obs.incr c;
  Obs.incr ~by:4 c;
  List.iter (Obs.observe h) [ 1; 2; 3; 4; 1000 ];
  Obs.disable_metrics ();
  let find name =
    List.find (fun (m : Obs.metric) -> m.Obs.metric_name = name) (Obs.metrics ())
  in
  let mc = find "test.counter" in
  checki "counter value" 5 mc.Obs.count;
  let mh = find "test.histogram" in
  checki "histogram count" 5 mh.Obs.count;
  checki "histogram sum" 1010 mh.Obs.sum;
  checki "histogram min" 1 mh.Obs.min_value;
  checki "histogram max" 1000 mh.Obs.max_value;
  (* log-scale quantiles report bucket upper bounds *)
  checki "p50" 3 mh.Obs.p50;
  checki "p99" 1023 mh.Obs.p99;
  checkb "summary mentions both" true
    (let s = Obs.summary_table () in
     let contains sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains "test.counter" && contains "test.histogram");
  Obs.reset_metrics ();
  checkb "reset clears" true
    (List.for_all
       (fun (m : Obs.metric) -> m.Obs.metric_name <> "test.counter")
       (Obs.metrics ()))

let test_metrics_parallel () =
  Obs.reset_metrics ();
  Obs.enable_metrics ();
  let c = Obs.counter "test.par.counter" in
  let h = Obs.histogram "test.par.histogram" in
  let worker () =
    for i = 1 to 1000 do
      Obs.incr c;
      Obs.observe h i
    done
  in
  let spawned = List.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Obs.disable_metrics ();
  let find name =
    List.find (fun (m : Obs.metric) -> m.Obs.metric_name = name) (Obs.metrics ())
  in
  checki "atomic counter" 4000 (find "test.par.counter").Obs.count;
  checki "atomic histogram count" 4000 (find "test.par.histogram").Obs.count;
  checki "atomic histogram sum" (4 * 500500) (find "test.par.histogram").Obs.sum;
  Obs.reset_metrics ()

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escape" `Quick test_json_escape;
          Alcotest.test_case "num" `Quick test_json_num;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "multi-domain merge" `Quick test_merge_multi_domain;
          Alcotest.test_case "deterministic merge" `Quick
            test_merge_deterministic;
          Alcotest.test_case "drop newest" `Quick test_drop_newest;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and histograms" `Quick test_metrics;
          Alcotest.test_case "parallel recording" `Quick test_metrics_parallel;
        ] );
    ]
