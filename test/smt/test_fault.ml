(* Fault-injection plans: parsing, and the check/task hooks observed
   through the public Solver API.

   The plan state is process-global, so every test clears it on the way
   out (Fun.protect) — a leaked plan would silently corrupt later tests. *)

let with_plan s f =
  Fault.install (Fault.parse s);
  Fun.protect ~finally:Fault.clear f

let test_parse_roundtrip () =
  let canon s = Fault.to_string (Fault.parse s) in
  Alcotest.(check string)
    "canonical order" "unknown@2,corrupt@7,crash@1,seed=5"
    (canon "crash@1,seed=5,corrupt@7,unknown@2");
  Alcotest.(check string)
    "duplicates collapse" "unknown@3"
    (canon "unknown@3,unknown@3");
  Alcotest.(check string)
    "default seed omitted" "corrupt@1" (canon "corrupt@1,seed=0");
  Alcotest.(check string)
    "whitespace tolerated" "crash@2,crash@4"
    (canon " crash@4 , crash@2 ")

let test_parse_errors () =
  let rejects s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" s)
      true
      (match Fault.parse s with
      | exception Fault.Parse_error _ -> true
      | _ -> false)
  in
  List.iter rejects
    [ ""; "bogus@1"; "unknown@0"; "unknown@x"; "seed=oops"; "unknown";
      "worker_kill@0"; "conn_drop"; "frame_delay@"; "shed@-1" ]

let test_parse_serve_directives () =
  let canon s = Fault.to_string (Fault.parse s) in
  Alcotest.(check string)
    "serve directives canonicalize"
    "worker_kill@2,conn_drop@3,frame_delay@1,shed@4,seed=9"
    (canon "shed@4,frame_delay@1,seed=9,conn_drop@3,worker_kill@2");
  Alcotest.(check string)
    "mixed with solver directives"
    "unknown@1,crash@2,worker_kill@1,conn_drop@5"
    (canon "conn_drop@5,worker_kill@1,crash@2,unknown@1");
  Alcotest.(check string)
    "serve duplicates collapse" "shed@2" (canon "shed@2,shed@2")

let test_serve_hooks () =
  with_plan "worker_kill@2,conn_drop@1,frame_delay@2,shed@3" (fun () ->
      (* service jobs: 1 clean, 2 kills, 3 clean *)
      Fault.on_serve_job ();
      (match Fault.on_serve_job () with
      | exception Fault.Injected_worker_kill 2 -> ()
      | exception Fault.Injected_worker_kill i ->
          Alcotest.fail (Printf.sprintf "killed at index %d" i)
      | () -> Alcotest.fail "job 2 should kill its worker");
      Fault.on_serve_job ();
      (* frames: 1 drops (winning over nothing), 2 delays, 3 clean *)
      (match Fault.on_frame () with
      | Some Fault.Drop_conn -> ()
      | _ -> Alcotest.fail "frame 1 should drop the connection");
      (match Fault.on_frame () with
      | Some (Fault.Delay d) ->
          Alcotest.(check (float 1e-9))
            "delay magnitude" Fault.frame_delay_seconds d
      | _ -> Alcotest.fail "frame 2 should delay");
      Alcotest.(check bool) "frame 3 clean" true (Fault.on_frame () = None);
      (* admissions: 1-2 honest, 3 shed *)
      Alcotest.(check bool) "admit 1" false (Fault.on_admit ());
      Alcotest.(check bool) "admit 2" false (Fault.on_admit ());
      Alcotest.(check bool) "admit 3 shed" true (Fault.on_admit ());
      Alcotest.(check int) "four faults fired" 4 (Fault.fired ()));
  (* plan cleared: every hook free *)
  Fault.on_serve_job ();
  Alcotest.(check bool) "no frame fault" true (Fault.on_frame () = None);
  Alcotest.(check bool) "no shed" false (Fault.on_admit ())

let test_drop_beats_delay () =
  with_plan "conn_drop@1,frame_delay@1" (fun () ->
      match Fault.on_frame () with
      | Some Fault.Drop_conn -> ()
      | _ -> Alcotest.fail "conn_drop@N must win over frame_delay@N")

(* one assertion pinning x to a constant: Sat with exactly one honest
   model, so corruption is detectable as "model value <> 5" *)
let pinned () = [ Term.eq (Term.var "x" 8) (Term.const (Bitvec.of_int ~width:8 5)) ]

let value_of = function
  | Solver.Sat (m, _) -> (
      match m.Solver.var_value "x" with
      | Some v -> Bitvec.to_int_exn v
      | None -> Alcotest.fail "model missing x")
  | _ -> Alcotest.fail "expected Sat"

let test_spurious_unknown () =
  with_plan "unknown@1" (fun () ->
      (match Solver.check (pinned ()) with
      | Solver.Unknown _ -> ()
      | _ -> Alcotest.fail "planned check should be Unknown");
      Alcotest.(check int) "fault fired" 1 (Fault.fired ());
      (* the next check (index 2, unplanned) is honest *)
      Alcotest.(check int) "honest after fault" 5
        (value_of (Solver.check (pinned ()))));
  (* plan cleared: first check honest again *)
  Alcotest.(check int) "honest without plan" 5
    (value_of (Solver.check (pinned ())))

let test_corrupt_model () =
  with_plan "corrupt@1,seed=7" (fun () ->
      let v = value_of (Solver.check (pinned ())) in
      Alcotest.(check bool)
        (Printf.sprintf "corrupted value (got %d)" v)
        true (v <> 5);
      Alcotest.(check int) "fault fired" 1 (Fault.fired ());
      Alcotest.(check int) "honest after fault" 5
        (value_of (Solver.check (pinned ()))))

let test_corrupt_session_retry () =
  (* a session retry of the same corrupted check reproduces the honest
     model — the corruption damages only the returned copy, never the
     solver state.  This is the property the engine's validation-retry
     path relies on. *)
  with_plan "corrupt@1,seed=7" (fun () ->
      let s = Solver.Session.create () in
      let v1 =
        match Solver.Session.check_with s (pinned ()) with
        | Solver.Sat (m, _) -> m.Solver.var_value "x"
        | _ -> Alcotest.fail "expected Sat"
      in
      Alcotest.(check bool) "first model corrupted" true
        (v1 <> Some (Bitvec.of_int ~width:8 5));
      match Solver.Session.check_with s [] with
      | Solver.Sat (m, _) ->
          Alcotest.(check bool) "retry honest" true
            (m.Solver.var_value "x" = Some (Bitvec.of_int ~width:8 5))
      | _ -> Alcotest.fail "retry should be Sat")

let test_unknown_beats_corrupt () =
  with_plan "unknown@1,corrupt@1" (fun () ->
      match Solver.check (pinned ()) with
      | Solver.Unknown _ -> ()
      | _ -> Alcotest.fail "unknown@N must win over corrupt@N")

let test_task_crash () =
  with_plan "crash@2" (fun () ->
      Fault.on_task ();  (* attempt 1: planned clean *)
      (match Fault.on_task () with
      | exception Fault.Injected_crash 2 -> ()
      | exception Fault.Injected_crash i ->
          Alcotest.fail (Printf.sprintf "crashed with index %d" i)
      | () -> Alcotest.fail "attempt 2 should crash");
      Fault.on_task ();  (* attempt 3: clean again *)
      Alcotest.(check int) "one crash fired" 1 (Fault.fired ()));
  Fault.on_task () (* no plan: free *)

let test_env_install () =
  (* install_from_env reads OWL_FAULT_PLAN; absent/blank means no plan *)
  Alcotest.(check bool) "no env, no plan" false
    (Sys.getenv_opt "OWL_FAULT_PLAN" = None && Fault.install_from_env ());
  Alcotest.(check bool) "still inactive" false (Fault.active ())

let () =
  Alcotest.run "fault"
    [ ("plan",
       [ Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
         Alcotest.test_case "parse errors" `Quick test_parse_errors;
         Alcotest.test_case "serve directives" `Quick
           test_parse_serve_directives;
         Alcotest.test_case "env install" `Quick test_env_install ]);
      ("injection",
       [ Alcotest.test_case "spurious unknown" `Quick test_spurious_unknown;
         Alcotest.test_case "corrupt model" `Quick test_corrupt_model;
         Alcotest.test_case "corrupt then session retry" `Quick
           test_corrupt_session_retry;
         Alcotest.test_case "unknown beats corrupt" `Quick
           test_unknown_beats_corrupt;
         Alcotest.test_case "task crash" `Quick test_task_crash;
         Alcotest.test_case "serve hooks" `Quick test_serve_hooks;
         Alcotest.test_case "drop beats delay" `Quick test_drop_beats_delay ]) ]
