(* Tests for the SAT core's modern passes: LBD-tiered retention,
   best-phase rephasing, and inprocessing (subsumption, self-subsuming
   resolution, vivification, bounded variable elimination).

   Every pass is an optimization, never a semantic change, so the
   properties are all equivalences: each single-pass configuration — and
   the aggressive everything-on configuration — must agree with the
   brute-force oracle on small CNFs, agree with the legacy conservative
   solver on larger ones, and [Solver.Session]s built over any
   configuration must agree with fresh checks under activation-literal
   retraction and fault injection.  Inprocessing intervals are forced to
   1 so the passes actually run whenever the search restarts. *)

(* {1 Configurations under test} *)

let conservative = Sat.conservative_config

(* each pass alone on top of the legacy solver, inprocessing every
   restart; the [all] row is the aggressive profile at interval 1 *)
let pass_configs =
  let base = { Sat.conservative_config with Sat.inprocess_interval = 1 } in
  [ ("lbd", { base with Sat.lbd_retention = true });
    ("rephase", { base with Sat.rephase = true });
    ("subsume", { base with Sat.subsume = true });
    ("vivify", { base with Sat.vivify = true });
    ("elim", { base with Sat.elim = true });
    ("all", { Sat.aggressive_config with Sat.inprocess_interval = 1 }) ]

let aggressive1 = List.assoc "all" pass_configs

(* {1 Brute-force oracle (as in test_sat.ml)} *)

let brute_force nvars clauses =
  let sat = ref false in
  let n = 1 lsl nvars in
  let assignment = Array.make (nvars + 1) false in
  let i = ref 0 in
  while (not !sat) && !i < n do
    for v = 1 to nvars do
      assignment.(v) <- (!i lsr (v - 1)) land 1 = 1
    done;
    let ok =
      List.for_all
        (fun c -> List.exists (fun l -> assignment.(abs l) = (l > 0)) c)
        clauses
    in
    if ok then sat := true;
    incr i
  done;
  !sat

let model_satisfies s clauses =
  List.for_all
    (fun c -> List.exists (fun l -> Sat.value s (abs l) = (l > 0)) c)
    clauses

let mk_solver ?config nvars clauses =
  let s = Sat.create ?config () in
  for _ = 1 to nvars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) clauses;
  s

(* {1 Random CNFs} *)

let gen_cnf =
  QCheck.Gen.(
    2 -- 12 >>= fun nvars ->
    0 -- 60 >>= fun nclauses ->
    let gen_lit =
      pair (1 -- nvars) bool >>= fun (v, s) -> return (if s then v else -v)
    in
    let gen_clause = list_size (1 -- 4) gen_lit in
    list_size (return nclauses) gen_clause >>= fun clauses ->
    return (nvars, clauses))

let print_cnf (n, cs) =
  Printf.sprintf "nvars=%d %s" n
    (String.concat " "
       (List.map
          (fun c -> "(" ^ String.concat "," (List.map string_of_int c) ^ ")")
          cs))

let arb_cnf = QCheck.make gen_cnf ~print:print_cnf

(* larger 3-SAT instances near the phase transition: enough conflicts to
   restart (and therefore inprocess), too many variables for the
   brute-force oracle — the legacy conservative solver is the reference *)
let gen_cnf3 =
  QCheck.Gen.(
    15 -- 40 >>= fun nvars ->
    let nclauses = nvars * 4 in
    let gen_lit =
      pair (1 -- nvars) bool >>= fun (v, s) -> return (if s then v else -v)
    in
    let gen_clause = list_size (return 3) gen_lit in
    list_size (return nclauses) gen_clause >>= fun clauses ->
    return (nvars, clauses))

let arb_cnf3 = QCheck.make gen_cnf3 ~print:print_cnf

(* each pass agrees with the brute-force oracle, and Sat models satisfy
   every clause (elimination must reconstruct eliminated variables) *)
let prop_pass_matches_oracle (tag, config) =
  QCheck.Test.make ~count:400
    ~name:(Printf.sprintf "pass %s agrees with brute force" tag) arb_cnf
    (fun (nvars, clauses) ->
      let s = mk_solver ~config nvars clauses in
      match Sat.solve s with
      | Sat.Sat -> brute_force nvars clauses && model_satisfies s clauses
      | Sat.Unsat -> not (brute_force nvars clauses)
      | Sat.Unknown -> false)

(* on restart-heavy instances every pass agrees with the legacy solver *)
let prop_pass_matches_conservative (tag, config) =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "pass %s agrees with conservative" tag) arb_cnf3
    (fun (nvars, clauses) ->
      let reference = mk_solver ~config:conservative nvars clauses in
      let s = mk_solver ~config nvars clauses in
      match (Sat.solve s, Sat.solve reference) with
      | Sat.Sat, Sat.Sat -> model_satisfies s clauses
      | Sat.Unsat, Sat.Unsat -> true
      | _ -> false)

(* assumptions after an unconstrained solve: a solve may eliminate
   variables, and a later solve naming them in assumptions must restore
   them (and still agree with the oracle); then clause addition over
   possibly-eliminated variables, same deal *)
let prop_assumptions_after_elim =
  QCheck.Test.make ~count:300 ~name:"assumptions after elimination"
    (QCheck.pair arb_cnf
       (QCheck.make QCheck.Gen.(list_size (1 -- 3) (pair (1 -- 4) bool))))
    (fun ((nvars, clauses), assum_raw) ->
      let assum =
        List.sort_uniq Stdlib.compare
          (List.map (fun (v, s) -> if s then v else -v) assum_raw)
      in
      let contradictory = List.exists (fun l -> List.mem (-l) assum) assum in
      QCheck.assume (not contradictory);
      let nvars = max nvars 4 in
      let s = mk_solver ~config:aggressive1 nvars clauses in
      ignore (Sat.solve s);
      let expected =
        brute_force nvars (List.map (fun l -> [ l ]) assum @ clauses)
      in
      let first_ok =
        match Sat.solve ~assumptions:assum s with
        | Sat.Sat -> expected && model_satisfies s clauses
        | Sat.Unsat -> not expected
        | Sat.Unknown -> false
      in
      (* adding the assumptions as unit clauses afterwards re-constrains
         any variable elimination touched *)
      List.iter (fun l -> Sat.add_clause s [ l ]) assum;
      let second_ok =
        match Sat.solve s with
        | Sat.Sat -> expected && model_satisfies s clauses
        | Sat.Unsat -> not expected
        | Sat.Unknown -> false
      in
      first_ok && second_ok)

(* {1 Structured instances: the passes demonstrably fire} *)

let pigeonhole ?config p h =
  let s = Sat.create ?config () in
  let v = Array.make_matrix p h 0 in
  for i = 0 to p - 1 do
    for j = 0 to h - 1 do
      v.(i).(j) <- Sat.new_var s
    done
  done;
  for i = 0 to p - 1 do
    Sat.add_clause s (Array.to_list v.(i))
  done;
  for j = 0 to h - 1 do
    for i1 = 0 to p - 1 do
      for i2 = i1 + 1 to p - 1 do
        Sat.add_clause s [ -v.(i1).(j); -v.(i2).(j) ]
      done
    done
  done;
  s

let test_pigeonhole_all_passes () =
  List.iter
    (fun (tag, config) ->
      let s = pigeonhole ~config 6 5 in
      Alcotest.(check bool)
        (Printf.sprintf "php 6 5 unsat under %s" tag)
        true
        (Sat.solve s = Sat.Unsat))
    pass_configs

let test_passes_engage () =
  (* php 7 6 restarts many times; with interval 1 the inprocessing
     passes must actually report work — a regression that silently turns
     a pass off would otherwise keep every equivalence test green *)
  let s = pigeonhole ~config:aggressive1 7 6 in
  Alcotest.(check bool) "php 7 6 unsat" true (Sat.solve s = Sat.Unsat);
  Alcotest.(check bool) "restarts happened" true (Sat.restarts s > 0);
  Alcotest.(check bool)
    "inprocessing reported work" true
    (Sat.subsumed s + Sat.strengthened s + Sat.vivified s
       + Sat.eliminated_vars s
     > 0)

let test_rephase_engages () =
  let config =
    { conservative with Sat.rephase = true; inprocess_interval = 1 }
  in
  let s = pigeonhole ~config 8 7 in
  Alcotest.(check bool) "php 8 7 unsat" true (Sat.solve s = Sat.Unsat);
  Alcotest.(check bool) "rephasing fired" true (Sat.rephases s > 0)

let test_interval_validation () =
  Alcotest.check_raises "interval 0 rejected"
    (Invalid_argument "Sat.create: inprocess_interval < 1")
    (fun () ->
      ignore
        (Sat.create ~config:{ conservative with Sat.inprocess_interval = 0 } ()))

(* {1 Sessions: retraction and fault injection across configurations} *)

let model_env (m : Solver.model) name width =
  match m.Solver.var_value name with
  | Some v -> v
  | None -> Bitvec.zero width

let satisfies gs m =
  let env name =
    let w = List.assoc name Gen_terms.all_vars in
    model_env m name w
  in
  List.for_all (fun g -> Bitvec.is_ones (g.Gen_terms.reval env)) gs

let agree a b =
  match (a, b) with
  | Solver.Sat _, Solver.Sat _ | Solver.Unsat _, Solver.Unsat _ -> true
  | _ -> false

(* a session under the aggressive interval-1 configuration must track a
   conservative session through asserts, guarded asserts, retraction,
   and checks — and every Sat model must satisfy what binds *)
let prop_session_profiles_agree =
  QCheck.Test.make ~count:100 ~name:"sessions agree across configurations"
    (QCheck.triple Gen_terms.arb_bool_term Gen_terms.arb_bool_term
       Gen_terms.arb_bool_term)
    (fun (g1, g2, g3) ->
      let t1 = g1.Gen_terms.term
      and t2 = g2.Gen_terms.term
      and t3 = g3.Gen_terms.term in
      let run config =
        let s = Solver.Session.create ~config () in
        Solver.Session.assert_always s t1;
        let g = Solver.Session.assert_retractable s t2 in
        let r1 = Solver.Session.check_with ~assumptions:[ g ] s [] in
        Solver.Session.retract s g;
        let r2 = Solver.Session.check_with s [ t3 ] in
        (* assuming the retracted guard must be contradictory *)
        let dead =
          match Solver.Session.check_with ~assumptions:[ g ] s [] with
          | Solver.Unsat _ -> true
          | _ -> false
        in
        (r1, r2, dead)
      in
      let c1, c2, cdead = run conservative in
      let a1, a2, adead = run aggressive1 in
      agree c1 a1 && agree c2 a2 && cdead && adead
      && (match a1 with
         | Solver.Sat (m, _) -> satisfies [ g1; g2 ] m
         | _ -> true)
      &&
      match a2 with
      | Solver.Sat (m, _) -> satisfies [ g1; g3 ] m
      | _ -> true)

(* fault injection: spurious Unknowns and corrupted model copies must
   leave an inprocessing session exactly as recoverable as a legacy one *)
let test_faults_across_profiles () =
  List.iter
    (fun (tag, config) ->
      Fault.install (Fault.parse "unknown@1,corrupt@2,seed=7");
      Fun.protect ~finally:Fault.clear (fun () ->
          let s = Solver.Session.create ~config () in
          let x = Term.var "gv8_0" 8 in
          let pinned = Term.eq x (Term.of_int ~width:8 42) in
          (match Solver.Session.check_with s [ pinned ] with
          | Solver.Unknown _ -> ()
          | _ -> Alcotest.failf "%s: planned Unknown missing" tag);
          (* check 2 returns a corrupted model copy; check 3 is honest
             and must see the pinned value — the corruption never reaches
             solver state, inprocessing or not *)
          ignore (Solver.Session.check_with s []);
          match Solver.Session.check_with s [] with
          | Solver.Sat (m, _) -> (
              match m.Solver.var_value "gv8_0" with
              | Some v ->
                  Alcotest.(check int)
                    (Printf.sprintf "%s: honest after faults" tag)
                    42 (Bitvec.to_int_exn v)
              | None -> Alcotest.failf "%s: model missing gv8_0" tag)
          | _ -> Alcotest.failf "%s: expected Sat after faults" tag))
    [ ("conservative", conservative); ("aggressive", aggressive1) ]

let () =
  Alcotest.run "inprocess"
    [ ("oracle",
       List.map QCheck_alcotest.to_alcotest
         (List.map prop_pass_matches_oracle pass_configs
         @ List.map prop_pass_matches_conservative pass_configs
         @ [ prop_assumptions_after_elim ]));
      ("structured",
       [ Alcotest.test_case "pigeonhole all passes" `Quick
           test_pigeonhole_all_passes;
         Alcotest.test_case "passes engage" `Quick test_passes_engage;
         Alcotest.test_case "rephase engages" `Quick test_rephase_engages;
         Alcotest.test_case "interval validation" `Quick
           test_interval_validation ]);
      ("sessions",
       Alcotest.test_case "faults across profiles" `Quick
         test_faults_across_profiles
       :: List.map QCheck_alcotest.to_alcotest [ prop_session_profiles_agree ])
    ]
