(* Tests for the CDCL SAT solver: random CNFs cross-checked against a
   brute-force oracle, pigeonhole instances, assumptions, incrementality,
   and budget behaviour. *)

(* {1 Brute-force oracle} *)

let brute_force nvars clauses =
  let sat = ref false in
  let n = 1 lsl nvars in
  let assignment = Array.make (nvars + 1) false in
  let i = ref 0 in
  while (not !sat) && !i < n do
    for v = 1 to nvars do
      assignment.(v) <- (!i lsr (v - 1)) land 1 = 1
    done;
    let ok =
      List.for_all
        (fun c ->
          List.exists (fun l -> assignment.(abs l) = (l > 0)) c)
        clauses
    in
    if ok then sat := true;
    incr i
  done;
  !sat

let model_satisfies s clauses =
  List.for_all
    (fun c -> List.exists (fun l -> Sat.value s (abs l) = (l > 0)) c)
    clauses

let mk_solver nvars clauses =
  let s = Sat.create () in
  for _ = 1 to nvars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) clauses;
  s

(* {1 Random CNF property} *)

let gen_cnf =
  QCheck.Gen.(
    2 -- 12 >>= fun nvars ->
    0 -- 60 >>= fun nclauses ->
    let gen_lit =
      pair (1 -- nvars) bool >>= fun (v, s) -> return (if s then v else -v)
    in
    let gen_clause = list_size (1 -- 4) gen_lit in
    list_size (return nclauses) gen_clause >>= fun clauses ->
    return (nvars, clauses))

let arb_cnf =
  QCheck.make gen_cnf ~print:(fun (n, cs) ->
      Printf.sprintf "nvars=%d %s" n
        (String.concat " "
           (List.map
              (fun c -> "(" ^ String.concat "," (List.map string_of_int c) ^ ")")
              cs)))

let prop_matches_oracle =
  QCheck.Test.make ~count:800 ~name:"solver agrees with brute force" arb_cnf
    (fun (nvars, clauses) ->
      let s = mk_solver nvars clauses in
      match Sat.solve s with
      | Sat.Sat -> brute_force nvars clauses && model_satisfies s clauses
      | Sat.Unsat -> not (brute_force nvars clauses)
      | Sat.Unknown -> false)

let prop_assumptions =
  (* solving under assumptions equals solving with the assumptions added as
     unit clauses; and the solver stays usable afterwards *)
  QCheck.Test.make ~count:400 ~name:"assumptions match unit clauses"
    (QCheck.pair arb_cnf (QCheck.make QCheck.Gen.(list_size (1 -- 3) (pair (1 -- 4) bool))))
    (fun ((nvars, clauses), assum_raw) ->
      let assum =
        List.sort_uniq Stdlib.compare
          (List.map (fun (v, s) -> if s then v else -v) assum_raw)
      in
      (* skip contradictory assumption lists like [1; -1] *)
      let contradictory = List.exists (fun l -> List.mem (-l) assum) assum in
      QCheck.assume (not contradictory);
      let nvars = max nvars 4 in
      let s = mk_solver nvars clauses in
      let r1 = Sat.solve ~assumptions:assum s in
      let expected = brute_force nvars (List.map (fun l -> [ l ]) assum @ clauses) in
      let first_ok =
        match r1 with
        | Sat.Sat -> expected && model_satisfies s clauses
        | Sat.Unsat -> not expected
        | Sat.Unknown -> false
      in
      (* the solver must still answer the unconstrained query correctly *)
      let r2 = Sat.solve s in
      let second_ok =
        match r2 with
        | Sat.Sat -> brute_force nvars clauses
        | Sat.Unsat -> not (brute_force nvars clauses)
        | Sat.Unknown -> false
      in
      first_ok && second_ok)

let prop_incremental =
  QCheck.Test.make ~count:300 ~name:"incremental clause addition"
    (QCheck.pair arb_cnf arb_cnf)
    (fun ((n1, c1), (n2, c2)) ->
      let nvars = max n1 n2 in
      let s = mk_solver nvars c1 in
      ignore (Sat.solve s);
      List.iter (Sat.add_clause s) c2;
      match Sat.solve s with
      | Sat.Sat -> brute_force nvars (c1 @ c2) && model_satisfies s (c1 @ c2)
      | Sat.Unsat -> not (brute_force nvars (c1 @ c2))
      | Sat.Unknown -> false)

(* {1 Structured instances} *)

let pigeonhole p h =
  (* p pigeons, h holes; var (i,j) = pigeon i in hole j; unsat iff p > h *)
  let s = Sat.create () in
  let v = Array.make_matrix p h 0 in
  for i = 0 to p - 1 do
    for j = 0 to h - 1 do
      v.(i).(j) <- Sat.new_var s
    done
  done;
  for i = 0 to p - 1 do
    Sat.add_clause s (Array.to_list v.(i))
  done;
  for j = 0 to h - 1 do
    for i1 = 0 to p - 1 do
      for i2 = i1 + 1 to p - 1 do
        Sat.add_clause s [ -v.(i1).(j); -v.(i2).(j) ]
      done
    done
  done;
  s

let test_pigeonhole () =
  List.iter
    (fun (p, h) ->
      let s = pigeonhole p h in
      let expect = if p > h then Sat.Unsat else Sat.Sat in
      Alcotest.(check bool)
        (Printf.sprintf "php %d %d" p h)
        true
        (Sat.solve s = expect))
    [ (3, 3); (4, 3); (5, 4); (6, 5); (6, 6); (7, 6) ]

let test_budget () =
  let s = pigeonhole 9 8 in
  Alcotest.(check bool) "budget exhausts" true (Sat.solve ~budget:20 s = Sat.Unknown);
  (* a second call with a real budget still works *)
  Alcotest.(check bool) "then solves" true (Sat.solve s = Sat.Unsat)

let test_deadline_expired () =
  (* an already-expired deadline must refuse up front, even on an easy
     instance that would never reach the every-256-conflicts check *)
  let s = Sat.create () in
  let v1 = Sat.new_var s in
  let v2 = Sat.new_var s in
  Sat.add_clause s [ v1; v2 ];
  Alcotest.(check bool)
    "expired deadline unknown" true
    (Sat.solve ~deadline:(Unix.gettimeofday () -. 1.0) s = Sat.Unknown);
  (* the refusal must leave the solver reusable *)
  Alcotest.(check bool) "then solves" true (Sat.solve s = Sat.Sat)

let test_deadline_midsearch () =
  (* php 9 8 needs far more than a few ms of search, so a near-now
     deadline fires the in-search test; afterwards the solver must still
     reach the honest verdict *)
  let s = pigeonhole 9 8 in
  Alcotest.(check bool)
    "mid-search deadline unknown" true
    (Sat.solve ~deadline:(Unix.gettimeofday () +. 0.02) s = Sat.Unknown);
  Alcotest.(check bool) "then solves" true (Sat.solve s = Sat.Unsat)

let test_xor_chain () =
  (* x1 xor x2 xor ... xor xn = 1 with all equalities forced pairwise *)
  let s = Sat.create () in
  let n = 40 in
  let v = Array.init n (fun _ -> Sat.new_var s) in
  (* chain: v_i = v_{i+1} *)
  for i = 0 to n - 2 do
    Sat.add_clause s [ -v.(i); v.(i + 1) ];
    Sat.add_clause s [ v.(i); -v.(i + 1) ]
  done;
  Sat.add_clause s [ v.(0) ];
  Sat.add_clause s [ -v.(n - 1) ];
  Alcotest.(check bool) "equality chain unsat" true (Sat.solve s = Sat.Unsat)

let test_edges () =
  let s = Sat.create () in
  let v1 = Sat.new_var s in
  (* tautology is dropped silently *)
  Sat.add_clause s [ v1; -v1 ];
  Alcotest.(check bool) "tautology sat" true (Sat.solve s = Sat.Sat);
  (* empty clause *)
  let s = Sat.create () in
  Sat.add_clause s [];
  Alcotest.(check bool) "empty clause unsat" true (Sat.solve s = Sat.Unsat);
  (* conflicting units *)
  let s = Sat.create () in
  let v1 = Sat.new_var s in
  Sat.add_clause s [ v1 ];
  Sat.add_clause s [ -v1 ];
  Alcotest.(check bool) "conflicting units unsat" true (Sat.solve s = Sat.Unsat);
  (* unknown variable *)
  let s = Sat.create () in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Sat.add_clause: unknown variable 3") (fun () ->
      Sat.add_clause s [ 3 ]);
  (* duplicate literals collapse *)
  let s = Sat.create () in
  let v1 = Sat.new_var s in
  Sat.add_clause s [ v1; v1; v1 ];
  Alcotest.(check bool) "dup lits" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "unit forced" true (Sat.value s v1);
  (* assumption of a level-0 falsified literal *)
  let s = Sat.create () in
  let v1 = Sat.new_var s in
  Sat.add_clause s [ -v1 ];
  Alcotest.(check bool) "assume falsified" true
    (Sat.solve ~assumptions:[ v1 ] s = Sat.Unsat);
  Alcotest.(check bool) "still sat without" true (Sat.solve s = Sat.Sat)

let test_large_random_3sat () =
  (* below the phase-transition ratio: should be satisfiable and fast *)
  let st = Random.State.make [| 42 |] in
  let nvars = 150 in
  let s = Sat.create () in
  for _ = 1 to nvars do
    ignore (Sat.new_var s)
  done;
  let clauses = ref [] in
  for _ = 1 to 3 * nvars do
    let lit () =
      let v = 1 + Random.State.int st nvars in
      if Random.State.bool st then v else -v
    in
    clauses := [ lit (); lit (); lit () ] :: !clauses
  done;
  List.iter (Sat.add_clause s) !clauses;
  match Sat.solve s with
  | Sat.Sat ->
      Alcotest.(check bool) "model valid" true
        (List.for_all
           (fun c -> List.exists (fun l -> Sat.value s (abs l) = (l > 0)) c)
           !clauses)
  | Sat.Unsat -> () (* possible but extremely unlikely at ratio 3 *)
  | Sat.Unknown -> Alcotest.fail "unknown without budget"

let () =
  Alcotest.run "sat"
    [ ("oracle",
       List.map QCheck_alcotest.to_alcotest
         [ prop_matches_oracle; prop_assumptions; prop_incremental ]);
      ("structured",
       [ Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
         Alcotest.test_case "budget" `Quick test_budget;
         Alcotest.test_case "deadline expired" `Quick test_deadline_expired;
         Alcotest.test_case "deadline mid-search" `Quick test_deadline_midsearch;
         Alcotest.test_case "xor chain" `Quick test_xor_chain;
         Alcotest.test_case "edge cases" `Quick test_edges;
         Alcotest.test_case "random 3sat" `Quick test_large_random_3sat ]) ]
