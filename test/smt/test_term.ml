(* Tests for the Term module: simplifier soundness against the reference
   evaluator, hash-consing, substitution, and targeted rewrite rules. *)

let term_env_of f =
  {
    Term.lookup_var = (fun name _ -> Some (f name));
    Term.lookup_read = (fun _ _ -> None);
  }

let prop name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:1000 ~name arb f)

let props =
  [ prop "eval agrees with reference" Gen_terms.arb_term_env (fun (g, env) ->
        Bitvec.equal (Term.eval (term_env_of env) g.Gen_terms.term) (g.Gen_terms.reval env));
    prop "substitute-all equals eval" Gen_terms.arb_term_env (fun (g, env) ->
        let t' = Term.substitute (term_env_of env) g.Gen_terms.term in
        match Term.is_const t' with
        | Some v -> Bitvec.equal v (g.Gen_terms.reval env)
        | None -> false);
    prop "width preserved" Gen_terms.arb_term_env (fun (g, _) ->
        Term.width g.Gen_terms.term = g.Gen_terms.twidth);
    prop "rename roundtrip" Gen_terms.arb_term_env (fun (g, env) ->
        let fwd s = Some ("rt!" ^ s) in
        let bwd s =
          if String.length s > 3 && String.sub s 0 3 = "rt!" then
            Some (String.sub s 3 (String.length s - 3))
          else None
        in
        let t' = Term.rename bwd (Term.rename fwd g.Gen_terms.term) in
        Bitvec.equal
          (Term.eval (term_env_of env) t')
          (g.Gen_terms.reval env));
    prop "pp then size is stable" Gen_terms.arb_term_env (fun (g, _) ->
        (* printing must not mutate or crash; size is positive *)
        let s = Format.asprintf "%a" Term.pp g.Gen_terms.term in
        String.length s > 0 && Term.size g.Gen_terms.term > 0)
  ]

(* {1 Unit tests for specific rewrites} *)

let tt = Alcotest.testable Term.pp Term.equal

let x8 = Term.var "ut_x8" 8
let y8 = Term.var "ut_y8" 8
let c1 = Term.var "ut_c1" 1

let test_hashcons () =
  Alcotest.(check bool) "physical equality" true
    (Term.equal (Term.add x8 y8) (Term.add y8 x8));
  (* commutative normalization makes these the same node *)
  Alcotest.(check int) "same id"
    (Term.id (Term.band x8 y8))
    (Term.id (Term.band y8 x8));
  Alcotest.check_raises "width clash"
    (Invalid_argument "Term.var: \"ut_x8\" used at width 8 and 4") (fun () ->
      ignore (Term.var "ut_x8" 4))

let test_bool_rewrites () =
  Alcotest.check tt "eq self" Term.tru (Term.eq x8 x8);
  Alcotest.check tt "ult self" Term.fls (Term.ult x8 x8);
  Alcotest.check tt "not not" x8 (Term.bnot (Term.bnot x8));
  Alcotest.check tt "not ult" (Term.ule y8 x8) (Term.bnot (Term.ult x8 y8));
  Alcotest.check tt "and self" x8 (Term.band x8 x8);
  Alcotest.check tt "and complement" (Term.zero 8) (Term.band x8 (Term.bnot x8));
  Alcotest.check tt "or complement" (Term.ones 8) (Term.bor x8 (Term.bnot x8));
  Alcotest.check tt "xor self" (Term.zero 8) (Term.bxor x8 x8);
  Alcotest.check tt "implies false" Term.tru (Term.implies Term.fls c1);
  Alcotest.check tt "eq with true" c1 (Term.eq c1 Term.tru);
  Alcotest.check tt "eq with false" (Term.bnot c1) (Term.eq c1 Term.fls)

let test_arith_rewrites () =
  Alcotest.check tt "add zero" x8 (Term.add x8 (Term.zero 8));
  Alcotest.check tt "sub self" (Term.zero 8) (Term.sub x8 x8);
  Alcotest.check tt "mul one" x8 (Term.mul x8 (Term.one 8));
  Alcotest.check tt "mul zero" (Term.zero 8) (Term.mul x8 (Term.zero 8));
  Alcotest.check tt "shl zero" x8 (Term.shl x8 (Term.zero 3));
  Alcotest.check tt "over-shift" (Term.zero 8) (Term.lshr x8 (Term.of_int ~width:8 9));
  Alcotest.check tt "const fold"
    (Term.of_int ~width:8 30)
    (Term.add (Term.of_int ~width:8 10) (Term.of_int ~width:8 20))

let test_structure_rewrites () =
  Alcotest.check tt "extract full" x8 (Term.extract ~high:7 ~low:0 x8);
  Alcotest.check tt "extract concat hi" x8
    (Term.extract ~high:15 ~low:8 (Term.concat x8 y8));
  Alcotest.check tt "extract concat lo" y8
    (Term.extract ~high:7 ~low:0 (Term.concat x8 y8));
  Alcotest.check tt "concat adjacent extracts" x8
    (Term.concat (Term.extract ~high:7 ~low:4 x8) (Term.extract ~high:3 ~low:0 x8));
  Alcotest.check tt "extract of extract"
    (Term.extract ~high:5 ~low:4 x8)
    (Term.extract ~high:3 ~low:2 (Term.extract ~high:7 ~low:2 x8));
  Alcotest.check tt "zext then extract" x8
    (Term.extract ~high:7 ~low:0 (Term.zext x8 12));
  Alcotest.check tt "ite same" x8 (Term.ite c1 x8 x8);
  Alcotest.check tt "ite true" x8 (Term.ite Term.tru x8 y8);
  Alcotest.check tt "ite not cond" (Term.ite c1 y8 x8)
    (Term.ite (Term.bnot c1) x8 y8);
  Alcotest.check tt "ite bool collapse" c1 (Term.ite c1 Term.tru Term.fls);
  (* eq of ite with const arms resolves to the condition *)
  Alcotest.check tt "eq ite const"
    c1
    (Term.eq (Term.ite c1 (Term.of_int ~width:8 3) (Term.of_int ~width:8 5))
       (Term.of_int ~width:8 3))

let test_table () =
  let tb =
    { Term.tab_name = "ut_sq"; tab_addr_width = 2;
      tab_data = Array.init 4 (fun i -> Bitvec.of_int ~width:4 (i * i)) }
  in
  Alcotest.check tt "const table read"
    (Term.of_int ~width:4 9)
    (Term.table_read tb (Term.of_int ~width:2 3));
  let i2 = Term.var "ut_i2" 2 in
  let t = Term.table_read tb i2 in
  Alcotest.(check int) "symbolic table width" 4 (Term.width t);
  let env v =
    { Term.lookup_var = (fun n _ -> if n = "ut_i2" then Some (Bitvec.of_int ~width:2 v) else None);
      Term.lookup_read = (fun _ _ -> None) }
  in
  for v = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "table eval %d" v)
      true
      (Bitvec.equal (Term.eval (env v) t) (Bitvec.of_int ~width:4 (v * v)))
  done

let test_reads () =
  let m = { Term.mem_name = "ut_mem"; addr_width = 4; data_width = 8 } in
  let a = Term.var "ut_addr" 4 in
  let r1 = Term.read m a in
  let r2 = Term.read m a in
  Alcotest.(check bool) "reads hash-cons" true (Term.equal r1 r2);
  Alcotest.(check int) "read listed" 1 (List.length (Term.reads (Term.add r1 r2)));
  let env =
    { Term.lookup_var = (fun _ w -> Some (Bitvec.of_int ~width:w 5));
      Term.lookup_read =
        (fun m' addr ->
          if m'.Term.mem_name = "ut_mem" && Bitvec.to_int_exn addr = 5 then
            Some (Bitvec.of_int ~width:8 42)
          else None) }
  in
  Alcotest.(check bool) "read eval" true
    (Bitvec.equal (Term.eval env r1) (Bitvec.of_int ~width:8 42));
  (* substitution resolves the read once the address is concrete *)
  let t = Term.substitute env r1 in
  Alcotest.check tt "read substitute" (Term.of_int ~width:8 42) t

let test_vars_collection () =
  let t = Term.add (Term.mul x8 y8) x8 in
  Alcotest.(check (list (pair string int))) "vars" [ ("ut_x8", 8); ("ut_y8", 8) ]
    (Term.vars t)

(* Canonical serialization: round trip through smart constructors must land
   on the physically identical hash-consed nodes, sharing across roots
   preserved, and the document must be a deterministic function of the DAG
   (the cache fingerprints depend on that). *)
let test_serialize_roundtrip () =
  let m = { Term.mem_name = "ut_smem"; addr_width = 4; data_width = 8 } in
  let tab =
    { Term.tab_name = "ut_stab";
      tab_addr_width = 2;
      tab_data = Array.init 4 (fun i -> Bitvec.of_int ~width:8 (i * 17)) }
  in
  let shared = Term.mul x8 y8 in
  let t1 =
    Term.ite
      (Term.ult shared (Term.of_int ~width:8 200))
      (Term.read m (Term.extract ~high:3 ~low:0 shared))
      (Term.table_read tab (Term.extract ~high:1 ~low:0 x8))
  in
  let t2 = Term.concat (Term.bnot shared) (Term.ashr x8 (Term.one 8)) in
  let doc = Term.serialize [ t1; t2; t1 ] in
  (match Term.deserialize doc with
  | [ r1; r2; r3 ] ->
      Alcotest.(check bool) "root1 physical" true (Term.equal r1 t1);
      Alcotest.(check bool) "root2 physical" true (Term.equal r2 t2);
      Alcotest.(check bool) "root3 shares root1" true (Term.equal r3 t1)
  | rs -> Alcotest.failf "expected 3 roots, got %d" (List.length rs));
  Alcotest.(check string) "deterministic" doc (Term.serialize [ t1; t2; t1 ])

(* Malformed documents must raise (the cache turns any exception into a
   miss), never return a wrong term or crash the process harder. *)
let test_deserialize_rejects () =
  let doc = Term.serialize [ Term.add x8 y8 ] in
  let rejects label s =
    match Term.deserialize s with
    | exception (Failure _ | Invalid_argument _) -> ()
    | _ -> Alcotest.failf "%s: accepted" label
  in
  rejects "empty" "";
  rejects "bad header" ("bogus 9\n" ^ doc);
  rejects "truncated" (String.sub doc 0 (String.length doc - 4));
  rejects "garbage line" (doc ^ "z z z\n");
  (* flipping a width must be caught by reconstruction *)
  rejects "corrupt"
    (String.concat "\n"
       (List.map
          (fun line ->
            if String.length line > 2 && String.sub line 0 2 = "v " then
              "v 9999999 ut_x8"
            else line)
          (String.split_on_char '\n' doc)))

let () =
  Alcotest.run "term"
    [ ("properties", props);
      ("rewrites",
       [ Alcotest.test_case "hash-consing" `Quick test_hashcons;
         Alcotest.test_case "boolean" `Quick test_bool_rewrites;
         Alcotest.test_case "arithmetic" `Quick test_arith_rewrites;
         Alcotest.test_case "structure" `Quick test_structure_rewrites;
         Alcotest.test_case "tables" `Quick test_table;
         Alcotest.test_case "reads" `Quick test_reads;
         Alcotest.test_case "vars" `Quick test_vars_collection;
         Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
         Alcotest.test_case "deserialize rejects" `Quick test_deserialize_rejects ]) ]
