(* Tests for incremental solver sessions (Solver.Session).

   The central property: a session deciding a growing conjunction across
   several [check_with] calls agrees with a fresh [Solver.check] of the
   same conjunction, on random QF_BV formulas — including retractable
   assertions (activation literals) and Ackermannized memory reads whose
   congruence constraints span check boundaries. *)

let model_env (m : Solver.model) name width =
  match m.Solver.var_value name with
  | Some v -> v
  | None -> Bitvec.zero width

let satisfies gs m =
  let env name =
    let w = List.assoc name Gen_terms.all_vars in
    model_env m name w
  in
  List.for_all (fun g -> Bitvec.is_ones (g.Gen_terms.reval env)) gs

let arb_bool3 =
  QCheck.make
    QCheck.Gen.(
      triple Gen_terms.gen_bool_term Gen_terms.gen_bool_term
        Gen_terms.gen_bool_term)
    ~print:(fun (a, b, c) ->
      String.concat " /\\ " (List.map Gen_terms.print_gen_term [ a; b; c ]))

(* Incrementally asserting t1, then t2, then t3 must agree, check by check,
   with one-shot checks of the growing conjunction; every Sat model must
   satisfy everything asserted so far. *)
let prop_incremental_agrees =
  QCheck.Test.make ~count:120 ~name:"session agrees with fresh solver"
    arb_bool3 (fun (g1, g2, g3) ->
      let s = Solver.Session.create () in
      let rec steps asserted = function
        | [] -> true
        | g :: rest ->
            let asserted = asserted @ [ g ] in
            let fresh =
              Solver.check (List.map (fun g -> g.Gen_terms.term) asserted)
            in
            let incr = Solver.Session.check_with s [ g.Gen_terms.term ] in
            let ok =
              match (incr, fresh) with
              | Solver.Sat (m, _), Solver.Sat _ -> satisfies asserted m
              | Solver.Unsat _, Solver.Unsat _ -> true
              | _ -> false
            in
            ok && steps asserted rest
      in
      steps [] [ g1; g2; g3 ])

(* Retraction: a guarded assertion binds exactly the checks that assume its
   guard; after retraction the session behaves as if it was never made,
   and assuming a retracted guard is contradictory. *)
let prop_retraction =
  QCheck.Test.make ~count:120 ~name:"retraction matches fresh equivalents"
    (QCheck.pair Gen_terms.arb_bool_term Gen_terms.arb_bool_term)
    (fun (g1, g2) ->
      let t1 = g1.Gen_terms.term and t2 = g2.Gen_terms.term in
      let s = Solver.Session.create () in
      Solver.Session.assert_always s t1;
      let g = Solver.Session.assert_retractable s t2 in
      let both = Solver.Session.check_with ~assumptions:[ g ] s [] in
      let fresh_both = Solver.check [ t1; t2 ] in
      let agree a b =
        match (a, b) with
        | Solver.Sat _, Solver.Sat _ | Solver.Unsat _, Solver.Unsat _ -> true
        | _ -> false
      in
      let ok1 =
        agree both fresh_both
        &&
        match both with
        | Solver.Sat (m, _) -> satisfies [ g1; g2 ] m
        | _ -> true
      in
      (* without the guard assumed, only t1 binds *)
      let only_t1 = Solver.Session.check_with s [] in
      let ok2 =
        agree only_t1 (Solver.check [ t1 ])
        &&
        match only_t1 with
        | Solver.Sat (m, _) -> satisfies [ g1 ] m
        | _ -> true
      in
      Solver.Session.retract s g;
      let after = Solver.Session.check_with s [] in
      let ok3 = agree after (Solver.check [ t1 ]) in
      let dead = Solver.Session.check_with ~assumptions:[ g ] s [] in
      let ok4 = match dead with Solver.Unsat _ -> true | _ -> false in
      ok1 && ok2 && ok3 && ok4)

(* A Sat model is an eager snapshot: still valid (and still satisfying the
   formula it came from) after later asserts and checks on the session. *)
let test_model_snapshot () =
  let a = Term.var "gv8_0" 8 in
  let s = Solver.Session.create () in
  let g = Solver.Session.assert_retractable s (Term.eq a (Term.of_int ~width:8 42)) in
  let m =
    match Solver.Session.check_with ~assumptions:[ g ] s [] with
    | Solver.Sat (m, _) -> m
    | _ -> Alcotest.fail "expected sat"
  in
  Solver.Session.retract s g;
  (match Solver.Session.check_with s [ Term.eq a (Term.of_int ~width:8 7) ] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected sat after retraction");
  match m.Solver.var_value "gv8_0" with
  | Some v -> Alcotest.(check int) "snapshot survives" 42 (Bitvec.to_int_exn v)
  | None -> Alcotest.fail "snapshot lost the variable"

(* Ackermann congruence across check boundaries: read instances introduced
   by different checks on the same session still constrain each other. *)
let test_ack_across_checks () =
  let m = { Term.mem_name = "ss_mem"; addr_width = 4; data_width = 8 } in
  let a1 = Term.var "ss_addr1" 4 and a2 = Term.var "ss_addr2" 4 in
  let s = Solver.Session.create () in
  (match
     Solver.Session.check_with s
       [ Term.eq (Term.read m a1) (Term.of_int ~width:8 0x42) ]
   with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "first read: expected sat");
  (match Solver.Session.check_with s [ Term.eq a1 a2 ] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "alias: expected sat");
  (* the second instance (read m a2) enters here, after both earlier
     checks; its congruence with the first instance must still bind *)
  match
    Solver.Session.check_with s
      [ Term.bnot (Term.eq (Term.read m a1) (Term.read m a2)) ]
  with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "cross-check congruence violated"

(* Retractable assertions also Ackermannize; the congruence constraints
   they introduce are permanent (valid regardless of the guard), so
   retracting the assertion must not retract congruence. *)
let test_ack_retractable () =
  let m = { Term.mem_name = "ss_mem2"; addr_width = 4; data_width = 8 } in
  let a1 = Term.var "ss_b1" 4 and a2 = Term.var "ss_b2" 4 in
  let r1 = Term.read m a1 and r2 = Term.read m a2 in
  let s = Solver.Session.create () in
  let g =
    Solver.Session.assert_retractable s
      (Term.band (Term.eq r1 (Term.of_int ~width:8 1))
         (Term.eq r2 (Term.of_int ~width:8 2)))
  in
  Solver.Session.retract s g;
  match
    Solver.Session.check_with s
      [ Term.eq a1 a2; Term.bnot (Term.eq r1 r2) ]
  with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "congruence must survive retraction"

(* The constant-false fast path: honest stats with the flag set, and the
   session stays poisoned for every later check. *)
let test_trivially_unsat () =
  let s = Solver.Session.create () in
  (match Solver.Session.check_with s [ Term.fls ] with
  | Solver.Unsat st ->
      Alcotest.(check bool) "flag set" true st.Solver.trivially_unsat;
      Alcotest.(check int) "no conflicts" 0 st.Solver.sat_conflicts
  | _ -> Alcotest.fail "expected unsat");
  match Solver.Session.check_with s [ Term.tru ] with
  | Solver.Unsat st ->
      Alcotest.(check bool) "still poisoned" true st.Solver.trivially_unsat
  | _ -> Alcotest.fail "poisoned session must stay unsat"

(* Per-check statistics are deltas: summed over a query sequence they equal
   the session's cumulative totals. *)
let test_stats_deltas () =
  let a = Term.var "gv8_0" 8 and b = Term.var "gv8_1" 8 in
  let s = Solver.Session.create () in
  let checks =
    [ [ Term.eq (Term.mul a b) (Term.of_int ~width:8 56) ];
      [ Term.ult (Term.of_int ~width:8 3) a ];
      [ Term.ult a (Term.of_int ~width:8 9) ] ]
  in
  let totals = (ref 0, ref 0, ref 0) in
  List.iter
    (fun q ->
      let st = Solver.stats_of (Solver.Session.check_with s q) in
      let v, c, k = totals in
      v := !v + st.Solver.sat_vars;
      c := !c + st.Solver.sat_clauses;
      k := !k + st.Solver.sat_conflicts)
    checks;
  let cum = Solver.Session.stats s in
  let v, c, k = totals in
  Alcotest.(check int) "vars sum" cum.Solver.Session.vars !v;
  Alcotest.(check int) "clauses sum" cum.Solver.Session.clauses !c;
  Alcotest.(check int) "conflicts sum" cum.Solver.Session.conflicts !k;
  Alcotest.(check bool)
    "cache populated" true
    (cum.Solver.Session.cached_terms > 0)

(* An exhausted budget yields Unknown and leaves the session usable. *)
let test_budget () =
  let a = Term.var "ss_f1" 16 and b = Term.var "ss_f2" 16 in
  let s = Solver.Session.create () in
  let g =
    Solver.Session.assert_retractable s
      (Term.conj
         [ Term.eq (Term.mul a b) (Term.of_int ~width:16 62615);
           Term.ult (Term.one 16) a; Term.ult (Term.one 16) b ])
  in
  (match Solver.Session.check_with ~assumptions:[ g ] ~budget:5 s [] with
  | Solver.Unknown _ | Solver.Sat _ -> ()
  | Solver.Unsat _ -> Alcotest.fail "5-conflict budget cannot prove unsat");
  Solver.Session.retract s g;
  match Solver.Session.check_with s [ Term.eq a (Term.of_int ~width:16 3) ] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "session unusable after budget exhaustion"

(* One arena per domain: sessions created by concurrent arenas never
   interact, and the arena aggregates its sessions' statistics. *)
let test_arena () =
  let job name rhs () =
    let arena = Solver.Arena.create () in
    let s1 = Solver.Arena.session arena in
    let a = Term.var name 8 in
    let r =
      Solver.Session.check_with s1
        [ Term.eq (Term.mul a a) (Term.of_int ~width:8 rhs) ]
    in
    let shared = Solver.Arena.shared arena in
    let r2 = Solver.Session.check_with shared [ Term.eq a a ] in
    (r, r2, Solver.Arena.session_count arena, Solver.Arena.stats arena)
  in
  let d1 = Domain.spawn (job "ss_conc_a" 25) in
  let d2 = Domain.spawn (job "ss_conc_b" 3) in
  let r1, t1, n1, st1 = Domain.join d1 in
  let r2, _, _, _ = Domain.join d2 in
  (match (r1, t1) with
  | Solver.Sat _, Solver.Sat _ -> ()
  | _ -> Alcotest.fail "square query: expected sat");
  (match r2 with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "non-square query: expected unsat");
  Alcotest.(check int) "two sessions per arena" 2 n1;
  Alcotest.(check bool) "arena stats aggregated" true (st1.Solver.sat_vars > 0)

(* Learned-clause exchange: exporting from a finished session and replaying
   into a fresh one asserting the identical problem (in the identical order,
   hence identical variable numbering) must preserve the answer, register
   the clauses as learnt (not problem clauses), and skip clauses naming
   variables the importer has not allocated. *)
let test_learnt_exchange () =
  let a = Term.var "ss_lx_a" 16 and b = Term.var "ss_lx_b" 16 in
  let problem =
    [ Term.eq (Term.mul a b) (Term.of_int ~width:16 3127);
      Term.ult (Term.one 16) a; Term.ult (Term.one 16) b;
      Term.ule a b ]
  in
  let s1 = Solver.Session.create () in
  let r1 = Solver.Session.check_with s1 problem in
  let exported = Solver.Session.export_learnt s1 in
  Alcotest.(check bool) "something learned" true (exported <> []);
  let s2 = Solver.Session.create () in
  (* encode the same problem first so the variables exist, via a guard that
     costs no search *)
  List.iter
    (fun t -> ignore (Solver.Session.assert_retractable s2 t))
    problem;
  let before = Solver.Session.stats s2 in
  let n = Solver.Session.import_learnt s2 exported in
  let after = Solver.Session.stats s2 in
  Alcotest.(check bool) "imported some" true (n > 0);
  Alcotest.(check int) "registered as learnt" n
    (after.Solver.Session.learnt - before.Solver.Session.learnt);
  Alcotest.(check int) "no new problem clauses"
    before.Solver.Session.clauses after.Solver.Session.clauses;
  let r2 = Solver.Session.check_with s2 problem in
  (* imported clauses may steer the search to a different — but still
     correct — model, so validate each model concretely rather than
     comparing them bit for bit *)
  let validate label = function
    | Solver.Sat (m, _) ->
        let env =
          { Term.lookup_var = (fun n _ -> m.Solver.var_value n);
            Term.lookup_read = (fun _ _ -> None) }
        in
        List.iter
          (fun t ->
            Alcotest.(check bool)
              (label ^ " model satisfies") true
              (Bitvec.to_int_exn (Term.eval env t) = 1))
          problem
    | _ -> Alcotest.failf "%s: expected sat" label
  in
  validate "cold" r1;
  validate "warm" r2;
  (* clauses over unallocated variables are skipped, not crashed on *)
  let s3 = Solver.Session.create () in
  Alcotest.(check int) "unknown vars skipped" 0
    (Solver.Session.import_learnt s3 exported)

(* Regression for the importer's bounds check: clauses naming variables
   the session never allocated, zero literals, the unnegatable [min_int],
   and the empty clause must be dropped — and counted via
   [import_dropped] — rather than corrupting the watch lists, and the
   session must keep answering correctly afterwards. *)
let test_import_bounds () =
  let a = Term.var "ss_ib_a" 16 and b = Term.var "ss_ib_b" 16 in
  let problem =
    [ Term.eq (Term.mul a b) (Term.of_int ~width:16 3127);
      Term.ult (Term.one 16) a; Term.ult (Term.one 16) b;
      Term.ule a b ]
  in
  let s1 = Solver.Session.create () in
  (match Solver.Session.check_with s1 problem with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "factoring query: expected sat");
  let sound = Solver.Session.export_learnt s1 in
  Alcotest.(check bool) "something to import" true (sound <> []);
  let s2 = Solver.Session.create () in
  List.iter (fun t -> ignore (Solver.Session.assert_retractable s2 t)) problem;
  let nv = Solver.Session.num_vars s2 in
  Alcotest.(check bool) "variables allocated" true (nv > 0);
  Alcotest.(check int) "fresh session dropped nothing" 0
    (Solver.Session.import_dropped s2);
  let bad = [ [ nv + 1 ]; [ 1; -(nv + 5) ]; [ 0 ]; [ min_int ]; [] ] in
  let n = Solver.Session.import_learnt s2 (sound @ bad) in
  Alcotest.(check int) "in-range clauses imported" (List.length sound) n;
  Alcotest.(check int) "hostile clauses counted as dropped"
    (List.length bad)
    (Solver.Session.import_dropped s2);
  match Solver.Session.check_with s2 problem with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected sat after hostile import"

let () =
  Alcotest.run "session"
    [ ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_incremental_agrees; prop_retraction ]);
      ("session",
       [ Alcotest.test_case "model snapshot" `Quick test_model_snapshot;
         Alcotest.test_case "ackermann across checks" `Quick
           test_ack_across_checks;
         Alcotest.test_case "ackermann under retraction" `Quick
           test_ack_retractable;
         Alcotest.test_case "trivially unsat" `Quick test_trivially_unsat;
         Alcotest.test_case "stats deltas" `Quick test_stats_deltas;
         Alcotest.test_case "budget" `Quick test_budget;
         Alcotest.test_case "arenas" `Quick test_arena;
         Alcotest.test_case "learnt exchange" `Quick test_learnt_exchange;
         Alcotest.test_case "import bounds check" `Quick test_import_bounds ]) ]
