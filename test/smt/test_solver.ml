(* Tests for the bit-blaster and the Solver façade.

   The core property: for random width-1 terms over the small-width variable
   pool, Solver.check agrees with brute-force enumeration of all variable
   assignments, and satisfying models actually evaluate the term to true. *)

(* Use a reduced variable pool so brute force stays feasible: widths 1,2,3
   with two variables each = 12 bits = 4096 assignments. *)

let pool = List.filter (fun (_, w) -> w <= 3) Gen_terms.all_vars
let pool_bits = List.fold_left (fun acc (_, w) -> acc + w) 0 pool

let env_of_index idx =
  let tbl = Hashtbl.create 8 in
  let off = ref 0 in
  List.iter
    (fun (name, w) ->
      let v = Bitvec.of_int ~width:w ((idx lsr !off) land ((1 lsl w) - 1)) in
      Hashtbl.replace tbl name v;
      off := !off + w)
    pool;
  fun name ->
    (* wide variables were simplified out of the term (the [uses_only_small]
       guard checks the simplified term), so the semantics cannot depend on
       them; zero is as good as any value *)
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None -> Bitvec.zero (List.assoc name Gen_terms.all_vars)

(* Generator restricted to the small pool: reuse Gen_terms but reject terms
   mentioning wider variables. *)
let arb_small_bool =
  QCheck.make
    QCheck.Gen.(
      Gen_terms.gen_bool_term >>= fun g ->
      return g)
    ~print:Gen_terms.print_gen_term

let uses_only_small g =
  List.for_all (fun (_, w) -> w <= 3) (Term.vars g.Gen_terms.term)

let brute_sat g =
  let n = 1 lsl pool_bits in
  let rec go i =
    if i >= n then false
    else
      let env = env_of_index i in
      if Bitvec.is_ones (g.Gen_terms.reval env) then true else go (i + 1)
  in
  go 0

let model_env (m : Solver.model) name width =
  match m.Solver.var_value name with
  | Some v -> v
  | None -> Bitvec.zero width

let prop_solver_agrees =
  QCheck.Test.make ~count:250 ~name:"solver agrees with enumeration"
    arb_small_bool (fun g ->
      QCheck.assume (uses_only_small g);
      match Solver.check [ g.Gen_terms.term ] with
      | Solver.Unknown _ -> false
      | Solver.Unsat _ -> not (brute_sat g)
      | Solver.Sat (m, _) ->
          (* model must satisfy the reference semantics *)
          let env name =
            let w = List.assoc name Gen_terms.all_vars in
            model_env m name w
          in
          Bitvec.is_ones (g.Gen_terms.reval env))

let prop_conjunction =
  QCheck.Test.make ~count:150 ~name:"conjunction equals single assertion"
    (QCheck.pair arb_small_bool arb_small_bool) (fun (g1, g2) ->
      QCheck.assume (uses_only_small g1 && uses_only_small g2);
      let r1 = Solver.check [ g1.Gen_terms.term; g2.Gen_terms.term ] in
      let r2 = Solver.check [ Term.band g1.Gen_terms.term g2.Gen_terms.term ] in
      match (r1, r2) with
      | Solver.Sat _, Solver.Sat _ | Solver.Unsat _, Solver.Unsat _ -> true
      | _ -> false)

(* {1 Validity helpers} *)

let is_valid ?budget t =
  match Solver.check ?budget [ Term.bnot t ] with
  | Solver.Unsat _ -> true
  | _ -> false

let test_arith_identities () =
  let a = Term.var "sv_a" 8 and b = Term.var "sv_b" 8 in
  (* slt(a,b) = msb(a-b) xor overflow *)
  let sub_ab = Term.sub a b in
  let overflow =
    Term.band (Term.bxor (Term.msb a) (Term.msb b))
      (Term.bxor (Term.msb a) (Term.msb sub_ab))
  in
  let slt_alt = Term.bxor (Term.msb sub_ab) overflow in
  List.iter
    (fun (name, t) -> Alcotest.(check bool) name true (is_valid t))
    [ ("add-sub", Term.eq (Term.sub (Term.add a b) b) a);
      ("mul-comm", Term.eq (Term.mul a b) (Term.mul b a));
      ("de-morgan",
       Term.eq (Term.bnot (Term.band a b)) (Term.bor (Term.bnot a) (Term.bnot b)));
      ("shl-as-mul",
       Term.eq (Term.shl a (Term.of_int ~width:8 3))
         (Term.mul a (Term.of_int ~width:8 8)));
      ("slt textbook", Term.eq (Term.slt a b) slt_alt);
      ("ule total", Term.bor (Term.ule a b) (Term.ule b a));
      ("clmul comm", Term.eq (Term.clmul a b) (Term.clmul b a));
      ("ashr msb",
       Term.implies (Term.bnot (Term.msb a))
         (Term.eq (Term.ashr a b) (Term.lshr a b)))
    ]

let test_not_valid () =
  let a = Term.var "sv_a" 8 and b = Term.var "sv_b" 8 in
  Alcotest.(check bool) "add not commutative with sub" false
    (is_valid (Term.eq (Term.sub a b) (Term.sub b a)));
  Alcotest.(check bool) "ult not total order with itself" false
    (is_valid (Term.ult a b))

let test_reads () =
  let m = { Term.mem_name = "sv_mem"; addr_width = 4; data_width = 8 } in
  let a1 = Term.var "sv_addr1" 4 and a2 = Term.var "sv_addr2" 4 in
  let r1 = Term.read m a1 and r2 = Term.read m a2 in
  (* congruence: equal addresses force equal values *)
  (match
     Solver.check [ Term.eq a1 a2; Term.bnot (Term.eq r1 r2) ]
   with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "congruence violated");
  (* distinct addresses leave values free *)
  (match Solver.check [ Term.bnot (Term.eq r1 r2) ] with
  | Solver.Sat (model, _) ->
      (* the model must report consistent read values *)
      let v1 = Solver.read_lookup model m (Term.eval
        { Term.lookup_var = (fun n w -> match model.Solver.var_value n with
            | Some v -> Some v | None -> Some (Bitvec.zero w));
          Term.lookup_read = (fun _ _ -> None) } a1) in
      Alcotest.(check bool) "read value present" true (v1 <> None)
  | _ -> Alcotest.fail "expected sat");
  (* reads at constant addresses *)
  let rc1 = Term.read m (Term.of_int ~width:4 3) in
  let rc2 = Term.read m (Term.of_int ~width:4 3) in
  (match Solver.check [ Term.bnot (Term.eq rc1 rc2) ] with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "same constant address must alias")

let test_tables () =
  let tb =
    { Term.tab_name = "sv_tab"; tab_addr_width = 3;
      tab_data = Array.init 8 (fun i -> Bitvec.of_int ~width:8 (7 * i)) }
  in
  let i = Term.var "sv_idx" 3 in
  let t = Term.table_read tb i in
  (* find the index mapping to 21 *)
  (match Solver.check [ Term.eq t (Term.of_int ~width:8 21) ] with
  | Solver.Sat (m, _) -> (
      match m.Solver.var_value "sv_idx" with
      | Some v -> Alcotest.(check int) "index" 3 (Bitvec.to_int_exn v)
      | None -> Alcotest.fail "index unconstrained")
  | _ -> Alcotest.fail "expected sat");
  (* no index maps to 5 *)
  (match Solver.check [ Term.eq t (Term.of_int ~width:8 5) ] with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "expected unsat")

let test_budget () =
  (* factoring-style hard instance: a*b = constant with a,b > 1 *)
  let a = Term.var "sv_f1" 16 and b = Term.var "sv_f2" 16 in
  let n = Term.of_int ~width:16 62615 (* 217 * 283 + adjust: pick semiprime 62615 = 5 * 7 * ... just needs hardness *) in
  let q =
    [ Term.eq (Term.mul a b) n;
      Term.ult (Term.one 16) a;
      Term.ult (Term.one 16) b ]
  in
  match Solver.check ~budget:5 q with
  | Solver.Unknown _ -> ()
  | Solver.Sat _ -> () (* a lucky small search is acceptable *)
  | Solver.Unsat _ -> Alcotest.fail "5-conflict budget cannot prove unsat here"

let test_stats () =
  (* stats travel inside the outcome: no process-global state to race on *)
  let a = Term.var "sv_a" 8 in
  match Solver.check [ Term.eq a (Term.of_int ~width:8 7) ] with
  | Solver.Sat (_, s) ->
      Alcotest.(check bool) "vars allocated" true (s.Solver.sat_vars > 0)
  | _ -> Alcotest.fail "sat expected"

let test_read_lookup_duplicates () =
  (* regression: a model may contain several read instances of the same
     memory whose addresses evaluate to the same concrete value.
     [read_lookup] returns the first match in instance order; congruence
     forces all aliasing instances to agree, so the choice is canonical *)
  let m = { Term.mem_name = "sv_dup"; addr_width = 4; data_width = 8 } in
  let a = Term.var "sv_dup_a" 4 in
  let r1 = Term.read m a in
  let r2 = Term.read m (Term.of_int ~width:4 9) in
  match
    Solver.check
      [ Term.eq a (Term.of_int ~width:4 9);
        Term.eq r1 (Term.of_int ~width:8 0x42) ]
  with
  | Solver.Sat (model, _) -> (
      (* both instances alias address 9; whichever instance read_lookup
         picks, congruence pinned its value to 0x42 *)
      match Solver.read_lookup model m (Bitvec.of_int ~width:4 9) with
      | Some v ->
          Alcotest.(check int) "canonical value" 0x42 (Bitvec.to_int_exn v);
          ignore r2
      | None -> Alcotest.fail "aliased address missing from model")
  | _ -> Alcotest.fail "expected sat"

let test_concurrent_checks () =
  (* two domains build terms and run checks concurrently; each outcome must
     carry its own correct stats — there is no process-global solver state
     left to race on *)
  let job name rhs () =
    let a = Term.var name 8 in
    Solver.check [ Term.eq (Term.mul a a) (Term.of_int ~width:8 rhs) ]
  in
  (* 25 = 5*5 is a square; 3 is not a square mod 256 (squares are 0 mod 4
     or 1 mod 8) *)
  let d1 = Domain.spawn (job "sv_conc_a" 25) in
  let d2 = Domain.spawn (job "sv_conc_b" 3) in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  (match r1 with
  | Solver.Sat (_, s) ->
      Alcotest.(check bool) "sat side allocated vars" true (s.Solver.sat_vars > 0)
  | _ -> Alcotest.fail "square query: expected sat");
  match r2 with
  | Solver.Unsat s ->
      Alcotest.(check bool) "unsat side counted conflicts independently" true
        (s.Solver.sat_vars > 0)
  | _ -> Alcotest.fail "non-square query: expected unsat"

let () =
  Alcotest.run "solver"
    [ ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_solver_agrees; prop_conjunction ]);
      ("validity",
       [ Alcotest.test_case "arithmetic identities" `Quick test_arith_identities;
         Alcotest.test_case "non-validities" `Quick test_not_valid;
         Alcotest.test_case "memory reads" `Quick test_reads;
         Alcotest.test_case "tables" `Quick test_tables;
         Alcotest.test_case "budget" `Quick test_budget;
         Alcotest.test_case "stats" `Quick test_stats;
         Alcotest.test_case "read_lookup duplicate addresses" `Quick
           test_read_lookup_duplicates;
         Alcotest.test_case "concurrent checks" `Quick test_concurrent_checks ]) ]
