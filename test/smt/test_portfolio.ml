(* Portfolio racing and cube-and-conquer must be invisible to callers:
   the same verdicts as sequential solving and — via the determinism
   contract — bit-identical models.  The properties drive random terms
   from the shared generator under random strategies and racer counts;
   the alcotest cases pin the Unsat direction (the one the portfolio
   actually accelerates) on a prime-factoring refutation and check the
   tally plumbing. *)

let jobs = 2 (* keep domain pressure low under the test runner *)

(* {1 Strategy generator} *)

let gen_restart =
  QCheck.Gen.(
    oneof
      [
        (10 -- 300 >>= fun b -> return (Sat.Luby b));
        ( 10 -- 300 >>= fun b ->
          oneofl [ 1.1; 1.3; 1.5; 2.0 ] >>= fun f ->
          return (Sat.Geometric (b, f)) );
      ])

let gen_strategy =
  QCheck.Gen.(
    oneofl [ Sat.Default; Sat.Aggressive; Sat.Conservative ] >>= fun p ->
    gen_restart >>= fun r ->
    0 -- 1000 >>= fun seed ->
    oneofl [ Sat.Phase_neg; Sat.Phase_pos; Sat.Phase_rand ] >>= fun ph ->
    return
      Solver.Strategy.(
        of_profile p |> with_restart r |> with_seed seed |> with_phase ph))

(* {1 Verdict and model agreement} *)

let models_agree t m1 m2 =
  List.for_all
    (fun (name, _) ->
      match (m1.Solver.var_value name, m2.Solver.var_value name) with
      | Some v1, Some v2 -> Bitvec.equal v1 v2
      | None, None -> true
      | _ -> false)
    (Term.vars t)

let agree t seq raced =
  match (seq, raced) with
  | Solver.Sat (m1, _), Solver.Sat (m2, _) -> models_agree t m1 m2
  | Solver.Unsat _, Solver.Unsat _ -> true
  | _ -> false

let prop_race_equals_sequential =
  QCheck.Test.make ~name:"portfolio race = sequential" ~count:40
    (QCheck.make
       QCheck.Gen.(triple Gen_terms.gen_bool_term gen_strategy (2 -- 4))
       ~print:(fun (g, s, n) ->
         Printf.sprintf "%s under %s x%d" (Gen_terms.print_gen_term g)
           (Solver.Strategy.describe s) n))
    (fun (g, strategy, racers) ->
      let t = g.Gen_terms.term in
      let seq =
        Solver.check ~config:(Solver.Strategy.sat_config strategy) [ t ]
      in
      let options = Synth.Portfolio.(default |> with_racers racers) in
      agree t seq (Synth.Portfolio.check ~options ~jobs ~strategy [ t ]))

let prop_cube_equals_sequential =
  QCheck.Test.make ~name:"cube-and-conquer = monolithic" ~count:30
    (QCheck.make
       QCheck.Gen.(pair Gen_terms.gen_bool_term (1 -- 3))
       ~print:(fun (g, k) ->
         Printf.sprintf "%s cubed on %d vars" (Gen_terms.print_gen_term g) k))
    (fun (g, k) ->
      let t = g.Gen_terms.term in
      let options = Synth.Portfolio.(default |> with_cube_vars k) in
      let strategy = Solver.Strategy.default in
      let seq = Solver.check [ t ] in
      agree t seq (Synth.Portfolio.check ~options ~jobs ~strategy [ t ])
      (* the contradiction is always refutable and every cube must agree:
         the ∀-verify splitter's Unsat-iff-all-cubes-Unsat direction *)
      &&
      match
        Synth.Portfolio.check ~options ~jobs ~strategy
          [ t; Term.bnot t ]
      with
      | Solver.Unsat _ -> true
      | _ -> false)

(* {1 The Unsat direction on a fixed refutation}

   Factoring 251 (prime) with both factors nontrivial, multiplied without
   wraparound: sequential, raced, and cubed solving must all refute it. *)

let prime_query =
  let a = Term.var "pf_a" 8 and b = Term.var "pf_b" 8 in
  [
    Term.eq
      (Term.mul (Term.zext a 16) (Term.zext b 16))
      (Term.of_int ~width:16 251);
    Term.ult (Term.one 8) a;
    Term.ult (Term.one 8) b;
  ]

let test_prime_refuted () =
  List.iter
    (fun (label, options) ->
      match
        Synth.Portfolio.check ~options ~jobs
          ~strategy:Solver.Strategy.default prime_query
      with
      | Solver.Unsat _ -> ()
      | Solver.Sat _ -> Alcotest.failf "%s: expected unsat, got sat" label
      | Solver.Unknown _ -> Alcotest.failf "%s: expected unsat, got unknown" label)
    [
      ("sequential", Synth.Portfolio.default);
      ("race of 3", Synth.Portfolio.(default |> with_racers 3));
      ("cubes on 2 vars", Synth.Portfolio.(default |> with_cube_vars 2));
    ]

let test_tally () =
  let tally = Synth.Portfolio.create_tally () in
  let options =
    Synth.Portfolio.(default |> with_racers 2 |> with_share_interval 50)
  in
  (match
     Synth.Portfolio.check ~options ~tally ~jobs
       ~strategy:Solver.Strategy.default prime_query
   with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "expected unsat");
  let s = Synth.Portfolio.read_tally tally in
  Alcotest.(check int) "one race recorded" 1 s.Synth.Portfolio.races;
  Alcotest.(check int) "unsat recorded" 1 s.Synth.Portfolio.race_unsat;
  Alcotest.(check int) "exactly one winner" 1
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Synth.Portfolio.win_counts);
  (* the cube splitter accounts its fan-out *)
  let ct = Synth.Portfolio.create_tally () in
  (match
     Synth.Portfolio.check
       ~options:Synth.Portfolio.(default |> with_cube_vars 2)
       ~tally:ct ~jobs ~strategy:Solver.Strategy.default prime_query
   with
  | Solver.Unsat _ -> ()
  | _ -> Alcotest.fail "expected unsat");
  let cs = Synth.Portfolio.read_tally ct in
  Alcotest.(check int) "one cube call" 1 cs.Synth.Portfolio.cube_calls;
  Alcotest.(check bool) "cubes fanned out" true (cs.Synth.Portfolio.cubes > 1);
  Alcotest.(check int) "all cubes refuted" cs.Synth.Portfolio.cubes
    cs.Synth.Portfolio.cubes_unsat

let test_cancellation () =
  (* a pre-cancelled race must stand down with Unknown, not burn budget *)
  let options = Synth.Portfolio.(default |> with_racers 2) in
  match
    Synth.Portfolio.check ~options ~cancel:(fun () -> true) ~jobs
      ~strategy:Solver.Strategy.default prime_query
  with
  | Solver.Unknown _ -> ()
  | _ -> Alcotest.fail "cancelled race should return unknown"

let () =
  Alcotest.run "portfolio"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_race_equals_sequential; prop_cube_equals_sequential ] );
      ( "portfolio",
        [
          Alcotest.test_case "prime refuted all modes" `Quick
            test_prime_refuted;
          Alcotest.test_case "tally accounting" `Quick test_tally;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
        ] );
    ]
