(* Chaos smoke: the seconds-scale slice of the bench harness's chaos
   section, run on every `dune runtest` via the @chaos-smoke alias.

   Two phases against in-process daemons on /tmp sockets.  Phase one
   runs a 20-request mixed batch fault-free and records every solved
   reply's hole bindings.  Phase two installs the miniature fault plan
   [worker_kill@2,conn_drop@3] — the second service job downs its worker
   domain (supervision must respawn it), the third server-written frame
   severs its connection (the retrying client must recompute) — and
   replays the same batch through [Client.with_retry].  The plan may
   cost retries and recomputation; it must never cost correctness:

   - zero requests fail after bounded retries (no hangs: every attempt
     is bounded, so termination of this program is the liveness check);
   - every solved reply's bindings are bit-identical to phase one
     (faults never produce a wrong answer — requests are idempotent by
     content fingerprint);
   - the daemon recovers to full capacity: a fresh cold request solves,
     the health report shows every worker alive (and at least one lost
     along the way), nothing queued, not degraded. *)

module Proto = Owl_serve.Proto
module Server = Owl_serve.Server
module Client = Owl_serve.Client

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("chaos smoke: " ^ m); exit 1) fmt

let acc_problem = Designs.Accumulator.problem ()
let alu_problem = Designs.Alu.problem ()

let lookup kind name =
  match (kind, name) with
  | `Synth, "acc" -> Some acc_problem
  | `Synth, "alu" -> Some alu_problem
  | _ -> None

let jobs = 2

let start tag =
  let path =
    Printf.sprintf "/tmp/owl-chaos-smoke-%d-%s.sock" (Unix.getpid ()) tag
  in
  let addr = Proto.Unix_path path in
  let ready = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Server.run
          ~ready:(fun () -> Atomic.set ready true)
          { Server.addr; jobs; queue_depth = 8; hot_tier_size = 16;
            cache = None; server_name = "chaos-smoke" }
          ~lookup)
      ()
  in
  let rec wait n =
    if not (Atomic.get ready) then
      if n > 500 then fail "server %s did not come up" tag
      else begin
        Thread.delay 0.01;
        wait (n + 1)
      end
  in
  wait 0;
  (addr, th)

let stop addr th =
  let c = Client.connect addr in
  Client.shutdown c;
  Client.close c;
  Thread.join th

let total = 20

(* four distinct fingerprints on the accumulator plus one on the ALU:
   enough cold service jobs to reach the planned kill index, plenty of
   warm repeats to keep the hot tier honest under faults *)
let request_of seq =
  let design = if seq mod 4 = 3 then "alu" else "acc" in
  let options =
    Synth.Engine.(default_options |> with_max_iterations (300 + (seq mod 4)))
  in
  (design, options)

(* runs the batch; returns per-request bindings and the retry count *)
let run_batch addr =
  let retried = ref 0 in
  let results =
    Array.init total (fun seq ->
        let design, options = request_of seq in
        match
          Client.with_retry ~retries:5 ~backoff_ms:5 ~seed:seq
            ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr retried)
            addr
            (fun c -> Client.synth c ~design options)
        with
        | r ->
            if r.Proto.outcome <> "solved" then
              fail "request %d (%s) came back %s" seq design r.Proto.outcome;
            r.Proto.bindings
        | exception e ->
            fail "request %d (%s) failed after retries: %s" seq design
              (Printexc.to_string e))
  in
  (results, !retried)

let () =
  (* phase one: fault-free baseline *)
  let addr, th = start "baseline" in
  let baseline, _ = run_batch addr in
  stop addr th;
  (* phase two: the same batch under the miniature fault plan *)
  Fault.install (Fault.parse "worker_kill@2,conn_drop@3");
  Fun.protect ~finally:Fault.clear @@ fun () ->
  let addr, th = start "faulted" in
  let faulted, retried = run_batch addr in
  let wrong = ref 0 in
  Array.iteri
    (fun seq b -> if b <> baseline.(seq) then incr wrong)
    faulted;
  if !wrong > 0 then
    fail "%d of %d replies diverged from the fault-free bindings" !wrong total;
  if Fault.fired () < 2 then
    fail "fault plan only fired %d of 2 planned faults" (Fault.fired ());
  (* recovery: a fresh cold fingerprint still solves on a worker, and
     the pool is back to full strength *)
  let c = Client.connect addr in
  let post =
    Client.synth c ~design:"acc"
      Synth.Engine.(default_options |> with_max_iterations 997)
  in
  if post.Proto.outcome <> "solved" then
    fail "post-fault cold request came back %s" post.Proto.outcome;
  if post.Proto.hot then fail "post-fault cold request answered hot";
  let _, _, h = Client.ping c in
  Client.close c;
  stop addr th;
  if h.Proto.workers_alive <> jobs then
    fail "recovery incomplete: %d/%d workers alive" h.Proto.workers_alive jobs;
  if h.Proto.workers_lost < 1 then
    fail "worker_kill@2 left no trace in the health report";
  if h.Proto.degraded then fail "daemon still degraded after recovery";
  if h.Proto.queue_waiting <> 0 then
    fail "%d jobs still queued after the batch" h.Proto.queue_waiting;
  Printf.printf
    "chaos smoke: %d requests ok under worker_kill@2,conn_drop@3 (%d \
     retries, %d worker(s) lost and respawned, bindings bit-identical)\n"
    total retried h.Proto.workers_lost;
  print_endline "chaos smoke: ok"
