(* Chaos smoke: the seconds-scale slice of the bench harness's chaos
   section, run on every `dune runtest` via the @chaos-smoke alias.

   Two phases against in-process daemons on /tmp sockets.  Phase one
   runs a 20-request mixed batch fault-free and records every solved
   reply's hole bindings.  Phase two installs the miniature fault plan
   [worker_kill@2,conn_drop@3] — the second service job downs its worker
   domain (supervision must respawn it), the third server-written frame
   severs its connection (the retrying client must recompute) — and
   replays the same batch through [Client.with_retry].  The plan may
   cost retries and recomputation; it must never cost correctness:

   - zero requests fail after bounded retries (no hangs: every attempt
     is bounded, so termination of this program is the liveness check);
   - every solved reply's bindings are bit-identical to phase one
     (faults never produce a wrong answer — requests are idempotent by
     content fingerprint);
   - the daemon recovers to full capacity: a fresh cold request solves,
     the health report shows every worker alive (and at least one lost
     along the way), nothing queued, not degraded;
   - the worker kill left an automatic flight-recorder dump: a valid
     Chrome-trace JSON file in the configured dump directory whose
     events carry the killed request's trace id (which the requeued
     request's terminal reply also reports). *)

module Proto = Owl_serve.Proto
module Server = Owl_serve.Server
module Client = Owl_serve.Client

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("chaos smoke: " ^ m); exit 1) fmt

let acc_problem = Designs.Accumulator.problem ()
let alu_problem = Designs.Alu.problem ()

let lookup kind name =
  match (kind, name) with
  | `Synth, "acc" -> Some acc_problem
  | `Synth, "alu" -> Some alu_problem
  | _ -> None

let jobs = 2

(* automatic flight-recorder dumps from the faulted phase land here *)
let dump_dir =
  Printf.sprintf "/tmp/owl-chaos-smoke-dumps-%d" (Unix.getpid ())

let start tag =
  let path =
    Printf.sprintf "/tmp/owl-chaos-smoke-%d-%s.sock" (Unix.getpid ()) tag
  in
  let addr = Proto.Unix_path path in
  let ready = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Server.run
          ~ready:(fun () -> Atomic.set ready true)
          { Server.addr; jobs; queue_depth = 8; hot_tier_size = 16;
            cache = None; server_name = "chaos-smoke";
            telemetry = true; dump_dir = Some dump_dir }
          ~lookup)
      ()
  in
  let rec wait n =
    if not (Atomic.get ready) then
      if n > 500 then fail "server %s did not come up" tag
      else begin
        Thread.delay 0.01;
        wait (n + 1)
      end
  in
  wait 0;
  (addr, th)

let stop addr th =
  let c = Client.connect addr in
  Client.shutdown c;
  Client.close c;
  Thread.join th

let total = 20

(* four distinct fingerprints on the accumulator plus one on the ALU:
   enough cold service jobs to reach the planned kill index, plenty of
   warm repeats to keep the hot tier honest under faults *)
let request_of seq =
  let design = if seq mod 4 = 3 then "alu" else "acc" in
  let options =
    Synth.Engine.(default_options |> with_max_iterations (300 + (seq mod 4)))
  in
  (design, options)

(* runs the batch; returns per-request bindings, the trace ids the
   terminal replies carried, and the retry count *)
let run_batch addr =
  let retried = ref 0 in
  let traces = ref [] in
  let results =
    Array.init total (fun seq ->
        let design, options = request_of seq in
        match
          Client.with_retry ~retries:5 ~backoff_ms:5 ~seed:seq
            ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr retried)
            addr
            (fun c -> Client.synth c ~design options)
        with
        | r ->
            if r.Proto.outcome <> "solved" then
              fail "request %d (%s) came back %s" seq design r.Proto.outcome;
            if r.Proto.trace = "" then
              fail "request %d (%s) reply carried no trace id" seq design;
            traces := r.Proto.trace :: !traces;
            r.Proto.bindings
        | exception e ->
            fail "request %d (%s) failed after retries: %s" seq design
              (Printexc.to_string e))
  in
  (results, !traces, !retried)

(* the faulted phase's flight dumps: every [worker_lost] dump must be
   valid Chrome-trace JSON, and at least one event across them must be
   tagged with a trace id some terminal reply reported — the killed
   request is requeued under its original id, so its reply names it *)
let check_flight_dumps traces =
  let dumps =
    match Sys.readdir dump_dir with
    | files -> Array.to_list files
    | exception Sys_error _ -> []
  in
  let is_lost_dump f =
    (* owl-flight-<pid>-worker_lost-<n>.json *)
    String.length f > 5
    && Filename.check_suffix f ".json"
    &&
    let rec find i =
      i + 11 <= String.length f
      && (String.sub f i 11 = "worker_lost" || find (i + 1))
    in
    find 0
  in
  let lost = List.filter is_lost_dump dumps in
  if lost = [] then
    fail "worker_kill@2 left no worker_lost flight dump in %s" dump_dir;
  let traced = ref false in
  List.iter
    (fun f ->
      let path = Filename.concat dump_dir f in
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.parse s with
      | exception Json.Parse_error m ->
          fail "flight dump %s is not valid JSON: %s" f m
      | doc -> (
          match Json.member "traceEvents" doc with
          | Some (Json.Arr (_ :: _ as evs)) ->
              List.iter
                (fun ev ->
                  match Json.member "args" ev with
                  | Some args -> (
                      match Json.member "trace" args with
                      | Some (Json.String id) when List.mem id traces ->
                          traced := true
                      | _ -> ())
                  | None -> ())
                evs
          | _ -> fail "flight dump %s has no traceEvents" f))
    lost;
  if not !traced then
    fail "no flight-dump event carries a trace id any reply reported";
  List.length lost

let cleanup_dumps () =
  (match Sys.readdir dump_dir with
  | files ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dump_dir f) with Sys_error _ -> ())
        files
  | exception Sys_error _ -> ());
  try Unix.rmdir dump_dir with Unix.Unix_error _ -> ()

let () =
  (* phase one: fault-free baseline *)
  let addr, th = start "baseline" in
  let baseline, _, _ = run_batch addr in
  stop addr th;
  (* phase two: the same batch under the miniature fault plan *)
  Fault.install (Fault.parse "worker_kill@2,conn_drop@3");
  Fun.protect ~finally:Fault.clear @@ fun () ->
  let addr, th = start "faulted" in
  let faulted, traces, retried = run_batch addr in
  let wrong = ref 0 in
  Array.iteri
    (fun seq b -> if b <> baseline.(seq) then incr wrong)
    faulted;
  if !wrong > 0 then
    fail "%d of %d replies diverged from the fault-free bindings" !wrong total;
  if Fault.fired () < 2 then
    fail "fault plan only fired %d of 2 planned faults" (Fault.fired ());
  (* recovery: a fresh cold fingerprint still solves on a worker, and
     the pool is back to full strength *)
  let c = Client.connect addr in
  let post =
    Client.synth c ~design:"acc"
      Synth.Engine.(default_options |> with_max_iterations 997)
  in
  if post.Proto.outcome <> "solved" then
    fail "post-fault cold request came back %s" post.Proto.outcome;
  if post.Proto.hot then fail "post-fault cold request answered hot";
  let _, _, h = Client.ping c in
  Client.close c;
  stop addr th;
  if h.Proto.workers_alive <> jobs then
    fail "recovery incomplete: %d/%d workers alive" h.Proto.workers_alive jobs;
  if h.Proto.workers_lost < 1 then
    fail "worker_kill@2 left no trace in the health report";
  if h.Proto.degraded then fail "daemon still degraded after recovery";
  if h.Proto.queue_waiting <> 0 then
    fail "%d jobs still queued after the batch" h.Proto.queue_waiting;
  let dumps = Fun.protect ~finally:cleanup_dumps (fun () -> check_flight_dumps traces) in
  Printf.printf
    "chaos smoke: %d requests ok under worker_kill@2,conn_drop@3 (%d \
     retries, %d worker(s) lost and respawned, bindings bit-identical, %d \
     traced flight dump(s))\n"
    total retried h.Proto.workers_lost dumps;
  print_endline "chaos smoke: ok"
