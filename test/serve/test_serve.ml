(* Tests for the owl serve stack: Proto framing and codecs, the
   Owl_cache.Lru hot tier, and end-to-end daemons.

   The protocol layers are tested bottom-up: framing over real pipe fds
   (including a dribbling writer that forces partial reads), codecs by
   roundtrip plus hostile payloads (garbage, ill-typed fields, version
   skew), and finally whole servers — started in-process on /tmp Unix
   sockets with a stub registry — exercising concurrent clients, the
   hot tier, admission control, framing abuse over a live socket, and
   shutdown drain. *)

module Proto = Owl_serve.Proto
module Server = Owl_serve.Server
module Client = Owl_serve.Client

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* {1 Framing} *)

let frames_error thunk =
  match thunk () with
  | _ -> false
  | exception Proto.Framing_error _ -> true

let test_frame_roundtrip () =
  let r, w = Unix.pipe () in
  let payloads = [ ""; "x"; "{\"v\":1}"; String.make 70_000 'a' ] in
  let writer =
    Thread.create (fun () -> List.iter (Proto.write_frame w) payloads) ()
  in
  List.iter
    (fun expect ->
      match Proto.read_frame r with
      | Some got -> check "frame payload" true (got = expect)
      | None -> Alcotest.fail "premature EOF")
    payloads;
  Thread.join writer;
  Unix.close w;
  check "clean EOF is None" true (Proto.read_frame r = None);
  Unix.close r

let test_frame_dribble () =
  (* one byte at a time: both the length prefix and the payload arrive
     in partial reads, which the framing layer must loop over *)
  let r, w = Unix.pipe () in
  let payload = "{\"v\":1,\"t\":\"ping\"}" in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  let writer =
    Thread.create
      (fun () ->
        Bytes.iter
          (fun c ->
            ignore (Unix.write w (Bytes.make 1 c) 0 1);
            Thread.yield ())
          b;
        Unix.close w)
      ()
  in
  check "dribbled frame reassembles" true (Proto.read_frame r = Some payload);
  check "then EOF" true (Proto.read_frame r = None);
  Thread.join writer;
  Unix.close r

let with_raw_bytes bytes f =
  let r, w = Unix.pipe () in
  let n = Bytes.length bytes in
  let writer =
    Thread.create
      (fun () ->
        let rec go off =
          if off < n then go (off + Unix.write w bytes off (n - off))
        in
        go 0;
        Unix.close w)
      ()
  in
  let result = f r in
  Thread.join writer;
  Unix.close r;
  result

let test_frame_eof_in_prefix () =
  check "EOF inside length prefix" true
    (with_raw_bytes (Bytes.make 2 '\x00') (fun r ->
         frames_error (fun () -> Proto.read_frame r)))

let test_frame_truncated_payload () =
  let b = Bytes.make (4 + 10) '\x2a' in
  Bytes.set_int32_be b 0 100l;
  check "EOF inside payload" true
    (with_raw_bytes b (fun r -> frames_error (fun () -> Proto.read_frame r)))

let test_frame_oversized_prefix () =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (Proto.max_frame + 1));
  check "oversized prefix rejected" true
    (with_raw_bytes b (fun r -> frames_error (fun () -> Proto.read_frame r)));
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 0xFFFFFFFFl;
  check "negative prefix rejected" true
    (with_raw_bytes b (fun r -> frames_error (fun () -> Proto.read_frame r)))

let test_frame_write_oversized () =
  let r, w = Unix.pipe () in
  check "oversized write refused" true
    (frames_error (fun () ->
         Proto.write_frame w (String.make (Proto.max_frame + 1) 'x')));
  Unix.close r;
  Unix.close w

(* {1 Addresses} *)

let test_addr_parse () =
  check "unix: prefix" true
    (Proto.addr_of_string "unix:/tmp/x.sock" = Ok (Proto.Unix_path "/tmp/x.sock"));
  check "bare path" true
    (Proto.addr_of_string "/tmp/x.sock" = Ok (Proto.Unix_path "/tmp/x.sock"));
  check "tcp host:port" true
    (Proto.addr_of_string "tcp:localhost:7777" = Ok (Proto.Tcp ("localhost", 7777)));
  check "tcp splits at last colon" true
    (Proto.addr_of_string "tcp:::1:7777" = Ok (Proto.Tcp ("::1", 7777)));
  check "bad port is an error" true
    (match Proto.addr_of_string "tcp:host:notaport" with
    | Error _ -> true
    | Ok _ -> false);
  check "out-of-range port is an error" true
    (match Proto.addr_of_string "tcp:host:70000" with
    | Error _ -> true
    | Ok _ -> false);
  check "missing port is an error" true
    (match Proto.addr_of_string "tcp:hostonly" with
    | Error _ -> true
    | Ok _ -> false);
  check "empty is an error" true
    (match Proto.addr_of_string "" with Error _ -> true | Ok _ -> false);
  List.iter
    (fun a ->
      check "addr roundtrip" true
        (Proto.addr_of_string (Proto.addr_to_string a) = Ok a))
    [ Proto.Unix_path "/tmp/y.sock"; Proto.Tcp ("127.0.0.1", 81) ]

(* {1 Codecs} *)

let custom_options =
  Synth.Engine.(
    default_options |> with_mode Monolithic |> with_jobs 3
    |> with_conflict_budget 12345 |> with_max_iterations 77
    |> with_deadline (Some 1.5) |> with_retries 5 |> with_escalation_factor 2
    |> with_validate_models true |> with_check_independence true
    |> with_incremental false |> with_sat_profile Sat.Aggressive)

let test_options_roundtrip () =
  List.iter
    (fun o ->
      match
        Proto.request_of_frame
          (Proto.request_to_frame (Proto.Synth { design = "d"; options = o }))
      with
      | Ok (Proto.Synth { design = "d"; options = o' }) ->
          check "options roundtrip" true (o = o')
      | _ -> Alcotest.fail "options did not roundtrip")
    [ Synth.Engine.default_options; custom_options ];
  (* the unlimited budget is max_int natively and null on the wire; a
     naive float roundtrip would corrupt it *)
  check "unlimited budget survives" true
    ((match
        Proto.request_of_frame
          (Proto.request_to_frame
             (Proto.Synth
                { design = "d"; options = Synth.Engine.default_options }))
      with
     | Ok (Proto.Synth { options; _ }) ->
         options.Synth.Engine.budget.Synth.Engine.Budget.conflict_budget
     | _ -> 0)
    = max_int)

(* Version-skew tolerance for the sat options block: a protocol-1 peer
   that predates the field omits it entirely, and the request must still
   decode (with the default profile) rather than be rejected — the
   protocol version did not change when the block was added. *)
let test_options_sat_skew () =
  let old_frame =
    "{\"v\":1,\"t\":\"synth\",\"design\":\"d\",\"options\":{\"mode\":\"per_instruction\",\"jobs\":1,\"conflict_budget\":null,\"max_iterations\":1,\"retries\":0,\"escalation_factor\":1,\"validate_models\":false,\"check_independence\":false,\"incremental\":true}}"
  in
  (match Proto.request_of_frame old_frame with
  | Ok (Proto.Synth { options; _ }) ->
      check "absent sat block decodes to default" true
        (Synth.Engine.sat_config options
        = Synth.Engine.sat_config Synth.Engine.default_options);
      check "absent strategy block decodes to default" true
        (Solver.Strategy.equal options.Synth.Engine.strategy
           Solver.Strategy.default);
      check "absent portfolio block decodes to sequential" true
        (not (Synth.Portfolio.enabled options.Synth.Engine.race))
  | _ -> Alcotest.fail "old-peer frame without sat block rejected");
  (* a conservative profile's unlimited interval is max_int natively and
     null on the wire, like the conflict budget *)
  let conservative =
    Synth.Engine.(default_options |> with_sat_profile Sat.Conservative)
  in
  (match
     Proto.request_of_frame
       (Proto.request_to_frame
          (Proto.Synth { design = "d"; options = conservative }))
   with
  | Ok (Proto.Synth { options; _ }) ->
      check "unlimited inprocess_interval survives" true
        ((Synth.Engine.sat_config options).Sat.inprocess_interval = max_int)
  | _ -> Alcotest.fail "conservative profile did not roundtrip");
  (* malformed sat blocks are rejected through the builder, like jobs=0 *)
  let bad =
    "{\"v\":1,\"t\":\"synth\",\"design\":\"d\",\"options\":{\"mode\":\"per_instruction\",\"jobs\":1,\"conflict_budget\":null,\"max_iterations\":1,\"retries\":0,\"escalation_factor\":1,\"validate_models\":false,\"check_independence\":false,\"incremental\":true,\"sat\":{\"lbd_retention\":true,\"rephase\":true,\"subsume\":true,\"vivify\":true,\"elim\":false,\"inprocess_interval\":0}}}"
  in
  check "inprocess_interval 0 rejected" true
    (match Proto.request_of_frame bad with
    | Error e -> e.Proto.code = "bad_request"
    | Ok _ -> false)

(* Version-skew tolerance for the strategy/portfolio blocks, mirroring
   the sat block above: a peer that predates them omits both, and the
   request decodes to a sequential default-strategy run.  The protocol
   version did not change when the blocks were added. *)
let test_options_strategy_skew () =
  (* a frame carrying a sat block but neither new block: the PR-7-era
     client.  The gates must be honored and the rest defaulted. *)
  let sat_only =
    "{\"v\":1,\"t\":\"synth\",\"design\":\"d\",\"options\":{\"mode\":\"per_instruction\",\"jobs\":1,\"conflict_budget\":null,\"max_iterations\":1,\"retries\":0,\"escalation_factor\":1,\"validate_models\":false,\"check_independence\":false,\"incremental\":true,\"sat\":{\"lbd_retention\":false,\"rephase\":true,\"subsume\":true,\"vivify\":true,\"elim\":true,\"inprocess_interval\":5000}}}"
  in
  (match Proto.request_of_frame sat_only with
  | Ok (Proto.Synth { options; _ }) ->
      check "sat gates honored without strategy block" false
        (Synth.Engine.sat_config options).Sat.lbd_retention;
      check "diversification defaults without strategy block" true
        ((Synth.Engine.sat_config options).Sat.branch_seed = 0);
      check "sequential without portfolio block" true
        (not (Synth.Portfolio.enabled options.Synth.Engine.race))
  | _ -> Alcotest.fail "sat-only frame rejected");
  (* full roundtrip of a diversified, racing request *)
  let racy =
    Synth.Engine.(
      default_options
      |> with_strategy
           Solver.Strategy.(
             of_profile Sat.Aggressive
             |> with_restart (Sat.Geometric (150, 1.5))
             |> with_seed 7 |> with_phase Sat.Phase_rand
             |> with_share_out false)
      |> with_portfolio 4 |> with_cube_vars 3)
  in
  (match
     Proto.request_of_frame
       (Proto.request_to_frame (Proto.Synth { design = "d"; options = racy }))
   with
  | Ok (Proto.Synth { options; _ }) ->
      check "diversified strategy roundtrips" true
        (Solver.Strategy.equal options.Synth.Engine.strategy
           racy.Synth.Engine.strategy);
      check "portfolio options roundtrip" true
        (options.Synth.Engine.race = racy.Synth.Engine.race)
  | _ -> Alcotest.fail "racing request did not roundtrip");
  (* malformed blocks are rejected through the builders *)
  let reject frame name =
    check name true
      (match Proto.request_of_frame frame with
      | Error e -> e.Proto.code = "bad_request"
      | Ok _ -> false)
  in
  let base =
    "{\"v\":1,\"t\":\"synth\",\"design\":\"d\",\"options\":{\"mode\":\"per_instruction\",\"jobs\":1,\"conflict_budget\":null,\"max_iterations\":1,\"retries\":0,\"escalation_factor\":1,\"validate_models\":false,\"check_independence\":false,\"incremental\":true,"
  in
  reject
    (base
   ^ "\"strategy\":{\"profile\":\"default\",\"restart\":\"luby:0\",\"seed\":0,\"phase\":\"neg\",\"share_in\":true,\"share_out\":true}}}")
    "restart luby:0 rejected";
  reject
    (base
   ^ "\"strategy\":{\"profile\":\"default\",\"restart\":\"luby:100\",\"seed\":0,\"phase\":\"sideways\",\"share_in\":true,\"share_out\":true}}}")
    "unknown phase rejected";
  reject
    (base ^ "\"portfolio\":{\"racers\":0,\"cube_vars\":0,\"share_interval\":2000,\"share_max_lbd\":4}}}")
    "racers 0 rejected";
  reject
    (base
   ^ "\"portfolio\":{\"racers\":1,\"cube_vars\":40,\"share_interval\":2000,\"share_max_lbd\":4}}}")
    "cube_vars 40 rejected"

(* Version-skew tolerance for the pong health report, mirroring the sat
   options block above: a protocol-1 server that predates the report
   sends a bare pong, which must decode to {!Proto.empty_health} rather
   than be rejected — the protocol version did not change when the
   fields were added. *)
let test_pong_health_skew () =
  let old_frame = "{\"v\":1,\"t\":\"pong\",\"server\":\"old\",\"protocol\":1}" in
  match Proto.reply_of_frame old_frame with
  | Ok (Proto.Pong { server; protocol; health }) ->
      check_str "old server name survives" "old" server;
      check_int "old protocol survives" 1 protocol;
      check "absent health decodes to empty report" true
        (health = Proto.empty_health)
  | _ -> Alcotest.fail "bare old-style pong rejected"

let code_of = function
  | Error e -> e.Proto.code
  | Ok _ -> "ok"

let test_request_decode_errors () =
  check_str "garbage" "bad_request" (code_of (Proto.request_of_frame "hello"));
  check_str "non-object" "version_skew" (code_of (Proto.request_of_frame "[1,2]"));
  check_str "missing version" "version_skew"
    (code_of (Proto.request_of_frame "{\"t\":\"ping\"}"));
  check_str "version skew" "version_skew"
    (code_of (Proto.request_of_frame "{\"v\":99,\"t\":\"ping\"}"));
  check_str "unknown kind" "bad_request"
    (code_of (Proto.request_of_frame "{\"v\":1,\"t\":\"dance\"}"));
  check_str "ill-typed design" "bad_request"
    (code_of
       (Proto.request_of_frame "{\"v\":1,\"t\":\"synth\",\"design\":5}"));
  check_str "missing options" "bad_request"
    (code_of
       (Proto.request_of_frame "{\"v\":1,\"t\":\"synth\",\"design\":\"d\"}"));
  (* the wire carries builder-validated options: jobs = 0 must be
     rejected exactly as the native setter rejects it *)
  check_str "invalid options" "bad_request"
    (code_of
       (Proto.request_of_frame
          "{\"v\":1,\"t\":\"synth\",\"design\":\"d\",\"options\":{\"mode\":\"monolithic\",\"jobs\":0,\"conflict_budget\":null,\"max_iterations\":1,\"retries\":0,\"escalation_factor\":1,\"validate_models\":false,\"check_independence\":false,\"incremental\":true}}"))

let sample_stats =
  {
    Synth.Engine.iterations = 4;
    queries = 15;
    conflicts = 1;
    blasted_vars = 100;
    blasted_clauses = 2000;
    trivial_unsats = 3;
    retried_queries = 1;
    degraded_queries = 0;
    validation_failures = 0;
    task_retries = 2;
    sat_restarts = 7;
    sat_learnt_kept = 120;
    sat_learnt_deleted = 55;
    sat_subsumed = 9;
    sat_strengthened = 4;
    sat_vivified = 11;
    sat_eliminated = 2;
    sat_rephases = 1;
    races = 3;
    race_unsat = 2;
    race_shared_out = 40;
    race_shared_in = 25;
    cubes = 8;
    cubes_unsat = 8;
    wall_seconds = 0.25;
  }

let sample_cache_stats =
  {
    Proto.disk =
      Some { Owl_cache.result_entries = 3; warm_entries = 5; total_bytes = 999 };
    store = Some { Owl_cache.hits = 1; misses = 2; stale = 3; writes = 4 };
    hot_tier =
      Some
        {
          Proto.hot_hits = 10;
          hot_misses = 20;
          hot_evictions = 1;
          hot_size = 7;
          hot_capacity = 16;
        };
    served = 42;
    rejected = 6;
    uptime_seconds = 12.5;
  }

let test_reply_roundtrip () =
  let replies =
    [
      Proto.Progress (Proto.Instr_started { instr = "add" });
      Proto.Progress
        (Proto.Instr_done
           { instr = "add"; status = "solved"; iterations = 3; queries = 9 });
      Proto.Progress (Proto.Retry { attempt = 1; reason = "unknown" });
      Proto.Progress (Proto.Degraded { attempt = 2 });
      Proto.Synth_result
        {
          Proto.outcome = "solved";
          detail = "";
          bindings = [ ("h0", "2'x1"); ("h1", "(if a \"b\" c)") ];
          stats = sample_stats;
          hot = true;
          trace = "tdeadbe-7";
        };
      Proto.Synth_result
        {
          Proto.outcome = "timeout";
          detail = "";
          bindings = [];
          stats = sample_stats;
          hot = false;
          trace = "";
        };
      Proto.Verify_result
        {
          Proto.verdicts = [ ("add", "verified"); ("sub", "violated") ];
          v_hot = false;
          v_trace = "tcafe00-12";
        };
      Proto.Cache_stats_reply sample_cache_stats;
      Proto.Cache_stats_reply
        {
          Proto.disk = None;
          store = None;
          hot_tier = None;
          served = 0;
          rejected = 0;
          uptime_seconds = 0.0;
        };
      Proto.Pong
        {
          server = "owl/1.0.0";
          protocol = Proto.version;
          health =
            {
              Proto.workers = 4;
              workers_alive = 3;
              workers_lost = 1;
              queue_waiting = 2;
              degraded = true;
              cancelled = 5;
              shed = 6;
              timeouts = 7;
              degraded_seconds = 1.5;
              uptime_s = 33.25;
              build = "owl-serve/1.0 proto-1";
              hot_size = 9;
              hot_capacity = 64;
            };
        };
      Proto.Pong
        {
          server = "owl/1.0.0";
          protocol = Proto.version;
          health = Proto.empty_health;
        };
      Proto.Busy { queue_depth = 9 };
      Proto.Err { Proto.code = "internal"; message = "boom \"quoted\"" };
      Proto.Metrics_reply
        [
          {
            Proto.m_name = "serve.requests";
            m_kind = "counter";
            m_count = 42;
            m_sum = 0;
            m_min = 0;
            m_max = 0;
            m_p50 = 0;
            m_p90 = 0;
            m_p99 = 0;
          };
          {
            Proto.m_name = "serve.job.latency_us";
            m_kind = "histogram";
            m_count = 5;
            m_sum = 1010;
            m_min = 1;
            m_max = 1000;
            m_p50 = 3;
            m_p90 = 768;
            m_p99 = 997;
          };
        ];
      Proto.Metrics_reply [];
      Proto.Dump_trace_reply
        { trace_json = "{\"traceEvents\":[{\"name\":\"x \\\"q\\\"\"}]}" };
      Proto.Shutdown_ack;
    ]
  in
  List.iter
    (fun reply ->
      match Proto.reply_of_frame (Proto.reply_to_frame reply) with
      | Ok got -> check "reply roundtrip" true (got = reply)
      | Error e -> Alcotest.fail ("reply failed to decode: " ^ e.Proto.message))
    replies

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Proto.request_of_frame (Proto.request_to_frame req) with
      | Ok got -> check "request roundtrip" true (got = req)
      | Error e ->
          Alcotest.fail ("request failed to decode: " ^ e.Proto.message))
    [
      Proto.Synth { design = "acc"; options = custom_options };
      Proto.Verify { design = "acc"; options = Synth.Engine.default_options };
      Proto.Cache_stats;
      Proto.Ping;
      Proto.Metrics;
      Proto.Dump_trace { trace = None };
      Proto.Dump_trace { trace = Some "t1a2b3-4" };
      Proto.Shutdown;
    ]

(* The envelope's "trace" member is a tolerant peek on both ends: any
   request can carry one, old decoders ignore it, and unparseable
   payloads read as None rather than raising. *)
let test_trace_envelope () =
  check "client-stamped trace survives the envelope" true
    (Proto.trace_of_frame (Proto.request_to_frame ~trace:"tabc12-9" Proto.Ping)
    = Some "tabc12-9");
  check "untraced frame peeks as None" true
    (Proto.trace_of_frame (Proto.request_to_frame Proto.Ping) = None);
  check "garbage peeks as None, not an exception" true
    (Proto.trace_of_frame "not json at all" = None);
  (* a traced request still decodes as the same request — the id rides
     protocol version 1 unchanged *)
  check "traced ping still decodes" true
    (Proto.request_of_frame (Proto.request_to_frame ~trace:"t0-0" Proto.Ping)
    = Ok Proto.Ping);
  (* terminal replies re-surface the id they were stamped with *)
  let r =
    Proto.Synth_result
      {
        Proto.outcome = "solved";
        detail = "";
        bindings = [ ("h0", "1'x0") ];
        stats = sample_stats;
        hot = false;
        trace = "tfeed0-3";
      }
  in
  check "reply frame carries the result's trace id" true
    (Proto.trace_of_frame (Proto.reply_to_frame r) = Some "tfeed0-3")

let wm ?(count = 0) ?(sum = 0) ?(min = 0) ?(max = 0) ?(p50 = 0) ?(p90 = 0)
    ?(p99 = 0) name kind =
  {
    Proto.m_name = name;
    m_kind = kind;
    m_count = count;
    m_sum = sum;
    m_min = min;
    m_max = max;
    m_p50 = p50;
    m_p90 = p90;
    m_p99 = p99;
  }

let sample_metrics =
  [
    wm "serve.requests" "counter" ~count:42;
    wm "serve.queue_waiting" "gauge" ~count:3;
    wm "serve.job.latency_us.1m" "window" ~count:5 ~sum:1010 ~min:1 ~max:1000
      ~p50:3 ~p90:768 ~p99:997;
  ]

(* Pin down the Prometheus exposition rendering: name mangling, the
   _total counter suffix, plain gauges, and summary quantiles.  These
   lines are what a scraper parses, so the format is a contract. *)
let test_prometheus_render () =
  let text = Proto.metrics_to_prometheus sample_metrics in
  let has needle =
    let n = String.length needle and l = String.length text in
    let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check "counter renders with _total" true (has "owl_serve_requests_total 42\n");
  check "counter typed" true (has "# TYPE owl_serve_requests_total counter\n");
  check "gauge renders plainly" true (has "owl_serve_queue_waiting 3\n");
  check "window renders as summary" true
    (has "# TYPE owl_serve_job_latency_us_1m summary\n");
  check "p99 quantile sample" true
    (has "owl_serve_job_latency_us_1m{quantile=\"0.99\"} 997\n");
  check "summary sum and count" true
    (has "owl_serve_job_latency_us_1m_sum 1010\n"
    && has "owl_serve_job_latency_us_1m_count 5\n");
  (* and the JSON rendering is a standalone parseable array *)
  match Json.parse (Proto.metrics_to_json sample_metrics) with
  | Json.Arr [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "metrics_to_json is not a 3-element array"
  | exception Json.Parse_error m ->
      Alcotest.fail ("metrics_to_json unparseable: " ^ m)

(* {1 The LRU hot tier} *)

let test_lru_basics () =
  let l = Owl_cache.Lru.create ~capacity:2 in
  check "miss on empty" true (Owl_cache.Lru.find l "a" = None);
  Owl_cache.Lru.add l "a" 1;
  Owl_cache.Lru.add l "b" 2;
  check "hit a" true (Owl_cache.Lru.find l "a" = Some 1);
  (* a was just refreshed, so adding c evicts b, the cold entry *)
  Owl_cache.Lru.add l "c" 3;
  check "b evicted" true (Owl_cache.Lru.find l "b" = None);
  check "a survived" true (Owl_cache.Lru.find l "a" = Some 1);
  check "c present" true (Owl_cache.Lru.find l "c" = Some 3);
  Owl_cache.Lru.add l "a" 10;
  check "overwrite in place" true (Owl_cache.Lru.find l "a" = Some 10);
  let s = Owl_cache.Lru.stats l in
  check_int "size" 2 s.Owl_cache.Lru.size;
  check_int "evictions" 1 s.Owl_cache.Lru.evictions;
  check "hits and misses counted" true
    (s.Owl_cache.Lru.hits > 0 && s.Owl_cache.Lru.misses > 0)

let test_lru_zero_capacity () =
  let l = Owl_cache.Lru.create ~capacity:0 in
  Owl_cache.Lru.add l "a" 1;
  check "capacity 0 never stores" true (Owl_cache.Lru.find l "a" = None);
  check "negative capacity rejected" true
    (match Owl_cache.Lru.create ~capacity:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_lru_concurrent () =
  (* hammer one tier from several domains; the postcondition is sanity
     (no crash, size within capacity), the mutex does the rest *)
  let l = Owl_cache.Lru.create ~capacity:8 in
  let worker seed () =
    for i = 0 to 999 do
      let k = string_of_int ((i * seed) mod 32) in
      (match Owl_cache.Lru.find l k with Some _ -> () | None -> ());
      Owl_cache.Lru.add l k i
    done
  in
  let ds = List.map (fun s -> Domain.spawn (worker s)) [ 3; 5; 7 ] in
  worker 11 ();
  List.iter Domain.join ds;
  let s = Owl_cache.Lru.stats l in
  check "size bounded by capacity" true (s.Owl_cache.Lru.size <= 8);
  check_int "all lookups accounted" 4000
    (s.Owl_cache.Lru.hits + s.Owl_cache.Lru.misses)

(* {1 End-to-end servers}

   Each test boots a real daemon (worker domains, reader threads) on a
   fresh /tmp socket with a stub two-design registry: "acc" is the
   accumulator case study, "slow" is the same problem behind a 0.5 s
   construction delay — the deterministic way to keep a worker busy
   while admission control and drain behavior are observed. *)

let acc_problem = Designs.Accumulator.problem ()
let alu_problem = Designs.Alu.problem ()

let acc_verify_problem =
  {
    acc_problem with
    Synth.Engine.design = Designs.Accumulator.reference_design ();
  }

let stub_lookup kind name =
  let slow = String.length name >= 4 && String.sub name 0 4 = "slow" in
  if slow then Unix.sleepf 0.5;
  match (kind, name) with
  | `Synth, _ when name = "acc" || slow -> Some acc_problem
  | `Synth, "alu" -> Some alu_problem
  | `Verify, "acc" -> Some acc_verify_problem
  | _ -> None

let sock_counter = ref 0

let start_server ?(jobs = 2) ?(queue_depth = 8) ?(hot = 16)
    ?(telemetry = false) () =
  incr sock_counter;
  let path =
    Printf.sprintf "/tmp/owl-serve-test-%d-%d.sock" (Unix.getpid ())
      !sock_counter
  in
  let addr = Proto.Unix_path path in
  let ready = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Server.run
          ~ready:(fun () -> Atomic.set ready true)
          {
            Server.addr;
            jobs;
            queue_depth;
            hot_tier_size = hot;
            cache = None;
            server_name = "test";
            telemetry;
            dump_dir = None;
          }
          ~lookup:stub_lookup)
      ()
  in
  let rec wait n =
    if not (Atomic.get ready) then
      if n > 500 then Alcotest.fail "server did not come up"
      else begin
        Thread.delay 0.01;
        wait (n + 1)
      end
  in
  wait 0;
  (addr, th)

let stop_server addr th =
  let c = Client.connect addr in
  Client.shutdown c;
  Client.close c;
  Thread.join th

let test_ping_and_stats () =
  let addr, th = start_server () in
  let c = Client.connect addr in
  let server, protocol, h = Client.ping c in
  check_str "server name" "test" server;
  check_int "protocol" Proto.version protocol;
  check_int "workers configured" 2 h.Proto.workers;
  check_int "all workers alive" 2 h.Proto.workers_alive;
  check_int "none lost" 0 h.Proto.workers_lost;
  check "healthy daemon is not degraded" true (not h.Proto.degraded);
  let s = Client.cache_stats c in
  check "no disk cache configured" true (s.Proto.disk = None);
  check "hot tier reported" true
    (match s.Proto.hot_tier with
    | Some h -> h.Proto.hot_capacity = 16
    | None -> false);
  Client.close c;
  stop_server addr th

let test_synth_cold_then_hot () =
  let addr, th = start_server () in
  let c = Client.connect addr in
  let events = ref 0 in
  let started = ref 0 in
  let on_progress = function
    | Proto.Instr_started _ ->
        incr started;
        incr events
    | _ -> incr events
  in
  (* the ALU takes the per-instruction path, whose cegis.instr spans
     feed the progress stream; shared-hole designs synthesize jointly
     and stream only retry/degrade notices *)
  let r = Client.synth ~on_progress c ~design:"alu" Synth.Engine.default_options in
  check_str "cold outcome" "solved" r.Proto.outcome;
  check "cold is not hot" true (not r.Proto.hot);
  check "cold run streamed progress" true (!started >= 1);
  check "bindings returned" true (r.Proto.bindings <> []);
  let cold_events = !events in
  let r2 =
    Client.synth ~on_progress c ~design:"alu" Synth.Engine.default_options
  in
  check_str "warm outcome" "solved" r2.Proto.outcome;
  check "warm answer is hot" true r2.Proto.hot;
  (* the hot tier answers without running the engine, so a warm repeat
     streams no events — the protocol-level witness that it never
     touched a solver *)
  check_int "no progress on a hot hit" cold_events !events;
  check "same bindings either way" true (r.Proto.bindings = r2.Proto.bindings);
  let s = Client.cache_stats c in
  check "hot tier counted the hit" true
    (match s.Proto.hot_tier with
    | Some h -> h.Proto.hot_hits >= 1
    | None -> false);
  Client.close c;
  stop_server addr th

let test_verify_end_to_end () =
  let addr, th = start_server () in
  let c = Client.connect addr in
  let r = Client.verify c ~design:"acc" Synth.Engine.default_options in
  check "all instructions verified" true
    (r.Proto.verdicts <> []
    && List.for_all (fun (_, v) -> v = "verified") r.Proto.verdicts);
  let r2 = Client.verify c ~design:"acc" Synth.Engine.default_options in
  check "verify repeat is hot" true r2.Proto.v_hot;
  Client.close c;
  stop_server addr th

(* Telemetry end to end: a daemon started with telemetry on serves the
   metrics snapshot (counters counting, gauges live) and flight-recorder
   dumps — both the full ring and a single request's slice by trace id;
   one started with telemetry off answers the same request with an empty
   list rather than an error. *)
let test_live_telemetry () =
  let addr, th = start_server ~telemetry:true () in
  let c = Client.connect addr in
  let r = Client.synth c ~design:"acc" Synth.Engine.default_options in
  check_str "request solved" "solved" r.Proto.outcome;
  check "reply carries a trace id" true (r.Proto.trace <> "");
  let ms = Client.metrics c in
  check "metrics reply is non-empty" true (ms <> []);
  let find name = List.find_opt (fun m -> m.Proto.m_name = name) ms in
  (match find "serve.requests" with
  | Some m ->
      check_str "requests kind" "counter" m.Proto.m_kind;
      check "requests counted" true (m.Proto.m_count >= 1)
  | None -> Alcotest.fail "no serve.requests counter");
  (match find "serve.workers_alive" with
  | Some m ->
      check_str "workers kind" "gauge" m.Proto.m_kind;
      check_int "workers gauge" 2 m.Proto.m_count
  | None -> Alcotest.fail "no serve.workers_alive gauge");
  (* the worker observes job latency after sending the terminal reply,
     so the histogram may land an instant behind the reply — poll *)
  let rec await_latency n =
    match
      List.find_opt
        (fun m -> m.Proto.m_name = "serve.job.latency_us")
        (Client.metrics c)
    with
    | Some m when m.Proto.m_count >= 1 -> ()
    | _ when n < 100 ->
        Thread.delay 0.01;
        await_latency (n + 1)
    | _ -> Alcotest.fail "no serve.job.latency_us observation"
  in
  await_latency 0;
  (* the flight recorder serves a full dump... *)
  (match Json.parse (Client.dump_trace c) with
  | doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "flight dump has no traceEvents")
  | exception Json.Parse_error m ->
      Alcotest.fail ("flight dump is not valid JSON: " ^ m));
  (* ...and a single request's span tree in isolation: every non-metadata
     event in the slice is tagged with exactly the reply's trace id *)
  (match Json.parse (Client.dump_trace ~trace:r.Proto.trace c) with
  | doc -> (
      match Json.member "traceEvents" doc with
      | Some (Json.Arr evs) ->
          let payload =
            List.filter
              (fun ev -> Json.member "ph" ev <> Some (Json.String "M"))
              evs
          in
          check "slice is non-empty" true (payload <> []);
          check "slice events all carry the request's id" true
            (List.for_all
               (fun ev ->
                 match Json.member "args" ev with
                 | Some args ->
                     Json.member "trace" args
                     = Some (Json.String r.Proto.trace)
                 | None -> false)
               payload)
      | _ -> Alcotest.fail "trace slice has no traceEvents")
  | exception Json.Parse_error m ->
      Alcotest.fail ("trace slice is not valid JSON: " ^ m));
  Client.close c;
  stop_server addr th;
  (* telemetry off: the wire request succeeds, the registry is empty *)
  let addr, th = start_server () in
  let c = Client.connect addr in
  check "telemetry off serves an empty list" true (Client.metrics c = []);
  Client.close c;
  stop_server addr th

let test_unknown_design () =
  let addr, th = start_server () in
  let c = Client.connect addr in
  check "unknown design is a typed error" true
    (match Client.synth c ~design:"nope" Synth.Engine.default_options with
    | _ -> false
    | exception Client.Server_error e -> e.Proto.code = "unknown_design");
  (* the error must not poison the connection *)
  let _ = Client.ping c in
  Client.close c;
  stop_server addr th

let test_concurrent_clients () =
  let addr, th = start_server ~jobs:3 ~queue_depth:64 () in
  let failures = Atomic.make 0 in
  let hot_answers = Atomic.make 0 in
  let client i () =
    try
      let c = Client.connect addr in
      for k = 0 to 4 do
        (* vary max_iterations to mix distinct (cold) and repeated
           (warm) fingerprints across clients *)
        let options =
          Synth.Engine.(
            default_options |> with_max_iterations (200 + ((i + k) mod 3)))
        in
        let r = Client.synth c ~design:"acc" options in
        if r.Proto.outcome <> "solved" then Atomic.incr failures;
        if r.Proto.hot then Atomic.incr hot_answers
      done;
      ignore (Client.ping c);
      Client.close c
    with _ -> Atomic.incr failures
  in
  let threads = List.init 6 (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  check_int "no failed or misframed exchanges" 0 (Atomic.get failures);
  (* 30 requests over 3 distinct fingerprints: most answers are warm *)
  check "hot tier served repeats" true (Atomic.get hot_answers > 0);
  stop_server addr th

let test_admission_control () =
  let addr, th = start_server ~jobs:1 ~queue_depth:0 () in
  let first = ref None in
  let a =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        first := Some (Client.synth c ~design:"slow" Synth.Engine.default_options);
        Client.close c)
      ()
  in
  Thread.delay 0.15;
  (* the single worker is busy constructing "slow"; with queue_depth 0
     the second request must bounce, not wait *)
  let c = Client.connect addr in
  check "second request bounces" true
    (match Client.synth c ~design:"acc" Synth.Engine.default_options with
    | _ -> false
    | exception Client.Server_busy _ -> true);
  Client.close c;
  Thread.join a;
  check "first request completed" true
    (match !first with Some r -> r.Proto.outcome = "solved" | None -> false);
  stop_server addr th

let test_raw_protocol_abuse () =
  let addr, th = start_server () in
  let raw () =
    match addr with
    | Proto.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Proto.Tcp _ -> assert false
  in
  (* version skew: answered with the distinct code, connection kept *)
  let fd = raw () in
  Proto.write_frame fd "{\"v\":99,\"t\":\"ping\"}";
  check "version skew reported" true
    (match Proto.read_frame fd with
    | Some payload -> (
        match Proto.reply_of_frame payload with
        | Ok (Proto.Err e) -> e.Proto.code = "version_skew"
        | _ -> false)
    | None -> false);
  (* garbage JSON: bad_request, and the connection still answers pings *)
  Proto.write_frame fd "this is not json";
  check "garbage reported" true
    (match Proto.read_frame fd with
    | Some payload -> (
        match Proto.reply_of_frame payload with
        | Ok (Proto.Err e) -> e.Proto.code = "bad_request"
        | _ -> false)
    | None -> false);
  Proto.write_frame fd (Proto.request_to_frame Proto.Ping);
  check "connection survives decode errors" true
    (match Proto.read_frame fd with
    | Some payload -> (
        match Proto.reply_of_frame payload with
        | Ok (Proto.Pong _) -> true
        | _ -> false)
    | None -> false);
  Unix.close fd;
  (* framing abuse is unrecoverable: an oversized prefix must get the
     connection dropped, not answered *)
  let fd = raw () in
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 0x7FFFFFFFl;
  ignore (Unix.write fd b 0 4);
  check "oversized prefix drops the connection" true
    (match Proto.read_frame fd with
    | None -> true
    | Some _ -> false
    | exception Proto.Framing_error _ -> true);
  Unix.close fd;
  (* a truncated frame (prefix promises more than ever arrives) *)
  let fd = raw () in
  let b = Bytes.make (4 + 5) 'x' in
  Bytes.set_int32_be b 0 1000l;
  ignore (Unix.write fd b 0 9);
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  check "truncated frame drops the connection" true
    (match Proto.read_frame fd with
    | None -> true
    | Some _ -> false
    | exception Proto.Framing_error _ -> true);
  Unix.close fd;
  stop_server addr th

(* A client that pipelines work and vanishes: its queued jobs must be
   cancelled (admission slots and connection references released) and a
   later client must be served promptly — nobody pays for a dead peer. *)
let test_disconnect_cancels_queued () =
  let addr, th = start_server ~jobs:1 ~queue_depth:8 () in
  (* occupy the single worker so the dead client's jobs stay queued *)
  let a_result = ref None in
  let a =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        a_result :=
          Some (Client.synth c ~design:"slow-dc" Synth.Engine.default_options);
        Client.close c)
      ()
  in
  Thread.delay 0.15;
  let fd =
    match addr with
    | Proto.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Proto.Tcp _ -> assert false
  in
  (* pipeline two distinct cold requests, then slam the socket shut with
     both still queued behind the slow job *)
  List.iter
    (fun iters ->
      Proto.write_frame fd
        (Proto.request_to_frame
           (Proto.Synth
              {
                design = "acc";
                options =
                  Synth.Engine.(default_options |> with_max_iterations iters);
              })))
    [ 901; 902 ];
  Unix.close fd;
  Thread.delay 0.2;
  (* the dead client's slots are released: a live client still gets
     served, and the health report shows the cancellations *)
  let c = Client.connect addr in
  let r = Client.synth c ~design:"acc" Synth.Engine.default_options in
  check_str "later client still served" "solved" r.Proto.outcome;
  let _, _, h = Client.ping c in
  check "both queued jobs cancelled" true (h.Proto.cancelled >= 2);
  check_int "queue empty again" 0 h.Proto.queue_waiting;
  Client.close c;
  Thread.join a;
  check "slow job unaffected" true
    (match !a_result with Some r -> r.Proto.outcome = "solved" | None -> false);
  stop_server addr th

(* The worker_kill fault downs the domain executing the first solver
   job.  Supervision must respawn it, and the job — re-queued once at
   the head of its connection's FIFO — must still answer correctly, so
   the kill is invisible to the client except in the health report. *)
let test_worker_kill_supervision () =
  Fault.install (Fault.parse "worker_kill@1");
  Fun.protect ~finally:Fault.clear @@ fun () ->
  let addr, th = start_server ~jobs:2 () in
  let c = Client.connect addr in
  let r = Client.synth c ~design:"acc" Synth.Engine.default_options in
  check_str "killed worker's job still solved" "solved" r.Proto.outcome;
  let _, _, h = Client.ping c in
  check_int "the kill is on the books" 1 h.Proto.workers_lost;
  check_int "capacity recovered" 2 h.Proto.workers_alive;
  check "recovered daemon is not degraded" true (not h.Proto.degraded);
  Client.close c;
  stop_server addr th

(* Second kill on the same request: the re-queued execution dies too, so
   the client gets the typed, retryable worker_lost error — and
   [Client.with_retry] turns it back into a success. *)
let test_worker_lost_then_retry () =
  Fault.install (Fault.parse "worker_kill@1,worker_kill@2");
  Fun.protect ~finally:Fault.clear @@ fun () ->
  let addr, th = start_server ~jobs:2 () in
  let c = Client.connect addr in
  check "double kill surfaces worker_lost" true
    (match Client.synth c ~design:"acc" Synth.Engine.default_options with
    | _ -> false
    | exception Client.Server_error e -> e.Proto.code = "worker_lost");
  Client.close c;
  let retried = ref 0 in
  let r =
    Client.with_retry ~retries:2 ~backoff_ms:5
      ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr retried)
      addr
      (fun c -> Client.synth c ~design:"acc" Synth.Engine.default_options)
  in
  check_str "retry recovers the answer" "solved" r.Proto.outcome;
  check_int "no further faults, no further retries" 0 !retried;
  let _, _, h =
    Client.with_retry addr (fun c -> Client.ping c)
  in
  check_int "both kills on the books" 2 h.Proto.workers_lost;
  check_int "capacity still full" 2 h.Proto.workers_alive;
  stop_server addr th

(* Deadline enforcement before any solver is involved: already
   unsatisfiable at admission (no queue slot), or expired during the
   queue wait (answered by the worker without solving). *)
let test_deadline_admission () =
  let addr, th = start_server () in
  let c = Client.connect addr in
  let opts = Synth.Engine.(default_options |> with_deadline (Some 0.0)) in
  check "unsatisfiable deadline rejected immediately" true
    (match Client.synth c ~design:"acc" opts with
    | _ -> false
    | exception Client.Server_error e -> e.Proto.code = "timeout");
  let _, _, h = Client.ping c in
  check_int "no queue slot consumed" 0 h.Proto.queue_waiting;
  check "timeout counted" true (h.Proto.timeouts >= 1);
  (* the connection survives the rejection *)
  let r = Client.synth c ~design:"acc" Synth.Engine.default_options in
  check_str "same connection still works" "solved" r.Proto.outcome;
  Client.close c;
  stop_server addr th

let test_deadline_queued_expiry () =
  let addr, th = start_server ~jobs:1 ~queue_depth:4 () in
  let a =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        ignore (Client.synth c ~design:"slow-dl" Synth.Engine.default_options);
        Client.close c)
      ()
  in
  Thread.delay 0.15;
  (* 50 ms of deadline cannot outlive the ~350 ms still left on the slow
     job occupying the only worker: it must expire in the queue *)
  let c = Client.connect addr in
  let opts = Synth.Engine.(default_options |> with_deadline (Some 0.05)) in
  check "deadline expired while queued" true
    (match Client.synth c ~design:"acc" opts with
    | _ -> false
    | exception Client.Server_error e -> e.Proto.code = "timeout");
  Client.close c;
  Thread.join a;
  stop_server addr th

let test_shutdown_drains () =
  let addr, th = start_server ~jobs:1 ~queue_depth:4 () in
  let result = ref None in
  let a =
    Thread.create
      (fun () ->
        let c = Client.connect addr in
        result := Some (Client.synth c ~design:"slow2" Synth.Engine.default_options);
        Client.close c)
      ()
  in
  Thread.delay 0.15;
  let c = Client.connect addr in
  Client.shutdown c;
  Client.close c;
  (* the in-flight job must still complete and deliver its reply *)
  Thread.join a;
  check "queued job survived shutdown" true
    (match !result with Some r -> r.Proto.outcome = "solved" | None -> false);
  Thread.join th;
  (* after drain the socket is gone *)
  check "socket unlinked after drain" true
    (match Client.connect addr with
    | exception Unix.Unix_error _ -> true
    | c ->
        Client.close c;
        false)

let () =
  Alcotest.run "serve"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "dribbled partial reads" `Quick test_frame_dribble;
          Alcotest.test_case "EOF in prefix" `Quick test_frame_eof_in_prefix;
          Alcotest.test_case "truncated payload" `Quick
            test_frame_truncated_payload;
          Alcotest.test_case "oversized prefix" `Quick
            test_frame_oversized_prefix;
          Alcotest.test_case "oversized write" `Quick test_frame_write_oversized;
        ] );
      ( "addr",
        [ Alcotest.test_case "parsing and roundtrip" `Quick test_addr_parse ] );
      ( "codec",
        [
          Alcotest.test_case "options roundtrip" `Quick test_options_roundtrip;
          Alcotest.test_case "sat options skew" `Quick test_options_sat_skew;
          Alcotest.test_case "strategy/portfolio skew" `Quick
            test_options_strategy_skew;
          Alcotest.test_case "pong health skew" `Quick test_pong_health_skew;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
          Alcotest.test_case "trace envelope" `Quick test_trace_envelope;
          Alcotest.test_case "prometheus rendering" `Quick
            test_prometheus_render;
          Alcotest.test_case "hostile payloads" `Quick
            test_request_decode_errors;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "concurrent" `Quick test_lru_concurrent;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and stats" `Quick test_ping_and_stats;
          Alcotest.test_case "cold then hot" `Quick test_synth_cold_then_hot;
          Alcotest.test_case "verify" `Quick test_verify_end_to_end;
          Alcotest.test_case "live telemetry" `Quick test_live_telemetry;
          Alcotest.test_case "unknown design" `Quick test_unknown_design;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "protocol abuse" `Quick test_raw_protocol_abuse;
          Alcotest.test_case "disconnect cancels queued jobs" `Quick
            test_disconnect_cancels_queued;
          Alcotest.test_case "worker kill supervision" `Quick
            test_worker_kill_supervision;
          Alcotest.test_case "worker lost then client retry" `Quick
            test_worker_lost_then_retry;
          Alcotest.test_case "deadline at admission" `Quick
            test_deadline_admission;
          Alcotest.test_case "deadline expires queued" `Quick
            test_deadline_queued_expiry;
          Alcotest.test_case "shutdown drain" `Quick test_shutdown_drains;
        ] );
    ]
