(** Gate-level compilation of hole-free Oyster designs, for the design-size
    comparison of paper Table 2.

    The design is evaluated symbolically for one cycle and the resulting
    next-state / output / write terms are lowered to 2-input gates (with
    mux as a single cell).  Small memories — address width up to
    {!materialize_threshold} — become DFF arrays with mux read ports and
    decoded write ports; larger ones stay black boxes whose port logic is
    still counted.

    Two modes stand in for the paper's "before/after Yosys" comparison:
    raw folds constants but shares nothing; optimized adds structural
    hashing (CSE), algebraic shortcuts, and dead-gate elimination from the
    design's roots (outputs, register next-states, memory ports). *)

type counts = {
  ands : int;
  ors : int;
  xors : int;
  nots : int;
  muxes : int;
  dffs : int;  (** register bits + materialized memory bits *)
  total_gates : int;  (** combinational cells: and + or + xor + not + mux *)
}

val materialize_threshold : int
(** Memories with address width at most this become DFF arrays (6). *)

exception Netlist_error of string

val of_design : ?optimize:bool -> Oyster.Ast.design -> counts
(** Raises {!Netlist_error} if the design still has holes. *)
