(* Gate-level compilation of hole-free Oyster designs, for the design-size
   comparison of paper Table 2.

   The design is first evaluated symbolically for one cycle; the resulting
   next-state / output / write terms are lowered to a gate netlist through
   the shared {!Circuit} constructors.  Small memories (register files, FSM
   tables: address width <= [materialize_threshold]) become DFF arrays with
   mux read ports and decoded write ports; large memories (i_mem, d_mem)
   stay black boxes whose port logic is still counted.

   Two modes stand in for the paper's "before/after Yosys" comparison:

   - raw: constants fold (any synthesis front-end does that much), but no
     structural sharing — every gate the datapath describes is emitted, and
     unused logic remains;
   - optimized: structural hashing (CSE), algebraic shortcuts (x&x, x^x,
     ite with equal branches, double negation, ...), and dead-gate
     elimination from the design's roots. *)

type counts = {
  ands : int;
  ors : int;
  xors : int;
  nots : int;
  muxes : int;
  dffs : int;
  total_gates : int;  (* combinational cells: and + or + xor + not + mux *)
}

let materialize_threshold = 6

type node =
  | Nconst of bool
  | Nleaf  (* input, DFF output, or black-box memory read port *)
  | Nand of int * int
  | Nor of int * int
  | Nxor of int * int
  | Nnot of int
  | Nmux of int * int * int

type builder = {
  optimize : bool;
  mutable nodes : node array;
  mutable n : int;
  cache : (node, int) Hashtbl.t;
}

let new_builder optimize =
  let b = { optimize; nodes = Array.make 1024 Nleaf; n = 0; cache = Hashtbl.create 4096 } in
  b

let alloc b node =
  if b.n = Array.length b.nodes then begin
    let a = Array.make (2 * b.n) Nleaf in
    Array.blit b.nodes 0 a 0 b.n;
    b.nodes <- a
  end;
  b.nodes.(b.n) <- node;
  b.n <- b.n + 1;
  b.n - 1

let mk b node =
  if b.optimize then begin
    match Hashtbl.find_opt b.cache node with
    | Some id -> id
    | None ->
        let id = alloc b node in
        Hashtbl.add b.cache node id;
        id
  end
  else alloc b node

(* The two constants get fixed slots. *)
let builder_create optimize =
  let b = new_builder optimize in
  let t = alloc b (Nconst true) in
  let f = alloc b (Nconst false) in
  assert (t = 0 && f = 1);
  b

let is_true id = id = 0
let is_false id = id = 1

let gates_module b =
  let module G = struct
    type lit = int

    let tru = 0
    let fls = 1

    let neg l =
      if is_true l then fls
      else if is_false l then tru
      else if b.optimize then
        match b.nodes.(l) with Nnot x -> x | _ -> mk b (Nnot l)
      else mk b (Nnot l)

    let mk_and a y =
      if is_false a || is_false y then fls
      else if is_true a then y
      else if is_true y then a
      else if b.optimize && a = y then a
      else
        let a, y = if a < y then (a, y) else (y, a) in
        mk b (Nand (a, y))

    let mk_or a y =
      if is_true a || is_true y then tru
      else if is_false a then y
      else if is_false y then a
      else if b.optimize && a = y then a
      else
        let a, y = if a < y then (a, y) else (y, a) in
        mk b (Nor (a, y))

    let mk_xor a y =
      if is_false a then y
      else if is_false y then a
      else if is_true a then neg y
      else if is_true y then neg a
      else if b.optimize && a = y then fls
      else
        let a, y = if a < y then (a, y) else (y, a) in
        mk b (Nxor (a, y))

    let mk_ite c a y =
      if is_true c then a
      else if is_false c then y
      else if a = y then a
      else if is_true a && is_false y then c
      else if is_false a && is_true y then neg c
      else mk b (Nmux (c, a, y))
  end in
  (module G : Circuit.GATES with type lit = int)

exception Netlist_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Netlist_error s)) fmt

let of_design ?(optimize = false) (design : Oyster.Ast.design) : counts =
  if Oyster.Ast.holes design <> [] then
    fail "design %s still has holes" design.Oyster.Ast.name;
  let trace = Oyster.Symbolic.eval design ~cycles:1 in
  let b = builder_create optimize in
  let module G = (val gates_module b) in
  let module W = Circuit.Words (G) in
  (* materialized memory cells: mem name -> cell array (2^aw arrays of dw) *)
  let materialized : (string, int array array) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (name, aw, dw) ->
      if aw <= materialize_threshold then
        Hashtbl.replace materialized name
          (Array.init (1 lsl aw) (fun _ -> Array.init dw (fun _ -> alloc b Nleaf))))
    (Oyster.Ast.memories design);
  let mem_oyster_name (m : Term.mem) =
    (* strip the session prefix: <p>mem!<name> *)
    match String.rindex_opt m.Term.mem_name '!' with
    | Some i ->
        String.sub m.Term.mem_name (i + 1) (String.length m.Term.mem_name - i - 1)
    | None -> m.Term.mem_name
  in
  let tctx =
    W.make_tctx
      ~var_bits:(fun _name w -> Array.init w (fun _ -> alloc b Nleaf))
      ~read_bits:(fun m abits ->
        match Hashtbl.find_opt materialized (mem_oyster_name m) with
        | None ->
            (* black-box read port: data bits are fresh leaves *)
            Array.init m.Term.data_width (fun _ -> alloc b Nleaf)
        | Some cells ->
            (* mux tree over the address bits *)
            let dw = m.Term.data_width in
            let rec select lo level =
              if level < 0 then cells.(lo)
              else
                let lower = select lo (level - 1) in
                let upper = select (lo + (1 lsl level)) (level - 1) in
                Array.init dw (fun i -> G.mk_ite abits.(level) upper.(i) lower.(i))
            in
            select 0 (m.Term.addr_width - 1))
  in
  let compile t = W.term_bits tctx t in
  let roots = ref [] in
  let add_roots bits = roots := Array.to_list bits @ !roots in
  (* outputs *)
  List.iter
    (fun (n, _) -> add_roots (compile (Oyster.Symbolic.wire_at trace ~cycle:1 n)))
    (Oyster.Ast.outputs design);
  (* register DFFs: next-state cones are roots *)
  let dffs = ref 0 in
  List.iter
    (fun (n, w) ->
      dffs := !dffs + w;
      add_roots (compile (Oyster.Symbolic.reg_at trace ~state:1 n)))
    (Oyster.Ast.registers design);
  (* memory write ports *)
  List.iter
    (fun (name, aw, dw) ->
      let writes = Oyster.Symbolic.writes_at trace ~state:1 name in
      let compiled =
        List.map
          (fun (ev : Oyster.Symbolic.write_event) ->
            ( compile ev.Oyster.Symbolic.w_addr,
              compile ev.Oyster.Symbolic.w_data,
              (compile ev.Oyster.Symbolic.w_enable).(0) ))
          writes
      in
      match Hashtbl.find_opt materialized name with
      | None ->
          (* black box: the port logic itself is part of the design *)
          List.iter
            (fun (a, d, e) ->
              add_roots a;
              add_roots d;
              add_roots [| e |])
            compiled
      | Some cells ->
          dffs := !dffs + ((1 lsl aw) * dw);
          (* next-state per cell: chronologically later writes win *)
          Array.iteri
            (fun i cell ->
              let next =
                List.fold_left
                  (fun acc (a, d, e) ->
                    let addr_match =
                      W.mk_eq_bits a
                        (W.const_bits (Bitvec.of_int ~width:aw i))
                    in
                    let sel = G.mk_and e addr_match in
                    Array.init dw (fun k -> G.mk_ite sel d.(k) acc.(k)))
                  cell compiled
              in
              add_roots next)
            cells)
    (Oyster.Ast.memories design);
  (* count: in optimized mode only gates reachable from the roots *)
  let live = Array.make b.n (not optimize) in
  if optimize then begin
    let rec visit id =
      if not live.(id) then begin
        live.(id) <- true;
        match b.nodes.(id) with
        | Nconst _ | Nleaf -> ()
        | Nnot x -> visit x
        | Nand (x, y) | Nor (x, y) | Nxor (x, y) ->
            visit x;
            visit y
        | Nmux (c, x, y) ->
            visit c;
            visit x;
            visit y
      end
    in
    List.iter visit !roots
  end;
  let ands = ref 0 and ors = ref 0 and xors = ref 0 and nots = ref 0 and muxes = ref 0 in
  for i = 0 to b.n - 1 do
    if live.(i) then
      match b.nodes.(i) with
      | Nand _ -> incr ands
      | Nor _ -> incr ors
      | Nxor _ -> incr xors
      | Nnot _ -> incr nots
      | Nmux _ -> incr muxes
      | Nconst _ | Nleaf -> ()
  done;
  {
    ands = !ands;
    ors = !ors;
    xors = !xors;
    nots = !nots;
    muxes = !muxes;
    dffs = !dffs;
    total_gates = !ands + !ors + !xors + !nots + !muxes;
  }
