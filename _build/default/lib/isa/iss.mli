(** Hand-written instruction-set simulator for RV32I + Zbkb + Zbkc (plus,
    optionally, the bespoke CMOV instruction of paper §4.2).

    This is the independent reference oracle: it shares no semantics code
    with the ILA specification ({!Rv_spec}) or the datapath sketches, so
    their agreement — checked by property tests and core co-simulation —
    is meaningful evidence of correctness.

    [x0] is hardwired to zero; i_mem and d_mem are separate word-addressed
    memories, matching the cores; a jump to its own address raises {!Halt}
    (the conventional "done" idiom of the testbenches). *)

exception Halt

exception Illegal_instruction of Bitvec.t

type t = {
  variant : Rv32.isa_variant;
  cmov : bool;
  mutable pc : Bitvec.t;
  regs : Bitvec.t array;  (** 32 registers; read x0 through {!get_reg} *)
  imem : (int, Bitvec.t) Hashtbl.t;  (** word index -> instruction *)
  dmem : (int, Bitvec.t) Hashtbl.t;  (** word index -> data word *)
  mutable cycles : int;
}

val create : ?variant:Rv32.isa_variant -> ?cmov:bool -> unit -> t
(** Defaults: [RV32I_Zbkc], no CMOV. *)

val load_program : t -> Bitvec.t list -> unit
(** Places instruction words from address 0. *)

val get_reg : t -> int -> Bitvec.t
val set_reg : t -> int -> Bitvec.t -> unit
val dmem_read : t -> int -> Bitvec.t
val dmem_write : t -> int -> Bitvec.t -> unit

val is_cmov : Bitvec.t -> bool
(** Recognizes the CMOV encoding (OP, funct3 5, funct7 0x07). *)

val step : t -> unit
(** Executes one instruction.  Raises {!Halt} or
    {!Illegal_instruction}. *)

val run : ?max_cycles:int -> t -> [ `Halted | `Illegal of Bitvec.t | `Max_cycles ]

(** {1 Zbkb reference semantics} (exposed for tests) *)

val rev8 : Bitvec.t -> Bitvec.t
val brev8 : Bitvec.t -> Bitvec.t
val zip : Bitvec.t -> Bitvec.t
val unzip : Bitvec.t -> Bitvec.t
val pack : Bitvec.t -> Bitvec.t -> Bitvec.t
val packh : Bitvec.t -> Bitvec.t -> Bitvec.t
