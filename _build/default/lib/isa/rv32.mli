(** RV32I base ISA (37 instructions: no FENCE/ECALL/EBREAK, matching the
    paper's §4.1 configuration) plus the Zbkb (12) and Zbkc (2)
    cryptography extensions: instruction descriptors, field encodings, and
    an assembler.

    Memory model used across the whole reproduction (specification, ISS,
    and datapaths): instruction and data memories are word-addressed
    (30-bit word index, 32-bit words); sub-word accesses select bytes or
    halfwords within the addressed word by the low address bits, so
    accesses never cross a word boundary.  See DESIGN.md. *)

type format = R | I | S | B | U | J

type ext = Base | Zbkb | Zbkc | M

type descriptor = {
  mnemonic : string;
  format : format;
  opcode : int;  (** 7 bits *)
  funct3 : int option;
  funct7 : int option;  (** also for immediate shifts/rotates *)
  rs2f : int option;
      (** fixed rs2 slot for the unary permutations (rev8/brev8/zip/unzip),
          which share funct7 and are distinguished by bits 24:20 *)
  ext : ext;
}

(** {1 Opcode constants} *)

val op_lui : int
val op_auipc : int
val op_jal : int
val op_jalr : int
val op_branch : int
val op_load : int
val op_store : int
val op_imm : int
val op_reg : int

val base : descriptor list
val zbkb : descriptor list
val zbkc : descriptor list

val m_ext : descriptor list
(** The M standard extension (multiply/divide) — beyond the paper's
    variants, demonstrating ISA iteration over heavier functional units. *)

val fixed_imm12 : string -> int option
(** The fixed 12-bit immediates encoding the unary Zbkb permutations. *)

type isa_variant = RV32I | RV32I_Zbkb | RV32I_Zbkc | RV32I_M

val instructions : isa_variant -> descriptor list
val variant_name : isa_variant -> string

val find : isa_variant -> string -> descriptor
(** Raises [Invalid_argument] on unknown mnemonics. *)

(** {1 Assembly} *)

val encode_fields : descriptor -> rd:int -> rs1:int -> rs2:int -> imm:int -> int

val encode :
  isa_variant -> string -> ?rd:int -> ?rs1:int -> ?rs2:int -> ?imm:int -> unit ->
  Bitvec.t
(** Encodes one instruction; immediates are taken in the natural signed
    range of the format (branch/jump offsets in bytes). *)

(** {1 Field extraction} *)

val get_opcode : Bitvec.t -> int
val get_rd : Bitvec.t -> int
val get_funct3 : Bitvec.t -> int
val get_rs1 : Bitvec.t -> int
val get_rs2 : Bitvec.t -> int
val get_funct7 : Bitvec.t -> int

val imm_i : Bitvec.t -> Bitvec.t
val imm_s : Bitvec.t -> Bitvec.t
val imm_b : Bitvec.t -> Bitvec.t
val imm_u : Bitvec.t -> Bitvec.t
val imm_j : Bitvec.t -> Bitvec.t
(** Sign-extended 32-bit immediates per format. *)

val decode : isa_variant -> Bitvec.t -> descriptor option
(** The unique descriptor matching an instruction word, if any. *)
