(** ILA specifications for the RISC-V case studies (paper §4.1/§4.2),
    written against the {!Ila} DSL the way the archived ILA specs are
    written against the ILA C++ library.

    Architectural state: [pc] (32 bits), [GPR] (a 32 x 32-bit memory state;
    x0 is preserved because every update stores the old value back when
    rd = 0), and a single architectural memory [mem] whose instruction
    fetches use the ["fetch"] load port — letting the abstraction function
    split it over i_mem/d_mem exactly as in paper §3.2. *)

type flavour = Standard of Rv32.isa_variant | Cmov_isa

val build : flavour -> Ila.Spec.t

val spec : Rv32.isa_variant -> Ila.Spec.t
(** RV32I / +Zbkb / +Zbkc. *)

val cmov_spec : unit -> Ila.Spec.t
(** The bespoke constant-time ISA (paper §4.2): RV32I+Zbkb without
    conditional branches, sub-word memory access, or AUIPC, plus the custom
    CMOV instruction (rd := rs2 <> 0 ? rs1 : rd). *)
