lib/isa/rv32.ml: Bitvec List Option Printf
