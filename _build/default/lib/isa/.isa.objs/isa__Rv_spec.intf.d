lib/isa/rv_spec.mli: Ila Rv32
