lib/isa/iss.mli: Bitvec Hashtbl Rv32
