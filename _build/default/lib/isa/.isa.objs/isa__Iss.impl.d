lib/isa/iss.ml: Array Bitvec Hashtbl List Rv32
