lib/isa/rv_spec.ml: Bitvec Expr Ila List Rv32 Spec String
