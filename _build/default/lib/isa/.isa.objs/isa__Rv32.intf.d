lib/isa/rv32.mli: Bitvec
