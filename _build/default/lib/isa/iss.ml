(* Hand-written instruction-set simulator for RV32I + Zbkb + Zbkc.

   This is the independent reference oracle: it shares no semantics code
   with the ILA specification (lib/isa/rv_spec.ml) or the datapaths, so
   agreement between them is meaningful evidence of correctness.

   Memory model: word-addressed (see Rv32); i_mem and d_mem are separate,
   matching the cores.  x0 is hardwired to zero. *)

exception Halt  (* raised on a jump-to-self (the conventional "done" loop) *)

type t = {
  variant : Rv32.isa_variant;
  cmov : bool;  (* accept the bespoke CMOV instruction (paper §4.2) *)
  mutable pc : Bitvec.t;  (* 32 bits *)
  regs : Bitvec.t array;  (* 32 registers, 32 bits *)
  imem : (int, Bitvec.t) Hashtbl.t;  (* word index -> instruction *)
  dmem : (int, Bitvec.t) Hashtbl.t;  (* word index -> data word *)
  mutable cycles : int;
}

let create ?(variant = Rv32.RV32I_Zbkc) ?(cmov = false) () =
  {
    variant;
    cmov;
    pc = Bitvec.zero 32;
    regs = Array.make 32 (Bitvec.zero 32);
    imem = Hashtbl.create 256;
    dmem = Hashtbl.create 256;
    cycles = 0;
  }

let load_program t words =
  List.iteri (fun i w -> Hashtbl.replace t.imem i w) words

let get_reg t i = if i = 0 then Bitvec.zero 32 else t.regs.(i)
let set_reg t i v = if i <> 0 then t.regs.(i) <- v

let read_word tbl idx =
  match Hashtbl.find_opt tbl idx with Some v -> v | None -> Bitvec.zero 32

let dmem_read t word_idx = read_word t.dmem word_idx
let dmem_write t word_idx v = Hashtbl.replace t.dmem word_idx v

let b32 n = Bitvec.of_int ~width:32 n

(* {1 Bit-manipulation semantics (Zbkb)} *)

let rev8 x =
  (* swap byte order *)
  let byte i = Bitvec.extract ~high:((8 * i) + 7) ~low:(8 * i) x in
  Bitvec.concat (byte 0) (Bitvec.concat (byte 1) (Bitvec.concat (byte 2) (byte 3)))

let brev8 x =
  (* reverse the bits inside each byte *)
  Bitvec.of_bits
    (Array.init 32 (fun i ->
         let byte = i / 8 and bit = i mod 8 in
         Bitvec.bit x ((byte * 8) + (7 - bit))))

let zip x =
  (* out[2i] = x[i], out[2i+1] = x[16+i] *)
  Bitvec.of_bits
    (Array.init 32 (fun i ->
         if i mod 2 = 0 then Bitvec.bit x (i / 2) else Bitvec.bit x (16 + (i / 2))))

let unzip x =
  (* out[i] = x[2i], out[16+i] = x[2i+1] *)
  Bitvec.of_bits
    (Array.init 32 (fun i ->
         if i < 16 then Bitvec.bit x (2 * i) else Bitvec.bit x ((2 * (i - 16)) + 1)))

let pack a b =
  (* rs2 low half over rs1 low half *)
  Bitvec.concat (Bitvec.extract ~high:15 ~low:0 b) (Bitvec.extract ~high:15 ~low:0 a)

let packh a b =
  Bitvec.zext
    (Bitvec.concat (Bitvec.extract ~high:7 ~low:0 b) (Bitvec.extract ~high:7 ~low:0 a))
    32

(* {1 Sub-word access helpers (word-addressed memory model)} *)

let load_sub ~word ~offset ~size ~signed =
  (* size: 0 byte, 1 half, 2 word; offset: byte offset 0..3 *)
  match size with
  | 0 ->
      let byte =
        Bitvec.extract ~high:((8 * offset) + 7) ~low:(8 * offset) word
      in
      if signed then Bitvec.sext byte 32 else Bitvec.zext byte 32
  | 1 ->
      let h = if offset land 2 = 0 then 0 else 1 in
      let half = Bitvec.extract ~high:((16 * h) + 15) ~low:(16 * h) word in
      if signed then Bitvec.sext half 32 else Bitvec.zext half 32
  | _ -> word

let store_sub ~old ~data ~offset ~size =
  match size with
  | 0 ->
      let byte = Bitvec.extract ~high:7 ~low:0 data in
      Bitvec.of_bits
        (Array.init 32 (fun i ->
             if i / 8 = offset then Bitvec.bit byte (i mod 8) else Bitvec.bit old i))
  | 1 ->
      let h = if offset land 2 = 0 then 0 else 1 in
      let half = Bitvec.extract ~high:15 ~low:0 data in
      Bitvec.of_bits
        (Array.init 32 (fun i ->
             if i / 16 = h then Bitvec.bit half (i mod 16) else Bitvec.bit old i))
  | _ -> data

(* {1 Stepping} *)

exception Illegal_instruction of Bitvec.t

let shamt v = Bitvec.zext (Bitvec.extract ~high:4 ~low:0 v) 32

(* The CMOV encoding: R-type, opcode OP, funct3 5, funct7 0x07. *)
let is_cmov w =
  Rv32.get_opcode w = Rv32.op_reg && Rv32.get_funct3 w = 5 && Rv32.get_funct7 w = 0x07

let step t =
  let pc_word = Bitvec.to_int_exn (Bitvec.extract ~high:31 ~low:2 t.pc) in
  let w = read_word t.imem pc_word in
  if t.cmov && is_cmov w then begin
    (* cmov rd, rs1, rs2: rd := rs2 <> 0 ? rs1 : rd *)
    let rd = Rv32.get_rd w in
    let rs1 = get_reg t (Rv32.get_rs1 w) in
    let rs2 = get_reg t (Rv32.get_rs2 w) in
    if not (Bitvec.is_zero rs2) then set_reg t rd rs1;
    t.pc <- Bitvec.add t.pc (b32 4);
    t.cycles <- t.cycles + 1
  end
  else
  let desc =
    match Rv32.decode t.variant w with
    | Some d -> d
    | None -> raise (Illegal_instruction w)
  in
  let rd = Rv32.get_rd w in
  let rs1 = get_reg t (Rv32.get_rs1 w) in
  let rs2 = get_reg t (Rv32.get_rs2 w) in
  let pc4 = Bitvec.add t.pc (b32 4) in
  let next_pc = ref pc4 in
  let wb v = set_reg t rd v in
  let of_bool c = if c then b32 1 else b32 0 in
  let eff imm = Bitvec.add rs1 imm in
  let word_idx a = Bitvec.to_int_exn (Bitvec.extract ~high:31 ~low:2 a) in
  let offset a = Bitvec.to_int_exn (Bitvec.extract ~high:1 ~low:0 a) in
  (match desc.Rv32.mnemonic with
  | "lui" -> wb (Rv32.imm_u w)
  | "auipc" -> wb (Bitvec.add t.pc (Rv32.imm_u w))
  | "jal" ->
      let target = Bitvec.add t.pc (Rv32.imm_j w) in
      if Bitvec.equal target t.pc then raise Halt;
      wb pc4;
      next_pc := target
  | "jalr" ->
      let target =
        Bitvec.logand (Bitvec.add rs1 (Rv32.imm_i w))
          (Bitvec.lognot (b32 1))
      in
      if Bitvec.equal target t.pc then raise Halt;
      wb pc4;
      next_pc := target
  | "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" ->
      let taken =
        match desc.Rv32.mnemonic with
        | "beq" -> Bitvec.equal rs1 rs2
        | "bne" -> not (Bitvec.equal rs1 rs2)
        | "blt" -> Bitvec.slt rs1 rs2
        | "bge" -> not (Bitvec.slt rs1 rs2)
        | "bltu" -> Bitvec.ult rs1 rs2
        | _ -> not (Bitvec.ult rs1 rs2)
      in
      if taken then next_pc := Bitvec.add t.pc (Rv32.imm_b w)
  | "lb" | "lh" | "lw" | "lbu" | "lhu" ->
      let a = eff (Rv32.imm_i w) in
      let word = dmem_read t (word_idx a) in
      let size, signed =
        match desc.Rv32.mnemonic with
        | "lb" -> (0, true)
        | "lh" -> (1, true)
        | "lw" -> (2, true)
        | "lbu" -> (0, false)
        | _ -> (1, false)
      in
      wb (load_sub ~word ~offset:(offset a) ~size ~signed)
  | "sb" | "sh" | "sw" ->
      let a = eff (Rv32.imm_s w) in
      let size =
        match desc.Rv32.mnemonic with "sb" -> 0 | "sh" -> 1 | _ -> 2
      in
      let old = dmem_read t (word_idx a) in
      dmem_write t (word_idx a)
        (store_sub ~old ~data:rs2 ~offset:(offset a) ~size)
  | "addi" -> wb (Bitvec.add rs1 (Rv32.imm_i w))
  | "slti" -> wb (of_bool (Bitvec.slt rs1 (Rv32.imm_i w)))
  | "sltiu" -> wb (of_bool (Bitvec.ult rs1 (Rv32.imm_i w)))
  | "xori" -> wb (Bitvec.logxor rs1 (Rv32.imm_i w))
  | "ori" -> wb (Bitvec.logor rs1 (Rv32.imm_i w))
  | "andi" -> wb (Bitvec.logand rs1 (Rv32.imm_i w))
  | "slli" -> wb (Bitvec.shl rs1 (shamt (Rv32.imm_i w)))
  | "srli" -> wb (Bitvec.lshr rs1 (shamt (Rv32.imm_i w)))
  | "srai" -> wb (Bitvec.ashr rs1 (shamt (Rv32.imm_i w)))
  | "add" -> wb (Bitvec.add rs1 rs2)
  | "sub" -> wb (Bitvec.sub rs1 rs2)
  | "sll" -> wb (Bitvec.shl rs1 (shamt rs2))
  | "slt" -> wb (of_bool (Bitvec.slt rs1 rs2))
  | "sltu" -> wb (of_bool (Bitvec.ult rs1 rs2))
  | "xor" -> wb (Bitvec.logxor rs1 rs2)
  | "srl" -> wb (Bitvec.lshr rs1 (shamt rs2))
  | "sra" -> wb (Bitvec.ashr rs1 (shamt rs2))
  | "or" -> wb (Bitvec.logor rs1 rs2)
  | "and" -> wb (Bitvec.logand rs1 rs2)
  (* Zbkb *)
  | "rol" -> wb (Bitvec.rol rs1 (shamt rs2))
  | "ror" -> wb (Bitvec.ror rs1 (shamt rs2))
  | "rori" -> wb (Bitvec.ror rs1 (shamt (Rv32.imm_i w)))
  | "andn" -> wb (Bitvec.logand rs1 (Bitvec.lognot rs2))
  | "orn" -> wb (Bitvec.logor rs1 (Bitvec.lognot rs2))
  | "xnor" -> wb (Bitvec.lognot (Bitvec.logxor rs1 rs2))
  | "pack" -> wb (pack rs1 rs2)
  | "packh" -> wb (packh rs1 rs2)
  | "rev8" -> wb (rev8 rs1)
  | "brev8" -> wb (brev8 rs1)
  | "zip" -> wb (zip rs1)
  | "unzip" -> wb (unzip rs1)
  (* Zbkc *)
  | "clmul" -> wb (Bitvec.clmul rs1 rs2)
  | "clmulh" -> wb (Bitvec.clmulh rs1 rs2)
  (* M *)
  | "mul" -> wb (Bitvec.mul rs1 rs2)
  | "mulh" ->
      wb (Bitvec.extract ~high:63 ~low:32
            (Bitvec.mul (Bitvec.sext rs1 64) (Bitvec.sext rs2 64)))
  | "mulhsu" ->
      wb (Bitvec.extract ~high:63 ~low:32
            (Bitvec.mul (Bitvec.sext rs1 64) (Bitvec.zext rs2 64)))
  | "mulhu" ->
      wb (Bitvec.extract ~high:63 ~low:32
            (Bitvec.mul (Bitvec.zext rs1 64) (Bitvec.zext rs2 64)))
  | "div" -> wb (Bitvec.sdiv rs1 rs2)
  | "divu" -> wb (Bitvec.udiv rs1 rs2)
  | "rem" -> wb (Bitvec.srem rs1 rs2)
  | "remu" -> wb (Bitvec.urem rs1 rs2)
  | m -> failwith ("Iss.step: unhandled mnemonic " ^ m));
  t.pc <- !next_pc;
  t.cycles <- t.cycles + 1

let run ?(max_cycles = 1_000_000) t =
  try
    while t.cycles < max_cycles do
      step t
    done;
    `Max_cycles
  with
  | Halt -> `Halted
  | Illegal_instruction w -> `Illegal w
