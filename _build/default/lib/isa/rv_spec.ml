(* ILA specification for RV32I + Zbkb + Zbkc (paper §4.1), written against
   the ILA DSL the way the IMDb-archive specs are written against the ILA
   C++ library.

   Architectural state:
     pc   32-bit program counter
     GPR  32 x 32-bit registers (x0 is preserved by construction: every
          update stores the old value back when rd = 0)
     mem  a single architectural memory (word-addressed); instruction
          fetches use the "fetch" load port so the abstraction function can
          split it over i_mem / d_mem as in the paper (§3.2)

   Every instruction updates pc.  Semantics are written independently of
   the ISS (lib/isa/iss.ml); their agreement is checked by property tests. *)

open Ila

let c w n = Expr.of_int ~width:w n

(* Build a 32-bit value from a per-bit expression function (bit 0 = LSB). *)
let of_bit_fn f =
  let rec go i acc = if i >= 32 then acc else go (i + 1) (Expr.concat (f i) acc) in
  go 1 (f 0)

let bit x i = Expr.extract ~high:i ~low:i x

type fields = {
  instr : Expr.t;
  opcode : Expr.t;
  funct3 : Expr.t;
  funct7 : Expr.t;
  rs2slot : Expr.t;
  rd : Expr.t;  (* 5 bits *)
  rs1v : Expr.t;
  rs2v : Expr.t;
  imm_i : Expr.t;
  imm_s : Expr.t;
  imm_b : Expr.t;
  imm_u : Expr.t;
  imm_j : Expr.t;
  pc : Expr.t;
  pc4 : Expr.t;
}

let mk_fields pc =
  let open Expr in
  let instr = load ~port:"fetch" "mem" (extract ~high:31 ~low:2 pc) in
  let gpr a = load "GPR" a in
  {
    instr;
    opcode = extract ~high:6 ~low:0 instr;
    funct3 = extract ~high:14 ~low:12 instr;
    funct7 = extract ~high:31 ~low:25 instr;
    rs2slot = extract ~high:24 ~low:20 instr;
    rd = extract ~high:11 ~low:7 instr;
    rs1v = gpr (extract ~high:19 ~low:15 instr);
    rs2v = gpr (extract ~high:24 ~low:20 instr);
    imm_i = sext (extract ~high:31 ~low:20 instr) 32;
    imm_s =
      sext (concat (extract ~high:31 ~low:25 instr) (extract ~high:11 ~low:7 instr)) 32;
    imm_b =
      sext
        (concat (bit instr 31)
           (concat (bit instr 7)
              (concat (extract ~high:30 ~low:25 instr)
                 (concat (extract ~high:11 ~low:8 instr) (const (Bitvec.zero 1))))))
        32;
    imm_u = concat (extract ~high:31 ~low:12 instr) (const (Bitvec.zero 12));
    imm_j =
      sext
        (concat (bit instr 31)
           (concat (extract ~high:19 ~low:12 instr)
              (concat (bit instr 20)
                 (concat (extract ~high:30 ~low:21 instr) (const (Bitvec.zero 1))))))
        32;
    pc;
    pc4 = Expr.(pc + c 32 4);
  }

(* {1 Sub-word access semantics (shared helpers, Expr level)} *)

let byte_of word off =
  (* off: 2-bit byte offset *)
  let sel k = Expr.extract ~high:((8 * k) + 7) ~low:(8 * k) word in
  let eqo n = Expr.Binop (Expr.Eq, off, c 2 n) in
  Expr.ite (eqo 0) (sel 0)
    (Expr.ite (eqo 1) (sel 1) (Expr.ite (eqo 2) (sel 2) (sel 3)))

let half_of word off =
  Expr.ite
    (Expr.Binop (Expr.Eq, bit off 1, c 1 0))
    (Expr.extract ~high:15 ~low:0 word)
    (Expr.extract ~high:31 ~low:16 word)

let insert_byte word off data =
  let b = Expr.extract ~high:7 ~low:0 data in
  let at k =
    (* replace byte k of word *)
    match k with
    | 0 -> Expr.concat (Expr.extract ~high:31 ~low:8 word) b
    | 1 ->
        Expr.concat
          (Expr.extract ~high:31 ~low:16 word)
          (Expr.concat b (Expr.extract ~high:7 ~low:0 word))
    | 2 ->
        Expr.concat
          (Expr.extract ~high:31 ~low:24 word)
          (Expr.concat b (Expr.extract ~high:15 ~low:0 word))
    | _ -> Expr.concat b (Expr.extract ~high:23 ~low:0 word)
  in
  let eqo n = Expr.Binop (Expr.Eq, off, c 2 n) in
  Expr.ite (eqo 0) (at 0)
    (Expr.ite (eqo 1) (at 1) (Expr.ite (eqo 2) (at 2) (at 3)))

let insert_half word off data =
  let h = Expr.extract ~high:15 ~low:0 data in
  Expr.ite
    (Expr.Binop (Expr.Eq, bit off 1, c 1 0))
    (Expr.concat (Expr.extract ~high:31 ~low:16 word) h)
    (Expr.concat h (Expr.extract ~high:15 ~low:0 word))

(* {1 Zbkb semantics} *)

let zbkb_rev8 x = of_bit_fn (fun i -> bit x (((3 - (i / 8)) * 8) + (i mod 8)))
let zbkb_brev8 x = of_bit_fn (fun i -> bit x (((i / 8) * 8) + (7 - (i mod 8))))

let zbkb_zip x =
  of_bit_fn (fun i -> if i mod 2 = 0 then bit x (i / 2) else bit x (16 + (i / 2)))

let zbkb_unzip x =
  of_bit_fn (fun i -> if i < 16 then bit x (2 * i) else bit x ((2 * (i - 16)) + 1))

let zbkb_pack a b =
  Expr.concat (Expr.extract ~high:15 ~low:0 b) (Expr.extract ~high:15 ~low:0 a)

let zbkb_packh a b =
  Expr.zext
    (Expr.concat (Expr.extract ~high:7 ~low:0 b) (Expr.extract ~high:7 ~low:0 a))
    32

(* {1 The specification} *)

let shamt v = Expr.zext (Expr.extract ~high:4 ~low:0 v) 32

(* For the constant-time cryptography core (paper §4.2): the bespoke ISA
   drops conditional branches and adds CMOV. *)
type flavour = Standard of Rv32.isa_variant | Cmov_isa

let build flavour =
  let name =
    match flavour with
    | Standard v -> "rv32_" ^ String.map (fun ch -> if ch = ' ' then '_' else ch) (Rv32.variant_name v)
    | Cmov_isa -> "cmov_isa"
  in
  let s = Spec.create name in
  let pc = Spec.new_bv_state s "pc" 32 in
  let _ = Spec.new_mem_state s "GPR" ~addr_width:5 ~data_width:32 in
  let _ = Spec.new_mem_state s "mem" ~addr_width:30 ~data_width:32 in
  let f = mk_fields pc in
  let open Expr in
  let decode_of (desc : Rv32.descriptor) =
    let checks =
      [ (f.opcode == c 7 desc.Rv32.opcode) ]
      @ (match desc.Rv32.funct3 with
        | Some v -> [ (f.funct3 == c 3 v) ]
        | None -> [])
      @ (match desc.Rv32.funct7 with
        | Some v -> [ (f.funct7 == c 7 v) ]
        | None -> [])
      @
      match desc.Rv32.rs2f with
      | Some v -> [ (f.rs2slot == c 5 v) ]
      | None -> []
    in
    match checks with
    | [] -> assert false
    | e :: rest -> List.fold_left (fun acc x -> Expr.(acc && x)) e rest
  in
  (* GPR write that preserves x0. *)
  let gpr_store rd value = (rd, ite (rd == c 5 0) (load "GPR" rd) value) in
  let add_instr (desc : Rv32.descriptor) ?(extra_decode = []) ~updates () =
    let i = Spec.new_instr s (String.uppercase_ascii desc.Rv32.mnemonic) in
    Spec.set_decode i
      (List.fold_left (fun acc x -> Expr.(acc && x)) (decode_of desc) extra_decode);
    updates i
  in
  let simple_alu desc value =
    add_instr desc ~updates:(fun i ->
        Spec.set_mem_update i "GPR" [ gpr_store f.rd value ];
        Spec.set_update i "pc" f.pc4;
        ())
      ()
  in
  let eff_i = f.rs1v + f.imm_i in
  let eff_s = f.rs1v + f.imm_s in
  let has mnemonic =
    match flavour with
    | Standard _ -> true
    | Cmov_isa ->
        (* keep only what SHA-256 straight-line code needs: no conditional
           branches; loads/stores word-only; no AUIPC *)
        not
          (List.mem mnemonic
             [ "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu"; "lb"; "lh"; "lbu";
               "lhu"; "sb"; "sh"; "auipc" ])
  in
  let descriptors =
    match flavour with
    | Standard v -> Rv32.instructions v
    | Cmov_isa -> List.filter (fun (d : Rv32.descriptor) -> has d.Rv32.mnemonic)
                    (Rv32.instructions Rv32.RV32I_Zbkb)
  in
  List.iter
    (fun (desc : Rv32.descriptor) ->
      match desc.Rv32.mnemonic with
      | "lui" -> simple_alu desc f.imm_u
      | "auipc" -> simple_alu desc (f.pc + f.imm_u)
      | "jal" ->
          add_instr desc ~updates:(fun i ->
              Spec.set_mem_update i "GPR" [ gpr_store f.rd f.pc4 ];
              Spec.set_update i "pc" (f.pc + f.imm_j))
            ()
      | "jalr" ->
          add_instr desc ~updates:(fun i ->
              Spec.set_mem_update i "GPR" [ gpr_store f.rd f.pc4 ];
              Spec.set_update i "pc"
                (eff_i land lnot (c 32 1)))
            ()
      | "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" ->
          let cond =
            match desc.Rv32.mnemonic with
            | "beq" -> f.rs1v == f.rs2v
            | "bne" -> f.rs1v != f.rs2v
            | "blt" -> f.rs1v <+ f.rs2v
            | "bge" -> Expr.lnot (f.rs1v <+ f.rs2v)
            | "bltu" -> f.rs1v < f.rs2v
            | _ -> Expr.lnot (f.rs1v < f.rs2v)
          in
          add_instr desc ~updates:(fun i ->
              Spec.set_update i "pc" (ite cond (f.pc + f.imm_b) f.pc4))
            ()
      | "lb" | "lh" | "lw" | "lbu" | "lhu" ->
          let word = load "mem" (extract ~high:31 ~low:2 eff_i) in
          let off = extract ~high:1 ~low:0 eff_i in
          let value =
            match desc.Rv32.mnemonic with
            | "lb" -> sext (byte_of word off) 32
            | "lbu" -> zext (byte_of word off) 32
            | "lh" -> sext (half_of word off) 32
            | "lhu" -> zext (half_of word off) 32
            | _ -> word
          in
          simple_alu desc value
      | "sb" | "sh" | "sw" ->
          let widx = extract ~high:31 ~low:2 eff_s in
          let old = load "mem" widx in
          let off = extract ~high:1 ~low:0 eff_s in
          let data =
            match desc.Rv32.mnemonic with
            | "sb" -> insert_byte old off f.rs2v
            | "sh" -> insert_half old off f.rs2v
            | _ -> f.rs2v
          in
          add_instr desc ~updates:(fun i ->
              Spec.set_mem_update i "mem" [ (widx, data) ];
              Spec.set_update i "pc" f.pc4)
            ()
      | "addi" -> simple_alu desc (f.rs1v + f.imm_i)
      | "slti" -> simple_alu desc (zext (ite (f.rs1v <+ f.imm_i) Expr.tru Expr.fls) 32)
      | "sltiu" -> simple_alu desc (zext (ite (f.rs1v < f.imm_i) Expr.tru Expr.fls) 32)
      | "xori" -> simple_alu desc (f.rs1v lxor f.imm_i)
      | "ori" -> simple_alu desc (f.rs1v lor f.imm_i)
      | "andi" -> simple_alu desc (f.rs1v land f.imm_i)
      | "slli" -> simple_alu desc (f.rs1v << shamt f.imm_i)
      | "srli" -> simple_alu desc (f.rs1v >> shamt f.imm_i)
      | "srai" -> simple_alu desc (f.rs1v >>+ shamt f.imm_i)
      | "add" -> simple_alu desc (f.rs1v + f.rs2v)
      | "sub" -> simple_alu desc (f.rs1v - f.rs2v)
      | "sll" -> simple_alu desc (f.rs1v << shamt f.rs2v)
      | "slt" -> simple_alu desc (zext (ite (f.rs1v <+ f.rs2v) Expr.tru Expr.fls) 32)
      | "sltu" -> simple_alu desc (zext (ite (f.rs1v < f.rs2v) Expr.tru Expr.fls) 32)
      | "xor" -> simple_alu desc (f.rs1v lxor f.rs2v)
      | "srl" -> simple_alu desc (f.rs1v >> shamt f.rs2v)
      | "sra" -> simple_alu desc (f.rs1v >>+ shamt f.rs2v)
      | "or" -> simple_alu desc (f.rs1v lor f.rs2v)
      | "and" -> simple_alu desc (f.rs1v land f.rs2v)
      | "rol" -> simple_alu desc (Expr.Binop (Expr.Rol, f.rs1v, shamt f.rs2v))
      | "ror" -> simple_alu desc (Expr.Binop (Expr.Ror, f.rs1v, shamt f.rs2v))
      | "rori" -> simple_alu desc (Expr.Binop (Expr.Ror, f.rs1v, shamt f.imm_i))
      | "andn" -> simple_alu desc (f.rs1v land lnot f.rs2v)
      | "orn" -> simple_alu desc (f.rs1v lor lnot f.rs2v)
      | "xnor" -> simple_alu desc (lnot (f.rs1v lxor f.rs2v))
      | "pack" -> simple_alu desc (zbkb_pack f.rs1v f.rs2v)
      | "packh" -> simple_alu desc (zbkb_packh f.rs1v f.rs2v)
      | "rev8" -> simple_alu desc (zbkb_rev8 f.rs1v)
      | "brev8" -> simple_alu desc (zbkb_brev8 f.rs1v)
      | "zip" -> simple_alu desc (zbkb_zip f.rs1v)
      | "unzip" -> simple_alu desc (zbkb_unzip f.rs1v)
      | "clmul" -> simple_alu desc (Expr.Binop (Expr.Clmul, f.rs1v, f.rs2v))
      | "clmulh" -> simple_alu desc (Expr.Binop (Expr.Clmulh, f.rs1v, f.rs2v))
      | "mul" -> simple_alu desc (f.rs1v * f.rs2v)
      | "mulh" ->
          simple_alu desc
            (extract ~high:63 ~low:32
               (Expr.Binop (Expr.Mul, sext f.rs1v 64, sext f.rs2v 64)))
      | "mulhsu" ->
          simple_alu desc
            (extract ~high:63 ~low:32
               (Expr.Binop (Expr.Mul, sext f.rs1v 64, zext f.rs2v 64)))
      | "mulhu" ->
          simple_alu desc
            (extract ~high:63 ~low:32
               (Expr.Binop (Expr.Mul, zext f.rs1v 64, zext f.rs2v 64)))
      | "div" -> simple_alu desc (Expr.Binop (Expr.Sdiv, f.rs1v, f.rs2v))
      | "divu" -> simple_alu desc (Expr.Binop (Expr.Udiv, f.rs1v, f.rs2v))
      | "rem" -> simple_alu desc (Expr.Binop (Expr.Srem, f.rs1v, f.rs2v))
      | "remu" -> simple_alu desc (Expr.Binop (Expr.Urem, f.rs1v, f.rs2v))
      | m -> failwith ("Rv_spec.build: unhandled mnemonic " ^ m))
    descriptors;
  (* The bespoke CMOV instruction (paper §4.2): cmov rd, rs1, rs2 writes
     rs1 to rd when rs2 is non-zero, and leaves rd unchanged otherwise.
     Encoding: R-type, opcode 0x33 (OP), funct3 5, funct7 0x07. *)
  (match flavour with
  | Cmov_isa ->
      let i = Spec.new_instr s "CMOV" in
      Spec.set_decode i
        ((f.opcode == c 7 Rv32.op_reg) && (f.funct3 == c 3 5) && (f.funct7 == c 7 0x07));
      let rdv = load "GPR" f.rd in
      Spec.set_mem_update i "GPR"
        [ gpr_store f.rd (ite (f.rs2v != c 32 0) f.rs1v rdv) ];
      Spec.set_update i "pc" f.pc4
  | Standard _ -> ());
  s

let spec variant = build (Standard variant)
let cmov_spec () = build Cmov_isa
