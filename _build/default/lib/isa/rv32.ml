(* RV32I base ISA (37 instructions: no FENCE/ECALL/EBREAK, as in the paper)
   plus the Zbkb (12) and Zbkc (2) cryptography extensions: instruction
   descriptors, field encodings, and an assembler.

   Memory model used across the whole reproduction (spec, ISS, datapaths):
   instruction and data memories are word-addressed (30-bit word index,
   32-bit words).  Sub-word accesses select bytes/halfwords inside the
   addressed word by the low address bits; a misaligned halfword selects the
   halfword at bit 1 of the address (i.e. accesses never cross a word
   boundary).  This matches simple embedded cores without misalignment
   traps and is applied identically on the specification and datapath
   sides (see DESIGN.md). *)

type format = R | I | S | B | U | J

type ext = Base | Zbkb | Zbkc | M

type descriptor = {
  mnemonic : string;
  format : format;
  opcode : int;  (* 7 bits *)
  funct3 : int option;
  funct7 : int option;  (* for R-type and immediate shifts/rotates *)
  rs2f : int option;
      (* fixed rs2 slot for unary permutations (rev8/brev8/zip/unzip),
         which share funct7 and are distinguished by bits 24:20 *)
  ext : ext;
}

let d mnemonic format opcode ?funct3 ?funct7 ?rs2f ext =
  { mnemonic; format; opcode; funct3; funct7; rs2f; ext }

(* Opcodes *)
let op_lui = 0x37
let op_auipc = 0x17
let op_jal = 0x6f
let op_jalr = 0x67
let op_branch = 0x63
let op_load = 0x03
let op_store = 0x23
let op_imm = 0x13
let op_reg = 0x33

let base =
  [ d "lui" U op_lui Base;
    d "auipc" U op_auipc Base;
    d "jal" J op_jal Base;
    d "jalr" I op_jalr ~funct3:0 Base;
    d "beq" B op_branch ~funct3:0 Base;
    d "bne" B op_branch ~funct3:1 Base;
    d "blt" B op_branch ~funct3:4 Base;
    d "bge" B op_branch ~funct3:5 Base;
    d "bltu" B op_branch ~funct3:6 Base;
    d "bgeu" B op_branch ~funct3:7 Base;
    d "lb" I op_load ~funct3:0 Base;
    d "lh" I op_load ~funct3:1 Base;
    d "lw" I op_load ~funct3:2 Base;
    d "lbu" I op_load ~funct3:4 Base;
    d "lhu" I op_load ~funct3:5 Base;
    d "sb" S op_store ~funct3:0 Base;
    d "sh" S op_store ~funct3:1 Base;
    d "sw" S op_store ~funct3:2 Base;
    d "addi" I op_imm ~funct3:0 Base;
    d "slti" I op_imm ~funct3:2 Base;
    d "sltiu" I op_imm ~funct3:3 Base;
    d "xori" I op_imm ~funct3:4 Base;
    d "ori" I op_imm ~funct3:6 Base;
    d "andi" I op_imm ~funct3:7 Base;
    d "slli" I op_imm ~funct3:1 ~funct7:0x00 Base;
    d "srli" I op_imm ~funct3:5 ~funct7:0x00 Base;
    d "srai" I op_imm ~funct3:5 ~funct7:0x20 Base;
    d "add" R op_reg ~funct3:0 ~funct7:0x00 Base;
    d "sub" R op_reg ~funct3:0 ~funct7:0x20 Base;
    d "sll" R op_reg ~funct3:1 ~funct7:0x00 Base;
    d "slt" R op_reg ~funct3:2 ~funct7:0x00 Base;
    d "sltu" R op_reg ~funct3:3 ~funct7:0x00 Base;
    d "xor" R op_reg ~funct3:4 ~funct7:0x00 Base;
    d "srl" R op_reg ~funct3:5 ~funct7:0x00 Base;
    d "sra" R op_reg ~funct3:5 ~funct7:0x20 Base;
    d "or" R op_reg ~funct3:6 ~funct7:0x00 Base;
    d "and" R op_reg ~funct3:7 ~funct7:0x00 Base
  ]

let zbkb =
  [ d "rol" R op_reg ~funct3:1 ~funct7:0x30 Zbkb;
    d "ror" R op_reg ~funct3:5 ~funct7:0x30 Zbkb;
    d "rori" I op_imm ~funct3:5 ~funct7:0x30 Zbkb;
    d "andn" R op_reg ~funct3:7 ~funct7:0x20 Zbkb;
    d "orn" R op_reg ~funct3:6 ~funct7:0x20 Zbkb;
    d "xnor" R op_reg ~funct3:4 ~funct7:0x20 Zbkb;
    d "pack" R op_reg ~funct3:4 ~funct7:0x04 Zbkb;
    d "packh" R op_reg ~funct3:7 ~funct7:0x04 Zbkb;
    (* unary bit permutations encoded as I-type with fixed imm12 *)
    d "rev8" I op_imm ~funct3:5 ~funct7:0x34 ~rs2f:24 Zbkb;  (* imm12 = 0x698 *)
    d "brev8" I op_imm ~funct3:5 ~funct7:0x34 ~rs2f:7 Zbkb;  (* imm12 = 0x687 *)
    d "zip" I op_imm ~funct3:1 ~funct7:0x04 ~rs2f:15 Zbkb;  (* imm12 = 0x08f *)
    d "unzip" I op_imm ~funct3:5 ~funct7:0x04 ~rs2f:15 Zbkb  (* imm12 = 0x08f *)
  ]

let zbkc =
  [ d "clmul" R op_reg ~funct3:1 ~funct7:0x05 Zbkc;
    d "clmulh" R op_reg ~funct3:3 ~funct7:0x05 Zbkc ]

(* The M standard extension (multiply/divide), beyond the paper's variants:
   it demonstrates ISA iteration over heavier functional units. *)
let m_ext =
  [ d "mul" R op_reg ~funct3:0 ~funct7:0x01 M;
    d "mulh" R op_reg ~funct3:1 ~funct7:0x01 M;
    d "mulhsu" R op_reg ~funct3:2 ~funct7:0x01 M;
    d "mulhu" R op_reg ~funct3:3 ~funct7:0x01 M;
    d "div" R op_reg ~funct3:4 ~funct7:0x01 M;
    d "divu" R op_reg ~funct3:5 ~funct7:0x01 M;
    d "rem" R op_reg ~funct3:6 ~funct7:0x01 M;
    d "remu" R op_reg ~funct3:7 ~funct7:0x01 M ]

(* The fixed 12-bit immediates of the unary Zbkb permutations (their rs2
   slot is part of the encoding). *)
let fixed_imm12 = function
  | "rev8" -> Some 0x698
  | "brev8" -> Some 0x687
  | "zip" -> Some 0x08f
  | "unzip" -> Some 0x08f
  | _ -> None

type isa_variant = RV32I | RV32I_Zbkb | RV32I_Zbkc | RV32I_M

let instructions = function
  | RV32I -> base
  | RV32I_Zbkb -> base @ zbkb
  | RV32I_Zbkc -> base @ zbkb @ zbkc
  | RV32I_M -> base @ m_ext

let variant_name = function
  | RV32I -> "RV32I"
  | RV32I_Zbkb -> "RV32I + Zbkb"
  | RV32I_Zbkc -> "RV32I + Zbkc"
  | RV32I_M -> "RV32I + M"

let find variant mnemonic =
  match List.find_opt (fun d -> d.mnemonic = mnemonic) (instructions variant) with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Rv32.find: no instruction %s" mnemonic)

(* {1 Encoding}

   Immediates are taken as OCaml ints in the natural signed range of the
   format and encoded into the instruction word. *)

let mask n bits = n land ((1 lsl bits) - 1)

let encode_fields (desc : descriptor) ~rd ~rs1 ~rs2 ~imm =
  let f3 = Option.value desc.funct3 ~default:0 in
  let f7 = Option.value desc.funct7 ~default:0 in
  match desc.format with
  | R -> (f7 lsl 25) lor (mask rs2 5 lsl 20) lor (mask rs1 5 lsl 15)
         lor (f3 lsl 12) lor (mask rd 5 lsl 7) lor desc.opcode
  | I ->
      let imm =
        match fixed_imm12 desc.mnemonic with
        | Some fixed -> fixed
        | None -> (
            (* immediate shifts/rotates carry funct7 in the upper imm bits *)
            match desc.funct7 with
            | Some f7 -> (f7 lsl 5) lor mask imm 5
            | None -> mask imm 12)
      in
      (imm lsl 20) lor (mask rs1 5 lsl 15) lor (f3 lsl 12) lor (mask rd 5 lsl 7)
      lor desc.opcode
  | S ->
      let imm = mask imm 12 in
      (mask (imm lsr 5) 7 lsl 25) lor (mask rs2 5 lsl 20) lor (mask rs1 5 lsl 15)
      lor (f3 lsl 12) lor (mask imm 5 lsl 7) lor desc.opcode
  | B ->
      let imm = mask imm 13 in
      (mask (imm lsr 12) 1 lsl 31)
      lor (mask (imm lsr 5) 6 lsl 25)
      lor (mask rs2 5 lsl 20) lor (mask rs1 5 lsl 15) lor (f3 lsl 12)
      lor (mask (imm lsr 1) 4 lsl 8)
      lor (mask (imm lsr 11) 1 lsl 7)
      lor desc.opcode
  | U -> (mask (imm lsr 12) 20 lsl 12) lor (mask rd 5 lsl 7) lor desc.opcode
  | J ->
      let imm = mask imm 21 in
      (mask (imm lsr 20) 1 lsl 31)
      lor (mask (imm lsr 1) 10 lsl 21)
      lor (mask (imm lsr 11) 1 lsl 20)
      lor (mask (imm lsr 12) 8 lsl 12)
      lor (mask rd 5 lsl 7) lor desc.opcode

let encode variant mnemonic ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0) () =
  let desc = find variant mnemonic in
  Bitvec.of_int ~width:32 (encode_fields desc ~rd ~rs1 ~rs2 ~imm)

(* {1 Field extraction (shared by the ISS)} *)

let get_opcode w = Bitvec.to_int_exn (Bitvec.extract ~high:6 ~low:0 w)
let get_rd w = Bitvec.to_int_exn (Bitvec.extract ~high:11 ~low:7 w)
let get_funct3 w = Bitvec.to_int_exn (Bitvec.extract ~high:14 ~low:12 w)
let get_rs1 w = Bitvec.to_int_exn (Bitvec.extract ~high:19 ~low:15 w)
let get_rs2 w = Bitvec.to_int_exn (Bitvec.extract ~high:24 ~low:20 w)
let get_funct7 w = Bitvec.to_int_exn (Bitvec.extract ~high:31 ~low:25 w)

let imm_i w = Bitvec.sext (Bitvec.extract ~high:31 ~low:20 w) 32

let imm_s w =
  Bitvec.sext
    (Bitvec.concat (Bitvec.extract ~high:31 ~low:25 w) (Bitvec.extract ~high:11 ~low:7 w))
    32

let imm_b w =
  Bitvec.sext
    (Bitvec.concat
       (Bitvec.extract ~high:31 ~low:31 w)
       (Bitvec.concat
          (Bitvec.extract ~high:7 ~low:7 w)
          (Bitvec.concat
             (Bitvec.extract ~high:30 ~low:25 w)
             (Bitvec.concat (Bitvec.extract ~high:11 ~low:8 w) (Bitvec.zero 1)))))
    32

let imm_u w =
  Bitvec.concat (Bitvec.extract ~high:31 ~low:12 w) (Bitvec.zero 12)

let imm_j w =
  Bitvec.sext
    (Bitvec.concat
       (Bitvec.extract ~high:31 ~low:31 w)
       (Bitvec.concat
          (Bitvec.extract ~high:19 ~low:12 w)
          (Bitvec.concat
             (Bitvec.extract ~high:20 ~low:20 w)
             (Bitvec.concat (Bitvec.extract ~high:30 ~low:21 w) (Bitvec.zero 1)))))
    32

(* Decode an instruction word back to its descriptor. *)
let decode variant w =
  let opc = get_opcode w and f3 = get_funct3 w and f7 = get_funct7 w in
  List.find_opt
    (fun desc ->
      desc.opcode = opc
      && (match desc.funct3 with None -> true | Some f -> f = f3)
      && (match desc.funct7 with None -> true | Some f -> f = f7)
      && (match desc.rs2f with None -> true | Some r -> r = get_rs2 w))
    (instructions variant)
