(* Generic bit-level circuit construction over an abstract gate algebra.

   The same word-level circuits (ripple adders, barrel shifters, array
   multipliers, comparators, table mux-trees) serve two backends: Tseitin
   CNF generation for the SAT solver ({!Blast}) and gate-level netlist
   construction for the synthesis-size experiments ({!Netlist}). *)

module type GATES = sig
  type lit

  val tru : lit
  val fls : lit
  val neg : lit -> lit
  val mk_and : lit -> lit -> lit
  val mk_or : lit -> lit -> lit
  val mk_xor : lit -> lit -> lit
  val mk_ite : lit -> lit -> lit -> lit  (* condition, then, else *)
end

module Words (G : GATES) = struct
  let const_bits v =
    Array.init (Bitvec.width v) (fun i -> if Bitvec.bit v i then G.tru else G.fls)

  let full_adder a b cin =
    let axb = G.mk_xor a b in
    let s = G.mk_xor axb cin in
    let cout = G.mk_or (G.mk_and a b) (G.mk_and cin axb) in
    (s, cout)

  let ripple_add a b cin =
    let w = Array.length a in
    let out = Array.make w G.fls in
    let carry = ref cin in
    for i = 0 to w - 1 do
      let s, co = full_adder a.(i) b.(i) !carry in
      out.(i) <- s;
      carry := co
    done;
    out

  let mk_eq_bits a b =
    let acc = ref G.tru in
    for i = 0 to Array.length a - 1 do
      acc := G.mk_and !acc (G.neg (G.mk_xor a.(i) b.(i)))
    done;
    !acc

  let mk_ult_bits a b =
    (* LSB-to-MSB fold: where bits differ, b's bit decides *)
    let lt = ref G.fls in
    for i = 0 to Array.length a - 1 do
      lt := G.mk_ite (G.mk_xor a.(i) b.(i)) b.(i) !lt
    done;
    !lt

  let flip_msb a =
    let w = Array.length a in
    Array.mapi (fun i l -> if i = w - 1 then G.neg l else l) a

  let mul_bits a b =
    let w = Array.length a in
    let acc = ref (Array.make w G.fls) in
    for i = 0 to w - 1 do
      let addend =
        Array.init w (fun j -> if j < i then G.fls else G.mk_and a.(j - i) b.(i))
      in
      acc := ripple_add !acc addend G.fls
    done;
    !acc

  (* Restoring divider.  Semantics match {!Bitvec}: division by zero
     yields all-ones / the dividend. *)
  let udivrem_bits a b =
    let w = Array.length a in
    let q = Array.make w G.fls in
    let r = ref (Array.make w G.fls) in
    for i = w - 1 downto 0 do
      (* r = (r << 1) | a_i *)
      r := Array.init w (fun j -> if j = 0 then a.(i) else !r.(j - 1));
      let ge = G.neg (mk_ult_bits !r b) in
      q.(i) <- ge;
      let diff = ripple_add !r (Array.map G.neg b) G.tru in
      r := Array.init w (fun j -> G.mk_ite ge diff.(j) !r.(j))
    done;
    let bz = G.neg (Array.fold_left (fun acc l -> G.mk_or acc l) G.fls b) in
    let q = Array.map (fun l -> G.mk_ite bz G.tru l) q in
    let r = Array.init w (fun j -> G.mk_ite bz a.(j) !r.(j)) in
    (q, r)

  let negate_bits v = ripple_add (Array.map G.neg v) (Array.make (Array.length v) G.fls) G.tru

  let sdivrem_bits a b =
    let w = Array.length a in
    let sa = a.(w - 1) and sb = b.(w - 1) in
    let abs_ s v = Array.init w (fun j -> G.mk_ite s (negate_bits v).(j) v.(j)) in
    let qa, ra = udivrem_bits (abs_ sa a) (abs_ sb b) in
    let qsign = G.mk_xor sa sb in
    let q = Array.init w (fun j -> G.mk_ite qsign (negate_bits qa).(j) qa.(j)) in
    let r = Array.init w (fun j -> G.mk_ite sa (negate_bits ra).(j) ra.(j)) in
    (* division by zero overrides the sign-adjusted results *)
    let bz = G.neg (Array.fold_left (fun acc l -> G.mk_or acc l) G.fls b) in
    ( Array.map (fun l -> G.mk_ite bz G.tru l) q,
      Array.init w (fun j -> G.mk_ite bz a.(j) r.(j)) )

  let clmul_bits a b ~high =
    let w = Array.length a in
    Array.init w (fun j ->
        let bitpos = if high then j + w else j in
        let acc = ref G.fls in
        for i = max 0 (bitpos - w + 1) to min (w - 1) bitpos do
          acc := G.mk_xor !acc (G.mk_and a.(bitpos - i) b.(i))
        done;
        !acc)

  let shift_bits a amt ~dir ~fill =
    let w = Array.length a in
    let cur = ref (Array.copy a) in
    for k = 0 to Array.length amt - 1 do
      let dist = if k < 62 then 1 lsl k else max_int in
      let sel = amt.(k) in
      let shifted =
        if dist >= w then Array.make w fill
        else
          Array.init w (fun i ->
              match dir with
              | `Left -> if i < dist then fill else !cur.(i - dist)
              | `Right -> if i + dist >= w then fill else !cur.(i + dist))
      in
      cur := Array.init w (fun i -> G.mk_ite sel shifted.(i) !cur.(i))
    done;
    !cur

  let mux_bits c a b = Array.init (Array.length a) (fun i -> G.mk_ite c a.(i) b.(i))

  let table_bits (tb : Term.table) ibits =
    let dw = Bitvec.width tb.Term.tab_data.(0) in
    let rec select lo level =
      if level < 0 then const_bits tb.Term.tab_data.(lo)
      else
        let lower = select lo (level - 1) in
        let upper = select (lo + (1 lsl level)) (level - 1) in
        Array.init dw (fun i -> G.mk_ite ibits.(level) upper.(i) lower.(i))
    in
    select 0 (tb.Term.tab_addr_width - 1)

  (* Generic Term translation.  [var_bits] supplies literals for variables;
     [read_bits] for uninterpreted memory reads (the CNF backend rejects
     them, the netlist backend makes them black-box ports). *)
  type tctx = {
    term_cache : (int, G.lit array) Hashtbl.t;
    var_bits : string -> int -> G.lit array;
    read_bits : Term.mem -> G.lit array -> G.lit array;
  }

  let make_tctx ~var_bits ~read_bits =
    { term_cache = Hashtbl.create 1024; var_bits; read_bits }

  let cached_terms ctx = Hashtbl.length ctx.term_cache

  let rec term_bits ctx (t : Term.t) : G.lit array =
    match Hashtbl.find_opt ctx.term_cache (Term.id t) with
    | Some bits -> bits
    | None ->
        let bits =
          match t.Term.node with
          | Term.Const v -> const_bits v
          | Term.Var name -> ctx.var_bits name t.Term.width
          | Term.Not x -> Array.map G.neg (term_bits ctx x)
          | Term.Binop (op, x, y) -> binop_bits ctx op x y
          | Term.Cmp (op, x, y) -> [| cmp_bit ctx op x y |]
          | Term.Ite (c, x, y) ->
              let cl = (term_bits ctx c).(0) in
              mux_bits cl (term_bits ctx x) (term_bits ctx y)
          | Term.Extract (high, low, x) ->
              Array.sub (term_bits ctx x) low (high - low + 1)
          | Term.Concat (hi, lo) ->
              Array.append (term_bits ctx lo) (term_bits ctx hi)
          | Term.Read (m, a) -> ctx.read_bits m (term_bits ctx a)
          | Term.Table (tb, idx) -> table_bits tb (term_bits ctx idx)
        in
        Hashtbl.add ctx.term_cache (Term.id t) bits;
        bits

  and binop_bits ctx op x y =
    let a = term_bits ctx x and b = term_bits ctx y in
    match op with
    | Term.And -> Array.init (Array.length a) (fun i -> G.mk_and a.(i) b.(i))
    | Term.Or -> Array.init (Array.length a) (fun i -> G.mk_or a.(i) b.(i))
    | Term.Xor -> Array.init (Array.length a) (fun i -> G.mk_xor a.(i) b.(i))
    | Term.Add -> ripple_add a b G.fls
    | Term.Sub -> ripple_add a (Array.map G.neg b) G.tru
    | Term.Mul -> mul_bits a b
    | Term.Udiv -> fst (udivrem_bits a b)
    | Term.Urem -> snd (udivrem_bits a b)
    | Term.Sdiv -> fst (sdivrem_bits a b)
    | Term.Srem -> snd (sdivrem_bits a b)
    | Term.Clmul -> clmul_bits a b ~high:false
    | Term.Clmulh -> clmul_bits a b ~high:true
    | Term.Shl -> shift_bits a b ~dir:`Left ~fill:G.fls
    | Term.Lshr -> shift_bits a b ~dir:`Right ~fill:G.fls
    | Term.Ashr -> shift_bits a b ~dir:`Right ~fill:a.(Array.length a - 1)

  and cmp_bit ctx op x y =
    let a = term_bits ctx x and b = term_bits ctx y in
    match op with
    | Term.Eq -> mk_eq_bits a b
    | Term.Ult -> mk_ult_bits a b
    | Term.Ule -> G.neg (mk_ult_bits b a)
    | Term.Slt -> mk_ult_bits (flip_msb a) (flip_msb b)
    | Term.Sle -> G.neg (mk_ult_bits (flip_msb b) (flip_msb a))
end
