(** Generic bit-level circuit construction over an abstract gate algebra.

    The same word-level circuits — ripple adders, barrel shifters, array
    and carry-less multipliers, comparators, table mux-trees, and the full
    {!Term} translation — serve two backends: Tseitin CNF generation for
    the SAT solver ({!Blast}) and gate-level netlist construction
    ({!Netlist}). *)

module type GATES = sig
  type lit

  val tru : lit
  val fls : lit
  val neg : lit -> lit
  val mk_and : lit -> lit -> lit
  val mk_or : lit -> lit -> lit
  val mk_xor : lit -> lit -> lit

  val mk_ite : lit -> lit -> lit -> lit
  (** condition, then, else *)
end

module Words (G : GATES) : sig
  val const_bits : Bitvec.t -> G.lit array
  (** LSB first, like every bit array in this module. *)

  val full_adder : G.lit -> G.lit -> G.lit -> G.lit * G.lit
  (** (sum, carry-out). *)

  val ripple_add : G.lit array -> G.lit array -> G.lit -> G.lit array
  val mk_eq_bits : G.lit array -> G.lit array -> G.lit
  val mk_ult_bits : G.lit array -> G.lit array -> G.lit
  val flip_msb : G.lit array -> G.lit array
  val mul_bits : G.lit array -> G.lit array -> G.lit array

  val udivrem_bits : G.lit array -> G.lit array -> G.lit array * G.lit array
  (** Restoring divider; [(quotient, remainder)] with the toolchain's
      division-by-zero convention (all-ones / the dividend). *)

  val sdivrem_bits : G.lit array -> G.lit array -> G.lit array * G.lit array
  val clmul_bits : G.lit array -> G.lit array -> high:bool -> G.lit array

  val shift_bits :
    G.lit array -> G.lit array -> dir:[ `Left | `Right ] -> fill:G.lit ->
    G.lit array
  (** Barrel shifter; amount bits beyond the width force the all-[fill]
      result when set. *)

  val mux_bits : G.lit -> G.lit array -> G.lit array -> G.lit array
  val table_bits : Term.table -> G.lit array -> G.lit array

  type tctx

  val make_tctx :
    var_bits:(string -> int -> G.lit array) ->
    read_bits:(Term.mem -> G.lit array -> G.lit array) ->
    tctx
  (** [var_bits] supplies literals for variables (caching is the caller's
      choice per name); [read_bits] handles uninterpreted memory reads (the
      CNF backend rejects them, the netlist backend makes them ports). *)

  val term_bits : tctx -> Term.t -> G.lit array
  (** Translates a term, caching per node so DAG sharing carries over.
      The cache lives as long as the context, so persistent contexts
      (incremental solver sessions) re-encode only never-seen nodes. *)

  val cached_terms : tctx -> int
  (** Number of distinct nodes in the translation cache. *)
end
