(** SMT façade: satisfiability of conjunctions of width-1 bitvector terms.

    Pipeline: Ackermann-expand uninterpreted memory reads, bit-blast with
    {!Blast}, decide with {!Sat}, and reconstruct a word-level model.

    The [budget] bounds SAT conflicts; exhausting it yields [Unknown], which
    the synthesis engine and the benchmark harness surface as a timeout.

    {b Re-entrancy contract.}  [check] holds no state between calls: the
    SAT instance, the blasting context, the Ackermann numbering, and the
    statistics are all per call, and the term layer it builds on is
    domain-safe.  Concurrent [check] calls from different domains are
    therefore independent — each returns its own correct outcome and its
    own stats.  The parallel synthesis scheduler relies on this. *)

type model = {
  var_value : string -> Bitvec.t option;
      (** value of a named bitvector variable; [None] if the variable was
          simplified away (callers should treat it as "any value") *)
  read_values : (string * Bitvec.t * Bitvec.t) list;
      (** [(mem_name, address, value)] for every distinct read instance,
          with the address evaluated under the model *)
}

type stats = { sat_vars : int; sat_clauses : int; sat_conflicts : int }
(** Per-call solver statistics.  Carried inside the {!outcome} rather than
    read from process state, so concurrent checks cannot race. *)

val empty_stats : stats

type outcome = Sat of model * stats | Unsat of stats | Unknown of stats

val stats_of : outcome -> stats
(** The statistics of any outcome. *)

val check : ?budget:int -> ?deadline:float -> Term.t list -> outcome
(** Checks satisfiability of the conjunction of the given width-1 terms.
    [deadline] is an absolute wall-clock bound ([Unix.gettimeofday]).
    Raises [Invalid_argument] if any term is not width 1.  Re-entrant; see
    the module preamble. *)

val read_lookup : model -> Term.mem -> Bitvec.t -> Bitvec.t option
(** Looks an address up in [read_values], returning the {e first} match in
    read-instance order.  Distinct instances may alias the same concrete
    address, but the Ackermann congruence constraints force aliasing
    instances to carry equal values in any model, so the first match is
    canonical and the lookup deterministic. *)
