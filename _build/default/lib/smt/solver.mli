(** SMT façade: satisfiability of conjunctions of width-1 bitvector terms.

    Pipeline: Ackermann-expand uninterpreted memory reads, bit-blast with
    {!Blast}, decide with {!Sat}, and reconstruct a word-level model.

    The [budget] bounds SAT conflicts; exhausting it yields [Unknown], which
    the synthesis engine and the benchmark harness surface as a timeout. *)

type model = {
  var_value : string -> Bitvec.t option;
      (** value of a named bitvector variable; [None] if the variable was
          simplified away (callers should treat it as "any value") *)
  read_values : (string * Bitvec.t * Bitvec.t) list;
      (** [(mem_name, address, value)] for every distinct read instance,
          with the address evaluated under the model *)
}

type outcome = Sat of model | Unsat | Unknown

val check : ?budget:int -> ?deadline:float -> Term.t list -> outcome
(** Checks satisfiability of the conjunction of the given width-1 terms.
    [deadline] is an absolute wall-clock bound ([Unix.gettimeofday]).
    Raises [Invalid_argument] if any term is not width 1. *)

val read_lookup : model -> Term.mem -> Bitvec.t -> Bitvec.t option
(** Looks an address up in [read_values] (first match). *)

type stats = { sat_vars : int; sat_clauses : int; sat_conflicts : int }

val last_stats : unit -> stats
(** Statistics of the most recent [check] call. *)
