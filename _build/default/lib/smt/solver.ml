(* SMT façade: Ackermannization + bit-blasting + CDCL. *)

type model = {
  var_value : string -> Bitvec.t option;
  read_values : (string * Bitvec.t * Bitvec.t) list;
}

type stats = { sat_vars : int; sat_clauses : int; sat_conflicts : int }

let empty_stats = { sat_vars = 0; sat_clauses = 0; sat_conflicts = 0 }

type outcome = Sat of model * stats | Unsat of stats | Unknown of stats

let stats_of = function Sat (_, s) | Unsat s | Unknown s -> s

(* {1 Ackermann expansion}

   Replace every [Read (m, addr)] node by a fresh variable, bottom-up, and
   record the (mem, rewritten-address, variable) instances.  For every pair
   of instances on the same memory, add the congruence constraint
   [addr1 = addr2 -> v1 = v2].

   Ackermann variables are named per call ("ack!<mem>!<k>" with [k]
   counting from 1 in traversal order), never per process: each [check]
   owns its SAT context, so reusing a name across independent calls is
   harmless, and per-call numbering keeps the generated CNF — hence the
   whole query — deterministic no matter how many checks other domains ran
   before this one.  Widths cannot clash because the name embeds the
   memory, whose data width is fixed. *)

let ackermannize (assertions : Term.t list) =
  let memo : (int, Term.t) Hashtbl.t = Hashtbl.create 256 in
  (* key: (mem_name, rewritten address id) -> replacement var *)
  let instance_tbl : (string * int, Term.t) Hashtbl.t = Hashtbl.create 64 in
  let instances : (Term.mem * Term.t * Term.t) list ref = ref [] in
  let ack_counter = ref 0 in
  let rec go (t : Term.t) : Term.t =
    match Hashtbl.find_opt memo (Term.id t) with
    | Some r -> r
    | None ->
        let r =
          match t.Term.node with
          | Term.Const _ | Term.Var _ -> t
          | Term.Not x -> Term.bnot (go x)
          | Term.Binop (op, a, b) -> (
              let a = go a and b = go b in
              match op with
              | Term.And -> Term.band a b
              | Term.Or -> Term.bor a b
              | Term.Xor -> Term.bxor a b
              | Term.Add -> Term.add a b
              | Term.Sub -> Term.sub a b
              | Term.Mul -> Term.mul a b
              | Term.Udiv -> Term.udiv a b
              | Term.Urem -> Term.urem a b
              | Term.Sdiv -> Term.sdiv a b
              | Term.Srem -> Term.srem a b
              | Term.Clmul -> Term.clmul a b
              | Term.Clmulh -> Term.clmulh a b
              | Term.Shl -> Term.shl a b
              | Term.Lshr -> Term.lshr a b
              | Term.Ashr -> Term.ashr a b)
          | Term.Cmp (op, a, b) -> (
              let a = go a and b = go b in
              match op with
              | Term.Eq -> Term.eq a b
              | Term.Ult -> Term.ult a b
              | Term.Ule -> Term.ule a b
              | Term.Slt -> Term.slt a b
              | Term.Sle -> Term.sle a b)
          | Term.Ite (c, a, b) -> Term.ite (go c) (go a) (go b)
          | Term.Extract (h, l, x) -> Term.extract ~high:h ~low:l (go x)
          | Term.Concat (a, b) -> Term.concat (go a) (go b)
          | Term.Table (tb, i) -> Term.table_read tb (go i)
          | Term.Read (m, addr) -> (
              let addr = go addr in
              let key = (m.Term.mem_name, Term.id addr) in
              match Hashtbl.find_opt instance_tbl key with
              | Some v -> v
              | None ->
                  incr ack_counter;
                  let v =
                    Term.var
                      (Printf.sprintf "ack!%s!%d" m.Term.mem_name !ack_counter)
                      m.Term.data_width
                  in
                  Hashtbl.add instance_tbl key v;
                  instances := (m, addr, v) :: !instances;
                  v)
        in
        Hashtbl.add memo (Term.id t) r;
        r
  in
  let rewritten = List.map go assertions in
  (* congruence constraints per memory *)
  let by_mem = Hashtbl.create 8 in
  List.iter
    (fun (m, addr, v) ->
      let key = m.Term.mem_name in
      let l = try Hashtbl.find by_mem key with Not_found -> [] in
      Hashtbl.replace by_mem key ((addr, v) :: l))
    !instances;
  let congruences = ref [] in
  Hashtbl.iter
    (fun _ l ->
      let arr = Array.of_list l in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          let a1, v1 = arr.(i) and a2, v2 = arr.(j) in
          congruences :=
            Term.implies (Term.eq a1 a2) (Term.eq v1 v2) :: !congruences
        done
      done)
    by_mem;
  (rewritten @ !congruences, List.rev !instances)

(* {1 Checking}

   [check] is re-entrant: the SAT solver, the blasting context, and the
   returned statistics are all per call, so any number of checks may run
   concurrently from different domains. *)

let check ?(budget = max_int) ?deadline assertions =
  List.iter
    (fun t ->
      if Term.width t <> 1 then invalid_arg "Solver.check: assertion width <> 1")
    assertions;
  (* Fast path: conjunction constant after simplification. *)
  if List.exists Term.is_false assertions then
    Unsat empty_stats
  else begin
    let assertions, instances = ackermannize assertions in
    if List.exists Term.is_false assertions then Unsat empty_stats
    else begin
      let sat = Sat.create () in
      let ctx = Blast.create sat in
      List.iter (Blast.assert_term ctx) assertions;
      let result = Sat.solve ~budget ?deadline sat in
      let stats =
        {
          sat_vars = Sat.num_vars sat;
          sat_clauses = Sat.num_clauses sat;
          sat_conflicts = Sat.conflicts sat;
        }
      in
      match result with
      | Sat.Unsat -> Unsat stats
      | Sat.Unknown -> Unknown stats
      | Sat.Sat ->
          let var_value name =
            match Blast.var_bits ctx name with
            | None -> None
            | Some bits ->
                Some
                  (Bitvec.of_bits
                     (Array.map
                        (fun l -> if l > 0 then Sat.value sat l else not (Sat.value sat (-l)))
                        bits))
          in
          (* Evaluate read instance addresses under the model to produce the
             word-level memory view.  Variables the blaster never saw were
             simplified away; any value works, so they default to zero. *)
          let env =
            {
              Term.lookup_var =
                (fun n w ->
                  match var_value n with
                  | Some v -> Some v
                  | None -> Some (Bitvec.zero w));
              Term.lookup_read = (fun _ _ -> None);
            }
          in
          let read_values =
            List.map
              (fun ((m : Term.mem), addr, v) ->
                let a = Term.eval env addr in
                let value = Term.eval env v in
                (m.Term.mem_name, a, value))
              instances
          in
          Sat ({ var_value; read_values }, stats)
    end
  end

(* First match in instance order.  Distinct read instances can evaluate to
   the same concrete address; the Ackermann congruence constraints force
   their values to agree in any model, so first-match is both deterministic
   and canonical — later duplicates are necessarily equal. *)
let read_lookup model (m : Term.mem) addr =
  let rec go = function
    | [] -> None
    | (name, a, v) :: rest ->
        if String.equal name m.Term.mem_name && Bitvec.equal a addr then Some v
        else go rest
  in
  go model.read_values
