lib/smt/solver.ml: Array Bitvec Blast Hashtbl List Printf Sat String Term
