lib/smt/solver.ml: Array Bitvec Blast Hashtbl Lazy List Option Printf Sat Term
