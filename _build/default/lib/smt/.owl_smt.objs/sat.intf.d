lib/smt/sat.mli:
