lib/smt/solver.mli: Bitvec Hashtbl Lazy Term
