lib/smt/solver.mli: Bitvec Term
