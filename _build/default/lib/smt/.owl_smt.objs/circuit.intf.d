lib/smt/circuit.mli: Bitvec Term
