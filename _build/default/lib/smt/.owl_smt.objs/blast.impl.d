lib/smt/blast.ml: Array Circuit Hashtbl Printf Sat Term
