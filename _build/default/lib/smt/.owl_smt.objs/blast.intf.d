lib/smt/blast.mli: Sat Term
