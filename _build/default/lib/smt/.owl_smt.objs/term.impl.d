lib/smt/term.ml: Array Atomic Bitvec Format Hashtbl Int List Mutex Printf Stdlib String
