lib/smt/term.ml: Array Bitvec Format Hashtbl List Printf Stdlib String
