lib/smt/sat.ml: Array Float List Option Printf Stdlib Unix
