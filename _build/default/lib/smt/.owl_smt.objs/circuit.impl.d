lib/smt/circuit.ml: Array Bitvec Hashtbl Term
