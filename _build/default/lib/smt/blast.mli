(** Tseitin bit-blasting of bitvector terms to CNF.

    A blasting context wraps a {!Sat} solver and maintains a structural gate
    cache (so repeated subcircuits share literals) and a per-term cache (so
    the DAG sharing of {!Term} carries over to the CNF).

    [Read] nodes must be eliminated before blasting (the {!Solver} façade
    Ackermannizes them); encountering one raises [Invalid_argument]. *)

type t

val create : Sat.t -> t

val lit_true : t -> int
(** The distinguished always-true literal. *)

val blast : t -> Term.t -> int array
(** [blast ctx term] returns one DIMACS literal per bit, LSB first.

    Translation is cached per hash-consed [Term.id] for the lifetime of the
    context, so re-blasting a term whose subterms were already seen only
    encodes the new nodes — the property incremental solver sessions rely
    on to avoid re-encoding the sketch every CEGIS iteration. *)

val cached_terms : t -> int
(** Number of distinct terms in the term → literals cache. *)

val assert_term : t -> Term.t -> unit
(** Asserts a width-1 term to be true (adds a unit clause). *)

val fresh_lit : t -> int
(** Allocates a fresh SAT variable in the underlying solver and returns its
    positive literal; used for activation guards. *)

val assert_term_guarded : t -> guard:int -> Term.t -> unit
(** [assert_term_guarded c ~guard t] asserts [guard -> t]: the clause
    [(-guard, t)] plus [t]'s definitional clauses.  Solving with [guard]
    among the assumptions enforces [t]; permanently adding the unit clause
    [-guard] retracts it (the definitional clauses are tautological on
    their own and stay). *)

val var_bits : t -> string -> int array option
(** The literals allocated for a [Var] term, if it was blasted. *)

(** {1 Gate-level API} (used by tests and the netlist backend) *)

val mk_and : t -> int -> int -> int
val mk_or : t -> int -> int -> int
val mk_xor : t -> int -> int -> int
val mk_ite : t -> int -> int -> int -> int
(** [mk_ite c a b] is [if c then a else b]. *)
