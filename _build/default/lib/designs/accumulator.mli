(** The accumulator machine of paper §2.3 (Fig. 3): the FSM-style control
    quickstart.  The datapath sketch leaves the combinational next-state
    value as a [Per_instruction] hole and the two branch-selection
    encodings as [Shared] holes. *)

val stop_enc : int
val reset_enc : int
val go_enc : int
(** The architectural state encodings used by the specification. *)

val spec : unit -> Ila.Spec.t
val sketch : unit -> Oyster.Ast.design
val abstraction : unit -> Ila.Absfun.t
val problem : unit -> Synth.Engine.problem

val reference_bindings : unit -> (string * Oyster.Ast.expr) list
(** Hand-written control, for cross-checks and baselines. *)

val reference_design : unit -> Oyster.Ast.design
