(* Testbench utilities: load a program into a completed (hole-free) core,
   run it cycle-accurately with the Oyster interpreter, detect the
   conventional jump-to-self halt, and compare architectural state against
   the ISS oracle. *)

type run_result = {
  cycles_to_halt : int option;  (* first cycle with pc_out = halt address *)
  state : Oyster.Interp.state;
}

let load_core design ~(program : Bitvec.t list) ~(dmem_init : (int * Bitvec.t) list) =
  let prog = Array.of_list program in
  let dmem_tbl = Hashtbl.create 16 in
  List.iter (fun (a, v) -> Hashtbl.replace dmem_tbl a v) dmem_init;
  Oyster.Interp.init
    ~mem_init:(fun name _aw dw addr ->
      match name with
      | "i_mem" ->
          let i = Bitvec.to_int_exn addr in
          if i < Array.length prog then prog.(i) else Bitvec.zero dw
      | "d_mem" -> (
          match Hashtbl.find_opt dmem_tbl (Bitvec.to_int_exn addr) with
          | Some v -> v
          | None -> Bitvec.zero dw)
      | _ -> Bitvec.zero dw)
    design

let run_core design ~program ~dmem_init ~halt_pc ~max_cycles =
  let st = load_core design ~program ~dmem_init in
  let halt = Bitvec.of_int ~width:32 halt_pc in
  let rec go cycle =
    if cycle >= max_cycles then { cycles_to_halt = None; state = st }
    else begin
      let r = Oyster.Interp.step st in
      let pc = List.assoc "pc_out" r.Oyster.Interp.outputs in
      if Bitvec.equal pc halt then
        { cycles_to_halt = Some (cycle + 1); state = st }
      else go (cycle + 1)
    end
  in
  go 0

let core_reg st i = Oyster.Interp.read_mem st "rf" (Bitvec.of_int ~width:5 i)
let core_dmem st a = Oyster.Interp.read_mem st "d_mem" (Bitvec.of_int ~width:30 a)

(* {1 Random program generation for co-simulation} *)

(* Straight-line-heavy random programs: ALU traffic over x1..x7, loads and
   stores in a small data window, short forward branches, ending in the
   jump-to-self halt.  All generated instructions are decodable in the
   given variant.  With [profile:`Cmov] the program fits the crypto core's
   bespoke ISA: no conditional branches, word-only memory access, CMOV
   instead of branches. *)
let cmov_word ~rd ~rs1 ~rs2 =
  Bitvec.of_int ~width:32
    ((0x07 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (5 lsl 12) lor (rd lsl 7)
    lor 0x33)

let random_program ?(profile = `Standard) rng variant ~len =
  let e m = Isa.Rv32.encode variant m in
  let reg () = 1 + Random.State.int rng 7 in
  let alu_r =
    [ "add"; "sub"; "sll"; "slt"; "sltu"; "xor"; "srl"; "sra"; "or"; "and" ]
    @ (match variant with
      | Isa.Rv32.RV32I_Zbkb | Isa.Rv32.RV32I_Zbkc ->
          [ "rol"; "ror"; "andn"; "orn"; "xnor"; "pack"; "packh" ]
      | _ -> [])
    @ (match variant with
      | Isa.Rv32.RV32I_Zbkc -> [ "clmul"; "clmulh" ]
      | Isa.Rv32.RV32I_M ->
          [ "mul"; "mulh"; "mulhsu"; "mulhu"; "div"; "divu"; "rem"; "remu" ]
      | _ -> [])
  in
  let alu_i =
    [ "addi"; "slti"; "sltiu"; "xori"; "ori"; "andi"; "slli"; "srli"; "srai" ]
    @ (match variant with
      | Isa.Rv32.RV32I_Zbkb | Isa.Rv32.RV32I_Zbkc ->
          [ "rori"; "rev8"; "brev8"; "zip"; "unzip" ]
      | _ -> [])
  in
  let mem_ops =
    match profile with
    | `Standard -> [ "lb"; "lh"; "lw"; "lbu"; "lhu" ]
    | `Cmov -> [ "lw" ]
  in
  let store_ops =
    match profile with `Standard -> [ "sb"; "sh"; "sw" ] | `Cmov -> [ "sw" ]
  in
  let branches = [ "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu" ] in
  let body =
    List.init len (fun i ->
        match Random.State.int rng 10 with
        | 0 | 1 | 2 ->
            let m = List.nth alu_r (Random.State.int rng (List.length alu_r)) in
            e m ~rd:(reg ()) ~rs1:(reg ()) ~rs2:(reg ()) ()
        | 3 | 4 | 5 ->
            let m = List.nth alu_i (Random.State.int rng (List.length alu_i)) in
            let imm =
              if m = "slli" || m = "srli" || m = "srai" || m = "rori" then
                Random.State.int rng 32
              else Random.State.int rng 4096 - 2048
            in
            e m ~rd:(reg ()) ~rs1:(reg ()) ~imm ()
        | 6 ->
            let m = List.nth mem_ops (Random.State.int rng (List.length mem_ops)) in
            let imm =
              match profile with
              | `Standard -> Random.State.int rng 128
              | `Cmov -> 4 * Random.State.int rng 32
            in
            e m ~rd:(reg ()) ~rs1:0 ~imm ()
        | 7 ->
            let m = List.nth store_ops (Random.State.int rng (List.length store_ops)) in
            let imm =
              match profile with
              | `Standard -> Random.State.int rng 128
              | `Cmov -> 4 * Random.State.int rng 32
            in
            e m ~rs1:0 ~rs2:(reg ()) ~imm ()
        | 8 -> (
            match profile with
            | `Standard ->
                if Random.State.bool rng then
                  e "lui" ~rd:(reg ()) ~imm:(Random.State.int rng (1 lsl 20) lsl 12) ()
                else
                  e "auipc" ~rd:(reg ()) ~imm:(Random.State.int rng (1 lsl 20) lsl 12) ()
            | `Cmov -> e "lui" ~rd:(reg ()) ~imm:(Random.State.int rng (1 lsl 20) lsl 12) ())
        | _ -> (
            match profile with
            | `Standard ->
                (* short forward branch; the target never passes the final
                   jump-to-self halt at index [len] *)
                let m = List.nth branches (Random.State.int rng (List.length branches)) in
                let skip = max 0 (min (len - i - 1) (1 + Random.State.int rng 3)) in
                e m ~rs1:(reg ()) ~rs2:(reg ()) ~imm:(4 * (skip + 1)) ()
            | `Cmov -> cmov_word ~rd:(reg ()) ~rs1:(reg ()) ~rs2:(reg ())))
  in
  body @ [ e "jal" ~rd:0 ~imm:0 () ]

(* Run the same program on the ISS. *)
let run_iss ?cmov variant ~program ~dmem_init ~max_cycles =
  let t = Isa.Iss.create ~variant ?cmov () in
  Isa.Iss.load_program t program;
  List.iter (fun (a, v) -> Isa.Iss.dmem_write t a v) dmem_init;
  let outcome = Isa.Iss.run ~max_cycles t in
  (outcome, t)
