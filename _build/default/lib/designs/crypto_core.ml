(* The bespoke constant-time cryptography core (paper §4.2): a three-stage
   pipeline — (1) fetch, (2) decode + execute, (3) memory + write back —
   running the CMOV ISA (RV32I+Zbkb without conditional branches or
   sub-word memory access, plus the custom CMOV instruction).

   Unconditional jumps resolve in stage 2 and flush the instruction being
   fetched in stage 1 (the control hazard of §4.2); synthesis evaluates a
   single instruction entering an empty pipeline, which the abstraction
   function expresses with the bubble/valid assumptions, exactly as the
   paper handles it with [instruction_valid].

   CMOV needs the old destination value, so the register file has a third
   read port; all three stage-2 read ports forward from stage-3 write-back.

   Control holes (decoded in stage 2):
     imm_sel alu_op asel bsel reg_write wb_sel mem_read mem_write jump
     jalr_sel                                                      *)

open Hdl.Builder

let features =
  { Riscv_common.zbkb = true; Riscv_common.zbkc = false; Riscv_common.cmov = true;
    Riscv_common.m = false }

let sketch () =
  let c = create "crypto_core" in
  let pc = register c "pc" 32 in
  let fetch_pc = register c "fetch_pc" 32 in
  let i_mem = memory c "i_mem" ~addr_width:30 ~data_width:32 in
  let d_mem = memory c "d_mem" ~addr_width:30 ~data_width:32 in
  let rf = memory c "rf" ~addr_width:5 ~data_width:32 in
  (* stage 1 -> 2 registers *)
  let f_instr = register c "f_instr" 32 in
  let f_pc = register c "f_pc" 32 in
  let f_valid = register c "f_valid" 1 in
  (* stage 2 -> 3 registers *)
  let p_alu_out = register c "p_alu_out" 32 in
  let p_rd = register c "p_rd" 5 in
  let p_store_data = register c "p_store_data" 32 in
  let p_pc4 = register c "p_pc4" 32 in
  let p_reg_write = register c "p_reg_write" 1 in
  let p_wb_sel = register c "p_wb_sel" 2 in
  let p_mem_read = register c "p_mem_read" 1 in
  let p_mem_write = register c "p_mem_write" 1 in
  let p_valid = register c "p_valid" 1 in
  (* ---- stage 3: memory + write back *)
  let s3_en = wire c "s3_en" p_valid in
  let mem_word = wire c "mem_word" (read d_mem (bits ~high:31 ~low:2 p_alu_out)) in
  let load_result = wire c "load_result" (mux p_mem_read mem_word (const 32 0)) in
  write c d_mem ~addr:(bits ~high:31 ~low:2 p_alu_out) ~data:p_store_data
    ~enable:(p_mem_write &: s3_en);
  let wb =
    wire c "wb" (select p_wb_sel [ (0, p_alu_out); (1, load_result) ] p_pc4)
  in
  let wb_en = wire c "wb_en" (p_reg_write &: s3_en &: (p_rd <>: const 5 0)) in
  write c rf ~addr:p_rd ~data:wb ~enable:wb_en;
  (* ---- stage 2: decode + execute *)
  let d = Riscv_common.decode_fields c ~suffix:"" f_instr in
  let deps =
    [ d.Riscv_common.opcode; d.Riscv_common.funct3; d.Riscv_common.funct7;
      d.Riscv_common.rs2slot ]
  in
  let h name w = hole c name w ~deps in
  let imm_sel = h "imm_sel" 3 in
  let alu_op = h "alu_op" 5 in
  let asel = h "asel" 2 in
  let bsel = h "bsel" 1 in
  let reg_write = h "reg_write" 1 in
  let wb_sel = h "wb_sel" 2 in
  let mem_read = h "mem_read" 1 in
  let mem_write = h "mem_write" 1 in
  let jump = h "jump" 1 in
  let jalr_sel = h "jalr_sel" 1 in
  let fwd name src =
    wire c name (mux (wb_en &: (p_rd ==: src)) wb (read rf src))
  in
  let rs1_val = fwd "rs1_val" d.Riscv_common.rs1 in
  let rs2_val = fwd "rs2_val" d.Riscv_common.rs2 in
  let rd_val = fwd "rd_val" d.Riscv_common.rd in
  let imm = wire c "imm" (Riscv_common.immediate d imm_sel) in
  let alu_a = wire c "alu_a" (select asel [ (0, rs1_val); (1, f_pc) ] (const 32 0)) in
  let alu_b = wire c "alu_b" (mux bsel imm rs2_val) in
  let alu_out =
    wire c "alu_out" (Riscv_common.alu ~features alu_op alu_a alu_b ~old_rd:rd_val ())
  in
  let s2_en = wire c "instruction_valid" f_valid in
  let taken = wire c "taken" (jump &: s2_en) in
  let target =
    wire c "target" (mux jalr_sel ((rs1_val +: imm) &: bnot (const 32 1)) (f_pc +: imm))
  in
  let pc4 = wire c "pc4" (f_pc +: const 32 4) in
  let next_pc = wire c "next_pc" (mux taken target pc4) in
  set_register c pc (mux s2_en next_pc pc);
  (* pipeline advance into stage 3 *)
  set_register c p_alu_out alu_out;
  set_register c p_rd d.Riscv_common.rd;
  set_register c p_store_data rs2_val;
  set_register c p_pc4 pc4;
  set_register c p_reg_write reg_write;
  set_register c p_wb_sel wb_sel;
  set_register c p_mem_read mem_read;
  set_register c p_mem_write mem_write;
  set_register c p_valid s2_en;
  (* ---- stage 1: fetch (redirected by a stage-2 jump, which also kills
     the instruction being fetched) *)
  let fetch_addr = wire c "fetch_addr" (bits ~high:31 ~low:2 fetch_pc) in
  let fetched = wire c "fetched" (read i_mem fetch_addr) in
  set_register c f_instr fetched;
  set_register c f_pc fetch_pc;
  set_register c f_valid (bnot taken);
  set_register c fetch_pc (mux taken target (fetch_pc +: const 32 4));
  (* assumption wires *)
  let _ = wire c "bubble2" (bnot f_valid) in
  let _ = wire c "bubble3" (bnot p_valid) in
  let _ = wire c "fetch_in_sync" (fetch_pc ==: pc) in
  output c "pc_out" pc;
  finalize c

let abstraction () =
  Ila.Absfun.make ~cycles:3
    ~assumes:[ ("bubble2", 1); ("bubble3", 1); ("fetch_in_sync", 1) ]
    [ Ila.Absfun.mapping ~spec:"pc" ~dp:"pc" ~ty:Ila.Absfun.Dregister ~reads:[ 1 ]
        ~writes:[ 2 ] ();
      Ila.Absfun.mapping ~spec:"GPR" ~dp:"rf" ~ty:Ila.Absfun.Dmemory ~reads:[ 2 ]
        ~writes:[ 3 ] ();
      Ila.Absfun.mapping ~spec:"mem" ~port:"fetch" ~dp:"i_mem" ~ty:Ila.Absfun.Dmemory
        ~addr_via:"fetch_addr" ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"mem" ~dp:"d_mem" ~ty:Ila.Absfun.Dmemory ~reads:[ 3 ]
        ~writes:[ 3 ] () ]

let problem () =
  { Synth.Engine.design = sketch ();
    spec = Isa.Rv_spec.cmov_spec ();
    af = abstraction () }

(* Reference control for the CMOV ISA. *)
let reference_bindings () =
  let v n = Oyster.Ast.Var n in
  let cst w n = Oyster.Ast.Const (Bitvec.of_int ~width:w n) in
  let eq a b = Oyster.Ast.Binop (Oyster.Ast.Eq, a, b) in
  let ( &&& ) a b = Oyster.Ast.Binop (Oyster.Ast.And, a, b) in
  let ( ||| ) a b = Oyster.Ast.Binop (Oyster.Ast.Or, a, b) in
  let ite c a b = Oyster.Ast.Ite (c, a, b) in
  let opcode = v "opcode" and funct3 = v "funct3" and funct7 = v "funct7" in
  let rs2slot = v "rs2slot" in
  let is_op k = eq opcode (cst 7 k) in
  let is_f3 k = eq funct3 (cst 3 k) in
  let is_f7 k = eq funct7 (cst 7 k) in
  let lui = is_op Isa.Rv32.op_lui in
  let jal = is_op Isa.Rv32.op_jal and jalr = is_op Isa.Rv32.op_jalr in
  let load = is_op Isa.Rv32.op_load and store = is_op Isa.Rv32.op_store in
  let opimm = is_op Isa.Rv32.op_imm and opreg = is_op Isa.Rv32.op_reg in
  let chain cases default =
    List.fold_right (fun (cond, value) acc -> ite cond value acc) cases default
  in
  let r_alu =
    chain
      [ (is_f7 0x00 &&& is_f3 0, cst 5 0);
        (is_f7 0x20 &&& is_f3 0, cst 5 1);
        (is_f7 0x00 &&& is_f3 1, cst 5 2);
        (is_f3 2, cst 5 3);
        (is_f3 3, cst 5 4);
        (is_f7 0x00 &&& is_f3 4, cst 5 5);
        (is_f7 0x00 &&& is_f3 5, cst 5 6);
        (is_f7 0x20 &&& is_f3 5, cst 5 7);
        (is_f7 0x00 &&& is_f3 6, cst 5 8);
        (is_f7 0x00 &&& is_f3 7, cst 5 9);
        (is_f7 0x30 &&& is_f3 1, cst 5 10);
        (is_f7 0x30 &&& is_f3 5, cst 5 11);
        (is_f7 0x20 &&& is_f3 7, cst 5 12);
        (is_f7 0x20 &&& is_f3 6, cst 5 13);
        (is_f7 0x20 &&& is_f3 4, cst 5 14);
        (is_f7 0x04 &&& is_f3 4, cst 5 15);
        (is_f7 0x04 &&& is_f3 7, cst 5 16);
        (is_f7 0x07 &&& is_f3 5, cst 5 23)  (* cmov *) ]
      (cst 5 0)
  in
  let i_alu =
    chain
      [ (is_f3 1 &&& is_f7 0x00, cst 5 2);
        (is_f3 5 &&& is_f7 0x00, cst 5 6);
        (is_f3 5 &&& is_f7 0x20, cst 5 7);
        (is_f3 5 &&& is_f7 0x30, cst 5 11);
        (is_f3 5 &&& is_f7 0x34 &&& eq rs2slot (cst 5 24), cst 5 17);
        (is_f3 5 &&& is_f7 0x34 &&& eq rs2slot (cst 5 7), cst 5 18);
        (is_f3 1 &&& is_f7 0x04, cst 5 19);
        (is_f3 5 &&& is_f7 0x04, cst 5 20);
        (is_f3 0, cst 5 0); (is_f3 2, cst 5 3); (is_f3 3, cst 5 4);
        (is_f3 4, cst 5 5); (is_f3 6, cst 5 8); (is_f3 7, cst 5 9) ]
      (cst 5 0)
  in
  [ ("imm_sel",
     ite store (cst 3 1) (ite lui (cst 3 3) (ite jal (cst 3 4) (cst 3 0))));
    ("alu_op", ite opreg r_alu (ite opimm i_alu (cst 5 0)));
    ("asel", ite lui (cst 2 2) (cst 2 0));
    ("bsel", ite opreg (cst 1 0) (cst 1 1));
    ("reg_write", ite store (cst 1 0) (cst 1 1));
    ("wb_sel", ite load (cst 2 1) (ite (jal ||| jalr) (cst 2 2) (cst 2 0)));
    ("mem_read", ite load (cst 1 1) (cst 1 0));
    ("mem_write", ite store (cst 1 1) (cst 1 0));
    ("jump", ite (jal ||| jalr) (cst 1 1) (cst 1 0));
    ("jalr_sel", ite jalr (cst 1 1) (cst 1 0)) ]

let reference_design () =
  let d = Oyster.Ast.fill_holes (sketch ()) (reference_bindings ()) in
  ignore (Oyster.Typecheck.check d);
  d
