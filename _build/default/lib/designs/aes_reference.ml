(* Byte-array reference implementation of AES-128 encryption (FIPS-197),
   independent of the hardware-oriented 128-bit-vector formulation in
   Aes_logic: used as the oracle for the accelerator case study.  State is
   the standard 4x4 byte matrix in column-major order. *)

let sub_bytes st = Array.map (fun b -> Aes_tables.sbox.(b)) st

let shift_rows st =
  (* byte index = row + 4*col *)
  Array.init 16 (fun i ->
      let row = i mod 4 and col = i / 4 in
      st.(row + (4 * ((col + row) mod 4))))

let mix_columns st =
  let out = Array.make 16 0 in
  for col = 0 to 3 do
    let b i = st.((4 * col) + i) in
    let m = Aes_tables.gf_mul in
    out.(4 * col) <- m 2 (b 0) lxor m 3 (b 1) lxor b 2 lxor b 3;
    out.((4 * col) + 1) <- b 0 lxor m 2 (b 1) lxor m 3 (b 2) lxor b 3;
    out.((4 * col) + 2) <- b 0 lxor b 1 lxor m 2 (b 2) lxor m 3 (b 3);
    out.((4 * col) + 3) <- m 3 (b 0) lxor b 1 lxor b 2 lxor m 2 (b 3)
  done;
  out

let add_round_key st key = Array.init 16 (fun i -> st.(i) lxor key.(i))

(* key schedule: 11 round keys of 16 bytes, from a 16-byte key *)
let expand_key (key : int array) : int array array =
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- key.((4 * i) + j)
    done
  done;
  for i = 4 to 43 do
    let temp = Array.copy w.(i - 1) in
    let temp =
      if i mod 4 = 0 then begin
        (* RotWord then SubWord then rcon *)
        let rotated = [| temp.(1); temp.(2); temp.(3); temp.(0) |] in
        let subbed = Array.map (fun b -> Aes_tables.sbox.(b)) rotated in
        subbed.(0) <- subbed.(0) lxor Aes_tables.rcon.(i / 4);
        subbed
      end
      else temp
    in
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor temp.(j)
    done
  done;
  Array.init 11 (fun r ->
      Array.init 16 (fun i -> w.((4 * r) + (i / 4)).(i mod 4)))

let encrypt_block (key : int array) (plaintext : int array) : int array =
  let keys = expand_key key in
  let st = ref (add_round_key plaintext keys.(0)) in
  for r = 1 to 9 do
    st := add_round_key (mix_columns (shift_rows (sub_bytes !st))) keys.(r)
  done;
  add_round_key (shift_rows (sub_bytes !st)) keys.(10)

(* {1 128-bit vector packing}

   Convention shared with Aes_logic: byte 0 of the block (the first byte of
   the FIPS-197 input sequence) occupies the most significant byte of the
   128-bit vector. *)

let to_bytes (v : Bitvec.t) : int array =
  Array.init 16 (fun i ->
      Bitvec.to_int_exn (Bitvec.extract ~high:(127 - (8 * i)) ~low:(120 - (8 * i)) v))

let of_bytes (bs : int array) : Bitvec.t =
  Array.fold_left
    (fun acc b -> Bitvec.concat acc (Bitvec.of_int ~width:8 b))
    (Bitvec.of_int ~width:8 bs.(0))
    (Array.sub bs 1 15)

let encrypt (key : Bitvec.t) (plaintext : Bitvec.t) : Bitvec.t =
  of_bytes (encrypt_block (to_bytes key) (to_bytes plaintext))
