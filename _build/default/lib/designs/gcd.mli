(** A GCD accelerator: a second FSM-style case study (beyond AES)
    demonstrating that the technique carries to accelerators in other
    domains (paper §4.3), with *data-dependent* instruction decode (§2.1):
    STEP_A fires when a > b, STEP_B when b > a, DONE when they meet, and an
    explicit IDLE instruction makes the machine's behaviour total.

    The FSM value is a [Per_instruction] hole over the comparison wires;
    the four active-branch encodings are [Shared] 3-bit holes, and the
    synthesizer must place IDLE's state outside all of them. *)

val operand_width : int

val spec : unit -> Ila.Spec.t
val sketch : unit -> Oyster.Ast.design
val abstraction : unit -> Ila.Absfun.t
val problem : unit -> Synth.Engine.problem
val reference_bindings : unit -> (string * Oyster.Ast.expr) list
val reference_design : unit -> Oyster.Ast.design

val run :
  Oyster.Ast.design -> a:int -> b:int -> max_cycles:int -> (int * int) option
(** Starts a computation and steps until ready; [Some (gcd, cycles)].
    Operands must be positive (the subtractive algorithm does not
    terminate on zero). *)
