(* Shared pieces of the RISC-V datapath sketches (paper §4.1/§4.2): the
   decode-field wires, the immediate generator, the ALU (parameterized by
   ISA variant), sub-word load/store logic, and the branch comparator.

   ALU operation encoding (the [alu_op] hole selects one):
      0 add   1 sub   2 sll   3 slt    4 sltu   5 xor   6 srl   7 sra
      8 or    9 and  10 rol  11 ror   12 andn  13 orn  14 xnor
     15 pack 16 packh 17 rev8 18 brev8 19 zip  20 unzip
     21 clmul 22 clmulh 23 cmov (crypto core only)

   Branch comparator encoding mirrors the branch funct3 values:
      0 eq  1 ne  4 lt  5 ge  6 ltu  7 geu *)

open Hdl.Builder

type decoded = {
  instruction : signal;
  opcode : signal;
  funct3 : signal;
  funct7 : signal;
  rs2slot : signal;
  rd : signal;
  rs1 : signal;
  rs2 : signal;
  imm_i : signal;
  imm_s : signal;
  imm_b : signal;
  imm_u : signal;
  imm_j : signal;
}

(* Decode-field wires for an instruction word signal. *)
let decode_fields c ?(suffix = "") instruction =
  let n base = base ^ suffix in
  let instruction = wire c (n "instruction") instruction in
  {
    instruction;
    opcode = wire c (n "opcode") (bits ~high:6 ~low:0 instruction);
    funct3 = wire c (n "funct3") (bits ~high:14 ~low:12 instruction);
    funct7 = wire c (n "funct7") (bits ~high:31 ~low:25 instruction);
    rs2slot = wire c (n "rs2slot") (bits ~high:24 ~low:20 instruction);
    rd = wire c (n "rd") (bits ~high:11 ~low:7 instruction);
    rs1 = wire c (n "rs1") (bits ~high:19 ~low:15 instruction);
    rs2 = wire c (n "rs2") (bits ~high:24 ~low:20 instruction);
    imm_i = wire c (n "imm_i") (sext (bits ~high:31 ~low:20 instruction) 32);
    imm_s =
      wire c (n "imm_s")
        (sext (concat (bits ~high:31 ~low:25 instruction) (bits ~high:11 ~low:7 instruction)) 32);
    imm_b =
      wire c (n "imm_b")
        (sext
           (concat_all
              [ bit 31 instruction; bit 7 instruction;
                bits ~high:30 ~low:25 instruction; bits ~high:11 ~low:8 instruction;
                const 1 0 ])
           32);
    imm_u =
      wire c (n "imm_u") (concat (bits ~high:31 ~low:12 instruction) (const 12 0));
    imm_j =
      wire c (n "imm_j")
        (sext
           (concat_all
              [ bit 31 instruction; bits ~high:19 ~low:12 instruction;
                bit 20 instruction; bits ~high:30 ~low:21 instruction; const 1 0 ])
           32);
  }

(* Immediate selection (the [imm_sel] hole): 0 I, 1 S, 2 B, 3 U, 4 J. *)
let immediate d imm_sel =
  select imm_sel
    [ (0, d.imm_i); (1, d.imm_s); (2, d.imm_b); (3, d.imm_u); (4, d.imm_j) ]
    d.imm_i

(* {1 Bit permutations (Zbkb)} *)

let byte k x = bits ~high:((8 * k) + 7) ~low:(8 * k) x

let rev8 x = concat_all [ byte 0 x; byte 1 x; byte 2 x; byte 3 x ]

let brev8 x =
  concat_all
    (List.init 32 (fun j ->
         let i = 31 - j in
         (* output bit i comes from input bit (i/8)*8 + 7 - i mod 8 *)
         bit (((i / 8) * 8) + (7 - (i mod 8))) x))

let zip x =
  concat_all
    (List.init 32 (fun j ->
         let i = 31 - j in
         if i mod 2 = 0 then bit (i / 2) x else bit (16 + (i / 2)) x))

let unzip x =
  concat_all
    (List.init 32 (fun j ->
         let i = 31 - j in
         if i < 16 then bit (2 * i) x else bit ((2 * (i - 16)) + 1) x))

let pack a b = concat (bits ~high:15 ~low:0 b) (bits ~high:15 ~low:0 a)

let packh a b =
  zext (concat (bits ~high:7 ~low:0 b) (bits ~high:7 ~low:0 a)) 32

(* {1 The ALU} *)

type alu_features = { zbkb : bool; zbkc : bool; cmov : bool; m : bool }

let features_of_variant = function
  | Isa.Rv32.RV32I -> { zbkb = false; zbkc = false; cmov = false; m = false }
  | Isa.Rv32.RV32I_Zbkb -> { zbkb = true; zbkc = false; cmov = false; m = false }
  | Isa.Rv32.RV32I_Zbkc -> { zbkb = true; zbkc = true; cmov = false; m = false }
  | Isa.Rv32.RV32I_M -> { zbkb = false; zbkc = false; cmov = false; m = true }

(* [old_rd] is the third operand for CMOV (crypto core only); [extra]
   supplies additional (select value, implementation) operations for
   datapath iteration (see examples/custom_instruction.ml). *)
let alu ~features ?(extra = []) alu_op a bsig ?(old_rd = const 32 0) () =
  let sh = zext (bits ~high:4 ~low:0 bsig) 32 in
  let base_ops =
    [ (0, a +: bsig);
      (1, a -: bsig);
      (2, a <<: sh);
      (3, zext (a <+ bsig) 32);
      (4, zext (a <: bsig) 32);
      (5, a ^: bsig);
      (6, a >>: sh);
      (7, a >>+ sh);
      (8, a |: bsig);
      (9, a &: bsig)
    ]
  in
  let zbkb_ops =
    if features.zbkb then
      [ (10, rol a sh);
        (11, ror a sh);
        (12, a &: bnot bsig);
        (13, a |: bnot bsig);
        (14, bnot (a ^: bsig));
        (15, pack a bsig);
        (16, packh a bsig);
        (17, rev8 a);
        (18, brev8 a);
        (19, zip a);
        (20, unzip a)
      ]
    else []
  in
  let zbkc_ops =
    if features.zbkc then [ (21, clmul a bsig); (22, clmulh a bsig) ] else []
  in
  let cmov_ops =
    if features.cmov then
      [ (23, mux (bsig <>: const 32 0) a old_rd) ]
    else []
  in
  let m_ops =
    if features.m then begin
      let high signed_a signed_b =
        let ext s v = if s then sext v 64 else zext v 64 in
        bits ~high:63 ~low:32 (ext signed_a a *: ext signed_b bsig)
      in
      [ (24, a *: bsig);
        (25, high true true);
        (26, high true false);
        (27, high false false);
        (28, sdiv a bsig);
        (29, udiv a bsig);
        (30, srem a bsig);
        (31, urem a bsig) ]
    end
    else []
  in
  let extra_ops = List.map (fun (k, f) -> (k, f a bsig)) extra in
  select alu_op (base_ops @ zbkb_ops @ zbkc_ops @ cmov_ops @ m_ops @ extra_ops)
    (a +: bsig)

(* {1 Branch comparator} *)

let branch_compare branch_op a b =
  select branch_op
    [ (0, a ==: b); (1, a <>: b); (4, a <+ b); (5, a >=+ b); (6, a <: b); (7, a >=: b) ]
    fls

(* {1 Sub-word memory access} *)

let load_value ~mem_word ~offset ~mask_mode ~sign_ext =
  (* mask_mode: 0 byte, 1 half, 2 word *)
  let sel_byte =
    select (bits ~high:1 ~low:0 offset)
      [ (0, byte 0 mem_word); (1, byte 1 mem_word); (2, byte 2 mem_word) ]
      (byte 3 mem_word)
  in
  let sel_half =
    mux (bit 1 offset) (bits ~high:31 ~low:16 mem_word) (bits ~high:15 ~low:0 mem_word)
  in
  let ext v = mux sign_ext (sext v 32) (zext v 32) in
  select mask_mode [ (0, ext sel_byte); (1, ext sel_half) ] mem_word

let store_value ~mem_word ~offset ~mask_mode ~data =
  let b0 = bits ~high:7 ~low:0 data in
  let byte_insert =
    select (bits ~high:1 ~low:0 offset)
      [ (0, concat (bits ~high:31 ~low:8 mem_word) b0);
        (1,
         concat_all [ bits ~high:31 ~low:16 mem_word; b0; bits ~high:7 ~low:0 mem_word ]);
        (2,
         concat_all [ bits ~high:31 ~low:24 mem_word; b0; bits ~high:15 ~low:0 mem_word ])
      ]
      (concat b0 (bits ~high:23 ~low:0 mem_word))
  in
  let h0 = bits ~high:15 ~low:0 data in
  let half_insert =
    mux (bit 1 offset)
      (concat h0 (bits ~high:15 ~low:0 mem_word))
      (concat (bits ~high:31 ~low:16 mem_word) h0)
  in
  select mask_mode [ (0, byte_insert); (1, half_insert) ] data
