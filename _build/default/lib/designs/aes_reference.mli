(** Byte-matrix reference implementation of AES-128 encryption (FIPS-197),
    independent of the hardware-oriented 128-bit formulation in
    {!Aes_logic} — the oracle for the accelerator case study. *)

val sub_bytes : int array -> int array
val shift_rows : int array -> int array
val mix_columns : int array -> int array
val add_round_key : int array -> int array -> int array
val expand_key : int array -> int array array
val encrypt_block : int array -> int array -> int array

val to_bytes : Bitvec.t -> int array
(** Block byte 0 (the first input byte of FIPS-197) is the most significant
    byte of the 128-bit vector; the same convention as {!Aes_logic}. *)

val of_bytes : int array -> Bitvec.t
val encrypt : Bitvec.t -> Bitvec.t -> Bitvec.t
