(* AES constants, generated from first principles (GF(2^8) arithmetic with
   the AES polynomial x^8+x^4+x^3+x+1) rather than transcribed, to rule out
   table typos.  Spot values are pinned by unit tests against FIPS-197. *)

let xtime b =
  let t = b lsl 1 in
  if t land 0x100 <> 0 then t lxor 0x11b else t

let gf_mul a b =
  let acc = ref 0 in
  let a = ref a in
  for i = 0 to 7 do
    if b land (1 lsl i) <> 0 then acc := !acc lxor !a;
    a := xtime !a
  done;
  !acc

(* multiplicative inverse via exponentiation: x^254 = x^-1 in GF(2^8) *)
let gf_inv a =
  if a = 0 then 0
  else begin
    let rec pow acc base n =
      if n = 0 then acc
      else pow (if n land 1 = 1 then gf_mul acc base else acc) (gf_mul base base) (n lsr 1)
    in
    pow 1 a 254
  end

let sbox_entry a =
  let x = gf_inv a in
  let bit v i = (v lsr i) land 1 in
  let out = ref 0 in
  for i = 0 to 7 do
    let b =
      bit x i lxor bit x ((i + 4) mod 8) lxor bit x ((i + 5) mod 8)
      lxor bit x ((i + 6) mod 8) lxor bit x ((i + 7) mod 8)
      lxor bit 0x63 i
    in
    out := !out lor (b lsl i)
  done;
  !out

let sbox = Array.init 256 sbox_entry

let sbox_bv = Array.map (fun v -> Bitvec.of_int ~width:8 v) sbox

(* round constants for AES-128 key expansion, RCON.(r) for r = 1..10 *)
let rcon =
  let a = Array.make 11 0 in
  a.(1) <- 1;
  for r = 2 to 10 do
    a.(r) <- xtime a.(r - 1)
  done;
  a
