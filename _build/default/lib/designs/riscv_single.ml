(* Single-cycle embedded-class RISC-V core sketch (paper §4.1.1).

   Control points left as holes, each a function of the decoded fields
   (opcode, funct3, funct7, rs2slot):

     imm_sel   3  immediate format select (I/S/B/U/J)
     alu_op    5  ALU operation (see Riscv_common)
     asel      2  ALU operand A: 0 rs1, 1 pc, 2 zero
     bsel      1  ALU operand B: 0 rs2, 1 immediate
     reg_write 1  register-file write enable
     wb_sel    2  write-back value: 0 alu, 1 load result, 2 pc+4
     mem_read  1  data-memory read strobe (gates the load path)
     mem_write 1  data-memory write enable
     mask_mode 2  access size: 0 byte, 1 half, 2 word
     mem_sign_ext 1  sign-extend sub-word loads
     branch_en 1  conditional branch
     branch_op 3  comparator operation (funct3 encoding)
     jump      1  unconditional jump (JAL/JALR)
     jalr_sel  1  branch/jump target base: 0 pc+imm, 1 (rs1+imm)&~1

   The abstraction function is the paper's: everything reads and writes at
   time step 1, cycles: 1. *)

open Hdl.Builder

let holes_list =
  [ ("imm_sel", 3); ("alu_op", 5); ("asel", 2); ("bsel", 1); ("reg_write", 1);
    ("wb_sel", 2); ("mem_read", 1); ("mem_write", 1); ("mask_mode", 2);
    ("mem_sign_ext", 1); ("branch_en", 1); ("branch_op", 3); ("jump", 1);
    ("jalr_sel", 1) ]

let variant_tag = function
  | Isa.Rv32.RV32I -> "rv32i"
  | Isa.Rv32.RV32I_Zbkb -> "rv32i_zbkb"
  | Isa.Rv32.RV32I_Zbkc -> "rv32i_zbkc"
  | Isa.Rv32.RV32I_M -> "rv32i_m"

let sketch ?(extra_alu_ops = []) variant =
  let c = create ("rv32_single_" ^ variant_tag variant) in
  let pc = register c "pc" 32 in
  let i_mem = memory c "i_mem" ~addr_width:30 ~data_width:32 in
  let d_mem = memory c "d_mem" ~addr_width:30 ~data_width:32 in
  let rf = memory c "rf" ~addr_width:5 ~data_width:32 in
  let d = Riscv_common.decode_fields c (read i_mem (bits ~high:31 ~low:2 pc)) in
  let deps = [ d.Riscv_common.opcode; d.Riscv_common.funct3; d.Riscv_common.funct7; d.Riscv_common.rs2slot ] in
  let h name w = hole c name w ~deps in
  let imm_sel = h "imm_sel" 3 in
  let alu_op = h "alu_op" 5 in
  let asel = h "asel" 2 in
  let bsel = h "bsel" 1 in
  let reg_write = h "reg_write" 1 in
  let wb_sel = h "wb_sel" 2 in
  let mem_read = h "mem_read" 1 in
  let mem_write = h "mem_write" 1 in
  let mask_mode = h "mask_mode" 2 in
  let mem_sign_ext = h "mem_sign_ext" 1 in
  let branch_en = h "branch_en" 1 in
  let branch_op = h "branch_op" 3 in
  let jump = h "jump" 1 in
  let jalr_sel = h "jalr_sel" 1 in
  (* operand fetch *)
  let rs1_val = wire c "rs1_val" (read rf d.Riscv_common.rs1) in
  let rs2_val = wire c "rs2_val" (read rf d.Riscv_common.rs2) in
  let imm = wire c "imm" (Riscv_common.immediate d imm_sel) in
  (* ALU *)
  let alu_a = wire c "alu_a" (select asel [ (0, rs1_val); (1, pc) ] (const 32 0)) in
  let alu_b = wire c "alu_b" (mux bsel imm rs2_val) in
  let features = Riscv_common.features_of_variant variant in
  let alu_out =
    wire c "alu_out"
      (Riscv_common.alu ~features ~extra:extra_alu_ops alu_op alu_a alu_b ())
  in
  (* data memory *)
  let mem_word = wire c "mem_word" (read d_mem (bits ~high:31 ~low:2 alu_out)) in
  let load_raw =
    Riscv_common.load_value ~mem_word ~offset:alu_out ~mask_mode
      ~sign_ext:mem_sign_ext
  in
  let load_result = wire c "load_result" (mux mem_read load_raw (const 32 0)) in
  let store_word =
    wire c "store_word"
      (Riscv_common.store_value ~mem_word ~offset:alu_out ~mask_mode ~data:rs2_val)
  in
  write c d_mem ~addr:(bits ~high:31 ~low:2 alu_out) ~data:store_word
    ~enable:mem_write;
  (* branches and jumps *)
  let cmp = wire c "cmp" (Riscv_common.branch_compare branch_op rs1_val rs2_val) in
  let taken = wire c "taken" (jump |: (branch_en &: cmp)) in
  let target =
    wire c "target"
      (mux jalr_sel
         ((rs1_val +: imm) &: bnot (const 32 1))
         (pc +: imm))
  in
  let pc4 = wire c "pc4" (pc +: const 32 4) in
  set_register c pc (mux taken target pc4);
  (* write back *)
  let wb = wire c "wb" (select wb_sel [ (0, alu_out); (1, load_result) ] pc4) in
  write c rf ~addr:d.Riscv_common.rd ~data:wb
    ~enable:(reg_write &: (d.Riscv_common.rd <>: const 5 0));
  output c "pc_out" pc;
  finalize c

let abstraction () =
  Ila.Absfun.make ~cycles:1
    [ Ila.Absfun.mapping ~spec:"pc" ~dp:"pc" ~ty:Ila.Absfun.Dregister ~reads:[ 1 ]
        ~writes:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"GPR" ~dp:"rf" ~ty:Ila.Absfun.Dmemory ~reads:[ 1 ]
        ~writes:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"mem" ~port:"fetch" ~dp:"i_mem" ~ty:Ila.Absfun.Dmemory
        ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"mem" ~dp:"d_mem" ~ty:Ila.Absfun.Dmemory ~reads:[ 1 ]
        ~writes:[ 1 ] () ]

let problem variant =
  { Synth.Engine.design = sketch variant;
    spec = Isa.Rv_spec.spec variant;
    af = abstraction () }

(* {1 Hand-written reference control}

   The baseline decoder an experienced designer would write, used for the
   Table 2 size comparison and for co-simulation cross-checks. *)

let reference_bindings variant =
  let v n = Oyster.Ast.Var n in
  let cst w n = Oyster.Ast.Const (Bitvec.of_int ~width:w n) in
  let eq a b = Oyster.Ast.Binop (Oyster.Ast.Eq, a, b) in
  let ( &&& ) a b = Oyster.Ast.Binop (Oyster.Ast.And, a, b) in
  let ( ||| ) a b = Oyster.Ast.Binop (Oyster.Ast.Or, a, b) in
  let ite c a b = Oyster.Ast.Ite (c, a, b) in
  let opcode = v "opcode" and funct3 = v "funct3" and funct7 = v "funct7" in
  let rs2slot = v "rs2slot" in
  let is_op k = eq opcode (cst 7 k) in
  let is_f3 k = eq funct3 (cst 3 k) in
  let is_f7 k = eq funct7 (cst 7 k) in
  let lui = is_op Isa.Rv32.op_lui and auipc = is_op Isa.Rv32.op_auipc in
  let jal = is_op Isa.Rv32.op_jal and jalr = is_op Isa.Rv32.op_jalr in
  let branch = is_op Isa.Rv32.op_branch in
  let load = is_op Isa.Rv32.op_load and store = is_op Isa.Rv32.op_store in
  let opimm = is_op Isa.Rv32.op_imm and opreg = is_op Isa.Rv32.op_reg in
  let features = Riscv_common.features_of_variant variant in
  let chain cases default =
    List.fold_right (fun (cond, value) acc -> ite cond value acc) cases default
  in
  (* ALU operation for the register-register group (funct7 always decodes). *)
  let r_alu =
    let base =
      [ (is_f7 0x00 &&& is_f3 0, cst 5 0);  (* add *)
        (is_f7 0x20 &&& is_f3 0, cst 5 1);  (* sub *)
        (is_f3 1 &&& is_f7 0x00, cst 5 2);  (* sll *)
        (is_f3 2 &&& is_f7 0x00, cst 5 3);  (* slt *)
        (is_f3 3 &&& is_f7 0x00, cst 5 4);  (* sltu *)
        (is_f7 0x00 &&& is_f3 4, cst 5 5);  (* xor *)
        (is_f7 0x00 &&& is_f3 5, cst 5 6);  (* srl *)
        (is_f7 0x20 &&& is_f3 5, cst 5 7);  (* sra *)
        (is_f7 0x00 &&& is_f3 6, cst 5 8);  (* or *)
        (is_f7 0x00 &&& is_f3 7, cst 5 9)   (* and *) ]
    in
    let zbkb =
      if not features.Riscv_common.zbkb then []
      else
        [ (is_f7 0x30 &&& is_f3 1, cst 5 10);  (* rol *)
          (is_f7 0x30 &&& is_f3 5, cst 5 11);  (* ror *)
          (is_f7 0x20 &&& is_f3 7, cst 5 12);  (* andn *)
          (is_f7 0x20 &&& is_f3 6, cst 5 13);  (* orn *)
          (is_f7 0x20 &&& is_f3 4, cst 5 14);  (* xnor *)
          (is_f7 0x04 &&& is_f3 4, cst 5 15);  (* pack *)
          (is_f7 0x04 &&& is_f3 7, cst 5 16)   (* packh *) ]
    in
    let zbkc =
      if not features.Riscv_common.zbkc then []
      else
        [ (is_f7 0x05 &&& is_f3 1, cst 5 21);  (* clmul *)
          (is_f7 0x05 &&& is_f3 3, cst 5 22)   (* clmulh *) ]
    in
    let m_rows =
      if not features.Riscv_common.m then []
      else
        List.init 8 (fun f3 -> (is_f7 0x01 &&& is_f3 f3, cst 5 (24 + f3)))
    in
    chain (base @ zbkb @ zbkc @ m_rows) (cst 5 0)
  in
  (* ALU operation for the immediate group: funct7 only decodes when the
     funct3 row carries a shift/rotate/permutation. *)
  let i_alu =
    let shifts =
      [ (is_f3 1 &&& is_f7 0x00, cst 5 2);  (* slli *)
        (is_f3 5 &&& is_f7 0x00, cst 5 6);  (* srli *)
        (is_f3 5 &&& is_f7 0x20, cst 5 7)   (* srai *) ]
    in
    let zbkb =
      if not features.Riscv_common.zbkb then []
      else
        [ (is_f3 5 &&& is_f7 0x30, cst 5 11);  (* rori *)
          (is_f3 5 &&& is_f7 0x34 &&& eq rs2slot (cst 5 24), cst 5 17);  (* rev8 *)
          (is_f3 5 &&& is_f7 0x34 &&& eq rs2slot (cst 5 7), cst 5 18);  (* brev8 *)
          (is_f3 1 &&& is_f7 0x04, cst 5 19);  (* zip *)
          (is_f3 5 &&& is_f7 0x04, cst 5 20)   (* unzip *) ]
    in
    chain
      (shifts @ zbkb
      @ [ (is_f3 0, cst 5 0); (is_f3 2, cst 5 3); (is_f3 3, cst 5 4);
          (is_f3 4, cst 5 5); (is_f3 6, cst 5 8); (is_f3 7, cst 5 9) ])
      (cst 5 0)
  in
  [ ("imm_sel",
     ite store (cst 3 1)
       (ite branch (cst 3 2) (ite (lui ||| auipc) (cst 3 3) (ite jal (cst 3 4) (cst 3 0)))));
    ("alu_op",
     ite opreg r_alu (ite opimm i_alu (cst 5 0))
     (* loads/stores/lui/auipc/jumps: add *));
    ("asel", ite lui (cst 2 2) (ite auipc (cst 2 1) (cst 2 0)));
    ("bsel", ite opreg (cst 1 0) (cst 1 1));
    ("reg_write",
     ite (branch ||| store) (cst 1 0) (cst 1 1));
    ("wb_sel", ite load (cst 2 1) (ite (jal ||| jalr) (cst 2 2) (cst 2 0)));
    ("mem_read", ite load (cst 1 1) (cst 1 0));
    ("mem_write", ite store (cst 1 1) (cst 1 0));
    ("mask_mode",
     ite ((load ||| store) &&& (is_f3 0 ||| is_f3 4)) (cst 2 0)
       (ite ((load ||| store) &&& (is_f3 1 ||| is_f3 5)) (cst 2 1) (cst 2 2)));
    ("mem_sign_ext", ite (load &&& (is_f3 0 ||| is_f3 1)) (cst 1 1) (cst 1 0));
    ("branch_en", ite branch (cst 1 1) (cst 1 0));
    ("branch_op", funct3);
    ("jump", ite (jal ||| jalr) (cst 1 1) (cst 1 0));
    ("jalr_sel", ite jalr (cst 1 1) (cst 1 0)) ]

let reference_design variant =
  let d = Oyster.Ast.fill_holes (sketch variant) (reference_bindings variant) in
  ignore (Oyster.Typecheck.check d);
  d
