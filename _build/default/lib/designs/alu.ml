(* The three-stage ALU machine of paper §2.2 (Fig. 2): decoder-style
   control over a pipelined datapath.

   Spec: inputs op/dest/src1/src2; a 4-entry register file [regs].
   Instructions ADD (op=1), SUB (op=2), XOR (op=3); op=0 decodes nothing.

   Sketch: three pipeline stages — (1) register read, (2) ALU, (3) write
   back — with Per_instruction holes for the ALU operation select and the
   write enable, both decoded from [op] in stage 1 and carried in pipeline
   registers.  Pipeline valid bits guard the write port; the abstraction
   function assumes the pipeline starts empty (the paper's "assume"
   mechanism, §3.2). *)

let spec () =
  let s = Ila.Spec.create "alu" in
  let op = Ila.Spec.new_bv_input s "op" 2 in
  let dest = Ila.Spec.new_bv_input s "dest" 2 in
  let src1 = Ila.Spec.new_bv_input s "src1" 2 in
  let src2 = Ila.Spec.new_bv_input s "src2" 2 in
  let _ = Ila.Spec.new_mem_state s "regs" ~addr_width:2 ~data_width:8 in
  let open Ila.Expr in
  let rs1 = load "regs" src1 in
  let rs2 = load "regs" src2 in
  let mk name code rhs =
    let i = Ila.Spec.new_instr s name in
    Ila.Spec.set_decode i (op == of_int ~width:2 code);
    Ila.Spec.set_mem_update i "regs" [ (dest, rhs) ];
    ignore i
  in
  mk "ADD" 1 (rs1 + rs2);
  mk "SUB" 2 (rs1 - rs2);
  mk "XOR" 3 (rs1 lxor rs2);
  s

let sketch () =
  let open Hdl.Builder in
  let c = create "alu3" in
  let op = input c "op" 2 in
  let dest = input c "dest" 2 in
  let src1 = input c "src1" 2 in
  let src2 = input c "src2" 2 in
  let regfile = memory c "regfile" ~addr_width:2 ~data_width:8 in
  (* stage 1 -> 2 pipeline registers *)
  let p1_a = register c "p1_a" 8 in
  let p1_b = register c "p1_b" 8 in
  let p1_dest = register c "p1_dest" 2 in
  let p1_sel = register c "p1_sel" 2 in
  let p1_we = register c "p1_we" 1 in
  let p1_valid = register c "p1_valid" 1 in
  (* stage 2 -> 3 pipeline registers *)
  let p2_res = register c "p2_res" 8 in
  let p2_dest = register c "p2_dest" 2 in
  let p2_we = register c "p2_we" 1 in
  let p2_valid = register c "p2_valid" 1 in
  (* control holes, decoded from op in stage 1 *)
  let alu_sel = hole c "alu_sel" 2 ~deps:[ op ] in
  let reg_we = hole c "reg_we" 1 ~deps:[ op ] in
  (* stage 1: register read *)
  set_register c p1_a (read regfile src1);
  set_register c p1_b (read regfile src2);
  set_register c p1_dest dest;
  set_register c p1_sel alu_sel;
  set_register c p1_we reg_we;
  set_register c p1_valid tru;
  (* stage 2: ALU *)
  let alu_out =
    wire c "alu_out"
      (select p1_sel
         [ (1, p1_a +: p1_b); (2, p1_a -: p1_b); (3, p1_a ^: p1_b) ]
         p1_b)
  in
  set_register c p2_res alu_out;
  set_register c p2_dest p1_dest;
  set_register c p2_we (p1_we &: p1_valid);
  set_register c p2_valid p1_valid;
  (* stage 3: write back *)
  write c regfile ~addr:p2_dest ~data:p2_res ~enable:(p2_we &: p2_valid);
  (* bubble indicators for the abstraction function's assumptions *)
  let _ = wire c "bubble1" (bnot p1_valid) in
  let _ = wire c "bubble2" (bnot p2_valid) in
  output c "result" p2_res;
  finalize c

let abstraction () =
  Ila.Absfun.make ~cycles:3
    ~assumes:[ ("bubble1", 1); ("bubble2", 1) ]
    [ Ila.Absfun.mapping ~spec:"op" ~dp:"op" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"dest" ~dp:"dest" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"src1" ~dp:"src1" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"src2" ~dp:"src2" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"regs" ~dp:"regfile" ~ty:Ila.Absfun.Dmemory
        ~reads:[ 1 ] ~writes:[ 3 ] () ]

let problem () =
  { Synth.Engine.design = sketch (); spec = spec (); af = abstraction () }

(* Hand-written reference control. *)
let reference_bindings () =
  let v n = Oyster.Ast.Var n in
  let c2 n = Oyster.Ast.Const (Bitvec.of_int ~width:2 n) in
  let c1 n = Oyster.Ast.Const (Bitvec.of_int ~width:1 n) in
  let eqc a n = Oyster.Ast.Binop (Oyster.Ast.Eq, a, c2 n) in
  [ ("alu_sel", v "op");
    ("reg_we",
     Oyster.Ast.Ite
       ( Oyster.Ast.Binop
           (Oyster.Ast.Or, eqc (v "op") 1,
            Oyster.Ast.Binop (Oyster.Ast.Or, eqc (v "op") 2, eqc (v "op") 3)),
         c1 1, c1 0 )) ]

let reference_design () = Oyster.Ast.fill_holes (sketch ()) (reference_bindings ())
