(** Shared pieces of the RISC-V datapath sketches (paper §4.1/§4.2):
    decode-field wires, the immediate generator, the variant-parameterized
    ALU, the branch comparator, and the sub-word memory access logic.

    ALU operation encoding (the [alu_op] hole selects one):
    {v
     0 add   1 sub   2 sll   3 slt    4 sltu   5 xor   6 srl   7 sra
     8 or    9 and  10 rol  11 ror   12 andn  13 orn  14 xnor
    15 pack 16 packh 17 rev8 18 brev8 19 zip  20 unzip
    21 clmul 22 clmulh 23 cmov (crypto core only)
    24 mul 25 mulh 26 mulhsu 27 mulhu 28 div 29 divu 30 rem 31 remu (M)
    v}

    The branch comparator mirrors the branch funct3 values
    (0 eq, 1 ne, 4 lt, 5 ge, 6 ltu, 7 geu). *)

open Hdl.Builder

type decoded = {
  instruction : signal;
  opcode : signal;
  funct3 : signal;
  funct7 : signal;
  rs2slot : signal;
  rd : signal;
  rs1 : signal;
  rs2 : signal;
  imm_i : signal;
  imm_s : signal;
  imm_b : signal;
  imm_u : signal;
  imm_j : signal;
}

val decode_fields : ctx -> ?suffix:string -> signal -> decoded
(** Creates the named field wires for an instruction-word signal. *)

val immediate : decoded -> signal -> signal
(** Immediate selection by the [imm_sel] hole: 0 I, 1 S, 2 B, 3 U, 4 J. *)

(** {1 Zbkb bit permutations (32-bit)} *)

val byte : int -> signal -> signal
val rev8 : signal -> signal
val brev8 : signal -> signal
val zip : signal -> signal
val unzip : signal -> signal
val pack : signal -> signal -> signal
val packh : signal -> signal -> signal

(** {1 The ALU} *)

type alu_features = { zbkb : bool; zbkc : bool; cmov : bool; m : bool }

val features_of_variant : Isa.Rv32.isa_variant -> alu_features

val alu :
  features:alu_features ->
  ?extra:(int * (signal -> signal -> signal)) list ->
  signal ->
  signal ->
  signal ->
  ?old_rd:signal ->
  unit ->
  signal
(** [alu ~features alu_op a b ()] — [old_rd] is CMOV's third operand;
    [extra] adds custom operations (select value, implementation over the
    two operands) for datapath iteration. *)

val branch_compare : signal -> signal -> signal -> signal
(** [branch_compare branch_op a b]. *)

(** {1 Sub-word memory access (word-addressed model, see Rv32)} *)

val load_value :
  mem_word:signal -> offset:signal -> mask_mode:signal -> sign_ext:signal -> signal
(** [mask_mode]: 0 byte, 1 half, otherwise word; [offset] is the byte
    address whose low two bits select the lane. *)

val store_value :
  mem_word:signal -> offset:signal -> mask_mode:signal -> data:signal -> signal
(** The read-modify-write merge for sub-word stores. *)
