(** Two-stage pipelined (Ibex-like) RISC-V core sketch (paper §4.1.2):
    stage 1 = fetch + decode + execute, stage 2 = memory + write back, with
    a speculative fetch pointer, write-through register-file forwarding,
    and the paper's strengthened abstraction function (pc write: 2, GPR
    read: 1 / write: 2, d_mem at 2, cycles 2) plus pipeline-start
    assumptions. *)

val sketch : Isa.Rv32.isa_variant -> Oyster.Ast.design
val abstraction : unit -> Ila.Absfun.t
val problem : Isa.Rv32.isa_variant -> Synth.Engine.problem
val reference_bindings : Isa.Rv32.isa_variant -> (string * Oyster.Ast.expr) list
val reference_design : Isa.Rv32.isa_variant -> Oyster.Ast.design
