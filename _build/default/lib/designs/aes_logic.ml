(* AES-128 round combinational logic over an abstract bitvector algebra.

   The same block is "instantiated" twice, exactly as a Verilog module would
   be: once over ILA expressions (the specification's update functions,
   paper §4.3's CipherUpdate/KeyUpdate) and once over HDL signals (the
   accelerator datapath).  The byte order convention is that of
   Aes_reference: block byte 0 is the most significant byte of the 128-bit
   vector; state bytes are column-major (byte i = row i mod 4, column
   i / 4). *)

module type ALGEBRA = sig
  type v

  val const : int -> int -> v  (* width, value *)
  val xor : v -> v -> v
  val extract : high:int -> low:int -> v -> v
  val concat : v -> v -> v  (* high part first *)
  val mux : v -> v -> v -> v  (* 1-bit condition, then-, else- *)
  val eq : v -> v -> v  (* 1-bit result *)
  val sbox : v -> v  (* 8-bit in, 8-bit out, via the lookup table *)
end

module Make (A : ALGEBRA) = struct
  let byte i v = A.extract ~high:(127 - (8 * i)) ~low:(120 - (8 * i)) v

  let of_bytes = function
    | [] -> invalid_arg "Aes_logic.of_bytes"
    | b :: rest -> List.fold_left A.concat b rest

  let map_state f st = of_bytes (List.init 16 (fun i -> f (byte i st)))

  let sub_bytes st = map_state A.sbox st

  let shift_rows st =
    of_bytes
      (List.init 16 (fun i ->
           let row = i mod 4 and col = i / 4 in
           byte (row + (4 * ((col + row) mod 4))) st))

  (* xtime over an 8-bit value: shift left, conditional reduction *)
  let xtime b =
    let low7 = A.extract ~high:6 ~low:0 b in
    let shifted = A.concat low7 (A.const 1 0) in
    let msb = A.extract ~high:7 ~low:7 b in
    A.xor shifted (A.mux msb (A.const 8 0x1b) (A.const 8 0))

  let mix_columns st =
    let out = Array.make 16 (A.const 8 0) in
    for col = 0 to 3 do
      let b i = byte ((4 * col) + i) st in
      let x3 v = A.xor (xtime v) v in
      out.(4 * col) <-
        A.xor (xtime (b 0)) (A.xor (x3 (b 1)) (A.xor (b 2) (b 3)));
      out.((4 * col) + 1) <-
        A.xor (b 0) (A.xor (xtime (b 1)) (A.xor (x3 (b 2)) (b 3)));
      out.((4 * col) + 2) <-
        A.xor (b 0) (A.xor (b 1) (A.xor (xtime (b 2)) (x3 (b 3))));
      out.((4 * col) + 3) <-
        A.xor (x3 (b 0)) (A.xor (b 1) (A.xor (b 2) (xtime (b 3))))
    done;
    of_bytes (Array.to_list out)

  let add_round_key st key = A.xor st key

  (* Key schedule step: the round key for round [r] from the previous round
     key, where [round_v] is the 4-bit round number signal (1..10). *)
  let next_key rk round_v =
    let word i = A.extract ~high:(127 - (32 * i)) ~low:(96 - (32 * i)) rk in
    let w0 = word 0 and w1 = word 1 and w2 = word 2 and w3 = word 3 in
    let wbyte i w = A.extract ~high:(31 - (8 * i)) ~low:(24 - (8 * i)) w in
    (* RotWord + SubWord of w3 *)
    let sub =
      of_bytes
        [ A.sbox (wbyte 1 w3); A.sbox (wbyte 2 w3); A.sbox (wbyte 3 w3);
          A.sbox (wbyte 0 w3) ]
    in
    (* rcon byte selected by the runtime round number *)
    let rcon_byte =
      let rec chain r =
        if r > 10 then A.const 8 0
        else
          A.mux
            (A.eq round_v (A.const 4 r))
            (A.const 8 Aes_tables.rcon.(r))
            (chain (r + 1))
      in
      chain 1
    in
    let rcon_word = A.concat rcon_byte (A.const 24 0) in
    let w0' = A.xor w0 (A.xor sub rcon_word) in
    let w1' = A.xor w1 w0' in
    let w2' = A.xor w2 w1' in
    let w3' = A.xor w3 w2' in
    A.concat w0' (A.concat w1' (A.concat w2' w3'))

  (* One middle round (SubBytes, ShiftRows, MixColumns, AddRoundKey). *)
  let mid_round ct rk' = add_round_key (mix_columns (shift_rows (sub_bytes ct))) rk'

  (* The final round omits MixColumns. *)
  let final_round ct rk' = add_round_key (shift_rows (sub_bytes ct)) rk'
end

(* {1 Instantiations} *)

(* Over ILA expressions, with the S-box as a MemConst table named "sbox". *)
module Expr_algebra = struct
  type v = Ila.Expr.t

  let const w n = Ila.Expr.of_int ~width:w n
  let xor a b = Ila.Expr.Binop (Ila.Expr.Xor, a, b)
  let extract ~high ~low v = Ila.Expr.extract ~high ~low v
  let concat = Ila.Expr.concat
  let mux c a b = Ila.Expr.ite c a b
  let eq a b = Ila.Expr.Binop (Ila.Expr.Eq, a, b)
  let sbox v = Ila.Expr.table_load "sbox" v
end

module Spec_logic = Make (Expr_algebra)

(* Over HDL signals, with the S-box as a ROM; the ROM read function is
   threaded through a reference because ROMs belong to a builder context. *)
module Signal_algebra = struct
  type v = Hdl.Builder.signal

  let sbox_ref : (v -> v) ref = ref (fun _ -> failwith "Aes_logic: sbox not bound")
  let const w n = Hdl.Builder.const w n
  let xor = Hdl.Builder.( ^: )
  let extract ~high ~low v = Hdl.Builder.bits ~high ~low v
  let concat = Hdl.Builder.concat
  let mux = Hdl.Builder.mux
  let eq = Hdl.Builder.( ==: )
  let sbox v = !sbox_ref v
end

module Dp_logic = Make (Signal_algebra)
