(* The AES-128 hardware accelerator case study (paper §4.3): FSM-style
   control synthesized from an ILA specification whose "instructions" are
   the first / intermediate / final round states.

   Round numbering: the [round] state counts 0 (idle/first), 1..9
   (intermediate rounds), 10 (final).  The paper's archived spec uses a
   slightly different indexing for its decode predicates; the functional
   content (one AddRoundKey, nine full rounds, one final round without
   MixColumns) is identical — see DESIGN.md.

   The datapath sketch leaves holes for the FSM: the state value is a
   Per_instruction hole over [round], and the three branch-selection
   encodings are Shared holes, exercising the joint-synthesis strategy. *)

let spec () =
  let s = Ila.Spec.create "aes128" in
  let key_in = Ila.Spec.new_bv_input s "key_in" 128 in
  let plaintext = Ila.Spec.new_bv_input s "plaintext" 128 in
  let round = Ila.Spec.new_bv_state s "round" 4 in
  let ciphertext = Ila.Spec.new_bv_state s "ciphertext" 128 in
  let round_key = Ila.Spec.new_bv_state s "round_key" 128 in
  let _ = Ila.Spec.new_mem_const s "sbox" ~addr_width:8 Aes_tables.sbox_bv in
  let open Ila.Expr in
  let c4 n = of_int ~width:4 n in
  let first = Ila.Spec.new_instr s "FirstRound" in
  Ila.Spec.set_decode first (round == c4 0);
  Ila.Spec.set_update first "round" (c4 1);
  Ila.Spec.set_update first "ciphertext" (plaintext lxor key_in);
  Ila.Spec.set_update first "round_key" key_in;
  let rk' = Aes_logic.Spec_logic.next_key round_key round in
  let mid = Ila.Spec.new_instr s "IntermediateRound" in
  Ila.Spec.set_decode mid ((c4 0 < round) && (round <= c4 9));
  Ila.Spec.set_update mid "round" (round + c4 1);
  Ila.Spec.set_update mid "ciphertext" (Aes_logic.Spec_logic.mid_round ciphertext rk');
  Ila.Spec.set_update mid "round_key" rk';
  let final = Ila.Spec.new_instr s "FinalRound" in
  Ila.Spec.set_decode final (round == c4 10);
  Ila.Spec.set_update final "round" (c4 0);
  Ila.Spec.set_update final "ciphertext"
    (Aes_logic.Spec_logic.final_round ciphertext rk');
  Ila.Spec.set_update final "round_key" rk';
  s

let sketch () =
  let open Hdl.Builder in
  let c = create "aes_accel" in
  let key_in = input c "key_in" 128 in
  let plaintext = input c "plaintext" 128 in
  let round = register c "round" 4 in
  let ciphertext = register c "ciphertext" 128 in
  let round_key = register c "round_key" 128 in
  let sbox_read = rom c "sbox" ~addr_width:8 Aes_tables.sbox_bv in
  Aes_logic.Signal_algebra.sbox_ref := sbox_read;
  let state = hole c "state" 2 ~deps:[ round ] in
  let enc_first = hole c "enc_first" 2 ~kind:Oyster.Ast.Shared ~deps:[] in
  let enc_mid = hole c "enc_mid" 2 ~kind:Oyster.Ast.Shared ~deps:[] in
  let enc_final = hole c "enc_final" 2 ~kind:Oyster.Ast.Shared ~deps:[] in
  (* The round datapath in named stages: the final round shares the
     SubBytes/ShiftRows network with the middle rounds, as real AES
     datapaths do. *)
  let rk_next = wire c "rk_next" (Aes_logic.Dp_logic.next_key round_key round) in
  let sb = wire c "sb" (Aes_logic.Dp_logic.sub_bytes ciphertext) in
  let sr = wire c "sr" (Aes_logic.Dp_logic.shift_rows sb) in
  let mc = wire c "mc" (Aes_logic.Dp_logic.mix_columns sr) in
  let ct_first = wire c "ct_first" (plaintext ^: key_in) in
  let ct_mid = wire c "ct_mid" (mc ^: rk_next) in
  let ct_final = wire c "ct_final" (sr ^: rk_next) in
  let is k = state ==: k in
  set_register c ciphertext
    (mux (is enc_first) ct_first
       (mux (is enc_mid) ct_mid (mux (is enc_final) ct_final ciphertext)));
  set_register c round_key
    (mux (is enc_first) key_in
       (mux (is enc_mid) rk_next (mux (is enc_final) rk_next round_key)));
  set_register c round
    (mux (is enc_first) (const 4 1)
       (mux (is enc_mid) (round +: const 4 1)
          (mux (is enc_final) (const 4 0) round)));
  output c "ciphertext_out" ciphertext;
  finalize c

let abstraction () =
  Ila.Absfun.make ~cycles:1
    [ Ila.Absfun.mapping ~spec:"key_in" ~dp:"key_in" ~ty:Ila.Absfun.Dinput
        ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"plaintext" ~dp:"plaintext" ~ty:Ila.Absfun.Dinput
        ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"round" ~dp:"round" ~ty:Ila.Absfun.Dregister
        ~reads:[ 1 ] ~writes:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"ciphertext" ~dp:"ciphertext" ~ty:Ila.Absfun.Dregister
        ~reads:[ 1 ] ~writes:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"round_key" ~dp:"round_key" ~ty:Ila.Absfun.Dregister
        ~reads:[ 1 ] ~writes:[ 1 ] () ]

let problem () =
  { Synth.Engine.design = sketch (); spec = spec (); af = abstraction () }

(* Hand-written reference control: encodings 0/1/2, transition from the
   round counter. *)
let reference_bindings () =
  let c2 n = Oyster.Ast.Const (Bitvec.of_int ~width:2 n) in
  let c4 n = Oyster.Ast.Const (Bitvec.of_int ~width:4 n) in
  let v = Oyster.Ast.Var "round" in
  let eq a b = Oyster.Ast.Binop (Oyster.Ast.Eq, a, b) in
  let ( &&& ) a b = Oyster.Ast.Binop (Oyster.Ast.And, a, b) in
  let ult a b = Oyster.Ast.Binop (Oyster.Ast.Ult, a, b) in
  let ule a b = Oyster.Ast.Binop (Oyster.Ast.Ule, a, b) in
  [ ("state",
     Oyster.Ast.Ite
       ( eq v (c4 0),
         c2 0,
         Oyster.Ast.Ite
           (ult (c4 0) v &&& ule v (c4 9), c2 1,
            Oyster.Ast.Ite (eq v (c4 10), c2 2, c2 3)) ));
    ("enc_first", c2 0);
    ("enc_mid", c2 1);
    ("enc_final", c2 2) ]

let reference_design () =
  let d = Oyster.Ast.fill_holes (sketch ()) (reference_bindings ()) in
  ignore (Oyster.Typecheck.check d);
  d

(* Run a completed accelerator for the full 11-round encryption. *)
let run_accelerator design ~key ~plaintext =
  let st = Oyster.Interp.init design in
  for _ = 1 to 11 do
    ignore
      (Oyster.Interp.step
         ~inputs:(fun name _ ->
           match name with
           | "key_in" -> key
           | "plaintext" -> plaintext
           | _ -> assert false)
         st)
  done;
  Oyster.Interp.get_register st "ciphertext"
