(** Testbench utilities for completed cores: load a program, run
    cycle-accurately, detect the jump-to-self halt, generate random
    programs, and run the ISS oracle for co-simulation. *)

type run_result = {
  cycles_to_halt : int option;
      (** the first cycle whose pc_out equals the halt address *)
  state : Oyster.Interp.state;
}

val load_core :
  Oyster.Ast.design ->
  program:Bitvec.t list ->
  dmem_init:(int * Bitvec.t) list ->
  Oyster.Interp.state

val run_core :
  Oyster.Ast.design ->
  program:Bitvec.t list ->
  dmem_init:(int * Bitvec.t) list ->
  halt_pc:int ->
  max_cycles:int ->
  run_result

val core_reg : Oyster.Interp.state -> int -> Bitvec.t
val core_dmem : Oyster.Interp.state -> int -> Bitvec.t

val cmov_word : rd:int -> rs1:int -> rs2:int -> Bitvec.t
(** The bespoke CMOV encoding (paper §4.2). *)

val random_program :
  ?profile:[ `Standard | `Cmov ] ->
  Random.State.t ->
  Isa.Rv32.isa_variant ->
  len:int ->
  Bitvec.t list
(** ALU-heavy random programs with loads/stores in a small window and short
    forward branches (or CMOVs under [`Cmov]), ending in the halt. *)

val run_iss :
  ?cmov:bool ->
  Isa.Rv32.isa_variant ->
  program:Bitvec.t list ->
  dmem_init:(int * Bitvec.t) list ->
  max_cycles:int ->
  [ `Halted | `Illegal of Bitvec.t | `Max_cycles ] * Isa.Iss.t
