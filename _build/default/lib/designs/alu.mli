(** The three-stage pipelined ALU machine of paper §2.2 (Fig. 2):
    decoder-style control.  Instructions ADD (op=1), SUB (op=2), XOR
    (op=3); holes for the ALU operation select and the write enable; the
    abstraction function is the §3.2 example (inputs read at 1, register
    file read at 1 / written at 3, cycles 3) plus pipeline-empty
    assumptions. *)

val spec : unit -> Ila.Spec.t
val sketch : unit -> Oyster.Ast.design
val abstraction : unit -> Ila.Absfun.t
val problem : unit -> Synth.Engine.problem
val reference_bindings : unit -> (string * Oyster.Ast.expr) list
val reference_design : unit -> Oyster.Ast.design
