(** The AES-128 hardware accelerator case study (paper §4.3): FSM-style
    control synthesized from an ILA specification whose "instructions" are
    the first / intermediate / final round states.  The state value is a
    [Per_instruction] hole over the round counter; the three
    branch-selection encodings are [Shared] holes (the joint-synthesis
    strategy). *)

val spec : unit -> Ila.Spec.t
val sketch : unit -> Oyster.Ast.design
val abstraction : unit -> Ila.Absfun.t
val problem : unit -> Synth.Engine.problem
val reference_bindings : unit -> (string * Oyster.Ast.expr) list
val reference_design : unit -> Oyster.Ast.design

val run_accelerator :
  Oyster.Ast.design -> key:Bitvec.t -> plaintext:Bitvec.t -> Bitvec.t
(** Runs a completed accelerator for the full 11-round encryption. *)
