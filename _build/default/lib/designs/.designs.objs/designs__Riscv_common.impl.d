lib/designs/riscv_common.ml: Hdl Isa List
