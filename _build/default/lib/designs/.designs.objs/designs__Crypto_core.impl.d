lib/designs/crypto_core.ml: Bitvec Hdl Ila Isa List Oyster Riscv_common Synth
