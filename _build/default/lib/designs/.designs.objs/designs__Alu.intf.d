lib/designs/alu.mli: Ila Oyster Synth
