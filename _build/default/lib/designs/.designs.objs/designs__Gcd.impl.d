lib/designs/gcd.ml: Bitvec Hdl Ila List Oyster Synth
