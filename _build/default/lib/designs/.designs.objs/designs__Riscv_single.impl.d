lib/designs/riscv_single.ml: Bitvec Hdl Ila Isa List Oyster Riscv_common Synth
