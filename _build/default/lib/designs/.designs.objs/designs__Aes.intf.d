lib/designs/aes.mli: Bitvec Ila Oyster Synth
