lib/designs/aes_reference.mli: Bitvec
