lib/designs/riscv_two_stage.ml: Hdl Ila Isa Oyster Riscv_common Riscv_single Synth
