lib/designs/aes_logic.mli: Hdl Ila
