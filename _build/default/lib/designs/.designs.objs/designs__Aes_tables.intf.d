lib/designs/aes_tables.mli: Bitvec
