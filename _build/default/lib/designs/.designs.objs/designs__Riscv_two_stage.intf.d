lib/designs/riscv_two_stage.mli: Ila Isa Oyster Synth
