lib/designs/crypto_core.mli: Ila Oyster Riscv_common Synth
