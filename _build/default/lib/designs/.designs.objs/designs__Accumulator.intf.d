lib/designs/accumulator.mli: Ila Oyster Synth
