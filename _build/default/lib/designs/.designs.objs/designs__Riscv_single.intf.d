lib/designs/riscv_single.mli: Hdl Ila Isa Oyster Synth
