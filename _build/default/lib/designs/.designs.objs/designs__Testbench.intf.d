lib/designs/testbench.mli: Bitvec Isa Oyster Random
