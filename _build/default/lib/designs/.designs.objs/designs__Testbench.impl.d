lib/designs/testbench.ml: Array Bitvec Hashtbl Isa List Oyster Random
