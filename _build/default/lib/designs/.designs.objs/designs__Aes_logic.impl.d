lib/designs/aes_logic.ml: Aes_tables Array Hdl Ila List
