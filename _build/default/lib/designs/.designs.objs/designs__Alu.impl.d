lib/designs/alu.ml: Bitvec Hdl Ila Oyster Synth
