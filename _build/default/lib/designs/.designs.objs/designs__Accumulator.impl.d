lib/designs/accumulator.ml: Bitvec Ila Oyster Synth
