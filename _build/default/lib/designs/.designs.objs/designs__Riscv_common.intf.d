lib/designs/riscv_common.mli: Hdl Isa
