lib/designs/aes_tables.ml: Array Bitvec
