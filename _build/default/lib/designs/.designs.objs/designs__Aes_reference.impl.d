lib/designs/aes_reference.ml: Aes_tables Array Bitvec
