lib/designs/aes.ml: Aes_logic Aes_tables Bitvec Hdl Ila Oyster Synth
