lib/designs/gcd.mli: Ila Oyster Synth
