(* The accumulator machine of paper §2.3 (Fig. 3): FSM-style control.

   Architectural spec: inputs reset/go/stop/val, states acc (8b) and state
   (2b) with encodings STOP=0, RESET=1, GO=2.  (The paper's listing omits
   stop_instr's state update; the FSM of Fig. 3 shows GO --stop--> STOP, so
   we include state := STOP.)

   Datapath sketch: the accumulator update is a priority conditional over
   the combinational next-state value, as in the paper's pseudocode

       state := ??
       with state:  ?? -> acc := 0  |  ?? -> acc := acc + val  |  ?? -> acc := acc

   The transition value [next] is a Per_instruction hole; the two selector
   encodings are Shared holes (every instruction must agree on them), which
   exercises the joint-synthesis strategy. *)

let stop_enc = 0
let reset_enc = 1
let go_enc = 2

let spec () =
  let s = Ila.Spec.create "accumulator" in
  let reset = Ila.Spec.new_bv_input s "reset" 1 in
  let go = Ila.Spec.new_bv_input s "go" 1 in
  let stop = Ila.Spec.new_bv_input s "stop" 1 in
  let v = Ila.Spec.new_bv_input s "val" 2 in
  let acc = Ila.Spec.new_bv_state s "acc" 8 in
  let st = Ila.Spec.new_bv_state s "state" 2 in
  let c2 n = Ila.Expr.of_int ~width:2 n in
  let open Ila.Expr in
  let reset_instr = Ila.Spec.new_instr s "reset_instr" in
  Ila.Spec.set_decode reset_instr ((st == c2 stop_enc) && (reset == tru));
  Ila.Spec.set_update reset_instr "acc" (of_int ~width:8 0);
  Ila.Spec.set_update reset_instr "state" (c2 reset_enc);
  let go_instr = Ila.Spec.new_instr s "go_instr" in
  Ila.Spec.set_decode go_instr
    (((st == c2 reset_enc) && (go == tru))
    || ((st == c2 go_enc) && (stop == fls)));
  Ila.Spec.set_update go_instr "acc" (acc + zext v 8);
  Ila.Spec.set_update go_instr "state" (c2 go_enc);
  let stop_instr = Ila.Spec.new_instr s "stop_instr" in
  Ila.Spec.set_decode stop_instr ((st == c2 go_enc) && (stop == tru));
  Ila.Spec.set_update stop_instr "acc" acc;
  Ila.Spec.set_update stop_instr "state" (c2 stop_enc);
  s

let sketch () =
  {
    Oyster.Ast.name = "accumulator";
    decls =
      [ Oyster.Ast.Input ("reset", 1);
        Oyster.Ast.Input ("go", 1);
        Oyster.Ast.Input ("stop", 1);
        Oyster.Ast.Input ("val", 2);
        Oyster.Ast.Output ("out", 8);
        Oyster.Ast.Register ("acc", 8);
        Oyster.Ast.Register ("state", 2);
        Oyster.Ast.Hole
          { hole_name = "next"; hole_width = 2; kind = Oyster.Ast.Per_instruction;
            deps = [ "state"; "reset"; "go"; "stop" ] };
        Oyster.Ast.Hole
          { hole_name = "enc_reset"; hole_width = 2; kind = Oyster.Ast.Shared; deps = [] };
        Oyster.Ast.Hole
          { hole_name = "enc_go"; hole_width = 2; kind = Oyster.Ast.Shared; deps = [] }
      ];
    stmts =
      [ Oyster.Ast.Assign ("state", Oyster.Ast.Var "next");
        Oyster.Ast.Assign
          ( "acc",
            Oyster.Ast.Ite
              ( Oyster.Ast.Binop (Oyster.Ast.Eq, Oyster.Ast.Var "next", Oyster.Ast.Var "enc_reset"),
                Oyster.Ast.Const (Bitvec.zero 8),
                Oyster.Ast.Ite
                  ( Oyster.Ast.Binop (Oyster.Ast.Eq, Oyster.Ast.Var "next", Oyster.Ast.Var "enc_go"),
                    Oyster.Ast.Binop
                      (Oyster.Ast.Add, Oyster.Ast.Var "acc",
                       Oyster.Ast.Zext (Oyster.Ast.Var "val", 8)),
                    Oyster.Ast.Var "acc" ) ) );
        Oyster.Ast.Assign ("out", Oyster.Ast.Var "acc")
      ];
  }

let abstraction () =
  Ila.Absfun.make ~cycles:1
    [ Ila.Absfun.mapping ~spec:"reset" ~dp:"reset" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"go" ~dp:"go" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"stop" ~dp:"stop" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"val" ~dp:"val" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"acc" ~dp:"acc" ~ty:Ila.Absfun.Dregister ~reads:[ 1 ]
        ~writes:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"state" ~dp:"state" ~ty:Ila.Absfun.Dregister
        ~reads:[ 1 ] ~writes:[ 1 ] () ]

let problem () =
  { Synth.Engine.design = sketch (); spec = spec (); af = abstraction () }

(* Hand-written reference control logic (used as the Table-2-style baseline
   and as a cross-check for the synthesized result). *)
let reference_bindings () =
  let c2 n = Oyster.Ast.Const (Bitvec.of_int ~width:2 n) in
  let v n = Oyster.Ast.Var n in
  let eqc a n = Oyster.Ast.Binop (Oyster.Ast.Eq, a, c2 n) in
  let ( &&& ) a b = Oyster.Ast.Binop (Oyster.Ast.And, a, b) in
  let ( ||| ) a b = Oyster.Ast.Binop (Oyster.Ast.Or, a, b) in
  let nott a = Oyster.Ast.Unop (Oyster.Ast.Not, a) in
  [ ("next",
     Oyster.Ast.Ite
       ( eqc (v "state") stop_enc &&& v "reset",
         c2 reset_enc,
         Oyster.Ast.Ite
           ( (eqc (v "state") reset_enc &&& v "go")
             ||| (eqc (v "state") go_enc &&& nott (v "stop")),
             c2 go_enc,
             c2 stop_enc ) ));
    ("enc_reset", c2 reset_enc);
    ("enc_go", c2 go_enc) ]

let reference_design () = Oyster.Ast.fill_holes (sketch ()) (reference_bindings ())
