(* Two-stage pipelined embedded-class RISC-V core sketch (paper §4.1.2),
   Ibex-like: stage 1 = fetch + decode + execute (branches resolve here),
   stage 2 = memory + write-back.

   Microarchitectural choices, reflected in the abstraction function exactly
   as §4.1.2 describes:

   - a speculative fetch pointer [fetch_pc] runs one instruction ahead of
     the architectural [pc], which commits in stage 2 (pc write: 2);
     the fetch-port mapping's [addr_via] records the invariant that the
     fetch address equals the architectural pc when an instruction enters
     the pipeline, and [fetch_in_sync] is assumed at cycle 1;
   - stage-1 register reads see stage-2 write-backs combinationally
     (write-through register file / write-back forwarding), so back-to-back
     dependent instructions execute correctly;
   - the pipeline starts empty: [bubble2] is assumed at cycle 1.

   The control holes are the same fourteen signals as the single-cycle core
   (decoded in stage 1; the memory/write-back ones ride the pipeline
   registers into stage 2). *)

open Hdl.Builder

let sketch variant =
  let c = create ("rv32_two_stage_" ^ Riscv_single.variant_tag variant) in
  let pc = register c "pc" 32 in
  let fetch_pc = register c "fetch_pc" 32 in
  let i_mem = memory c "i_mem" ~addr_width:30 ~data_width:32 in
  let d_mem = memory c "d_mem" ~addr_width:30 ~data_width:32 in
  let rf = memory c "rf" ~addr_width:5 ~data_width:32 in
  (* stage 1 -> 2 pipeline registers *)
  let p_alu_out = register c "p_alu_out" 32 in
  let p_rd = register c "p_rd" 5 in
  let p_store_data = register c "p_store_data" 32 in
  let p_next_pc = register c "p_next_pc" 32 in
  let p_pc4 = register c "p_pc4" 32 in
  let p_reg_write = register c "p_reg_write" 1 in
  let p_wb_sel = register c "p_wb_sel" 2 in
  let p_mem_read = register c "p_mem_read" 1 in
  let p_mem_write = register c "p_mem_write" 1 in
  let p_mask_mode = register c "p_mask_mode" 2 in
  let p_sign_ext = register c "p_sign_ext" 1 in
  let p_valid = register c "p_valid" 1 in
  (* ---- stage 2: memory + write back (wires first so stage 1 can bypass) *)
  let s2_en = wire c "s2_en" p_valid in
  let mem_word = wire c "mem_word" (read d_mem (bits ~high:31 ~low:2 p_alu_out)) in
  let load_raw =
    Riscv_common.load_value ~mem_word ~offset:p_alu_out ~mask_mode:p_mask_mode
      ~sign_ext:p_sign_ext
  in
  let load_result = wire c "load_result" (mux p_mem_read load_raw (const 32 0)) in
  let store_word =
    wire c "store_word"
      (Riscv_common.store_value ~mem_word ~offset:p_alu_out ~mask_mode:p_mask_mode
         ~data:p_store_data)
  in
  write c d_mem ~addr:(bits ~high:31 ~low:2 p_alu_out) ~data:store_word
    ~enable:(p_mem_write &: s2_en);
  let wb =
    wire c "wb" (select p_wb_sel [ (0, p_alu_out); (1, load_result) ] p_pc4)
  in
  let wb_en =
    wire c "wb_en" (p_reg_write &: s2_en &: (p_rd <>: const 5 0))
  in
  write c rf ~addr:p_rd ~data:wb ~enable:wb_en;
  set_register c pc (mux s2_en p_next_pc pc);
  (* ---- stage 1: fetch + decode + execute *)
  let fetch_addr = wire c "fetch_addr" (bits ~high:31 ~low:2 fetch_pc) in
  let d = Riscv_common.decode_fields c (read i_mem fetch_addr) in
  let deps =
    [ d.Riscv_common.opcode; d.Riscv_common.funct3; d.Riscv_common.funct7;
      d.Riscv_common.rs2slot ]
  in
  let h name w = hole c name w ~deps in
  let imm_sel = h "imm_sel" 3 in
  let alu_op = h "alu_op" 5 in
  let asel = h "asel" 2 in
  let bsel = h "bsel" 1 in
  let reg_write = h "reg_write" 1 in
  let wb_sel = h "wb_sel" 2 in
  let mem_read = h "mem_read" 1 in
  let mem_write = h "mem_write" 1 in
  let mask_mode = h "mask_mode" 2 in
  let mem_sign_ext = h "mem_sign_ext" 1 in
  let branch_en = h "branch_en" 1 in
  let branch_op = h "branch_op" 3 in
  let jump = h "jump" 1 in
  let jalr_sel = h "jalr_sel" 1 in
  (* register read with write-back forwarding *)
  let fwd name src =
    wire c name
      (mux (wb_en &: (p_rd ==: src)) wb (read rf src))
  in
  let rs1_val = fwd "rs1_val" d.Riscv_common.rs1 in
  let rs2_val = fwd "rs2_val" d.Riscv_common.rs2 in
  let imm = wire c "imm" (Riscv_common.immediate d imm_sel) in
  let alu_a = wire c "alu_a" (select asel [ (0, rs1_val); (1, fetch_pc) ] (const 32 0)) in
  let alu_b = wire c "alu_b" (mux bsel imm rs2_val) in
  let features = Riscv_common.features_of_variant variant in
  let alu_out = wire c "alu_out" (Riscv_common.alu ~features alu_op alu_a alu_b ()) in
  let cmp = wire c "cmp" (Riscv_common.branch_compare branch_op rs1_val rs2_val) in
  let taken = wire c "taken" (jump |: (branch_en &: cmp)) in
  let target =
    wire c "target"
      (mux jalr_sel ((rs1_val +: imm) &: bnot (const 32 1)) (fetch_pc +: imm))
  in
  let pc4 = wire c "pc4" (fetch_pc +: const 32 4) in
  let next_pc = wire c "next_pc" (mux taken target pc4) in
  set_register c fetch_pc next_pc;
  (* pipeline advance *)
  set_register c p_alu_out alu_out;
  set_register c p_rd d.Riscv_common.rd;
  set_register c p_store_data rs2_val;
  set_register c p_next_pc next_pc;
  set_register c p_pc4 pc4;
  set_register c p_reg_write reg_write;
  set_register c p_wb_sel wb_sel;
  set_register c p_mem_read mem_read;
  set_register c p_mem_write mem_write;
  set_register c p_mask_mode mask_mode;
  set_register c p_sign_ext mem_sign_ext;
  set_register c p_valid tru;
  (* assumption wires *)
  let _ = wire c "bubble2" (bnot p_valid) in
  let _ = wire c "fetch_in_sync" (fetch_pc ==: pc) in
  output c "pc_out" pc;
  finalize c

let abstraction () =
  Ila.Absfun.make ~cycles:2
    ~assumes:[ ("bubble2", 1); ("fetch_in_sync", 1) ]
    [ Ila.Absfun.mapping ~spec:"pc" ~dp:"pc" ~ty:Ila.Absfun.Dregister ~reads:[ 1 ]
        ~writes:[ 2 ] ();
      Ila.Absfun.mapping ~spec:"GPR" ~dp:"rf" ~ty:Ila.Absfun.Dmemory ~reads:[ 1 ]
        ~writes:[ 2 ] ();
      Ila.Absfun.mapping ~spec:"mem" ~port:"fetch" ~dp:"i_mem" ~ty:Ila.Absfun.Dmemory
        ~addr_via:"fetch_addr" ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"mem" ~dp:"d_mem" ~ty:Ila.Absfun.Dmemory ~reads:[ 2 ]
        ~writes:[ 2 ] () ]

let problem variant =
  { Synth.Engine.design = sketch variant;
    spec = Isa.Rv_spec.spec variant;
    af = abstraction () }

(* The reference control is identical to the single-cycle core's: the same
   fourteen signals decoded from the same fields. *)
let reference_bindings = Riscv_single.reference_bindings

let reference_design variant =
  let d = Oyster.Ast.fill_holes (sketch variant) (reference_bindings variant) in
  ignore (Oyster.Typecheck.check d);
  d
