(** Single-cycle embedded-class RISC-V core sketch (paper §4.1.1), with
    fourteen control holes decoded from (opcode, funct3, funct7, rs2slot) —
    see the implementation header for the signal list.  The abstraction
    function is the paper's: all reads and writes at time step 1,
    cycles 1. *)

val holes_list : (string * int) list
(** Hole names and widths, for reference. *)

val variant_tag : Isa.Rv32.isa_variant -> string

val sketch :
  ?extra_alu_ops:(int * (Hdl.Builder.signal -> Hdl.Builder.signal -> Hdl.Builder.signal)) list ->
  Isa.Rv32.isa_variant ->
  Oyster.Ast.design
(** [extra_alu_ops] adds functional units for datapath iteration (see
    examples/custom_instruction.ml). *)

val abstraction : unit -> Ila.Absfun.t
val problem : Isa.Rv32.isa_variant -> Synth.Engine.problem

val reference_bindings : Isa.Rv32.isa_variant -> (string * Oyster.Ast.expr) list
(** The hand-written decoder (Table 2's baseline). *)

val reference_design : Isa.Rv32.isa_variant -> Oyster.Ast.design
