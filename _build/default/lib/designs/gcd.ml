(* A GCD accelerator: a second FSM-style case study (beyond AES)
   demonstrating the §4.3 claim that the technique carries to accelerators
   in other domains, and exercising a feature the RISC-V decoders do not:
   ILA instructions triggered by *data-dependent* state criteria (paper
   §2.1: "trigger an instruction only when certain criteria in its state
   and input values are met").

   Architectural spec: a/b (16-bit operands), busy (1).  Five instructions
   partition the decode space: LOAD (idle & start), STEP_A (busy & a > b),
   STEP_B (busy & b > a), DONE (busy & a = b), and IDLE (idle & ~start,
   all-frame) — so the machine's behaviour is fully specified.

   The sketch's FSM value is a Per_instruction hole over the comparison
   wires; the four active-branch encodings are Shared 3-bit holes, and the
   synthesizer must place IDLE's state outside all of them so that the
   hold-everything default branch is taken. *)

let operand_width = 16

let spec () =
  let s = Ila.Spec.create "gcd" in
  let a_in = Ila.Spec.new_bv_input s "a_in" operand_width in
  let b_in = Ila.Spec.new_bv_input s "b_in" operand_width in
  let start = Ila.Spec.new_bv_input s "start" 1 in
  let a = Ila.Spec.new_bv_state s "a" operand_width in
  let b = Ila.Spec.new_bv_state s "b" operand_width in
  let busy = Ila.Spec.new_bv_state s "busy" 1 in
  let open Ila.Expr in
  let idle = busy == fls in
  let load = Ila.Spec.new_instr s "LOAD" in
  Ila.Spec.set_decode load (idle && (start == tru));
  Ila.Spec.set_update load "a" a_in;
  Ila.Spec.set_update load "b" b_in;
  Ila.Spec.set_update load "busy" tru;
  let step_a = Ila.Spec.new_instr s "STEP_A" in
  Ila.Spec.set_decode step_a ((busy == tru) && (b < a));
  Ila.Spec.set_update step_a "a" (a - b);
  let step_b = Ila.Spec.new_instr s "STEP_B" in
  Ila.Spec.set_decode step_b ((busy == tru) && (a < b));
  Ila.Spec.set_update step_b "b" (b - a);
  let done_ = Ila.Spec.new_instr s "DONE" in
  Ila.Spec.set_decode done_ ((busy == tru) && (a == b));
  Ila.Spec.set_update done_ "busy" fls;
  let idle_i = Ila.Spec.new_instr s "IDLE" in
  Ila.Spec.set_decode idle_i (idle && (start == fls));
  s

let sketch () =
  let open Hdl.Builder in
  let c = create "gcd_accel" in
  let a_in = input c "a_in" operand_width in
  let b_in = input c "b_in" operand_width in
  let start = input c "start" 1 in
  let a = register c "a" operand_width in
  let b = register c "b" operand_width in
  let busy = register c "busy" 1 in
  (* comparison network (datapath) *)
  let agb = wire c "agb" (a >: b) in
  let bga = wire c "bga" (b >: a) in
  let aeb = wire c "aeb" (a ==: b) in
  let st =
    hole c "st" 3 ~deps:[ busy; start; agb; bga; aeb ]
  in
  let enc_load = hole c "enc_load" 3 ~kind:Oyster.Ast.Shared ~deps:[] in
  let enc_suba = hole c "enc_suba" 3 ~kind:Oyster.Ast.Shared ~deps:[] in
  let enc_subb = hole c "enc_subb" 3 ~kind:Oyster.Ast.Shared ~deps:[] in
  let enc_done = hole c "enc_done" 3 ~kind:Oyster.Ast.Shared ~deps:[] in
  let is e = st ==: e in
  set_register c a (mux (is enc_load) a_in (mux (is enc_suba) (a -: b) a));
  set_register c b (mux (is enc_load) b_in (mux (is enc_subb) (b -: a) b));
  set_register c busy
    (mux (is enc_load) tru (mux (is enc_done) fls busy));
  output c "result" a;
  output c "ready" (bnot busy);
  finalize c

let abstraction () =
  Ila.Absfun.make ~cycles:1
    [ Ila.Absfun.mapping ~spec:"a_in" ~dp:"a_in" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"b_in" ~dp:"b_in" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"start" ~dp:"start" ~ty:Ila.Absfun.Dinput ~reads:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"a" ~dp:"a" ~ty:Ila.Absfun.Dregister ~reads:[ 1 ]
        ~writes:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"b" ~dp:"b" ~ty:Ila.Absfun.Dregister ~reads:[ 1 ]
        ~writes:[ 1 ] ();
      Ila.Absfun.mapping ~spec:"busy" ~dp:"busy" ~ty:Ila.Absfun.Dregister ~reads:[ 1 ]
        ~writes:[ 1 ] () ]

let problem () =
  { Synth.Engine.design = sketch (); spec = spec (); af = abstraction () }

let reference_bindings () =
  let c3 n = Oyster.Ast.Const (Bitvec.of_int ~width:3 n) in
  let v n = Oyster.Ast.Var n in
  let ( &&& ) a b = Oyster.Ast.Binop (Oyster.Ast.And, a, b) in
  let nott a = Oyster.Ast.Unop (Oyster.Ast.Not, a) in
  let ite c a b = Oyster.Ast.Ite (c, a, b) in
  [ ("st",
     ite (nott (v "busy") &&& v "start") (c3 0)
       (ite (v "busy" &&& v "agb") (c3 1)
          (ite (v "busy" &&& v "bga") (c3 2)
             (ite (v "busy" &&& v "aeb") (c3 3) (c3 7)))));
    ("enc_load", c3 0);
    ("enc_suba", c3 1);
    ("enc_subb", c3 2);
    ("enc_done", c3 3) ]

let reference_design () =
  let d = Oyster.Ast.fill_holes (sketch ()) (reference_bindings ()) in
  ignore (Oyster.Typecheck.check d);
  d

(* Run a completed accelerator: start with the operands, step until ready,
   return (result, cycles). *)
let run design ~a ~b ~max_cycles =
  let st = Oyster.Interp.init design in
  let feed start =
    Oyster.Interp.step
      ~inputs:(fun name _ ->
        match name with
        | "a_in" -> Bitvec.of_int ~width:operand_width a
        | "b_in" -> Bitvec.of_int ~width:operand_width b
        | "start" -> Bitvec.of_int ~width:1 (if start then 1 else 0)
        | _ -> assert false)
      st
  in
  ignore (feed true);
  let rec go n =
    if n >= max_cycles then None
    else begin
      let r = feed false in
      if Bitvec.is_ones (List.assoc "ready" r.Oyster.Interp.outputs) then
        Some (Bitvec.to_int_exn (List.assoc "result" r.Oyster.Interp.outputs), n + 1)
      else go (n + 1)
    end
  in
  go 0
