(** The bespoke three-stage constant-time cryptography core (paper §4.2):
    fetch / decode+execute / memory+write-back, running the CMOV ISA
    (RV32I+Zbkb without conditional branches or sub-word access, plus
    CMOV).  Jumps resolve in stage 2 and flush the fetch stage; the
    abstraction function carries the paper's instruction-validity
    assumptions. *)

val features : Riscv_common.alu_features

val sketch : unit -> Oyster.Ast.design
val abstraction : unit -> Ila.Absfun.t
val problem : unit -> Synth.Engine.problem
val reference_bindings : unit -> (string * Oyster.Ast.expr) list
val reference_design : unit -> Oyster.Ast.design
