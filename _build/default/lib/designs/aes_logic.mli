(** AES-128 round combinational logic over an abstract bitvector algebra,
    instantiated twice like a reusable hardware block: once over ILA
    expressions (the specification's update functions, paper §4.3) and once
    over HDL signals (the accelerator datapath).

    Byte order convention (shared with {!Aes_reference}): block byte 0 is
    the most significant byte of the 128-bit vector; state bytes are
    column-major. *)

module type ALGEBRA = sig
  type v

  val const : int -> int -> v  (** width, value *)

  val xor : v -> v -> v
  val extract : high:int -> low:int -> v -> v
  val concat : v -> v -> v  (** high part first *)

  val mux : v -> v -> v -> v  (** 1-bit condition, then-, else- *)

  val eq : v -> v -> v  (** 1-bit result *)

  val sbox : v -> v  (** 8-bit S-box lookup *)
end

module Make (A : ALGEBRA) : sig
  val byte : int -> A.v -> A.v
  val of_bytes : A.v list -> A.v
  val sub_bytes : A.v -> A.v
  val shift_rows : A.v -> A.v
  val xtime : A.v -> A.v
  val mix_columns : A.v -> A.v
  val add_round_key : A.v -> A.v -> A.v

  val next_key : A.v -> A.v -> A.v
  (** [next_key rk round]: the key-schedule step, with the round constant
      selected by the runtime 4-bit round number (1..10). *)

  val mid_round : A.v -> A.v -> A.v
  (** SubBytes, ShiftRows, MixColumns, AddRoundKey. *)

  val final_round : A.v -> A.v -> A.v
  (** The last round omits MixColumns. *)
end

(** Instantiation over ILA expressions (S-box as the MemConst "sbox"). *)
module Expr_algebra : ALGEBRA with type v = Ila.Expr.t

module Spec_logic : module type of Make (Expr_algebra)

(** Instantiation over HDL signals; bind [sbox_ref] to a ROM read function
    before building (see {!Aes.sketch}). *)
module Signal_algebra : sig
  include ALGEBRA with type v = Hdl.Builder.signal

  val sbox_ref : (v -> v) ref
end

module Dp_logic : module type of Make (Signal_algebra)
