(** AES constants generated from first principles (GF(2^8) arithmetic with
    the AES polynomial); spot values are pinned to FIPS-197 by tests. *)

val xtime : int -> int
val gf_mul : int -> int -> int
val gf_inv : int -> int
val sbox_entry : int -> int
val sbox : int array
val sbox_bv : Bitvec.t array
val rcon : int array
(** [rcon.(r)] for rounds 1..10. *)
