(* Reconstruction of Oyster expressions from SMT terms.

   The control-union step (paper Fig. 6) emits per-instruction precondition
   wires like [pre_add := (eq opcode 7'x33) and ...].  The preconditions are
   available as Term.t values compiled from the ILA decode; to emit them as
   datapath code we rebuild an Oyster expression, replacing any subterm that
   the datapath already computes (a wire, input, or register sampled in
   cycle 1) by a reference to that name.

   Reconstruction fails (returns [None]) if a leaf variable or memory read
   cannot be expressed over the datapath namespace — which means the decode
   depends on state the sketch does not expose; the engine reports this as
   a diagnostic. *)

type ctx = {
  by_term : (int, string) Hashtbl.t;  (* Term id -> datapath name *)
  mem_names : (string * string) list;  (* Term mem_name -> oyster memory name *)
  rom_names : (string * string) list;  (* Term tab_name -> oyster rom name *)
}

(* Build the matching context from a symbolic trace: every cycle's wires
   (they include sampled inputs and outputs) and the initial register
   values.  A control signal is consumed in the cycle its holes feed, which
   in a pipelined sketch need not be cycle 1 (e.g. the crypto core decodes
   in stage 2), so all cycles participate; [prefer] names — typically the
   holes' declared dependencies — win conflicts regardless of cycle, then
   earlier cycles win, then registers, with a lexicographic tie-break. *)
let ctx_of_trace ?(prefer = []) (trace : Oyster.Symbolic.trace) =
  let by_term = Hashtbl.create 64 in
  let ranks = Hashtbl.create 64 in
  let outputs =
    List.map fst (Oyster.Ast.outputs trace.Oyster.Symbolic.design)
  in
  let consider rank (name, term) =
    let rank =
      if List.mem name prefer then 0
      else if List.mem name outputs then rank + 1000  (* outputs last *)
      else rank
    in
    let id = Term.id term in
    let better =
      match Hashtbl.find_opt by_term id with
      | None -> true
      | Some existing ->
          let old_rank = Hashtbl.find ranks id in
          rank < old_rank || (rank = old_rank && String.compare name existing < 0)
    in
    if better then begin
      Hashtbl.replace by_term id name;
      Hashtbl.replace ranks id rank
    end
  in
  List.iter
    (fun (n, _w) -> consider 1 (n, Oyster.Symbolic.reg_at trace ~state:0 n))
    (Oyster.Ast.registers trace.Oyster.Symbolic.design);
  Array.iteri
    (fun i wires -> List.iter (consider (2 + i)) wires)
    trace.Oyster.Symbolic.cycle_wires;
  let mem_names =
    List.map (fun (oy, m) -> (m.Term.mem_name, oy)) trace.Oyster.Symbolic.mems
  in
  let rom_names =
    List.map
      (fun (r : Oyster.Ast.rom_decl) ->
        (trace.Oyster.Symbolic.prefix ^ "rom!" ^ r.Oyster.Ast.rom_name,
         r.Oyster.Ast.rom_name))
      (Oyster.Ast.roms trace.Oyster.Symbolic.design)
  in
  { by_term; mem_names; rom_names }

let binop_of_term : Term.binop -> Oyster.Ast.binop = function
  | Term.And -> Oyster.Ast.And
  | Term.Or -> Oyster.Ast.Or
  | Term.Xor -> Oyster.Ast.Xor
  | Term.Add -> Oyster.Ast.Add
  | Term.Sub -> Oyster.Ast.Sub
  | Term.Mul -> Oyster.Ast.Mul
  | Term.Udiv -> Oyster.Ast.Udiv
  | Term.Urem -> Oyster.Ast.Urem
  | Term.Sdiv -> Oyster.Ast.Sdiv
  | Term.Srem -> Oyster.Ast.Srem
  | Term.Clmul -> Oyster.Ast.Clmul
  | Term.Clmulh -> Oyster.Ast.Clmulh
  | Term.Shl -> Oyster.Ast.Shl
  | Term.Lshr -> Oyster.Ast.Lshr
  | Term.Ashr -> Oyster.Ast.Ashr

let cmpop_of_term : Term.cmpop -> Oyster.Ast.binop = function
  | Term.Eq -> Oyster.Ast.Eq
  | Term.Ult -> Oyster.Ast.Ult
  | Term.Ule -> Oyster.Ast.Ule
  | Term.Slt -> Oyster.Ast.Slt
  | Term.Sle -> Oyster.Ast.Sle

let expr_of_term (ctx : ctx) (t : Term.t) : Oyster.Ast.expr option =
  let memo = Hashtbl.create 32 in
  let rec go (t : Term.t) =
    match Hashtbl.find_opt memo (Term.id t) with
    | Some r -> r
    | None ->
        let r =
          match Hashtbl.find_opt ctx.by_term (Term.id t) with
          | Some name -> Some (Oyster.Ast.Var name)
          | None -> go_node t
        in
        Hashtbl.add memo (Term.id t) r;
        r
  and go_node (t : Term.t) =
    match t.Term.node with
    | Term.Const v -> Some (Oyster.Ast.Const v)
    | Term.Var _ -> None  (* unmatched symbolic leaf *)
    | Term.Not a ->
        Option.map (fun a -> Oyster.Ast.Unop (Oyster.Ast.Not, a)) (go a)
    | Term.Binop (op, a, b) -> (
        match (go a, go b) with
        | Some a, Some b -> Some (Oyster.Ast.Binop (binop_of_term op, a, b))
        | _ -> None)
    | Term.Cmp (op, a, b) -> (
        match (go a, go b) with
        | Some a, Some b -> Some (Oyster.Ast.Binop (cmpop_of_term op, a, b))
        | _ -> None)
    | Term.Ite (c, a, b) -> (
        match (go c, go a, go b) with
        | Some c, Some a, Some b -> Some (Oyster.Ast.Ite (c, a, b))
        | _ -> None)
    | Term.Extract (h, l, a) ->
        Option.map (fun a -> Oyster.Ast.Extract (h, l, a)) (go a)
    | Term.Concat (a, b) -> (
        match (go a, go b) with
        | Some a, Some b -> Some (Oyster.Ast.Concat (a, b))
        | _ -> None)
    | Term.Read (m, a) -> (
        match List.assoc_opt m.Term.mem_name ctx.mem_names with
        | Some oy -> Option.map (fun a -> Oyster.Ast.Read (oy, a)) (go a)
        | None -> None)
    | Term.Table (tb, a) -> (
        match List.assoc_opt tb.Term.tab_name ctx.rom_names with
        | Some oy -> Option.map (fun a -> Oyster.Ast.RomRead (oy, a)) (go a)
        | None -> None)
  in
  go t
