(** The control union ⊔ (paper Fig. 6): joins per-instruction synthesized
    constants into complete control logic — a nested if-then-else over
    per-instruction precondition wires, one value group per distinct
    constant.

    The most populous group becomes the default arm (correct under the
    instruction-independence conditions: mutually exclusive preconditions
    covering every decodable state), which minimizes the precondition wires
    that must be materialized. *)

type group = { value : Bitvec.t; instrs : string list }

type hole_result = { hole : string; groups : group list }

val group_results :
  (string * (string * Bitvec.t) list) list -> string list -> hole_result list
(** Pivots an instruction->hole->value map into per-hole value groups,
    preserving instruction order. *)

val pre_wire_name : string -> string
(** The wire carrying an instruction's precondition ([pre_<instr>]). *)

val order_for_default : group list -> group list

val logic_gen : group list -> Oyster.Ast.expr
(** LogicGen of Fig. 6: the nested if-then-else for one hole. *)

val apply :
  Oyster.Ast.design ->
  pre_exprs:(string * Oyster.Ast.expr) list ->
  shared:(string * Bitvec.t) list ->
  per_instr:(string * (string * Bitvec.t) list) list ->
  Oyster.Ast.design * (string * Oyster.Ast.expr) list
(** Completes the design: inserts the needed [pre_*] wires, fills every
    [Per_instruction] hole with its nested ite and every [Shared] hole with
    its constant, and typechecks.  Returns the design and the hole
    bindings. *)
