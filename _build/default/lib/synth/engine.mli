(** Control logic synthesis (paper §3.3): filling datapath-sketch holes so
    that every specification instruction's precondition implies its
    postcondition, for all initial states — Equation (1), decided by CEGIS.

    Strategy selection:
    - independent per-instruction CEGIS when the mode is [Per_instruction]
      and no [Shared] holes exist (the paper's §3.3.1 optimization);
    - joint synthesis with per-instruction verification when [Shared] holes
      (FSM state encodings) must be consistent across instructions;
    - [Monolithic]: one verification query over the disjunction of all
      instructions' violation formulas — the unoptimized baseline whose
      solving time explodes (Table 1's dagger rows). *)

type mode = Per_instruction | Monolithic

type options = {
  mode : mode;
  conflict_budget : int;  (** total SAT conflicts before declaring timeout *)
  max_iterations : int;  (** CEGIS rounds per loop *)
  deadline_seconds : float option;  (** wall-clock timeout *)
  check_independence : bool;
      (** verify the instruction-independence preconditions (paper §3.3.1)
          before synthesizing; the abstraction function's assume wires act
          as the permitted feedback cuts *)
}

val default_options : options
(** [Per_instruction], unlimited conflicts, 256 rounds, no deadline. *)

type stats = {
  mutable iterations : int;
  mutable queries : int;
  mutable conflicts : int;
  mutable wall_seconds : float;
}

type solved = {
  completed : Oyster.Ast.design;  (** holes filled, typechecked *)
  bindings : (string * Oyster.Ast.expr) list;  (** what filled each hole *)
  per_instr : (string * (string * Bitvec.t) list) list;
      (** instruction -> hole -> synthesized constant *)
  shared : (string * Bitvec.t) list;  (** Shared-hole constants *)
  pre_exprs : (string * Oyster.Ast.expr) list;
      (** each instruction's precondition over the datapath namespace *)
  stats : stats;
}

type outcome =
  | Solved of solved
  | Timeout of stats
  | Unrealizable of { instr : string option; stats : stats }
      (** no hole values satisfy the named instruction (or, in joint modes,
          the conjunction) *)
  | Union_failed of { diagnostic : string; stats : stats }
      (** synthesis succeeded but a precondition could not be re-expressed
          over the datapath wires *)
  | Not_independent of {
      overlapping : (string * string) list;
      feedback : (string * string * string) list;
      stats : stats;
    }  (** the §3.3.1 preconditions fail (with [check_independence]) *)

exception Engine_error of string

type problem = {
  design : Oyster.Ast.design;
  spec : Ila.Spec.t;
  af : Ila.Absfun.t;
}

val ground_reads : Solver.model -> Term.t -> Term.t
(** Replaces residual (hole-address-dependent) memory reads of a
    counterexample-substituted formula by the counterexample's memory
    function; exposed for the {!Minimize} pass and tests. *)

val synthesize : ?options:options -> problem -> outcome

(** {1 Verification of completed designs}

    With no holes this is plain bounded refinement checking — the way a
    hand-written control implementation is formally checked against the
    specification, instruction by instruction.

    Each query is preprocessed by {e field refinement}: instruction-word
    fields that the precondition pins to constants (opcode, funct3,
    funct7) are substituted structurally into the fetched word, so the
    decode comparisons fold and the datapath's operation-selection muxes
    collapse before bit-blasting.  Without this, verifying a core whose
    ALU tree contains wide multipliers or dividers is intractable: the
    solver has to refute every unselected cone bit by bit. *)

type verdict = Verified | Violated of Solver.model | Inconclusive

val verify :
  ?budget:int -> ?deadline:float -> problem -> (string * verdict) list
(** Raises {!Engine_error} if the design still has holes. *)
