(** Field refinement: structural substitution of precondition-pinned fields.

    During synthesis the decode muxes collapse because the candidate control
    values are constants.  During verification of a completed design the
    control is an expression over the instruction word, so the datapath keeps
    its full selection trees — for an M-extension core that means eight
    symbolic 64-bit multiplier and divider cones feeding one mux, which the
    bit-level solver has to refute one path at a time.

    An instruction's precondition pins instruction-word fields to constants
    ([extract[6:0](fetch) = opcode], ...).  Substituting those constants
    structurally — replacing the fetched word with
    [concat(funct7-const, rs2, rs1, funct3-const, rd, opcode-const)] —
    lets the term simplifier fold the decode comparisons and collapse the
    selection trees before bit-blasting.  The rewrite is equisatisfiable
    with the original formula {e provided the pinning equalities are
    conjuncts of it}: the refined word agrees with the original on every
    unpinned bit, and the precondition forces the pinned bits anyway. *)

type pins
(** Pinned bits, per base term (a variable or an uninterpreted read). *)

val collect : Term.t -> pins
(** [collect pre] extracts field pins from the top-level conjuncts of
    [pre]: every conjunct of the form [extract(base, hi, lo) = const] or
    [base = const] where [base] is a variable or a memory read.  On
    conflicting pins the first wins — the formula is unsatisfiable either
    way and the solver settles it. *)

val is_empty : pins -> bool

val apply : pins -> Term.t -> Term.t
(** [apply pins t] replaces every pinned base occurring in [t] with the
    concatenation of its pinned constants and extracts of the base for the
    unpinned gaps, re-simplifying bottom-up.  Sound only when the formula
    solved implies the pinning equalities [collect] saw (e.g. it conjoins
    the same precondition). *)
