(** Reconstruction of Oyster expressions from SMT terms.

    The control union emits per-instruction precondition wires; the
    preconditions exist as {!Term.t}s compiled from the ILA decode.  This
    module rebuilds them as datapath code, replacing any subterm the
    datapath already computes — a wire, input, or register sampled in some
    cycle — by a reference to that name.  Failure ([None]) means the decode
    depends on state the sketch does not expose. *)

type ctx

val ctx_of_trace : ?prefer:string list -> Oyster.Symbolic.trace -> ctx
(** Matching context from every cycle's wires and the initial register
    values.  [prefer] names (typically the holes' declared dependencies)
    win conflicts regardless of cycle; then earlier cycles, then registers,
    with a lexicographic tie-break. *)

val expr_of_term : ctx -> Term.t -> Oyster.Ast.expr option
