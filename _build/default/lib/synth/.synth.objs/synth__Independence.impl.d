lib/synth/independence.ml: Array Hashtbl Ila List Option Oyster Solver String
