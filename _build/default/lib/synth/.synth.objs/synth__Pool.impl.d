lib/synth/pool.ml: Array Atomic Domain List
