lib/synth/reconstruct.mli: Oyster Term
