lib/synth/independence.mli: Ila Oyster
