lib/synth/union.mli: Bitvec Oyster
