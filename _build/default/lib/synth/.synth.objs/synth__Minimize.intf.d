lib/synth/minimize.mli: Engine
