lib/synth/refine.mli: Term
