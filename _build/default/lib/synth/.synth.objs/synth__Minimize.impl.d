lib/synth/minimize.ml: Bitvec Engine Hashtbl Ila List Oyster Solver String Term Union Unix
