lib/synth/reconstruct.ml: Array Hashtbl List Option Oyster String Term
