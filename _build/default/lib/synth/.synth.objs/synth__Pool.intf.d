lib/synth/pool.mli:
