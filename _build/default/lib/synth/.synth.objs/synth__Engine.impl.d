lib/synth/engine.ml: Bitvec Hashtbl Ila Independence List Option Oyster Printf Reconstruct Refine Solver String Term Union Unix
