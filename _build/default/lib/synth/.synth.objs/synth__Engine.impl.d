lib/synth/engine.ml: Atomic Bitvec Hashtbl Ila Independence List Option Oyster Pool Printf Reconstruct Refine Solver String Term Union Unix
