lib/synth/engine.mli: Bitvec Ila Oyster Solver Term
