lib/synth/union.ml: Bitvec List Option Oyster String
