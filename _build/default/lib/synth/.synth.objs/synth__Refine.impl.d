lib/synth/refine.ml: Array Bitvec Hashtbl List Term
