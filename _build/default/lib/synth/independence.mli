(** The instruction-independence property (paper §3.3.1) whose two
    conditions license per-instruction synthesis and the control union. *)

type exclusion_report = {
  overlapping : (string * string) list;
      (** instruction pairs whose preconditions can hold simultaneously *)
  undecided : (string * string) list;  (** solver budget exhausted *)
}

val check_mutual_exclusion :
  ?budget:int -> Ila.Conditions.conditions list -> exclusion_report
(** Pairwise satisfiability of [pre_i /\ pre_j] (plus assumptions); empty
    [overlapping] means the preconditions are mutually exclusive. *)

type feedback_report = {
  feedback_paths : (string * string * string) list;
      (** (source hole, tainted dependency wire, consuming hole) *)
}

val check_no_feedback :
  ?allowed_cuts:string list -> Oyster.Ast.design -> feedback_report
(** Static combinational-taint analysis: no hole's output may reach another
    hole's declared dependency wires, except through [allowed_cuts] (the
    valid/flush wires the abstraction function identifies, per the paper's
    exception). *)

val independent :
  ?budget:int ->
  ?allowed_cuts:string list ->
  Oyster.Ast.design ->
  Ila.Conditions.conditions list ->
  exclusion_report * feedback_report * bool
(** Both checks; the boolean is the conjunction "independent". *)
