(* Field refinement (see the interface for the full story): preconditions
   pin instruction-word fields to constants; substituting the constants
   structurally into the word lets the simplifier collapse decode and
   operation-selection structure before bit-blasting. *)

type pins = (int, Term.t * bool option array) Hashtbl.t

let conjuncts (root : Term.t) : Term.t list =
  let rec go acc (t : Term.t) =
    match t.Term.node with
    | Term.Binop (Term.And, a, b) when t.Term.width = 1 -> go (go acc a) b
    | _ -> t :: acc
  in
  go [] root

(* Bases worth refining are opaque leaves of the bit-level encoding: a
   variable or an uninterpreted memory read.  Anything structured already
   folds under extract on its own. *)
let refinable (t : Term.t) =
  match t.Term.node with Term.Var _ | Term.Read _ -> true | _ -> false

let collect (pre : Term.t) : pins =
  let tbl = Hashtbl.create 8 in
  let pin (base : Term.t) hi lo (c : Bitvec.t) =
    let _, bits =
      match Hashtbl.find_opt tbl (Term.id base) with
      | Some entry -> entry
      | None ->
          let entry = (base, Array.make base.Term.width None) in
          Hashtbl.add tbl (Term.id base) entry;
          entry
    in
    for i = lo to hi do
      (* on conflicting pins keep the first; the formula is unsatisfiable
         either way and the solver settles it *)
      if bits.(i) = None then bits.(i) <- Some (Bitvec.bit c (i - lo))
    done
  in
  List.iter
    (fun (t : Term.t) ->
      match t.Term.node with
      | Term.Cmp (Term.Eq, a, b) -> (
          let field (x : Term.t) (c : Bitvec.t) =
            match x.Term.node with
            | Term.Extract (hi, lo, base) when refinable base -> pin base hi lo c
            | _ when refinable x -> pin x (x.Term.width - 1) 0 c
            | _ -> ()
          in
          match (a.Term.node, b.Term.node) with
          | Term.Const c, _ -> field b c
          | _, Term.Const c -> field a c
          | _ -> ())
      | _ -> ())
    (conjuncts pre);
  tbl

let is_empty (pins : pins) = Hashtbl.length pins = 0

let refined_of_pins (base : Term.t) (bits : bool option array) : Term.t =
  let seg hi lo =
    match bits.(lo) with
    | Some _ ->
        let arr =
          Array.init (hi - lo + 1) (fun i ->
              match bits.(lo + i) with Some b -> b | None -> assert false)
        in
        Term.const (Bitvec.of_bits arr)
    | None -> Term.extract ~high:hi ~low:lo base
  in
  let rec build hi =
    let pinned = bits.(hi) <> None in
    let lo = ref hi in
    while !lo > 0 && (bits.(!lo - 1) <> None) = pinned do
      decr lo
    done;
    let s = seg hi !lo in
    if !lo = 0 then s else Term.concat s (build (!lo - 1))
  in
  build (base.Term.width - 1)

let apply (pins : pins) (root : Term.t) : Term.t =
  if is_empty pins then root
  else begin
    let memo = Hashtbl.create 64 in
    let rec go (t : Term.t) =
      match Hashtbl.find_opt memo (Term.id t) with
      | Some r -> r
      | None ->
          let r =
            match Hashtbl.find_opt pins (Term.id t) with
            | Some (base, bits) -> refined_of_pins base bits
            | None -> (
                match t.Term.node with
                | Term.Const _ | Term.Var _ -> t
                | Term.Not x -> Term.bnot (go x)
                | Term.Binop (op, a, b) -> (
                    let a = go a and b = go b in
                    match op with
                    | Term.And -> Term.band a b
                    | Term.Or -> Term.bor a b
                    | Term.Xor -> Term.bxor a b
                    | Term.Add -> Term.add a b
                    | Term.Sub -> Term.sub a b
                    | Term.Mul -> Term.mul a b
                    | Term.Udiv -> Term.udiv a b
                    | Term.Urem -> Term.urem a b
                    | Term.Sdiv -> Term.sdiv a b
                    | Term.Srem -> Term.srem a b
                    | Term.Clmul -> Term.clmul a b
                    | Term.Clmulh -> Term.clmulh a b
                    | Term.Shl -> Term.shl a b
                    | Term.Lshr -> Term.lshr a b
                    | Term.Ashr -> Term.ashr a b)
                | Term.Cmp (op, a, b) -> (
                    let a = go a and b = go b in
                    match op with
                    | Term.Eq -> Term.eq a b
                    | Term.Ult -> Term.ult a b
                    | Term.Ule -> Term.ule a b
                    | Term.Slt -> Term.slt a b
                    | Term.Sle -> Term.sle a b)
                | Term.Ite (c, a, b) -> Term.ite (go c) (go a) (go b)
                | Term.Extract (h, l, x) -> Term.extract ~high:h ~low:l (go x)
                | Term.Concat (a, b) -> Term.concat (go a) (go b)
                | Term.Table (tb, i) -> Term.table_read tb (go i)
                | Term.Read (m, a) -> Term.read m (go a))
          in
          Hashtbl.add memo (Term.id t) r;
          r
    in
    go root
  end
