(** Arbitrary-width bitvectors.

    Every value carries an explicit positive width [w] and denotes an
    unsigned integer in [0, 2^w).  All arithmetic is modulo [2^w].  Values
    are immutable and canonical: two bitvectors are structurally equal iff
    they have the same width and denote the same integer, so the polymorphic
    [compare]/[equal]/[Hashtbl.hash] work — but prefer the typed functions
    below.

    This module is the concrete semantic domain of the whole toolchain:
    the Oyster interpreter, the ILA specification evaluator, the SMT term
    simplifier, and the instruction-set simulators all compute with it. *)

type t

(** {1 Construction} *)

val width : t -> int

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w].  Raises
    [Invalid_argument] if [w < 1]. *)

val one : int -> t
(** [one w] is the value 1 at width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones vector, i.e. [2^w - 1]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates [n] to [width] bits.  Negative [n] is
    interpreted in two's complement (so [of_int ~width:8 (-1) = ones 8]). *)

val of_int64 : width:int -> int64 -> t

val of_string : string -> t
(** Parses Verilog-style constants: ["8'xff"], ["4'b1010"], ["12'd255"],
    ["8'255"] (decimal when no base letter).  Raises [Invalid_argument] on
    malformed input or if the value does not fit the width. *)

val of_bits : bool array -> t
(** [of_bits a] builds a vector of width [Array.length a] with bit [i]
    (LSB-first) equal to [a.(i)].  Raises [Invalid_argument] on empty. *)

(** {1 Observation} *)

val to_int : t -> int option
(** [to_int v] is [Some n] when the unsigned value fits in an OCaml [int]. *)

val to_int_exn : t -> int

val to_int_trunc : t -> int
(** Low [min width 62] bits as a non-negative [int]; never fails. *)

val to_signed_int : t -> int option
(** Two's-complement signed value when it fits in an OCaml [int]. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB = 0).  Raises [Invalid_argument] if [i] is
    out of range. *)

val to_bits : t -> bool array

val to_string : t -> string
(** Verilog-style hex rendering, e.g. ["8'x1f"]. *)

val to_binary_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Comparisons} *)

val equal : t -> t -> bool
(** Width and value equality. *)

val compare : t -> t -> int
(** Total order: first by width, then by unsigned value. *)

val hash : t -> int

val is_zero : t -> bool
val is_ones : t -> bool

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool
(** Unsigned / two's-complement signed comparisons.  Raise
    [Invalid_argument] on width mismatch. *)

val msb : t -> bool

(** {1 Arithmetic (modulo [2^w]; arguments must have equal widths)} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val udiv : t -> t -> t
(** Unsigned division; division by zero yields all-ones (the RISC-V/SMT-LIB
    convention used across the toolchain). *)

val urem : t -> t -> t
(** Unsigned remainder; remainder by zero yields the dividend. *)

val sdiv : t -> t -> t
(** Signed division, rounding toward zero; [x / 0 = -1] and
    [min / -1 = min] (two's-complement wrap). *)

val srem : t -> t -> t
(** Signed remainder (sign of the dividend); [x % 0 = x] and
    [min % -1 = 0]. *)

val clmul : t -> t -> t
(** Carry-less (GF(2)) multiply, low [w] bits — the RISC-V Zbkc [clmul]. *)

val clmulh : t -> t -> t
(** Carry-less multiply, high [w] bits ([clmulh]). *)

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Shifts and rotates}

    The [_int] forms take the shift amount as an [int]; amounts [>= width]
    yield zero (or sign bits, for [ashr]).  The plain forms take the amount
    as a bitvector (any width) interpreted unsigned. *)

val shl_int : t -> int -> t
val lshr_int : t -> int -> t
val ashr_int : t -> int -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

val rol_int : t -> int -> t
val ror_int : t -> int -> t
val rol : t -> t -> t
val ror : t -> t -> t
(** Rotates; the amount is reduced modulo the width. *)

(** {1 Structure} *)

val extract : high:int -> low:int -> t -> t
(** [extract ~high ~low v] is bits [low..high] inclusive, width
    [high - low + 1].  Requires [0 <= low <= high < width v]. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] in the upper bits. *)

val zext : t -> int -> t
(** [zext v w] zero-extends to width [w >= width v]. *)

val sext : t -> int -> t
(** [sext v w] sign-extends to width [w >= width v]. *)

val repeat : t -> int -> t
(** [repeat v n] concatenates [n >= 1] copies of [v]. *)

(** {1 Reductions} *)

val reduce_or : t -> bool
val reduce_and : t -> bool
val reduce_xor : t -> bool
val popcount : t -> int
