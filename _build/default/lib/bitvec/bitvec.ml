(* Arbitrary-width bitvectors stored as LSB-first arrays of 31-bit limbs.
   31-bit limbs keep every intermediate of schoolbook multiplication within
   OCaml's 63-bit native int: (2^31-1)^2 + limb + carry = 2^62 - 1 = max_int. *)

let limb_bits = 31
let limb_mask = (1 lsl limb_bits) - 1

type t = { w : int; limbs : int array }

let width v = v.w

let nlimbs_of_width w = (w + limb_bits - 1) / limb_bits

let check_width w =
  if w < 1 then invalid_arg (Printf.sprintf "Bitvec: width %d < 1" w)

(* Mask the top limb so the representation is canonical. *)
let canonicalize v =
  let top = v.w mod limb_bits in
  if top <> 0 then begin
    let i = Array.length v.limbs - 1 in
    v.limbs.(i) <- v.limbs.(i) land ((1 lsl top) - 1)
  end;
  v

let make_raw w = { w; limbs = Array.make (nlimbs_of_width w) 0 }

let zero w =
  check_width w;
  make_raw w

let of_int ~width:w n =
  check_width w;
  let v = make_raw w in
  let n = ref n in
  (* Arithmetic shift propagates the sign, giving two's complement for
     negative inputs once each limb is masked. *)
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- !n land limb_mask;
    n := !n asr limb_bits
  done;
  canonicalize v

let of_int64 ~width:w n =
  check_width w;
  let v = make_raw w in
  let n = ref n in
  for i = 0 to Array.length v.limbs - 1 do
    v.limbs.(i) <- Int64.to_int (Int64.logand !n (Int64.of_int limb_mask));
    n := Int64.shift_right !n limb_bits
  done;
  canonicalize v

let one w = of_int ~width:w 1

let ones w =
  check_width w;
  let v = make_raw w in
  Array.fill v.limbs 0 (Array.length v.limbs) limb_mask;
  canonicalize v

let bit v i =
  if i < 0 || i >= v.w then
    invalid_arg (Printf.sprintf "Bitvec.bit: index %d out of width %d" i v.w);
  v.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let of_bits a =
  let w = Array.length a in
  check_width w;
  let v = make_raw w in
  Array.iteri
    (fun i b ->
      if b then
        v.limbs.(i / limb_bits) <-
          v.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits)))
    a;
  v

let to_bits v = Array.init v.w (bit v)

let is_zero v = Array.for_all (fun l -> l = 0) v.limbs

let is_ones v =
  let rec go i = if i >= v.w then true else bit v i && go (i + 1) in
  go 0

let to_int v =
  (* The value fits in an OCaml int iff all bits at positions >= 62 are 0. *)
  let fits = ref true in
  for i = 62 to v.w - 1 do
    if bit v i then fits := false
  done;
  if not !fits then None
  else begin
    let n = ref 0 in
    for i = Array.length v.limbs - 1 downto 0 do
      n := (!n lsl limb_bits) lor v.limbs.(i)
    done;
    Some !n
  end

let to_int_exn v =
  match to_int v with
  | Some n -> n
  | None -> invalid_arg "Bitvec.to_int_exn: value exceeds int range"

let to_int_trunc v =
  let hi = min v.w 62 in
  let n = ref 0 in
  for i = hi - 1 downto 0 do
    n := (!n lsl 1) lor (if bit v i then 1 else 0)
  done;
  !n

let msb v = bit v (v.w - 1)

let to_signed_int v =
  if v.w <= 62 then begin
    let n = to_int_trunc v in
    Some (if msb v then n - (1 lsl v.w) else n)
  end
  else begin
    (* Fits iff bits 62..w-1 all equal the sign interpretation of bit 62. *)
    let sign = bit v (v.w - 1) in
    let fits = ref true in
    for i = 62 to v.w - 1 do
      if bit v i <> sign then fits := false
    done;
    if not !fits then None
    else begin
      let n = ref 0 in
      for i = 61 downto 0 do
        n := (!n lsl 1) lor (if bit v i then 1 else 0)
      done;
      Some (if sign then !n - (1 lsl 62) else !n)
    end
  end

let equal a b = a.w = b.w && a.limbs = b.limbs

let compare a b =
  let c = Stdlib.compare a.w b.w in
  if c <> 0 then c
  else begin
    let rec go i =
      if i < 0 then 0
      else
        let c = Stdlib.compare a.limbs.(i) b.limbs.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Array.length a.limbs - 1)
  end

let hash v = Hashtbl.hash (v.w, v.limbs)

let check_same_width name a b =
  if a.w <> b.w then
    invalid_arg
      (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" name a.w b.w)

let ult a b =
  check_same_width "ult" a b;
  compare a b < 0

let ule a b =
  check_same_width "ule" a b;
  compare a b <= 0

let slt a b =
  check_same_width "slt" a b;
  match (msb a, msb b) with
  | true, false -> true
  | false, true -> false
  | _ -> compare a b < 0

let sle a b = equal a b || slt a b

(* {1 Arithmetic} *)

let add a b =
  check_same_width "add" a b;
  let r = make_raw a.w in
  let carry = ref 0 in
  for i = 0 to Array.length r.limbs - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    r.limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  canonicalize r

let lognot a =
  let r = make_raw a.w in
  for i = 0 to Array.length r.limbs - 1 do
    r.limbs.(i) <- lnot a.limbs.(i) land limb_mask
  done;
  canonicalize r

let neg a = add (lognot a) (one a.w)

let sub a b =
  check_same_width "sub" a b;
  add a (neg b)

let mul a b =
  check_same_width "mul" a b;
  let n = Array.length a.limbs in
  let r = make_raw a.w in
  for i = 0 to n - 1 do
    if a.limbs.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to n - 1 - i do
        let t = r.limbs.(i + j) + (a.limbs.(i) * b.limbs.(j)) + !carry in
        r.limbs.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done
    end
  done;
  canonicalize r

let binop_limbs name f a b =
  check_same_width name a b;
  let r = make_raw a.w in
  for i = 0 to Array.length r.limbs - 1 do
    r.limbs.(i) <- f a.limbs.(i) b.limbs.(i)
  done;
  canonicalize r

let logand a = binop_limbs "logand" ( land ) a
let logor a = binop_limbs "logor" ( lor ) a
let logxor a = binop_limbs "logxor" ( lxor ) a

(* {1 Shifts} *)

let shl_int a k =
  if k < 0 then invalid_arg "Bitvec.shl_int: negative amount";
  if k >= a.w then zero a.w
  else begin
    let r = make_raw a.w in
    for i = a.w - 1 downto k do
      if bit a (i - k) then
        r.limbs.(i / limb_bits) <-
          r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    r
  end

let lshr_int a k =
  if k < 0 then invalid_arg "Bitvec.lshr_int: negative amount";
  if k >= a.w then zero a.w
  else begin
    let r = make_raw a.w in
    for i = 0 to a.w - 1 - k do
      if bit a (i + k) then
        r.limbs.(i / limb_bits) <-
          r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    r
  end

let ashr_int a k =
  if k < 0 then invalid_arg "Bitvec.ashr_int: negative amount";
  let k = min k a.w in
  let r = lshr_int a k in
  if msb a then begin
    (* Fill the vacated top k bits with ones. *)
    for i = a.w - k to a.w - 1 do
      r.limbs.(i / limb_bits) <-
        r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done
  end;
  r

let shift_amount b =
  (* Unsigned amount, saturated to an int large enough to exceed any width. *)
  let saturated = ref false in
  for i = 62 to b.w - 1 do
    if bit b i then saturated := true
  done;
  if !saturated then max_int else to_int_trunc b

let shl a b = shl_int a (shift_amount b)
let lshr a b = lshr_int a (shift_amount b)
let ashr a b = ashr_int a (shift_amount b)

let rol_int a k =
  let k = ((k mod a.w) + a.w) mod a.w in
  if k = 0 then a else logor (shl_int a k) (lshr_int a (a.w - k))

let ror_int a k = rol_int a (-k)

let rol a b = rol_int a (shift_amount b mod a.w)
let ror a b = ror_int a (shift_amount b mod a.w)

(* Division follows the RISC-V/SMT-LIB-compatible total semantics used
   across the whole toolchain:
     udiv x 0 = ones        urem x 0 = x
     sdiv x 0 = -1          srem x 0 = x
     sdiv min (-1) = min    srem min (-1) = 0
   (the last two fall out of two's-complement wrap-around). *)
let udivrem a b =
  check_same_width "udiv" a b;
  let w = a.w in
  if is_zero b then (ones w, a)
  else begin
    (* restoring long division, one bit at a time *)
    let q = make_raw w in
    let r = ref (zero w) in
    for i = w - 1 downto 0 do
      r := shl_int !r 1;
      if bit a i then r := logor !r (one w);
      if ule b !r then begin
        r := sub !r b;
        q.limbs.(i / limb_bits) <- q.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (q, !r)
  end

let udiv a b = fst (udivrem a b)
let urem a b = snd (udivrem a b)

let sdivrem a b =
  check_same_width "sdiv" a b;
  let w = a.w in
  if is_zero b then (ones w, a)
  else begin
    let abs_ v = if msb v then neg v else v in
    let q, r = udivrem (abs_ a) (abs_ b) in
    let q = if msb a <> msb b then neg q else q in
    let r = if msb a then neg r else r in
    ignore w;
    (q, r)
  end

let sdiv a b = fst (sdivrem a b)
let srem a b = snd (sdivrem a b)


(* {1 Carry-less multiplication} *)

let clmul_wide a b =
  (* Full 2w-bit carry-less product, returned at width 2w. *)
  check_same_width "clmul" a b;
  let w2 = 2 * a.w in
  let az = make_raw w2 in
  Array.blit a.limbs 0 az.limbs 0 (Array.length a.limbs);
  let acc = ref (zero w2) in
  for i = 0 to b.w - 1 do
    if bit b i then acc := logxor !acc (shl_int az i)
  done;
  !acc

let extract ~high ~low v =
  if low < 0 || high < low || high >= v.w then
    invalid_arg
      (Printf.sprintf "Bitvec.extract: [%d:%d] out of width %d" high low v.w);
  let w = high - low + 1 in
  let r = make_raw w in
  for i = 0 to w - 1 do
    if bit v (i + low) then
      r.limbs.(i / limb_bits) <-
        r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
  done;
  r

let clmul a b = extract ~high:(a.w - 1) ~low:0 (clmul_wide a b)

let clmulh a b = extract ~high:(2 * a.w - 1) ~low:a.w (clmul_wide a b)

let concat hi lo =
  let w = hi.w + lo.w in
  let r = make_raw w in
  for i = 0 to lo.w - 1 do
    if bit lo i then
      r.limbs.(i / limb_bits) <-
        r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
  done;
  for i = 0 to hi.w - 1 do
    let j = i + lo.w in
    if bit hi i then
      r.limbs.(j / limb_bits) <- r.limbs.(j / limb_bits) lor (1 lsl (j mod limb_bits))
  done;
  r

let zext v w =
  if w < v.w then
    invalid_arg (Printf.sprintf "Bitvec.zext: %d < %d" w v.w);
  if w = v.w then v
  else begin
    let r = make_raw w in
    Array.blit v.limbs 0 r.limbs 0 (Array.length v.limbs);
    r
  end

let sext v w =
  if w < v.w then
    invalid_arg (Printf.sprintf "Bitvec.sext: %d < %d" w v.w);
  if w = v.w then v
  else if not (msb v) then zext v w
  else begin
    let r = zext v w in
    for i = v.w to w - 1 do
      r.limbs.(i / limb_bits) <-
        r.limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    r
  end

let repeat v n =
  if n < 1 then invalid_arg "Bitvec.repeat: count < 1";
  let rec go acc k = if k = 0 then acc else go (concat v acc) (k - 1) in
  go v (n - 1)

let reduce_or v = not (is_zero v)
let reduce_and v = is_ones v

let popcount v =
  let n = ref 0 in
  Array.iter
    (fun l ->
      let l = ref l in
      while !l <> 0 do
        l := !l land (!l - 1);
        incr n
      done)
    v.limbs;
  !n

let reduce_xor v = popcount v land 1 = 1

(* {1 Text} *)

let to_binary_string v =
  let b = Buffer.create (v.w + 8) in
  Buffer.add_string b (string_of_int v.w);
  Buffer.add_string b "'b";
  for i = v.w - 1 downto 0 do
    Buffer.add_char b (if bit v i then '1' else '0')
  done;
  Buffer.contents b

let to_string v =
  let ndigits = (v.w + 3) / 4 in
  let b = Buffer.create (ndigits + 8) in
  Buffer.add_string b (string_of_int v.w);
  Buffer.add_string b "'x";
  for d = ndigits - 1 downto 0 do
    let nib = ref 0 in
    for k = 3 downto 0 do
      let i = (d * 4) + k in
      nib := (!nib lsl 1) lor (if i < v.w && bit v i then 1 else 0)
    done;
    Buffer.add_char b "0123456789abcdef".[!nib]
  done;
  Buffer.contents b

let pp fmt v = Format.pp_print_string fmt (to_string v)

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Bitvec.of_string: %S" s) in
  match String.index_opt s '\'' with
  | None -> fail ()
  | Some q ->
      let w = try int_of_string (String.sub s 0 q) with _ -> fail () in
      check_width w;
      let rest = String.sub s (q + 1) (String.length s - q - 1) in
      if rest = "" then fail ();
      let base, digits =
        match rest.[0] with
        | 'b' | 'B' -> (2, String.sub rest 1 (String.length rest - 1))
        | 'x' | 'X' | 'h' | 'H' -> (16, String.sub rest 1 (String.length rest - 1))
        | 'd' | 'D' -> (10, String.sub rest 1 (String.length rest - 1))
        | '0' .. '9' -> (10, rest)
        | _ -> fail ()
      in
      if digits = "" then fail ();
      let digit_val c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail ()
      in
      (* Accumulate via bitvector arithmetic at width w + a guard bit so we
         can detect overflow of the declared width. *)
      let gw = w + 4 in
      let base_bv = of_int ~width:gw base in
      let acc = ref (zero gw) in
      String.iter
        (fun c ->
          if c <> '_' then begin
            let d = digit_val c in
            if d >= base then fail ();
            acc := add (mul !acc base_bv) (of_int ~width:gw d);
            (* Overflow check: guard bits must stay zero. *)
            if reduce_or (extract ~high:(gw - 1) ~low:w !acc) then fail ()
          end)
        digits;
      extract ~high:(w - 1) ~low:0 !acc
