(* Textual rendering of Oyster designs.  The format round-trips through
   Parser and is the "lines of Oyster code" measure used by the Table 1
   benchmark (one declaration or statement per line). *)

let unop_name = function
  | Ast.Not -> "not"
  | Ast.Neg -> "neg"
  | Ast.RedOr -> "redor"
  | Ast.RedAnd -> "redand"
  | Ast.RedXor -> "redxor"

let binop_name = function
  | Ast.And -> "and"
  | Ast.Or -> "or"
  | Ast.Xor -> "xor"
  | Ast.Add -> "add"
  | Ast.Sub -> "sub"
  | Ast.Mul -> "mul"
  | Ast.Udiv -> "udiv"
  | Ast.Urem -> "urem"
  | Ast.Sdiv -> "sdiv"
  | Ast.Srem -> "srem"
  | Ast.Clmul -> "clmul"
  | Ast.Clmulh -> "clmulh"
  | Ast.Shl -> "shl"
  | Ast.Lshr -> "lshr"
  | Ast.Ashr -> "ashr"
  | Ast.Rol -> "rol"
  | Ast.Ror -> "ror"
  | Ast.Eq -> "eq"
  | Ast.Ne -> "ne"
  | Ast.Ult -> "ult"
  | Ast.Ule -> "ule"
  | Ast.Ugt -> "ugt"
  | Ast.Uge -> "uge"
  | Ast.Slt -> "slt"
  | Ast.Sle -> "sle"
  | Ast.Sgt -> "sgt"
  | Ast.Sge -> "sge"

let rec pp_expr fmt (e : Ast.expr) =
  match e with
  | Ast.Var n -> Format.pp_print_string fmt n
  | Ast.Const v -> Format.pp_print_string fmt (Bitvec.to_string v)
  | Ast.Unop (op, a) ->
      Format.fprintf fmt "@[<hov 1>(%s@ %a)@]" (unop_name op) pp_expr a
  | Ast.Binop (op, a, b) ->
      Format.fprintf fmt "@[<hov 1>(%s@ %a@ %a)@]" (binop_name op) pp_expr a pp_expr b
  | Ast.Ite (c, a, b) ->
      Format.fprintf fmt "@[<hov 1>(if@ %a@ %a@ %a)@]" pp_expr c pp_expr a pp_expr b
  | Ast.Extract (h, l, a) ->
      Format.fprintf fmt "@[<hov 1>(extract %d %d@ %a)@]" h l pp_expr a
  | Ast.Concat (a, b) ->
      Format.fprintf fmt "@[<hov 1>(concat@ %a@ %a)@]" pp_expr a pp_expr b
  | Ast.Zext (a, w) -> Format.fprintf fmt "@[<hov 1>(zext@ %a %d)@]" pp_expr a w
  | Ast.Sext (a, w) -> Format.fprintf fmt "@[<hov 1>(sext@ %a %d)@]" pp_expr a w
  | Ast.Read (m, a) -> Format.fprintf fmt "@[<hov 1>(read %s@ %a)@]" m pp_expr a
  | Ast.RomRead (r, a) -> Format.fprintf fmt "@[<hov 1>(romread %s@ %a)@]" r pp_expr a

let pp_decl fmt (d : Ast.decl) =
  match d with
  | Ast.Input (n, w) -> Format.fprintf fmt "input %s %d" n w
  | Ast.Output (n, w) -> Format.fprintf fmt "output %s %d" n w
  | Ast.Wire (n, w) -> Format.fprintf fmt "wire %s %d" n w
  | Ast.Register (n, w) -> Format.fprintf fmt "register %s %d" n w
  | Ast.Memory { mem_name; addr_width; data_width } ->
      Format.fprintf fmt "memory %s %d %d" mem_name addr_width data_width
  | Ast.Rom { rom_name; rom_addr_width; rom_data } ->
      Format.fprintf fmt "rom %s %d [%s]" rom_name rom_addr_width
        (String.concat " " (Array.to_list (Array.map Bitvec.to_string rom_data)))
  | Ast.Hole { hole_name; hole_width; kind; deps } ->
      Format.fprintf fmt "hole %s %d %s (%s)" hole_name hole_width
        (match kind with Ast.Per_instruction -> "per-instruction" | Ast.Shared -> "shared")
        (String.concat " " deps)

let pp_stmt fmt (s : Ast.stmt) =
  match s with
  | Ast.Assign (n, e) -> Format.fprintf fmt "@[<hov 2>%s :=@ %a@]" n pp_expr e
  | Ast.Write { mem; addr; data; enable } ->
      Format.fprintf fmt "@[<hov 2>write %s@ %a@ %a@ %a@]" mem pp_expr addr
        pp_expr data pp_expr enable

let pp_design fmt (d : Ast.design) =
  Format.pp_set_margin fmt 80;
  Format.fprintf fmt "design %s {@\n" d.name;
  List.iter (fun decl -> Format.fprintf fmt "  @[<hov 2>%a@]@\n" pp_decl decl) d.decls;
  List.iter (fun stmt -> Format.fprintf fmt "  @[<hov 2>%a@]@\n" pp_stmt stmt) d.stmts;
  Format.fprintf fmt "}@\n"

let design_to_string d = Format.asprintf "%a" pp_design d

let expr_to_string e = Format.asprintf "%a" pp_expr e

(* Lines of Oyster code: the sketch-size measure reported in Table 1 — the
   number of non-blank lines of the textual rendering (expressions wrap at
   80 columns, so a datapath with more functional units is longer). *)
let loc (d : Ast.design) =
  design_to_string d |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
