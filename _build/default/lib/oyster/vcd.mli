(** Value Change Dump (IEEE 1364 §18) output from interpreter runs, for
    inspecting simulations in any waveform viewer.

    One simulation cycle advances time by 10 time units; registers are
    sampled after each step (their post-edge values), combinational wires,
    outputs and sampled inputs during it. *)

type recorder

val create : Ast.design -> recorder

val sample : recorder -> Interp.state -> Interp.step_result -> unit
(** Records one executed cycle. *)

val to_string : recorder -> string
(** The complete VCD document for the recorded cycles. *)

val simulate :
  ?inputs:(string -> int -> Bitvec.t) ->
  ?hole_value:(string -> int -> Bitvec.t) ->
  ?state:Interp.state ->
  Ast.design ->
  cycles:int ->
  string
(** Convenience: run the design for [cycles] (starting from [state] or a
    fresh one) and dump everything. *)
