(** Symbolic evaluation of Oyster designs over SMT terms — the
    Rosette-style "lifted interpreter" of paper §3.1.

    A k-cycle evaluation produces the state sequence s_0 .. s_k of the
    paper's Equation (1): register values as terms, memories as
    uninterpreted initial contents plus a chronological write log, and each
    cycle's combinational wire values.

    Naming (every name carries a per-evaluation session prefix [p] so the
    global {!Term} variable registry never sees width clashes):
    [<p>reg!<name>] initial register values, [<p>in!<name>!<c>] the value of
    an input during cycle [c], [<p>hole!<name>] the existential constant for
    a hole under the default policy. *)

type write_event = {
  w_cycle : int;  (** the 1-based cycle whose step performed the write *)
  w_addr : Term.t;
  w_data : Term.t;
  w_enable : Term.t;
}

type snapshot = {
  s_regs : (string * Term.t) list;
  s_writes : (string * write_event list) list;
      (** chronological prefix of the write log committed by this state *)
}

type trace = {
  design : Ast.design;
  prefix : string;
  cycles : int;
  snapshots : snapshot array;  (** length [cycles + 1]: s_0 .. s_k *)
  cycle_wires : (string * Term.t) list array;
      (** index [c-1]: wire/output/input values during cycle [c] *)
  hole_terms : (string * Term.t) list;
  mems : (string * Term.mem) list;
}

val fresh_prefix : unit -> string

val read_over_write : Term.mem -> write_event list -> Term.t -> Term.t
(** Value of the memory at an address given the chronological write log
    (later writes win), bottoming out at the uninterpreted initial
    contents. *)

val eval_unop : Ast.unop -> Term.t -> Term.t
val eval_binop : Ast.binop -> Term.t -> Term.t -> Term.t

val eval :
  ?prefix:string ->
  ?input_term:(string -> int -> cycle:int -> Term.t) ->
  ?hole_term:(string -> int -> lookup:(string -> Term.t) -> Term.t) ->
  Ast.design ->
  cycles:int ->
  trace
(** Runs the design symbolically.  The default input policy creates a fresh
    symbol per input per cycle; the default hole policy creates one
    existential constant per hole.  The design is typechecked first. *)

(** {1 Trace accessors} *)

val reg_at : trace -> state:int -> string -> Term.t
(** Register value in state [s_state] (0 = initial). *)

val wire_at : trace -> cycle:int -> string -> Term.t
(** Combinational value during the given (1-based) cycle. *)

val input_at : trace -> cycle:int -> string -> Term.t

val mem_of : trace -> string -> Term.mem

val read_mem_at : trace -> state:int -> string -> Term.t -> Term.t
(** Read at an address as observed in state [s_state]. *)

val writes_at : trace -> state:int -> string -> write_event list
