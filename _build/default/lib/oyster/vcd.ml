(* Value Change Dump output from interpreter runs. *)

type signal = {
  sig_name : string;
  sig_width : int;
  code : string;  (* VCD identifier *)
  mutable last : Bitvec.t option;  (* last emitted value *)
}

type recorder = {
  design : Ast.design;
  signals : signal list;  (* registers then wires/outputs/inputs *)
  buf : Buffer.t;
  mutable cycle : int;
}

(* Short printable identifier codes: base-94 over '!'..'~'. *)
let code_of_index i =
  let rec go i acc =
    let c = Char.chr (33 + (i mod 94)) in
    let acc = String.make 1 c ^ acc in
    if i < 94 then acc else go ((i / 94) - 1) acc
  in
  go i ""

let create (design : Ast.design) =
  let names =
    List.map (fun (n, w) -> (n, w)) (Ast.registers design)
    @ Ast.inputs design @ Ast.wires design @ Ast.outputs design
  in
  let signals =
    List.mapi
      (fun i (n, w) -> { sig_name = n; sig_width = w; code = code_of_index i; last = None })
      names
  in
  { design; signals; buf = Buffer.create 1024; cycle = 0 }

let emit_value r s (v : Bitvec.t) =
  match s.last with
  | Some old when Bitvec.equal old v -> ()
  | _ ->
      s.last <- Some v;
      if s.sig_width = 1 then
        Buffer.add_string r.buf
          (Printf.sprintf "%d%s\n" (if Bitvec.is_ones v then 1 else 0) s.code)
      else begin
        let bits =
          String.init s.sig_width (fun i ->
              if Bitvec.bit v (s.sig_width - 1 - i) then '1' else '0')
        in
        Buffer.add_string r.buf (Printf.sprintf "b%s %s\n" bits s.code)
      end

let sample r (state : Interp.state) (result : Interp.step_result) =
  Buffer.add_string r.buf (Printf.sprintf "#%d\n" (r.cycle * 10));
  List.iter
    (fun s ->
      let v =
        match Ast.find_decl r.design s.sig_name with
        | Some (Ast.Register _) -> Some (Interp.get_register state s.sig_name)
        | _ -> List.assoc_opt s.sig_name result.Interp.wires
      in
      match v with Some v -> emit_value r s v | None -> ())
    r.signals;
  r.cycle <- r.cycle + 1

let to_string r =
  let header = Buffer.create 512 in
  Buffer.add_string header "$timescale 1ns $end\n";
  Buffer.add_string header
    (Printf.sprintf "$scope module %s $end\n" r.design.Ast.name);
  List.iter
    (fun s ->
      Buffer.add_string header
        (Printf.sprintf "$var wire %d %s %s $end\n" s.sig_width s.code s.sig_name))
    r.signals;
  Buffer.add_string header "$upscope $end\n$enddefinitions $end\n";
  Buffer.contents header ^ Buffer.contents r.buf
  ^ Printf.sprintf "#%d\n" (r.cycle * 10)

let simulate ?inputs ?hole_value ?state design ~cycles =
  let st = match state with Some s -> s | None -> Interp.init design in
  let r = create design in
  for _ = 1 to cycles do
    let result = Interp.step ?inputs ?hole_value st in
    sample r st result
  done;
  to_string r
