(* Static checks for Oyster designs:

   - declaration names are unique; widths are positive
   - every expression is well-typed (widths agree; conditions are 1 bit)
   - wires and outputs are assigned exactly once, before any use
   - registers are assigned at most once per cycle (statically: one Assign)
   - inputs, holes, memories and ROMs are never Assign targets
   - memory reads/writes and ROM reads name declared components
   - ROM data length matches 2^addr_width

   [check] raises [Type_error] with a located message.  [expr_width] is the
   shared width calculator, also used by the interpreters. *)

exception Type_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type kind =
  | Kinput
  | Koutput
  | Kwire
  | Kregister
  | Kmemory of int * int  (* addr, data *)
  | Krom of int * int
  | Khole

type env = { kinds : (string, kind * int) Hashtbl.t }
(* width slot: for memories/roms it is the data width *)

let env_of_design (d : Ast.design) =
  let kinds = Hashtbl.create 64 in
  List.iter
    (fun decl ->
      let name = Ast.decl_name decl in
      if Hashtbl.mem kinds name then fail "duplicate declaration of %s" name;
      let entry =
        match decl with
        | Ast.Input (_, w) -> (Kinput, w)
        | Ast.Output (_, w) -> (Koutput, w)
        | Ast.Wire (_, w) -> (Kwire, w)
        | Ast.Register (_, w) -> (Kregister, w)
        | Ast.Memory { addr_width; data_width; _ } ->
            (Kmemory (addr_width, data_width), data_width)
        | Ast.Rom { rom_addr_width; rom_data; _ } ->
            if Array.length rom_data = 0 then fail "rom %s is empty" name;
            if Array.length rom_data <> 1 lsl rom_addr_width then
              fail "rom %s has %d entries, expected %d" name
                (Array.length rom_data) (1 lsl rom_addr_width);
            let dw = Bitvec.width rom_data.(0) in
            Array.iter
              (fun v ->
                if Bitvec.width v <> dw then
                  fail "rom %s entries have mixed widths" name)
              rom_data;
            (Krom (rom_addr_width, dw), dw)
        | Ast.Hole { hole_width; _ } -> (Khole, hole_width)
      in
      let w = snd entry in
      if w < 1 then fail "%s has width %d < 1" name w;
      (match decl with
      | Ast.Memory { addr_width; _ } ->
          if addr_width < 1 then fail "%s has address width < 1" name
      | Ast.Rom { rom_addr_width; _ } ->
          if rom_addr_width < 1 then fail "%s has address width < 1" name
      | _ -> ());
      Hashtbl.add kinds name entry)
    d.decls;
  { kinds }

(* [defined] tracks wires/outputs that have been assigned so far. *)
let rec expr_width env defined (e : Ast.expr) =
  match e with
  | Ast.Const v -> Bitvec.width v
  | Ast.Var name -> (
      match Hashtbl.find_opt env.kinds name with
      | None -> fail "undeclared variable %s" name
      | Some (kind, w) -> (
          match kind with
          | Kinput | Kregister | Khole -> w
          | Kwire | Koutput ->
              if not (List.mem name !defined) then
                fail "%s read before assignment" name;
              w
          | Kmemory _ -> fail "memory %s used as a variable" name
          | Krom _ -> fail "rom %s used as a variable" name))
  | Ast.Unop (op, a) -> (
      let w = expr_width env defined a in
      match op with
      | Ast.Not | Ast.Neg -> w
      | Ast.RedOr | Ast.RedAnd | Ast.RedXor -> 1)
  | Ast.Binop (op, a, b) -> (
      let wa = expr_width env defined a and wb = expr_width env defined b in
      match op with
      | Ast.Shl | Ast.Lshr | Ast.Ashr | Ast.Rol | Ast.Ror ->
          (* shift amounts may have any width *)
          wa
      | Ast.Eq | Ast.Ne | Ast.Ult | Ast.Ule | Ast.Ugt | Ast.Uge | Ast.Slt
      | Ast.Sle | Ast.Sgt | Ast.Sge ->
          if wa <> wb then fail "comparison of widths %d and %d" wa wb;
          1
      | _ ->
          if wa <> wb then fail "binop on widths %d and %d" wa wb;
          wa)
  | Ast.Ite (c, a, b) ->
      if expr_width env defined c <> 1 then fail "ite condition is not 1 bit";
      let wa = expr_width env defined a and wb = expr_width env defined b in
      if wa <> wb then fail "ite branches of widths %d and %d" wa wb;
      wa
  | Ast.Extract (high, low, a) ->
      let w = expr_width env defined a in
      if low < 0 || high < low || high >= w then
        fail "extract [%d:%d] out of width %d" high low w;
      high - low + 1
  | Ast.Concat (a, b) -> expr_width env defined a + expr_width env defined b
  | Ast.Zext (a, w) | Ast.Sext (a, w) ->
      let wa = expr_width env defined a in
      if w < wa then fail "extension to narrower width %d < %d" w wa;
      w
  | Ast.Read (m, addr) -> (
      match Hashtbl.find_opt env.kinds m with
      | Some (Kmemory (aw, dw), _) ->
          if expr_width env defined addr <> aw then
            fail "read of %s with address width %d, expected %d" m
              (expr_width env defined addr) aw;
          dw
      | Some _ -> fail "%s is not a memory" m
      | None -> fail "undeclared memory %s" m)
  | Ast.RomRead (r, addr) -> (
      match Hashtbl.find_opt env.kinds r with
      | Some (Krom (aw, dw), _) ->
          if expr_width env defined addr <> aw then
            fail "rom read of %s with wrong address width" r;
          dw
      | Some _ -> fail "%s is not a rom" r
      | None -> fail "undeclared rom %s" r)

let check (d : Ast.design) =
  let env = env_of_design d in
  let defined = ref [] in
  let assigned_regs = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Assign (name, e) -> (
          let we = expr_width env defined e in
          match Hashtbl.find_opt env.kinds name with
          | None -> fail "assignment to undeclared %s" name
          | Some (kind, w) -> (
              if we <> w then
                fail "assignment to %s of width %d with expression of width %d"
                  name w we;
              match kind with
              | Kwire | Koutput ->
                  if List.mem name !defined then fail "%s assigned twice" name;
                  defined := name :: !defined
              | Kregister ->
                  if List.mem name !assigned_regs then
                    fail "register %s assigned twice" name;
                  assigned_regs := name :: !assigned_regs
              | Kinput -> fail "assignment to input %s" name
              | Khole -> fail "assignment to hole %s" name
              | Kmemory _ -> fail "assignment to memory %s (use write)" name
              | Krom _ -> fail "assignment to rom %s" name))
      | Ast.Write { mem; addr; data; enable } -> (
          match Hashtbl.find_opt env.kinds mem with
          | Some (Kmemory (aw, dw), _) ->
              if expr_width env defined addr <> aw then
                fail "write to %s with wrong address width" mem;
              if expr_width env defined data <> dw then
                fail "write to %s with wrong data width" mem;
              if expr_width env defined enable <> 1 then
                fail "write enable for %s is not 1 bit" mem;
              ()
          | Some _ -> fail "%s is not a memory" mem
          | None -> fail "undeclared memory %s" mem))
    d.stmts;
  (* every wire and output must be assigned *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.Wire (n, _) | Ast.Output (n, _) ->
          if not (List.mem n !defined) then fail "%s is never assigned" n
      | _ -> ())
    d.decls;
  env

let expr_width_in design e =
  let env = env_of_design design in
  (* for standalone queries, treat everything as defined *)
  let all = Hashtbl.fold (fun k _ acc -> k :: acc) env.kinds [] in
  expr_width env (ref all) e
