(* The Oyster intermediate representation (paper Fig. 5, plus the extra
   bitvector operators §3.1 alludes to).

   An Oyster design is a synchronous machine with a single implicit clock:
   statements execute in order every cycle; assignments to wires and outputs
   are combinational and take effect immediately, assignments to registers
   and memory writes take effect at the next cycle. *)

type unop =
  | Not  (* bitwise complement *)
  | Neg  (* two's complement negation *)
  | RedOr  (* 1-bit or-reduction *)
  | RedAnd  (* 1-bit and-reduction *)
  | RedXor  (* 1-bit xor-reduction (parity) *)

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Sdiv
  | Srem
  | Clmul
  | Clmulh
  | Shl
  | Lshr
  | Ashr
  | Rol
  | Ror
  | Eq
  | Ne
  | Ult
  | Ule
  | Ugt
  | Uge
  | Slt
  | Sle
  | Sgt
  | Sge

type expr =
  | Var of string
  | Const of Bitvec.t
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ite of expr * expr * expr
  | Extract of int * int * expr  (* high, low *)
  | Concat of expr * expr  (* high part first *)
  | Zext of expr * int
  | Sext of expr * int
  | Read of string * expr  (* memory read at current state *)
  | RomRead of string * expr  (* lookup in a read-only table *)

type stmt =
  | Assign of string * expr
      (* wire/output: combinational; register: next-cycle value *)
  | Write of { mem : string; addr : expr; data : expr; enable : expr }

(* How a hole participates in synthesis (see DESIGN.md §5 and paper §3.3.1):
   [Per_instruction] holes get an independent constant per specification
   instruction, joined afterwards by the control-union; [Shared] holes (e.g.
   FSM state encodings) get a single constant that all instructions agree
   on. *)
type hole_kind = Per_instruction | Shared

type mem_decl = { mem_name : string; addr_width : int; data_width : int }
type rom_decl = { rom_name : string; rom_addr_width : int; rom_data : Bitvec.t array }

type hole_decl = {
  hole_name : string;
  hole_width : int;
  kind : hole_kind;
  deps : string list;
      (* the signals the synthesized control logic may depend on
         (the arguments of [??(...)] in the paper's sketches) *)
}

type decl =
  | Input of string * int
  | Output of string * int
  | Wire of string * int
  | Register of string * int
  | Memory of mem_decl
  | Rom of rom_decl
  | Hole of hole_decl

type design = { name : string; decls : decl list; stmts : stmt list }

let decl_name = function
  | Input (n, _) | Output (n, _) | Wire (n, _) | Register (n, _) -> n
  | Memory { mem_name; _ } -> mem_name
  | Rom { rom_name; _ } -> rom_name
  | Hole { hole_name; _ } -> hole_name

let find_decl design name =
  List.find_opt (fun d -> String.equal (decl_name d) name) design.decls

let holes design =
  List.filter_map (function Hole h -> Some h | _ -> None) design.decls

let registers design =
  List.filter_map (function Register (n, w) -> Some (n, w) | _ -> None) design.decls

let memories design =
  List.filter_map
    (function
      | Memory { mem_name; addr_width; data_width } ->
          Some (mem_name, addr_width, data_width)
      | _ -> None)
    design.decls

let inputs design =
  List.filter_map (function Input (n, w) -> Some (n, w) | _ -> None) design.decls

let outputs design =
  List.filter_map (function Output (n, w) -> Some (n, w) | _ -> None) design.decls

let wires design =
  List.filter_map (function Wire (n, w) -> Some (n, w) | _ -> None) design.decls

let roms design =
  List.filter_map (function Rom r -> Some r | _ -> None) design.decls

(* {1 Expression traversal} *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Var _ | Const _ -> acc
  | Unop (_, a) | Extract (_, _, a) | Zext (a, _) | Sext (a, _) -> fold_expr f acc a
  | Binop (_, a, b) | Concat (a, b) -> fold_expr f (fold_expr f acc a) b
  | Ite (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b
  | Read (_, a) | RomRead (_, a) -> fold_expr f acc a

let expr_vars e =
  fold_expr (fun acc e -> match e with Var v -> v :: acc | _ -> acc) [] e
  |> List.sort_uniq String.compare

let expr_mem_reads e =
  fold_expr (fun acc e -> match e with Read (m, _) -> m :: acc | _ -> acc) [] e
  |> List.sort_uniq String.compare

(* {1 Substitution of holes by expressions}

   [fill_holes design bindings] replaces each bound hole declaration by a
   wire declaration plus an assignment, inserted at the earliest point where
   all variables of the binding expression are available.  Unbound holes
   remain.  The result should be re-typechecked by the caller. *)

(* [schedule design] reorders statements into a valid combinational
   evaluation order: every wire/output assignment is placed after the
   assignments of all wires it reads, and all sequential statements
   (register assignments and memory writes) follow the combinational ones,
   keeping their relative order.  Raises [Invalid_argument] on
   combinational cycles.  Used after hole filling, where inserted
   definitions may reference wires that appear late in the original
   order. *)
let schedule design =
  let is_comb name =
    match find_decl design name with
    | Some (Wire _ | Output _) -> true
    | _ -> false
  in
  let comb, seq =
    List.partition
      (fun stmt ->
        match stmt with Assign (n, _) -> is_comb n | Write _ -> false)
      design.stmts
  in
  (* Kahn's algorithm, preferring original order (stable). *)
  let defined = Hashtbl.create 32 in
  List.iter
    (fun d ->
      match d with
      | Input (n, _) | Register (n, _) -> Hashtbl.replace defined n ()
      | Hole { hole_name; _ } -> Hashtbl.replace defined hole_name ()
      | _ -> ())
    design.decls;
  let remaining = ref comb in
  let out = ref [] in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let ready, blocked =
      List.partition
        (fun stmt ->
          match stmt with
          | Assign (_, e) ->
              List.for_all
                (fun v -> Hashtbl.mem defined v || not (is_comb v))
                (expr_vars e)
          | Write _ -> assert false)
        !remaining
    in
    if ready <> [] then begin
      progress := true;
      List.iter
        (fun stmt ->
          match stmt with
          | Assign (n, _) -> Hashtbl.replace defined n ()
          | Write _ -> ())
        ready;
      out := List.rev_append ready !out;
      remaining := blocked
    end
  done;
  if !remaining <> [] then
    invalid_arg
      (Printf.sprintf "Ast.schedule: combinational cycle through %s"
         (String.concat ", "
            (List.filter_map
               (function Assign (n, _) -> Some n | Write _ -> None)
               !remaining)));
  { design with stmts = List.rev !out @ seq }

(* [insert_wires design defs] adds fresh wire declarations and places their
   assignments at the earliest point where all referenced variables are
   defined (same placement logic as [fill_holes]). *)
let insert_wires design (defs : (string * int * expr) list) =
  let decls = design.decls @ List.map (fun (n, w, _) -> Wire (n, w)) defs in
  let initially_defined =
    List.filter_map
      (function
        | Input (n, _) | Register (n, _) -> Some n
        | Hole { hole_name; _ } -> Some hole_name
        | _ -> None)
      design.decls
  in
  let pending = ref (List.map (fun (n, _, e) -> (n, e)) defs) in
  let emit defined =
    (* iterate: a ready definition may enable another *)
    let rec settle defined acc =
      let ready, rest =
        List.partition
          (fun (_, e) -> List.for_all (fun v -> List.mem v defined) (expr_vars e))
          !pending
      in
      pending := rest;
      match ready with
      | [] -> (List.rev acc, defined)
      | _ ->
          settle
            (List.map fst ready @ defined)
            (List.rev_append (List.map (fun (n, e) -> Assign (n, e)) ready) acc)
    in
    settle defined []
  in
  let rec go defined = function
    | [] -> []
    | stmt :: rest ->
        let defined =
          match stmt with Assign (n, _) -> n :: defined | Write _ -> defined
        in
        let inserted, defined = emit defined in
        (stmt :: inserted) @ go defined rest
  in
  let head, defined0 = emit initially_defined in
  let stmts = head @ go defined0 design.stmts in
  if !pending <> [] then
    invalid_arg
      (Printf.sprintf "Ast.insert_wires: unplaceable definitions for %s"
         (String.concat ", " (List.map fst !pending)));
  { design with decls; stmts }

let fill_holes design (bindings : (string * expr) list) =
  let bound = List.map fst bindings in
  let decls =
    List.map
      (fun d ->
        match d with
        | Hole { hole_name; hole_width; _ } when List.mem hole_name bound ->
            Wire (hole_name, hole_width)
        | d -> d)
      design.decls
  in
  (* Names available before any statement runs. *)
  let initially_defined =
    List.filter_map
      (function
        | Input (n, _) | Register (n, _) -> Some n
        | Hole { hole_name; _ } when not (List.mem hole_name bound) -> Some hole_name
        | _ -> None)
      design.decls
  in
  (* Insert each hole assignment once its dependencies are all defined. *)
  let pending = ref bindings in
  let emit defined =
    let ready, rest =
      List.partition
        (fun (_, e) ->
          List.for_all (fun v -> List.mem v defined) (expr_vars e))
        !pending
    in
    pending := rest;
    List.map (fun (n, e) -> Assign (n, e)) ready
  in
  let rec go defined = function
    | [] -> []
    | stmt :: rest ->
        let defined' =
          match stmt with Assign (n, _) -> n :: defined | Write _ -> defined
        in
        let inserted = emit defined' in
        (stmt :: inserted) @ go defined' rest
  in
  let head = emit initially_defined in
  let stmts = head @ go initially_defined design.stmts in
  if !pending <> [] then
    invalid_arg
      (Printf.sprintf "Ast.fill_holes: unplaceable bindings for %s"
         (String.concat ", " (List.map fst !pending)));
  { design with decls; stmts }
