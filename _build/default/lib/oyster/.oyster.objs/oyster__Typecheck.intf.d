lib/oyster/typecheck.mli: Ast Hashtbl
