lib/oyster/ast.mli: Bitvec
