lib/oyster/ast.ml: Bitvec Hashtbl List Printf String
