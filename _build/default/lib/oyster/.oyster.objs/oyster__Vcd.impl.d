lib/oyster/vcd.ml: Ast Bitvec Buffer Char Interp List Printf String
