lib/oyster/parser.mli: Ast
