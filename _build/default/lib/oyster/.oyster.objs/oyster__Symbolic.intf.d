lib/oyster/symbolic.mli: Ast Term
