lib/oyster/parser.ml: Array Ast Bitvec List Printf String
