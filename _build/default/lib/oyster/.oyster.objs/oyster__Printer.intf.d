lib/oyster/printer.mli: Ast Format
