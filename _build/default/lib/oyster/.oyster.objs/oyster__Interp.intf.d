lib/oyster/interp.mli: Ast Bitvec Hashtbl
