lib/oyster/printer.ml: Array Ast Bitvec Format List String
