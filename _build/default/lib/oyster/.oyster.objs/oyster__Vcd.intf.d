lib/oyster/vcd.mli: Ast Bitvec Interp
