lib/oyster/symbolic.ml: Array Ast Atomic Hashtbl Interp List Printf Term Typecheck
