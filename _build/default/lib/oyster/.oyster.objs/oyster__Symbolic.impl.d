lib/oyster/symbolic.ml: Array Ast Hashtbl Interp List Printf Term Typecheck
