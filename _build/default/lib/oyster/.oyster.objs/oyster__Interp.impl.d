lib/oyster/interp.ml: Array Ast Bitvec Hashtbl List Printf
