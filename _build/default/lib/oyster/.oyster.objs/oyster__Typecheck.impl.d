lib/oyster/typecheck.ml: Array Ast Bitvec Hashtbl List Printf
