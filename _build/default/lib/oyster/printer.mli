(** Textual rendering of Oyster designs (s-expression operators, one
    declaration or statement per line, expressions wrapped at 80 columns).
    Round-trips through {!Parser}. *)

val unop_name : Ast.unop -> string
val binop_name : Ast.binop -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_design : Format.formatter -> Ast.design -> unit

val design_to_string : Ast.design -> string
val expr_to_string : Ast.expr -> string

val loc : Ast.design -> int
(** Lines of Oyster code — the sketch-size measure of paper Table 1: the
    number of non-blank lines of the textual rendering. *)
