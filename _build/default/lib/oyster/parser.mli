(** Recursive-descent parser for the textual Oyster format produced by
    {!Printer}.  Comments run from [;] to end of line.

    Grammar (one design per input):
    {v
    design NAME { decl-or-stmt* }
    decl ::= input NAME W | output NAME W | wire NAME W | register NAME W
           | memory NAME AW DW
           | rom NAME AW [ CONST* ]
           | hole NAME W (per-instruction|shared) ( NAME* )
    stmt ::= NAME := expr
           | write NAME expr expr expr
    expr ::= NAME | CONST | ( OP expr* )
    v} *)

exception Parse_error of string

val parse_design : string -> Ast.design
(** Parses a complete design.  Raises {!Parse_error}; the result is not
    typechecked (use {!Typecheck.check}). *)
