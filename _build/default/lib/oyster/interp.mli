(** Cycle-accurate concrete interpretation of Oyster designs — the
    simulator for completed (hole-free or hole-bound) synchronous hardware.

    One {!step} executes every statement of a cycle: combinational
    assignments take effect immediately; register assignments and memory
    writes are buffered and committed at the end of the step, in statement
    order (later writes to the same address win). *)

exception Runtime_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raises {!Runtime_error} with a formatted message. *)

type mem_state = {
  contents : (Bitvec.t, Bitvec.t) Hashtbl.t;
  default : Bitvec.t -> Bitvec.t;  (** backing image for unwritten cells *)
  data_width : int;
}

type state = {
  design : Ast.design;
  regs : (string, Bitvec.t) Hashtbl.t;
  mems : (string, mem_state) Hashtbl.t;
  mutable cycle : int;
}

val init :
  ?mem_init:(string -> int -> int -> Bitvec.t -> Bitvec.t) ->
  Ast.design ->
  state
(** Fresh state: registers zero, memories backed by
    [mem_init name addr_width data_width addr] (default all-zero). *)

val set_register : state -> string -> Bitvec.t -> unit
val get_register : state -> string -> Bitvec.t
val write_mem : state -> string -> Bitvec.t -> Bitvec.t -> unit
val read_mem : state -> string -> Bitvec.t -> Bitvec.t

type step_result = {
  outputs : (string * Bitvec.t) list;
  wires : (string * Bitvec.t) list;
      (** all combinational values of the cycle, including sampled inputs *)
}

val eval_unop : Ast.unop -> Bitvec.t -> Bitvec.t
val eval_binop : Ast.binop -> Bitvec.t -> Bitvec.t -> Bitvec.t

val step :
  ?inputs:(string -> int -> Bitvec.t) ->
  ?hole_value:(string -> int -> Bitvec.t) ->
  state ->
  step_result
(** Executes one cycle.  [inputs name width] supplies input values (the
    default raises); [hole_value] supplies values for unfilled holes (the
    default raises). *)

val run :
  ?inputs:(string -> int -> Bitvec.t) ->
  ?hole_value:(string -> int -> Bitvec.t) ->
  state ->
  cycles:int ->
  step_result list
