(** Static checking of Oyster designs.

    [check] enforces: unique declaration names; positive widths; width
    agreement in every expression (with 1-bit conditions and enables);
    wires and outputs assigned exactly once, before use; registers assigned
    at most once; inputs/holes/memories never [Assign] targets; memory and
    ROM accesses well-formed; ROM data sized [2^addr_width]. *)

exception Type_error of string

(** Component kinds, as recorded in the checking environment. *)
type kind =
  | Kinput
  | Koutput
  | Kwire
  | Kregister
  | Kmemory of int * int  (** address width, data width *)
  | Krom of int * int
  | Khole

type env = { kinds : (string, kind * int) Hashtbl.t }
(** For memories and ROMs the [int] slot is the data width. *)

val env_of_design : Ast.design -> env
(** Builds the environment, validating declarations.  Raises
    {!Type_error}. *)

val expr_width : env -> string list ref -> Ast.expr -> int
(** Width of an expression; [defined] lists the wires/outputs assigned so
    far (reads of others raise).  Raises {!Type_error} on ill-typed
    expressions. *)

val check : Ast.design -> env
(** Full design check.  Raises {!Type_error} with a descriptive message. *)

val expr_width_in : Ast.design -> Ast.expr -> int
(** Standalone width query treating every name as defined. *)
