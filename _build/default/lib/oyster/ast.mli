(** The Oyster intermediate representation (paper Fig. 5).

    An Oyster design is a synchronous machine with one implicit clock.
    Statements execute in order every cycle: assignments to wires and
    outputs are combinational and take effect immediately; assignments to
    registers and memory writes are buffered and commit at the end of the
    cycle.  The [hole] declaration marks control points for the synthesis
    engine to fill (paper §3.1). *)

(** Unary operators; the reductions collapse a vector to one bit. *)
type unop = Not | Neg | RedOr | RedAnd | RedXor

(** Binary operators.  Shift and rotate amounts may have any width and are
    read unsigned; comparisons produce one bit. *)
type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv  (** division by zero yields all-ones (see {!Bitvec.udiv}) *)
  | Urem
  | Sdiv
  | Srem
  | Clmul  (** carry-less multiply, low half (RISC-V Zbkc) *)
  | Clmulh  (** carry-less multiply, high half *)
  | Shl
  | Lshr
  | Ashr
  | Rol
  | Ror
  | Eq
  | Ne
  | Ult
  | Ule
  | Ugt
  | Uge
  | Slt
  | Sle
  | Sgt
  | Sge

type expr =
  | Var of string  (** an input, wire, output, register, or hole *)
  | Const of Bitvec.t
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ite of expr * expr * expr  (** condition must have width 1 *)
  | Extract of int * int * expr  (** high, low (inclusive) *)
  | Concat of expr * expr  (** high part first *)
  | Zext of expr * int
  | Sext of expr * int
  | Read of string * expr  (** memory read, current state *)
  | RomRead of string * expr  (** lookup in a read-only table *)

type stmt =
  | Assign of string * expr
      (** wire/output: combinational; register: next-cycle value *)
  | Write of { mem : string; addr : expr; data : expr; enable : expr }
      (** committed at end of cycle; later writes win on address clashes *)

(** How a hole participates in synthesis (paper §3.3.1): [Per_instruction]
    holes get an independent constant per specification instruction, joined
    by the control union; [Shared] holes (e.g. FSM state encodings) get a
    single constant all instructions agree on. *)
type hole_kind = Per_instruction | Shared

type mem_decl = { mem_name : string; addr_width : int; data_width : int }

type rom_decl = { rom_name : string; rom_addr_width : int; rom_data : Bitvec.t array }

type hole_decl = {
  hole_name : string;
  hole_width : int;
  kind : hole_kind;
  deps : string list;
      (** the signals the synthesized control may depend on — the arguments
          of [??(...)] in the paper's sketches *)
}

type decl =
  | Input of string * int
  | Output of string * int
  | Wire of string * int
  | Register of string * int
  | Memory of mem_decl
  | Rom of rom_decl
  | Hole of hole_decl

type design = { name : string; decls : decl list; stmts : stmt list }

val decl_name : decl -> string

val find_decl : design -> string -> decl option

val holes : design -> hole_decl list

val registers : design -> (string * int) list

val memories : design -> (string * int * int) list
(** [(name, addr_width, data_width)] per memory. *)

val inputs : design -> (string * int) list
val outputs : design -> (string * int) list
val wires : design -> (string * int) list
val roms : design -> rom_decl list

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression tree. *)

val expr_vars : expr -> string list
(** Distinct variable names, sorted. *)

val expr_mem_reads : expr -> string list
(** Distinct memory names read, sorted. *)

val schedule : design -> design
(** Reorders statements into a valid combinational evaluation order (every
    wire/output assignment after the assignments of the wires it reads;
    sequential statements last, relative order kept).  Raises
    [Invalid_argument] on combinational cycles. *)

val insert_wires : design -> (string * int * expr) list -> design
(** Adds wire declarations and places each assignment at the earliest point
    where every variable it references is defined.  Raises
    [Invalid_argument] if a definition cannot be placed. *)

val fill_holes : design -> (string * expr) list -> design
(** Replaces each bound hole declaration by a wire plus an assignment,
    placed like {!insert_wires}.  Unbound holes remain.  The caller should
    re-typecheck the result. *)
