(* Hand-written recursive-descent parser for the textual Oyster format
   emitted by Printer.  Grammar (one design per file):

     design NAME { decl-or-stmt* }

     decl  ::= input NAME W | output NAME W | wire NAME W | register NAME W
             | memory NAME AW DW
             | rom NAME AW [ CONST* ]
             | hole NAME W (per-instruction|shared) ( NAME* )
     stmt  ::= NAME := expr
             | write NAME expr expr expr
     expr  ::= NAME | CONST | ( OP expr* )

   Comments run from ';' to end of line. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | Tident of string
  | Tconst of Bitvec.t
  | Tint of int
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tlbrace
  | Trbrace
  | Tassign

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '!' || c = '$' || c = '-'

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ';' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (toks := Tlparen :: !toks; incr i)
    else if c = ')' then (toks := Trparen :: !toks; incr i)
    else if c = '[' then (toks := Tlbracket :: !toks; incr i)
    else if c = ']' then (toks := Trbracket :: !toks; incr i)
    else if c = '{' then (toks := Tlbrace :: !toks; incr i)
    else if c = '}' then (toks := Trbrace :: !toks; incr i)
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '=' then begin
      toks := Tassign :: !toks;
      i := !i + 2
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && (is_ident_char src.[!i] || src.[!i] = '\'') do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if String.contains word '\'' then
        toks := Tconst (try Bitvec.of_string word with Invalid_argument m -> fail "%s" m) :: !toks
      else if String.length word > 0 && (word.[0] >= '0' && word.[0] <= '9') then
        toks := Tint (try int_of_string word with _ -> fail "bad integer %S" word) :: !toks
      else toks := Tident word :: !toks
    end
    else fail "unexpected character %C at offset %d" c !i
  done;
  List.rev !toks

(* {1 Parsing} *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> None | t :: _ -> Some t

let next s =
  match s.toks with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
      s.toks <- rest;
      t

let expect_ident s =
  match next s with Tident n -> n | _ -> fail "expected identifier"

let expect_int s =
  match next s with Tint n -> n | _ -> fail "expected integer"

let expect s tok msg = if next s <> tok then fail "expected %s" msg

let unop_of_name = function
  | "not" -> Some Ast.Not
  | "neg" -> Some Ast.Neg
  | "redor" -> Some Ast.RedOr
  | "redand" -> Some Ast.RedAnd
  | "redxor" -> Some Ast.RedXor
  | _ -> None

let binop_of_name = function
  | "and" -> Some Ast.And
  | "or" -> Some Ast.Or
  | "xor" -> Some Ast.Xor
  | "add" -> Some Ast.Add
  | "sub" -> Some Ast.Sub
  | "mul" -> Some Ast.Mul
  | "udiv" -> Some Ast.Udiv
  | "urem" -> Some Ast.Urem
  | "sdiv" -> Some Ast.Sdiv
  | "srem" -> Some Ast.Srem
  | "clmul" -> Some Ast.Clmul
  | "clmulh" -> Some Ast.Clmulh
  | "shl" -> Some Ast.Shl
  | "lshr" -> Some Ast.Lshr
  | "ashr" -> Some Ast.Ashr
  | "rol" -> Some Ast.Rol
  | "ror" -> Some Ast.Ror
  | "eq" -> Some Ast.Eq
  | "ne" -> Some Ast.Ne
  | "ult" -> Some Ast.Ult
  | "ule" -> Some Ast.Ule
  | "ugt" -> Some Ast.Ugt
  | "uge" -> Some Ast.Uge
  | "slt" -> Some Ast.Slt
  | "sle" -> Some Ast.Sle
  | "sgt" -> Some Ast.Sgt
  | "sge" -> Some Ast.Sge
  | _ -> None

let rec parse_expr s : Ast.expr =
  match next s with
  | Tident n -> Ast.Var n
  | Tconst v -> Ast.Const v
  | Tlparen -> (
      let head = expect_ident s in
      let e =
        match head with
        | "if" ->
            let c = parse_expr s in
            let a = parse_expr s in
            let b = parse_expr s in
            Ast.Ite (c, a, b)
        | "extract" ->
            let h = expect_int s in
            let l = expect_int s in
            Ast.Extract (h, l, parse_expr s)
        | "concat" ->
            let a = parse_expr s in
            Ast.Concat (a, parse_expr s)
        | "zext" ->
            let a = parse_expr s in
            Ast.Zext (a, expect_int s)
        | "sext" ->
            let a = parse_expr s in
            Ast.Sext (a, expect_int s)
        | "read" ->
            let m = expect_ident s in
            Ast.Read (m, parse_expr s)
        | "romread" ->
            let r = expect_ident s in
            Ast.RomRead (r, parse_expr s)
        | name -> (
            match unop_of_name name with
            | Some op -> Ast.Unop (op, parse_expr s)
            | None -> (
                match binop_of_name name with
                | Some op ->
                    let a = parse_expr s in
                    Ast.Binop (op, a, parse_expr s)
                | None -> fail "unknown operator %s" name))
      in
      expect s Trparen ")";
      e)
  | _ -> fail "expected expression"

let parse_item s : [ `Decl of Ast.decl | `Stmt of Ast.stmt ] =
  match next s with
  | Tident "input" ->
      let n = expect_ident s in
      `Decl (Ast.Input (n, expect_int s))
  | Tident "output" ->
      let n = expect_ident s in
      `Decl (Ast.Output (n, expect_int s))
  | Tident "wire" ->
      let n = expect_ident s in
      `Decl (Ast.Wire (n, expect_int s))
  | Tident "register" ->
      let n = expect_ident s in
      `Decl (Ast.Register (n, expect_int s))
  | Tident "memory" ->
      let n = expect_ident s in
      let aw = expect_int s in
      let dw = expect_int s in
      `Decl (Ast.Memory { mem_name = n; addr_width = aw; data_width = dw })
  | Tident "rom" ->
      let n = expect_ident s in
      let aw = expect_int s in
      expect s Tlbracket "[";
      let data = ref [] in
      let rec loop () =
        match peek s with
        | Some Trbracket -> ignore (next s)
        | Some (Tconst v) ->
            ignore (next s);
            data := v :: !data;
            loop ()
        | _ -> fail "expected constant or ] in rom data"
      in
      loop ();
      `Decl
        (Ast.Rom
           { rom_name = n; rom_addr_width = aw;
             rom_data = Array.of_list (List.rev !data) })
  | Tident "hole" ->
      let n = expect_ident s in
      let w = expect_int s in
      let kind =
        match expect_ident s with
        | "per-instruction" -> Ast.Per_instruction
        | "shared" -> Ast.Shared
        | k -> fail "unknown hole kind %s" k
      in
      expect s Tlparen "(";
      let deps = ref [] in
      let rec loop () =
        match peek s with
        | Some Trparen -> ignore (next s)
        | Some (Tident d) ->
            ignore (next s);
            deps := d :: !deps;
            loop ()
        | _ -> fail "expected identifier or ) in hole deps"
      in
      loop ();
      `Decl (Ast.Hole { hole_name = n; hole_width = w; kind; deps = List.rev !deps })
  | Tident "write" ->
      let mem = expect_ident s in
      let addr = parse_expr s in
      let data = parse_expr s in
      let enable = parse_expr s in
      `Stmt (Ast.Write { mem; addr; data; enable })
  | Tident n -> (
      match peek s with
      | Some Tassign ->
          ignore (next s);
          `Stmt (Ast.Assign (n, parse_expr s))
      | _ -> fail "expected := after %s" n)
  | _ -> fail "expected declaration or statement"

let parse_design (src : string) : Ast.design =
  let s = { toks = tokenize src } in
  (match next s with Tident "design" -> () | _ -> fail "expected 'design'");
  let name = expect_ident s in
  expect s Tlbrace "{";
  let decls = ref [] and stmts = ref [] in
  let rec loop () =
    match peek s with
    | Some Trbrace -> ignore (next s)
    | Some _ ->
        (match parse_item s with
        | `Decl d ->
            if !stmts <> [] then fail "declaration after statements";
            decls := d :: !decls
        | `Stmt st -> stmts := st :: !stmts);
        loop ()
    | None -> fail "unexpected end of input (missing })"
  in
  loop ();
  (match peek s with
  | None -> ()
  | Some _ -> fail "trailing tokens after design");
  { Ast.name; decls = List.rev !decls; stmts = List.rev !stmts }
