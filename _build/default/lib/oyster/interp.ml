(* Cycle-accurate concrete interpreter for Oyster designs — effectively the
   simulator for completed (hole-free or hole-bound) synchronous hardware.

   One [step] executes all statements for a cycle: combinational assignments
   take effect immediately; register assignments and memory writes are
   buffered and committed at the end of the step. *)

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type mem_state = {
  contents : (Bitvec.t, Bitvec.t) Hashtbl.t;
  default : Bitvec.t -> Bitvec.t;  (* backing image for unwritten cells *)
  data_width : int;
}

type state = {
  design : Ast.design;
  regs : (string, Bitvec.t) Hashtbl.t;
  mems : (string, mem_state) Hashtbl.t;
  mutable cycle : int;
}

let mem_read ms addr =
  match Hashtbl.find_opt ms.contents addr with
  | Some v -> v
  | None -> ms.default addr

(* {1 Initialization} *)

let init ?(mem_init = fun _mem _addr_width data_width _addr -> Bitvec.zero data_width)
    (design : Ast.design) =
  let regs = Hashtbl.create 16 in
  List.iter (fun (n, w) -> Hashtbl.replace regs n (Bitvec.zero w)) (Ast.registers design);
  let mems = Hashtbl.create 8 in
  List.iter
    (fun (name, addr_width, data_width) ->
      Hashtbl.replace mems name
        {
          contents = Hashtbl.create 64;
          default = mem_init name addr_width data_width;
          data_width;
        })
    (Ast.memories design);
  { design; regs; mems; cycle = 0 }

let set_register state name v = Hashtbl.replace state.regs name v

let get_register state name =
  match Hashtbl.find_opt state.regs name with
  | Some v -> v
  | None -> fail "unknown register %s" name

let write_mem state mem addr v =
  match Hashtbl.find_opt state.mems mem with
  | Some ms -> Hashtbl.replace ms.contents addr v
  | None -> fail "unknown memory %s" mem

let read_mem state mem addr =
  match Hashtbl.find_opt state.mems mem with
  | Some ms -> mem_read ms addr
  | None -> fail "unknown memory %s" mem

(* {1 Stepping} *)

type step_result = {
  outputs : (string * Bitvec.t) list;
  wires : (string * Bitvec.t) list;  (* includes outputs and sampled inputs *)
}

let eval_unop op a =
  match op with
  | Ast.Not -> Bitvec.lognot a
  | Ast.Neg -> Bitvec.neg a
  | Ast.RedOr -> if Bitvec.reduce_or a then Bitvec.one 1 else Bitvec.zero 1
  | Ast.RedAnd -> if Bitvec.reduce_and a then Bitvec.one 1 else Bitvec.zero 1
  | Ast.RedXor -> if Bitvec.reduce_xor a then Bitvec.one 1 else Bitvec.zero 1

let eval_binop op a b =
  let of_bool x = if x then Bitvec.one 1 else Bitvec.zero 1 in
  match op with
  | Ast.And -> Bitvec.logand a b
  | Ast.Or -> Bitvec.logor a b
  | Ast.Xor -> Bitvec.logxor a b
  | Ast.Add -> Bitvec.add a b
  | Ast.Sub -> Bitvec.sub a b
  | Ast.Mul -> Bitvec.mul a b
  | Ast.Udiv -> Bitvec.udiv a b
  | Ast.Urem -> Bitvec.urem a b
  | Ast.Sdiv -> Bitvec.sdiv a b
  | Ast.Srem -> Bitvec.srem a b
  | Ast.Clmul -> Bitvec.clmul a b
  | Ast.Clmulh -> Bitvec.clmulh a b
  | Ast.Shl -> Bitvec.shl a b
  | Ast.Lshr -> Bitvec.lshr a b
  | Ast.Ashr -> Bitvec.ashr a b
  | Ast.Rol -> Bitvec.rol a b
  | Ast.Ror -> Bitvec.ror a b
  | Ast.Eq -> of_bool (Bitvec.equal a b)
  | Ast.Ne -> of_bool (not (Bitvec.equal a b))
  | Ast.Ult -> of_bool (Bitvec.ult a b)
  | Ast.Ule -> of_bool (Bitvec.ule a b)
  | Ast.Ugt -> of_bool (Bitvec.ult b a)
  | Ast.Uge -> of_bool (Bitvec.ule b a)
  | Ast.Slt -> of_bool (Bitvec.slt a b)
  | Ast.Sle -> of_bool (Bitvec.sle a b)
  | Ast.Sgt -> of_bool (Bitvec.slt b a)
  | Ast.Sge -> of_bool (Bitvec.sle b a)

let step ?(inputs = fun name _w -> fail "input %s not driven" name)
    ?(hole_value = fun name _w -> fail "hole %s is unbound" name) (state : state) =
  let design = state.design in
  let roms = Ast.roms design in
  let wires : (string, Bitvec.t) Hashtbl.t = Hashtbl.create 32 in
  let lookup name =
    match Hashtbl.find_opt wires name with
    | Some v -> v
    | None -> (
        match Ast.find_decl design name with
        | Some (Ast.Input (_, w)) ->
            let v = inputs name w in
            if Bitvec.width v <> w then fail "input %s driven at wrong width" name;
            Hashtbl.replace wires name v;
            v
        | Some (Ast.Register (_, _)) -> get_register state name
        | Some (Ast.Hole { hole_width; _ }) ->
            let v = hole_value name hole_width in
            if Bitvec.width v <> hole_width then
              fail "hole %s bound at wrong width" name;
            v
        | Some (Ast.Wire _ | Ast.Output _) -> fail "%s read before assignment" name
        | Some _ -> fail "%s is not a value" name
        | None -> fail "undeclared %s" name)
  in
  let rec eval (e : Ast.expr) =
    match e with
    | Ast.Const v -> v
    | Ast.Var n -> lookup n
    | Ast.Unop (op, a) -> eval_unop op (eval a)
    | Ast.Binop (op, a, b) -> eval_binop op (eval a) (eval b)
    | Ast.Ite (c, a, b) -> if Bitvec.is_ones (eval c) then eval a else eval b
    | Ast.Extract (h, l, a) -> Bitvec.extract ~high:h ~low:l (eval a)
    | Ast.Concat (a, b) ->
        let va = eval a in
        let vb = eval b in
        Bitvec.concat va vb
    | Ast.Zext (a, w) -> Bitvec.zext (eval a) w
    | Ast.Sext (a, w) -> Bitvec.sext (eval a) w
    | Ast.Read (m, addr) -> read_mem state m (eval addr)
    | Ast.RomRead (r, addr) -> (
        match List.find_opt (fun rm -> rm.Ast.rom_name = r) roms with
        | Some rm -> rm.Ast.rom_data.(Bitvec.to_int_exn (eval addr))
        | None -> fail "undeclared rom %s" r)
  in
  (* Deferred effects. *)
  let reg_next : (string * Bitvec.t) list ref = ref [] in
  let mem_writes : (string * Bitvec.t * Bitvec.t) list ref = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Assign (name, e) -> (
          let v = eval e in
          match Ast.find_decl design name with
          | Some (Ast.Register _) -> reg_next := (name, v) :: !reg_next
          | Some (Ast.Wire _ | Ast.Output _) -> Hashtbl.replace wires name v
          | _ -> fail "bad assignment target %s" name)
      | Ast.Write { mem; addr; data; enable } ->
          if Bitvec.is_ones (eval enable) then
            mem_writes := (mem, eval addr, eval data) :: !mem_writes)
    design.stmts;
  (* Commit: writes in statement order (the list is reversed). *)
  List.iter (fun (m, a, v) -> write_mem state m a v) (List.rev !mem_writes);
  List.iter (fun (r, v) -> set_register state r v) !reg_next;
  state.cycle <- state.cycle + 1;
  let outputs =
    List.map
      (fun (n, _) ->
        match Hashtbl.find_opt wires n with
        | Some v -> (n, v)
        | None -> fail "output %s not assigned" n)
      (Ast.outputs design)
  in
  { outputs; wires = Hashtbl.fold (fun k v acc -> (k, v) :: acc) wires [] }

let run ?inputs ?hole_value state ~cycles =
  let results = ref [] in
  for _ = 1 to cycles do
    results := step ?inputs ?hole_value state :: !results
  done;
  List.rev !results
