(** Reference SHA-256 (FIPS 180-4) on plain OCaml integers masked to 32
    bits — the oracle for the constant-time cryptography core experiment
    (paper §5.2). *)

val k : int array
(** The 64 round constants. *)

val h0 : int array
(** The 8 initial hash values. *)

val rotr : int -> int -> int

val pad : string -> int array
(** The padded message as big-endian 32-bit words (a multiple of 16). *)

val compress : int array -> int array -> int array
(** One compression-function application: chaining value, 16-word block. *)

val digest_words : string -> int array
(** The digest as 8 big-endian words. *)

val digest_hex : string -> string
(** The conventional 64-character lowercase hex digest. *)
