(** Straight-line SHA-256 for the constant-time cryptography core (paper
    §5.2): the generated program is the same instruction sequence for every
    input; the input length is runtime data and padding is applied
    branch-free with shift/compare/CMOV sequences.  Inputs up to 55 bytes
    fit a single padded block (the experiment uses 4–32).

    Data-memory layout (word addresses): word 0 holds the byte length;
    words [input_base..input_base+7] the packed little-endian input;
    [w_base..w_base+63] the message schedule scratch;
    [digest_base..digest_base+7] the output digest (big-endian words). *)

val input_base : int
val w_base : int
val digest_base : int

val variant : Isa.Rv32.isa_variant
(** The encoding variant used by the generator (RV32I+Zbkb, plus the
    bespoke CMOV encoding). *)

val generate : unit -> Bitvec.t list
(** The program; it ends with the jump-to-self halt. *)

val pack_input : string -> (int * Bitvec.t) list
(** Data-memory image (word address, value) for an input of at most 32
    bytes. *)

val read_digest : (int -> Bitvec.t) -> int array
(** Reads the 8 digest words through a word-indexed read function. *)
