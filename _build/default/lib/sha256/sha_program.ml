(* Straight-line SHA-256 for the constant-time cryptography core
   (paper §5.2).

   The generated program is the same instruction sequence for every input:
   the input length L is runtime data (word 0 of d_mem), and padding is
   applied branch-free with shift/compare/CMOV sequences.  Inputs up to 55
   bytes fit one padded block; the experiment uses 4..32 bytes.

   Data-memory layout (word addresses):
     0         L, the input length in bytes
     1 .. 8    input, packed little-endian (byte i at word 1+i/4, lane i%4)
     16 .. 79  W[0..63] message-schedule scratch
     96 .. 103 digest output (big-endian words, as in FIPS 180-4)

   Register use: x1..x8 = a..h, x9..x15 scratch, x16 = L.

   The program ends with [jal x0, 0] — the conventional jump-to-self halt
   recognized by both the ISS and the core testbenches. *)

let input_base = 1
let w_base = 16
let digest_base = 96

let variant = Isa.Rv32.RV32I_Zbkb

type asm = { mutable code : Bitvec.t list }

let emit a w = a.code <- w :: a.code

let e a m ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0) () =
  emit a (Isa.Rv32.encode variant m ~rd ~rs1 ~rs2 ~imm ())

(* cmov rd, rs1, rs2 (bespoke encoding: OP, funct3 5, funct7 0x07) *)
let cmov a ~rd ~rs1 ~rs2 =
  emit a
    (Bitvec.of_int ~width:32
       ((0x07 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (5 lsl 12)
       lor (rd lsl 7) lor 0x33))

(* Materialize a 32-bit constant with lui+addi (always two instructions so
   the program shape is input-independent). *)
let li a rd v =
  let v = v land 0xFFFFFFFF in
  let lo = v land 0xFFF in
  let lo = if lo >= 0x800 then lo - 0x1000 else lo in
  let hi = (v - lo) land 0xFFFFFFFF in
  e a "lui" ~rd ~imm:hi ();
  e a "addi" ~rd ~rs1:rd ~imm:lo ()

let generate () : Bitvec.t list =
  let a = { code = [] } in
  (* x16 := L *)
  e a "lw" ~rd:16 ~rs1:0 ~imm:0 ();
  (* ---- padding and block construction: W[w] for w = 0..15 ---- *)
  for w = 0 to 15 do
    (* x9 := input word (zero beyond the 8 input words) *)
    if w < 8 then e a "lw" ~rd:9 ~rs1:0 ~imm:(4 * (input_base + w)) ()
    else e a "addi" ~rd:9 ~rs1:0 ~imm:0 ();
    (* x10 := diff = L - 4w *)
    e a "addi" ~rd:10 ~rs1:16 ~imm:(-4 * w) ();
    (* x11 := 8*diff (shift amounts use the low 5 bits only; boundary cases
       are fixed up with CMOV below) *)
    e a "slli" ~rd:11 ~rs1:10 ~imm:3 ();
    (* x12 := candidate mask = (1 << 8*diff) - 1 *)
    e a "addi" ~rd:12 ~rs1:0 ~imm:1 ();
    e a "sll" ~rd:12 ~rs1:12 ~rs2:11 ();
    e a "addi" ~rd:12 ~rs1:12 ~imm:(-1) ();
    (* x13 := diff >= 4 (signed): not (diff < 4) *)
    e a "slti" ~rd:13 ~rs1:10 ~imm:4 ();
    e a "xori" ~rd:13 ~rs1:13 ~imm:1 ();
    (* x14 := diff <= 0 (signed) *)
    e a "slti" ~rd:14 ~rs1:10 ~imm:1 ();
    (* mask := ge4 ? 0xffffffff : mask; mask := le0 ? 0 : mask *)
    e a "addi" ~rd:15 ~rs1:0 ~imm:(-1) ();
    cmov a ~rd:12 ~rs1:15 ~rs2:13;
    cmov a ~rd:12 ~rs1:0 ~rs2:14;
    e a "and" ~rd:9 ~rs1:9 ~rs2:12 ();
    (* pad byte 0x80 at lane diff when 0 <= diff <= 3 (unsigned diff < 4) *)
    e a "sltiu" ~rd:13 ~rs1:10 ~imm:4 ();
    e a "addi" ~rd:14 ~rs1:0 ~imm:0x80 ();
    e a "sll" ~rd:14 ~rs1:14 ~rs2:11 ();
    e a "addi" ~rd:15 ~rs1:0 ~imm:0 ();
    cmov a ~rd:15 ~rs1:14 ~rs2:13;
    e a "or" ~rd:9 ~rs1:9 ~rs2:15 ();
    (* big-endian message word *)
    e a "rev8" ~rd:9 ~rs1:9 ();
    (* the last word carries the bit length (L <= 55 so the high word, w=14,
       is zero already) *)
    if w = 15 then begin
      e a "slli" ~rd:14 ~rs1:16 ~imm:3 ();
      e a "or" ~rd:9 ~rs1:9 ~rs2:14 ()
    end;
    e a "sw" ~rs1:0 ~rs2:9 ~imm:(4 * (w_base + w)) ()
  done;
  (* ---- message schedule: W[16..63] ---- *)
  for t = 16 to 63 do
    let waddr i = 4 * (w_base + i) in
    e a "lw" ~rd:9 ~rs1:0 ~imm:(waddr (t - 15)) ();
    e a "rori" ~rd:10 ~rs1:9 ~imm:7 ();
    e a "rori" ~rd:11 ~rs1:9 ~imm:18 ();
    e a "xor" ~rd:10 ~rs1:10 ~rs2:11 ();
    e a "srli" ~rd:11 ~rs1:9 ~imm:3 ();
    e a "xor" ~rd:10 ~rs1:10 ~rs2:11 ();  (* sigma0 *)
    e a "lw" ~rd:9 ~rs1:0 ~imm:(waddr (t - 2)) ();
    e a "rori" ~rd:11 ~rs1:9 ~imm:17 ();
    e a "rori" ~rd:12 ~rs1:9 ~imm:19 ();
    e a "xor" ~rd:11 ~rs1:11 ~rs2:12 ();
    e a "srli" ~rd:12 ~rs1:9 ~imm:10 ();
    e a "xor" ~rd:11 ~rs1:11 ~rs2:12 ();  (* sigma1 *)
    e a "lw" ~rd:12 ~rs1:0 ~imm:(waddr (t - 16)) ();
    e a "lw" ~rd:13 ~rs1:0 ~imm:(waddr (t - 7)) ();
    e a "add" ~rd:10 ~rs1:10 ~rs2:11 ();
    e a "add" ~rd:10 ~rs1:10 ~rs2:12 ();
    e a "add" ~rd:10 ~rs1:10 ~rs2:13 ();
    e a "sw" ~rs1:0 ~rs2:10 ~imm:(waddr t) ()
  done;
  (* ---- initialize working variables ---- *)
  Array.iteri (fun i v -> li a (i + 1) v) Sha256.h0;
  (* ---- 64 rounds ---- *)
  for t = 0 to 63 do
    (* T1 = h + Sigma1(e) + Ch(e,f,g) + K[t] + W[t]  (in x9) *)
    e a "rori" ~rd:9 ~rs1:5 ~imm:6 ();
    e a "rori" ~rd:10 ~rs1:5 ~imm:11 ();
    e a "xor" ~rd:9 ~rs1:9 ~rs2:10 ();
    e a "rori" ~rd:10 ~rs1:5 ~imm:25 ();
    e a "xor" ~rd:9 ~rs1:9 ~rs2:10 ();
    e a "and" ~rd:10 ~rs1:5 ~rs2:6 ();
    e a "andn" ~rd:11 ~rs1:7 ~rs2:5 ();  (* g & ~e *)
    e a "xor" ~rd:10 ~rs1:10 ~rs2:11 ();
    e a "add" ~rd:9 ~rs1:9 ~rs2:10 ();
    e a "add" ~rd:9 ~rs1:9 ~rs2:8 ();
    li a 10 Sha256.k.(t);
    e a "add" ~rd:9 ~rs1:9 ~rs2:10 ();
    e a "lw" ~rd:10 ~rs1:0 ~imm:(4 * (w_base + t)) ();
    e a "add" ~rd:9 ~rs1:9 ~rs2:10 ();
    (* T2 = Sigma0(a) + Maj(a,b,c)  (in x10) *)
    e a "rori" ~rd:10 ~rs1:1 ~imm:2 ();
    e a "rori" ~rd:11 ~rs1:1 ~imm:13 ();
    e a "xor" ~rd:10 ~rs1:10 ~rs2:11 ();
    e a "rori" ~rd:11 ~rs1:1 ~imm:22 ();
    e a "xor" ~rd:10 ~rs1:10 ~rs2:11 ();
    e a "and" ~rd:11 ~rs1:1 ~rs2:2 ();
    e a "and" ~rd:12 ~rs1:1 ~rs2:3 ();
    e a "xor" ~rd:11 ~rs1:11 ~rs2:12 ();
    e a "and" ~rd:12 ~rs1:2 ~rs2:3 ();
    e a "xor" ~rd:11 ~rs1:11 ~rs2:12 ();
    e a "add" ~rd:10 ~rs1:10 ~rs2:11 ();
    (* rotate the working variables *)
    e a "addi" ~rd:8 ~rs1:7 ~imm:0 ();  (* h = g *)
    e a "addi" ~rd:7 ~rs1:6 ~imm:0 ();  (* g = f *)
    e a "addi" ~rd:6 ~rs1:5 ~imm:0 ();  (* f = e *)
    e a "add" ~rd:5 ~rs1:4 ~rs2:9 ();  (* e = d + T1 *)
    e a "addi" ~rd:4 ~rs1:3 ~imm:0 ();  (* d = c *)
    e a "addi" ~rd:3 ~rs1:2 ~imm:0 ();  (* c = b *)
    e a "addi" ~rd:2 ~rs1:1 ~imm:0 ();  (* b = a *)
    e a "add" ~rd:1 ~rs1:9 ~rs2:10 ()  (* a = T1 + T2 *)
  done;
  (* ---- digest = h0 + working variables ---- *)
  Array.iteri
    (fun i v ->
      li a 9 v;
      e a "add" ~rd:9 ~rs1:9 ~rs2:(i + 1) ();
      e a "sw" ~rs1:0 ~rs2:9 ~imm:(4 * (digest_base + i)) ())
    Sha256.h0;
  (* halt *)
  e a "jal" ~rd:0 ~imm:0 ();
  List.rev a.code

(* Pack an input string into the data-memory image: length word plus
   little-endian packed words. *)
let pack_input (msg : string) : (int * Bitvec.t) list =
  if String.length msg > 32 then invalid_arg "Sha_program.pack_input: > 32 bytes";
  let l = String.length msg in
  let word w =
    let byte j =
      let i = (4 * w) + j in
      if i < l then Char.code msg.[i] else 0
    in
    Bitvec.of_int ~width:32
      (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))
  in
  (0, Bitvec.of_int ~width:32 l) :: List.init 8 (fun w -> (input_base + w, word w))

(* Read the digest from a word-indexed read function. *)
let read_digest (read_word : int -> Bitvec.t) : int array =
  Array.init 8 (fun i -> Bitvec.to_int_exn (read_word (digest_base + i)))
