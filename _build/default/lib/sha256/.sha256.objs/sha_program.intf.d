lib/sha256/sha_program.mli: Bitvec Isa
