lib/sha256/sha256.ml: Array Bytes Char Printf String
