lib/sha256/sha_program.ml: Array Bitvec Char Isa List Sha256 String
