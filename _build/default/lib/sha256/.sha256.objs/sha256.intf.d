lib/sha256/sha256.mli:
