(** A PyRTL-flavoured embedded HDL for building Oyster designs — the role
    PyRTL plays in the paper's toolchain (datapath sketches in a host
    language, lowered to the synthesis IR).

    A [ctx] accumulates declarations and statements; [signal]s are
    width-carrying expressions combined with the operators below; [finalize]
    produces a typechecked {!Oyster.Ast.design}.  Width mismatches raise
    {!Hdl_error} at construction time. *)

exception Hdl_error of string

type signal

type mem

type ctx

val create : string -> ctx

val width : signal -> int

(** {1 Declarations} *)

val input : ctx -> string -> int -> signal
val register : ctx -> string -> int -> signal

val memory : ctx -> string -> addr_width:int -> data_width:int -> mem

val rom : ctx -> string -> addr_width:int -> Bitvec.t array -> signal -> signal
(** Declares a read-only table; the returned function builds lookups. *)

val hole :
  ctx -> ?kind:Oyster.Ast.hole_kind -> string -> int -> deps:signal list -> signal
(** A control point for the synthesis engine ([??] in the paper's
    sketches); [deps] must be named signals. *)

(** {1 Assignments} *)

val wire : ctx -> string -> signal -> signal
(** Names a combinational value (and forces its evaluation order). *)

val output : ctx -> string -> signal -> unit

val set_register : ctx -> signal -> signal -> unit
(** [set_register c r next]: [r] takes [next]'s value at end of cycle. *)

val read : mem -> signal -> signal

val write : ctx -> mem -> addr:signal -> data:signal -> enable:signal -> unit

(** {1 Combinators} *)

val const : int -> int -> signal
(** [const width value]. *)

val bvconst : Bitvec.t -> signal
val tru : signal
val fls : signal

val ( +: ) : signal -> signal -> signal
val ( -: ) : signal -> signal -> signal
val ( *: ) : signal -> signal -> signal
val ( &: ) : signal -> signal -> signal
val ( |: ) : signal -> signal -> signal
val ( ^: ) : signal -> signal -> signal
val udiv : signal -> signal -> signal
(** Division by zero yields all-ones / the dividend (see {!Bitvec.udiv}). *)

val urem : signal -> signal -> signal
val sdiv : signal -> signal -> signal
val srem : signal -> signal -> signal
val clmul : signal -> signal -> signal
val clmulh : signal -> signal -> signal
val ( <<: ) : signal -> signal -> signal
val ( >>: ) : signal -> signal -> signal
val ( >>+ ) : signal -> signal -> signal  (** arithmetic shift right *)

val rol : signal -> signal -> signal
val ror : signal -> signal -> signal
val ( ==: ) : signal -> signal -> signal
val ( <>: ) : signal -> signal -> signal
val ( <: ) : signal -> signal -> signal
val ( <=: ) : signal -> signal -> signal
val ( >: ) : signal -> signal -> signal
val ( >=: ) : signal -> signal -> signal
val ( <+ ) : signal -> signal -> signal  (** signed comparisons *)

val ( <=+ ) : signal -> signal -> signal
val ( >+ ) : signal -> signal -> signal
val ( >=+ ) : signal -> signal -> signal

val bnot : signal -> signal
val neg : signal -> signal
val redor : signal -> signal
val redand : signal -> signal
val redxor : signal -> signal

val mux : signal -> signal -> signal -> signal
(** [mux cond then_ else_]; the condition has width 1. *)

val select : signal -> (int * signal) list -> signal -> signal
(** [select sel cases default] compares [sel] against each constant case in
    order (a priority mux chain). *)

val bits : high:int -> low:int -> signal -> signal
val bit : int -> signal -> signal
val msb : signal -> signal
val concat : signal -> signal -> signal
val concat_all : signal list -> signal
val zext : signal -> int -> signal
val sext : signal -> int -> signal

(** {1 Finalization} *)

val finalize : ctx -> Oyster.Ast.design
(** Builds and typechecks the design; a context can only be finalized
    once. *)
