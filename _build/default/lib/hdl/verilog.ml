(* Verilog-2001 emission of hole-free Oyster designs.

   The paper's toolchain produces PyRTL, which elaborates to Verilog for
   hardware synthesis; this backend closes the same loop.  Emission is
   netlist-style: every sub-expression becomes a named wire (Verilog can
   only slice identifiers), registers and memory writes go into a single
   @(posedge clk) block in statement order (later writes win, matching the
   Oyster commit semantics), ROMs become initialized reg arrays, and the
   carry-less multiplies become generated functions. *)

exception Verilog_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Verilog_error s)) fmt

type emitter = {
  buf : Buffer.t;
  design : Oyster.Ast.design;
  tenv : Oyster.Typecheck.env;
  all_names : string list ref;
  mutable tmp : int;
  mutable body : string list;  (* reversed wire definitions *)
  mutable clmul_widths : (int * bool) list;  (* width, high-half *)
}

let fresh e w =
  e.tmp <- e.tmp + 1;
  let n = Printf.sprintf "_t%d" e.tmp in
  (n, w)

let define e (n, w) rhs =
  e.body <- Printf.sprintf "  wire [%d:0] %s = %s;" (w - 1) n rhs :: e.body;
  n

let vconst v =
  Printf.sprintf "%d'h%s" (Bitvec.width v)
    (let s = Bitvec.to_string v in
     match String.index_opt s 'x' with
     | Some i -> String.sub s (i + 1) (String.length s - i - 1)
     | None -> s)

let width_of e expr = Oyster.Typecheck.expr_width e.tenv e.all_names expr

(* Emit [expr], returning the name of a wire (or literal) holding it. *)
let rec emit_expr e (expr : Oyster.Ast.expr) : string =
  let w = width_of e expr in
  match expr with
  | Oyster.Ast.Var n -> n
  | Oyster.Ast.Const v -> define e (fresh e w) (vconst v)
  | Oyster.Ast.Unop (op, a) -> (
      let a' = emit_expr e a in
      match op with
      | Oyster.Ast.Not -> define e (fresh e w) (Printf.sprintf "~%s" a')
      | Oyster.Ast.Neg -> define e (fresh e w) (Printf.sprintf "-%s" a')
      | Oyster.Ast.RedOr -> define e (fresh e 1) (Printf.sprintf "|%s" a')
      | Oyster.Ast.RedAnd -> define e (fresh e 1) (Printf.sprintf "&%s" a')
      | Oyster.Ast.RedXor -> define e (fresh e 1) (Printf.sprintf "^%s" a'))
  | Oyster.Ast.Binop (op, a, b) -> (
      let wa = width_of e a in
      let a' = emit_expr e a in
      let b' = emit_expr e b in
      let bin s = define e (fresh e w) (Printf.sprintf "%s %s %s" a' s b') in
      let signed s =
        define e (fresh e w)
          (Printf.sprintf "$signed(%s) %s $signed(%s)" a' s b')
      in
      match op with
      | Oyster.Ast.And -> bin "&"
      | Oyster.Ast.Or -> bin "|"
      | Oyster.Ast.Xor -> bin "^"
      | Oyster.Ast.Add -> bin "+"
      | Oyster.Ast.Sub -> bin "-"
      | Oyster.Ast.Mul -> bin "*"
      | Oyster.Ast.Udiv ->
          define e (fresh e w)
            (Printf.sprintf "(%s == %d'd0) ? {%d{1'b1}} : (%s / %s)" b' wa w a' b')
      | Oyster.Ast.Urem ->
          define e (fresh e w)
            (Printf.sprintf "(%s == %d'd0) ? %s : (%s %% %s)" b' wa a' a' b')
      | Oyster.Ast.Sdiv ->
          define e (fresh e w)
            (Printf.sprintf
               "(%s == %d'd0) ? {%d{1'b1}} : ((%s == {1'b1, %d'd0} && %s == {%d{1'b1}}) ? %s : $signed(%s) / $signed(%s))"
               b' wa w a' (wa - 1) b' wa a' a' b')
      | Oyster.Ast.Srem ->
          define e (fresh e w)
            (Printf.sprintf
               "(%s == %d'd0) ? %s : ((%s == {1'b1, %d'd0} && %s == {%d{1'b1}}) ? %d'd0 : $signed(%s) %% $signed(%s))"
               b' wa a' a' (wa - 1) b' wa w a' b')
      | Oyster.Ast.Clmul ->
          if not (List.mem (wa, false) e.clmul_widths) then
            e.clmul_widths <- (wa, false) :: e.clmul_widths;
          define e (fresh e w) (Printf.sprintf "clmul%d(%s, %s)" wa a' b')
      | Oyster.Ast.Clmulh ->
          if not (List.mem (wa, true) e.clmul_widths) then
            e.clmul_widths <- (wa, true) :: e.clmul_widths;
          define e (fresh e w) (Printf.sprintf "clmulh%d(%s, %s)" wa a' b')
      | Oyster.Ast.Shl -> bin "<<"
      | Oyster.Ast.Lshr -> bin ">>"
      | Oyster.Ast.Ashr ->
          define e (fresh e w) (Printf.sprintf "$signed(%s) >>> %s" a' b')
      | Oyster.Ast.Rol | Oyster.Ast.Ror ->
          (* amount reduced mod the width; wide-enough arithmetic on the
             amount avoids truncation surprises *)
          let amt = define e (fresh e 32) (Printf.sprintf "%s %% %d" b' wa) in
          let left, right =
            match op with
            | Oyster.Ast.Rol -> (amt, Printf.sprintf "(%d - %s) %% %d" wa amt wa)
            | _ -> (Printf.sprintf "(%d - %s) %% %d" wa amt wa, amt)
          in
          define e (fresh e w)
            (Printf.sprintf "(%s << (%s)) | (%s >> (%s))" a' left a' right)
      | Oyster.Ast.Eq -> bin "=="
      | Oyster.Ast.Ne -> bin "!="
      | Oyster.Ast.Ult -> bin "<"
      | Oyster.Ast.Ule -> bin "<="
      | Oyster.Ast.Ugt -> bin ">"
      | Oyster.Ast.Uge -> bin ">="
      | Oyster.Ast.Slt -> signed "<"
      | Oyster.Ast.Sle -> signed "<="
      | Oyster.Ast.Sgt -> signed ">"
      | Oyster.Ast.Sge -> signed ">=")
  | Oyster.Ast.Ite (c, a, b) ->
      let c' = emit_expr e c in
      let a' = emit_expr e a in
      let b' = emit_expr e b in
      define e (fresh e w) (Printf.sprintf "%s ? %s : %s" c' a' b')
  | Oyster.Ast.Extract (h, l, a) ->
      let a' = emit_expr e a in
      define e (fresh e w) (Printf.sprintf "%s[%d:%d]" a' h l)
  | Oyster.Ast.Concat (a, b) ->
      let a' = emit_expr e a in
      let b' = emit_expr e b in
      define e (fresh e w) (Printf.sprintf "{%s, %s}" a' b')
  | Oyster.Ast.Zext (a, _) ->
      let wa = width_of e a in
      let a' = emit_expr e a in
      if w = wa then a'
      else define e (fresh e w) (Printf.sprintf "{%d'd0, %s}" (w - wa) a')
  | Oyster.Ast.Sext (a, _) ->
      let wa = width_of e a in
      let a' = emit_expr e a in
      if w = wa then a'
      else
        define e (fresh e w)
          (Printf.sprintf "{{%d{%s[%d]}}, %s}" (w - wa) a' (wa - 1) a')
  | Oyster.Ast.Read (m, a) ->
      let a' = emit_expr e a in
      define e (fresh e w) (Printf.sprintf "%s[%s]" m a')
  | Oyster.Ast.RomRead (r, a) ->
      let a' = emit_expr e a in
      define e (fresh e w) (Printf.sprintf "%s[%s]" r a')

let clmul_function w high =
  let name = if high then Printf.sprintf "clmulh%d" w else Printf.sprintf "clmul%d" w in
  String.concat "\n"
    [ Printf.sprintf "  function [%d:0] %s(input [%d:0] a, input [%d:0] b);"
        (w - 1) name (w - 1) (w - 1);
      Printf.sprintf "    reg [%d:0] acc; integer i;" ((2 * w) - 1);
      "    begin";
      "      acc = 0;";
      Printf.sprintf "      for (i = 0; i < %d; i = i + 1)" w;
      Printf.sprintf "        if (b[i]) acc = acc ^ ({%d'd0, a} << i);" w;
      (if high then Printf.sprintf "      %s = acc[%d:%d];" name ((2 * w) - 1) w
       else Printf.sprintf "      %s = acc[%d:0];" name (w - 1));
      "    end";
      "  endfunction" ]

let of_design (design : Oyster.Ast.design) : string =
  if Oyster.Ast.holes design <> [] then
    fail "design %s still has holes" design.Oyster.Ast.name;
  ignore (Oyster.Typecheck.check design);
  let tenv = Oyster.Typecheck.env_of_design design in
  let all_names =
    ref (List.map Oyster.Ast.decl_name design.Oyster.Ast.decls)
  in
  let e =
    { buf = Buffer.create 4096; design; tenv; all_names; tmp = 0; body = [];
      clmul_widths = [] }
  in
  let b fmt = Printf.ksprintf (fun s -> Buffer.add_string e.buf (s ^ "\n")) fmt in
  (* ports *)
  let inputs = Oyster.Ast.inputs design in
  let outputs = Oyster.Ast.outputs design in
  let ports =
    "input wire clk"
    :: List.map (fun (n, w) -> Printf.sprintf "input wire [%d:0] %s" (w - 1) n) inputs
    @ List.map
        (fun (n, w) -> Printf.sprintf "output wire [%d:0] %s" (w - 1) n)
        outputs
  in
  b "// generated from Oyster design %s" design.Oyster.Ast.name;
  b "module %s(" design.Oyster.Ast.name;
  b "  %s" (String.concat ",\n  " ports);
  b ");";
  (* state declarations *)
  List.iter
    (fun (n, w) -> b "  reg [%d:0] %s = 0;" (w - 1) n)
    (Oyster.Ast.registers design);
  List.iter
    (fun (n, aw, dw) -> b "  reg [%d:0] %s [0:%d];" (dw - 1) n ((1 lsl aw) - 1))
    (Oyster.Ast.memories design);
  List.iter
    (fun (r : Oyster.Ast.rom_decl) ->
      b "  reg [%d:0] %s [0:%d];"
        (Bitvec.width r.Oyster.Ast.rom_data.(0) - 1)
        r.Oyster.Ast.rom_name
        (Array.length r.Oyster.Ast.rom_data - 1);
      b "  initial begin";
      Array.iteri
        (fun i v -> b "    %s[%d] = %s;" r.Oyster.Ast.rom_name i (vconst v))
        r.Oyster.Ast.rom_data;
      b "  end")
    (Oyster.Ast.roms design);
  (* statements: combinational wires inline; sequential effects collected *)
  let seq : string list ref = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Oyster.Ast.Assign (name, rhs) -> (
          match Oyster.Ast.find_decl design name with
          | Some (Oyster.Ast.Wire (_, w)) ->
              let rhs' = emit_expr e rhs in
              e.body <-
                Printf.sprintf "  wire [%d:0] %s = %s;" (w - 1) name rhs' :: e.body
          | Some (Oyster.Ast.Output _) ->
              let rhs' = emit_expr e rhs in
              e.body <- Printf.sprintf "  assign %s = %s;" name rhs' :: e.body
          | Some (Oyster.Ast.Register _) ->
              let rhs' = emit_expr e rhs in
              seq := Printf.sprintf "    %s <= %s;" name rhs' :: !seq
          | _ -> fail "bad assignment target %s" name)
      | Oyster.Ast.Write { mem; addr; data; enable } ->
          let a' = emit_expr e addr in
          let d' = emit_expr e data in
          let en' = emit_expr e enable in
          seq := Printf.sprintf "    if (%s) %s[%s] <= %s;" en' mem a' d' :: !seq)
    design.Oyster.Ast.stmts;
  List.iter (fun (w, high) -> b "%s" (clmul_function w high)) e.clmul_widths;
  List.iter (fun line -> b "%s" line) (List.rev e.body);
  b "  always @(posedge clk) begin";
  List.iter (fun line -> b "%s" line) (List.rev !seq);
  b "  end";
  b "endmodule";
  Buffer.contents e.buf
