(** Verilog-2001 emission of hole-free Oyster designs, closing the loop the
    paper's toolchain closes through PyRTL elaboration.

    Emission is netlist-style (every sub-expression becomes a named wire,
    because Verilog can only slice identifiers); registers and memory
    writes share one [always @(posedge clk)] block in statement order, so
    later writes win exactly as in the Oyster commit semantics; ROMs become
    [initial]-initialized arrays; carry-less multiplies become generated
    functions. *)

exception Verilog_error of string

val of_design : Oyster.Ast.design -> string
(** Raises {!Verilog_error} if the design still has holes (synthesize
    first), or {!Oyster.Typecheck.Type_error} if it is ill-formed. *)
