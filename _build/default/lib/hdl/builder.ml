(* A PyRTL-flavoured embedded HDL for building Oyster designs.

   The paper's datapath sketches are written in PyRTL; this module plays
   that role: an imperative builder with width-checked signal combinators,
   registers, memories, ROMs and holes.  [finalize] produces a typechecked
   Oyster design (the "PyRTL -> Oyster translation" of paper Fig. 4). *)

exception Hdl_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Hdl_error s)) fmt

type signal = { e : Oyster.Ast.expr; w : int }

type mem = { mem_id : string; maw : int; mdw : int }

type ctx = {
  cname : string;
  mutable decls : Oyster.Ast.decl list;  (* reversed *)
  mutable stmts : Oyster.Ast.stmt list;  (* reversed *)
  mutable names : string list;
  mutable finalized : bool;
}

let create cname = { cname; decls = []; stmts = []; names = []; finalized = false }

let add_decl ctx d =
  let n = Oyster.Ast.decl_name d in
  if List.mem n ctx.names then fail "duplicate name %s" n;
  ctx.names <- n :: ctx.names;
  ctx.decls <- d :: ctx.decls

let add_stmt ctx s = ctx.stmts <- s :: ctx.stmts

let width s = s.w

(* {1 Declarations} *)

let input ctx name w =
  add_decl ctx (Oyster.Ast.Input (name, w));
  { e = Oyster.Ast.Var name; w }

let register ctx name w =
  add_decl ctx (Oyster.Ast.Register (name, w));
  { e = Oyster.Ast.Var name; w }

let memory ctx name ~addr_width ~data_width =
  add_decl ctx (Oyster.Ast.Memory { mem_name = name; addr_width; data_width });
  { mem_id = name; maw = addr_width; mdw = data_width }

let rom ctx name ~addr_width data =
  add_decl ctx (Oyster.Ast.Rom { rom_name = name; rom_addr_width = addr_width; rom_data = data });
  let dw = Bitvec.width data.(0) in
  fun idx ->
    if idx.w <> addr_width then fail "rom %s index width %d, expected %d" name idx.w addr_width;
    { e = Oyster.Ast.RomRead (name, idx.e); w = dw }

let dep_name (s : signal) =
  match s.e with
  | Oyster.Ast.Var n -> n
  | _ -> fail "hole dependencies must be named signals"

let hole ctx ?(kind = Oyster.Ast.Per_instruction) name w ~deps =
  add_decl ctx
    (Oyster.Ast.Hole
       { hole_name = name; hole_width = w; kind; deps = List.map dep_name deps });
  { e = Oyster.Ast.Var name; w }

(* {1 Assignments} *)

let wire ctx name (s : signal) =
  add_decl ctx (Oyster.Ast.Wire (name, s.w));
  add_stmt ctx (Oyster.Ast.Assign (name, s.e));
  { e = Oyster.Ast.Var name; w = s.w }

let output ctx name (s : signal) =
  add_decl ctx (Oyster.Ast.Output (name, s.w));
  add_stmt ctx (Oyster.Ast.Assign (name, s.e))

(* [r <== next] for registers: the register takes [next]'s value at the end
   of each cycle. *)
let set_register ctx (r : signal) (next : signal) =
  if r.w <> next.w then fail "register update width mismatch";
  match r.e with
  | Oyster.Ast.Var n -> add_stmt ctx (Oyster.Ast.Assign (n, next.e))
  | _ -> fail "set_register target must be a register"

let read (m : mem) (addr : signal) =
  if addr.w <> m.maw then fail "read %s: address width %d, expected %d" m.mem_id addr.w m.maw;
  { e = Oyster.Ast.Read (m.mem_id, addr.e); w = m.mdw }

let write ctx (m : mem) ~addr ~data ~enable =
  if addr.w <> m.maw then fail "write %s: address width" m.mem_id;
  if data.w <> m.mdw then fail "write %s: data width" m.mem_id;
  if enable.w <> 1 then fail "write %s: enable width" m.mem_id;
  add_stmt ctx (Oyster.Ast.Write { mem = m.mem_id; addr = addr.e; data = data.e; enable = enable.e })

(* {1 Combinators} *)

let const w n = { e = Oyster.Ast.Const (Bitvec.of_int ~width:w n); w }
let bvconst v = { e = Oyster.Ast.Const v; w = Bitvec.width v }
let tru = const 1 1
let fls = const 1 0

let binop op a b =
  if a.w <> b.w then fail "width mismatch in binary operation (%d vs %d)" a.w b.w;
  { e = Oyster.Ast.Binop (op, a.e, b.e); w = a.w }

let cmp op a b =
  if a.w <> b.w then fail "width mismatch in comparison (%d vs %d)" a.w b.w;
  { e = Oyster.Ast.Binop (op, a.e, b.e); w = 1 }

let shift op a b = { e = Oyster.Ast.Binop (op, a.e, b.e); w = a.w }

let ( +: ) = binop Oyster.Ast.Add
let ( -: ) = binop Oyster.Ast.Sub
let ( *: ) = binop Oyster.Ast.Mul
let ( &: ) = binop Oyster.Ast.And
let ( |: ) = binop Oyster.Ast.Or
let ( ^: ) = binop Oyster.Ast.Xor
let udiv = binop Oyster.Ast.Udiv
let urem = binop Oyster.Ast.Urem
let sdiv = binop Oyster.Ast.Sdiv
let srem = binop Oyster.Ast.Srem
let clmul = binop Oyster.Ast.Clmul
let clmulh = binop Oyster.Ast.Clmulh
let ( <<: ) = shift Oyster.Ast.Shl
let ( >>: ) = shift Oyster.Ast.Lshr
let ( >>+ ) = shift Oyster.Ast.Ashr
let rol = shift Oyster.Ast.Rol
let ror = shift Oyster.Ast.Ror
let ( ==: ) = cmp Oyster.Ast.Eq
let ( <>: ) = cmp Oyster.Ast.Ne
let ( <: ) = cmp Oyster.Ast.Ult
let ( <=: ) = cmp Oyster.Ast.Ule
let ( >=: ) = cmp Oyster.Ast.Uge
let ( >: ) = cmp Oyster.Ast.Ugt
let ( <+ ) = cmp Oyster.Ast.Slt
let ( <=+ ) = cmp Oyster.Ast.Sle
let ( >=+ ) = cmp Oyster.Ast.Sge
let ( >+ ) = cmp Oyster.Ast.Sgt

let bnot a = { e = Oyster.Ast.Unop (Oyster.Ast.Not, a.e); w = a.w }
let neg a = { e = Oyster.Ast.Unop (Oyster.Ast.Neg, a.e); w = a.w }
let redor a = { e = Oyster.Ast.Unop (Oyster.Ast.RedOr, a.e); w = 1 }
let redand a = { e = Oyster.Ast.Unop (Oyster.Ast.RedAnd, a.e); w = 1 }
let redxor a = { e = Oyster.Ast.Unop (Oyster.Ast.RedXor, a.e); w = 1 }

let mux c a b =
  if c.w <> 1 then fail "mux condition must be 1 bit";
  if a.w <> b.w then fail "mux arms of widths %d and %d" a.w b.w;
  { e = Oyster.Ast.Ite (c.e, a.e, b.e); w = a.w }

(* [select sel cases default]: compares [sel] against each constant case. *)
let select sel (cases : (int * signal) list) default =
  List.fold_right
    (fun (k, v) acc -> mux (cmp Oyster.Ast.Eq sel (const sel.w k)) v acc)
    cases default

let bits ~high ~low a =
  if low < 0 || high < low || high >= a.w then
    fail "bits [%d:%d] of width-%d signal" high low a.w;
  { e = Oyster.Ast.Extract (high, low, a.e); w = high - low + 1 }

let bit i a = bits ~high:i ~low:i a
let msb a = bit (a.w - 1) a

let concat hi lo = { e = Oyster.Ast.Concat (hi.e, lo.e); w = hi.w + lo.w }

let concat_all = function
  | [] -> fail "concat_all: empty"
  | s :: rest -> List.fold_left (fun acc x -> concat acc x) s rest

let zext a w' =
  if w' < a.w then fail "zext to narrower width";
  if w' = a.w then a else { e = Oyster.Ast.Zext (a.e, w'); w = w' }

let sext a w' =
  if w' < a.w then fail "sext to narrower width";
  if w' = a.w then a else { e = Oyster.Ast.Sext (a.e, w'); w = w' }

(* {1 Finalization} *)

let finalize ctx =
  if ctx.finalized then fail "design %s already finalized" ctx.cname;
  ctx.finalized <- true;
  let design =
    {
      Oyster.Ast.name = ctx.cname;
      decls = List.rev ctx.decls;
      stmts = List.rev ctx.stmts;
    }
  in
  ignore (Oyster.Typecheck.check design);
  design
