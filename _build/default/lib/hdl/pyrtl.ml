(* PyRTL-style rendering of control logic (paper Fig. 7).

   The toolchain's final output in the paper is PyRTL code; we render the
   synthesized control the same way — one [with <precondition>:] block per
   instruction with one conditional assignment per control signal — and the
   hand-written reference control as plain combinational assignments.  The
   line counts of these renderings are the "HDL Control Logic" size measure
   of Table 2. *)

let rec pp_expr fmt (e : Oyster.Ast.expr) =
  let bin name a b = Format.fprintf fmt "(%a %s %a)" pp_expr a name pp_expr b in
  match e with
  | Oyster.Ast.Var n -> Format.pp_print_string fmt n
  | Oyster.Ast.Const v ->
      if Bitvec.width v = 1 then
        Format.pp_print_string fmt (if Bitvec.is_zero v then "0" else "1")
      else Format.fprintf fmt "0x%s"
        (let s = Bitvec.to_string v in
         match String.index_opt s 'x' with
         | Some i -> String.sub s (i + 1) (String.length s - i - 1)
         | None -> s)
  | Oyster.Ast.Unop (Oyster.Ast.Not, a) -> Format.fprintf fmt "~%a" pp_expr a
  | Oyster.Ast.Unop (Oyster.Ast.Neg, a) -> Format.fprintf fmt "-%a" pp_expr a
  | Oyster.Ast.Unop (Oyster.Ast.RedOr, a) -> Format.fprintf fmt "or_all_bits(%a)" pp_expr a
  | Oyster.Ast.Unop (Oyster.Ast.RedAnd, a) -> Format.fprintf fmt "and_all_bits(%a)" pp_expr a
  | Oyster.Ast.Unop (Oyster.Ast.RedXor, a) -> Format.fprintf fmt "xor_all_bits(%a)" pp_expr a
  | Oyster.Ast.Binop (op, a, b) -> (
      match op with
      | Oyster.Ast.And -> bin "&" a b
      | Oyster.Ast.Or -> bin "|" a b
      | Oyster.Ast.Xor -> bin "^" a b
      | Oyster.Ast.Add -> bin "+" a b
      | Oyster.Ast.Sub -> bin "-" a b
      | Oyster.Ast.Mul -> bin "*" a b
      | Oyster.Ast.Udiv -> bin "//" a b
      | Oyster.Ast.Urem -> bin "%" a b
      | Oyster.Ast.Sdiv ->
          Format.fprintf fmt "signed_div(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Srem ->
          Format.fprintf fmt "signed_rem(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Clmul -> Format.fprintf fmt "clmul(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Clmulh -> Format.fprintf fmt "clmulh(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Shl -> bin "<<" a b
      | Oyster.Ast.Lshr -> bin ">>" a b
      | Oyster.Ast.Ashr -> bin ">>>" a b
      | Oyster.Ast.Rol -> Format.fprintf fmt "rol(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Ror -> Format.fprintf fmt "ror(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Eq -> bin "==" a b
      | Oyster.Ast.Ne -> bin "!=" a b
      | Oyster.Ast.Ult -> bin "<" a b
      | Oyster.Ast.Ule -> bin "<=" a b
      | Oyster.Ast.Ugt -> bin ">" a b
      | Oyster.Ast.Uge -> bin ">=" a b
      | Oyster.Ast.Slt -> Format.fprintf fmt "signed_lt(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Sle -> Format.fprintf fmt "signed_le(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Sgt -> Format.fprintf fmt "signed_gt(%a, %a)" pp_expr a pp_expr b
      | Oyster.Ast.Sge -> Format.fprintf fmt "signed_ge(%a, %a)" pp_expr a pp_expr b)
  | Oyster.Ast.Ite (c, a, b) ->
      Format.fprintf fmt "mux(%a, falsecase=%a, truecase=%a)" pp_expr c pp_expr b pp_expr a
  | Oyster.Ast.Extract (h, l, a) -> Format.fprintf fmt "%a[%d:%d]" pp_expr a l (h + 1)
  | Oyster.Ast.Concat (a, b) ->
      Format.fprintf fmt "concat(%a, %a)" pp_expr a pp_expr b
  | Oyster.Ast.Zext (a, w) -> Format.fprintf fmt "%a.zero_extended(%d)" pp_expr a w
  | Oyster.Ast.Sext (a, w) -> Format.fprintf fmt "%a.sign_extended(%d)" pp_expr a w
  | Oyster.Ast.Read (m, a) -> Format.fprintf fmt "%s[%a]" m pp_expr a
  | Oyster.Ast.RomRead (r, a) -> Format.fprintf fmt "%s[%a]" r pp_expr a

let expr_to_string e = Format.asprintf "%a" pp_expr e

(* {1 Generated control (per-instruction conditional blocks)} *)

let pp_generated fmt ~(pre_exprs : (string * Oyster.Ast.expr) list)
    ~(per_instr : (string * (string * Bitvec.t) list) list)
    ~(shared : (string * Bitvec.t) list) =
  Format.fprintf fmt "with conditional_assignment:@\n";
  List.iter
    (fun (iname, holes) ->
      let pre =
        match List.assoc_opt iname pre_exprs with
        | Some e -> expr_to_string e
        | None -> "<" ^ iname ^ ">"
      in
      Format.fprintf fmt "    with %s:  # %s@\n" pre iname;
      List.iter
        (fun (h, v) ->
          Format.fprintf fmt "        %s |= %s@\n" h
            (expr_to_string (Oyster.Ast.Const v)))
        holes)
    per_instr;
  List.iter
    (fun (h, v) ->
      Format.fprintf fmt "%s <<= %s@\n" h (expr_to_string (Oyster.Ast.Const v)))
    shared

let generated_to_string ~pre_exprs ~per_instr ~shared =
  Format.asprintf "%t" (fun fmt -> pp_generated fmt ~pre_exprs ~per_instr ~shared)

(* {1 Reference control (plain combinational assignments)} *)

let bindings_to_string (bindings : (string * Oyster.Ast.expr) list) =
  String.concat ""
    (List.map
       (fun (h, e) -> Printf.sprintf "%s <<= %s\n" h (expr_to_string e))
       bindings)

let count_lines s =
  List.length (List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s))

let generated_loc ~pre_exprs ~per_instr ~shared =
  count_lines (generated_to_string ~pre_exprs ~per_instr ~shared)

(* A hand-written decoder in PyRTL is one conditional-assignment line per
   case; structurally that is one line per if-then-else node plus the
   assignment itself, which is how we count the reference control size. *)
let bindings_loc bindings =
  let rec ites (e : Oyster.Ast.expr) =
    match e with
    | Oyster.Ast.Var _ | Oyster.Ast.Const _ -> 0
    | Oyster.Ast.Unop (_, a)
    | Oyster.Ast.Extract (_, _, a)
    | Oyster.Ast.Zext (a, _)
    | Oyster.Ast.Sext (a, _)
    | Oyster.Ast.Read (_, a)
    | Oyster.Ast.RomRead (_, a) -> ites a
    | Oyster.Ast.Binop (_, a, b) | Oyster.Ast.Concat (a, b) -> ites a + ites b
    | Oyster.Ast.Ite (c, a, b) -> 1 + ites c + ites a + ites b
  in
  List.fold_left (fun acc (_, e) -> acc + 1 + ites e) 0 bindings
