lib/hdl/pyrtl.ml: Bitvec Format List Oyster Printf String
