lib/hdl/verilog.mli: Oyster
