lib/hdl/verilog.ml: Array Bitvec Buffer List Oyster Printf String
