lib/hdl/builder.ml: Array Bitvec List Oyster Printf
