lib/hdl/builder.mli: Bitvec Oyster
