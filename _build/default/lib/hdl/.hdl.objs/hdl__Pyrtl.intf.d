lib/hdl/pyrtl.mli: Bitvec Format Oyster
