(** PyRTL-style rendering of control logic (paper Fig. 7) and the
    HDL-size measures of Table 2.

    Generated control renders as one [with <precondition>:] block per
    instruction with one conditional assignment per control signal;
    hand-written reference control renders as plain combinational
    assignments. *)

val pp_expr : Format.formatter -> Oyster.Ast.expr -> unit
val expr_to_string : Oyster.Ast.expr -> string

val pp_generated :
  Format.formatter ->
  pre_exprs:(string * Oyster.Ast.expr) list ->
  per_instr:(string * (string * Bitvec.t) list) list ->
  shared:(string * Bitvec.t) list ->
  unit

val generated_to_string :
  pre_exprs:(string * Oyster.Ast.expr) list ->
  per_instr:(string * (string * Bitvec.t) list) list ->
  shared:(string * Bitvec.t) list ->
  string

val bindings_to_string : (string * Oyster.Ast.expr) list -> string

val count_lines : string -> int
(** Non-blank lines. *)

val generated_loc :
  pre_exprs:(string * Oyster.Ast.expr) list ->
  per_instr:(string * (string * Bitvec.t) list) list ->
  shared:(string * Bitvec.t) list ->
  int
(** Lines of the generated-control rendering (Table 2, "HDL gen"). *)

val bindings_loc : (string * Oyster.Ast.expr) list -> int
(** Size of hand-written control: one line per conditional-assignment case
    (if-then-else node) plus one per signal (Table 2, "HDL ref"). *)
