(** ILA specifications (paper §2.1): a mutable builder mirroring the ILA
    C++ API, plus a concrete architectural-level evaluator used as a
    reference model in tests and benchmarks.

    An instruction is a decode predicate (paper: [SetDecode]) plus a set of
    simultaneous state updates ([SetUpdate]) whose right-hand sides all read
    the pre-state. *)

exception Spec_error of string

type update =
  | Ubv of string * Expr.t  (** bitvector state := expr *)
  | Umem of string * (Expr.t * Expr.t) list
      (** memory := Store*(mem, addr, data); later stores win *)

type instr = {
  iname : string;
  mutable decode : Expr.t option;
  mutable updates : update list;
}

type t = {
  sname : string;
  mutable inputs : (string * int) list;
  mutable bv_states : (string * int) list;
  mutable mem_states : (string * int * int) list;  (** name, addr_w, data_w *)
  mutable mem_consts : (string * int * Bitvec.t array) list;
  mutable instrs : instr list;  (** reverse creation order *)
}

(** {1 Building (the ILA API)} *)

val create : string -> t
val new_bv_input : t -> string -> int -> Expr.t
val new_bv_state : t -> string -> int -> Expr.t

val new_mem_state : t -> string -> addr_width:int -> data_width:int -> string
(** Returns the memory's name, for use with {!Expr.load}. *)

val new_mem_const : t -> string -> addr_width:int -> Bitvec.t array -> string
(** A read-only lookup table; the data must have [2^addr_width] entries. *)

val new_instr : t -> string -> instr
val set_decode : instr -> Expr.t -> unit
val set_update : instr -> string -> Expr.t -> unit

val set_mem_update : instr -> string -> (Expr.t * Expr.t) list -> unit
(** [(address, data)] stores applied in order (later wins). *)

val instructions : t -> instr list
(** In creation order. *)

val decode_of : instr -> Expr.t
val find_instr : t -> string -> instr

(** {1 Concrete architectural evaluation (the spec-level ISS)} *)

type arch_state = {
  bvs : (string, Bitvec.t) Hashtbl.t;
  mems : (string, (Bitvec.t, Bitvec.t) Hashtbl.t) Hashtbl.t;
  mem_defaults : (string, Bitvec.t -> Bitvec.t) Hashtbl.t;
}

val init_state :
  ?mem_init:(string -> int -> int -> Bitvec.t -> Bitvec.t) -> t -> arch_state
(** Bitvector states start at zero; memory cells default through
    [mem_init name addr_width data_width addr]. *)

val get_bv : arch_state -> string -> Bitvec.t
val set_bv : arch_state -> string -> Bitvec.t -> unit
val get_mem : arch_state -> string -> Bitvec.t -> Bitvec.t
val set_mem : arch_state -> string -> Bitvec.t -> Bitvec.t -> unit

val eval_concrete : t -> arch_state -> inputs:(string -> Bitvec.t) -> Expr.t -> Bitvec.t

val step_concrete : t -> arch_state -> inputs:(string -> Bitvec.t) -> string option
(** Finds the unique enabled instruction and applies its updates
    simultaneously; [None] when nothing decodes.  Raises {!Spec_error} if
    several instructions decode at once (mutual exclusion violated). *)
