(** Compilation of ILA instructions into pre/postconditions over a symbolic
    Oyster trace — the T[[.]] translation of paper Fig. 8 combined with the
    abstraction-function substitution of Equation (1):

    {v
    Pre_j  [s_spec := alpha(s_0)]          (SetDecode -> assume)
    Post_j [s_spec := alpha(s_1 .. s_k)]   (SetUpdate -> assert)
    v}

    Postconditions cover every architectural state element: updated
    elements must equal their specified values, untouched ones must keep
    their pre-state values (the frame).  Memory frames use one universally
    quantified "challenge" address per write-capable datapath memory: in
    the verification query its negation lets the solver search for a
    differing address; in the CEGIS synthesis phase the counterexample
    fixes it. *)

exception Compile_error of string

type conditions = {
  instr_name : string;
  pre : Term.t;  (** the compiled decode predicate *)
  assumes : Term.t;  (** conjunction of abstraction-function assumptions *)
  post : Term.t;
  challenges : (string * Term.t) list;
      (** datapath memory name -> its challenge address variable *)
}

val compile_expr : Spec.t -> Absfun.t -> Oyster.Symbolic.trace -> Expr.t -> Term.t
(** Compiles a specification expression against the pre-state (reads follow
    the abstraction function's read times and ports). *)

val compile_instr :
  Spec.t -> Absfun.t -> Oyster.Symbolic.trace -> Spec.instr -> conditions
(** Raises {!Compile_error} on inconsistencies (trace length differs from
    the abstraction function's [cycles], updates to unmapped state, ...). *)

val compile : Spec.t -> Absfun.t -> Oyster.Symbolic.trace -> conditions list
(** All instructions, in creation order. *)
