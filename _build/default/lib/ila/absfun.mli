(** Abstraction functions (paper §3.2): the lightweight microarchitectural
    model mapping each architectural state element of a specification to a
    datapath component, annotated with the time steps at which the
    architectural read/write effects occur.

    Time-step convention (states s_0 .. s_k for a k-cycle evaluation):
    [read: t] observes state s_{t-1} (for inputs: the value sampled during
    cycle t); [write: t] is performed during cycle t and observed in state
    s_t; [assume (w, t)] constrains wire [w] to 1 during cycle [t]. *)

type dp_type = Dinput | Doutput | Dregister | Dmemory

type mapping = {
  spec_id : string;  (** the spec input / state element *)
  port : string option;
      (** matches the [port] of spec Loads when one architectural memory is
          split over several datapath memories; [None] is the default *)
  dp_name : string;
  dp_type : dp_type;
  reads : int list;
  writes : int list;
  addr_via : string option;
      (** memory mappings only: a datapath wire carrying the access address
          at the read time step.  Encodes a microarchitectural invariant
          (e.g. "the fetch address equals the architectural pc when the
          instruction enters the pipeline") so specification-side loads
          become the very terms the datapath computes. *)
}

type t = {
  mappings : mapping list;
  cycles : int;  (** how many cycles to evaluate the sketch symbolically *)
  assumes : (string * int) list;  (** wire name, cycle *)
}

exception Absfun_error of string

val mapping :
  ?port:string ->
  ?addr_via:string ->
  spec:string ->
  dp:string ->
  ty:dp_type ->
  ?reads:int list ->
  ?writes:int list ->
  unit ->
  mapping

val make : cycles:int -> ?assumes:(string * int) list -> mapping list -> t
(** Validates that every time step lies in [1..cycles]. *)

val mappings_for : t -> string -> mapping list

val read_mapping : t -> string -> port:string option -> mapping
(** The read-capable mapping for a spec element, disambiguated by [port]
    when several exist.  Raises {!Absfun_error} when missing/ambiguous. *)

val write_mappings : t -> string -> mapping list

val read_time : mapping -> int
val write_time : mapping -> int
