(* ILA specifications: a mutable builder mirroring the ILA C++ API of the
   paper (§2.1), plus a concrete architectural-level evaluator used as the
   reference model in tests and benchmarks.

   An instruction is a decode predicate plus a set of state updates (paper:
   SetDecode / SetUpdate).  All update right-hand sides read the PRE-state:
   updates are simultaneous, exactly as in ILA. *)

exception Spec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Spec_error s)) fmt

type update =
  | Ubv of string * Expr.t  (* bitvector state := expr *)
  | Umem of string * (Expr.t * Expr.t) list
      (* memory state := Store*(mem, addr, data); later stores win *)

type instr = {
  iname : string;
  mutable decode : Expr.t option;
  mutable updates : update list;  (* in SetUpdate order *)
}

type t = {
  sname : string;
  mutable inputs : (string * int) list;
  mutable bv_states : (string * int) list;
  mutable mem_states : (string * int * int) list;  (* name, addr_w, data_w *)
  mutable mem_consts : (string * int * Bitvec.t array) list;  (* name, addr_w *)
  mutable instrs : instr list;  (* reverse order of creation *)
}

let create sname =
  { sname; inputs = []; bv_states = []; mem_states = []; mem_consts = []; instrs = [] }

let check_fresh spec name =
  if
    List.mem_assoc name spec.inputs
    || List.mem_assoc name spec.bv_states
    || List.exists (fun (n, _, _) -> n = name) spec.mem_states
    || List.exists (fun (n, _, _) -> n = name) spec.mem_consts
  then fail "duplicate declaration %s in spec %s" name spec.sname

let new_bv_input spec name width =
  check_fresh spec name;
  spec.inputs <- spec.inputs @ [ (name, width) ];
  Expr.Input (name, width)

let new_bv_state spec name width =
  check_fresh spec name;
  spec.bv_states <- spec.bv_states @ [ (name, width) ];
  Expr.State (name, width)

let new_mem_state spec name ~addr_width ~data_width =
  check_fresh spec name;
  spec.mem_states <- spec.mem_states @ [ (name, addr_width, data_width) ];
  name

let new_mem_const spec name ~addr_width data =
  check_fresh spec name;
  if Array.length data <> 1 lsl addr_width then
    fail "mem const %s has %d entries, expected %d" name (Array.length data)
      (1 lsl addr_width);
  spec.mem_consts <- spec.mem_consts @ [ (name, addr_width, data) ];
  name

let new_instr spec iname =
  if List.exists (fun i -> i.iname = iname) spec.instrs then
    fail "duplicate instruction %s" iname;
  let i = { iname; decode = None; updates = [] } in
  spec.instrs <- i :: spec.instrs;
  i

let set_decode instr e =
  if instr.decode <> None then fail "decode of %s set twice" instr.iname;
  instr.decode <- Some e

let set_update instr state e =
  if
    List.exists
      (function Ubv (n, _) -> n = state | Umem (n, _) -> n = state)
      instr.updates
  then fail "update of %s set twice in %s" state instr.iname;
  instr.updates <- instr.updates @ [ Ubv (state, e) ]

let set_mem_update instr mem stores =
  if
    List.exists
      (function Ubv (n, _) -> n = mem | Umem (n, _) -> n = mem)
      instr.updates
  then fail "update of %s set twice in %s" mem instr.iname;
  instr.updates <- instr.updates @ [ Umem (mem, stores) ]

let instructions spec = List.rev spec.instrs

let decode_of instr =
  match instr.decode with
  | Some d -> d
  | None -> fail "instruction %s has no decode" instr.iname

let find_instr spec name =
  match List.find_opt (fun i -> i.iname = name) spec.instrs with
  | Some i -> i
  | None -> fail "no instruction %s" name

(* {1 Concrete architectural evaluation}

   The spec doubles as an executable reference model ("spec-level ISS").
   Architectural state is a record of bitvector values and sparse memory
   images. *)

type arch_state = {
  bvs : (string, Bitvec.t) Hashtbl.t;
  mems : (string, (Bitvec.t, Bitvec.t) Hashtbl.t) Hashtbl.t;
  mem_defaults : (string, Bitvec.t -> Bitvec.t) Hashtbl.t;
}

let init_state ?(mem_init = fun _name _addr_width data_width _addr -> Bitvec.zero data_width)
    spec =
  let bvs = Hashtbl.create 16 in
  List.iter (fun (n, w) -> Hashtbl.replace bvs n (Bitvec.zero w)) spec.bv_states;
  let mems = Hashtbl.create 4 in
  let mem_defaults = Hashtbl.create 4 in
  List.iter
    (fun (n, aw, dw) ->
      Hashtbl.replace mems n (Hashtbl.create 64);
      Hashtbl.replace mem_defaults n (mem_init n aw dw))
    spec.mem_states;
  { bvs; mems; mem_defaults }

let get_bv st name =
  match Hashtbl.find_opt st.bvs name with
  | Some v -> v
  | None -> fail "unknown bv state %s" name

let set_bv st name v = Hashtbl.replace st.bvs name v

let get_mem st name addr =
  match Hashtbl.find_opt st.mems name with
  | Some tbl -> (
      match Hashtbl.find_opt tbl addr with
      | Some v -> v
      | None -> (Hashtbl.find st.mem_defaults name) addr)
  | None -> fail "unknown memory state %s" name

let set_mem st name addr v =
  match Hashtbl.find_opt st.mems name with
  | Some tbl -> Hashtbl.replace tbl addr v
  | None -> fail "unknown memory state %s" name

let eval_concrete spec st ~(inputs : string -> Bitvec.t) (e : Expr.t) : Bitvec.t =
  let of_bool x = if x then Bitvec.one 1 else Bitvec.zero 1 in
  let rec go e =
    match (e : Expr.t) with
    | Expr.Const v -> v
    | Expr.Input (n, w) ->
        let v = inputs n in
        if Bitvec.width v <> w then fail "input %s driven at wrong width" n;
        v
    | Expr.State (n, _) -> get_bv st n
    | Expr.Load { mem; addr; _ } -> get_mem st mem (go addr)
    | Expr.TableLoad (t, addr) -> (
        match List.find_opt (fun (n, _, _) -> n = t) spec.mem_consts with
        | Some (_, _, data) -> data.(Bitvec.to_int_exn (go addr))
        | None -> fail "unknown mem const %s" t)
    | Expr.Unop (op, a) -> (
        let a = go a in
        match op with
        | Expr.Not -> Bitvec.lognot a
        | Expr.Neg -> Bitvec.neg a
        | Expr.RedOr -> of_bool (Bitvec.reduce_or a)
        | Expr.RedAnd -> of_bool (Bitvec.reduce_and a)
        | Expr.RedXor -> of_bool (Bitvec.reduce_xor a))
    | Expr.Binop (op, a, b) -> (
        let a = go a and b = go b in
        match op with
        | Expr.And -> Bitvec.logand a b
        | Expr.Or -> Bitvec.logor a b
        | Expr.Xor -> Bitvec.logxor a b
        | Expr.Add -> Bitvec.add a b
        | Expr.Sub -> Bitvec.sub a b
        | Expr.Mul -> Bitvec.mul a b
        | Expr.Udiv -> Bitvec.udiv a b
        | Expr.Urem -> Bitvec.urem a b
        | Expr.Sdiv -> Bitvec.sdiv a b
        | Expr.Srem -> Bitvec.srem a b
        | Expr.Clmul -> Bitvec.clmul a b
        | Expr.Clmulh -> Bitvec.clmulh a b
        | Expr.Shl -> Bitvec.shl a b
        | Expr.Lshr -> Bitvec.lshr a b
        | Expr.Ashr -> Bitvec.ashr a b
        | Expr.Rol -> Bitvec.rol a b
        | Expr.Ror -> Bitvec.ror a b
        | Expr.Eq -> of_bool (Bitvec.equal a b)
        | Expr.Ne -> of_bool (not (Bitvec.equal a b))
        | Expr.Ult -> of_bool (Bitvec.ult a b)
        | Expr.Ule -> of_bool (Bitvec.ule a b)
        | Expr.Ugt -> of_bool (Bitvec.ult b a)
        | Expr.Uge -> of_bool (Bitvec.ule b a)
        | Expr.Slt -> of_bool (Bitvec.slt a b)
        | Expr.Sle -> of_bool (Bitvec.sle a b)
        | Expr.Sgt -> of_bool (Bitvec.slt b a)
        | Expr.Sge -> of_bool (Bitvec.sle b a))
    | Expr.Ite (c, a, b) -> if Bitvec.is_ones (go c) then go a else go b
    | Expr.Extract (h, l, a) -> Bitvec.extract ~high:h ~low:l (go a)
    | Expr.Concat (a, b) ->
        let va = go a in
        Bitvec.concat va (go b)
    | Expr.Zext (a, w) -> Bitvec.zext (go a) w
    | Expr.Sext (a, w) -> Bitvec.sext (go a) w
  in
  go e

(* One architectural step: find the unique enabled instruction (decode holds)
   and apply its updates simultaneously.  Returns the instruction name, or
   [None] if no instruction decodes (architecture stalls). *)
let step_concrete spec st ~inputs =
  let enabled =
    List.filter
      (fun i ->
        Bitvec.is_ones (eval_concrete spec st ~inputs (decode_of i)))
      (instructions spec)
  in
  match enabled with
  | [] -> None
  | _ :: _ :: _ ->
      fail "instructions %s decode simultaneously (mutual exclusion violated)"
        (String.concat ", " (List.map (fun i -> i.iname) enabled))
  | [ i ] ->
      (* evaluate all update values against the pre-state first *)
      let bv_updates =
        List.filter_map
          (function
            | Ubv (n, e) -> Some (n, eval_concrete spec st ~inputs e)
            | Umem _ -> None)
          i.updates
      in
      let mem_updates =
        List.filter_map
          (function
            | Umem (n, stores) ->
                Some
                  ( n,
                    List.map
                      (fun (a, d) ->
                        (eval_concrete spec st ~inputs a, eval_concrete spec st ~inputs d))
                      stores )
            | Ubv _ -> None)
          i.updates
      in
      List.iter (fun (n, v) -> set_bv st n v) bv_updates;
      List.iter
        (fun (n, stores) -> List.iter (fun (a, d) -> set_mem st n a d) stores)
        mem_updates;
      Some i.iname
