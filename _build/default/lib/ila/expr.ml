(* ILA expression language (paper §2.1 / Fig. 8).

   Expressions denote architectural values: inputs, bitvector state
   variables, loads from memory state, and loads from read-only MemConst
   tables.  The grammar mirrors the ILA C++ library's intrinsics. *)

type unop = Not | Neg | RedOr | RedAnd | RedXor

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Sdiv
  | Srem
  | Clmul
  | Clmulh
  | Shl
  | Lshr
  | Ashr
  | Rol
  | Ror
  | Eq
  | Ne
  | Ult
  | Ule
  | Ugt
  | Uge
  | Slt
  | Sle
  | Sgt
  | Sge

type t =
  | Const of Bitvec.t
  | Input of string * int
  | State of string * int  (* bitvector state variable *)
  | Load of { mem : string; addr : t; port : string option }
      (* [port] disambiguates which datapath memory implements the access
         when the abstraction function splits one architectural memory over
         several components (e.g. i_mem vs d_mem) *)
  | TableLoad of string * t  (* MemConst lookup *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t
  | Extract of int * int * t
  | Concat of t * t
  | Zext of t * int
  | Sext of t * int

(* {1 Convenience constructors} *)

let const v = Const v
let of_int ~width n = Const (Bitvec.of_int ~width n)
let tru = of_int ~width:1 1
let fls = of_int ~width:1 0
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( land ) a b = Binop (And, a, b)
let ( lor ) a b = Binop (Or, a, b)
let ( lxor ) a b = Binop (Xor, a, b)
let lnot a = Unop (Not, a)
let ( == ) a b = Binop (Eq, a, b)
let ( != ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Ult, a, b)
let ( <= ) a b = Binop (Ule, a, b)
let ( <+ ) a b = Binop (Slt, a, b)
let ( <=+ ) a b = Binop (Sle, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let ( << ) a b = Binop (Shl, a, b)
let ( >> ) a b = Binop (Lshr, a, b)
let ( >>+ ) a b = Binop (Ashr, a, b)
let ite c a b = Ite (c, a, b)
let extract ~high ~low a = Extract (high, low, a)
let concat a b = Concat (a, b)
let zext a w = Zext (a, w)
let sext a w = Sext (a, w)
let load ?port mem addr = Load { mem; addr; port }
let table_load t addr = TableLoad (t, addr)

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Input _ | State _ -> acc
  | Load { addr; _ } -> fold f acc addr
  | TableLoad (_, a) | Unop (_, a) | Extract (_, _, a) | Zext (a, _) | Sext (a, _) ->
      fold f acc a
  | Binop (_, a, b) | Concat (a, b) -> fold f (fold f acc a) b
  | Ite (c, a, b) -> fold f (fold f (fold f acc c) a) b
