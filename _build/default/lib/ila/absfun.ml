(* Abstraction functions (paper §3.2).

   An abstraction function maps every architectural state element of a
   specification to a datapath component of the sketch, annotated with the
   time steps at which the architectural read/write effects occur in the
   datapath, plus the number of cycles to evaluate symbolically and a list
   of signals assumed true (for hazard handling).

   Time-step convention used throughout this code base (see DESIGN.md):
   states are s_0 (initial) .. s_k after k cycles of symbolic evaluation.

     read:  t   the architectural read observes state s_{t-1}
                (for inputs: the input sampled during cycle t)
     write: t   the architectural write is performed during cycle t and is
                observed in state s_t
     assume (w, t)   wire w evaluates to 1 during cycle t *)

type dp_type = Dinput | Doutput | Dregister | Dmemory

type mapping = {
  spec_id : string;  (* name of the spec input / state element *)
  port : string option;
      (* matches the [port] of spec Loads when one architectural memory is
         split over several datapath memories; [None] is the default port *)
  dp_name : string;
  dp_type : dp_type;
  reads : int list;
  writes : int list;
  addr_via : string option;
      (* for memory mappings: a datapath wire that carries the access
         address at the read time step.  This encodes a microarchitectural
         invariant (e.g. "the fetch address equals the architectural pc when
         the instruction enters the pipeline") so that specification-side
         loads become the exact terms the datapath computes. *)
}

type t = {
  mappings : mapping list;
  cycles : int;
  assumes : (string * int) list;
}

exception Absfun_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Absfun_error s)) fmt

(* {1 Builders (concrete syntax close to the paper's)} *)

let mapping ?port ?addr_via ~spec ~dp ~ty ?(reads = []) ?(writes = []) () =
  { spec_id = spec; port; dp_name = dp; dp_type = ty; reads; writes; addr_via }

let make ~cycles ?(assumes = []) mappings =
  if cycles < 1 then fail "cycles must be >= 1";
  List.iter
    (fun m ->
      List.iter
        (fun t ->
          if t < 1 || t > cycles then
            fail "%s: read/write time %d out of range 1..%d" m.spec_id t cycles)
        (m.reads @ m.writes))
    mappings;
  List.iter
    (fun (_, t) ->
      if t < 1 || t > cycles then fail "assume time %d out of range" t)
    assumes;
  { mappings; cycles; assumes }

(* {1 Lookups} *)

let mappings_for af spec_id =
  List.filter (fun m -> m.spec_id = spec_id) af.mappings

let read_mapping af spec_id ~port =
  let candidates = mappings_for af spec_id in
  let candidates = List.filter (fun m -> m.reads <> []) candidates in
  match candidates with
  | [] -> fail "no read mapping for %s" spec_id
  | [ m ] -> m
  | _ -> (
      (* several read-capable mappings: select by port *)
      match List.find_opt (fun m -> m.port = port) candidates with
      | Some m -> m
      | None ->
          fail "ambiguous read mapping for %s (port %s)" spec_id
            (Option.value port ~default:"<default>"))

let write_mappings af spec_id =
  List.filter (fun m -> m.writes <> []) (mappings_for af spec_id)

let read_time m =
  match m.reads with
  | [ t ] -> t
  | t :: _ -> t
  | [] -> fail "%s has no read time" m.spec_id

let write_time m =
  match m.writes with
  | [ t ] -> t
  | t :: _ -> t
  | [] -> fail "%s has no write time" m.spec_id
