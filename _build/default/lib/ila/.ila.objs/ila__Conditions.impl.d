lib/ila/conditions.ml: Absfun Expr List Oyster Printf Spec Term
