lib/ila/expr.ml: Bitvec
