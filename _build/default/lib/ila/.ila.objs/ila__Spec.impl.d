lib/ila/spec.ml: Array Bitvec Expr Hashtbl List Printf String
