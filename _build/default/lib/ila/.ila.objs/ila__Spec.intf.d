lib/ila/spec.mli: Bitvec Expr Hashtbl
