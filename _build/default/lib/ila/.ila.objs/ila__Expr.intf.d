lib/ila/expr.mli: Bitvec
