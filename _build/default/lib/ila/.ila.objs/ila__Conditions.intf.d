lib/ila/conditions.mli: Absfun Expr Oyster Spec Term
