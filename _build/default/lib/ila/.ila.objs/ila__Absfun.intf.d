lib/ila/absfun.mli:
