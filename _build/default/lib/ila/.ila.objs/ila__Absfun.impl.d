lib/ila/absfun.ml: List Option Printf
