(** The ILA expression language (paper §2.1 / Fig. 8).

    Expressions denote architectural values: specification inputs,
    bitvector state variables, loads from memory state, and lookups in
    read-only MemConst tables.  Convenience operators mirror the ILA C++
    library's expression builders; widths are checked when expressions are
    compiled (to {!Term}s by {!Conditions}, or evaluated concretely by
    {!Spec}). *)

type unop = Not | Neg | RedOr | RedAnd | RedXor

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Sdiv
  | Srem
  | Clmul
  | Clmulh
  | Shl
  | Lshr
  | Ashr
  | Rol
  | Ror
  | Eq
  | Ne
  | Ult
  | Ule
  | Ugt
  | Uge
  | Slt
  | Sle
  | Sgt
  | Sge

type t =
  | Const of Bitvec.t
  | Input of string * int
  | State of string * int  (** a bitvector state variable *)
  | Load of { mem : string; addr : t; port : string option }
      (** [port] selects which datapath memory implements the access when
          the abstraction function splits one architectural memory over
          several components (e.g. i_mem vs d_mem); [None] is the default
          port. *)
  | TableLoad of string * t  (** MemConst lookup *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Ite of t * t * t
  | Extract of int * int * t  (** high, low *)
  | Concat of t * t
  | Zext of t * int
  | Sext of t * int

(** {1 Constructors}

    The infix operators shadow the standard ones — use them under a local
    [let open Ila.Expr in ...]. *)

val const : Bitvec.t -> t
val of_int : width:int -> int -> t
val tru : t
val fls : t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( land ) : t -> t -> t
val ( lor ) : t -> t -> t
val ( lxor ) : t -> t -> t
val lnot : t -> t
val ( == ) : t -> t -> t
val ( != ) : t -> t -> t
val ( < ) : t -> t -> t  (** unsigned *)

val ( <= ) : t -> t -> t
val ( <+ ) : t -> t -> t  (** signed *)

val ( <=+ ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( << ) : t -> t -> t
val ( >> ) : t -> t -> t
val ( >>+ ) : t -> t -> t  (** arithmetic shift right *)

val ite : t -> t -> t -> t
val extract : high:int -> low:int -> t -> t
val concat : t -> t -> t
val zext : t -> int -> t
val sext : t -> int -> t
val load : ?port:string -> string -> t -> t
val table_load : string -> t -> t

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over the expression tree. *)
