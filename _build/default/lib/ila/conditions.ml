(* Compilation of ILA instructions to pre/postconditions over a symbolic
   Oyster trace — the T[[.]] translation of paper Fig. 8 combined with the
   abstraction-function substitution of Equation (1):

     Pre_j  [s_spec := alpha(s_0)]          (SetDecode -> assume)
     Post_j [s_spec := alpha(s_1 .. s_k)]   (SetUpdate -> assert)

   Memory updates additionally produce frame conditions via a universally
   quantified "challenge" address per memory (one fresh variable: in the
   verification query its negation makes the solver search for a differing
   address; in the CEGIS synthesis phase it is fixed by the counterexample). *)

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

type conditions = {
  instr_name : string;
  pre : Term.t;  (* decode (+ assumes folded in by the caller if desired) *)
  assumes : Term.t;  (* conjunction of abstraction-function assumptions *)
  post : Term.t;
  challenges : (string * Term.t) list;  (* dp memory name -> challenge var *)
}

(* {1 Expression compilation (pre-state semantics)} *)

let table_of_spec (spec : Spec.t) name =
  match List.find_opt (fun (n, _, _) -> n = name) spec.Spec.mem_consts with
  | Some (_, aw, data) ->
      { Term.tab_name = Printf.sprintf "ilatab!%s!%s" spec.Spec.sname name;
        tab_addr_width = aw;
        tab_data = data }
  | None -> fail "unknown mem const %s" name

let dp_pre_value (trace : Oyster.Symbolic.trace) (m : Absfun.mapping) =
  let t = Absfun.read_time m in
  match m.Absfun.dp_type with
  | Absfun.Dinput -> Oyster.Symbolic.wire_at trace ~cycle:t m.Absfun.dp_name
  | Absfun.Dregister -> Oyster.Symbolic.reg_at trace ~state:(t - 1) m.Absfun.dp_name
  | Absfun.Doutput -> Oyster.Symbolic.wire_at trace ~cycle:t m.Absfun.dp_name
  | Absfun.Dmemory -> fail "%s: memory mapping used as a value" m.Absfun.spec_id

let rec compile_expr (spec : Spec.t) (af : Absfun.t) trace (e : Expr.t) : Term.t =
  let go = compile_expr spec af trace in
  match e with
  | Expr.Const v -> Term.const v
  | Expr.Input (n, _) | Expr.State (n, _) ->
      dp_pre_value trace (Absfun.read_mapping af n ~port:None)
  | Expr.Load { mem; addr; port } ->
      let m = Absfun.read_mapping af mem ~port in
      if m.Absfun.dp_type <> Absfun.Dmemory then
        fail "%s: load maps to non-memory %s" mem m.Absfun.dp_name;
      let t = Absfun.read_time m in
      let addr_term =
        match m.Absfun.addr_via with
        | Some wire -> Oyster.Symbolic.wire_at trace ~cycle:t wire
        | None -> go addr
      in
      Oyster.Symbolic.read_mem_at trace ~state:(t - 1) m.Absfun.dp_name addr_term
  | Expr.TableLoad (tname, addr) -> Term.table_read (table_of_spec spec tname) (go addr)
  | Expr.Unop (op, a) -> (
      let a = go a in
      match op with
      | Expr.Not -> Term.bnot a
      | Expr.Neg -> Term.neg a
      | Expr.RedOr -> Term.ne a (Term.zero (Term.width a))
      | Expr.RedAnd -> Term.eq a (Term.ones (Term.width a))
      | Expr.RedXor ->
          let w = Term.width a in
          let rec loop i acc =
            if i >= w then acc else loop (i + 1) (Term.bxor acc (Term.bit a i))
          in
          loop 1 (Term.bit a 0))
  | Expr.Binop (op, a, b) -> (
      let a = go a and b = go b in
      match op with
      | Expr.And -> Term.band a b
      | Expr.Or -> Term.bor a b
      | Expr.Xor -> Term.bxor a b
      | Expr.Add -> Term.add a b
      | Expr.Sub -> Term.sub a b
      | Expr.Mul -> Term.mul a b
      | Expr.Udiv -> Term.udiv a b
      | Expr.Urem -> Term.urem a b
      | Expr.Sdiv -> Term.sdiv a b
      | Expr.Srem -> Term.srem a b
      | Expr.Clmul -> Term.clmul a b
      | Expr.Clmulh -> Term.clmulh a b
      | Expr.Shl -> Term.shl a b
      | Expr.Lshr -> Term.lshr a b
      | Expr.Ashr -> Term.ashr a b
      | Expr.Rol -> Oyster.Symbolic.eval_binop Oyster.Ast.Rol a b
      | Expr.Ror -> Oyster.Symbolic.eval_binop Oyster.Ast.Ror a b
      | Expr.Eq -> Term.eq a b
      | Expr.Ne -> Term.ne a b
      | Expr.Ult -> Term.ult a b
      | Expr.Ule -> Term.ule a b
      | Expr.Ugt -> Term.ugt a b
      | Expr.Uge -> Term.uge a b
      | Expr.Slt -> Term.slt a b
      | Expr.Sle -> Term.sle a b
      | Expr.Sgt -> Term.sgt a b
      | Expr.Sge -> Term.sge a b)
  | Expr.Ite (c, a, b) -> Term.ite (go c) (go a) (go b)
  | Expr.Extract (h, l, a) -> Term.extract ~high:h ~low:l (go a)
  | Expr.Concat (a, b) -> Term.concat (go a) (go b)
  | Expr.Zext (a, w) -> Term.zext (go a) w
  | Expr.Sext (a, w) -> Term.sext (go a) w

(* {1 Post-state observation} *)

let dp_post_value trace (m : Absfun.mapping) =
  let t = Absfun.write_time m in
  match m.Absfun.dp_type with
  | Absfun.Dregister -> Oyster.Symbolic.reg_at trace ~state:t m.Absfun.dp_name
  | Absfun.Doutput -> Oyster.Symbolic.wire_at trace ~cycle:t m.Absfun.dp_name
  | Absfun.Dinput -> fail "%s: input cannot be written" m.Absfun.spec_id
  | Absfun.Dmemory -> fail "use memory path for %s" m.Absfun.spec_id

(* {1 Instruction compilation} *)

let compile_instr (spec : Spec.t) (af : Absfun.t) (trace : Oyster.Symbolic.trace)
    (instr : Spec.instr) : conditions =
  if trace.Oyster.Symbolic.cycles <> af.Absfun.cycles then
    fail "trace evaluated for %d cycles but abstraction function specifies %d"
      trace.Oyster.Symbolic.cycles af.Absfun.cycles;
  let pre = compile_expr spec af trace (Spec.decode_of instr) in
  let assumes =
    Term.conj
      (List.map
         (fun (wire, t) ->
           let v = Oyster.Symbolic.wire_at trace ~cycle:t wire in
           if Term.width v <> 1 then fail "assumed wire %s is not 1 bit" wire;
           v)
         af.Absfun.assumes)
  in
  (* Updated state elements, with simultaneous (pre-state) right-hand sides. *)
  let bv_update name =
    List.find_map
      (function
        | Spec.Ubv (n, e) when n = name -> Some e
        | _ -> None)
      instr.Spec.updates
  in
  let mem_update name =
    List.find_map
      (function
        | Spec.Umem (n, stores) when n = name -> Some stores
        | _ -> None)
      instr.Spec.updates
  in
  (* sanity: every update target is a declared state element *)
  List.iter
    (function
      | Spec.Ubv (n, _) ->
          if not (List.mem_assoc n spec.Spec.bv_states) then
            fail "%s updates unknown bv state %s" instr.Spec.iname n
      | Spec.Umem (n, _) ->
          if not (List.exists (fun (m, _, _) -> m = n) spec.Spec.mem_states) then
            fail "%s updates unknown memory %s" instr.Spec.iname n)
    instr.Spec.updates;
  let posts = ref [] in
  (* bitvector state elements *)
  List.iter
    (fun (name, _w) ->
      let wms = Absfun.write_mappings af name in
      match wms with
      | [] ->
          (* state element the datapath never writes: nothing to assert, but
             the spec must not update it either *)
          if bv_update name <> None then
            fail "%s updates %s but the abstraction function has no write mapping"
              instr.Spec.iname name
      | _ ->
          List.iter
            (fun m ->
              let dp_post = dp_post_value trace m in
              let expected =
                match bv_update name with
                | Some rhs -> compile_expr spec af trace rhs
                | None ->
                    (* frame: unchanged, i.e. equal to its pre-state value *)
                    dp_pre_value trace (Absfun.read_mapping af name ~port:None)
              in
              posts := Term.eq dp_post expected :: !posts)
            wms)
    spec.Spec.bv_states;
  (* memory state elements *)
  let challenges = ref [] in
  List.iter
    (fun (name, _aw, _dw) ->
      let wms = Absfun.write_mappings af name in
      (match (wms, mem_update name) with
      | [], Some _ ->
          fail "%s stores to %s but no datapath memory accepts writes"
            instr.Spec.iname name
      | _ -> ());
      List.iter
        (fun m ->
          let dp_mem = Oyster.Symbolic.mem_of trace m.Absfun.dp_name in
          let chal =
            Term.var
              (Printf.sprintf "%schal!%s!%s" trace.Oyster.Symbolic.prefix
                 m.Absfun.dp_name instr.Spec.iname)
              dp_mem.Term.addr_width
          in
          challenges := (m.Absfun.dp_name, chal) :: !challenges;
          let t = Absfun.write_time m in
          let dp_final =
            Oyster.Symbolic.read_mem_at trace ~state:t m.Absfun.dp_name chal
          in
          let initial = Term.read dp_mem chal in
          let spec_final =
            match mem_update name with
            | None -> initial
            | Some stores ->
                List.fold_left
                  (fun acc (a, d) ->
                    let a = compile_expr spec af trace a in
                    let d = compile_expr spec af trace d in
                    Term.ite (Term.eq a chal) d acc)
                  initial stores
          in
          posts := Term.eq dp_final spec_final :: !posts)
        wms)
    spec.Spec.mem_states;
  {
    instr_name = instr.Spec.iname;
    pre;
    assumes;
    post = Term.conj (List.rev !posts);
    challenges = List.rev !challenges;
  }

let compile spec af trace =
  List.map (compile_instr spec af trace) (Spec.instructions spec)
