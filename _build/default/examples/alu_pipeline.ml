(* The three-stage ALU machine of paper §2.2 (Fig. 2): decoder-style
   control over a pipelined datapath.

     dune exec examples/alu_pipeline.exe

   The abstraction function is the one shown in §3.2 — inputs read at time
   step 1, the register file read at 1 and written at 3, evaluated for
   3 cycles — plus the pipeline-empty assumptions. *)

let () =
  print_endline "== Datapath sketch (three pipeline stages, two holes) ==";
  print_string (Oyster.Printer.design_to_string (Designs.Alu.sketch ()));
  print_endline "";
  match Synth.Engine.synthesize (Designs.Alu.problem ()) with
  | Synth.Engine.Solved s ->
      Printf.printf "solved in %.3fs\n\n" s.Synth.Engine.stats.Synth.Engine.wall_seconds;
      print_endline "per-instruction control values:";
      List.iter
        (fun (i, holes) ->
          Printf.printf "  %-4s: alu_sel=%s reg_we=%s\n" i
            (Bitvec.to_string (List.assoc "alu_sel" holes))
            (Bitvec.to_string (List.assoc "reg_we" holes)))
        s.Synth.Engine.per_instr;
      print_endline "";
      print_endline "control union output (the filled holes):";
      List.iter
        (fun (h, e) ->
          Printf.printf "  %s <<= %s\n" h (Hdl.Pyrtl.expr_to_string e))
        s.Synth.Engine.bindings;
      print_endline "";
      print_endline "== Driving the pipeline: regs = [10; 20; 30; 40] ==";
      let st =
        Oyster.Interp.init
          ~mem_init:(fun _ _ _ addr ->
            Bitvec.of_int ~width:8 (10 * (Bitvec.to_int_exn addr + 1)))
          s.Synth.Engine.completed
      in
      (* issue ADD r3 <- r0 + r1 ; SUB r2 <- r3 - r0 ; XOR r1 <- r2 ^ r2 *)
      let ops =
        [ (1, 3, 0, 1);  (* regs[3] := 10 + 20 = 30 *)
          (2, 2, 3, 0);  (* regs[2] := regs[3] - 10; note regs[3] is still
                            in flight: the ALU machine has no forwarding,
                            so this reads the OLD regs[3] = 40 -> 30 *)
          (3, 1, 2, 2);  (* regs[1] := r2 ^ r2 = 0 *)
          (0, 0, 0, 0); (0, 0, 0, 0); (0, 0, 0, 0) ]
      in
      List.iter
        (fun (op, dest, src1, src2) ->
          ignore
            (Oyster.Interp.step
               ~inputs:(fun name _ ->
                 match name with
                 | "op" -> Bitvec.of_int ~width:2 op
                 | "dest" -> Bitvec.of_int ~width:2 dest
                 | "src1" -> Bitvec.of_int ~width:2 src1
                 | "src2" -> Bitvec.of_int ~width:2 src2
                 | _ -> assert false)
               st))
        ops;
      for r = 0 to 3 do
        Printf.printf "  regs[%d] = %s\n" r
          (Bitvec.to_string
             (Oyster.Interp.read_mem st "regfile" (Bitvec.of_int ~width:2 r)))
      done;
      print_endline "";
      print_endline
        "(regs[1..3] are as computed; regs[0] is the drain target of the op=0";
      print_endline
        " padding issues — op=0 decodes no specification instruction, so its";
      print_endline
        " control is unconstrained, exactly as in the paper's formulation.)"
  | _ -> prerr_endline "synthesis failed"
