(* FSM-style control synthesis for the AES-128 accelerator (paper §4.3).

     dune exec examples/aes_accelerator.exe

   The specification models the three round classes as ILA instructions;
   synthesis discovers the FSM state encodings and the transition logic,
   and the completed accelerator is checked against FIPS-197. *)

let () =
  print_endline "Synthesizing FSM control for the AES-128 accelerator...";
  match Synth.Engine.synthesize (Designs.Aes.problem ()) with
  | Synth.Engine.Solved s ->
      Printf.printf "solved in %.2fs\n\n" s.Synth.Engine.stats.Synth.Engine.wall_seconds;
      print_endline "discovered state encodings:";
      List.iter
        (fun (h, v) -> Printf.printf "  %s = %s\n" h (Bitvec.to_string v))
        s.Synth.Engine.shared;
      print_endline "";
      print_endline "state transition logic (the filled [state] hole):";
      (match List.assoc_opt "state" s.Synth.Engine.bindings with
      | Some e -> Printf.printf "  state <<= %s\n\n" (Hdl.Pyrtl.expr_to_string e)
      | None -> ());
      let key = Bitvec.of_string "128'x000102030405060708090a0b0c0d0e0f" in
      let pt = Bitvec.of_string "128'x00112233445566778899aabbccddeeff" in
      let ct = Designs.Aes.run_accelerator s.Synth.Engine.completed ~key ~plaintext:pt in
      Printf.printf "FIPS-197 vector:\n  key        = %s\n  plaintext  = %s\n"
        (Bitvec.to_string key) (Bitvec.to_string pt);
      Printf.printf "  ciphertext = %s\n" (Bitvec.to_string ct);
      Printf.printf "  expected   = 128'x69c4e0d86a7b0430d8cdb78070b4c55a  %s\n"
        (if Bitvec.equal ct (Designs.Aes_reference.encrypt key pt) then "OK"
         else "MISMATCH");
      (* a few random blocks against the byte-level reference *)
      let rng = Random.State.make [| 2024 |] in
      let ok = ref true in
      for _ = 1 to 20 do
        let blk () = Bitvec.of_bits (Array.init 128 (fun _ -> Random.State.bool rng)) in
        let k = blk () and p = blk () in
        if
          not
            (Bitvec.equal
               (Designs.Aes.run_accelerator s.Synth.Engine.completed ~key:k
                  ~plaintext:p)
               (Designs.Aes_reference.encrypt k p))
        then ok := false
      done;
      Printf.printf "20 random blocks vs reference: %s\n"
        (if !ok then "all match" else "MISMATCH")
  | _ -> prerr_endline "synthesis failed"
