(* The constant-time cryptography study of paper §5.2: synthesize the
   bespoke three-stage core (RV32I+Zbkb without conditional branches, plus
   CMOV), run a branch-free SHA-256 program for inputs of varying length,
   and confirm that the cycle count never changes.

     dune exec examples/constant_time_sha.exe *)

let () =
  print_endline "Synthesizing control for the constant-time crypto core...";
  match Synth.Engine.synthesize (Designs.Crypto_core.problem ()) with
  | Synth.Engine.Solved s ->
      Printf.printf "solved in %.2fs\n\n" s.Synth.Engine.stats.Synth.Engine.wall_seconds;
      let program = Sha_program.generate () in
      let halt_pc = 4 * (List.length program - 1) in
      Printf.printf "branch-free SHA-256 program: %d instructions\n\n"
        (List.length program);
      Printf.printf "%-34s %5s %9s %8s\n" "input" "bytes" "cycles" "digest";
      print_endline (String.make 60 '-');
      let baseline = ref None in
      List.iter
        (fun msg ->
          let r =
            Designs.Testbench.run_core s.Synth.Engine.completed ~program
              ~dmem_init:(Sha_program.pack_input msg) ~halt_pc ~max_cycles:20000
          in
          let cycles = Option.get r.Designs.Testbench.cycles_to_halt in
          let digest =
            Sha_program.read_digest (fun a ->
                Designs.Testbench.core_dmem r.Designs.Testbench.state a)
          in
          let hex =
            String.concat ""
              (Array.to_list (Array.map (Printf.sprintf "%08x") digest))
          in
          let constant =
            match !baseline with
            | None ->
                baseline := Some cycles;
                true
            | Some c -> c = cycles
          in
          Printf.printf "%-34s %5d %9d %8s\n"
            (if String.length msg <= 30 then Printf.sprintf "%S" msg
             else Printf.sprintf "%S..." (String.sub msg 0 24))
            (String.length msg) cycles
            (if hex = Sha256.digest_hex msg && constant then "OK"
             else "MISMATCH"))
        [ "owl!"; "sketch"; "datapath"; "control logic"; "correct by constr.";
          "drawing the rest of the owl!!"; String.make 32 'x' ];
      print_endline "";
      print_endline
        "every row runs in the same number of cycles: the bespoke ISA has no";
      print_endline "data-dependent control flow, so timing reveals nothing."
  | _ -> prerr_endline "synthesis failed"
