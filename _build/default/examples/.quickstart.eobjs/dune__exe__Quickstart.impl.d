examples/quickstart.ml: Bitvec Designs List Oyster Printf Synth
