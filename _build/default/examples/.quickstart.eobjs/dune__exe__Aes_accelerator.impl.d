examples/aes_accelerator.ml: Array Bitvec Designs Hdl List Printf Random Synth
