examples/riscv_decoder.mli:
