examples/quickstart.mli:
