examples/custom_instruction.mli:
