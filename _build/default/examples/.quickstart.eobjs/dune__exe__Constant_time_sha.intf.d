examples/constant_time_sha.mli:
