examples/gcd_accelerator.mli:
