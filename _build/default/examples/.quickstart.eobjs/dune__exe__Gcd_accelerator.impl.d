examples/gcd_accelerator.ml: Bitvec Designs List Printf String Synth
