examples/riscv_decoder.ml: Array Bitvec Designs Hdl Isa List Option Oyster Printf Synth Sys
