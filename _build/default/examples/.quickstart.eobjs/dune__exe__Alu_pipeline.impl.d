examples/alu_pipeline.ml: Bitvec Designs Hdl List Oyster Printf Synth
