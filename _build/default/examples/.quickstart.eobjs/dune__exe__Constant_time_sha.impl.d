examples/constant_time_sha.ml: Array Designs List Option Printf Sha256 Sha_program String Synth
