examples/custom_instruction.ml: Bitvec Designs Hdl Ila Isa List Option Printf Synth
