examples/alu_pipeline.mli:
