examples/aes_accelerator.mli:
