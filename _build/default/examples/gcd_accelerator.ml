(* A GCD accelerator beyond the paper's case studies, demonstrating the
   §4.3 closing claim that control logic synthesis carries to accelerators
   in other domains — here with *data-dependent* instruction decode
   (STEP_A fires when a > b, STEP_B when b > a, DONE when they meet).

     dune exec examples/gcd_accelerator.exe *)

let rec euclid a b = if b = 0 then a else euclid b (a mod b)

let () =
  print_endline "Synthesizing FSM control for the GCD accelerator...";
  match Synth.Engine.synthesize (Designs.Gcd.problem ()) with
  | Synth.Engine.Solved s ->
      Printf.printf "solved in %.2fs\n\n" s.Synth.Engine.stats.Synth.Engine.wall_seconds;
      print_endline "discovered state encodings:";
      List.iter
        (fun (h, v) -> Printf.printf "  %s = %s\n" h (Bitvec.to_string v))
        s.Synth.Engine.shared;
      (match List.assoc_opt "IDLE" s.Synth.Engine.per_instr with
      | Some holes ->
          Printf.printf "  IDLE parks the FSM at %s (outside every branch)\n"
            (Bitvec.to_string (List.assoc "st" holes))
      | None -> ());
      print_endline "";
      Printf.printf "%8s %8s | %8s %8s %8s\n" "a" "b" "gcd" "cycles" "check";
      print_endline (String.make 48 '-');
      List.iter
        (fun (a, b) ->
          match Designs.Gcd.run s.Synth.Engine.completed ~a ~b ~max_cycles:100000 with
          | Some (result, cycles) ->
              Printf.printf "%8d %8d | %8d %8d %8s\n" a b result cycles
                (if result = euclid a b then "OK" else "MISMATCH")
          | None -> Printf.printf "%8d %8d | did not complete\n" a b)
        [ (12, 18); (1071, 462); (17, 5); (1000, 1000); (2, 65535) ]
  | _ -> prerr_endline "synthesis failed"
