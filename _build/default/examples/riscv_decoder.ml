(* Generating the instruction-decoder control of the single-cycle RV32I
   core (paper §4.1.1) and rendering it PyRTL-style, reproducing the shape
   of the paper's Fig. 7 for the LW instruction.

     dune exec examples/riscv_decoder.exe [-- +zbkb|+zbkc]

   Afterwards the completed core executes a small program that sums an
   array in data memory. *)

let () =
  let variant =
    match Array.to_list Sys.argv with
    | _ :: "+zbkb" :: _ -> Isa.Rv32.RV32I_Zbkb
    | _ :: "+zbkc" :: _ -> Isa.Rv32.RV32I_Zbkc
    | _ -> Isa.Rv32.RV32I
  in
  Printf.printf "Synthesizing decoder control for %s (%d instructions)...\n%!"
    (Isa.Rv32.variant_name variant)
    (List.length (Isa.Rv32.instructions variant));
  match Synth.Engine.synthesize (Designs.Riscv_single.problem variant) with
  | Synth.Engine.Solved s ->
      Printf.printf "solved in %.2fs (%d CEGIS rounds)\n\n"
        s.Synth.Engine.stats.Synth.Engine.wall_seconds
        s.Synth.Engine.stats.Synth.Engine.iterations;
      (* Fig. 7: the generated control block for LW (and SW for contrast) *)
      let show iname =
        match List.assoc_opt iname s.Synth.Engine.per_instr with
        | Some holes ->
            Printf.printf "with op == %s:\n" iname;
            List.iter
              (fun (h, v) ->
                Printf.printf "    %s |= %s\n" h
                  (Hdl.Pyrtl.expr_to_string (Oyster.Ast.Const v)))
              holes;
            print_endline ""
        | None -> ()
      in
      show "LW";
      show "SW";
      show "JAL";
      (* run a small program: sum 5 array words into x5 *)
      let e m = Isa.Rv32.encode variant m in
      let program =
        [ e "addi" ~rd:1 ~rs1:0 ~imm:0 ();  (* i = 0 *)
          e "addi" ~rd:2 ~rs1:0 ~imm:5 ();  (* n = 5 *)
          e "addi" ~rd:5 ~rs1:0 ~imm:0 ();  (* sum = 0 *)
          (* loop: *)
          e "slli" ~rd:3 ~rs1:1 ~imm:2 ();
          e "lw" ~rd:4 ~rs1:3 ~imm:64 ();  (* array at byte 64 *)
          e "add" ~rd:5 ~rs1:5 ~rs2:4 ();
          e "addi" ~rd:1 ~rs1:1 ~imm:1 ();
          e "bne" ~rs1:1 ~rs2:2 ~imm:(-16) ();
          e "sw" ~rs1:0 ~rs2:5 ~imm:128 ();
          e "jal" ~rd:0 ~imm:0 () ]
      in
      let dmem_init = List.init 5 (fun i -> (16 + i, Bitvec.of_int ~width:32 (i + 1))) in
      let r =
        Designs.Testbench.run_core s.Synth.Engine.completed ~program ~dmem_init
          ~halt_pc:(4 * (List.length program - 1))
          ~max_cycles:200
      in
      Printf.printf "array-sum program: sum = %s (expected 32'x0000000f), %s cycles\n"
        (Bitvec.to_string (Designs.Testbench.core_reg r.Designs.Testbench.state 5))
        (match r.Designs.Testbench.cycles_to_halt with
        | Some c -> string_of_int c
        | None -> "did not halt")
  | Synth.Engine.Timeout _ -> prerr_endline "timeout"
  | Synth.Engine.Unrealizable { instr; _ } ->
      Printf.eprintf "unrealizable: %s\n" (Option.value instr ~default:"?")
  | Synth.Engine.Union_failed { diagnostic; _ } -> prerr_endline diagnostic
  | Synth.Engine.Not_independent _ -> prerr_endline "not independent" 
