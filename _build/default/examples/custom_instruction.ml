(* Agile architecture iteration (the workflow of the paper's introduction):
   extend the ISA with a custom instruction AND the datapath with a new
   functional unit, then simply re-run control logic synthesis — no control
   logic is written or edited by hand at any point.

     dune exec examples/custom_instruction.exe

   The custom instruction: MIN rd, rs1, rs2 (signed minimum), encoded in
   the RISC-V custom-0 opcode space (0x0b, funct3 0, funct7 0).  The
   datapath gains a min unit as ALU operation 10 (free in the RV32I
   variant).  The specification gains one `new_instr`.  Everything else —
   all fourteen control signals for all 38 instructions — is regenerated. *)

let custom_opcode = 0x0b

let min_word ~rd ~rs1 ~rs2 =
  Bitvec.of_int ~width:32
    ((rs2 lsl 20) lor (rs1 lsl 15) lor (rd lsl 7) lor custom_opcode)

let () =
  (* 1. extend the specification *)
  let spec = Isa.Rv_spec.spec Isa.Rv32.RV32I in
  (let open Ila.Expr in
   let pc = State ("pc", 32) in
   let instr = load ~port:"fetch" "mem" (extract ~high:31 ~low:2 pc) in
   let rd = extract ~high:11 ~low:7 instr in
   let rs1v = load "GPR" (extract ~high:19 ~low:15 instr) in
   let rs2v = load "GPR" (extract ~high:24 ~low:20 instr) in
   let i = Ila.Spec.new_instr spec "MIN" in
   Ila.Spec.set_decode i
     ((extract ~high:6 ~low:0 instr == of_int ~width:7 custom_opcode)
     && (extract ~high:14 ~low:12 instr == of_int ~width:3 0)
     && (extract ~high:31 ~low:25 instr == of_int ~width:7 0));
   Ila.Spec.set_mem_update i "GPR"
     [ (rd,
        ite (rd == of_int ~width:5 0) (load "GPR" rd)
          (ite (rs1v <+ rs2v) rs1v rs2v)) ];
   Ila.Spec.set_update i "pc" (pc + of_int ~width:32 4));
  (* 2. extend the datapath with a min unit (ALU op 10) *)
  let design =
    Designs.Riscv_single.sketch Isa.Rv32.RV32I
      ~extra_alu_ops:
        [ (10, fun a b -> Hdl.Builder.mux Hdl.Builder.(a <+ b) a b) ]
  in
  (* 3. re-run synthesis: 37 base instructions + MIN *)
  let problem =
    { Synth.Engine.design; spec; af = Designs.Riscv_single.abstraction () }
  in
  Printf.printf "re-synthesizing control for RV32I + MIN (%d instructions)...\n%!"
    (List.length (Ila.Spec.instructions spec));
  match Synth.Engine.synthesize problem with
  | Synth.Engine.Solved s ->
      Printf.printf "solved in %.2fs\n\n" s.Synth.Engine.stats.Synth.Engine.wall_seconds;
      print_endline "generated control for the custom instruction:";
      (match List.assoc_opt "MIN" s.Synth.Engine.per_instr with
      | Some holes ->
          List.iter
            (fun (h, v) -> Printf.printf "    %s |= %s\n" h (Bitvec.to_string v))
            holes
      | None -> ());
      print_endline "";
      (* 4. run a program mixing base and custom instructions *)
      let e m = Isa.Rv32.encode Isa.Rv32.RV32I m in
      let program =
        [ e "addi" ~rd:1 ~rs1:0 ~imm:(-5) ();
          e "addi" ~rd:2 ~rs1:0 ~imm:17 ();
          min_word ~rd:3 ~rs1:1 ~rs2:2;  (* x3 = min(-5, 17) = -5 *)
          min_word ~rd:4 ~rs1:2 ~rs2:0;  (* x4 = min(17, 0) = 0 *)
          e "sub" ~rd:5 ~rs1:2 ~rs2:3 ();  (* x5 = 17 - (-5) = 22 *)
          e "jal" ~rd:0 ~imm:0 () ]
      in
      let r =
        Designs.Testbench.run_core s.Synth.Engine.completed ~program ~dmem_init:[]
          ~halt_pc:(4 * (List.length program - 1))
          ~max_cycles:100
      in
      let reg i = Designs.Testbench.core_reg r.Designs.Testbench.state i in
      Printf.printf "x3 = min(-5, 17)  = %s (expect 32'xfffffffb)\n"
        (Bitvec.to_string (reg 3));
      Printf.printf "x4 = min(17, 0)   = %s (expect 32'x00000000)\n"
        (Bitvec.to_string (reg 4));
      Printf.printf "x5 = 17 - x3      = %s (expect 32'x00000016)\n"
        (Bitvec.to_string (reg 5));
      print_endline "";
      print_endline
        "the designer wrote: one ILA instruction, one ALU mux arm.  the tool";
      print_endline "wrote: every control signal, for every instruction, again."
  | Synth.Engine.Timeout _ -> prerr_endline "timeout"
  | Synth.Engine.Unrealizable { instr; _ } ->
      Printf.eprintf "unrealizable: %s\n" (Option.value instr ~default:"?")
  | Synth.Engine.Union_failed { diagnostic; _ } -> prerr_endline diagnostic
  | Synth.Engine.Not_independent _ -> prerr_endline "not independent" 
