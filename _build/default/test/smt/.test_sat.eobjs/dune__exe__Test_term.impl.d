test/smt/test_term.ml: Alcotest Array Bitvec Format Gen_terms List Printf QCheck QCheck_alcotest String Term
