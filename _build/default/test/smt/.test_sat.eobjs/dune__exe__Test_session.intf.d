test/smt/test_session.mli:
