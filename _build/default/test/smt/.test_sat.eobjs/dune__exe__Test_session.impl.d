test/smt/test_session.ml: Alcotest Bitvec Domain Gen_terms List QCheck QCheck_alcotest Solver String Term
