test/smt/test_solver.ml: Alcotest Array Bitvec Domain Gen_terms Hashtbl List QCheck QCheck_alcotest Solver Term
