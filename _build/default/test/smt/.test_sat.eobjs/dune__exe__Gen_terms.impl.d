test/smt/gen_terms.ml: Bitvec Format List Printf QCheck Term
