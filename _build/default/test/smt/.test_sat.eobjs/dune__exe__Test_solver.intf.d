test/smt/test_solver.mli:
