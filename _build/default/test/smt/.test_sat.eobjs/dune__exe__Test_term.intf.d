test/smt/test_term.mli:
