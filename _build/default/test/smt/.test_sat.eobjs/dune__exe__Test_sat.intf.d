test/smt/test_sat.mli:
