test/smt/test_sat.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Sat Stdlib String
