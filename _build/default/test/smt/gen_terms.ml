(* Shared random-term generator for the smt test suites.

   Each generated node pairs the Term (built through the simplifying smart
   constructors) with an independent reference evaluator built directly on
   Bitvec, so tests can detect unsound simplifications. *)

type gen_term = {
  term : Term.t;
  reval : (string -> Bitvec.t) -> Bitvec.t;  (* reference evaluation *)
  twidth : int;
}

(* Variable pool: names encode the width so the global registry never sees a
   clash. *)
(* Terms are rooted at widths in [root_widths], but derived widths (extract
   sources, comparison operands, ...) range over 1..12, so the registered
   pool covers all of them. *)
let root_widths = [ 1; 2; 3; 5; 8 ]
let var_widths = List.init 12 (fun i -> i + 1)
let vars_per_width = 2

let var_name w i = Printf.sprintf "gv%d_%d" w i

let all_vars =
  List.concat_map
    (fun w -> List.init vars_per_width (fun i -> (var_name w i, w)))
    var_widths

let gen_var w =
  QCheck.Gen.(
    0 -- (vars_per_width - 1) >>= fun i ->
    let name = var_name w i in
    return { term = Term.var name w; reval = (fun env -> env name); twidth = w })

let gen_const w =
  QCheck.Gen.(
    array_size (return w) bool >>= fun bits ->
    let v = Bitvec.of_bits bits in
    return { term = Term.const v; reval = (fun _ -> v); twidth = w })

let binops =
  [ (Term.band, Bitvec.logand);
    (Term.bor, Bitvec.logor);
    (Term.bxor, Bitvec.logxor);
    (Term.add, Bitvec.add);
    (Term.sub, Bitvec.sub);
    (Term.mul, Bitvec.mul);
    (Term.udiv, Bitvec.udiv);
    (Term.urem, Bitvec.urem);
    (Term.sdiv, Bitvec.sdiv);
    (Term.srem, Bitvec.srem);
    (Term.clmul, Bitvec.clmul);
    (Term.clmulh, Bitvec.clmulh);
    (Term.shl, Bitvec.shl);
    (Term.lshr, Bitvec.lshr);
    (Term.ashr, Bitvec.ashr)
  ]

let cmps =
  [ (Term.eq, fun a b -> Bitvec.equal a b);
    (Term.ult, Bitvec.ult);
    (Term.ule, Bitvec.ule);
    (Term.slt, Bitvec.slt);
    (Term.sle, Bitvec.sle)
  ]

let bool_of b = if b then Bitvec.one 1 else Bitvec.zero 1

let rec gen_sized w size =
  let open QCheck.Gen in
  if size <= 0 then oneof [ gen_var w; gen_const w ]
  else
    let sub = gen_sized w (size / 2) in
    let candidates =
      [ (* unary not *)
        ( 2,
          sub >>= fun a ->
          return
            {
              term = Term.bnot a.term;
              reval = (fun env -> Bitvec.lognot (a.reval env));
              twidth = w;
            } );
        (* binop *)
        ( 6,
          oneofl binops >>= fun (tf, rf) ->
          pair sub sub >>= fun (a, b) ->
          return
            {
              term = tf a.term b.term;
              reval = (fun env -> rf (a.reval env) (b.reval env));
              twidth = w;
            } );
        (* ite *)
        ( 3,
          gen_sized 1 (size / 2) >>= fun c ->
          pair sub sub >>= fun (a, b) ->
          return
            {
              term = Term.ite c.term a.term b.term;
              reval =
                (fun env ->
                  if Bitvec.is_ones (c.reval env) then a.reval env else b.reval env);
              twidth = w;
            } );
        (* extract from a wider term *)
        ( 2,
          0 -- 4 >>= fun extra ->
          let wider = min 12 (w + extra) in
          let wider = max wider w in
          gen_sized wider (size / 2) >>= fun a ->
          0 -- (wider - w) >>= fun low ->
          let high = low + w - 1 in
          return
            {
              term = Term.extract ~high ~low a.term;
              reval = (fun env -> Bitvec.extract ~high ~low (a.reval env));
              twidth = w;
            } );
        (* concat of split *)
        ( 2,
          if w < 2 then gen_var w
          else
            1 -- (w - 1) >>= fun wl ->
            pair (gen_sized (w - wl) (size / 2)) (gen_sized wl (size / 2))
            >>= fun (hi, lo) ->
            return
              {
                term = Term.concat hi.term lo.term;
                reval = (fun env -> Bitvec.concat (hi.reval env) (lo.reval env));
                twidth = w;
              } );
        (* zext / sext *)
        ( 1,
          if w < 2 then gen_var w
          else
            1 -- (w - 1) >>= fun wi ->
            gen_sized wi (size / 2) >>= fun a ->
            bool >>= fun signed ->
            return
              {
                term = (if signed then Term.sext a.term w else Term.zext a.term w);
                reval =
                  (fun env ->
                    if signed then Bitvec.sext (a.reval env) w
                    else Bitvec.zext (a.reval env) w);
                twidth = w;
              } );
        (* comparison (width 1 result), lifted back via ite when w > 1 *)
        ( 2,
          1 -- 8 >>= fun wc ->
          oneofl cmps >>= fun (tf, rf) ->
          pair (gen_sized wc (size / 2)) (gen_sized wc (size / 2))
          >>= fun (a, b) ->
          let cmp_term = tf a.term b.term in
          let cmp_reval env = bool_of (rf (a.reval env) (b.reval env)) in
          if w = 1 then return { term = cmp_term; reval = cmp_reval; twidth = 1 }
          else
            return
              {
                term = Term.ite cmp_term (Term.ones w) (Term.zero w);
                reval =
                  (fun env ->
                    if Bitvec.is_ones (cmp_reval env) then Bitvec.ones w
                    else Bitvec.zero w);
                twidth = w;
              } )
      ]
    in
    frequency candidates

let gen_any_width =
  QCheck.Gen.(
    oneofl root_widths >>= fun w ->
    0 -- 12 >>= fun size -> gen_sized w size)

let gen_bool_term = QCheck.Gen.(0 -- 14 >>= fun size -> gen_sized 1 size)

let gen_env =
  (* random assignment to the whole variable pool *)
  QCheck.Gen.(
    let gen_binding (name, w) =
      array_size (return w) bool >>= fun bits -> return (name, Bitvec.of_bits bits)
    in
    flatten_l (List.map gen_binding all_vars) >>= fun l ->
    return (fun name -> List.assoc name l))

let print_gen_term g = Format.asprintf "%a" Term.pp g.term

let arb_term_env =
  QCheck.make
    QCheck.Gen.(pair gen_any_width gen_env)
    ~print:(fun (g, _) -> print_gen_term g)

let arb_bool_term = QCheck.make gen_bool_term ~print:print_gen_term
