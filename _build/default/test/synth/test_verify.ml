(* Tests for Engine.verify — bounded refinement checking of completed
   designs — including mutation testing: corrupting the hand-written
   control must make verification fail on exactly the affected
   instructions.  This establishes that the verifier has teeth. *)

let verify_all problem =
  List.for_all
    (fun (_, v) -> v = Synth.Engine.Verified)
    (Synth.Engine.verify problem)

let test_references_verify () =
  List.iter
    (fun (name, problem) ->
      Alcotest.(check bool) (name ^ " verifies") true (verify_all problem))
    [ ("alu",
       { (Designs.Alu.problem ()) with
         Synth.Engine.design = Designs.Alu.reference_design () });
      ("accumulator",
       { (Designs.Accumulator.problem ()) with
         Synth.Engine.design = Designs.Accumulator.reference_design () });
      ("gcd",
       { (Designs.Gcd.problem ()) with
         Synth.Engine.design = Designs.Gcd.reference_design () });
      ("aes",
       { (Designs.Aes.problem ()) with
         Synth.Engine.design = Designs.Aes.reference_design () }) ]

let test_m_reference_verifies () =
  (* The M-extension reference is the stress test for field refinement:
     without substituting the opcode/funct fields pinned by the
     precondition into the fetched instruction word, the decode keeps all
     eight 64-bit multiplier/divider cones live under one mux and the
     query does not finish in any reasonable time.  With refinement the
     selection tree folds before bit-blasting and all 45 instructions
     verify in well under a minute. *)
  let problem =
    { (Designs.Riscv_single.problem Isa.Rv32.RV32I_M) with
      Synth.Engine.design = Designs.Riscv_single.reference_design Isa.Rv32.RV32I_M
    }
  in
  let results = Synth.Engine.verify problem in
  Alcotest.(check int) "45 instructions" 45 (List.length results);
  Alcotest.(check bool) "all verified" true
    (List.for_all (fun (_, v) -> v = Synth.Engine.Verified) results)

let test_synthesized_verifies () =
  (* what the engine produces must pass the independent verification path *)
  match Synth.Engine.synthesize (Designs.Alu.problem ()) with
  | Synth.Engine.Solved s ->
      Alcotest.(check bool) "synthesized alu verifies" true
        (verify_all
           { (Designs.Alu.problem ()) with
             Synth.Engine.design = s.Synth.Engine.completed })
  | _ -> Alcotest.fail "synthesis failed"

(* {1 Mutation testing} *)

let verdicts problem =
  List.map
    (fun (i, v) -> (i, v = Synth.Engine.Verified))
    (Synth.Engine.verify problem)

let test_mutated_alu_control () =
  (* flip SUB's ALU select to XOR: SUB must fail, ADD and XOR must pass *)
  let bad_bindings =
    List.map
      (fun (h, e) ->
        if h = "alu_sel" then
          ( h,
            (* sel := op == 2 ? 3 : op  — wrong for SUB only *)
            Oyster.Ast.Ite
              ( Oyster.Ast.Binop
                  (Oyster.Ast.Eq, Oyster.Ast.Var "op",
                   Oyster.Ast.Const (Bitvec.of_int ~width:2 2)),
                Oyster.Ast.Const (Bitvec.of_int ~width:2 3),
                Oyster.Ast.Var "op" ) )
        else (h, e))
      (Designs.Alu.reference_bindings ())
  in
  let design = Oyster.Ast.fill_holes (Designs.Alu.sketch ()) bad_bindings in
  let problem = { (Designs.Alu.problem ()) with Synth.Engine.design = design } in
  Alcotest.(check (list (pair string bool)))
    "only SUB violated"
    [ ("ADD", true); ("SUB", false); ("XOR", true) ]
    (verdicts problem)

let test_mutated_write_enable () =
  (* force the ALU machine's write enable off: every instruction fails *)
  let bad_bindings =
    List.map
      (fun (h, e) ->
        if h = "reg_we" then (h, Oyster.Ast.Const (Bitvec.zero 1)) else (h, e))
      (Designs.Alu.reference_bindings ())
  in
  let design = Oyster.Ast.fill_holes (Designs.Alu.sketch ()) bad_bindings in
  let problem = { (Designs.Alu.problem ()) with Synth.Engine.design = design } in
  Alcotest.(check (list (pair string bool)))
    "all violated"
    [ ("ADD", false); ("SUB", false); ("XOR", false) ]
    (verdicts problem)

let test_mutated_gcd_encoding () =
  (* swap the sub-a / sub-b encodings without swapping the branches *)
  let bad_bindings =
    List.map
      (fun (h, e) ->
        match h with
        | "enc_suba" -> (h, Oyster.Ast.Const (Bitvec.of_int ~width:3 2))
        | "enc_subb" -> (h, Oyster.Ast.Const (Bitvec.of_int ~width:3 1))
        | _ -> (h, e))
      (Designs.Gcd.reference_bindings ())
  in
  let design = Oyster.Ast.fill_holes (Designs.Gcd.sketch ()) bad_bindings in
  let problem = { (Designs.Gcd.problem ()) with Synth.Engine.design = design } in
  let bad =
    List.filter_map (fun (i, ok) -> if ok then None else Some i) (verdicts problem)
  in
  Alcotest.(check (list string)) "both steps violated" [ "STEP_A"; "STEP_B" ] bad

let test_holes_rejected () =
  match Synth.Engine.verify (Designs.Alu.problem ()) with
  | exception Synth.Engine.Engine_error _ -> ()
  | _ -> Alcotest.fail "expected rejection of a design with holes"

let test_violation_model () =
  (* the violation verdict carries a model naming a concrete counterexample *)
  let bad_bindings =
    List.map
      (fun (h, e) ->
        if h = "reg_we" then (h, Oyster.Ast.Const (Bitvec.zero 1)) else (h, e))
      (Designs.Alu.reference_bindings ())
  in
  let design = Oyster.Ast.fill_holes (Designs.Alu.sketch ()) bad_bindings in
  let problem = { (Designs.Alu.problem ()) with Synth.Engine.design = design } in
  match List.assoc "ADD" (Synth.Engine.verify problem) with
  | Synth.Engine.Violated m ->
      (* the counterexample includes memory read values for the regfile *)
      Alcotest.(check bool) "model has reads" true (m.Solver.read_values <> [])
  | _ -> Alcotest.fail "expected a violation with a model"

let () =
  Alcotest.run "verify"
    [ ("verify",
       [ Alcotest.test_case "references verify" `Quick test_references_verify;
         Alcotest.test_case "M reference verifies" `Quick test_m_reference_verifies;
         Alcotest.test_case "synthesized verifies" `Quick test_synthesized_verifies;
         Alcotest.test_case "holes rejected" `Quick test_holes_rejected ]);
      ("mutation",
       [ Alcotest.test_case "wrong ALU select" `Quick test_mutated_alu_control;
         Alcotest.test_case "write enable stuck" `Quick test_mutated_write_enable;
         Alcotest.test_case "swapped FSM encodings" `Quick test_mutated_gcd_encoding;
         Alcotest.test_case "violation model" `Quick test_violation_model ]) ]
