test/synth/test_refine.ml: Alcotest Bitvec List QCheck QCheck_alcotest Solver Synth Term
