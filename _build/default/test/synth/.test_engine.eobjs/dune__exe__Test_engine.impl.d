test/synth/test_engine.ml: Alcotest Array Bitvec Designs Hdl Ila List Option Oyster Printf Random Synth
