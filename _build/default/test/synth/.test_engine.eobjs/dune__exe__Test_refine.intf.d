test/synth/test_refine.mli:
