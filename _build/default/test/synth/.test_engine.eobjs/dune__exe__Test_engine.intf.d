test/synth/test_engine.mli:
