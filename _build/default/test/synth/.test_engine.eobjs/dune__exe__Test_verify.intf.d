test/synth/test_verify.mli:
