test/synth/test_verify.ml: Alcotest Bitvec Designs Isa List Oyster Solver Synth
