(* Unit and property tests for Bitvec.

   The property tests cross-check every operation at widths <= 30 against a
   reference model in plain OCaml ints (values mod 2^w), then check
   structural laws (associativity, roundtrips, ...) at large widths too. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

(* {1 Reference model for small widths} *)

let mask w = (1 lsl w) - 1

let signed w n = if n land (1 lsl (w - 1)) <> 0 then n - (1 lsl w) else n

let ref_clmul w a b =
  let acc = ref 0 in
  for i = 0 to w - 1 do
    if b land (1 lsl i) <> 0 then acc := !acc lxor (a lsl i)
  done;
  !acc

(* {1 Generators} *)

let gen_small_pair =
  (* width w in 1..30 and two values in [0, 2^w) *)
  QCheck.Gen.(
    1 -- 30 >>= fun w ->
    pair (0 -- mask w) (0 -- mask w) >>= fun (a, b) -> return (w, a, b))

let arb_small_pair =
  QCheck.make gen_small_pair ~print:(fun (w, a, b) ->
      Printf.sprintf "w=%d a=%d b=%d" w a b)

let gen_wide =
  (* A bitvector of width 1..130 built from random bits. *)
  QCheck.Gen.(
    1 -- 130 >>= fun w ->
    array_size (return w) bool >>= fun bits -> return (Bitvec.of_bits bits))

let arb_wide = QCheck.make gen_wide ~print:Bitvec.to_string

let gen_wide_pair =
  QCheck.Gen.(
    1 -- 130 >>= fun w ->
    let bits = array_size (return w) bool in
    pair bits bits >>= fun (x, y) ->
    return (Bitvec.of_bits x, Bitvec.of_bits y))

let arb_wide_pair =
  QCheck.make gen_wide_pair ~print:(fun (a, b) ->
      Printf.sprintf "%s %s" (Bitvec.to_string a) (Bitvec.to_string b))

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb f)

(* {1 Unit tests} *)

let test_construction () =
  Alcotest.(check (option int)) "of_int 8 255" (Some 255)
    (Bitvec.to_int (Bitvec.of_int ~width:8 255));
  Alcotest.(check (option int)) "of_int truncates" (Some 1)
    (Bitvec.to_int (Bitvec.of_int ~width:8 257));
  Alcotest.check bv "of_int negative = ones" (Bitvec.ones 8)
    (Bitvec.of_int ~width:8 (-1));
  Alcotest.(check int) "width" 96 (Bitvec.width (Bitvec.zero 96));
  Alcotest.(check (option int)) "zero" (Some 0) (Bitvec.to_int (Bitvec.zero 64));
  Alcotest.check bv "of_int64" (Bitvec.of_int ~width:64 7)
    (Bitvec.of_int64 ~width:64 7L);
  Alcotest.(check bool) "to_int overflow" true
    (Bitvec.to_int (Bitvec.ones 128) = None)

let test_of_string () =
  let cases =
    [ ("8'xff", Bitvec.ones 8);
      ("8'hFF", Bitvec.ones 8);
      ("4'b1010", Bitvec.of_int ~width:4 10);
      ("12'd255", Bitvec.of_int ~width:12 255);
      ("8'255", Bitvec.of_int ~width:8 255);
      ("32'xdead_beef", Bitvec.of_int ~width:32 0xdeadbeef);
      ("1'b1", Bitvec.one 1) ]
  in
  List.iter (fun (s, v) -> Alcotest.check bv s v (Bitvec.of_string s)) cases;
  let bad = [ "xff"; "8'"; "8'q12"; "0'x0"; "2'd4"; "4'b2"; "8'xgg"; "" ] in
  List.iter
    (fun s ->
      Alcotest.check_raises s
        (Invalid_argument (Printf.sprintf "Bitvec.of_string: %S" s))
        (fun () ->
          match s with
          | "0'x0" ->
              (* width error surfaces as the width message *)
              (try ignore (Bitvec.of_string s) with Invalid_argument _ ->
                raise (Invalid_argument (Printf.sprintf "Bitvec.of_string: %S" s)))
          | _ -> ignore (Bitvec.of_string s)))
    bad

let test_to_string () =
  Alcotest.(check string) "hex" "8'x1f" (Bitvec.to_string (Bitvec.of_int ~width:8 0x1f));
  Alcotest.(check string) "bin" "4'b1010"
    (Bitvec.to_binary_string (Bitvec.of_int ~width:4 10));
  Alcotest.(check string) "odd width hex" "5'x1f" (Bitvec.to_string (Bitvec.ones 5))

let test_structure () =
  let v = Bitvec.of_string "16'xabcd" in
  Alcotest.check bv "extract low byte" (Bitvec.of_string "8'xcd")
    (Bitvec.extract ~high:7 ~low:0 v);
  Alcotest.check bv "extract high nibble" (Bitvec.of_string "4'xa")
    (Bitvec.extract ~high:15 ~low:12 v);
  Alcotest.check bv "concat" v
    (Bitvec.concat (Bitvec.of_string "8'xab") (Bitvec.of_string "8'xcd"));
  Alcotest.check bv "zext" (Bitvec.of_string "12'x0cd")
    (Bitvec.zext (Bitvec.of_string "8'xcd") 12);
  Alcotest.check bv "sext" (Bitvec.of_string "12'xfcd")
    (Bitvec.sext (Bitvec.of_string "8'xcd") 12);
  Alcotest.check bv "repeat" (Bitvec.of_string "6'b101101")
    (Bitvec.repeat (Bitvec.of_string "3'b101") 2)

let test_signed () =
  Alcotest.(check (option int)) "to_signed -1" (Some (-1))
    (Bitvec.to_signed_int (Bitvec.ones 8));
  Alcotest.(check (option int)) "to_signed 127" (Some 127)
    (Bitvec.to_signed_int (Bitvec.of_int ~width:8 127));
  Alcotest.(check bool) "slt -1 < 0" true
    (Bitvec.slt (Bitvec.ones 8) (Bitvec.zero 8));
  Alcotest.(check bool) "ult 0 < -1" true
    (Bitvec.ult (Bitvec.zero 8) (Bitvec.ones 8));
  Alcotest.(check (option int)) "to_signed wide -1" (Some (-1))
    (Bitvec.to_signed_int (Bitvec.ones 128));
  Alcotest.(check bool) "to_signed wide big" true
    (Bitvec.to_signed_int (Bitvec.concat (Bitvec.one 64) (Bitvec.zero 64)) = None)

let test_shifts () =
  let v = Bitvec.of_string "8'b00010110" in
  Alcotest.check bv "shl 2" (Bitvec.of_string "8'b01011000") (Bitvec.shl_int v 2);
  Alcotest.check bv "lshr 2" (Bitvec.of_string "8'b00000101") (Bitvec.lshr_int v 2);
  Alcotest.check bv "shl over" (Bitvec.zero 8) (Bitvec.shl_int v 8);
  Alcotest.check bv "ashr neg" (Bitvec.of_string "8'b11110001")
    (Bitvec.ashr_int (Bitvec.of_string "8'b10001111") 3);
  Alcotest.check bv "ashr over neg" (Bitvec.ones 8)
    (Bitvec.ashr_int (Bitvec.of_string "8'x80") 100);
  Alcotest.check bv "rol" (Bitvec.of_string "8'b01101001")
    (Bitvec.rol_int (Bitvec.of_string "8'b10110100") 1);
  Alcotest.check bv "ror = rol inverse" v (Bitvec.ror_int (Bitvec.rol_int v 3) 3);
  (* bitvector-amount forms with huge amounts *)
  Alcotest.check bv "shl by huge bv" (Bitvec.zero 8)
    (Bitvec.shl v (Bitvec.ones 100));
  Alcotest.check bv "rol by w" v (Bitvec.rol v (Bitvec.of_int ~width:8 8))

let test_reductions () =
  Alcotest.(check int) "popcount" 4 (Bitvec.popcount (Bitvec.of_string "8'b01011101" |> Bitvec.logand (Bitvec.of_string "8'b01101101")));
  Alcotest.(check bool) "reduce_or zero" false (Bitvec.reduce_or (Bitvec.zero 77));
  Alcotest.(check bool) "reduce_and ones" true (Bitvec.reduce_and (Bitvec.ones 77));
  Alcotest.(check bool) "reduce_xor" true (Bitvec.reduce_xor (Bitvec.of_string "8'b01110000"))

(* {1 Properties: small-width cross-check against int model} *)

let small_props =
  let check2 name f g =
    prop name arb_small_pair (fun (w, a, b) ->
        let va = Bitvec.of_int ~width:w a and vb = Bitvec.of_int ~width:w b in
        Bitvec.to_int_exn (f va vb) = g w a b land mask w)
  in
  [ check2 "add matches int" Bitvec.add (fun _ a b -> a + b);
    check2 "sub matches int" Bitvec.sub (fun _ a b -> a - b);
    check2 "mul matches int" Bitvec.mul (fun _ a b -> a * b);
    check2 "and matches int" Bitvec.logand (fun _ a b -> a land b);
    check2 "or matches int" Bitvec.logor (fun _ a b -> a lor b);
    check2 "xor matches int" Bitvec.logxor (fun _ a b -> a lxor b);
    check2 "clmul matches int" Bitvec.clmul (fun w a b -> ref_clmul w a b);
    check2 "udiv matches int" Bitvec.udiv (fun w a b ->
        if b = 0 then mask w else a / b);
    check2 "urem matches int" Bitvec.urem (fun _ a b -> if b = 0 then a else a mod b);
    check2 "sdiv matches int" Bitvec.sdiv (fun w a b ->
        let sa = signed w a and sb = signed w b in
        if sb = 0 then mask w
        else
          (* OCaml (/) truncates toward zero, like the convention *)
          sa / sb);
    check2 "srem matches int" Bitvec.srem (fun w a b ->
        let sa = signed w a and sb = signed w b in
        if sb = 0 then a else Stdlib.(sa - (sa / sb * sb)) |> fun r -> r);
    check2 "clmulh matches int" Bitvec.clmulh (fun w a b -> ref_clmul w a b lsr w);
    prop "neg matches int" arb_small_pair (fun (w, a, _) ->
        Bitvec.to_int_exn (Bitvec.neg (Bitvec.of_int ~width:w a)) = -a land mask w);
    prop "lognot matches int" arb_small_pair (fun (w, a, _) ->
        Bitvec.to_int_exn (Bitvec.lognot (Bitvec.of_int ~width:w a)) = lnot a land mask w);
    prop "ult matches int" arb_small_pair (fun (w, a, b) ->
        Bitvec.ult (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b) = (a < b));
    prop "slt matches int" arb_small_pair (fun (w, a, b) ->
        Bitvec.slt (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b)
        = (signed w a < signed w b));
    prop "sle matches int" arb_small_pair (fun (w, a, b) ->
        Bitvec.sle (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b)
        = (signed w a <= signed w b));
    prop "shl matches int" arb_small_pair (fun (w, a, b) ->
        let k = b mod (w + 2) in
        Bitvec.to_int_exn (Bitvec.shl_int (Bitvec.of_int ~width:w a) k)
        = (if k >= w then 0 else (a lsl k) land mask w));
    prop "lshr matches int" arb_small_pair (fun (w, a, b) ->
        let k = b mod (w + 2) in
        Bitvec.to_int_exn (Bitvec.lshr_int (Bitvec.of_int ~width:w a) k)
        = (if k >= w then 0 else a lsr k));
    prop "ashr matches int" arb_small_pair (fun (w, a, b) ->
        let k = b mod (w + 2) in
        let expect = (signed w a asr min k 62) land mask w in
        Bitvec.to_int_exn (Bitvec.ashr_int (Bitvec.of_int ~width:w a) k) = expect);
    prop "rol matches int" arb_small_pair (fun (w, a, b) ->
        let k = b mod w in
        Bitvec.to_int_exn (Bitvec.rol_int (Bitvec.of_int ~width:w a) k)
        = ((a lsl k) lor (a lsr (w - k))) land mask w);
    prop "to_signed roundtrip" arb_small_pair (fun (w, a, _) ->
        Bitvec.to_signed_int (Bitvec.of_int ~width:w (signed w a)) = Some (signed w a))
  ]

(* {1 Properties: structural laws at large widths} *)

let wide_props =
  [ prop "add commutative" arb_wide_pair (fun (a, b) ->
        Bitvec.equal (Bitvec.add a b) (Bitvec.add b a));
    prop "mul commutative" arb_wide_pair (fun (a, b) ->
        Bitvec.equal (Bitvec.mul a b) (Bitvec.mul b a));
    prop "clmul commutative" arb_wide_pair (fun (a, b) ->
        Bitvec.equal (Bitvec.clmul a b) (Bitvec.clmul b a));
    prop "add/sub inverse" arb_wide_pair (fun (a, b) ->
        Bitvec.equal (Bitvec.sub (Bitvec.add a b) b) a);
    prop "neg is 0 - x" arb_wide (fun a ->
        Bitvec.equal (Bitvec.neg a) (Bitvec.sub (Bitvec.zero (Bitvec.width a)) a));
    prop "x + not x = ones" arb_wide (fun a ->
        Bitvec.equal (Bitvec.add a (Bitvec.lognot a)) (Bitvec.ones (Bitvec.width a)));
    prop "xor self = 0" arb_wide (fun a ->
        Bitvec.is_zero (Bitvec.logxor a a));
    prop "de morgan" arb_wide_pair (fun (a, b) ->
        Bitvec.equal
          (Bitvec.lognot (Bitvec.logand a b))
          (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)));
    prop "bits roundtrip" arb_wide (fun a ->
        Bitvec.equal a (Bitvec.of_bits (Bitvec.to_bits a)));
    prop "string roundtrip" arb_wide (fun a ->
        Bitvec.equal a (Bitvec.of_string (Bitvec.to_string a)));
    prop "binary string roundtrip" arb_wide (fun a ->
        Bitvec.equal a (Bitvec.of_string (Bitvec.to_binary_string a)));
    prop "concat then extract hi" arb_wide_pair (fun (a, b) ->
        let c = Bitvec.concat a b in
        let wa = Bitvec.width a and wb = Bitvec.width b in
        Bitvec.equal a (Bitvec.extract ~high:(wa + wb - 1) ~low:wb c)
        && Bitvec.equal b (Bitvec.extract ~high:(wb - 1) ~low:0 c));
    prop "zext preserves value" arb_wide (fun a ->
        let z = Bitvec.zext a (Bitvec.width a + 17) in
        Bitvec.equal a (Bitvec.extract ~high:(Bitvec.width a - 1) ~low:0 z)
        && not (Bitvec.reduce_or (Bitvec.extract ~high:(Bitvec.width z - 1) ~low:(Bitvec.width a) z)));
    prop "sext top bits equal msb" arb_wide (fun a ->
        let s = Bitvec.sext a (Bitvec.width a + 9) in
        let top = Bitvec.extract ~high:(Bitvec.width s - 1) ~low:(Bitvec.width a) s in
        if Bitvec.msb a then Bitvec.is_ones top else Bitvec.is_zero top);
    prop "rol total = width is id" arb_wide_pair (fun (a, b) ->
        let w = Bitvec.width a in
        let k = Bitvec.to_int_trunc b mod w in
        Bitvec.equal a (Bitvec.rol_int (Bitvec.rol_int a k) (w - k)));
    prop "shl then lshr masks" arb_wide_pair (fun (a, b) ->
        let w = Bitvec.width a in
        let k = Bitvec.to_int_trunc b mod w in
        let r = Bitvec.lshr_int (Bitvec.shl_int a k) k in
        Bitvec.equal r
          (if k = 0 then a
           else Bitvec.zext (Bitvec.extract ~high:(w - 1 - k) ~low:0 a) w));
    prop "clmul distributes over xor" arb_wide_pair (fun (a, b) ->
        let w = Bitvec.width a in
        let c = Bitvec.rol_int a 1 in
        Bitvec.equal
          (Bitvec.clmul (Bitvec.logxor a c) b)
          (Bitvec.logxor (Bitvec.clmul a b) (Bitvec.clmul c b))
        && w > 0);
    prop "compare consistent with ult" arb_wide_pair (fun (a, b) ->
        let c = Bitvec.compare a b in
        if c = 0 then Bitvec.equal a b
        else if c < 0 then Bitvec.ult a b
        else Bitvec.ult b a);
    prop "popcount concat additive" arb_wide_pair (fun (a, b) ->
        Bitvec.popcount (Bitvec.concat a b) = Bitvec.popcount a + Bitvec.popcount b);
    prop "hash respects equal" arb_wide (fun a ->
        Bitvec.hash a = Bitvec.hash (Bitvec.of_bits (Bitvec.to_bits a)))
  ]

let () =
  Alcotest.run "bitvec"
    [ ("unit",
       [ Alcotest.test_case "construction" `Quick test_construction;
         Alcotest.test_case "of_string" `Quick test_of_string;
         Alcotest.test_case "to_string" `Quick test_to_string;
         Alcotest.test_case "structure" `Quick test_structure;
         Alcotest.test_case "signed" `Quick test_signed;
         Alcotest.test_case "shifts" `Quick test_shifts;
         Alcotest.test_case "reductions" `Quick test_reductions ]);
      ("small-width model", small_props);
      ("wide laws", wide_props) ]
