test/designs/test_gcd.ml: Alcotest Bitvec Designs Lazy List Option Oyster Printf Random Synth
