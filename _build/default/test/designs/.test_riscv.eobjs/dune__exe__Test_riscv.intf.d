test/designs/test_riscv.mli:
