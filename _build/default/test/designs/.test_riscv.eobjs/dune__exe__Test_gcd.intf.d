test/designs/test_gcd.mli:
