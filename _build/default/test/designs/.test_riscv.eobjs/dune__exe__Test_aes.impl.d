test/designs/test_aes.ml: Alcotest Array Bitvec Designs Ila List Random Synth
