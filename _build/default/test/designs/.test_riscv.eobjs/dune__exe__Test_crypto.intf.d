test/designs/test_crypto.mli:
