test/designs/test_riscv.ml: Alcotest Array Bitvec Designs Isa List Option Oyster Printf Random Synth
