test/designs/test_crypto.ml: Alcotest Array Bitvec Char Designs Isa Lazy List Option Printf Random Sha256 Sha_program String Synth
