test/designs/test_aes.mli:
