(* End-to-end tests for the RISC-V cores (paper §4.1):

   - control logic synthesis succeeds for the single-cycle and two-stage
     sketches on all ISA variants;
   - the completed (synthesized) cores and the hand-written reference cores
     agree with the ISS oracle on random programs, instruction by
     instruction at the architectural level (registers + data memory);
   - the synthesized LW control matches the paper's Fig. 7 shape. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let solve problem =
  match Synth.Engine.synthesize problem with
  | Synth.Engine.Solved s -> s
  | Synth.Engine.Timeout _ -> Alcotest.fail "synthesis timed out"
  | Synth.Engine.Unrealizable { instr; _ } ->
      Alcotest.failf "unrealizable (%s)" (Option.value instr ~default:"?")
  | Synth.Engine.Union_failed { diagnostic; _ } ->
      Alcotest.failf "union failed: %s" diagnostic
  | Synth.Engine.Not_independent _ -> Alcotest.fail "not independent" 

(* Run a program on a core design and on the ISS; compare final registers
   and data memory. *)
let cosim ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(len = 40) design variant =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed; 99 |] in
      let program = Designs.Testbench.random_program rng variant ~len in
      let dmem_init =
        List.init 32 (fun i ->
            (i, Bitvec.of_bits (Array.init 32 (fun _ -> Random.State.bool rng))))
      in
      let halt_pc = 4 * (List.length program - 1) in
      let core =
        Designs.Testbench.run_core design ~program ~dmem_init ~halt_pc
          ~max_cycles:2000
      in
      (match core.Designs.Testbench.cycles_to_halt with
      | Some _ -> ()
      | None -> Alcotest.failf "core did not halt (seed %d)" seed);
      let outcome, iss =
        Designs.Testbench.run_iss variant ~program ~dmem_init ~max_cycles:2000
      in
      (match outcome with
      | `Halted -> ()
      | `Illegal w -> Alcotest.failf "ISS illegal instruction %s" (Bitvec.to_string w)
      | `Max_cycles -> Alcotest.fail "ISS did not halt");
      for r = 0 to 31 do
        Alcotest.check bv
          (Printf.sprintf "seed %d x%d" seed r)
          (Isa.Iss.get_reg iss r)
          (Designs.Testbench.core_reg core.Designs.Testbench.state r)
      done;
      for a = 0 to 40 do
        Alcotest.check bv
          (Printf.sprintf "seed %d mem[%d]" seed a)
          (Isa.Iss.dmem_read iss a)
          (Designs.Testbench.core_dmem core.Designs.Testbench.state a)
      done)
    seeds

(* {1 Single-cycle core} *)

let test_single_reference_cosim () =
  cosim (Designs.Riscv_single.reference_design Isa.Rv32.RV32I_Zbkc)
    Isa.Rv32.RV32I_Zbkc

let test_single_synthesis variant () =
  let solved = solve (Designs.Riscv_single.problem variant) in
  cosim ~seeds:[ 11; 12; 13 ] solved.Synth.Engine.completed variant

let test_fig7_lw_shape () =
  let solved = solve (Designs.Riscv_single.problem Isa.Rv32.RV32I) in
  let lw = List.assoc "LW" solved.Synth.Engine.per_instr in
  let check name expect =
    Alcotest.check bv ("LW " ^ name)
      (Bitvec.of_int ~width:(Bitvec.width (List.assoc name lw)) expect)
      (List.assoc name lw)
  in
  (* the essential Fig. 7 signals; mask_mode 2 and 3 both mean "word" in
     this datapath, so it is checked separately *)
  check "mem_read" 1;
  check "reg_write" 1;
  check "mem_write" 0;
  check "jump" 0;
  check "branch_en" 0;
  check "wb_sel" 1;
  let mask = Bitvec.to_int_exn (List.assoc "mask_mode" lw) in
  Alcotest.(check bool) "LW mask is word" true (mask = 2 || mask = 3)

(* {1 Two-stage core} *)

let test_two_stage_reference_cosim () =
  cosim (Designs.Riscv_two_stage.reference_design Isa.Rv32.RV32I_Zbkc)
    Isa.Rv32.RV32I_Zbkc

let test_two_stage_synthesis () =
  let solved = solve (Designs.Riscv_two_stage.problem Isa.Rv32.RV32I) in
  cosim ~seeds:[ 21; 22; 23 ] solved.Synth.Engine.completed Isa.Rv32.RV32I

(* Back-to-back dependent instructions exercise the write-back forwarding in
   the two-stage pipeline. *)
let test_two_stage_hazards () =
  let design = Designs.Riscv_two_stage.reference_design Isa.Rv32.RV32I in
  let e m = Isa.Rv32.encode Isa.Rv32.RV32I m in
  let program =
    [ e "addi" ~rd:1 ~rs1:0 ~imm:7 ();
      e "addi" ~rd:1 ~rs1:1 ~imm:8 ();  (* RAW on x1, distance 1 *)
      e "add" ~rd:2 ~rs1:1 ~rs2:1 ();  (* x2 = 30 *)
      e "sub" ~rd:3 ~rs1:2 ~rs2:1 ();  (* x3 = 15 *)
      e "jal" ~rd:0 ~imm:0 () ]
  in
  let r =
    Designs.Testbench.run_core design ~program ~dmem_init:[]
      ~halt_pc:(4 * (List.length program - 1))
      ~max_cycles:100
  in
  let reg i = Designs.Testbench.core_reg r.Designs.Testbench.state i in
  Alcotest.check bv "x1" (Bitvec.of_int ~width:32 15) (reg 1);
  Alcotest.check bv "x2" (Bitvec.of_int ~width:32 30) (reg 2);
  Alcotest.check bv "x3" (Bitvec.of_int ~width:32 15) (reg 3)

(* {1 Sketch sizes grow with the ISA (Table 1 sanity)} *)

let test_sketch_sizes () =
  let loc v = Oyster.Printer.loc (Designs.Riscv_single.sketch v) in
  let a = loc Isa.Rv32.RV32I
  and b = loc Isa.Rv32.RV32I_Zbkb
  and c = loc Isa.Rv32.RV32I_Zbkc in
  Alcotest.(check bool)
    (Printf.sprintf "sizes increase (%d < %d < %d)" a b c)
    true
    (a < b && b < c)

let () =
  Alcotest.run "riscv-cores"
    [ ("single-cycle",
       [ Alcotest.test_case "reference vs ISS" `Quick test_single_reference_cosim;
         Alcotest.test_case "synthesized RV32I vs ISS" `Quick
           (test_single_synthesis Isa.Rv32.RV32I);
         Alcotest.test_case "synthesized +Zbkb vs ISS" `Quick
           (test_single_synthesis Isa.Rv32.RV32I_Zbkb);
         Alcotest.test_case "synthesized +Zbkc vs ISS" `Quick
           (test_single_synthesis Isa.Rv32.RV32I_Zbkc);
         Alcotest.test_case "synthesized +M vs ISS" `Quick
           (test_single_synthesis Isa.Rv32.RV32I_M);
         Alcotest.test_case "Fig. 7 LW control" `Quick test_fig7_lw_shape ]);
      ("two-stage",
       [ Alcotest.test_case "reference vs ISS" `Quick test_two_stage_reference_cosim;
         Alcotest.test_case "synthesized vs ISS" `Quick test_two_stage_synthesis;
         Alcotest.test_case "forwarding hazards" `Quick test_two_stage_hazards ]);
      ("sketches", [ Alcotest.test_case "sizes grow" `Quick test_sketch_sizes ]) ]
