(* Tests for the GCD accelerator: FSM control synthesis with
   data-dependent decode (joint strategy with four shared encodings), the
   reference design, and functional validation against Euclid's algorithm. *)

let rec euclid a b = if b = 0 then a else euclid b (a mod b)

let solve () =
  match Synth.Engine.synthesize (Designs.Gcd.problem ()) with
  | Synth.Engine.Solved s -> s
  | Synth.Engine.Timeout _ -> Alcotest.fail "timeout"
  | Synth.Engine.Unrealizable { instr; _ } ->
      Alcotest.failf "unrealizable (%s)" (Option.value instr ~default:"?")
  | Synth.Engine.Union_failed { diagnostic; _ } -> Alcotest.fail diagnostic
  | Synth.Engine.Not_independent _ -> Alcotest.fail "not independent" 

let synthesized = lazy (solve ())

let check_gcd design a b =
  match Designs.Gcd.run design ~a ~b ~max_cycles:100000 with
  | Some (result, _) ->
      Alcotest.(check int) (Printf.sprintf "gcd %d %d" a b) (euclid a b) result
  | None -> Alcotest.failf "gcd(%d, %d) did not complete" a b

let test_reference () =
  List.iter
    (fun (a, b) -> check_gcd (Designs.Gcd.reference_design ()) a b)
    [ (12, 18); (7, 13); (100, 75); (5, 5); (1, 999); (64, 48) ]

let test_synthesis () =
  let s = Lazy.force synthesized in
  (* the four encodings must be pairwise distinct, and IDLE's state must be
     outside all of them (the hold branch) *)
  let encs = List.map snd s.Synth.Engine.shared in
  let rec distinct = function
    | [] -> true
    | v :: rest -> (not (List.exists (Bitvec.equal v) rest)) && distinct rest
  in
  Alcotest.(check bool) "encodings distinct" true (distinct encs);
  let idle_state = List.assoc "st" (List.assoc "IDLE" s.Synth.Engine.per_instr) in
  Alcotest.(check bool) "IDLE avoids all encodings" true
    (not (List.exists (Bitvec.equal idle_state) encs));
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 15 do
    let a = 1 + Random.State.int rng 500 in
    let b = 1 + Random.State.int rng 500 in
    check_gcd s.Synth.Engine.completed a b
  done

let test_cycle_parity () =
  (* generated and reference control take the same number of cycles *)
  let s = Lazy.force synthesized in
  List.iter
    (fun (a, b) ->
      match
        ( Designs.Gcd.run s.Synth.Engine.completed ~a ~b ~max_cycles:100000,
          Designs.Gcd.run (Designs.Gcd.reference_design ()) ~a ~b ~max_cycles:100000 )
      with
      | Some (r1, c1), Some (r2, c2) ->
          Alcotest.(check int) "same result" r2 r1;
          Alcotest.(check int) "same cycles" c2 c1
      | _ -> Alcotest.fail "did not complete")
    [ (30, 42); (17, 4); (9, 9) ]

let test_result_holds_when_idle () =
  (* after DONE, the result must remain readable indefinitely *)
  let s = Lazy.force synthesized in
  let st = Oyster.Interp.init s.Synth.Engine.completed in
  let feed start a b =
    Oyster.Interp.step
      ~inputs:(fun name _ ->
        match name with
        | "a_in" -> Bitvec.of_int ~width:16 a
        | "b_in" -> Bitvec.of_int ~width:16 b
        | "start" -> Bitvec.of_int ~width:1 (if start then 1 else 0)
        | _ -> assert false)
      st
  in
  ignore (feed true 12 18);
  for _ = 1 to 50 do
    ignore (feed false 999 777)  (* garbage on the idle inputs *)
  done;
  let r = feed false 123 456 in
  Alcotest.(check bool) "ready" true
    (Bitvec.is_ones (List.assoc "ready" r.Oyster.Interp.outputs));
  Alcotest.(check int) "result still 6" 6
    (Bitvec.to_int_exn (List.assoc "result" r.Oyster.Interp.outputs))

let () =
  Alcotest.run "gcd"
    [ ("gcd",
       [ Alcotest.test_case "reference" `Quick test_reference;
         Alcotest.test_case "synthesized" `Quick test_synthesis;
         Alcotest.test_case "cycle parity" `Quick test_cycle_parity;
         Alcotest.test_case "idle holds result" `Quick test_result_holds_when_idle ]) ]
