(* Tests for the constant-time cryptography core (paper §4.2/§5.2):

   - control synthesis for the CMOV ISA succeeds;
   - the synthesized and reference cores agree with the (CMOV-enabled) ISS
     on random branch-free programs;
   - SHA-256: correct digests, cycle count independent of input length, and
     generated-control cycles equal reference-control cycles (the §5.2
     claims). *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let solve problem =
  match Synth.Engine.synthesize problem with
  | Synth.Engine.Solved s -> s
  | Synth.Engine.Timeout _ -> Alcotest.fail "synthesis timed out"
  | Synth.Engine.Unrealizable { instr; _ } ->
      Alcotest.failf "unrealizable (%s)" (Option.value instr ~default:"?")
  | Synth.Engine.Union_failed { diagnostic; _ } ->
      Alcotest.failf "union failed: %s" diagnostic
  | Synth.Engine.Not_independent _ -> Alcotest.fail "not independent" 

let synthesized = lazy (solve (Designs.Crypto_core.problem ()))

let cosim design =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed; 123 |] in
      let program =
        Designs.Testbench.random_program ~profile:`Cmov rng Isa.Rv32.RV32I_Zbkb
          ~len:40
      in
      let dmem_init =
        List.init 32 (fun i ->
            (i, Bitvec.of_bits (Array.init 32 (fun _ -> Random.State.bool rng))))
      in
      let halt_pc = 4 * (List.length program - 1) in
      let core =
        Designs.Testbench.run_core design ~program ~dmem_init ~halt_pc
          ~max_cycles:2000
      in
      (match core.Designs.Testbench.cycles_to_halt with
      | Some _ -> ()
      | None -> Alcotest.fail "core did not halt");
      let outcome, iss =
        Designs.Testbench.run_iss ~cmov:true Isa.Rv32.RV32I_Zbkb ~program
          ~dmem_init ~max_cycles:2000
      in
      (match outcome with
      | `Halted -> ()
      | _ -> Alcotest.fail "ISS did not halt");
      for r = 0 to 31 do
        Alcotest.check bv
          (Printf.sprintf "seed %d x%d" seed r)
          (Isa.Iss.get_reg iss r)
          (Designs.Testbench.core_reg core.Designs.Testbench.state r)
      done;
      for a = 0 to 40 do
        Alcotest.check bv
          (Printf.sprintf "seed %d mem[%d]" seed a)
          (Isa.Iss.dmem_read iss a)
          (Designs.Testbench.core_dmem core.Designs.Testbench.state a)
      done)
    [ 31; 32; 33; 34 ]

let test_reference_cosim () = cosim (Designs.Crypto_core.reference_design ())

let test_synthesized_cosim () =
  cosim (Lazy.force synthesized).Synth.Engine.completed

(* {1 The §5.2 constant-time experiment} *)

let sha_cycles design msg =
  let program = Sha_program.generate () in
  let halt_pc = 4 * (List.length program - 1) in
  let r =
    Designs.Testbench.run_core design ~program
      ~dmem_init:(Sha_program.pack_input msg) ~halt_pc ~max_cycles:20000
  in
  let digest =
    Sha_program.read_digest (fun a ->
        Designs.Testbench.core_dmem r.Designs.Testbench.state a)
  in
  let hex =
    String.concat "" (Array.to_list (Array.map (Printf.sprintf "%08x") digest))
  in
  match r.Designs.Testbench.cycles_to_halt with
  | Some c -> (c, hex)
  | None -> Alcotest.fail "SHA program did not halt"

let inputs =
  List.map
    (fun len -> String.init len (fun i -> Char.chr (33 + ((i * 7) mod 90))))
    [ 4; 8; 12; 16; 20; 24; 28; 32 ]

let test_sha_constant_time () =
  let design = (Lazy.force synthesized).Synth.Engine.completed in
  let results = List.map (fun msg -> (msg, sha_cycles design msg)) inputs in
  (* digests are correct *)
  List.iter
    (fun (msg, (_, hex)) ->
      Alcotest.(check string)
        (Printf.sprintf "digest len %d" (String.length msg))
        (Sha256.digest_hex msg) hex)
    results;
  (* cycle count is independent of the input *)
  let cycles = List.map (fun (_, (c, _)) -> c) results in
  (match cycles with
  | first :: rest ->
      List.iter
        (fun c -> Alcotest.(check int) "constant cycles" first c)
        rest
  | [] -> assert false);
  (* ... and also independent of input content at fixed length *)
  let c1, _ = sha_cycles design "aaaa" in
  let c2, _ = sha_cycles design "zzzz" in
  Alcotest.(check int) "content-independent" c1 c2

let test_generated_matches_reference_cycles () =
  (* paper §5.2: the generated-control core spends the same number of cycles
     and produces the same result as the hand-written one *)
  let gen = (Lazy.force synthesized).Synth.Engine.completed in
  let refd = Designs.Crypto_core.reference_design () in
  List.iter
    (fun msg ->
      let cg, hg = sha_cycles gen msg in
      let cr, hr = sha_cycles refd msg in
      Alcotest.(check int) "same cycles" cr cg;
      Alcotest.(check string) "same digest" hr hg)
    [ "abcd"; "abcdefgh1234" ]

(* A directed CMOV test on the core. *)
let test_cmov_semantics () =
  let design = Designs.Crypto_core.reference_design () in
  let e m = Isa.Rv32.encode Isa.Rv32.RV32I_Zbkb m in
  let program =
    [ e "addi" ~rd:1 ~rs1:0 ~imm:111 ();
      e "addi" ~rd:2 ~rs1:0 ~imm:222 ();
      e "addi" ~rd:3 ~rs1:0 ~imm:1 ();  (* condition true *)
      Designs.Testbench.cmov_word ~rd:2 ~rs1:1 ~rs2:3;  (* x2 := x1 *)
      Designs.Testbench.cmov_word ~rd:1 ~rs1:2 ~rs2:0;  (* x0 cond: no move *)
      e "jal" ~rd:0 ~imm:0 () ]
  in
  let r =
    Designs.Testbench.run_core design ~program ~dmem_init:[]
      ~halt_pc:(4 * (List.length program - 1))
      ~max_cycles:100
  in
  Alcotest.check bv "x2 moved" (Bitvec.of_int ~width:32 111)
    (Designs.Testbench.core_reg r.Designs.Testbench.state 2);
  Alcotest.check bv "x1 kept" (Bitvec.of_int ~width:32 111)
    (Designs.Testbench.core_reg r.Designs.Testbench.state 1)

let () =
  Alcotest.run "crypto-core"
    [ ("core",
       [ Alcotest.test_case "reference vs ISS" `Quick test_reference_cosim;
         Alcotest.test_case "synthesized vs ISS" `Quick test_synthesized_cosim;
         Alcotest.test_case "cmov" `Quick test_cmov_semantics ]);
      ("constant-time",
       [ Alcotest.test_case "SHA-256 constant cycles" `Quick test_sha_constant_time;
         Alcotest.test_case "generated = reference cycles" `Quick
           test_generated_matches_reference_cycles ]) ]
