(* Tests for the ISA layer:

   - encode/decode round-trips for all 51 instructions
   - immediate field extraction round-trips
   - at most one descriptor matches any instruction word (decoder-level
     mutual exclusion)
   - small ISS programs with known results
   - the central cross-check: the ILA specification (Rv_spec) agrees with
     the independent ISS on random single-instruction steps, for all three
     ISA variants. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal
let b w n = Bitvec.of_int ~width:w n

let all_variant = Isa.Rv32.RV32I_Zbkc

(* {1 Encoding} *)

let test_roundtrip () =
  let rng = Random.State.make [| 3 |] in
  List.iter
    (fun (desc : Isa.Rv32.descriptor) ->
      for _ = 1 to 20 do
        let rd = Random.State.int rng 32
        and rs1 = Random.State.int rng 32
        and rs2 = Random.State.int rng 32 in
        let imm =
          match desc.Isa.Rv32.format with
          | Isa.Rv32.I when desc.Isa.Rv32.funct7 <> None -> Random.State.int rng 32
          | Isa.Rv32.I -> Random.State.int rng 4096 - 2048
          | Isa.Rv32.S -> Random.State.int rng 4096 - 2048
          | Isa.Rv32.B -> (Random.State.int rng 4096 - 2048) * 2
          | Isa.Rv32.U -> Random.State.int rng (1 lsl 20) lsl 12
          | Isa.Rv32.J -> (Random.State.int rng (1 lsl 20) - (1 lsl 19)) * 2
          | Isa.Rv32.R -> 0
        in
        let w =
          Isa.Rv32.encode all_variant desc.Isa.Rv32.mnemonic ~rd ~rs1 ~rs2 ~imm ()
        in
        (match Isa.Rv32.decode all_variant w with
        | Some d' ->
            Alcotest.(check string)
              (desc.Isa.Rv32.mnemonic ^ " decodes back")
              desc.Isa.Rv32.mnemonic d'.Isa.Rv32.mnemonic
        | None -> Alcotest.failf "%s does not decode" desc.Isa.Rv32.mnemonic);
        (* field round trips *)
        Alcotest.(check int) "rd" rd
          (match desc.Isa.Rv32.format with
          | Isa.Rv32.S | Isa.Rv32.B -> Isa.Rv32.get_rd w |> fun _ -> rd
          | _ -> Isa.Rv32.get_rd w);
        (* immediate round trips *)
        (match desc.Isa.Rv32.format with
        | Isa.Rv32.I
          when Isa.Rv32.fixed_imm12 desc.Isa.Rv32.mnemonic = None
               && desc.Isa.Rv32.funct7 = None ->
            Alcotest.(check (option int)) "imm_i" (Some imm)
              (Bitvec.to_signed_int (Isa.Rv32.imm_i w))
        | Isa.Rv32.S ->
            Alcotest.(check (option int)) "imm_s" (Some imm)
              (Bitvec.to_signed_int (Isa.Rv32.imm_s w))
        | Isa.Rv32.B ->
            Alcotest.(check (option int)) "imm_b" (Some imm)
              (Bitvec.to_signed_int (Isa.Rv32.imm_b w))
        | Isa.Rv32.U ->
            Alcotest.check bv "imm_u" (Bitvec.of_int ~width:32 imm)
              (Isa.Rv32.imm_u w)
        | Isa.Rv32.J ->
            Alcotest.(check (option int)) "imm_j" (Some imm)
              (Bitvec.to_signed_int (Isa.Rv32.imm_j w))
        | _ -> ())
      done)
    (Isa.Rv32.instructions all_variant)

let test_unique_decode () =
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 5000 do
    let w = Bitvec.of_bits (Array.init 32 (fun _ -> Random.State.bool rng)) in
    let matches =
      List.filter
        (fun (desc : Isa.Rv32.descriptor) ->
          desc.Isa.Rv32.opcode = Isa.Rv32.get_opcode w
          && (match desc.Isa.Rv32.funct3 with
             | None -> true
             | Some f -> f = Isa.Rv32.get_funct3 w)
          && (match desc.Isa.Rv32.funct7 with
             | None -> true
             | Some f -> f = Isa.Rv32.get_funct7 w)
          && (match desc.Isa.Rv32.rs2f with
             | None -> true
             | Some r -> r = Isa.Rv32.get_rs2 w))
        (Isa.Rv32.instructions all_variant)
    in
    if List.length matches > 1 then
      Alcotest.failf "word %s matches %s" (Bitvec.to_string w)
        (String.concat ", "
           (List.map (fun (d : Isa.Rv32.descriptor) -> d.Isa.Rv32.mnemonic) matches))
  done

(* {1 ISS programs} *)

let test_iss_arith_program () =
  let t = Isa.Iss.create () in
  let e m = Isa.Rv32.encode all_variant m in
  Isa.Iss.load_program t
    [ e "addi" ~rd:1 ~rs1:0 ~imm:10 ();
      e "addi" ~rd:2 ~rs1:0 ~imm:3 ();
      e "sub" ~rd:3 ~rs1:1 ~rs2:2 ();  (* x3 = 7 *)
      e "slli" ~rd:4 ~rs1:3 ~imm:4 ();  (* x4 = 112 *)
      e "xor" ~rd:5 ~rs1:4 ~rs2:1 ();  (* x5 = 112 ^ 10 = 122 *)
      e "jal" ~rd:0 ~imm:0 () ]  (* halt *);
  Alcotest.(check bool) "halts" true (Isa.Iss.run t = `Halted);
  Alcotest.check bv "x3" (b 32 7) (Isa.Iss.get_reg t 3);
  Alcotest.check bv "x4" (b 32 112) (Isa.Iss.get_reg t 4);
  Alcotest.check bv "x5" (b 32 122) (Isa.Iss.get_reg t 5)

let test_iss_loop_program () =
  (* sum 1..5 with a branch loop *)
  let t = Isa.Iss.create () in
  let e m = Isa.Rv32.encode all_variant m in
  Isa.Iss.load_program t
    [ e "addi" ~rd:1 ~rs1:0 ~imm:5 ();  (* i = 5 *)
      e "addi" ~rd:2 ~rs1:0 ~imm:0 ();  (* sum = 0 *)
      (* loop: *)
      e "add" ~rd:2 ~rs1:2 ~rs2:1 ();
      e "addi" ~rd:1 ~rs1:1 ~imm:(-1) ();
      e "bne" ~rs1:1 ~rs2:0 ~imm:(-8) ();
      e "jal" ~rd:0 ~imm:0 () ];
  Alcotest.(check bool) "halts" true (Isa.Iss.run t = `Halted);
  Alcotest.check bv "sum" (b 32 15) (Isa.Iss.get_reg t 2)

let test_iss_memory_program () =
  let t = Isa.Iss.create () in
  let e m = Isa.Rv32.encode all_variant m in
  Isa.Iss.load_program t
    [ e "addi" ~rd:1 ~rs1:0 ~imm:0x5a1 ();  (* 0x5a1 = 1441 *)
      e "sw" ~rs1:0 ~rs2:1 ~imm:64 ();
      e "lw" ~rd:2 ~rs1:0 ~imm:64 ();
      e "sb" ~rs1:0 ~rs2:1 ~imm:65 ();  (* write byte 0xa1 at offset 1 *)
      e "lw" ~rd:3 ~rs1:0 ~imm:64 ();  (* 0x5a1 with byte1 := a1 -> 0xa1a1 *)
      e "lbu" ~rd:4 ~rs1:0 ~imm:65 ();
      e "lb" ~rd:5 ~rs1:0 ~imm:65 ();  (* sign extended: 0xffffffa1 *)
      e "lhu" ~rd:6 ~rs1:0 ~imm:64 ();
      e "jal" ~rd:0 ~imm:0 () ];
  Alcotest.(check bool) "halts" true (Isa.Iss.run t = `Halted);
  Alcotest.check bv "lw" (b 32 0x5a1) (Isa.Iss.get_reg t 2);
  Alcotest.check bv "lw after sb" (b 32 0xa1a1) (Isa.Iss.get_reg t 3);
  Alcotest.check bv "lbu" (b 32 0xa1) (Isa.Iss.get_reg t 4);
  Alcotest.check bv "lb" (Bitvec.of_int ~width:32 (-95)) (Isa.Iss.get_reg t 5);
  Alcotest.check bv "lhu" (b 32 0xa1a1) (Isa.Iss.get_reg t 6)

(* {1 Spec vs ISS on random single instructions} *)

let random_state_pair rng variant =
  (* Build an ISS state and a matching ILA arch state. *)
  let iss = Isa.Iss.create ~variant () in
  let spec = Isa.Rv_spec.spec variant in
  let st = Ila.Spec.init_state spec in
  (* pc: word aligned, small *)
  let pc = 4 * (1 + Random.State.int rng 1000) in
  iss.Isa.Iss.pc <- b 32 pc;
  Ila.Spec.set_bv st "pc" (b 32 pc);
  (* registers *)
  Ila.Spec.set_mem st "GPR" (b 5 0) (b 32 0);
  for r = 1 to 31 do
    let v =
      (* bias towards interesting values *)
      match Random.State.int rng 5 with
      | 0 -> b 32 (Random.State.int rng 64)
      | 1 -> b 32 (4 * Random.State.int rng 256)  (* plausible addresses *)
      | _ -> Bitvec.of_bits (Array.init 32 (fun _ -> Random.State.bool rng))
    in
    Isa.Iss.set_reg iss r v;
    Ila.Spec.set_mem st "GPR" (b 5 r) v
  done;
  (iss, spec, st)

let prop_spec_matches_iss variant =
  QCheck.Test.make ~count:400
    ~name:("spec matches ISS: " ^ Isa.Rv32.variant_name variant)
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let rng = Random.State.make [| seed; 77 |] in
      let iss, spec, st = random_state_pair rng variant in
      let descs = Isa.Rv32.instructions variant in
      let desc = List.nth descs (Random.State.int rng (List.length descs)) in
      let rd = Random.State.int rng 32
      and rs1 = Random.State.int rng 32
      and rs2 = Random.State.int rng 32 in
      let imm =
        match desc.Isa.Rv32.format with
        | Isa.Rv32.B -> 2 * (Random.State.int rng 2048 - 1024)
        | Isa.Rv32.J -> 2 * (Random.State.int rng (1 lsl 19) - (1 lsl 18))
        | Isa.Rv32.U -> Random.State.int rng (1 lsl 20) lsl 12
        | _ -> Random.State.int rng 4096 - 2048
      in
      let w = Isa.Rv32.encode variant desc.Isa.Rv32.mnemonic ~rd ~rs1 ~rs2 ~imm () in
      (* avoid the jump-to-self halt so the ISS actually steps *)
      QCheck.assume
        (not
           ((desc.Isa.Rv32.mnemonic = "jal" && imm = 0)
           || desc.Isa.Rv32.mnemonic = "jalr"
              && Bitvec.equal
                   (Bitvec.logand
                      (Bitvec.add (Isa.Iss.get_reg iss rs1) (Isa.Rv32.imm_i w))
                      (Bitvec.lognot (b 32 1)))
                   iss.Isa.Iss.pc));
      let pc_word = Bitvec.to_int_exn (Bitvec.extract ~high:31 ~low:2 iss.Isa.Iss.pc) in
      Hashtbl.replace iss.Isa.Iss.imem pc_word w;
      (* random data image on a few addresses both models share, plus the
         instruction word itself (the spec has a single memory) *)
      let image = Hashtbl.create 16 in
      Hashtbl.replace image pc_word w;
      for _ = 1 to 8 do
        let a = Random.State.int rng 1024 in
        if not (Hashtbl.mem image a) then
          Hashtbl.replace image a
            (Bitvec.of_bits (Array.init 32 (fun _ -> Random.State.bool rng)))
      done;
      Hashtbl.iter
        (fun a v ->
          Hashtbl.replace iss.Isa.Iss.dmem a v;
          Ila.Spec.set_mem st "mem" (b 30 a) v)
        image;
      (* also mirror dmem defaults: unset addresses are zero in both *)
      Isa.Iss.step iss;
      let stepped =
        Ila.Spec.step_concrete spec st ~inputs:(fun n ->
            failwith ("unexpected input " ^ n))
      in
      (match stepped with
      | Some iname ->
          if iname <> String.uppercase_ascii desc.Isa.Rv32.mnemonic then
            QCheck.Test.fail_reportf "decoded %s, expected %s" iname
              desc.Isa.Rv32.mnemonic
      | None -> QCheck.Test.fail_reportf "spec decoded nothing");
      (* compare pc *)
      if not (Bitvec.equal (Ila.Spec.get_bv st "pc") iss.Isa.Iss.pc) then
        QCheck.Test.fail_reportf "pc mismatch: spec %s iss %s"
          (Bitvec.to_string (Ila.Spec.get_bv st "pc"))
          (Bitvec.to_string iss.Isa.Iss.pc);
      (* compare registers *)
      for r = 0 to 31 do
        let sv = Ila.Spec.get_mem st "GPR" (b 5 r) in
        let iv = Isa.Iss.get_reg iss r in
        if not (Bitvec.equal sv iv) then
          QCheck.Test.fail_reportf "x%d mismatch: spec %s iss %s" r
            (Bitvec.to_string sv) (Bitvec.to_string iv)
      done;
      (* compare data memory over every address either model touched *)
      let addrs = Hashtbl.create 32 in
      Hashtbl.iter (fun a _ -> Hashtbl.replace addrs (b 30 a) ()) image;
      Hashtbl.iter (fun a _ -> Hashtbl.replace addrs (b 30 a) ()) iss.Isa.Iss.dmem;
      (match Hashtbl.find_opt st.Ila.Spec.mems "mem" with
      | Some tbl -> Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) tbl
      | None -> ());
      Hashtbl.iter
        (fun a () ->
          let sv = Ila.Spec.get_mem st "mem" a in
          let iv = Isa.Iss.dmem_read iss (Bitvec.to_int_exn a) in
          if not (Bitvec.equal sv iv) then
            QCheck.Test.fail_reportf "mem[%s] mismatch: spec %s iss %s"
              (Bitvec.to_string a) (Bitvec.to_string sv) (Bitvec.to_string iv))
        addrs;
      true)

let () =
  Alcotest.run "isa"
    [ ("encoding",
       [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "unique decode" `Quick test_unique_decode ]);
      ("iss",
       [ Alcotest.test_case "arith program" `Quick test_iss_arith_program;
         Alcotest.test_case "loop program" `Quick test_iss_loop_program;
         Alcotest.test_case "memory program" `Quick test_iss_memory_program ]);
      ("spec-vs-iss",
       List.map QCheck_alcotest.to_alcotest
         [ prop_spec_matches_iss Isa.Rv32.RV32I;
           prop_spec_matches_iss Isa.Rv32.RV32I_Zbkb;
           prop_spec_matches_iss Isa.Rv32.RV32I_Zbkc;
           prop_spec_matches_iss Isa.Rv32.RV32I_M ]) ]
