(* Tests for the gate-level netlist backend. *)

open Hdl.Builder

let counts ?(optimize = false) d = Netlist.of_design ~optimize d

(* An 8-bit ripple adder has exactly 2 XOR, 2 AND, 1 OR per full adder; the
   first stage's carry-in is constant false and folds. *)
let test_adder_counts () =
  let c = create "adder8" in
  let a = input c "a" 8 in
  let b = input c "b" 8 in
  output c "s" (a +: b);
  let d = finalize c in
  let n = counts d in
  Alcotest.(check int) "xors" (2 * 8) (n.Netlist.xors + 1);
  (* bit 0: carry-in false folds one xor away: 2*8 - 1 total *)
  Alcotest.(check int) "dffs" 0 n.Netlist.dffs;
  Alcotest.(check bool) "ands present" true (n.Netlist.ands > 0)

let test_register_dffs () =
  let c = create "regs" in
  let a = input c "a" 16 in
  let r = register c "r" 16 in
  set_register c r a;
  output c "o" r;
  let n = counts (finalize c) in
  Alcotest.(check int) "dffs" 16 n.Netlist.dffs;
  Alcotest.(check int) "no gates" 0 n.Netlist.total_gates

let test_memory_materialization () =
  let c = create "rfm" in
  let addr = input c "addr" 2 in
  let data = input c "data" 8 in
  let we = input c "we" 1 in
  let m = memory c "m" ~addr_width:2 ~data_width:8 in
  write c m ~addr ~data ~enable:we;
  output c "o" (read m addr);
  let n = counts (finalize c) in
  (* 4 cells x 8 bits of state *)
  Alcotest.(check int) "dffs" 32 n.Netlist.dffs;
  Alcotest.(check bool) "write decode + read mux" true (n.Netlist.total_gates > 32)

let test_blackbox_memory () =
  let c = create "bb" in
  let addr = input c "addr" 20 in
  let m = memory c "m" ~addr_width:20 ~data_width:8 in
  output c "o" (read m addr);
  let n = counts (finalize c) in
  (* address width 20 > threshold: no dffs, no gates, just ports *)
  Alcotest.(check int) "dffs" 0 n.Netlist.dffs;
  Alcotest.(check int) "gates" 0 n.Netlist.total_gates

let test_rom_constant_fold () =
  let c = create "romf" in
  let romr = rom c "t" ~addr_width:3 (Array.init 8 (fun i -> Bitvec.of_int ~width:8 i)) in
  output c "o" (romr (const 3 5));
  let n = counts (finalize c) in
  Alcotest.(check int) "constant index folds" 0 n.Netlist.total_gates

let test_optimize_shrinks () =
  (* Term-level hash-consing removes source-level duplication before gates
     exist; what the gate optimizer adds is structural sharing across
     separately compiled cones.  Two subtractions against the same [b] each
     build [not b] — raw emits the inverters twice, optimized shares them. *)
  let c = create "cse" in
  let a = input c "a" 8 in
  let b = input c "b" 8 in
  let x = input c "x" 8 in
  output c "o1" (a -: b);
  output c "o2" (x -: b);
  let d = finalize c in
  let raw = counts d in
  let opt = counts ~optimize:true d in
  Alcotest.(check bool)
    (Printf.sprintf "inverters shared (%d raw, %d opt)" raw.Netlist.nots
       opt.Netlist.nots)
    true
    (opt.Netlist.nots < raw.Netlist.nots);
  Alcotest.(check bool)
    (Printf.sprintf "opt (%d) < raw (%d)" opt.Netlist.total_gates
       raw.Netlist.total_gates)
    true
    (opt.Netlist.total_gates < raw.Netlist.total_gates)

let test_holes_rejected () =
  let c = create "holed" in
  let a = input c "a" 4 in
  let h = hole c "h" 4 ~deps:[ a ] in
  output c "o" (a ^: h);
  let d = finalize c in
  match Netlist.of_design d with
  | exception Netlist.Netlist_error _ -> ()
  | _ -> Alcotest.fail "expected rejection of design with holes"

let test_monotone_on_cores () =
  (* raw >= optimized on a real design, and generated >= reference raw *)
  let refd = Designs.Riscv_single.reference_design Isa.Rv32.RV32I in
  let raw = counts refd in
  let opt = counts ~optimize:true refd in
  Alcotest.(check bool) "opt <= raw" true
    (opt.Netlist.total_gates <= raw.Netlist.total_gates);
  Alcotest.(check bool) "plausible size" true (raw.Netlist.total_gates > 1000);
  Alcotest.(check int) "rf + pc dffs" (1024 + 32) raw.Netlist.dffs

let () =
  Alcotest.run "netlist"
    [ ("counts",
       [ Alcotest.test_case "adder" `Quick test_adder_counts;
         Alcotest.test_case "registers" `Quick test_register_dffs;
         Alcotest.test_case "materialized memory" `Quick test_memory_materialization;
         Alcotest.test_case "black-box memory" `Quick test_blackbox_memory;
         Alcotest.test_case "rom folding" `Quick test_rom_constant_fold ]);
      ("optimizer",
       [ Alcotest.test_case "cse + dead code" `Quick test_optimize_shrinks;
         Alcotest.test_case "cores monotone" `Quick test_monotone_on_cores ]);
      ("errors", [ Alcotest.test_case "holes rejected" `Quick test_holes_rejected ]) ]
