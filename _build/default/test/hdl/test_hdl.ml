(* Tests for the PyRTL-flavoured HDL builder and the PyRTL rendering. *)

open Hdl.Builder

let bv = Alcotest.testable Bitvec.pp Bitvec.equal
let b w n = Bitvec.of_int ~width:w n

let test_builder_roundtrip () =
  (* build a small design and simulate it *)
  let c = create "demo" in
  let x = input c "x" 8 in
  let y = input c "y" 8 in
  let r = register c "acc" 8 in
  let sum = wire c "sum" (x +: y) in
  set_register c r (r +: sum);
  output c "out" (mux (r >: const 8 100) (const 8 255) r);
  let d = finalize c in
  let st = Oyster.Interp.init d in
  let step () =
    Oyster.Interp.step
      ~inputs:(fun name _ -> if name = "x" then b 8 30 else b 8 25)
      st
  in
  let r1 = step () in
  Alcotest.check bv "out before" (b 8 0) (List.assoc "out" r1.Oyster.Interp.outputs);
  let r2 = step () in
  Alcotest.check bv "out after one acc" (b 8 55)
    (List.assoc "out" r2.Oyster.Interp.outputs);
  let r3 = step () in
  Alcotest.check bv "saturated display" (b 8 255)
    (List.assoc "out" r3.Oyster.Interp.outputs)

let test_width_errors () =
  let expect_fail f =
    match f () with
    | exception Hdl_error _ -> ()
    | _ -> Alcotest.fail "expected Hdl_error"
  in
  expect_fail (fun () ->
      let c = create "bad1" in
      let x = input c "x" 8 in
      let y = input c "y" 4 in
      x +: y);
  expect_fail (fun () ->
      let c = create "bad2" in
      let x = input c "x" 8 in
      mux x (const 8 0) (const 8 1));
  expect_fail (fun () ->
      let c = create "bad3" in
      let x = input c "x" 8 in
      bits ~high:9 ~low:0 x);
  expect_fail (fun () ->
      let c = create "bad4" in
      let _ = input c "x" 8 in
      let _ = input c "x" 8 in
      ());
  expect_fail (fun () ->
      let c = create "bad5" in
      let x = input c "x" 8 in
      zext x 4)

let test_select () =
  let c = create "sel" in
  let s = input c "s" 2 in
  output c "o" (select s [ (0, const 8 10); (1, const 8 20) ] (const 8 99));
  let d = finalize c in
  let run v =
    let st = Oyster.Interp.init d in
    let r = Oyster.Interp.step ~inputs:(fun _ _ -> b 2 v) st in
    List.assoc "o" r.Oyster.Interp.outputs
  in
  Alcotest.check bv "case 0" (b 8 10) (run 0);
  Alcotest.check bv "case 1" (b 8 20) (run 1);
  Alcotest.check bv "default" (b 8 99) (run 3)

let test_concat_all_and_bits () =
  let c = create "cc" in
  let x = input c "x" 8 in
  output c "o"
    (concat_all [ bits ~high:1 ~low:0 x; bit 7 x; bits ~high:6 ~low:2 x ]);
  let d = finalize c in
  let st = Oyster.Interp.init d in
  let r = Oyster.Interp.step ~inputs:(fun _ _ -> b 8 0b10110101) st in
  (* [1:0]=01, [7]=1, [6:2]=01101 -> 01 1 01101 *)
  Alcotest.check bv "rearranged" (Bitvec.of_string "8'b01101101")
    (List.assoc "o" r.Oyster.Interp.outputs)

(* {1 PyRTL rendering} *)

let test_pyrtl_exprs () =
  let e =
    Oyster.Ast.Ite
      ( Oyster.Ast.Binop (Oyster.Ast.Eq, Oyster.Ast.Var "op", Oyster.Ast.Const (b 7 3)),
        Oyster.Ast.Const (b 2 1),
        Oyster.Ast.Const (b 2 0) )
  in
  Alcotest.(check string) "mux rendering"
    "mux((op == 0x03), falsecase=0x0, truecase=0x1)"
    (Hdl.Pyrtl.expr_to_string e);
  Alcotest.(check string) "slice rendering" "instr[0:7]"
    (Hdl.Pyrtl.expr_to_string (Oyster.Ast.Extract (6, 0, Oyster.Ast.Var "instr")))

let test_loc_measures () =
  (* a chain of n if-then-else cases counts as n+1 lines *)
  let rec chain n =
    if n = 0 then Oyster.Ast.Const (b 4 0)
    else Oyster.Ast.Ite (Oyster.Ast.Var "c", Oyster.Ast.Const (b 4 n), chain (n - 1))
  in
  Alcotest.(check int) "bindings loc" (5 + 1)
    (Hdl.Pyrtl.bindings_loc [ ("sig", chain 5) ]);
  let per_instr = [ ("ADD", [ ("a", b 2 1); ("b", b 1 0) ]); ("SUB", [ ("a", b 2 2) ]) ] in
  (* header + 2 instr lines + 3 signal lines + 1 shared = 7 *)
  Alcotest.(check int) "generated loc" 7
    (Hdl.Pyrtl.generated_loc
       ~pre_exprs:[ ("ADD", Oyster.Ast.Var "pa"); ("SUB", Oyster.Ast.Var "ps") ]
       ~per_instr ~shared:[ ("enc", b 2 3) ])

let () =
  Alcotest.run "hdl"
    [ ("builder",
       [ Alcotest.test_case "roundtrip" `Quick test_builder_roundtrip;
         Alcotest.test_case "width errors" `Quick test_width_errors;
         Alcotest.test_case "select" `Quick test_select;
         Alcotest.test_case "concat/bits" `Quick test_concat_all_and_bits ]);
      ("pyrtl",
       [ Alcotest.test_case "expressions" `Quick test_pyrtl_exprs;
         Alcotest.test_case "loc measures" `Quick test_loc_measures ]) ]
