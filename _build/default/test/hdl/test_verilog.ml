(* Tests for the Verilog backend: structural checks on the emitted text for
   every case-study design (a Verilog simulator is not available in this
   environment, so the cross-validation is structural + the fact that the
   same design simulates correctly through the Oyster interpreter). *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let check_structure name design =
  let v = Hdl.Verilog.of_design design in
  let check what c =
    Alcotest.(check bool) (name ^ ": " ^ what) true c
  in
  check "module header" (contains v ("module " ^ design.Oyster.Ast.name ^ "("));
  check "endmodule" (contains v "endmodule");
  check "clocked block" (contains v "always @(posedge clk)");
  (* every register appears as a reg declaration and is assigned *)
  List.iter
    (fun (n, w) ->
      check (n ^ " declared") (contains v (Printf.sprintf "reg [%d:0] %s = 0;" (w - 1) n)))
    (Oyster.Ast.registers design);
  (* every output appears in the port list and is assigned *)
  List.iter
    (fun (n, _) -> check (n ^ " assigned") (contains v ("assign " ^ n ^ " = ")))
    (Oyster.Ast.outputs design);
  (* memories become arrays *)
  List.iter
    (fun (n, _, _) -> check (n ^ " array") (contains v (n ^ " [0:")))
    (Oyster.Ast.memories design);
  (* balanced structure: one endmodule, no unprintable holes *)
  check "no holes leaked" (not (contains v "??"))

let test_reference_designs () =
  check_structure "alu" (Designs.Alu.reference_design ());
  check_structure "accumulator" (Designs.Accumulator.reference_design ());
  check_structure "rv32-single"
    (Designs.Riscv_single.reference_design Isa.Rv32.RV32I_Zbkc);
  check_structure "rv32-two-stage"
    (Designs.Riscv_two_stage.reference_design Isa.Rv32.RV32I);
  check_structure "crypto" (Designs.Crypto_core.reference_design ());
  check_structure "aes" (Designs.Aes.reference_design ())

let test_clmul_function_emitted () =
  let v =
    Hdl.Verilog.of_design (Designs.Riscv_single.reference_design Isa.Rv32.RV32I_Zbkc)
  in
  Alcotest.(check bool) "clmul32 function" true (contains v "function [31:0] clmul32(");
  Alcotest.(check bool) "clmulh32 function" true (contains v "function [31:0] clmulh32(")

let test_rom_initialized () =
  let v = Hdl.Verilog.of_design (Designs.Aes.reference_design ()) in
  Alcotest.(check bool) "sbox rom" true (contains v "sbox [0:255]");
  Alcotest.(check bool) "sbox[0] = 0x63" true (contains v "sbox[0] = 8'h63;");
  Alcotest.(check bool) "sbox[255] = 0x16" true (contains v "sbox[255] = 8'h16;")

let test_holes_rejected () =
  match Hdl.Verilog.of_design (Designs.Alu.sketch ()) with
  | exception Hdl.Verilog.Verilog_error _ -> ()
  | _ -> Alcotest.fail "expected rejection of a sketch with holes"

let test_synthesized_roundtrip () =
  (* synthesize, emit Verilog, and check the generated control's pre wires
     survive into the RTL *)
  match Synth.Engine.synthesize (Designs.Alu.problem ()) with
  | Synth.Engine.Solved s ->
      let v = Hdl.Verilog.of_design s.Synth.Engine.completed in
      Alcotest.(check bool) "pre wires present" true
        (contains v "pre_SUB" || contains v "pre_ADD");
      Alcotest.(check bool) "filled hole present" true (contains v "wire [1:0] alu_sel")
  | _ -> Alcotest.fail "synthesis failed"

let () =
  Alcotest.run "verilog"
    [ ("emission",
       [ Alcotest.test_case "reference designs" `Quick test_reference_designs;
         Alcotest.test_case "clmul functions" `Quick test_clmul_function_emitted;
         Alcotest.test_case "rom initialization" `Quick test_rom_initialized;
         Alcotest.test_case "holes rejected" `Quick test_holes_rejected;
         Alcotest.test_case "synthesized design" `Quick test_synthesized_roundtrip ]) ]
