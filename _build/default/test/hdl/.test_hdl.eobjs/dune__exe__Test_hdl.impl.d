test/hdl/test_hdl.ml: Alcotest Bitvec Hdl List Oyster
