test/hdl/test_hdl.mli:
