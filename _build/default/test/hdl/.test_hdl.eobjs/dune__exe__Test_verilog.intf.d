test/hdl/test_verilog.mli:
