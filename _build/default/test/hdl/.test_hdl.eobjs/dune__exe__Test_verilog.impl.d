test/hdl/test_verilog.ml: Alcotest Designs Hdl Isa List Oyster Printf String Synth
