test/oyster/test_fuzz.mli:
