test/oyster/gen_designs.ml: Array Bitvec List Oyster Printf Random
