test/oyster/test_oyster.ml: Alcotest Array Ast Bitvec Hashtbl Interp List Oyster Parser Printer Printf Random String Symbolic Term Typecheck Vcd
