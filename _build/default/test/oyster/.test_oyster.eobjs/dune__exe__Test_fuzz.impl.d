test/oyster/test_fuzz.ml: Alcotest Array Bitvec Gen_designs Hashtbl Hdl List Netlist Oyster Printf Random String Term
