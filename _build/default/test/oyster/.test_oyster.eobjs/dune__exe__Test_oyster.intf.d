test/oyster/test_oyster.mli:
