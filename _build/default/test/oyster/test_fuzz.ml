(* Cross-cutting fuzz properties over randomly generated well-typed
   designs (Gen_designs): every backend must handle every design, and the
   symbolic evaluator must agree with the concrete interpreter. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let seeds = List.init 60 (fun i -> i + 1)

let test_typecheck_and_roundtrip () =
  List.iter
    (fun seed ->
      let d = Gen_designs.generate seed in
      (try ignore (Oyster.Typecheck.check d)
       with Oyster.Typecheck.Type_error m ->
         Alcotest.failf "seed %d: generated design ill-typed: %s" seed m);
      let text = Oyster.Printer.design_to_string d in
      let d' =
        try Oyster.Parser.parse_design text
        with Oyster.Parser.Parse_error m ->
          Alcotest.failf "seed %d: reparse failed: %s" seed m
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d round-trips" seed)
        text
        (Oyster.Printer.design_to_string d'))
    seeds

let test_symbolic_matches_interp () =
  List.iter
    (fun seed ->
      let d = Gen_designs.generate seed in
      let cycles = 2 in
      let trace = Oyster.Symbolic.eval d ~cycles in
      let rng = Random.State.make [| seed; 777 |] in
      let rand w = Bitvec.of_bits (Array.init w (fun _ -> Random.State.bool rng)) in
      (* concrete stimulus *)
      let input_val = Hashtbl.create 8 in
      List.iter
        (fun (n, w) ->
          for c = 1 to cycles do
            Hashtbl.replace input_val (n, c) (rand w)
          done)
        (Oyster.Ast.inputs d);
      let reg_init =
        List.map (fun (n, w) -> (n, rand w)) (Oyster.Ast.registers d)
      in
      let mem_image =
        Array.init (1 lsl Gen_designs.mem_aw) (fun _ -> rand Gen_designs.mem_dw)
      in
      (* concrete run *)
      let st =
        Oyster.Interp.init
          ~mem_init:(fun name _ dw addr ->
            if name = "m" then mem_image.(Bitvec.to_int_exn addr)
            else Bitvec.zero dw)
          d
      in
      List.iter (fun (n, v) -> Oyster.Interp.set_register st n v) reg_init;
      let out_names = List.map fst (Oyster.Ast.outputs d) in
      let concrete = ref [] in
      for c = 1 to cycles do
        let r =
          Oyster.Interp.step
            ~inputs:(fun name _ -> Hashtbl.find input_val (name, c))
            st
        in
        concrete :=
          List.map (fun n -> (n, c, List.assoc n r.Oyster.Interp.outputs)) out_names
          @ !concrete
      done;
      (* symbolic terms specialized to the same stimulus *)
      let p = trace.Oyster.Symbolic.prefix in
      let env =
        {
          Term.lookup_var =
            (fun name w ->
              if String.length name > String.length p
                 && String.sub name 0 (String.length p) = p
              then begin
                let rest =
                  String.sub name (String.length p)
                    (String.length name - String.length p)
                in
                match String.split_on_char '!' rest with
                | [ "reg"; n ] -> Some (List.assoc n reg_init)
                | [ "in"; n; c ] -> Some (Hashtbl.find input_val (n, int_of_string c))
                | _ -> Some (Bitvec.zero w)
              end
              else Some (Bitvec.zero w));
          Term.lookup_read =
            (fun m addr ->
              if m.Term.mem_name = p ^ "mem!m" then
                Some mem_image.(Bitvec.to_int_exn addr)
              else None);
        }
      in
      List.iter
        (fun (n, c, expected) ->
          let got = Term.eval env (Oyster.Symbolic.wire_at trace ~cycle:c n) in
          Alcotest.check bv
            (Printf.sprintf "seed %d %s cycle %d" seed n c)
            expected got)
        (List.rev !concrete);
      (* final state: registers and all memory cells *)
      List.iter
        (fun (n, _) ->
          Alcotest.check bv
            (Printf.sprintf "seed %d final %s" seed n)
            (Oyster.Interp.get_register st n)
            (Term.eval env (Oyster.Symbolic.reg_at trace ~state:cycles n)))
        (Oyster.Ast.registers d);
      for a = 0 to (1 lsl Gen_designs.mem_aw) - 1 do
        let addr = Bitvec.of_int ~width:Gen_designs.mem_aw a in
        Alcotest.check bv
          (Printf.sprintf "seed %d mem[%d]" seed a)
          (Oyster.Interp.read_mem st "m" addr)
          (Term.eval env
             (Oyster.Symbolic.read_mem_at trace ~state:cycles "m" (Term.const addr)))
      done)
    seeds

let test_backends_accept () =
  List.iter
    (fun seed ->
      let d = Gen_designs.generate seed in
      (* netlist, both modes; the optimizer never grows the gate count *)
      let raw = Netlist.of_design ~optimize:false d in
      let opt = Netlist.of_design ~optimize:true d in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d netlist monotone" seed)
        true
        (opt.Netlist.total_gates <= raw.Netlist.total_gates);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d dff count stable" seed)
        true
        (opt.Netlist.dffs = raw.Netlist.dffs);
      (* verilog structural emission *)
      let v = Hdl.Verilog.of_design d in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d verilog" seed)
        true
        (String.length v > 0))
    seeds

let () =
  Alcotest.run "oyster-fuzz"
    [ ("fuzz",
       [ Alcotest.test_case "typecheck + text round-trip" `Quick
           test_typecheck_and_roundtrip;
         Alcotest.test_case "symbolic matches interpreter" `Quick
           test_symbolic_matches_interp;
         Alcotest.test_case "netlist + verilog backends" `Quick
           test_backends_accept ]) ]
