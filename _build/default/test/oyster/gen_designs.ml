(* Random well-typed Oyster designs, for cross-cutting fuzz properties:
   the typechecker accepts them by construction, the printer/parser must
   round-trip them, the symbolic evaluator must agree with the interpreter
   on random stimulus, the netlist and Verilog backends must accept them.

   A design gets a few inputs, registers, one small memory, one ROM, a
   chain of wires (each a random expression over everything defined so
   far), register updates, a memory write, and outputs. *)

let widths = [ 1; 2; 4; 8 ]

type gctx = {
  rng : Random.State.t;
  mutable avail : (string * int) list;  (* readable name, width *)
}

let pick ctx l = List.nth l (Random.State.int ctx.rng (List.length l))

let pick_width ctx = pick ctx widths

(* Build a random expression of the requested width from available names. *)
let rec gen_expr ctx depth w : Oyster.Ast.expr =
  let candidates = List.filter (fun (_, w') -> w' = w) ctx.avail in
  let leaf () =
    if candidates <> [] && Random.State.bool ctx.rng then
      Oyster.Ast.Var (fst (pick ctx candidates))
    else
      Oyster.Ast.Const
        (Bitvec.of_bits (Array.init w (fun _ -> Random.State.bool ctx.rng)))
  in
  if depth <= 0 then leaf ()
  else
    match Random.State.int ctx.rng 9 with
    | 0 -> leaf ()
    | 1 ->
        let op =
          pick ctx
            [ Oyster.Ast.And; Oyster.Ast.Or; Oyster.Ast.Xor; Oyster.Ast.Add;
              Oyster.Ast.Sub; Oyster.Ast.Mul; Oyster.Ast.Udiv; Oyster.Ast.Urem;
              Oyster.Ast.Sdiv; Oyster.Ast.Srem; Oyster.Ast.Clmul; Oyster.Ast.Rol ]
        in
        Oyster.Ast.Binop (op, gen_expr ctx (depth - 1) w, gen_expr ctx (depth - 1) w)
    | 2 ->
        let op = pick ctx [ Oyster.Ast.Shl; Oyster.Ast.Lshr; Oyster.Ast.Ashr ] in
        let wamt = pick_width ctx in
        Oyster.Ast.Binop (op, gen_expr ctx (depth - 1) w, gen_expr ctx (depth - 1) wamt)
    | 3 ->
        Oyster.Ast.Ite
          (gen_expr ctx (depth - 1) 1, gen_expr ctx (depth - 1) w,
           gen_expr ctx (depth - 1) w)
    | 4 ->
        (* extract from something wider *)
        let wider = w + Random.State.int ctx.rng 5 in
        let low = Random.State.int ctx.rng (wider - w + 1) in
        Oyster.Ast.Extract (low + w - 1, low, gen_expr ctx (depth - 1) wider)
    | 5 when w >= 2 ->
        let wl = 1 + Random.State.int ctx.rng (w - 1) in
        Oyster.Ast.Concat
          (gen_expr ctx (depth - 1) (w - wl), gen_expr ctx (depth - 1) wl)
    | 6 when w >= 2 ->
        let wi = 1 + Random.State.int ctx.rng (w - 1) in
        if Random.State.bool ctx.rng then Oyster.Ast.Zext (gen_expr ctx (depth - 1) wi, w)
        else Oyster.Ast.Sext (gen_expr ctx (depth - 1) wi, w)
    | 7 when w = 1 ->
        let wc = pick_width ctx in
        let op =
          pick ctx
            [ Oyster.Ast.Eq; Oyster.Ast.Ne; Oyster.Ast.Ult; Oyster.Ast.Sle;
              Oyster.Ast.Sgt ]
        in
        Oyster.Ast.Binop (op, gen_expr ctx (depth - 1) wc, gen_expr ctx (depth - 1) wc)
    | 8 when w = 1 ->
        let wa = pick_width ctx in
        Oyster.Ast.Unop
          (pick ctx [ Oyster.Ast.RedOr; Oyster.Ast.RedAnd; Oyster.Ast.RedXor ],
           gen_expr ctx (depth - 1) wa)
    | _ -> Oyster.Ast.Unop (pick ctx [ Oyster.Ast.Not; Oyster.Ast.Neg ], gen_expr ctx (depth - 1) w)

let mem_dw = 8
let mem_aw = 3
let rom_dw = 4
let rom_aw = 2

let generate seed : Oyster.Ast.design =
  let ctx = { rng = Random.State.make [| seed; 4242 |]; avail = [] } in
  let n_inputs = 1 + Random.State.int ctx.rng 3 in
  let inputs = List.init n_inputs (fun i -> (Printf.sprintf "in%d" i, pick_width ctx)) in
  let n_regs = 1 + Random.State.int ctx.rng 2 in
  let regs = List.init n_regs (fun i -> (Printf.sprintf "r%d" i, pick_width ctx)) in
  ctx.avail <- inputs @ regs;
  let rom_data =
    Array.init (1 lsl rom_aw) (fun _ ->
        Bitvec.of_bits (Array.init rom_dw (fun _ -> Random.State.bool ctx.rng)))
  in
  let decls =
    List.map (fun (n, w) -> Oyster.Ast.Input (n, w)) inputs
    @ List.map (fun (n, w) -> Oyster.Ast.Register (n, w)) regs
    @ [ Oyster.Ast.Memory { mem_name = "m"; addr_width = mem_aw; data_width = mem_dw };
        Oyster.Ast.Rom { rom_name = "t"; rom_addr_width = rom_aw; rom_data } ]
  in
  (* wire chain; memory/rom reads mixed in through dedicated wires *)
  let n_wires = 2 + Random.State.int ctx.rng 5 in
  let wire_decls = ref [] in
  let stmts = ref [] in
  for i = 0 to n_wires - 1 do
    let w = pick_width ctx in
    let name = Printf.sprintf "w%d" i in
    let e =
      match Random.State.int ctx.rng 5 with
      | 0 ->
          (* memory read: width must match the data width *)
          if w = mem_dw then Oyster.Ast.Read ("m", gen_expr ctx 2 mem_aw)
          else Oyster.Ast.Zext (Oyster.Ast.Extract (w - 1, 0, Oyster.Ast.Read ("m", gen_expr ctx 2 mem_aw)), w)
      | 1 when w >= rom_dw ->
          Oyster.Ast.Zext (Oyster.Ast.RomRead ("t", gen_expr ctx 2 rom_aw), w)
      | _ -> gen_expr ctx 3 w
    in
    wire_decls := Oyster.Ast.Wire (name, w) :: !wire_decls;
    stmts := Oyster.Ast.Assign (name, e) :: !stmts;
    ctx.avail <- (name, w) :: ctx.avail
  done;
  (* register updates *)
  List.iter
    (fun (n, w) -> stmts := Oyster.Ast.Assign (n, gen_expr ctx 3 w) :: !stmts)
    regs;
  (* one memory write *)
  stmts :=
    Oyster.Ast.Write
      { mem = "m"; addr = gen_expr ctx 2 mem_aw; data = gen_expr ctx 2 mem_dw;
        enable = gen_expr ctx 2 1 }
    :: !stmts;
  (* outputs *)
  let n_outs = 1 + Random.State.int ctx.rng 2 in
  let out_decls = ref [] in
  for i = 0 to n_outs - 1 do
    let w = pick_width ctx in
    let name = Printf.sprintf "out%d" i in
    out_decls := Oyster.Ast.Output (name, w) :: !out_decls;
    stmts := Oyster.Ast.Assign (name, gen_expr ctx 3 w) :: !stmts
  done;
  {
    Oyster.Ast.name = Printf.sprintf "fuzz%d" seed;
    decls = decls @ List.rev !wire_decls @ List.rev !out_decls;
    stmts = List.rev !stmts;
  }
