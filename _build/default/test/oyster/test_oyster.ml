(* Tests for the Oyster IR: typechecking, concrete interpretation, the
   symbolic evaluator (cross-checked against the interpreter), printing and
   parsing round-trips, and hole filling. *)

open Oyster

let bv = Alcotest.testable Bitvec.pp Bitvec.equal
let b vlen v = Bitvec.of_int ~width:vlen v

(* {1 Example designs} *)

(* A two-input adder machine with an accumulator register, a memory and a
   rom, exercising every construct. *)
let full_design =
  {
    Ast.name = "full";
    decls =
      [ Ast.Input ("a", 8);
        Ast.Input ("b", 8);
        Ast.Input ("we", 1);
        Ast.Output ("out", 8);
        Ast.Wire ("sum", 8);
        Ast.Register ("acc", 8);
        Ast.Memory { mem_name = "m"; addr_width = 3; data_width = 8 };
        Ast.Rom
          { rom_name = "sq"; rom_addr_width = 3;
            rom_data = Array.init 8 (fun i -> b 8 (i * i)) } ];
    stmts =
      [ Ast.Assign ("sum", Ast.Binop (Ast.Add, Ast.Var "a", Ast.Var "b"));
        Ast.Assign
          ( "acc",
            Ast.Binop
              ( Ast.Add,
                Ast.Var "acc",
                Ast.Binop
                  (Ast.Xor, Ast.Var "sum",
                   Ast.RomRead ("sq", Ast.Extract (2, 0, Ast.Var "a"))) ) );
        Ast.Write
          { mem = "m"; addr = Ast.Extract (2, 0, Ast.Var "b");
            data = Ast.Var "sum"; enable = Ast.Var "we" };
        Ast.Assign
          ("out", Ast.Binop (Ast.Add, Ast.Var "acc", Ast.Read ("m", Ast.Extract (2, 0, Ast.Var "a"))))
      ];
  }

(* The paper's accumulator (Fig. 3) with holes for state encodings and the
   state transition. *)
let acc_sketch =
  {
    Ast.name = "accumulator";
    decls =
      [ Ast.Input ("reset", 1);
        Ast.Input ("go", 1);
        Ast.Input ("stop", 1);
        Ast.Input ("val", 2);
        Ast.Output ("out", 8);
        Ast.Register ("acc", 8);
        Ast.Register ("state", 2);
        Ast.Hole
          { hole_name = "next_state"; hole_width = 2; kind = Ast.Per_instruction;
            deps = [ "state"; "reset"; "go"; "stop" ] };
        Ast.Hole
          { hole_name = "enc_reset"; hole_width = 2; kind = Ast.Shared; deps = [] } ];
    stmts =
      [ Ast.Assign ("state", Ast.Var "next_state");
        Ast.Assign
          ( "acc",
            Ast.Ite
              ( Ast.Binop (Ast.Eq, Ast.Var "state", Ast.Var "enc_reset"),
                Ast.Const (Bitvec.zero 8),
                Ast.Binop (Ast.Add, Ast.Var "acc", Ast.Zext (Ast.Var "val", 8)) ) );
        Ast.Assign ("out", Ast.Var "acc")
      ];
  }

(* {1 Typechecker} *)

let tc_ok d = ignore (Typecheck.check d)

let tc_fails ?(msg = "") d =
  match Typecheck.check d with
  | exception Typecheck.Type_error m ->
      if msg <> "" && not (String.length m >= String.length msg
                           && String.sub m 0 (String.length msg) = msg) then
        Alcotest.failf "wrong error: got %S, wanted prefix %S" m msg
  | _ -> Alcotest.fail "expected type error"

let test_typecheck_accepts () =
  tc_ok full_design;
  tc_ok acc_sketch

let test_typecheck_rejects () =
  let base name decls stmts = { Ast.name; decls; stmts } in
  (* width mismatch *)
  tc_fails
    (base "w1"
       [ Ast.Wire ("x", 8) ]
       [ Ast.Assign ("x", Ast.Const (Bitvec.zero 4)) ]);
  (* read before assignment *)
  tc_fails ~msg:"y read before assignment"
    (base "w2"
       [ Ast.Wire ("x", 4); Ast.Wire ("y", 4) ]
       [ Ast.Assign ("x", Ast.Var "y"); Ast.Assign ("y", Ast.Var "x") ]);
  (* duplicate declaration *)
  tc_fails ~msg:"duplicate declaration"
    (base "w3" [ Ast.Wire ("x", 4); Ast.Input ("x", 4) ] []);
  (* unassigned wire *)
  tc_fails ~msg:"x is never assigned" (base "w4" [ Ast.Wire ("x", 4) ] []);
  (* assignment to input *)
  tc_fails ~msg:"assignment to input"
    (base "w5" [ Ast.Input ("x", 4) ] [ Ast.Assign ("x", Ast.Var "x") ]);
  (* double assignment of a wire *)
  tc_fails ~msg:"x assigned twice"
    (base "w6"
       [ Ast.Wire ("x", 4) ]
       [ Ast.Assign ("x", Ast.Const (Bitvec.zero 4));
         Ast.Assign ("x", Ast.Const (Bitvec.zero 4)) ]);
  (* ite with non-boolean condition *)
  tc_fails ~msg:"ite condition"
    (base "w7"
       [ Ast.Wire ("x", 4); Ast.Input ("c", 2) ]
       [ Ast.Assign
           ("x", Ast.Ite (Ast.Var "c", Ast.Const (Bitvec.zero 4), Ast.Const (Bitvec.zero 4)))
       ]);
  (* rom of wrong size *)
  tc_fails ~msg:"rom r has 3 entries"
    (base "w8"
       [ Ast.Rom { rom_name = "r"; rom_addr_width = 2; rom_data = Array.make 3 (Bitvec.zero 4) } ]
       []);
  (* memory as variable *)
  tc_fails ~msg:"memory m used as a variable"
    (base "w9"
       [ Ast.Memory { mem_name = "m"; addr_width = 2; data_width = 4 }; Ast.Wire ("x", 4) ]
       [ Ast.Assign ("x", Ast.Var "m") ])

(* {1 Concrete interpreter} *)

let test_interp () =
  let st = Interp.init full_design in
  let inputs_of a bvalue we name _w =
    match name with
    | "a" -> b 8 a
    | "b" -> b 8 bvalue
    | "we" -> b 1 we
    | _ -> assert false
  in
  (* cycle 1: a=3 b=5 we=1: sum=8, writes m[5]=8, acc <- 0 + (8 xor sq[3]=9) = 1,
     out = acc(0) + m[3](0) = 0 *)
  let r1 = Interp.step ~inputs:(inputs_of 3 5 1) st in
  Alcotest.check bv "out cycle1" (b 8 0) (List.assoc "out" r1.Interp.outputs);
  Alcotest.check bv "acc after c1" (b 8 1) (Interp.get_register st "acc");
  Alcotest.check bv "m[5]" (b 8 8) (Interp.read_mem st "m" (b 3 5));
  (* cycle 2: a=5 b=2 we=0: out = acc(1) + m[5](8) = 9; m unchanged *)
  let r2 = Interp.step ~inputs:(inputs_of 5 2 0) st in
  Alcotest.check bv "out cycle2" (b 8 9) (List.assoc "out" r2.Interp.outputs);
  Alcotest.check bv "m[2] unwritten" (b 8 0) (Interp.read_mem st "m" (b 3 2));
  (* registers update at end of cycle: acc = 1 + (7 xor sq[5]=25) = 1 + 30 = 31 *)
  Alcotest.check bv "acc after c2" (b 8 31) (Interp.get_register st "acc")

let test_interp_unbound_hole () =
  let st = Interp.init acc_sketch in
  match Interp.step ~inputs:(fun _ w -> Bitvec.zero w) st with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected runtime error for unbound hole"

let test_interp_hole_binding () =
  let st = Interp.init acc_sketch in
  let hole_value name w =
    match name with
    | "next_state" -> Bitvec.zero w
    | "enc_reset" -> Bitvec.zero w
    | _ -> assert false
  in
  (* state starts 0 = enc_reset, so acc resets to 0 each cycle *)
  let r =
    Interp.step ~inputs:(fun _ w -> Bitvec.ones w) ~hole_value st
  in
  ignore r;
  Alcotest.check bv "acc reset" (b 8 0) (Interp.get_register st "acc")

(* {1 Symbolic vs concrete consistency} *)

let test_symbolic_matches_concrete () =
  let cycles = 3 in
  let trace = Symbolic.eval full_design ~cycles in
  (* random concrete stimulus *)
  let rng = Random.State.make [| 7 |] in
  for _trial = 1 to 25 do
    let input_val = Hashtbl.create 16 in
    for c = 1 to cycles do
      Hashtbl.replace input_val ("a", c) (b 8 (Random.State.int rng 256));
      Hashtbl.replace input_val ("b", c) (b 8 (Random.State.int rng 256));
      Hashtbl.replace input_val ("we", c) (b 1 (Random.State.int rng 2))
    done;
    let acc0 = b 8 (Random.State.int rng 256) in
    let mem_image = Array.init 8 (fun _ -> b 8 (Random.State.int rng 256)) in
    (* concrete run *)
    let st =
      Interp.init
        ~mem_init:(fun _ _ _ addr -> mem_image.(Bitvec.to_int_exn addr))
        full_design
    in
    Interp.set_register st "acc" acc0;
    let concrete_outs = ref [] in
    for c = 1 to cycles do
      let r =
        Interp.step
          ~inputs:(fun name _ -> Hashtbl.find input_val (name, c))
          st
      in
      concrete_outs := List.assoc "out" r.Interp.outputs :: !concrete_outs
    done;
    let concrete_outs = List.rev !concrete_outs in
    (* symbolic evaluation specialized with the same stimulus *)
    let p = trace.Symbolic.prefix in
    let env =
      {
        Term.lookup_var =
          (fun name w ->
            if name = p ^ "reg!acc" then Some acc0
            else
              (* inputs: <p>in!<name>!<c> *)
              match String.index_opt name '!' with
              | Some _ when String.length name > String.length p
                            && String.sub name 0 (String.length p) = p -> (
                  let rest = String.sub name (String.length p) (String.length name - String.length p) in
                  match String.split_on_char '!' rest with
                  | [ "in"; nm; c ] -> Some (Hashtbl.find input_val (nm, int_of_string c))
                  | _ -> Some (Bitvec.zero w))
              | _ -> None);
        Term.lookup_read =
          (fun m addr ->
            if m.Term.mem_name = p ^ "mem!m" then
              Some mem_image.(Bitvec.to_int_exn addr)
            else None);
      }
    in
    List.iteri
      (fun i expected ->
        let sym_out = Symbolic.wire_at trace ~cycle:(i + 1) "out" in
        let got = Term.eval env sym_out in
        Alcotest.check bv (Printf.sprintf "out cycle %d" (i + 1)) expected got)
      concrete_outs;
    (* final register state matches *)
    let sym_acc = Symbolic.reg_at trace ~state:cycles "acc" in
    Alcotest.check bv "final acc" (Interp.get_register st "acc") (Term.eval env sym_acc);
    (* memory reads through the write log match *)
    for a = 0 to 7 do
      let sym_read =
        Symbolic.read_mem_at trace ~state:cycles "m" (Term.const (b 3 a))
      in
      Alcotest.check bv
        (Printf.sprintf "mem[%d]" a)
        (Interp.read_mem st "m" (b 3 a))
        (Term.eval env sym_read)
    done
  done

let test_symbolic_holes () =
  let trace = Symbolic.eval acc_sketch ~cycles:1 in
  Alcotest.(check int) "two holes seen" 2 (List.length trace.Symbolic.hole_terms);
  (* hole terms are variables named <p>hole!<name> *)
  List.iter
    (fun (name, t) ->
      match t.Term.node with
      | Term.Var v ->
          Alcotest.(check string) "hole var name"
            (trace.Symbolic.prefix ^ "hole!" ^ name) v
      | _ -> Alcotest.fail "hole term is not a variable")
    trace.Symbolic.hole_terms

(* {1 Printing and parsing} *)

let test_roundtrip () =
  List.iter
    (fun d ->
      let text = Printer.design_to_string d in
      let d' = Parser.parse_design text in
      let text' = Printer.design_to_string d' in
      Alcotest.(check string) (d.Ast.name ^ " round-trips") text text';
      ignore (Typecheck.check d'))
    [ full_design; acc_sketch ]

let test_parse_errors () =
  let bad s =
    match Parser.parse_design s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "";
  bad "design d {";
  bad "design d { input x }";
  bad "design d { x := (bogus y z) }";
  bad "design d { wire x 4 x := 4'x0 } trailing";
  bad "design d { x := }"

let test_loc () =
  (* loc counts non-blank rendered lines: at least one per declaration and
     statement, plus the design header and closing brace *)
  Alcotest.(check bool) "loc lower bound" true
    (Printer.loc full_design
    >= List.length full_design.Ast.decls + List.length full_design.Ast.stmts + 2);
  (* rendering is deterministic *)
  Alcotest.(check int) "loc stable" (Printer.loc full_design) (Printer.loc full_design)

(* {1 fill_holes} *)

let test_fill_holes () =
  let filled =
    Ast.fill_holes acc_sketch
      [ ("next_state",
         Ast.Ite
           ( Ast.Var "reset",
             Ast.Const (Bitvec.zero 2),
             Ast.Var "state" ));
        ("enc_reset", Ast.Const (Bitvec.zero 2)) ]
  in
  ignore (Typecheck.check filled);
  Alcotest.(check int) "no holes left" 0 (List.length (Ast.holes filled));
  (* the filled design simulates without a hole callback *)
  let st = Interp.init filled in
  let r = Interp.step ~inputs:(fun _ w -> Bitvec.ones w) st in
  ignore r;
  Alcotest.check bv "acc stays reset" (b 8 0) (Interp.get_register st "acc")

(* {1 VCD waveforms} *)

let test_vcd () =
  let filled =
    Ast.fill_holes acc_sketch
      [ ("next_state", Ast.Const (Bitvec.zero 2));
        ("enc_reset", Ast.Const (Bitvec.zero 2)) ]
  in
  let vcd =
    Vcd.simulate filled ~cycles:3
      ~inputs:(fun name w -> if name = "val" then b 2 3 else Bitvec.zero w)
  in
  let contains needle =
    let lh = String.length vcd and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub vcd i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "$enddefinitions $end");
  Alcotest.(check bool) "acc declared" true (contains "$var wire 8");
  Alcotest.(check bool) "time 0" true (contains "#0\n");
  Alcotest.(check bool) "time 20" true (contains "#20\n");
  Alcotest.(check bool) "value dump" true (contains "b00000000")

let () =
  Alcotest.run "oyster"
    [ ("typecheck",
       [ Alcotest.test_case "accepts" `Quick test_typecheck_accepts;
         Alcotest.test_case "rejects" `Quick test_typecheck_rejects ]);
      ("interp",
       [ Alcotest.test_case "full design" `Quick test_interp;
         Alcotest.test_case "unbound hole" `Quick test_interp_unbound_hole;
         Alcotest.test_case "hole binding" `Quick test_interp_hole_binding ]);
      ("symbolic",
       [ Alcotest.test_case "matches concrete" `Quick test_symbolic_matches_concrete;
         Alcotest.test_case "holes" `Quick test_symbolic_holes ]);
      ("text",
       [ Alcotest.test_case "round-trip" `Quick test_roundtrip;
         Alcotest.test_case "parse errors" `Quick test_parse_errors;
         Alcotest.test_case "loc" `Quick test_loc ]);
      ("fill-holes", [ Alcotest.test_case "fill" `Quick test_fill_holes ]);
      ("vcd", [ Alcotest.test_case "waveforms" `Quick test_vcd ]) ]
