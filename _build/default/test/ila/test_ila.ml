(* Tests for the ILA layer: the specification builder's error discipline,
   concrete spec evaluation, abstraction-function validation, and the
   pre/postcondition compiler (including memory frame conditions, port
   disambiguation, and the addr_via mechanism). *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal
let b w n = Bitvec.of_int ~width:w n

(* {1 Spec builder} *)

let test_spec_errors () =
  let expect_fail f =
    match f () with
    | exception Ila.Spec.Spec_error _ -> ()
    | _ -> Alcotest.fail "expected Spec_error"
  in
  expect_fail (fun () ->
      let s = Ila.Spec.create "d1" in
      let _ = Ila.Spec.new_bv_state s "x" 8 in
      Ila.Spec.new_bv_input s "x" 8);
  expect_fail (fun () ->
      let s = Ila.Spec.create "d2" in
      let i = Ila.Spec.new_instr s "I" in
      Ila.Spec.set_decode i Ila.Expr.tru;
      Ila.Spec.set_decode i Ila.Expr.tru);
  expect_fail (fun () ->
      let s = Ila.Spec.create "d3" in
      let x = Ila.Spec.new_bv_state s "x" 8 in
      let i = Ila.Spec.new_instr s "I" in
      Ila.Spec.set_update i "x" x;
      Ila.Spec.set_update i "x" x);
  expect_fail (fun () ->
      let s = Ila.Spec.create "d4" in
      let _ = Ila.Spec.new_instr s "I" in
      ignore (Ila.Spec.new_instr s "I"));
  expect_fail (fun () ->
      let s = Ila.Spec.create "d5" in
      ignore (Ila.Spec.new_mem_const s "t" ~addr_width:3 (Array.make 7 (Bitvec.zero 4))))

let test_spec_concrete_mutual_exclusion () =
  (* two instructions decoding simultaneously must be detected *)
  let s = Ila.Spec.create "over" in
  let x = Ila.Spec.new_bv_state s "x" 4 in
  let i1 = Ila.Spec.new_instr s "A" in
  Ila.Spec.set_decode i1 Ila.Expr.(x == of_int ~width:4 0);
  let i2 = Ila.Spec.new_instr s "B" in
  Ila.Spec.set_decode i2 Ila.Expr.(x < of_int ~width:4 2);
  let st = Ila.Spec.init_state s in
  match Ila.Spec.step_concrete s st ~inputs:(fun _ -> assert false) with
  | exception Ila.Spec.Spec_error _ -> ()
  | _ -> Alcotest.fail "expected mutual-exclusion failure"

let test_spec_stall () =
  let s = Ila.Spec.create "stall" in
  let x = Ila.Spec.new_bv_state s "x" 4 in
  let i = Ila.Spec.new_instr s "A" in
  Ila.Spec.set_decode i Ila.Expr.(x == of_int ~width:4 7);
  Ila.Spec.set_update i "x" x;
  let st = Ila.Spec.init_state s in
  Alcotest.(check bool) "no instruction decodes" true
    (Ila.Spec.step_concrete s st ~inputs:(fun _ -> assert false) = None)

let test_table_load () =
  let s = Ila.Spec.create "tabs" in
  let x = Ila.Spec.new_bv_state s "x" 3 in
  let _ =
    Ila.Spec.new_mem_const s "sq" ~addr_width:3
      (Array.init 8 (fun i -> b 8 (i * i)))
  in
  let i = Ila.Spec.new_instr s "A" in
  Ila.Spec.set_decode i Ila.Expr.tru;
  let y = Ila.Spec.new_bv_state s "y" 8 in
  ignore y;
  Ila.Spec.set_update i "y" (Ila.Expr.table_load "sq" x);
  let st = Ila.Spec.init_state s in
  Ila.Spec.set_bv st "x" (b 3 5);
  ignore (Ila.Spec.step_concrete s st ~inputs:(fun _ -> assert false));
  Alcotest.check bv "table result" (b 8 25) (Ila.Spec.get_bv st "y")

(* {1 Abstraction functions} *)

let test_absfun_validation () =
  let expect_fail f =
    match f () with
    | exception Ila.Absfun.Absfun_error _ -> ()
    | _ -> Alcotest.fail "expected Absfun_error"
  in
  expect_fail (fun () -> Ila.Absfun.make ~cycles:0 []);
  expect_fail (fun () ->
      Ila.Absfun.make ~cycles:2
        [ Ila.Absfun.mapping ~spec:"x" ~dp:"x" ~ty:Ila.Absfun.Dregister ~reads:[ 3 ] () ]);
  expect_fail (fun () ->
      Ila.Absfun.make ~cycles:1 ~assumes:[ ("v", 2) ] [])

let test_port_disambiguation () =
  let af =
    Ila.Absfun.make ~cycles:1
      [ Ila.Absfun.mapping ~spec:"mem" ~port:"fetch" ~dp:"i_mem"
          ~ty:Ila.Absfun.Dmemory ~reads:[ 1 ] ();
        Ila.Absfun.mapping ~spec:"mem" ~dp:"d_mem" ~ty:Ila.Absfun.Dmemory
          ~reads:[ 1 ] ~writes:[ 1 ] () ]
  in
  let m1 = Ila.Absfun.read_mapping af "mem" ~port:(Some "fetch") in
  Alcotest.(check string) "fetch port" "i_mem" m1.Ila.Absfun.dp_name;
  let m2 = Ila.Absfun.read_mapping af "mem" ~port:None in
  Alcotest.(check string) "default port" "d_mem" m2.Ila.Absfun.dp_name;
  (* write-capable mappings *)
  Alcotest.(check int) "one writer" 1 (List.length (Ila.Absfun.write_mappings af "mem"))

(* {1 Condition compilation on the ALU case study} *)

let alu_conditions () =
  let design = Designs.Alu.sketch () in
  let trace = Oyster.Symbolic.eval design ~cycles:3 in
  let conds =
    Ila.Conditions.compile (Designs.Alu.spec ()) (Designs.Alu.abstraction ()) trace
  in
  (trace, conds)

let test_conditions_shape () =
  let _, conds = alu_conditions () in
  Alcotest.(check int) "three instructions" 3 (List.length conds);
  List.iter
    (fun c ->
      Alcotest.(check int) "pre is boolean" 1 (Term.width c.Ila.Conditions.pre);
      Alcotest.(check int) "post is boolean" 1 (Term.width c.Ila.Conditions.post);
      (* the regfile frame check introduces exactly one challenge address *)
      Alcotest.(check int) "one challenge" 1 (List.length c.Ila.Conditions.challenges);
      (* assumes conjunction covers the two bubble wires *)
      Alcotest.(check bool) "assumes nontrivial" true
        (not (Term.is_true c.Ila.Conditions.assumes)))
    conds

let test_conditions_satisfiable () =
  (* each instruction's precondition must be satisfiable (else the spec is
     vacuous), and pre /\ assumes /\ post must be satisfiable with the
     reference control values (else the design cannot implement it) *)
  let _, conds = alu_conditions () in
  List.iter
    (fun c ->
      match Solver.check [ c.Ila.Conditions.pre; c.Ila.Conditions.assumes ] with
      | Solver.Sat _ -> ()
      | _ -> Alcotest.failf "pre of %s unsatisfiable" c.Ila.Conditions.instr_name)
    conds

let test_cycle_mismatch_rejected () =
  let design = Designs.Alu.sketch () in
  let trace = Oyster.Symbolic.eval design ~cycles:2 in
  match
    Ila.Conditions.compile (Designs.Alu.spec ()) (Designs.Alu.abstraction ()) trace
  with
  | exception Ila.Conditions.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected cycle-count mismatch error"

let test_missing_write_mapping () =
  (* an instruction updating a state element with no write mapping *)
  let s = Ila.Spec.create "now" in
  let acc = Ila.Spec.new_bv_state s "acc" 8 in
  let i = Ila.Spec.new_instr s "A" in
  Ila.Spec.set_decode i Ila.Expr.tru;
  Ila.Spec.set_update i "acc" acc;
  let design =
    { Oyster.Ast.name = "d";
      decls = [ Oyster.Ast.Register ("acc", 8); Oyster.Ast.Output ("o", 8) ];
      stmts = [ Oyster.Ast.Assign ("o", Oyster.Ast.Var "acc") ] }
  in
  let af =
    Ila.Absfun.make ~cycles:1
      [ Ila.Absfun.mapping ~spec:"acc" ~dp:"acc" ~ty:Ila.Absfun.Dregister
          ~reads:[ 1 ] () ]
  in
  let trace = Oyster.Symbolic.eval design ~cycles:1 in
  match Ila.Conditions.compile s af trace with
  | exception Ila.Conditions.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected missing-write-mapping error"

let test_addr_via () =
  (* fetch through a separate fetch pointer: addr_via substitutes the
     datapath's fetch address for the specification's, making the fetched
     words the same term *)
  let design = Designs.Riscv_two_stage.sketch Isa.Rv32.RV32I in
  let trace = Oyster.Symbolic.eval design ~cycles:2 in
  let conds =
    Ila.Conditions.compile
      (Isa.Rv_spec.spec Isa.Rv32.RV32I)
      (Designs.Riscv_two_stage.abstraction ())
      trace
  in
  let add = List.find (fun c -> c.Ila.Conditions.instr_name = "ADD") conds in
  (* the decode must reference the i_mem read at the *fetch_addr* wire: the
     instruction wire's term appears inside the compiled precondition *)
  let instr_term = Oyster.Symbolic.wire_at trace ~cycle:1 "instruction" in
  let found =
    Term.fold_dag
      (fun acc t -> acc || Term.equal t instr_term)
      false add.Ila.Conditions.pre
  in
  Alcotest.(check bool) "decode shares the fetched instruction term" true found

let () =
  Alcotest.run "ila"
    [ ("spec",
       [ Alcotest.test_case "builder errors" `Quick test_spec_errors;
         Alcotest.test_case "mutual exclusion" `Quick test_spec_concrete_mutual_exclusion;
         Alcotest.test_case "stall" `Quick test_spec_stall;
         Alcotest.test_case "mem const" `Quick test_table_load ]);
      ("absfun",
       [ Alcotest.test_case "validation" `Quick test_absfun_validation;
         Alcotest.test_case "ports" `Quick test_port_disambiguation ]);
      ("conditions",
       [ Alcotest.test_case "shape" `Quick test_conditions_shape;
         Alcotest.test_case "satisfiable" `Quick test_conditions_satisfiable;
         Alcotest.test_case "cycle mismatch" `Quick test_cycle_mismatch_rejected;
         Alcotest.test_case "missing write mapping" `Quick test_missing_write_mapping;
         Alcotest.test_case "addr_via" `Quick test_addr_via ]) ]
