(* Symbolic evaluation of Oyster designs over SMT terms.

   This is the Rosette-style "lifted interpreter" of paper §3.1: running the
   concrete interpreter structure over Term.t values yields, for a k-cycle
   evaluation, the sequence of states s_0 .. s_k of Equation (1).

   Naming scheme (all names carry a per-evaluation session prefix so that
   the global Term variable registry never sees width clashes between
   designs):

     <p>reg!<name>        initial value of a register (state s_0)
     <p>in!<name>!<c>     value of an input during cycle c (1-based)
     <p>hole!<name>       the existential constant for a hole (default policy)

   Memories become uninterpreted Term.mem values named <p>mem!<name>; reads
   against the initial contents are UF applications, and writes accumulate
   in a chronological log used both for later reads (read-over-write) and
   for the synthesis engine's frame conditions. *)

type write_event = {
  w_cycle : int;  (* the cycle (1-based) whose step performed the write *)
  w_addr : Term.t;
  w_data : Term.t;
  w_enable : Term.t;
}

type snapshot = {
  (* state s_i: register values and the prefix of the write log that has
     committed by this state *)
  s_regs : (string * Term.t) list;
  s_writes : (string * write_event list) list;  (* chronological *)
}

type trace = {
  design : Ast.design;
  prefix : string;
  cycles : int;
  snapshots : snapshot array;  (* length cycles + 1 *)
  cycle_wires : (string * Term.t) list array;
      (* index c-1: wire/output/input values during cycle c *)
  hole_terms : (string * Term.t) list;
  mems : (string * Term.mem) list;
}

(* Atomic so concurrent symbolic evaluations (e.g. from parallel engine
   runs) never reuse a namespace prefix. *)
let session_counter = Atomic.make 0

let fresh_prefix () =
  Printf.sprintf "s%d!" (Atomic.fetch_and_add session_counter 1 + 1)

(* Read-over-write: the value of [mem] at address [addr] given the
   chronological write log (later writes win). *)
let read_over_write (mem : Term.mem) (writes : write_event list) addr =
  List.fold_left
    (fun acc w ->
      Term.ite (Term.band w.w_enable (Term.eq w.w_addr addr)) w.w_data acc)
    (Term.read mem addr) writes

let eval_unop op (a : Term.t) =
  match op with
  | Ast.Not -> Term.bnot a
  | Ast.Neg -> Term.neg a
  | Ast.RedOr -> Term.ne a (Term.zero (Term.width a))
  | Ast.RedAnd -> Term.eq a (Term.ones (Term.width a))
  | Ast.RedXor ->
      let w = Term.width a in
      let rec go i acc = if i >= w then acc else go (i + 1) (Term.bxor acc (Term.bit a i)) in
      go 1 (Term.bit a 0)

(* [t mod m] for a positive constant [m], as a restoring-division circuit:
   one conditional subtract per bit of [t].  The result has [t]'s width. *)
let umod_const t m =
  let w = Term.width t in
  let mc = Term.of_int ~width:w m in
  let r = ref (Term.zero w) in
  for i = w - 1 downto 0 do
    r := Term.bor (Term.shl !r (Term.one w)) (Term.zext (Term.bit t i) w);
    r := Term.ite (Term.uge !r mc) (Term.sub !r mc) !r
  done;
  !r

let rotate_term dir a b =
  (* rol(a, b) = (a << s) | (a >> (w - s)) with s = b mod w: a mask for
     power-of-two widths, a restoring-modulo circuit otherwise.  A 1-bit
     rotate is the identity. *)
  let w = Term.width a in
  if w = 1 then a
  else begin
    let log2w =
      let rec go i = if 1 lsl i >= w then i else go (i + 1) in
      go 0
    in
    let exact = 1 lsl log2w = w in
    (* the amount, at a width large enough to hold w itself *)
    let sw = max (Term.width b) (log2w + 1) in
    let s =
      if exact then
        Term.zext (Term.extract ~high:(log2w - 1) ~low:0 (Term.zext b (max (Term.width b) log2w))) sw
      else umod_const (Term.zext b sw) w
    in
    let winv = Term.sub (Term.of_int ~width:sw w) s in
    match dir with
    | `Left -> Term.bor (Term.shl a s) (Term.lshr a winv)
    | `Right -> Term.bor (Term.lshr a s) (Term.shl a winv)
  end

let eval_binop op (a : Term.t) (b : Term.t) =
  match op with
  | Ast.And -> Term.band a b
  | Ast.Or -> Term.bor a b
  | Ast.Xor -> Term.bxor a b
  | Ast.Add -> Term.add a b
  | Ast.Sub -> Term.sub a b
  | Ast.Mul -> Term.mul a b
  | Ast.Udiv -> Term.udiv a b
  | Ast.Urem -> Term.urem a b
  | Ast.Sdiv -> Term.sdiv a b
  | Ast.Srem -> Term.srem a b
  | Ast.Clmul -> Term.clmul a b
  | Ast.Clmulh -> Term.clmulh a b
  | Ast.Shl -> Term.shl a b
  | Ast.Lshr -> Term.lshr a b
  | Ast.Ashr -> Term.ashr a b
  | Ast.Rol -> rotate_term `Left a b
  | Ast.Ror -> rotate_term `Right a b
  | Ast.Eq -> Term.eq a b
  | Ast.Ne -> Term.ne a b
  | Ast.Ult -> Term.ult a b
  | Ast.Ule -> Term.ule a b
  | Ast.Ugt -> Term.ugt a b
  | Ast.Uge -> Term.uge a b
  | Ast.Slt -> Term.slt a b
  | Ast.Sle -> Term.sle a b
  | Ast.Sgt -> Term.sgt a b
  | Ast.Sge -> Term.sge a b

let eval ?prefix ?input_term ?hole_term (design : Ast.design) ~cycles =
  if cycles < 1 then invalid_arg "Symbolic.eval: cycles < 1";
  ignore (Typecheck.check design);
  let prefix = match prefix with Some p -> p | None -> fresh_prefix () in
  let input_term =
    match input_term with
    | Some f -> f
    | None ->
        fun name w ~cycle -> Term.var (Printf.sprintf "%sin!%s!%d" prefix name cycle) w
  in
  let hole_cache = Hashtbl.create 8 in
  let hole_term =
    match hole_term with
    | Some f -> f
    | None ->
        fun name w ~lookup:_ ->
          (match Hashtbl.find_opt hole_cache name with
          | Some t -> t
          | None ->
              let t = Term.var (Printf.sprintf "%shole!%s" prefix name) w in
              Hashtbl.add hole_cache name t;
              t)
  in
  let mems =
    List.map
      (fun (name, addr_width, data_width) ->
        ( name,
          { Term.mem_name = prefix ^ "mem!" ^ name; addr_width; data_width } ))
      (Ast.memories design)
  in
  let roms =
    List.map
      (fun (r : Ast.rom_decl) ->
        ( r.Ast.rom_name,
          { Term.tab_name = prefix ^ "rom!" ^ r.Ast.rom_name;
            tab_addr_width = r.Ast.rom_addr_width;
            tab_data = r.Ast.rom_data } ))
      (Ast.roms design)
  in
  (* Mutable per-evaluation state. *)
  let regs = Hashtbl.create 16 in
  List.iter
    (fun (n, w) -> Hashtbl.replace regs n (Term.var (prefix ^ "reg!" ^ n) w))
    (Ast.registers design);
  let write_log : (string, write_event list) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun (n, _) -> Hashtbl.replace write_log n []) mems;
  let snapshot () =
    {
      s_regs =
        List.map (fun (n, _) -> (n, Hashtbl.find regs n)) (Ast.registers design);
      s_writes =
        List.map (fun (n, _) -> (n, List.rev (Hashtbl.find write_log n))) mems;
    }
  in
  let snapshots = Array.make (cycles + 1) (snapshot ()) in
  let cycle_wires = Array.make cycles [] in
  let hole_terms = ref [] in
  for cycle = 1 to cycles do
    let wires : (string, Term.t) Hashtbl.t = Hashtbl.create 32 in
    let rec lookup name =
      match Hashtbl.find_opt wires name with
      | Some t -> t
      | None -> (
          match Ast.find_decl design name with
          | Some (Ast.Input (_, w)) ->
              let t = input_term name w ~cycle in
              Hashtbl.replace wires name t;
              t
          | Some (Ast.Register (_, _)) -> Hashtbl.find regs name
          | Some (Ast.Hole { hole_width; hole_name; _ }) ->
              let t = hole_term hole_name hole_width ~lookup in
              if not (List.mem_assoc hole_name !hole_terms) then
                hole_terms := (hole_name, t) :: !hole_terms;
              t
          | _ ->
              Interp.fail "symbolic: %s read before assignment (cycle %d)" name
                cycle)
    and eval_expr (e : Ast.expr) =
      match e with
      | Ast.Const v -> Term.const v
      | Ast.Var n -> lookup n
      | Ast.Unop (op, a) -> eval_unop op (eval_expr a)
      | Ast.Binop (op, a, b) -> eval_binop op (eval_expr a) (eval_expr b)
      | Ast.Ite (c, a, b) -> Term.ite (eval_expr c) (eval_expr a) (eval_expr b)
      | Ast.Extract (h, l, a) -> Term.extract ~high:h ~low:l (eval_expr a)
      | Ast.Concat (a, b) -> Term.concat (eval_expr a) (eval_expr b)
      | Ast.Zext (a, w) -> Term.zext (eval_expr a) w
      | Ast.Sext (a, w) -> Term.sext (eval_expr a) w
      | Ast.Read (m, addr) ->
          let mem = List.assoc m mems in
          let writes = List.rev (Hashtbl.find write_log m) in
          read_over_write mem writes (eval_expr addr)
      | Ast.RomRead (r, addr) -> Term.table_read (List.assoc r roms) (eval_expr addr)
    in
    let reg_next = ref [] in
    let pending_writes = ref [] in
    List.iter
      (fun stmt ->
        match stmt with
        | Ast.Assign (name, e) -> (
            let t = eval_expr e in
            match Ast.find_decl design name with
            | Some (Ast.Register _) -> reg_next := (name, t) :: !reg_next
            | Some (Ast.Wire _ | Ast.Output _) -> Hashtbl.replace wires name t
            | _ -> Interp.fail "symbolic: bad assignment target %s" name)
        | Ast.Write { mem; addr; data; enable } ->
            let ev =
              {
                w_cycle = cycle;
                w_addr = eval_expr addr;
                w_data = eval_expr data;
                w_enable = eval_expr enable;
              }
            in
            pending_writes := (mem, ev) :: !pending_writes)
      design.stmts;
    (* Force inputs that no statement read, so abstraction functions can
       still refer to their per-cycle symbols. *)
    List.iter (fun (n, _) -> ignore (lookup n)) (Ast.inputs design);
    (* Commit at end of cycle: writes become visible in state s_cycle. *)
    List.iter
      (fun (m, ev) -> Hashtbl.replace write_log m (ev :: Hashtbl.find write_log m))
      (List.rev !pending_writes);
    List.iter (fun (n, t) -> Hashtbl.replace regs n t) !reg_next;
    cycle_wires.(cycle - 1) <- Hashtbl.fold (fun k v acc -> (k, v) :: acc) wires [];
    snapshots.(cycle) <- snapshot ()
  done;
  {
    design;
    prefix;
    cycles;
    snapshots;
    cycle_wires;
    hole_terms = List.rev !hole_terms;
    mems;
  }

(* {1 Accessors} *)

let reg_at trace ~state name =
  match List.assoc_opt name trace.snapshots.(state).s_regs with
  | Some t -> t
  | None -> Interp.fail "no register %s" name

let wire_at trace ~cycle name =
  match List.assoc_opt name trace.cycle_wires.(cycle - 1) with
  | Some t -> t
  | None ->
      Interp.fail "wire %s has no value in cycle %d (never evaluated?)" name cycle

let mem_of trace name =
  match List.assoc_opt name trace.mems with
  | Some m -> m
  | None -> Interp.fail "no memory %s" name

let read_mem_at trace ~state name addr =
  let mem = mem_of trace name in
  let writes =
    match List.assoc_opt name trace.snapshots.(state).s_writes with
    | Some w -> w
    | None -> []
  in
  read_over_write mem writes addr

let writes_at trace ~state name =
  match List.assoc_opt name trace.snapshots.(state).s_writes with
  | Some w -> w
  | None -> []

let input_at trace ~cycle name = wire_at trace ~cycle name
