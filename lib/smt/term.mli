(** Hash-consed bitvector terms (QF_BV + uninterpreted memory reads).

    This is the symbolic domain shared by the Oyster symbolic evaluator, the
    ILA condition compiler, and the synthesis engine.  Terms are maximally
    shared: structurally equal terms are physically equal and carry a unique
    [id], so spec-side and datapath-side computations that coincide collapse
    to the same node and [eq t t] simplifies to true without touching the
    SAT solver.

    All smart constructors simplify bottom-up (constant folding, identities,
    canonical ordering of commutative arguments, pushing [extract] through
    structure).  Booleans are width-1 bitvectors.

    {b Domain safety.}  The hash-consing table, the variable registry, and
    the table registry are shared across domains and internally locked, so
    terms may be built and combined freely from concurrent domains —
    physical equality keeps working because every domain interns into the
    same table.  Determinism is preserved too: commutative operands are
    ordered by a structural key rather than by allocation id, so the term
    DAG produced by a computation does not depend on how domains
    interleave. *)

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv  (** division by zero yields all-ones (RISC-V/SMT-LIB convention) *)
  | Urem  (** remainder by zero yields the dividend *)
  | Sdiv
  | Srem
  | Clmul  (** carry-less multiply, low half *)
  | Clmulh  (** carry-less multiply, high half *)
  | Shl
  | Lshr
  | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

(** An uninterpreted memory: reads from the initial state of a RAM. *)
type mem = { mem_name : string; addr_width : int; data_width : int }

(** A read-only lookup table (the paper's ILA [MemConst]); entries are
    materialized, so a read with a constant index folds. *)
type table = { tab_name : string; tab_addr_width : int; tab_data : Bitvec.t array }

type t = private {
  id : int;  (** unique per process; allocation order, not deterministic *)
  width : int;
  skey : int;
      (** structural hash, independent of allocation order; the basis of
          the canonical commutative-operand ordering *)
  node : node;
}

and node =
  | Const of Bitvec.t
  | Var of string
  | Not of t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | Ite of t * t * t  (** condition has width 1 *)
  | Extract of int * int * t  (** high, low *)
  | Concat of t * t  (** first argument is the high part *)
  | Read of mem * t
  | Table of table * t

val width : t -> int
val id : t -> int
val equal : t -> t -> bool  (** physical, thanks to hash-consing *)

val compare : t -> t -> int  (** by id *)

val hash : t -> int

(** {1 Constructors} *)

val const : Bitvec.t -> t
val var : string -> int -> t
(** [var name width].  The same name must always be used at the same width;
    raises [Invalid_argument] otherwise. *)

val of_int : width:int -> int -> t
val zero : int -> t
val one : int -> t
val ones : int -> t
val tru : t  (** width-1 constant 1 *)

val fls : t  (** width-1 constant 0 *)

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t
val clmul : t -> t -> t
val clmulh : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t

val ite : t -> t -> t -> t
val extract : high:int -> low:int -> t -> t
val concat : t -> t -> t
val zext : t -> int -> t
val sext : t -> int -> t
val msb : t -> t
val bit : t -> int -> t

val read : mem -> t -> t
val table_read : table -> t -> t

val implies : t -> t -> t
val conj : t list -> t
val disj : t list -> t

(** {1 Observation} *)

val is_const : t -> Bitvec.t option
val is_true : t -> bool
val is_false : t -> bool

val size : t -> int
(** Number of distinct nodes in the DAG rooted at the term. *)

val fold_dag : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Folds over every distinct node of the DAG, children before parents. *)

val vars : t -> (string * int) list
(** Distinct variables (name, width), sorted by name. *)

val reads : t -> (mem * t) list
(** Distinct [Read] applications in the DAG. *)

val pp : Format.formatter -> t -> unit
(** S-expression rendering (SMT-LIB flavoured), with sharing expanded. *)

(** {1 Canonical serialization}

    A deterministic, self-contained text rendering of a term DAG — the
    basis of the synthesis cache's content-addressed fingerprints and of
    its persisted counterexample constraints.  Nodes are numbered by
    shared post-order position (children before parents, roots in list
    order), never by the process-local allocation [id], so the same
    logical DAG produces byte-identical output in every process, at any
    [jobs] count, regardless of how many terms were interned before it.
    Lookup tables are embedded with their contents, so a document stands
    alone. *)

val serialize : t list -> string
(** Canonical text for the DAG rooted at the given terms (sharing across
    roots preserved).  Raises [Invalid_argument] if a variable, memory, or
    table name contains whitespace (no internally generated name does). *)

val deserialize : string -> t list
(** Rebuilds the roots of a {!serialize} document through the smart
    constructors, revalidating every node (widths, table sizes, registry
    consistency).  Raises [Failure] or [Invalid_argument] on malformed,
    truncated, or stale input — cache readers treat any exception as a
    miss.  Round-trip law: [deserialize (serialize ts)] returns terms
    physically equal to [ts]. *)

(** {1 Evaluation and substitution} *)

type env = {
  lookup_var : string -> int -> Bitvec.t option;
      (** [lookup_var name width]; a [Some] result must have that width *)
  lookup_read : mem -> Bitvec.t -> Bitvec.t option;
      (** value of reading [mem] at a {e concrete} address *)
}

val eval : env -> t -> Bitvec.t
(** Full concrete evaluation.  Raises [Failure] if a variable is unbound or
    a read is unresolved. *)

val substitute : env -> t -> t
(** Partial evaluation: replaces bound variables with constants, resolves
    reads whose address becomes concrete, and re-simplifies.  Unbound
    variables remain symbolic. *)

val rename : (string -> string option) -> t -> t
(** Renames variables (e.g. to freshen hole instances per CEGIS copy). *)
