(** SMT façade: satisfiability of conjunctions of width-1 bitvector terms.

    Pipeline: Ackermann-expand uninterpreted memory reads, bit-blast with
    {!Blast}, decide with {!Sat}, and reconstruct a word-level model.

    Two entry points share the engine:

    - {!check}, the one-shot API: a fresh context per call;
    - {!Session}, a persistent context for families of related queries.
      The SAT state (learned clauses, variable activity, phase saving),
      the Tseitin encoding cache, and the Ackermann instance table all
      survive across checks, so each additional query pays only for what
      it adds.  This is what makes the CEGIS inner loop incremental.

    The [budget] bounds SAT conflicts; exhausting it yields [Unknown],
    which the synthesis engine and the benchmark harness surface as a
    timeout.

    {b Re-entrancy contract.}  [check] holds no state between calls: the
    SAT instance, the blasting context, the Ackermann numbering, and the
    statistics are all per call, and the term layer it builds on is
    domain-safe.  Concurrent [check] calls from different domains are
    therefore independent.  A {!Session.t} is single-owner: nothing inside
    it is locked, so a session must stay on the domain that created it
    (use one {!Arena} per worker domain).  Distinct sessions on distinct
    domains never interact. *)

type model = {
  var_value : string -> Bitvec.t option;
      (** value of a named bitvector variable; [None] if the variable was
          simplified away (callers should treat it as "any value") *)
  read_values : (string * Bitvec.t * Bitvec.t) list;
      (** [(mem_name, address, value)] for every distinct read instance,
          with the address evaluated under the model *)
  read_index : (string * string, Bitvec.t) Hashtbl.t Lazy.t;
      (** lookup index over [read_values] — first instance per (memory,
          printed address) — built lazily by the solver for
          {!read_lookup}; treat as an implementation detail *)
}

type stats = {
  sat_vars : int;  (** SAT variables this check allocated *)
  sat_clauses : int;
      (** problem clauses this check added (blasting, Ackermann congruence,
          guards); learned clauses are excluded.  For a one-shot {!check}
          this is the whole encoding; for a session check it is the
          increment over the previous check — summing over a query sequence
          gives total blasted clauses. *)
  sat_conflicts : int;  (** conflicts during this check's search *)
  sat_restarts : int;  (** restarts during this check's search *)
  sat_learnt_kept : int;
      (** learned clauses surviving reduce-DB rounds this check (each
          round contributes its post-reduction database size) *)
  sat_learnt_deleted : int;  (** learned clauses deleted this check *)
  sat_subsumed : int;  (** clauses deleted by inprocessing subsumption *)
  sat_strengthened : int;  (** clauses shrunk by self-subsuming resolution *)
  sat_vivified : int;  (** literals removed by clause vivification *)
  sat_eliminated : int;  (** variables removed by bounded elimination *)
  sat_rephases : int;  (** best-phase rephasing events *)
  trivially_unsat : bool;
      (** the conjunction simplified to constant false before any search:
          no SAT work happened, so zero conflicts really means zero cost —
          budget bookkeeping can tell this apart from a genuine
          zero-conflict refutation *)
}
(** Per-check statistics.  Carried inside the {!outcome} rather than read
    from process state, so concurrent checks cannot race. *)

val empty_stats : stats

type outcome = Sat of model * stats | Unsat of stats | Unknown of stats

val stats_of : outcome -> stats
(** The statistics of any outcome. *)

val outcome_name : outcome -> string
(** ["sat"], ["unsat"], or ["unknown"] — for logs and trace arguments. *)

val check :
  ?config:Sat.config -> ?budget:int -> ?deadline:float -> Term.t list -> outcome
(** Checks satisfiability of the conjunction of the given width-1 terms.
    [config] selects the SAT core's pass configuration (see {!Sat.config};
    defaults to {!Sat.default_config}).  [deadline] is an absolute
    wall-clock bound ([Unix.gettimeofday]).  Raises [Invalid_argument] if
    any term is not width 1.  Re-entrant; see the module preamble. *)

val ackermannize : Term.t list -> Term.t list * (Term.mem * Term.t * Term.t) list
(** One-shot Ackermann expansion (exposed for tests): rewritten assertions
    plus congruence constraints, and the read instances in traversal
    order. *)

(** {1 Solver strategies}

    A strategy is everything that makes two runs on the same query search
    differently: the inprocessing pass gates (a {!Sat.profile} worth of
    {!Sat.config}), the restart schedule, the branching seed, and the
    initial phase policy — plus the clause-sharing toggles the portfolio
    racers honour.  It replaces the loose [Sat.config] threading that used
    to run through the engine options, the CLI flags, and the serve codec;
    those paths now carry a [Strategy.t] and derive the SAT configuration
    at the last moment with {!Strategy.sat_config}.  The old entry points
    ([Engine.with_sat_config], [--sat-profile], the wire ["sat"] object)
    remain as thin shims over this module. *)

module Strategy : sig
  type t = {
    profile : Sat.profile;
        (** where [passes] started from — display/serialization tag only *)
    passes : Sat.config;
        (** pass gates (retention, rephasing, inprocessing); the
            diversification fields inside it are overridden by the record
            fields below when {!sat_config} assembles the final config *)
    restart : Sat.restart_schedule;
    seed : int;  (** branching seed; [0] = undiversified VSIDS *)
    phase : Sat.phase_init;
    share_in : bool;  (** import clauses other racers publish *)
    share_out : bool;  (** publish own glue clauses to the race *)
  }

  val default : t
  (** {!Sat.default_config} passes, Luby-100 restarts, seed 0, negative
      phases, sharing enabled both ways.  [Strategy.sat_config default]
      equals {!Sat.default_config} exactly. *)

  val of_profile : Sat.profile -> t
  val of_config : Sat.config -> t
  (** Adopts a raw configuration (the legacy plumbing's currency),
      recovering the profile tag structurally when the pass gates match a
      preset. *)

  val with_profile : Sat.profile -> t -> t
  (** Replaces the pass gates with the profile's preset; the
      diversification fields (restart/seed/phase) are kept. *)

  val with_restart : Sat.restart_schedule -> t -> t
  (** Raises [Invalid_argument] on a base interval [< 1] or a geometric
      factor [< 1.0]. *)

  val with_seed : int -> t -> t
  (** Raises [Invalid_argument] on a negative seed. *)

  val with_phase : Sat.phase_init -> t -> t
  val with_share_in : bool -> t -> t
  val with_share_out : bool -> t -> t

  val with_passes : (Sat.config -> Sat.config) -> t -> t
  (** Escape hatch for the per-pass [--no-sat-*] shims: edits the pass
      gates without touching the diversification fields. *)

  val sat_config : t -> Sat.config
  (** The configuration actually handed to {!Sat.create}: [passes] with
      the strategy's restart schedule, seed, and phase folded in. *)

  val diversify : int -> t -> t
  (** Racer [i]'s variant of a base strategy.  [diversify 0] is the
      identity — racer 0 always runs the base unchanged — and racers
      [i >= 1] cycle restart schedules, phase policies, seeds, and (every
      fourth racer) the aggressive inprocessing profile.  A pure function
      of [(i, base)], so an N-racer portfolio is reproducible. *)

  val restart_name : Sat.restart_schedule -> string
  (** ["luby:N"] or ["geometric:N:F"]. *)

  val restart_of_string : string -> Sat.restart_schedule option
  (** Inverse of {!restart_name}; [None] on syntax errors or out-of-range
      parameters (base [< 1], factor [< 1.0]). *)

  val phase_name : Sat.phase_init -> string
  (** ["neg"], ["pos"], or ["rand"]. *)

  val phase_of_string : string -> Sat.phase_init option

  val describe : t -> string
  (** One-line human summary, e.g. ["default/luby:100/seed0/neg"] — used
      by racer labels in traces and the bench report. *)

  val equal : t -> t -> bool
end

(** {1 Incremental sessions} *)

module Session : sig
  type t
  (** A persistent solving context.  Single-owner: never share a session
      across domains. *)

  type guard
  (** Handle to a retractable assertion (an activation literal). *)

  val create : ?config:Sat.config -> unit -> t
  (** [config] selects the SAT core's pass configuration; defaults to
      {!Sat.default_config}.  Sessions freeze their activation-literal
      guards, so every configuration — including variable elimination —
      is sound under retraction. *)

  val assert_always : t -> Term.t -> unit
  (** Permanently asserts a width-1 term.  Asserting a constant-false term
      (or one that Ackermannization reduces to constant false) poisons the
      session: every later check returns [Unsat] with [trivially_unsat]
      set.  Raises [Invalid_argument] on width <> 1. *)

  val assert_retractable : t -> Term.t -> guard
  (** Asserts a width-1 term guarded by a fresh activation literal.  The
      term is enforced only by checks that pass the returned guard in
      [assumptions]; its encoding (and any Ackermann congruence it
      introduced) stays in the session either way.  Raises
      [Invalid_argument] on width <> 1. *)

  val retract : t -> guard -> unit
  (** Permanently disables a guarded assertion (asserts the negation of
      its activation literal).  Checking with a retracted guard among the
      assumptions afterwards yields [Unsat].  Retracting twice is
      harmless. *)

  val check_with :
    ?assumptions:guard list ->
    ?budget:int ->
    ?deadline:float ->
    t ->
    Term.t list ->
    outcome
  (** [check_with ~assumptions s extra] permanently asserts the [extra]
      terms (like {!assert_always}) and then decides the session's
      asserted conjunction with the guarded assertions named by
      [assumptions] enabled.  Statistics are per-check increments (see
      {!stats}).  After [Unsat] under assumptions the session remains
      usable with different assumptions; after [Sat] the returned model is
      a snapshot and stays valid across later asserts, retractions, and
      checks on the same session. *)

  type stats = {
    vars : int;  (** SAT variables allocated since [create] *)
    clauses : int;
        (** problem clauses encoded since [create] (cumulative — live
            counts can shrink when inprocessing deletes clauses) *)
    conflicts : int;  (** total conflicts across all checks *)
    learnt : int;  (** learned clauses currently in the database *)
    restarts : int;  (** total restarts across all checks *)
    learnt_kept : int;  (** learned clauses surviving reduce rounds *)
    learnt_deleted : int;  (** learned clauses deleted by reduce rounds *)
    subsumed : int;  (** clauses deleted by inprocessing subsumption *)
    strengthened : int;  (** clauses shrunk by self-subsuming resolution *)
    vivified : int;  (** literals removed by clause vivification *)
    eliminated_vars : int;  (** variables removed by bounded elimination *)
    rephases : int;  (** best-phase rephasing events *)
    cached_terms : int;  (** size of the term → literals blasting cache *)
    trivially_unsat : bool;  (** the session is poisoned by constant false *)
  }
  (** One introspection snapshot covering everything callers used to read
      through individual accessors — the cache, the observability layer,
      and tests all consume this single record. *)

  val stats : t -> stats
  (** Cumulative totals since [create] (not per-check deltas; those travel
      inside each {!outcome}). *)

  val export_learnt : ?max_lbd:int -> t -> int list list
  (** The session's learned clauses, for the cross-run warm-start cache
      and the portfolio racers' sharing channel.  [max_lbd] keeps only
      glue clauses at or below the bound (default: everything).  Only
      sound to replay into a session holding the identical encoding
      (same problem fingerprint ⇒ same deterministic variable numbering). *)

  val import_learnt : t -> int list list -> int
  (** Replays exported learned clauses into this session; clauses naming
      variables not yet allocated are dropped (and counted in
      {!import_dropped}).  Returns how many were imported.  See
      {!Sat.import_learnt}. *)

  val lit_guard : t -> int -> guard
  (** [lit_guard s l] is the raw DIMACS literal [l] as an assumption
      guard.  Guards are passed to the SAT core verbatim, so any literal
      over an allocated variable is a sound assumption — this is how the
      cube-and-conquer splitter turns {!top_vars} picks into
      [check_with ~assumptions] cubes.  Raises [Invalid_argument] if [l]
      names no allocated variable. *)

  val import_dropped : t -> int
  (** Imported clauses rejected by the bounds check, cumulative. *)

  val top_vars : t -> int -> int list
  (** Up to [k] highest-occurrence unassigned SAT variables — the cube
      splitter's branching candidates.  See {!Sat.top_vars}. *)

  val num_vars : t -> int
  (** SAT variables allocated so far (for clause-sharing sanity checks). *)
end

(** {1 Session arenas}

    One arena per worker domain: sessions are unlocked single-owner state,
    so a pool worker allocates every session it needs from its own arena
    and nothing is ever shared across domains.  The arena also aggregates
    statistics over the sessions it handed out. *)

module Arena : sig
  type t

  val create : ?config:Sat.config -> unit -> t
  (** [config] is remembered and applied to every session the arena hands
      out (including {!shared}). *)

  val session : t -> Session.t
  (** A fresh session owned by this arena. *)

  val shared : t -> Session.t
  (** The arena's memoized session (created on first use) — for callers
      that want to reuse one encoding cache across successive tasks on the
      same worker. *)

  val session_count : t -> int

  val stats : t -> stats
  (** Cumulative statistics summed over the arena's sessions. *)
end

val read_lookup : model -> Term.mem -> Bitvec.t -> Bitvec.t option
(** Looks an address up in [read_values], returning the {e first} match in
    read-instance order.  Distinct instances may alias the same concrete
    address, but the Ackermann congruence constraints force aliasing
    instances to carry equal values in any model, so the first match is
    canonical and the lookup deterministic.  Backed by a hash index built
    once per model, so repeated lookups are O(1). *)
