(** A CDCL SAT solver.

    Implements the standard modern architecture: two-watched-literal unit
    propagation, first-UIP conflict analysis with clause learning, VSIDS
    decision heuristic with phase saving, Luby restarts, and activity-based
    learned-clause deletion.

    Literals use the DIMACS convention: variable [v >= 1], positive literal
    [v], negative literal [-v].  Clauses may be added between [solve] calls
    (the solver restarts from decision level 0).

    A deterministic conflict budget turns long searches into [Unknown]; the
    benchmark harness uses this to reproduce the paper's Table 1 timeout row
    reproducibly. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Allocates a fresh variable and returns its (positive) index. *)

val num_vars : t -> int
val num_clauses : t -> int

val num_learnt : t -> int
(** Learned clauses currently in the database.  [num_clauses - num_learnt]
    is the number of problem clauses, which only ever grows; incremental
    sessions difference it across [solve] calls to report how many clauses
    each check actually blasted. *)

val conflicts : t -> int
(** Total conflicts encountered across all [solve] calls. *)

val propagations : t -> int
(** Literals propagated by unit propagation, cumulative across [solve]
    calls.  Each [solve] call's [sat.solve] trace span reports the delta
    together with {!decisions}, {!restarts}, and {!conflicts}. *)

val decisions : t -> int
(** VSIDS decisions made, cumulative across [solve] calls. *)

val restarts : t -> int
(** Luby restarts performed, cumulative across [solve] calls. *)

val reductions : t -> int
(** Learned-clause database reductions, cumulative across [solve] calls. *)

val add_clause : t -> int list -> unit
(** Adds a clause.  The empty clause (or a clause whose literals are all
    falsified at level 0) makes the instance unsatisfiable.  Raises
    [Invalid_argument] on literals naming unallocated variables. *)

val export_learnt : t -> int list list
(** Snapshot of the learned-clause database, in DIMACS literals.  Every
    exported clause is a consequence of the problem clauses the solver has
    seen, so the list is only meaningful for re-import into a solver holding
    the same encoding (same variable numbering) — the synthesis cache pins
    this with an exact problem fingerprint before replaying. *)

val import_learnt : t -> int list list -> int
(** Replays previously exported clauses, allocating them as {e learnt}: they
    never count as problem clauses in the statistics and the activity-based
    deletion may drop them again.  Clauses naming variables the solver has
    not allocated yet are skipped (the exporting run may have blasted more
    terms).  Returns the number of clauses actually imported. *)

val solve : ?assumptions:int list -> ?budget:int -> ?deadline:float -> t -> result
(** [solve ~assumptions ~budget ~deadline s] checks satisfiability under the
    given assumption literals.  [budget] bounds the number of conflicts for
    this call and [deadline] (an absolute [Unix.gettimeofday] time) bounds
    its wall-clock duration; exceeding either yields [Unknown].  After
    [Sat], [value] reads the model.  After [Unsat] under assumptions, the
    solver remains usable with different assumptions. *)

val value : t -> int -> bool
(** Model value of a variable after [solve] returned [Sat].  Variables the
    search never assigned default to [false]. *)
