(** A CDCL SAT solver.

    Implements the standard modern architecture: two-watched-literal unit
    propagation, first-UIP conflict analysis with clause learning, VSIDS
    decision heuristic with phase saving, and Luby restarts — plus the
    "between conflicts" machinery that modern solvers win with, each piece
    individually gated by {!config}: LBD (glue)-tiered learned-clause
    retention, best-phase rephasing, and inprocessing (subsumption with
    self-subsuming resolution, clause vivification, bounded variable
    elimination).

    Literals use the DIMACS convention: variable [v >= 1], positive literal
    [v], negative literal [-v].  Clauses may be added between [solve] calls
    (the solver restarts from decision level 0).

    A deterministic conflict budget turns long searches into [Unknown]; the
    benchmark harness uses this to reproduce the paper's Table 1 timeout row
    reproducibly. *)

type t

type result = Sat | Unsat | Unknown

(** {1 Configuration} *)

type restart_schedule =
  | Luby of int
      (** Luby staircase with the given unit run length; [Luby 100] is the
          historical schedule. *)
  | Geometric of int * float
      (** First restart interval and per-restart growth factor (>= 1.0). *)

type phase_init =
  | Phase_neg  (** fresh variables decide negative first (historical) *)
  | Phase_pos  (** fresh variables decide positive first *)
  | Phase_rand
      (** deterministic per-variable pseudo-random phase, seeded by
          [branch_seed] *)

type config = {
  lbd_retention : bool;
      (** LBD-tiered [reduce_db] with glue-clause protection (instead of
          the legacy pure-activity policy). *)
  rephase : bool;
      (** Overwrite saved phases with the best (deepest-trail) snapshot
          every few restarts. *)
  subsume : bool;  (** Inprocessing: subsumption + self-subsumption. *)
  vivify : bool;  (** Inprocessing: clause vivification. *)
  elim : bool;  (** Inprocessing: bounded variable elimination. *)
  inprocess_interval : int;
      (** Conflicts between inprocessing rounds (>= 1). *)
  restart : restart_schedule;  (** Restart pacing; default [Luby 100]. *)
  branch_seed : int;
      (** [0] (default) is the pure VSIDS index tie-break; a nonzero seed
          perturbs fresh variables' initial activity by a tiny
          deterministic epsilon, diversifying the early decision order —
          the portfolio racers' branching diversification knob. *)
  phase : phase_init;  (** Initial decision polarity; default [Phase_neg]. *)
}

type profile = Default | Aggressive | Conservative
(** Named presets.  [Conservative] disables every modern pass and matches
    the legacy solver exactly; [Default] enables everything except
    variable elimination; [Aggressive] adds elimination and inprocesses
    more often. *)

val default_config : config
val aggressive_config : config
val conservative_config : config
val config_of_profile : profile -> config

val profile_name : profile -> string
val profile_of_string : string -> profile option

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] if [config.inprocess_interval < 1], the
    restart schedule's base interval is [< 1], or a geometric factor is
    [< 1.0]. *)

val new_var : t -> int
(** Allocates a fresh variable and returns its (positive) index. *)

val freeze : t -> int -> unit
(** Exempts a variable from variable elimination.  Incremental sessions
    freeze their activation-literal guards: retraction re-constrains a
    guard at any time, and a frozen guard never triggers the (expensive)
    restore path that re-constraining an eliminated variable would. *)

val num_vars : t -> int
val num_clauses : t -> int

val num_learnt : t -> int
(** Learned clauses currently in the database. *)

val encoded_clauses : t -> int
(** Cumulative problem clauses added through {!add_clause}.  Unlike
    [num_clauses - num_learnt] this never shrinks (inprocessing deletes
    and rewrites live clauses), so incremental sessions difference it
    across [solve] calls to report how many clauses each check blasted. *)

val conflicts : t -> int
(** Total conflicts encountered across all [solve] calls. *)

val propagations : t -> int
(** Literals propagated by unit propagation, cumulative across [solve]
    calls.  Each [solve] call's [sat.solve] trace span reports the delta
    together with {!decisions}, {!restarts}, and {!conflicts}. *)

val decisions : t -> int
(** VSIDS decisions made, cumulative across [solve] calls. *)

val restarts : t -> int
(** Luby restarts performed, cumulative across [solve] calls. *)

val reductions : t -> int
(** Learned-clause database reductions, cumulative across [solve] calls. *)

val learnt_kept : t -> int
(** Learned clauses surviving reduce rounds, cumulative (each reduce adds
    the post-reduction database size). *)

val learnt_deleted : t -> int
(** Learned clauses deleted by reduce rounds, cumulative. *)

val subsumed : t -> int
(** Clauses deleted by inprocessing subsumption, cumulative. *)

val strengthened : t -> int
(** Clauses shrunk by self-subsuming resolution, cumulative. *)

val vivified : t -> int
(** Literals removed by clause vivification, cumulative. *)

val eliminated_vars : t -> int
(** Variables eliminated (and not since restored), net. *)

val rephases : t -> int
(** Best-phase rephasing events, cumulative. *)

val add_clause : t -> int list -> unit
(** Adds a clause.  The empty clause (or a clause whose literals are all
    falsified at level 0) makes the instance unsatisfiable.  Raises
    [Invalid_argument] on literals naming unallocated variables.  Adding a
    clause that mentions an eliminated variable first restores the
    eliminated clauses (sound, but slow — {!freeze} variables that will be
    re-constrained). *)

val export_learnt : ?max_lbd:int -> t -> int list list
(** Snapshot of the learned-clause database, in DIMACS literals.  Every
    exported clause is a consequence of the problem clauses the solver has
    seen, so the list is only meaningful for re-import into a solver holding
    the same encoding (same variable numbering) — the synthesis cache pins
    this with an exact problem fingerprint before replaying.  [max_lbd]
    keeps only clauses whose glue level is at or below the bound (the
    portfolio racers share [max_lbd]-filtered "glue" clauses); the default
    exports everything. *)

val import_learnt : t -> int list list -> int
(** Replays previously exported clauses, allocating them as {e learnt}: they
    never count as problem clauses in the statistics and the activity-based
    deletion may drop them again.  Clauses naming variables the solver has
    not allocated yet are dropped — never handed to the watch lists — and
    counted in {!import_dropped} (the exporting run may have blasted more
    terms, or the peer may not share this encoding at all).  Returns the
    number of clauses actually imported. *)

val import_dropped : t -> int
(** Imported clauses rejected by the bounds check, cumulative. *)

val top_vars : t -> int -> int list
(** [top_vars s k] returns up to [k] (positive DIMACS) variables with the
    highest problem-clause occurrence counts — a deterministic static
    proxy for a lookahead cube splitter.  Root-assigned, eliminated, and
    frozen variables are excluded; ties break by variable index. *)

val solve : ?assumptions:int list -> ?budget:int -> ?deadline:float -> t -> result
(** [solve ~assumptions ~budget ~deadline s] checks satisfiability under the
    given assumption literals.  [budget] bounds the number of conflicts for
    this call and [deadline] (an absolute [Unix.gettimeofday] time) bounds
    its wall-clock duration; exceeding either yields [Unknown].  After
    [Sat], [value] reads the model.  After [Unsat] under assumptions, the
    solver remains usable with different assumptions. *)

val value : t -> int -> bool
(** Model value of a variable after [solve] returned [Sat].  Variables the
    search never assigned default to [false]; eliminated variables read
    their witness-reconstructed values. *)
