(* CDCL SAT solver.

   Internal representation: variables are 0-based; a literal is [2*v] for
   the positive phase and [2*v + 1] for the negative phase, so negation is
   [lxor 1] and the variable is [lsr 1].  The external API speaks DIMACS.

   Beyond the classic two-watched-literal CDCL core, the solver carries
   the "between conflicts" machinery that modern solvers win with, each
   piece individually gated by {!config}:

   - LBD (glue) clause management: learnt clauses carry the number of
     distinct decision levels among their literals, glue clauses
     (LBD <= 2) are never deleted, and [reduce_db] retains by LBD tier
     instead of pure activity;
   - best-phase rephasing: the polarities of the deepest trail seen are
     snapshotted and copied back over the saved phases every few
     restarts;
   - inprocessing between restarts: occurrence-list subsumption and
     self-subsuming resolution, clause vivification, and bounded variable
     elimination.  Elimination records the removed clauses on a stack so
     models extend to eliminated variables (witness reconstruction) and
     so a later clause mentioning one can restore them ([freeze] exempts
     variables — activation-literal guards — from elimination wholesale). *)

type result = Sat | Unsat | Unknown

(* {1 Configuration} *)

type restart_schedule =
  | Luby of int  (* unit run length; the legacy schedule is [Luby 100] *)
  | Geometric of int * float  (* first interval, growth factor >= 1.0 *)

type phase_init =
  | Phase_neg  (* fresh variables decide negative first (the legacy rule) *)
  | Phase_pos  (* fresh variables decide positive first *)
  | Phase_rand  (* per-variable pseudo-random phase, seeded by branch_seed *)

type config = {
  lbd_retention : bool;  (* LBD-tiered reduce_db with glue protection *)
  rephase : bool;  (* best-phase rephasing on restarts *)
  subsume : bool;  (* inprocessing: subsumption + self-subsumption *)
  vivify : bool;  (* inprocessing: clause vivification *)
  elim : bool;  (* inprocessing: bounded variable elimination *)
  inprocess_interval : int;  (* conflicts between inprocessing rounds *)
  restart : restart_schedule;
  branch_seed : int;
      (* 0 = pure VSIDS tie-by-index; nonzero perturbs fresh variables'
         initial activity by a tiny seed-dependent epsilon, diversifying
         the early decision order without touching learned activity *)
  phase : phase_init;
}

type profile = Default | Aggressive | Conservative

let conservative_config =
  {
    lbd_retention = false;
    rephase = false;
    subsume = false;
    vivify = false;
    elim = false;
    inprocess_interval = max_int;
    restart = Luby 100;
    branch_seed = 0;
    phase = Phase_neg;
  }

let default_config =
  {
    lbd_retention = true;
    rephase = true;
    subsume = true;
    vivify = true;
    elim = false;
    inprocess_interval = 2000;
    restart = Luby 100;
    branch_seed = 0;
    phase = Phase_neg;
  }

let aggressive_config =
  { default_config with elim = true; inprocess_interval = 1500 }

let config_of_profile = function
  | Default -> default_config
  | Aggressive -> aggressive_config
  | Conservative -> conservative_config

let profile_name = function
  | Default -> "default"
  | Aggressive -> "aggressive"
  | Conservative -> "conservative"

let profile_of_string = function
  | "default" -> Some Default
  | "aggressive" -> Some Aggressive
  | "conservative" -> Some Conservative
  | _ -> None

(* Deterministic integer mixer (splitmix-style) for seeded diversification:
   the same (seed, v) always lands on the same value, independent of any
   global hashing state, so seeded runs are bit-for-bit reproducible. *)
let mix seed v =
  let x = (seed * 0x9E3779B1) lxor ((v + 1) * 0x85EBCA6B) in
  let x = x lxor (x lsr 16) in
  let x = x * 0x27D4EB2F in
  (x lxor (x lsr 13)) land max_int

(* {1 Dynamic int arrays} *)

module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.len
  let shrink v n = v.len <- n
  let clear v = v.len <- 0
end

(* {1 Clauses}

   Clauses live in a growable table of int arrays.  Learned clauses carry a
   float activity and their LBD (number of distinct decision levels at
   learn time, updated downward when conflict analysis revisits them). *)

type clause = {
  mutable lits : int array;
  mutable learnt : bool;  (* mutable: subsumption can promote to problem *)
  mutable act : float;
  mutable lbd : int;
}

type t = {
  cfg : config;
  mutable clauses : clause array;  (* dense table; index = clause id *)
  mutable n_clauses : int;
  mutable free_list : int list;  (* recycled clause slots *)
  mutable watches : Vec.t array;  (* per literal: clause ids *)
  mutable assigns : int array;  (* per var: -1 unset / 0 false / 1 true *)
  mutable level : int array;  (* per var *)
  mutable reason : int array;  (* per var: clause id or -1 *)
  mutable polarity : bool array;  (* saved phase *)
  mutable best_phase : bool array;  (* phases of the deepest trail seen *)
  mutable best_trail : int;  (* its length *)
  mutable frozen : bool array;  (* exempt from variable elimination *)
  mutable eliminated : bool array;
  mutable ext_model : int array;  (* witness values for eliminated vars *)
  mutable elim_stack : (int * int array list) list;
      (* (var, removed problem clauses), newest elimination first *)
  mutable activity : float array;  (* VSIDS *)
  mutable heap : int array;  (* binary max-heap of vars *)
  mutable heap_pos : int array;  (* var -> heap index or -1 *)
  mutable heap_len : int;
  mutable seen : bool array;
  mutable lbd_stamp : int array;  (* per decision level, generation marks *)
  mutable lbd_gen : int;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;  (* false once a top-level conflict is derived *)
  mutable total_conflicts : int;
  mutable learnt_count : int;
  mutable model_valid : bool;
  mutable vivify_cursor : int;  (* round-robin position for vivification *)
  mutable last_inprocess : int;  (* total_conflicts at the last round *)
  (* cumulative search-phase counters; solve spans report their deltas *)
  mutable n_propagations : int;
  mutable n_decisions : int;
  mutable n_restarts : int;
  mutable n_reductions : int;
  mutable n_learnt_kept : int;  (* learnt clauses surviving reduce rounds *)
  mutable n_learnt_deleted : int;
  mutable n_subsumed : int;  (* clauses deleted by subsumption *)
  mutable n_strengthened : int;  (* clauses shrunk by self-subsumption *)
  mutable n_vivified : int;  (* literals removed by vivification *)
  mutable n_eliminated : int;  (* variables eliminated *)
  mutable n_rephases : int;
  mutable n_encoded : int;
      (* cumulative problem clauses added through the external API — the
         monotone count statistics deltas need (live counts can shrink
         when inprocessing deletes clauses) *)
  mutable n_import_dropped : int;
      (* imported clauses rejected by the bounds check: they named
         variables this solver never allocated *)
}

let create ?(config = default_config) () =
  if config.inprocess_interval < 1 then
    invalid_arg "Sat.create: inprocess_interval < 1";
  (match config.restart with
  | Luby base when base < 1 -> invalid_arg "Sat.create: Luby base < 1"
  | Geometric (base, f) when base < 1 || f < 1.0 ->
      invalid_arg "Sat.create: Geometric base < 1 or factor < 1.0"
  | _ -> ());
  {
    cfg = config;
    clauses = Array.make 64 { lits = [||]; learnt = false; act = 0.0; lbd = 0 };
    n_clauses = 0;
    free_list = [];
    watches = Array.init 2 (fun _ -> Vec.create ());
    assigns = Array.make 1 (-1);
    level = Array.make 1 0;
    reason = Array.make 1 (-1);
    polarity = Array.make 1 false;
    best_phase = Array.make 1 false;
    best_trail = 0;
    frozen = Array.make 1 false;
    eliminated = Array.make 1 false;
    ext_model = Array.make 1 (-1);
    elim_stack = [];
    activity = Array.make 1 0.0;
    heap = Array.make 1 0;
    heap_pos = Array.make 1 (-1);
    heap_len = 0;
    seen = Array.make 1 false;
    lbd_stamp = Array.make 2 0;
    lbd_gen = 0;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    total_conflicts = 0;
    learnt_count = 0;
    model_valid = false;
    vivify_cursor = 0;
    last_inprocess = 0;
    n_propagations = 0;
    n_decisions = 0;
    n_restarts = 0;
    n_reductions = 0;
    n_learnt_kept = 0;
    n_learnt_deleted = 0;
    n_subsumed = 0;
    n_strengthened = 0;
    n_vivified = 0;
    n_eliminated = 0;
    n_rephases = 0;
    n_encoded = 0;
    n_import_dropped = 0;
  }

let num_vars s = s.nvars
let num_clauses s = s.n_clauses - List.length s.free_list
let num_learnt s = s.learnt_count
let conflicts s = s.total_conflicts
let propagations s = s.n_propagations
let decisions s = s.n_decisions
let restarts s = s.n_restarts
let reductions s = s.n_reductions
let learnt_kept s = s.n_learnt_kept
let learnt_deleted s = s.n_learnt_deleted
let subsumed s = s.n_subsumed
let strengthened s = s.n_strengthened
let vivified s = s.n_vivified
let eliminated_vars s = s.n_eliminated
let rephases s = s.n_rephases
let encoded_clauses s = s.n_encoded
let import_dropped s = s.n_import_dropped

(* {1 Variable allocation} *)

let ensure_capacity s n =
  let cap = Array.length s.assigns in
  if n > cap then begin
    let ncap = max n (2 * cap) in
    let grow a def =
      let b = Array.make ncap def in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    s.assigns <- grow s.assigns (-1);
    s.level <- grow s.level 0;
    s.reason <- grow s.reason (-1);
    s.polarity <- grow s.polarity false;
    s.best_phase <- grow s.best_phase false;
    s.frozen <- grow s.frozen false;
    s.eliminated <- grow s.eliminated false;
    s.ext_model <- grow s.ext_model (-1);
    s.activity <- grow s.activity 0.0;
    s.heap <- grow s.heap 0;
    s.heap_pos <- grow s.heap_pos (-1);
    s.seen <- grow s.seen false;
    (* indexed by decision level, which can reach nvars *)
    let b = Array.make (ncap + 1) 0 in
    Array.blit s.lbd_stamp 0 b 0 (Array.length s.lbd_stamp);
    s.lbd_stamp <- b
  end

(* watches need one vec per literal; grow separately to keep fresh vecs *)
let ensure_watches s n =
  let need = 2 * n in
  if need > Array.length s.watches then begin
    let ncap = max need (2 * Array.length s.watches) in
    let nw = Array.init ncap (fun i ->
        if i < Array.length s.watches then s.watches.(i) else Vec.create ())
    in
    s.watches <- nw
  end

(* {1 VSIDS heap (max-heap on activity)} *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_len && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_len);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let heap_update s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let new_var s =
  let v = s.nvars in
  ensure_capacity s (v + 1);
  ensure_watches s (v + 1);
  s.nvars <- v + 1;
  s.assigns.(v) <- -1;
  s.reason.(v) <- -1;
  s.level.(v) <- 0;
  (* Seeded diversification: a nonzero branch seed perturbs the initial
     activity by a tiny epsilon (far below any bumped activity, so it only
     breaks ties among untouched variables), and the phase policy sets the
     first decision polarity.  The defaults (seed 0, Phase_neg) reproduce
     the historical solver bit for bit. *)
  s.activity.(v) <-
    (if s.cfg.branch_seed = 0 then 0.0
     else float_of_int (mix s.cfg.branch_seed v land 0xFFFF) *. 1e-12);
  s.heap_pos.(v) <- -1;
  let init_phase =
    match s.cfg.phase with
    | Phase_neg -> false
    | Phase_pos -> true
    | Phase_rand -> mix (s.cfg.branch_seed + 77) v land 1 = 1
  in
  s.polarity.(v) <- init_phase;
  s.best_phase.(v) <- init_phase;
  s.frozen.(v) <- false;
  s.eliminated.(v) <- false;
  s.ext_model.(v) <- -1;
  s.seen.(v) <- false;
  heap_insert s v;
  s.model_valid <- false;
  v + 1

let freeze s v =
  if v < 1 || v > s.nvars then invalid_arg "Sat.freeze: unknown variable";
  s.frozen.(v - 1) <- true

(* {1 Assignment primitives} *)

let lit_var l = l lsr 1
let lit_sign l = l land 1 (* 1 = negated *)

let lit_value s l =
  (* -1 unset, 1 true, 0 false *)
  let a = s.assigns.(lit_var l) in
  if a < 0 then -1 else a lxor lit_sign l

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  s.assigns.(lit_var l) <- 1 lxor lit_sign l;
  s.level.(lit_var l) <- decision_level s;
  s.reason.(lit_var l) <- reason;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.polarity.(v) <- lit_sign l = 0;
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* {1 Clause allocation and watching} *)

let freed_slot = { lits = [||]; learnt = true; act = 0.0; lbd = 0 }

let alloc_clause s lits learnt lbd =
  let c = { lits; learnt; act = 0.0; lbd } in
  let id =
    match s.free_list with
    | id :: rest ->
        s.free_list <- rest;
        s.clauses.(id) <- c;
        id
    | [] ->
        if s.n_clauses = Array.length s.clauses then begin
          let nc = Array.make (2 * s.n_clauses) c in
          Array.blit s.clauses 0 nc 0 s.n_clauses;
          s.clauses <- nc
        end;
        let id = s.n_clauses in
        s.clauses.(id) <- c;
        s.n_clauses <- s.n_clauses + 1;
        id
  in
  if learnt then s.learnt_count <- s.learnt_count + 1;
  Vec.push s.watches.(lits.(0)) id;
  Vec.push s.watches.(lits.(1)) id;
  id

(* {1 Unit propagation (two watched literals)} *)

exception Conflict of int

let propagate s =
  try
    while s.qhead < Vec.size s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.n_propagations <- s.n_propagations + 1;
      (* p became true; visit clauses watching ~p *)
      let falsified = p lxor 1 in
      let ws = s.watches.(falsified) in
      let n = Vec.size ws in
      let j = ref 0 in
      (try
         let i = ref 0 in
         while !i < n do
           let cid = Vec.get ws !i in
           incr i;
           let c = s.clauses.(cid) in
           let lits = c.lits in
           (* ensure the falsified literal is at position 1 *)
           if lits.(0) = falsified then begin
             lits.(0) <- lits.(1);
             lits.(1) <- falsified
           end;
           if lit_value s lits.(0) = 1 then begin
             (* clause already satisfied; keep watching *)
             Vec.set ws !j cid;
             incr j
           end
           else begin
             (* look for a new watch *)
             let len = Array.length lits in
             let k = ref 2 in
             while !k < len && lit_value s lits.(!k) = 0 do
               incr k
             done;
             if !k < len then begin
               (* found: move watch *)
               let w = lits.(!k) in
               lits.(!k) <- lits.(1);
               lits.(1) <- w;
               Vec.push s.watches.(w) cid
             end
             else if lit_value s lits.(0) = 0 then begin
               (* conflict: restore remaining watches and fail *)
               Vec.set ws !j cid;
               incr j;
               while !i < n do
                 Vec.set ws !j (Vec.get ws !i);
                 incr i;
                 incr j
               done;
               Vec.shrink ws !j;
               raise (Conflict cid)
             end
             else begin
               (* unit: propagate lits.(0) *)
               Vec.set ws !j cid;
               incr j;
               enqueue s lits.(0) cid
             end
           end
         done;
         Vec.shrink ws !j
       with Conflict _ as e -> raise e)
    done;
    -1
  with Conflict cid -> cid

(* {1 Activity} *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_update s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to s.n_clauses - 1 do
      let c = s.clauses.(i) in
      if c.learnt then c.act <- c.act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* {1 LBD}

   The number of distinct decision levels among a clause's literals,
   computed with a generation-stamped per-level array so each measurement
   is O(len) with no clearing pass. *)

let clause_lbd s lits len =
  s.lbd_gen <- s.lbd_gen + 1;
  let g = s.lbd_gen in
  let n = ref 0 in
  for i = 0 to len - 1 do
    let lv = s.level.(lit_var lits.(i)) in
    if lv > 0 && s.lbd_stamp.(lv) <> g then begin
      s.lbd_stamp.(lv) <- g;
      incr n
    end
  done;
  !n

(* {1 Conflict analysis (first UIP)} *)

let analyze s conflict_cid out_learnt =
  (* returns (backtrack level, lbd); fills out_learnt with the learned
     clause, asserting literal first *)
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let cid = ref conflict_cid in
  Vec.clear out_learnt;
  Vec.push out_learnt 0;
  (* placeholder for asserting literal *)
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!cid) in
    if c.learnt then begin
      cla_bump s c;
      (* glucose-style dynamic tightening: a revisited learnt clause whose
         current LBD beats the recorded one keeps the better value, which
         protects it through the next reduce round *)
      if s.cfg.lbd_retention && c.lbd > 2 then begin
        let l = clause_lbd s c.lits (Array.length c.lits) in
        if l < c.lbd then c.lbd <- l
      end
    end;
    let lits = c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr path
        else Vec.push out_learnt q
      end
    done;
    (* find next literal on the trail marked seen *)
    while not s.seen.(lit_var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    let v = lit_var !p in
    s.seen.(v) <- false;
    decr path;
    if !path > 0 then cid := s.reason.(v) else continue := false
  done;
  Vec.set out_learnt 0 (!p lxor 1);
  (* simple self-subsumption: drop literals implied by the rest *)
  let n = Vec.size out_learnt in
  let keep = Array.make n true in
  for i = 1 to n - 1 do
    let q = Vec.get out_learnt i in
    let r = s.reason.(lit_var q) in
    if r >= 0 then begin
      let c = s.clauses.(r) in
      let redundant = ref true in
      Array.iter
        (fun l ->
          if l <> (q lxor 1) then begin
            let v = lit_var l in
            if (not s.seen.(v)) && s.level.(v) > 0 then redundant := false
          end)
        c.lits;
      if !redundant then keep.(i) <- false
    end
  done;
  (* recompute the vec while clearing seen marks and finding the backtrack
     level (highest level among kept non-asserting literals) *)
  let kept = ref [ Vec.get out_learnt 0 ] in
  let blevel = ref 0 in
  let swap_pos = ref (-1) in
  for i = n - 1 downto 1 do
    let q = Vec.get out_learnt i in
    if keep.(i) then kept := q :: !kept
  done;
  (* clear seen for all literals we marked *)
  for i = 0 to n - 1 do
    s.seen.(lit_var (Vec.get out_learnt i)) <- false
  done;
  (* kept = [q1; ...; q_{n-1}; asserting]; reversing puts asserting first *)
  let arr = Array.of_list (List.rev !kept) in
  let len = Array.length arr in
  Vec.clear out_learnt;
  Array.iter (fun l -> Vec.push out_learnt l) arr;
  for i = 1 to len - 1 do
    let l = Vec.get out_learnt i in
    if s.level.(lit_var l) > !blevel then begin
      blevel := s.level.(lit_var l);
      swap_pos := i
    end
  done;
  (* put a highest-level literal at position 1 so it is watched *)
  if !swap_pos > 1 then begin
    let tmp = Vec.get out_learnt 1 in
    Vec.set out_learnt 1 (Vec.get out_learnt !swap_pos);
    Vec.set out_learnt !swap_pos tmp
  end;
  (!blevel, clause_lbd s arr len)

(* {1 Clause deletion} *)

let detach_clause s cid =
  let c = s.clauses.(cid) in
  let remove_watch l =
    let ws = s.watches.(l) in
    let n = Vec.size ws in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if Vec.get ws i <> cid then begin
        Vec.set ws !j (Vec.get ws i);
        incr j
      end
    done;
    Vec.shrink ws !j
  in
  remove_watch c.lits.(0);
  remove_watch c.lits.(1)

let locked s cid =
  let c = s.clauses.(cid) in
  lit_value s c.lits.(0) = 1 && s.reason.(lit_var c.lits.(0)) = cid

let free_clause s cid =
  let c = s.clauses.(cid) in
  detach_clause s cid;
  if c.learnt then s.learnt_count <- s.learnt_count - 1;
  s.clauses.(cid) <- freed_slot;
  s.free_list <- cid :: s.free_list

let reduce_db s =
  if s.cfg.lbd_retention then begin
    (* LBD-tiered retention: glue (lbd <= 2), binary, and locked clauses
       are never deleted; the rest is sorted worst-first (high LBD, then
       low activity, clause id as the deterministic tiebreak) and the
       worse half deleted *)
    let cand = ref [] in
    for i = s.n_clauses - 1 downto 0 do
      let c = s.clauses.(i) in
      if c.learnt && Array.length c.lits > 2 && c.lbd > 2 && not (locked s i)
      then cand := i :: !cand
    done;
    let arr = Array.of_list !cand in
    Array.sort
      (fun a b ->
        let ca = s.clauses.(a) and cb = s.clauses.(b) in
        if ca.lbd <> cb.lbd then compare cb.lbd ca.lbd
        else if ca.act <> cb.act then Float.compare ca.act cb.act
        else compare a b)
      arr;
    let ndel = Array.length arr / 2 in
    for i = 0 to ndel - 1 do
      free_clause s arr.(i)
    done;
    s.n_learnt_deleted <- s.n_learnt_deleted + ndel;
    s.n_learnt_kept <- s.n_learnt_kept + s.learnt_count
  end
  else begin
    (* legacy policy: delete the lower-activity half of long learnt
       clauses *)
    let learnt = ref [] in
    for i = 0 to s.n_clauses - 1 do
      let c = s.clauses.(i) in
      (* freed slots have empty literal arrays *)
      if c.learnt && Array.length c.lits > 2 then learnt := i :: !learnt
    done;
    let arr = Array.of_list !learnt in
    Array.sort
      (fun a b -> Float.compare s.clauses.(a).act s.clauses.(b).act)
      arr;
    let ndel = Array.length arr / 2 in
    let deleted = ref 0 in
    for i = 0 to ndel - 1 do
      let cid = arr.(i) in
      if not (locked s cid) then begin
        free_clause s cid;
        incr deleted
      end
    done;
    s.n_learnt_deleted <- s.n_learnt_deleted + !deleted;
    s.n_learnt_kept <- s.n_learnt_kept + s.learnt_count
  end

(* {1 Internal clause addition}

   The normalization path shared by variable-elimination resolvents and
   restored clauses: literals are already internal, the solver is at
   decision level 0.  Level-0-false literals are dropped, satisfied and
   tautological clauses skipped, units enqueued. *)

let add_internal s lits =
  if s.ok then begin
    let lits = List.sort_uniq Stdlib.compare lits in
    let tautology = List.exists (fun l -> List.mem (l lxor 1) lits) lits in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      if List.exists (fun l -> lit_value s l = 1) lits then ()
      else
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
            enqueue s l (-1);
            if propagate s >= 0 then s.ok <- false
        | _ -> ignore (alloc_clause s (Array.of_list lits) false 0)
    end
  end

(* {1 Variable elimination bookkeeping}

   Eliminating [v] removes every clause containing it and adds all
   non-tautological resolvents.  The removed problem clauses go on
   [elim_stack] so that (a) a model extends to [v] afterwards (witness
   reconstruction, newest elimination first) and (b) a later externally
   added clause mentioning an eliminated variable can restore them.

   Restoration is wholesale: a clause saved for [v] may mention a variable
   eliminated {e after} [v] — those later eliminations never saw the saved
   clause (it had left the database), so reintroducing it piecemeal would
   be unsound for them.  Restoring the entire stack, newest first, puts
   the database back into a state where every elimination's premises hold
   again.  [freeze] marks variables that must never be eliminated in the
   first place (activation-literal guards: cheap retraction must not turn
   into a full restore). *)

let restore_all s =
  let rec go () =
    match s.elim_stack with
    | [] -> ()
    | (v, saved) :: rest ->
        s.elim_stack <- rest;
        s.eliminated.(v) <- false;
        if s.assigns.(v) < 0 then heap_insert s v;
        List.iter (fun lits -> add_internal s (Array.to_list lits)) saved;
        go ()
  in
  go ()

(* Extend the model over eliminated variables, newest elimination first.
   At each step every non-[v] literal of [v]'s saved clauses is already
   assigned (saved clauses only mention variables alive at [v]'s
   elimination: never-eliminated ones the search assigned, later-eliminated
   ones already reconstructed).  [v] must be true iff some saved clause
   contains it positively with every other literal false; the standard
   witness argument shows the remaining saved clauses stay satisfied. *)

let reconstruct_model s =
  let litval l =
    let v = lit_var l in
    let a = if s.assigns.(v) >= 0 then s.assigns.(v) else s.ext_model.(v) in
    if a < 0 then -1 else a lxor lit_sign l
  in
  List.iter
    (fun (v, saved) ->
      let forces lits =
        Array.exists (fun l -> l = 2 * v) lits
        && Array.for_all (fun l -> lit_var l = v || litval l = 0) lits
      in
      s.ext_model.(v) <- (if List.exists forces saved then 1 else 0))
    s.elim_stack

(* {1 Inprocessing: subsumption and self-subsuming resolution}

   Occurrence lists are rebuilt per round (inprocessing is rare).  For
   each clause C in ascending id order, candidates D come from the
   occurrence list of C's least-frequent literal.  C ⊆ D deletes D (if D
   is a problem clause and C learnt, C is first promoted to problem rank
   so the clause database never loses irredundant strength); C
   self-subsuming D strengthens D in place.  Strengthened clauses also
   shed level-0-false literals so the two-watch invariant stays intact. *)

let strengthen_clause s cid drop =
  let c = s.clauses.(cid) in
  detach_clause s cid;
  let kept =
    Array.to_list c.lits
    |> List.filter (fun x -> x <> drop && lit_value s x <> 0)
  in
  if List.exists (fun x -> lit_value s x = 1) kept then begin
    (* satisfied at level 0: permanently true, delete *)
    if c.learnt then s.learnt_count <- s.learnt_count - 1;
    s.clauses.(cid) <- freed_slot;
    s.free_list <- cid :: s.free_list
  end
  else
    match kept with
    | [] ->
        s.ok <- false;
        if c.learnt then s.learnt_count <- s.learnt_count - 1;
        s.clauses.(cid) <- freed_slot;
        s.free_list <- cid :: s.free_list
    | [ l ] ->
        if c.learnt then s.learnt_count <- s.learnt_count - 1;
        s.clauses.(cid) <- freed_slot;
        s.free_list <- cid :: s.free_list;
        enqueue s l (-1);
        if propagate s >= 0 then s.ok <- false
    | _ ->
        let arr = Array.of_list kept in
        c.lits <- arr;
        if c.lbd > Array.length arr then c.lbd <- Array.length arr;
        Vec.push s.watches.(arr.(0)) cid;
        Vec.push s.watches.(arr.(1)) cid

let subsume_round s =
  let nlits = 2 * s.nvars in
  let occ = Array.init nlits (fun _ -> Vec.create ()) in
  for cid = 0 to s.n_clauses - 1 do
    let c = s.clauses.(cid) in
    if Array.length c.lits >= 2 then
      Array.iter (fun l -> Vec.push occ.(l) cid) c.lits
  done;
  let mark = Array.make nlits 0 in
  let gen = ref 0 in
  for cid = 0 to s.n_clauses - 1 do
    if s.ok then begin
      let c = s.clauses.(cid) in
      let len = Array.length c.lits in
      if len >= 2 && len <= 20 then begin
        incr gen;
        let g = !gen in
        Array.iter (fun l -> mark.(l) <- g) c.lits;
        let best = ref c.lits.(0) in
        Array.iter
          (fun l -> if Vec.size occ.(l) < Vec.size occ.(!best) then best := l)
          c.lits;
        let cand = occ.(!best) in
        let ncand = Vec.size cand in
        if ncand <= 1000 then
          for k = 0 to ncand - 1 do
            let did = Vec.get cand k in
            if did <> cid && s.ok then begin
              let d = s.clauses.(did) in
              let dlits = d.lits in
              let dlen = Array.length dlits in
              (* occurrence entries go stale when D was deleted or
                 strengthened; re-reading D's literals makes that safe *)
              if dlen >= len then begin
                let matched = ref 0 in
                let neg = ref (-1) in
                let negcount = ref 0 in
                for i = 0 to dlen - 1 do
                  let l = dlits.(i) in
                  if mark.(l) = g then incr matched
                  else if mark.(l lxor 1) = g then begin
                    incr negcount;
                    neg := l
                  end
                done;
                if !matched = len then begin
                  (* C subsumes D *)
                  if (not d.learnt) && c.learnt then begin
                    c.learnt <- false;
                    s.learnt_count <- s.learnt_count - 1
                  end;
                  free_clause s did;
                  s.n_subsumed <- s.n_subsumed + 1
                end
                else if !matched = len - 1 && !negcount = 1 then begin
                  (* self-subsuming resolution: remove !neg from D *)
                  strengthen_clause s did !neg;
                  s.n_strengthened <- s.n_strengthened + 1
                end
              end
            end
          done
      end
    end
  done

(* {1 Inprocessing: clause vivification}

   A bounded number of mid-length clauses per round (round-robin cursor
   over clause ids).  The clause is detached, its literals' negations
   assumed one by one on a throwaway decision level: a literal already
   true closes the clause at a prefix, a false one is redundant and
   dropped, and a conflict during propagation proves the assumed prefix
   itself contradictory. *)

let vivify_round s =
  let n = s.n_clauses in
  if n > 0 then begin
    let budget = ref 256 in
    let start = s.vivify_cursor mod n in
    let step = ref 0 in
    while !step < n && !budget > 0 && s.ok do
      let cid = (start + !step) mod n in
      incr step;
      let c = s.clauses.(cid) in
      let len = Array.length c.lits in
      if len >= 3 && len <= 32 && not (locked s cid) then begin
        decr budget;
        s.vivify_cursor <- cid + 1;
        detach_clause s cid;
        let lits = c.lits in
        let kept = ref [] in
        let satisfied = ref false in
        let stop = ref false in
        Vec.push s.trail_lim (Vec.size s.trail);
        let j = ref 0 in
        while (not !stop) && !j < len do
          let l = lits.(!j) in
          (match lit_value s l with
          | 1 ->
              if s.level.(lit_var l) = 0 then satisfied := true
              else kept := l :: !kept;
              stop := true
          | 0 -> () (* falsified at level 0 or by the prefix: redundant *)
          | _ ->
              kept := l :: !kept;
              enqueue s (l lxor 1) (-1);
              if propagate s >= 0 then stop := true);
          incr j
        done;
        cancel_until s 0;
        if !satisfied then begin
          if c.learnt then s.learnt_count <- s.learnt_count - 1;
          s.clauses.(cid) <- freed_slot;
          s.free_list <- cid :: s.free_list
        end
        else begin
          let arr = Array.of_list (List.rev !kept) in
          let nlen = Array.length arr in
          if nlen < len then s.n_vivified <- s.n_vivified + (len - nlen);
          match nlen with
          | 0 ->
              s.ok <- false;
              if c.learnt then s.learnt_count <- s.learnt_count - 1;
              s.clauses.(cid) <- freed_slot;
              s.free_list <- cid :: s.free_list
          | 1 ->
              if c.learnt then s.learnt_count <- s.learnt_count - 1;
              s.clauses.(cid) <- freed_slot;
              s.free_list <- cid :: s.free_list;
              (match lit_value s arr.(0) with
              | -1 ->
                  enqueue s arr.(0) (-1);
                  if propagate s >= 0 then s.ok <- false
              | 0 -> s.ok <- false
              | _ -> ())
          | _ ->
              c.lits <- arr;
              if c.lbd > nlen then c.lbd <- nlen;
              Vec.push s.watches.(arr.(0)) cid;
              Vec.push s.watches.(arr.(1)) cid
        end
      end
    done
  end

(* {1 Inprocessing: bounded variable elimination}

   Classic NiVER-style gate-free elimination: a variable with few
   occurrences on both sides goes away when its non-tautological
   resolvents number at most the problem clauses removed.  Learnt clauses
   containing the variable are deleted outright (they are consequences).
   Variables in resolvents added this round are marked dirty — their
   occurrence lists are incomplete — and skipped until the next round,
   which keeps the single occurrence-list build honest. *)

let elim_round s in_assum =
  let nlits = 2 * s.nvars in
  let occ = Array.init nlits (fun _ -> Vec.create ()) in
  for cid = 0 to s.n_clauses - 1 do
    let c = s.clauses.(cid) in
    if Array.length c.lits >= 2 then
      Array.iter (fun l -> Vec.push occ.(l) cid) c.lits
  done;
  let dirty = Array.make (max 1 s.nvars) false in
  let live_with cid l =
    let c = s.clauses.(cid) in
    Array.length c.lits >= 2 && Array.exists (fun x -> x = l) c.lits
  in
  for v = 0 to s.nvars - 1 do
    if
      s.ok
      && (not s.frozen.(v))
      && (not s.eliminated.(v))
      && s.assigns.(v) < 0
      && (not dirty.(v))
      && not (Array.length in_assum > v && in_assum.(v))
    then begin
      let pos = ref [] and npos = ref 0 in
      let negs = ref [] and nneg = ref 0 in
      let p = occ.(2 * v) and q = occ.((2 * v) + 1) in
      for i = Vec.size p - 1 downto 0 do
        let cid = Vec.get p i in
        if live_with cid (2 * v) then begin
          pos := cid :: !pos;
          incr npos
        end
      done;
      for i = Vec.size q - 1 downto 0 do
        let cid = Vec.get q i in
        if live_with cid ((2 * v) + 1) then begin
          negs := cid :: !negs;
          incr nneg
        end
      done;
      if !npos <= 8 && !nneg <= 8 && !npos + !nneg <= 12 then begin
        let prob_pos = List.filter (fun c -> not s.clauses.(c).learnt) !pos in
        let prob_neg = List.filter (fun c -> not s.clauses.(c).learnt) !negs in
        (* candidate resolvents of the problem clauses *)
        let resolvents = ref [] in
        let count = ref 0 in
        let too_big = ref false in
        List.iter
          (fun pc ->
            List.iter
              (fun nc ->
                if not !too_big then begin
                  let a = s.clauses.(pc).lits and b = s.clauses.(nc).lits in
                  let ls =
                    List.sort_uniq Stdlib.compare
                      (List.filter
                         (fun l -> lit_var l <> v)
                         (Array.to_list a @ Array.to_list b))
                  in
                  let taut =
                    List.exists (fun l -> List.mem (l lxor 1) ls) ls
                  in
                  if not taut then begin
                    if List.length ls > 24 then too_big := true
                    else begin
                      resolvents := ls :: !resolvents;
                      incr count
                    end
                  end
                end)
              prob_neg)
          prob_pos;
        let removed = List.length prob_pos + List.length prob_neg in
        if (not !too_big) && !count <= removed && removed > 0 then begin
          (* save the removed problem clauses for reconstruction/restore *)
          let saved =
            List.map
              (fun cid -> Array.copy s.clauses.(cid).lits)
              (prob_pos @ prob_neg)
          in
          s.elim_stack <- (v, saved) :: s.elim_stack;
          s.eliminated.(v) <- true;
          List.iter (fun cid -> free_clause s cid) !pos;
          List.iter (fun cid -> free_clause s cid) !negs;
          List.iter
            (fun ls ->
              List.iter (fun l -> dirty.(lit_var l) <- true) ls;
              add_internal s ls)
            (List.rev !resolvents);
          s.n_eliminated <- s.n_eliminated + 1
        end
      end
    end
  done

(* The inprocessing driver.  Runs at decision level 0 between restarts.
   Level-0 trail literals may carry reasons pointing into clause slots the
   passes are about to rewrite or recycle; the facts stand on their own,
   so the reasons are cleared first ([analyze] never dereferences a
   level-0 reason, and [locked] treats -1 as unlocked). *)

let inprocess s in_assum =
  cancel_until s 0;
  for i = 0 to Vec.size s.trail - 1 do
    s.reason.(lit_var (Vec.get s.trail i)) <- -1
  done;
  if s.cfg.subsume && s.ok then subsume_round s;
  if s.cfg.vivify && s.ok then vivify_round s;
  if s.cfg.elim && s.ok then elim_round s in_assum

(* {1 Adding clauses} *)

let add_clause_gen s ~learnt ext_lits =
  s.model_valid <- false;
  cancel_until s 0;
  if not learnt then s.n_encoded <- s.n_encoded + 1;
  if s.ok then begin
    let to_int l =
      let v = abs l in
      if v < 1 || v > s.nvars then
        invalid_arg (Printf.sprintf "Sat.add_clause: unknown variable %d" v);
      (2 * (v - 1)) lor (if l < 0 then 1 else 0)
    in
    let lits = List.map to_int ext_lits in
    (* a new clause over an eliminated variable invalidates that
       elimination's premise (all clauses mentioning the variable were
       resolved away); put the saved clauses back before accepting it *)
    if List.exists (fun l -> s.eliminated.(lit_var l)) lits then
      restore_all s;
    if s.ok then begin
      (* remove duplicates, detect tautologies, drop false-at-level-0 lits *)
      let lits = List.sort_uniq Stdlib.compare lits in
      let tautology =
        List.exists (fun l -> List.mem (l lxor 1) lits) lits
      in
      if not tautology then begin
        let lits = List.filter (fun l -> lit_value s l <> 0) lits in
        if List.exists (fun l -> lit_value s l = 1) lits then ()
        else
          match lits with
          | [] -> s.ok <- false
          | [ l ] ->
              enqueue s l (-1);
              if propagate s >= 0 then s.ok <- false
          | _ ->
              ignore
                (alloc_clause s (Array.of_list lits) learnt
                   (if learnt then List.length lits else 0))
      end
    end
  end

let add_clause s ext_lits = add_clause_gen s ~learnt:false ext_lits

(* Learned-clause exchange (the cross-run warm-start path).  Exported
   clauses are consequences of the formula they were learned from, so they
   are only sound to import into a solver holding {e the same} encoding —
   the cache guards this with an exact problem fingerprint.  Imports are
   allocated as learnt clauses: they never count as problem clauses in the
   statistics and [reduce_db] may drop them again if they turn out not to
   pull their weight.  Learnt clauses over eliminated variables never
   exist (elimination deletes them), so exports are clean; imports go
   through [add_clause_gen], whose restore-on-add covers the converse. *)

let export_learnt ?(max_lbd = max_int) s =
  let out = ref [] in
  let to_ext l =
    let v = (l lsr 1) + 1 in
    if l land 1 = 1 then -v else v
  in
  for i = s.n_clauses - 1 downto 0 do
    let c = s.clauses.(i) in
    if c.learnt && Array.length c.lits > 0 && c.lbd <= max_lbd then
      out := Array.to_list (Array.map to_ext c.lits) :: !out
  done;
  !out

let import_learnt s clauses =
  let imported = ref 0 in
  List.iter
    (fun lits ->
      if
        lits <> []
        && List.for_all (fun l -> l <> min_int && abs l >= 1 && abs l <= s.nvars) lits
      then begin
        add_clause_gen s ~learnt:true lits;
        incr imported
      end
      else
        (* clause over variables this solver never allocated (or empty):
           silently adding it would index watch lists out of range, so it
           is dropped — and counted, because a high drop rate means the
           exporter and importer do not share an encoding *)
        s.n_import_dropped <- s.n_import_dropped + 1)
    clauses;
  !imported

(* The K most clause-constrained variables — a static occurrence-count
   proxy for the lookahead heuristic a cube-and-conquer splitter wants.
   Only unassigned, decidable problem variables qualify (root-fixed,
   eliminated, and frozen activation-guard variables make useless cube
   literals).  Ties break by variable index, so the split is deterministic
   for a fixed encoding.  Returns DIMACS (positive) indices. *)
let top_vars s k =
  if k <= 0 || s.nvars = 0 then []
  else begin
    let occ = Array.make s.nvars 0 in
    for i = 0 to s.n_clauses - 1 do
      let c = s.clauses.(i) in
      if (not c.learnt) && Array.length c.lits > 0 then
        Array.iter (fun l -> occ.(lit_var l) <- occ.(lit_var l) + 1) c.lits
    done;
    let cand = ref [] in
    for v = s.nvars - 1 downto 0 do
      if
        s.assigns.(v) < 0 && (not s.eliminated.(v)) && (not s.frozen.(v))
        && occ.(v) > 0
      then cand := v :: !cand
    done;
    let sorted =
      List.stable_sort (fun a b -> compare occ.(b) occ.(a)) !cand
    in
    List.filteri (fun i _ -> i < k) sorted |> List.map (fun v -> v + 1)
  end

(* {1 Search} *)

let luby x =
  (* Luby sequence for 1-based index x: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let x = ref (x - 1) in
  let size = ref 1 and seq = ref 0 in
  while !size < !x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

(* Interval until the k-th restart (1-based), per the configured schedule.
   [Luby base] is the classic base*luby(k) staircase (the legacy behavior
   at base 100); [Geometric] grows from its first interval by a constant
   factor, capped to keep the float->int conversion safe. *)
let restart_interval s k =
  match s.cfg.restart with
  | Luby base -> base * luby k
  | Geometric (base, f) ->
      let iv = float_of_int base *. (f ** float_of_int (k - 1)) in
      if iv >= 1e9 then 1_000_000_000 else max 1 (int_of_float iv)

let solve_inner ?(assumptions = []) ?(budget = max_int) ?deadline s =
  cancel_until s 0;
  s.model_valid <- false;
  if not s.ok then Unsat
  else if
    (* the in-search deadline test only runs every 256 conflicts, so an
       easy formula could slip past an already-expired deadline entirely;
       refuse up front instead (the solver stays reusable) *)
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  then Unknown
  else begin
    let assum =
      List.map
        (fun l ->
          let v = abs l in
          if v < 1 || v > s.nvars then
            invalid_arg (Printf.sprintf "Sat.solve: unknown assumption %d" v);
          (2 * (v - 1)) lor (if l < 0 then 1 else 0))
        assumptions
      |> Array.of_list
    in
    (* assumptions over eliminated variables re-constrain them: restore
       first (defensive — [freeze] normally keeps assumption variables
       out of elimination's reach entirely) *)
    if Array.exists (fun l -> s.eliminated.(lit_var l)) assum then
      restore_all s;
    let inprocessing = s.cfg.subsume || s.cfg.vivify || s.cfg.elim in
    let in_assum =
      if s.cfg.elim then begin
        let a = Array.make (max 1 s.nvars) false in
        Array.iter (fun l -> a.(lit_var l) <- true) assum;
        a
      end
      else [||]
    in
    let learnt = Vec.create () in
    let conflicts_this = ref 0 in
    let restart_count = ref 0 in
    let next_restart = ref (restart_interval s 1) in
    let result = ref None in
    (if propagate s >= 0 || not s.ok then begin
       s.ok <- false;
       result := Some Unsat
     end);
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        (* conflict *)
        incr conflicts_this;
        s.total_conflicts <- s.total_conflicts + 1;
        if decision_level s <= Array.length assum then begin
          (* conflict under (or below) assumptions *)
          if decision_level s = 0 then s.ok <- false;
          result := Some Unsat
        end
        else begin
          (* best-phase tracking: the deepest trail seen is the best
             progress measure available; snapshot its polarities *)
          (if s.cfg.rephase then begin
             let tn = Vec.size s.trail in
             if tn > s.best_trail then begin
               s.best_trail <- tn;
               for i = 0 to tn - 1 do
                 let l = Vec.get s.trail i in
                 s.best_phase.(lit_var l) <- l land 1 = 0
               done
             end
           end);
          let blevel, lbd = analyze s confl learnt in
          (* never backtrack below the assumption levels *)
          let blevel = max blevel (min (Array.length assum) (decision_level s - 1)) in
          cancel_until s blevel;
          (if Vec.size learnt = 1 then begin
             let l = Vec.get learnt 0 in
             if lit_value s l = -1 then enqueue s l (-1)
             else if lit_value s l = 0 then begin
               if decision_level s = 0 then s.ok <- false;
               result := Some Unsat
             end
           end
           else begin
             let arr = Array.init (Vec.size learnt) (Vec.get learnt) in
             let cid = alloc_clause s arr true lbd in
             cla_bump s s.clauses.(cid);
             if lit_value s arr.(0) = -1 then enqueue s arr.(0) cid
           end);
          var_decay s;
          cla_decay s;
          if !conflicts_this > budget then result := Some Unknown
          else if
            !conflicts_this land 255 = 0
            && match deadline with
               | Some d -> Unix.gettimeofday () > d
               | None -> false
          then result := Some Unknown
          else if !conflicts_this >= !next_restart then begin
            incr restart_count;
            s.n_restarts <- s.n_restarts + 1;
            next_restart :=
              !conflicts_this + restart_interval s (!restart_count + 1);
            if Obs.enabled () then
              Obs.instant "sat.restart"
                ~args:
                  [
                    ("conflicts", Obs.Int !conflicts_this);
                    ("learnt", Obs.Int s.learnt_count);
                  ];
            cancel_until s (min (Array.length assum) (decision_level s));
            (if s.cfg.rephase && !restart_count land 15 = 0 then begin
               (* every 16th restart: overwrite the saved phases with the
                  best snapshot, pointing the search back at the deepest
                  partial assignment found so far *)
               Array.blit s.best_phase 0 s.polarity 0 s.nvars;
               s.best_trail <- 0;
               s.n_rephases <- s.n_rephases + 1;
               if Obs.enabled () then
                 Obs.instant "sat.rephase"
                   ~args:[ ("restart", Obs.Int !restart_count) ]
             end);
            if
              inprocessing
              && s.total_conflicts - s.last_inprocess
                 >= s.cfg.inprocess_interval
            then begin
              s.last_inprocess <- s.total_conflicts;
              let sub0 = s.n_subsumed
              and str0 = s.n_strengthened
              and viv0 = s.n_vivified
              and el0 = s.n_eliminated in
              Obs.span "sat.inprocess"
                ~result:(fun () ->
                  [
                    ("subsumed", Obs.Int (s.n_subsumed - sub0));
                    ("strengthened", Obs.Int (s.n_strengthened - str0));
                    ("vivified_lits", Obs.Int (s.n_vivified - viv0));
                    ("eliminated_vars", Obs.Int (s.n_eliminated - el0));
                  ])
                (fun () -> inprocess s in_assum);
              if not s.ok then result := Some Unsat
            end
          end
          else if
            (if s.cfg.lbd_retention then
               s.learnt_count > 2000 + (300 * s.n_reductions)
             else s.learnt_count > 4000 + (num_clauses s / 2))
          then begin
            s.n_reductions <- s.n_reductions + 1;
            Obs.span "sat.reduce_db"
              ~result:(fun () -> [ ("learnt_after", Obs.Int s.learnt_count) ])
              (fun () -> reduce_db s)
          end
        end
      end
      else begin
        (* no conflict: pick assumption or decide *)
        let dl = decision_level s in
        if dl < Array.length assum then begin
          let l = assum.(dl) in
          match lit_value s l with
          | 1 ->
              (* already satisfied: open a trivial level to keep indices aligned *)
              Vec.push s.trail_lim (Vec.size s.trail)
          | 0 -> result := Some Unsat (* assumption falsified *)
          | _ ->
              Vec.push s.trail_lim (Vec.size s.trail);
              enqueue s l (-1)
        end
        else begin
          (* VSIDS decision; eliminated variables are not decidable — their
             values come from witness reconstruction after Sat *)
          let v = ref (-1) in
          while !v < 0 && s.heap_len > 0 do
            let cand = heap_pop s in
            if s.assigns.(cand) < 0 && not s.eliminated.(cand) then v := cand
          done;
          if !v < 0 then begin
            reconstruct_model s;
            s.model_valid <- true;
            result := Some Sat
          end
          else begin
            s.n_decisions <- s.n_decisions + 1;
            Vec.push s.trail_lim (Vec.size s.trail);
            let l = (2 * !v) lor if s.polarity.(!v) then 0 else 1 in
            enqueue s l (-1)
          end
        end
      end
    done;
    (match !result with
    | Some Sat -> ()
    | _ -> cancel_until s 0);
    Option.get !result
  end

(* Observability wrapper: [solve_inner] only pays plain field increments;
   counter deltas and the span are accounted here, once per call. *)

let c_propagations = Obs.counter "sat.propagations"
let c_decisions = Obs.counter "sat.decisions"
let c_conflicts = Obs.counter "sat.conflicts"
let c_restarts = Obs.counter "sat.restarts"
let c_reduce_dbs = Obs.counter "sat.reduce_dbs"
let c_solves = Obs.counter "sat.solves"
let c_learnt_deleted = Obs.counter "sat.learnt_deleted"
let c_subsumed = Obs.counter "sat.subsumed"
let c_strengthened = Obs.counter "sat.strengthened"
let c_vivified = Obs.counter "sat.vivified_lits"
let c_eliminated_vars = Obs.counter "sat.eliminated_vars"
let c_rephases = Obs.counter "sat.rephases"

let result_name = function
  | Sat -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"

let solve ?(assumptions = []) ?(budget = max_int) ?deadline s =
  if not (Obs.enabled () || Obs.metrics_enabled ()) then
    solve_inner ~assumptions ~budget ?deadline s
  else begin
    let c0 = s.total_conflicts
    and p0 = s.n_propagations
    and d0 = s.n_decisions
    and r0 = s.n_restarts
    and g0 = s.n_reductions
    and del0 = s.n_learnt_deleted
    and sub0 = s.n_subsumed
    and str0 = s.n_strengthened
    and viv0 = s.n_vivified
    and el0 = s.n_eliminated
    and re0 = s.n_rephases in
    let r =
      Obs.span "sat.solve"
        ~args:
          [
            ("vars", Obs.Int (num_vars s));
            ("clauses", Obs.Int (num_clauses s));
            ("assumptions", Obs.Int (List.length assumptions));
          ]
        ~result:(fun r ->
          [
            ("result", Obs.Str (result_name r));
            ("conflicts", Obs.Int (s.total_conflicts - c0));
            ("propagations", Obs.Int (s.n_propagations - p0));
            ("decisions", Obs.Int (s.n_decisions - d0));
            ("restarts", Obs.Int (s.n_restarts - r0));
            ("subsumed", Obs.Int (s.n_subsumed - sub0));
            ("eliminated_vars", Obs.Int (s.n_eliminated - el0));
          ])
        (fun () -> solve_inner ~assumptions ~budget ?deadline s)
    in
    Obs.incr c_solves;
    Obs.incr ~by:(s.total_conflicts - c0) c_conflicts;
    Obs.incr ~by:(s.n_propagations - p0) c_propagations;
    Obs.incr ~by:(s.n_decisions - d0) c_decisions;
    Obs.incr ~by:(s.n_restarts - r0) c_restarts;
    Obs.incr ~by:(s.n_reductions - g0) c_reduce_dbs;
    Obs.incr ~by:(s.n_learnt_deleted - del0) c_learnt_deleted;
    Obs.incr ~by:(s.n_subsumed - sub0) c_subsumed;
    Obs.incr ~by:(s.n_strengthened - str0) c_strengthened;
    Obs.incr ~by:(s.n_vivified - viv0) c_vivified;
    Obs.incr ~by:(s.n_eliminated - el0) c_eliminated_vars;
    Obs.incr ~by:(s.n_rephases - re0) c_rephases;
    r
  end

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Sat.value: unknown variable";
  if not s.model_valid then invalid_arg "Sat.value: no model available";
  let i = v - 1 in
  if s.assigns.(i) >= 0 then s.assigns.(i) = 1 else s.ext_model.(i) = 1
