(* CDCL SAT solver.

   Internal representation: variables are 0-based; a literal is [2*v] for
   the positive phase and [2*v + 1] for the negative phase, so negation is
   [lxor 1] and the variable is [lsr 1].  The external API speaks DIMACS. *)

type result = Sat | Unsat | Unknown

(* {1 Dynamic int arrays} *)

module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.len
  let shrink v n = v.len <- n
  let clear v = v.len <- 0
end

(* {1 Clauses}

   Clauses live in a growable table of int arrays.  Learned clauses carry a
   float activity used for deletion. *)

type clause = { mutable lits : int array; learnt : bool; mutable act : float }

type t = {
  mutable clauses : clause array;  (* dense table; index = clause id *)
  mutable n_clauses : int;
  mutable free_list : int list;  (* recycled clause slots *)
  mutable watches : Vec.t array;  (* per literal: clause ids *)
  mutable assigns : int array;  (* per var: -1 unset / 0 false / 1 true *)
  mutable level : int array;  (* per var *)
  mutable reason : int array;  (* per var: clause id or -1 *)
  mutable polarity : bool array;  (* saved phase *)
  mutable activity : float array;  (* VSIDS *)
  mutable heap : int array;  (* binary max-heap of vars *)
  mutable heap_pos : int array;  (* var -> heap index or -1 *)
  mutable heap_len : int;
  mutable seen : bool array;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;  (* false once a top-level conflict is derived *)
  mutable total_conflicts : int;
  mutable learnt_count : int;
  mutable model_valid : bool;
  (* cumulative search-phase counters; solve spans report their deltas *)
  mutable n_propagations : int;
  mutable n_decisions : int;
  mutable n_restarts : int;
  mutable n_reductions : int;
}

let create () =
  {
    clauses = Array.make 64 { lits = [||]; learnt = false; act = 0.0 };
    n_clauses = 0;
    free_list = [];
    watches = Array.init 2 (fun _ -> Vec.create ());
    assigns = Array.make 1 (-1);
    level = Array.make 1 0;
    reason = Array.make 1 (-1);
    polarity = Array.make 1 false;
    activity = Array.make 1 0.0;
    heap = Array.make 1 0;
    heap_pos = Array.make 1 (-1);
    heap_len = 0;
    seen = Array.make 1 false;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    nvars = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    total_conflicts = 0;
    learnt_count = 0;
    model_valid = false;
    n_propagations = 0;
    n_decisions = 0;
    n_restarts = 0;
    n_reductions = 0;
  }

let num_vars s = s.nvars
let num_clauses s = s.n_clauses - List.length s.free_list
let num_learnt s = s.learnt_count
let conflicts s = s.total_conflicts
let propagations s = s.n_propagations
let decisions s = s.n_decisions
let restarts s = s.n_restarts
let reductions s = s.n_reductions

(* {1 Variable allocation} *)

let ensure_capacity s n =
  let cap = Array.length s.assigns in
  if n > cap then begin
    let ncap = max n (2 * cap) in
    let grow a def =
      let b = Array.make ncap def in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    s.assigns <- grow s.assigns (-1);
    s.level <- grow s.level 0;
    s.reason <- grow s.reason (-1);
    s.polarity <- grow s.polarity false;
    s.activity <- grow s.activity 0.0;
    s.heap <- grow s.heap 0;
    s.heap_pos <- grow s.heap_pos (-1);
    s.seen <- grow s.seen false
  end

(* watches need one vec per literal; grow separately to keep fresh vecs *)
let ensure_watches s n =
  let need = 2 * n in
  if need > Array.length s.watches then begin
    let ncap = max need (2 * Array.length s.watches) in
    let nw = Array.init ncap (fun i ->
        if i < Array.length s.watches then s.watches.(i) else Vec.create ())
    in
    s.watches <- nw
  end

(* {1 VSIDS heap (max-heap on activity)} *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_len && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_len);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let heap_update s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let new_var s =
  let v = s.nvars in
  ensure_capacity s (v + 1);
  ensure_watches s (v + 1);
  s.nvars <- v + 1;
  s.assigns.(v) <- -1;
  s.reason.(v) <- -1;
  s.level.(v) <- 0;
  s.activity.(v) <- 0.0;
  s.heap_pos.(v) <- -1;
  s.polarity.(v) <- false;
  s.seen.(v) <- false;
  heap_insert s v;
  s.model_valid <- false;
  v + 1

(* {1 Assignment primitives} *)

let lit_var l = l lsr 1
let lit_sign l = l land 1 (* 1 = negated *)

let lit_value s l =
  (* -1 unset, 1 true, 0 false *)
  let a = s.assigns.(lit_var l) in
  if a < 0 then -1 else a lxor lit_sign l

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  s.assigns.(lit_var l) <- 1 lxor lit_sign l;
  s.level.(lit_var l) <- decision_level s;
  s.reason.(lit_var l) <- reason;
  Vec.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.polarity.(v) <- lit_sign l = 0;
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* {1 Clause allocation and watching} *)

let alloc_clause s lits learnt =
  let c = { lits; learnt; act = 0.0 } in
  let id =
    match s.free_list with
    | id :: rest ->
        s.free_list <- rest;
        s.clauses.(id) <- c;
        id
    | [] ->
        if s.n_clauses = Array.length s.clauses then begin
          let nc = Array.make (2 * s.n_clauses) c in
          Array.blit s.clauses 0 nc 0 s.n_clauses;
          s.clauses <- nc
        end;
        let id = s.n_clauses in
        s.clauses.(id) <- c;
        s.n_clauses <- s.n_clauses + 1;
        id
  in
  if learnt then s.learnt_count <- s.learnt_count + 1;
  Vec.push s.watches.(lits.(0)) id;
  Vec.push s.watches.(lits.(1)) id;
  id

(* {1 Unit propagation (two watched literals)} *)

exception Conflict of int

let propagate s =
  try
    while s.qhead < Vec.size s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.n_propagations <- s.n_propagations + 1;
      (* p became true; visit clauses watching ~p *)
      let falsified = p lxor 1 in
      let ws = s.watches.(falsified) in
      let n = Vec.size ws in
      let j = ref 0 in
      (try
         let i = ref 0 in
         while !i < n do
           let cid = Vec.get ws !i in
           incr i;
           let c = s.clauses.(cid) in
           let lits = c.lits in
           (* ensure the falsified literal is at position 1 *)
           if lits.(0) = falsified then begin
             lits.(0) <- lits.(1);
             lits.(1) <- falsified
           end;
           if lit_value s lits.(0) = 1 then begin
             (* clause already satisfied; keep watching *)
             Vec.set ws !j cid;
             incr j
           end
           else begin
             (* look for a new watch *)
             let len = Array.length lits in
             let k = ref 2 in
             while !k < len && lit_value s lits.(!k) = 0 do
               incr k
             done;
             if !k < len then begin
               (* found: move watch *)
               let w = lits.(!k) in
               lits.(!k) <- lits.(1);
               lits.(1) <- w;
               Vec.push s.watches.(w) cid
             end
             else if lit_value s lits.(0) = 0 then begin
               (* conflict: restore remaining watches and fail *)
               Vec.set ws !j cid;
               incr j;
               while !i < n do
                 Vec.set ws !j (Vec.get ws !i);
                 incr i;
                 incr j
               done;
               Vec.shrink ws !j;
               raise (Conflict cid)
             end
             else begin
               (* unit: propagate lits.(0) *)
               Vec.set ws !j cid;
               incr j;
               enqueue s lits.(0) cid
             end
           end
         done;
         Vec.shrink ws !j
       with Conflict _ as e -> raise e)
    done;
    -1
  with Conflict cid -> cid

(* {1 Activity} *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_update s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to s.n_clauses - 1 do
      let c = s.clauses.(i) in
      if c.learnt then c.act <- c.act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* {1 Conflict analysis (first UIP)} *)

let analyze s conflict_cid out_learnt =
  (* returns backtrack level; fills out_learnt with the learned clause,
     asserting literal first *)
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let cid = ref conflict_cid in
  Vec.clear out_learnt;
  Vec.push out_learnt 0;
  (* placeholder for asserting literal *)
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!cid) in
    if c.learnt then cla_bump s c;
    let lits = c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr path
        else Vec.push out_learnt q
      end
    done;
    (* find next literal on the trail marked seen *)
    while not s.seen.(lit_var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    let v = lit_var !p in
    s.seen.(v) <- false;
    decr path;
    if !path > 0 then cid := s.reason.(v) else continue := false
  done;
  Vec.set out_learnt 0 (!p lxor 1);
  (* simple self-subsumption: drop literals implied by the rest *)
  let n = Vec.size out_learnt in
  let keep = Array.make n true in
  for i = 1 to n - 1 do
    let q = Vec.get out_learnt i in
    let r = s.reason.(lit_var q) in
    if r >= 0 then begin
      let c = s.clauses.(r) in
      let redundant = ref true in
      Array.iter
        (fun l ->
          if l <> (q lxor 1) then begin
            let v = lit_var l in
            if (not s.seen.(v)) && s.level.(v) > 0 then redundant := false
          end)
        c.lits;
      if !redundant then keep.(i) <- false
    end
  done;
  (* recompute the vec while clearing seen marks and finding the backtrack
     level (highest level among kept non-asserting literals) *)
  let kept = ref [ Vec.get out_learnt 0 ] in
  let blevel = ref 0 in
  let swap_pos = ref (-1) in
  for i = n - 1 downto 1 do
    let q = Vec.get out_learnt i in
    if keep.(i) then kept := q :: !kept
  done;
  (* clear seen for all literals we marked *)
  for i = 0 to n - 1 do
    s.seen.(lit_var (Vec.get out_learnt i)) <- false
  done;
  (* kept = [q1; ...; q_{n-1}; asserting]; reversing puts asserting first *)
  let arr = Array.of_list (List.rev !kept) in
  let len = Array.length arr in
  Vec.clear out_learnt;
  Array.iter (fun l -> Vec.push out_learnt l) arr;
  for i = 1 to len - 1 do
    let l = Vec.get out_learnt i in
    if s.level.(lit_var l) > !blevel then begin
      blevel := s.level.(lit_var l);
      swap_pos := i
    end
  done;
  (* put a highest-level literal at position 1 so it is watched *)
  if !swap_pos > 1 then begin
    let tmp = Vec.get out_learnt 1 in
    Vec.set out_learnt 1 (Vec.get out_learnt !swap_pos);
    Vec.set out_learnt !swap_pos tmp
  end;
  !blevel

(* {1 Learned clause deletion} *)

let detach_clause s cid =
  let c = s.clauses.(cid) in
  let remove_watch l =
    let ws = s.watches.(l) in
    let n = Vec.size ws in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if Vec.get ws i <> cid then begin
        Vec.set ws !j (Vec.get ws i);
        incr j
      end
    done;
    Vec.shrink ws !j
  in
  remove_watch c.lits.(0);
  remove_watch c.lits.(1)

let locked s cid =
  let c = s.clauses.(cid) in
  lit_value s c.lits.(0) = 1 && s.reason.(lit_var c.lits.(0)) = cid

let reduce_db s =
  (* delete the lower-activity half of long learned clauses *)
  let learnt = ref [] in
  for i = 0 to s.n_clauses - 1 do
    let c = s.clauses.(i) in
    (* freed slots have empty literal arrays *)
    if c.learnt && Array.length c.lits > 2 then learnt := i :: !learnt
  done;
  let arr = Array.of_list !learnt in
  Array.sort (fun a b -> Float.compare s.clauses.(a).act s.clauses.(b).act) arr;
  let ndel = Array.length arr / 2 in
  for i = 0 to ndel - 1 do
    let cid = arr.(i) in
    if not (locked s cid) then begin
      detach_clause s cid;
      s.clauses.(cid) <- { lits = [||]; learnt = true; act = 0.0 };
      s.free_list <- cid :: s.free_list;
      s.learnt_count <- s.learnt_count - 1
    end
  done

(* {1 Adding clauses} *)

let add_clause_gen s ~learnt ext_lits =
  s.model_valid <- false;
  cancel_until s 0;
  if s.ok then begin
    let to_int l =
      let v = abs l in
      if v < 1 || v > s.nvars then
        invalid_arg (Printf.sprintf "Sat.add_clause: unknown variable %d" v);
      (2 * (v - 1)) lor (if l < 0 then 1 else 0)
    in
    let lits = List.map to_int ext_lits in
    (* remove duplicates, detect tautologies, drop false-at-level-0 lits *)
    let lits = List.sort_uniq Stdlib.compare lits in
    let tautology =
      List.exists (fun l -> List.mem (l lxor 1) lits) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      if List.exists (fun l -> lit_value s l = 1) lits then ()
      else
        match lits with
        | [] -> s.ok <- false
        | [ l ] ->
            enqueue s l (-1);
            if propagate s >= 0 then s.ok <- false
        | _ -> ignore (alloc_clause s (Array.of_list lits) learnt)
    end
  end

let add_clause s ext_lits = add_clause_gen s ~learnt:false ext_lits

(* Learned-clause exchange (the cross-run warm-start path).  Exported
   clauses are consequences of the formula they were learned from, so they
   are only sound to import into a solver holding {e the same} encoding —
   the cache guards this with an exact problem fingerprint.  Imports are
   allocated as learnt clauses: they never count as problem clauses in the
   statistics and [reduce_db] may drop them again if they turn out not to
   pull their weight. *)

let export_learnt s =
  let out = ref [] in
  let to_ext l =
    let v = (l lsr 1) + 1 in
    if l land 1 = 1 then -v else v
  in
  for i = s.n_clauses - 1 downto 0 do
    let c = s.clauses.(i) in
    if c.learnt && Array.length c.lits > 0 then
      out := Array.to_list (Array.map to_ext c.lits) :: !out
  done;
  !out

let import_learnt s clauses =
  let imported = ref 0 in
  List.iter
    (fun lits ->
      if
        lits <> []
        && List.for_all (fun l -> abs l >= 1 && abs l <= s.nvars) lits
      then begin
        add_clause_gen s ~learnt:true lits;
        incr imported
      end)
    clauses;
  !imported

(* {1 Search} *)

let luby x =
  (* Luby sequence for 1-based index x: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
  let x = ref (x - 1) in
  let size = ref 1 and seq = ref 0 in
  while !size < !x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let solve_inner ?(assumptions = []) ?(budget = max_int) ?deadline s =
  cancel_until s 0;
  s.model_valid <- false;
  if not s.ok then Unsat
  else if
    (* the in-search deadline test only runs every 256 conflicts, so an
       easy formula could slip past an already-expired deadline entirely;
       refuse up front instead (the solver stays reusable) *)
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  then Unknown
  else begin
    let assum =
      List.map
        (fun l ->
          let v = abs l in
          if v < 1 || v > s.nvars then
            invalid_arg (Printf.sprintf "Sat.solve: unknown assumption %d" v);
          (2 * (v - 1)) lor (if l < 0 then 1 else 0))
        assumptions
      |> Array.of_list
    in
    let learnt = Vec.create () in
    let conflicts_this = ref 0 in
    let restart_count = ref 0 in
    let next_restart = ref (100 * luby 1) in
    let result = ref None in
    (if propagate s >= 0 then begin
       s.ok <- false;
       result := Some Unsat
     end);
    while !result = None do
      let confl = propagate s in
      if confl >= 0 then begin
        (* conflict *)
        incr conflicts_this;
        s.total_conflicts <- s.total_conflicts + 1;
        if decision_level s <= Array.length assum then begin
          (* conflict under (or below) assumptions *)
          if decision_level s = 0 then s.ok <- false;
          result := Some Unsat
        end
        else begin
          let blevel = analyze s confl learnt in
          (* never backtrack below the assumption levels *)
          let blevel = max blevel (min (Array.length assum) (decision_level s - 1)) in
          cancel_until s blevel;
          (if Vec.size learnt = 1 then begin
             let l = Vec.get learnt 0 in
             if lit_value s l = -1 then enqueue s l (-1)
             else if lit_value s l = 0 then begin
               if decision_level s = 0 then s.ok <- false;
               result := Some Unsat
             end
           end
           else begin
             let arr = Array.init (Vec.size learnt) (Vec.get learnt) in
             let cid = alloc_clause s arr true in
             cla_bump s s.clauses.(cid);
             if lit_value s arr.(0) = -1 then enqueue s arr.(0) cid
           end);
          var_decay s;
          cla_decay s;
          if !conflicts_this > budget then result := Some Unknown
          else if
            !conflicts_this land 255 = 0
            && match deadline with
               | Some d -> Unix.gettimeofday () > d
               | None -> false
          then result := Some Unknown
          else if !conflicts_this >= !next_restart then begin
            incr restart_count;
            s.n_restarts <- s.n_restarts + 1;
            next_restart :=
              !conflicts_this + (100 * luby (!restart_count + 1));
            if Obs.enabled () then
              Obs.instant "sat.restart"
                ~args:
                  [
                    ("conflicts", Obs.Int !conflicts_this);
                    ("learnt", Obs.Int s.learnt_count);
                  ];
            cancel_until s (min (Array.length assum) (decision_level s))
          end
          else if s.learnt_count > 4000 + (num_clauses s / 2) then begin
            s.n_reductions <- s.n_reductions + 1;
            Obs.span "sat.reduce_db"
              ~result:(fun () -> [ ("learnt_after", Obs.Int s.learnt_count) ])
              (fun () -> reduce_db s)
          end
        end
      end
      else begin
        (* no conflict: pick assumption or decide *)
        let dl = decision_level s in
        if dl < Array.length assum then begin
          let l = assum.(dl) in
          match lit_value s l with
          | 1 ->
              (* already satisfied: open a trivial level to keep indices aligned *)
              Vec.push s.trail_lim (Vec.size s.trail)
          | 0 -> result := Some Unsat (* assumption falsified *)
          | _ ->
              Vec.push s.trail_lim (Vec.size s.trail);
              enqueue s l (-1)
        end
        else begin
          (* VSIDS decision *)
          let v = ref (-1) in
          while !v < 0 && s.heap_len > 0 do
            let cand = heap_pop s in
            if s.assigns.(cand) < 0 then v := cand
          done;
          if !v < 0 then begin
            s.model_valid <- true;
            result := Some Sat
          end
          else begin
            s.n_decisions <- s.n_decisions + 1;
            Vec.push s.trail_lim (Vec.size s.trail);
            let l = (2 * !v) lor if s.polarity.(!v) then 0 else 1 in
            enqueue s l (-1)
          end
        end
      end
    done;
    (match !result with
    | Some Sat -> ()
    | _ -> cancel_until s 0);
    Option.get !result
  end

(* Observability wrapper: [solve_inner] only pays plain field increments;
   counter deltas and the span are accounted here, once per call. *)

let c_propagations = Obs.counter "sat.propagations"
let c_decisions = Obs.counter "sat.decisions"
let c_conflicts = Obs.counter "sat.conflicts"
let c_restarts = Obs.counter "sat.restarts"
let c_reduce_dbs = Obs.counter "sat.reduce_dbs"
let c_solves = Obs.counter "sat.solves"

let result_name = function
  | Sat -> "sat"
  | Unsat -> "unsat"
  | Unknown -> "unknown"

let solve ?(assumptions = []) ?(budget = max_int) ?deadline s =
  if not (Obs.enabled () || Obs.metrics_enabled ()) then
    solve_inner ~assumptions ~budget ?deadline s
  else begin
    let c0 = s.total_conflicts
    and p0 = s.n_propagations
    and d0 = s.n_decisions
    and r0 = s.n_restarts
    and g0 = s.n_reductions in
    let r =
      Obs.span "sat.solve"
        ~args:
          [
            ("vars", Obs.Int (num_vars s));
            ("clauses", Obs.Int (num_clauses s));
            ("assumptions", Obs.Int (List.length assumptions));
          ]
        ~result:(fun r ->
          [
            ("result", Obs.Str (result_name r));
            ("conflicts", Obs.Int (s.total_conflicts - c0));
            ("propagations", Obs.Int (s.n_propagations - p0));
            ("decisions", Obs.Int (s.n_decisions - d0));
            ("restarts", Obs.Int (s.n_restarts - r0));
          ])
        (fun () -> solve_inner ~assumptions ~budget ?deadline s)
    in
    Obs.incr c_solves;
    Obs.incr ~by:(s.total_conflicts - c0) c_conflicts;
    Obs.incr ~by:(s.n_propagations - p0) c_propagations;
    Obs.incr ~by:(s.n_decisions - d0) c_decisions;
    Obs.incr ~by:(s.n_restarts - r0) c_restarts;
    Obs.incr ~by:(s.n_reductions - g0) c_reduce_dbs;
    r
  end

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Sat.value: unknown variable";
  if not s.model_valid then invalid_arg "Sat.value: no model available";
  s.assigns.(v - 1) = 1
