(* Tseitin bit-blasting with structural gate caching, built on the generic
   circuit constructors of {!Circuit}. *)

type t = {
  sat : Sat.t;
  tlit : int;  (* always-true literal *)
  gate_cache : (int * int * int * int, int) Hashtbl.t;
  var_bits_tbl : (string, int array) Hashtbl.t;
  mutable translate : Term.t -> int array;
  mutable cached_terms_fn : unit -> int;  (* size of the term -> bits cache *)
}

let lit_true c = c.tlit
let lit_false c = -c.tlit
let var_bits c name = Hashtbl.find_opt c.var_bits_tbl name

let tag_and = 0
let tag_xor = 1
let tag_ite = 2

let cached c key mk =
  match Hashtbl.find_opt c.gate_cache key with
  | Some g -> g
  | None ->
      let g = mk () in
      Hashtbl.add c.gate_cache key g;
      g

let mk_and c a b =
  if a = lit_false c || b = lit_false c then lit_false c
  else if a = c.tlit then b
  else if b = c.tlit then a
  else if a = b then a
  else if a = -b then lit_false c
  else
    let a, b = if a < b then (a, b) else (b, a) in
    cached c (tag_and, a, b, 0) (fun () ->
        let g = Sat.new_var c.sat in
        Sat.add_clause c.sat [ -g; a ];
        Sat.add_clause c.sat [ -g; b ];
        Sat.add_clause c.sat [ g; -a; -b ];
        g)

let mk_or c a b = -mk_and c (-a) (-b)

let mk_xor c a b =
  if a = lit_false c then b
  else if b = lit_false c then a
  else if a = c.tlit then -b
  else if b = c.tlit then -a
  else if a = b then lit_false c
  else if a = -b then c.tlit
  else begin
    let negate = (if a < 0 then 1 else 0) + (if b < 0 then 1 else 0) in
    let a = abs a and b = abs b in
    let a, b = if a < b then (a, b) else (b, a) in
    let g =
      cached c (tag_xor, a, b, 0) (fun () ->
          let g = Sat.new_var c.sat in
          Sat.add_clause c.sat [ -g; a; b ];
          Sat.add_clause c.sat [ -g; -a; -b ];
          Sat.add_clause c.sat [ g; -a; b ];
          Sat.add_clause c.sat [ g; a; -b ];
          g)
    in
    if negate land 1 = 1 then -g else g
  end

let mk_ite_raw c cond a b =
  let g = Sat.new_var c.sat in
  Sat.add_clause c.sat [ -g; -cond; a ];
  Sat.add_clause c.sat [ g; -cond; -a ];
  Sat.add_clause c.sat [ -g; cond; b ];
  Sat.add_clause c.sat [ g; cond; -b ];
  (* redundant but propagation-strengthening *)
  Sat.add_clause c.sat [ -g; a; b ];
  Sat.add_clause c.sat [ g; -a; -b ];
  g

let mk_ite c cond a b =
  if cond = c.tlit then a
  else if cond = lit_false c then b
  else if a = b then a
  else if a = c.tlit && b = lit_false c then cond
  else if a = lit_false c && b = c.tlit then -cond
  else if cond < 0 then
    cached c (tag_ite, -cond, b, a) (fun () -> mk_ite_raw c (-cond) b a)
  else cached c (tag_ite, cond, a, b) (fun () -> mk_ite_raw c cond a b)

let create sat =
  let v = Sat.new_var sat in
  Sat.add_clause sat [ v ];
  let c =
    {
      sat;
      tlit = v;
      gate_cache = Hashtbl.create 4096;
      var_bits_tbl = Hashtbl.create 64;
      translate = (fun _ -> assert false);
      cached_terms_fn = (fun () -> 0);
    }
  in
  let module G = struct
    type lit = int

    let tru = c.tlit
    let fls = -c.tlit
    let neg l = -l
    let mk_and = mk_and c
    let mk_or = mk_or c
    let mk_xor = mk_xor c
    let mk_ite = mk_ite c
  end in
  let module W = Circuit.Words (G) in
  let tctx =
    W.make_tctx
      ~var_bits:(fun name w ->
        match Hashtbl.find_opt c.var_bits_tbl name with
        | Some bits -> bits
        | None ->
            let bits = Array.init w (fun _ -> Sat.new_var c.sat) in
            Hashtbl.replace c.var_bits_tbl name bits;
            bits)
      ~read_bits:(fun m _ ->
        invalid_arg
          (Printf.sprintf
             "Blast.blast: unresolved memory read of %s (Ackermannize first)"
             m.Term.mem_name))
  in
  c.translate <- W.term_bits tctx;
  c.cached_terms_fn <- (fun () -> W.cached_terms tctx);
  c

let blast c t = c.translate t

let cached_terms c = c.cached_terms_fn ()

let h_clauses_per_assert = Obs.histogram "blast.clauses_per_assert"

(* [Sat.num_clauses] walks the free list, so only snapshot it when the
   metric will actually be recorded *)
let with_clause_count c f =
  if Obs.metrics_enabled () then begin
    let before = Sat.num_clauses c.sat in
    f ();
    Obs.observe h_clauses_per_assert (Sat.num_clauses c.sat - before)
  end
  else f ()

let assert_term c t =
  if Term.width t <> 1 then invalid_arg "Blast.assert_term: width <> 1";
  with_clause_count c (fun () ->
      let bits = blast c t in
      Sat.add_clause c.sat [ bits.(0) ])

let fresh_lit c = Sat.new_var c.sat

let assert_term_guarded c ~guard t =
  if Term.width t <> 1 then invalid_arg "Blast.assert_term_guarded: width <> 1";
  with_clause_count c (fun () ->
      let bits = blast c t in
      Sat.add_clause c.sat [ -guard; bits.(0) ])
