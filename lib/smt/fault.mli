(** Deterministic fault injection for the solving stack.

    A {e fault plan} names, by global index, the solver checks and pool
    task attempts that should misbehave: a check can return a spurious
    [Unknown] (the solver state is left untouched, so a retry of the same
    check is honest) or hand back a corrupted copy of its model (one
    seed-chosen bit flipped per variable); a task attempt can crash with
    {!Injected_crash} before any work runs.  Plans are parsed from a
    string ([--fault-plan] / the [OWL_FAULT_PLAN] environment variable)
    and installed process-globally, with atomic counters, so a plan
    exercises exactly the same faults on every run — the recovery paths of
    the resilience layer become reproducibly testable.

    When no plan is installed (the default), every hook is a single atomic
    load — the machinery costs nothing in production.

    Plan grammar (comma-separated, whitespace-free):

    {v unknown@N | corrupt@N | crash@N
       | worker_kill@N | conn_drop@N | frame_delay@N | shed@N | seed=N v}

    where [N >= 1] indexes solver checks (for [unknown]/[corrupt]), pool
    task attempts (for [crash]), service-job executions (for
    [worker_kill]), server-written frames (for [conn_drop]/[frame_delay]),
    or admission decisions (for [shed]) — each in its own process-global
    arrival order.  [seed] (default 0) varies which model bit a [corrupt]
    flips.

    The first three directives exercise the engine's resilience ladder and
    the batch pool's crash-blame retry; the last four extend the same
    deterministic machinery to the serve layer: [worker_kill@N] downs the
    worker domain executing the Nth service job (supervision must respawn
    it), [conn_drop@N] severs the connection instead of writing the Nth
    frame (the client sees a mid-exchange hangup), [frame_delay@N] stalls
    the Nth frame by {!frame_delay_seconds}, and [shed@N] forces the Nth
    admission decision to answer [Busy] as if the daemon were degraded. *)

type action =
  | Spurious_unknown  (** report [Unknown] without consulting the solver *)
  | Corrupt_model  (** if the check is [Sat], corrupt a copy of its model *)

type frame_action =
  | Drop_conn  (** sever the connection instead of writing this frame *)
  | Delay of float  (** stall this frame's write by the given seconds *)

exception Injected_crash of int
(** Raised by {!on_task} for a planned crash; the payload is the 1-based
    task-attempt index that crashed. *)

exception Injected_worker_kill of int
(** Raised by {!on_serve_job} for a planned worker kill; the payload is
    the 1-based service-job index.  The serve layer deliberately lets this
    escape the job so it downs the executing worker domain — exactly the
    failure the supervisor must recover from. *)

val frame_delay_seconds : float
(** How long a [frame_delay@N] stalls its frame (0.05 s). *)

exception Parse_error of string

type plan

val parse : string -> plan
(** Parses the grammar above.  Raises {!Parse_error} with a diagnostic on
    malformed input (unknown directive, index < 1, empty element). *)

val to_string : plan -> string
(** Canonical rendering of a plan (sorted indices, seed last). *)

val install : plan -> unit
(** Installs a plan process-globally and resets the check/task counters.
    Replaces any previous plan. *)

val install_from_env : unit -> bool
(** Installs the plan named by the [OWL_FAULT_PLAN] environment variable,
    if set and non-empty; returns whether a plan was installed.  Raises
    {!Parse_error} like {!parse}. *)

val clear : unit -> unit
(** Removes the installed plan; hooks become free again. *)

val active : unit -> bool

val seed : unit -> int
(** The installed plan's seed, or 0 when no plan is installed. *)

val fired : unit -> int
(** How many planned faults have triggered since {!install}.  A [corrupt]
    counts when its check arrives, even if the check turns out not to be
    [Sat]. *)

val on_check : unit -> action option
(** Called by the solver once per check, before searching.  Returns the
    planned action for this check index, if any; [unknown@N] wins over
    [corrupt@N] at the same index. *)

val on_task : unit -> unit
(** Called by the pool once per task attempt, before the task body.
    Raises {!Injected_crash} when this attempt index is planned to
    crash. *)

val on_serve_job : unit -> unit
(** Called by the serve layer once per service-job execution, before the
    job body.  Raises {!Injected_worker_kill} when this job index is
    planned to down its worker. *)

val on_frame : unit -> frame_action option
(** Called by the serve layer once per server-written frame, before the
    write.  Returns the planned misbehavior for this frame index, if any;
    [conn_drop@N] wins over [frame_delay@N] at the same index. *)

val on_admit : unit -> bool
(** Called by the serve layer once per admission decision (solver work
    only — control requests and hot-tier hits never shed).  Returns
    whether this admission is planned to answer [Busy]. *)
