(** Deterministic fault injection for the solving stack.

    A {e fault plan} names, by global index, the solver checks and pool
    task attempts that should misbehave: a check can return a spurious
    [Unknown] (the solver state is left untouched, so a retry of the same
    check is honest) or hand back a corrupted copy of its model (one
    seed-chosen bit flipped per variable); a task attempt can crash with
    {!Injected_crash} before any work runs.  Plans are parsed from a
    string ([--fault-plan] / the [OWL_FAULT_PLAN] environment variable)
    and installed process-globally, with atomic counters, so a plan
    exercises exactly the same faults on every run — the recovery paths of
    the resilience layer become reproducibly testable.

    When no plan is installed (the default), every hook is a single atomic
    load — the machinery costs nothing in production.

    Plan grammar (comma-separated, whitespace-free):

    {v unknown@N | corrupt@N | crash@N | seed=N v}

    where [N >= 1] indexes solver checks (for [unknown]/[corrupt]) or pool
    task attempts (for [crash]) in process-global arrival order.  [seed]
    (default 0) varies which model bit a [corrupt] flips. *)

type action =
  | Spurious_unknown  (** report [Unknown] without consulting the solver *)
  | Corrupt_model  (** if the check is [Sat], corrupt a copy of its model *)

exception Injected_crash of int
(** Raised by {!on_task} for a planned crash; the payload is the 1-based
    task-attempt index that crashed. *)

exception Parse_error of string

type plan

val parse : string -> plan
(** Parses the grammar above.  Raises {!Parse_error} with a diagnostic on
    malformed input (unknown directive, index < 1, empty element). *)

val to_string : plan -> string
(** Canonical rendering of a plan (sorted indices, seed last). *)

val install : plan -> unit
(** Installs a plan process-globally and resets the check/task counters.
    Replaces any previous plan. *)

val install_from_env : unit -> bool
(** Installs the plan named by the [OWL_FAULT_PLAN] environment variable,
    if set and non-empty; returns whether a plan was installed.  Raises
    {!Parse_error} like {!parse}. *)

val clear : unit -> unit
(** Removes the installed plan; hooks become free again. *)

val active : unit -> bool

val seed : unit -> int
(** The installed plan's seed, or 0 when no plan is installed. *)

val fired : unit -> int
(** How many planned faults have triggered since {!install}.  A [corrupt]
    counts when its check arrives, even if the check turns out not to be
    [Sat]. *)

val on_check : unit -> action option
(** Called by the solver once per check, before searching.  Returns the
    planned action for this check index, if any; [unknown@N] wins over
    [corrupt@N] at the same index. *)

val on_task : unit -> unit
(** Called by the pool once per task attempt, before the task body.
    Raises {!Injected_crash} when this attempt index is planned to
    crash. *)
