(* Hash-consed bitvector terms with bottom-up simplification. *)

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Udiv
  | Urem
  | Sdiv
  | Srem
  | Clmul
  | Clmulh
  | Shl
  | Lshr
  | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

type mem = { mem_name : string; addr_width : int; data_width : int }
type table = { tab_name : string; tab_addr_width : int; tab_data : Bitvec.t array }

type t = { id : int; width : int; skey : int; node : node }

and node =
  | Const of Bitvec.t
  | Var of string
  | Not of t
  | Binop of binop * t * t
  | Cmp of cmpop * t * t
  | Ite of t * t * t
  | Extract of int * int * t
  | Concat of t * t
  | Read of mem * t
  | Table of table * t

let width t = t.width
let id t = t.id
let equal a b = a == b
let compare a b = Stdlib.compare a.id b.id
let hash t = t.id

(* {1 Hash-consing}

   Nodes are keyed structurally with children compared physically, so
   building the same node twice yields the same physical term.

   The table is shared by every domain and sharded under mutexes, which
   keeps physical equality meaningful across domains: a term built by one
   worker is found (not duplicated) by another.  Ids are allocated from an
   atomic counter, so they are unique but their numeric order depends on
   scheduling.  Anything that must be deterministic across runs and across
   [jobs] settings therefore orders terms by [skey] — a structural hash
   computed from the node shape and the children's skeys, independent of
   allocation order — with a full structural comparison breaking ties. *)

module Key = struct
  type k = node

  let equal_node a b =
    match (a, b) with
    | Const x, Const y -> Bitvec.equal x y
    | Var x, Var y -> String.equal x y
    | Not x, Not y -> x == y
    | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
    | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
    | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
    | Extract (h1, l1, x), Extract (h2, l2, y) -> h1 = h2 && l1 = l2 && x == y
    | Concat (a1, b1), Concat (a2, b2) -> a1 == a2 && b1 == b2
    | Read (m1, a1), Read (m2, a2) -> String.equal m1.mem_name m2.mem_name && a1 == a2
    | Table (t1, a1), Table (t2, a2) ->
        String.equal t1.tab_name t2.tab_name && a1 == a2
    | _ -> false

  let hash_node = function
    | Const v -> Hashtbl.hash (0, Bitvec.hash v)
    | Var s -> Hashtbl.hash (1, s)
    | Not x -> Hashtbl.hash (2, x.id)
    | Binop (o, a, b) -> Hashtbl.hash (3, o, a.id, b.id)
    | Cmp (o, a, b) -> Hashtbl.hash (4, o, a.id, b.id)
    | Ite (c, a, b) -> Hashtbl.hash (5, c.id, a.id, b.id)
    | Extract (h, l, x) -> Hashtbl.hash (6, h, l, x.id)
    | Concat (a, b) -> Hashtbl.hash (7, a.id, b.id)
    | Read (m, a) -> Hashtbl.hash (8, m.mem_name, a.id)
    | Table (tb, a) -> Hashtbl.hash (9, tb.tab_name, a.id)

  type t = k

  let equal = equal_node
  let hash = hash_node
end

module Cons = Hashtbl.Make (Key)

(* The consing table is sharded by node hash; each shard has its own lock so
   concurrent domains rarely contend.  Plain Hashtbl is not safe under
   concurrent mutation, so every access happens under the shard's mutex. *)

let shard_bits = 6
let shard_count = 1 lsl shard_bits

type shard = { lock : Mutex.t; tbl : t Cons.t }

let shards =
  Array.init shard_count (fun _ ->
      { lock = Mutex.create (); tbl = Cons.create 256 })

let next_id = Atomic.make 0

(* Registries guarding against the same name being reused at a different
   width (variables) or with different contents (tables); guarded by one
   lock (low traffic). *)
let registry_lock = Mutex.create ()
let var_registry : (string, int) Hashtbl.t = Hashtbl.create 256
let table_registry : (string, table) Hashtbl.t = Hashtbl.create 16

(* Structural key: like [Key.hash_node] but built from the children's
   [skey]s instead of their ids, so it only depends on term structure. *)
let skey_node width = function
  | Const v -> Hashtbl.hash (0, width, Bitvec.hash v)
  | Var s -> Hashtbl.hash (1, width, s)
  | Not x -> Hashtbl.hash (2, width, x.skey)
  | Binop (o, a, b) -> Hashtbl.hash (3, width, o, a.skey, b.skey)
  | Cmp (o, a, b) -> Hashtbl.hash (4, width, o, a.skey, b.skey)
  | Ite (c, a, b) -> Hashtbl.hash (5, width, c.skey, a.skey, b.skey)
  | Extract (h, l, x) -> Hashtbl.hash (6, width, h, l, x.skey)
  | Concat (a, b) -> Hashtbl.hash (7, width, a.skey, b.skey)
  | Read (m, a) -> Hashtbl.hash (8, width, m.mem_name, a.skey)
  | Table (tb, a) -> Hashtbl.hash (9, width, tb.tab_name, a.skey)

let node_tag = function
  | Const _ -> 0
  | Var _ -> 1
  | Not _ -> 2
  | Binop _ -> 3
  | Cmp _ -> 4
  | Ite _ -> 5
  | Extract _ -> 6
  | Concat _ -> 7
  | Read _ -> 8
  | Table _ -> 9

(* Total structural order, independent of allocation order.  Distinct
   hash-consed terms always differ structurally, so this never returns 0
   for [a != b]; the skey fast path means the recursion is only taken on
   hash collisions. *)
let rec struct_compare a b =
  if a == b then 0
  else
    let c = Int.compare a.skey b.skey in
    if c <> 0 then c
    else
      let c = Int.compare a.width b.width in
      if c <> 0 then c
      else
        let c = Int.compare (node_tag a.node) (node_tag b.node) in
        if c <> 0 then c
        else
          match (a.node, b.node) with
          | Const x, Const y -> Bitvec.compare x y
          | Var x, Var y -> String.compare x y
          | Not x, Not y -> struct_compare x y
          | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
              let c = Stdlib.compare o1 o2 in
              if c <> 0 then c
              else
                let c = struct_compare a1 a2 in
                if c <> 0 then c else struct_compare b1 b2
          | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
              let c = Stdlib.compare o1 o2 in
              if c <> 0 then c
              else
                let c = struct_compare a1 a2 in
                if c <> 0 then c else struct_compare b1 b2
          | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
              let c = struct_compare c1 c2 in
              if c <> 0 then c
              else
                let c = struct_compare a1 a2 in
                if c <> 0 then c else struct_compare b1 b2
          | Extract (h1, l1, x), Extract (h2, l2, y) ->
              let c = Int.compare h1 h2 in
              if c <> 0 then c
              else
                let c = Int.compare l1 l2 in
                if c <> 0 then c else struct_compare x y
          | Concat (a1, b1), Concat (a2, b2) ->
              let c = struct_compare a1 a2 in
              if c <> 0 then c else struct_compare b1 b2
          | Read (m1, a1), Read (m2, a2) ->
              let c = String.compare m1.mem_name m2.mem_name in
              if c <> 0 then c else struct_compare a1 a2
          | Table (t1, a1), Table (t2, a2) ->
              let c = String.compare t1.tab_name t2.tab_name in
              if c <> 0 then c else struct_compare a1 a2
          | _ -> assert false (* tags already compared *)

let intern width node =
  let s = shards.(Key.hash node land (shard_count - 1)) in
  Mutex.lock s.lock;
  let t =
    match Cons.find_opt s.tbl node with
    | Some t -> t
    | None ->
        let t =
          {
            id = Atomic.fetch_and_add next_id 1;
            width;
            skey = skey_node width node;
            node;
          }
        in
        Cons.add s.tbl node t;
        t
  in
  Mutex.unlock s.lock;
  t

(* {1 Basic constructors} *)

let const v = intern (Bitvec.width v) (Const v)
let of_int ~width n = const (Bitvec.of_int ~width n)
let zero w = const (Bitvec.zero w)
let one w = const (Bitvec.one w)
let ones w = const (Bitvec.ones w)
let tru = const (Bitvec.one 1)
let fls = const (Bitvec.zero 1)

let var name w =
  if w < 1 then invalid_arg (Printf.sprintf "Term.var: width %d < 1" w);
  let clash =
    Mutex.lock registry_lock;
    let c =
      match Hashtbl.find_opt var_registry name with
      | Some w' when w' <> w -> Some w'
      | Some _ -> None
      | None ->
          Hashtbl.add var_registry name w;
          None
    in
    Mutex.unlock registry_lock;
    c
  in
  (match clash with
  | Some w' ->
      invalid_arg
        (Printf.sprintf "Term.var: %S used at width %d and %d" name w' w)
  | None -> ());
  intern w (Var name)

let is_const t = match t.node with Const v -> Some v | _ -> None
let is_true t = match t.node with Const v -> Bitvec.is_ones v && Bitvec.width v = 1 | _ -> false
let is_false t = match t.node with Const v -> Bitvec.is_zero v && Bitvec.width v = 1 | _ -> false

let check_same_width name a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Term.%s: width mismatch (%d vs %d)" name a.width b.width)

(* {1 Simplifying constructors} *)

let rec bnot a =
  match a.node with
  | Const v -> const (Bitvec.lognot v)
  | Not x -> x
  | Cmp (Ult, x, y) -> cmp Ule y x
  | Cmp (Ule, x, y) -> cmp Ult y x
  | Cmp (Slt, x, y) -> cmp Sle y x
  | Cmp (Sle, x, y) -> cmp Slt y x
  | Ite (c, x, y) when a.width = 1 -> ite c (bnot x) (bnot y)
  | _ -> intern a.width (Not a)

(* Canonical operand order for commutative operators.  This must not
   depend on [id] (allocation order): parallel synthesis requires the same
   term structure whether worker domains interleave or not. *)
and order2 a b = if struct_compare a b <= 0 then (a, b) else (b, a)

and band a b =
  check_same_width "band" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bitvec.logand x y)
  | Some x, None when Bitvec.is_zero x -> a
  | None, Some y when Bitvec.is_zero y -> b
  | Some x, None when Bitvec.is_ones x -> b
  | None, Some y when Bitvec.is_ones y -> a
  | _ ->
      if a == b then a
      else if (match a.node with Not x -> x == b | _ -> false)
              || (match b.node with Not y -> y == a | _ -> false)
      then zero a.width
      else
        let a, b = order2 a b in
        intern a.width (Binop (And, a, b))

and bor a b =
  check_same_width "bor" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bitvec.logor x y)
  | Some x, None when Bitvec.is_zero x -> b
  | None, Some y when Bitvec.is_zero y -> a
  | Some x, None when Bitvec.is_ones x -> a
  | None, Some y when Bitvec.is_ones y -> b
  | _ ->
      if a == b then a
      else if (match a.node with Not x -> x == b | _ -> false)
              || (match b.node with Not y -> y == a | _ -> false)
      then ones a.width
      else
        let a, b = order2 a b in
        intern a.width (Binop (Or, a, b))

and bxor a b =
  check_same_width "bxor" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bitvec.logxor x y)
  | Some x, None when Bitvec.is_zero x -> b
  | None, Some y when Bitvec.is_zero y -> a
  | Some x, None when Bitvec.is_ones x -> bnot b
  | None, Some y when Bitvec.is_ones y -> bnot a
  | _ ->
      if a == b then zero a.width
      else
        let a, b = order2 a b in
        intern a.width (Binop (Xor, a, b))

and add a b =
  check_same_width "add" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bitvec.add x y)
  | Some x, None when Bitvec.is_zero x -> b
  | None, Some y when Bitvec.is_zero y -> a
  | _ ->
      let a, b = order2 a b in
      intern a.width (Binop (Add, a, b))

and sub a b =
  check_same_width "sub" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bitvec.sub x y)
  | None, Some y when Bitvec.is_zero y -> a
  | _ -> if a == b then zero a.width else intern a.width (Binop (Sub, a, b))

and mul a b =
  check_same_width "mul" a b;
  match (is_const a, is_const b) with
  | Some x, Some y -> const (Bitvec.mul x y)
  | Some x, None when Bitvec.is_zero x -> a
  | None, Some y when Bitvec.is_zero y -> b
  | Some x, None when Bitvec.equal x (Bitvec.one a.width) -> b
  | None, Some y when Bitvec.equal y (Bitvec.one a.width) -> a
  | _ ->
      let a, b = order2 a b in
      intern a.width (Binop (Mul, a, b))

and division op a b =
  check_same_width "div" a b;
  match (is_const a, is_const b) with
  | Some x, Some y ->
      let f =
        match op with
        | Udiv -> Bitvec.udiv
        | Urem -> Bitvec.urem
        | Sdiv -> Bitvec.sdiv
        | _ -> Bitvec.srem
      in
      const (f x y)
  | None, Some y when Bitvec.equal y (Bitvec.one a.width) -> (
      (* x / 1 = x, x % 1 = 0 *)
      match op with Udiv | Sdiv -> a | _ -> zero a.width)
  | _ -> intern a.width (Binop (op, a, b))

and carryless op a b =
  check_same_width "clmul" a b;
  match (is_const a, is_const b) with
  | Some x, Some y ->
      const (if op = Clmul then Bitvec.clmul x y else Bitvec.clmulh x y)
  | Some x, None when Bitvec.is_zero x -> a
  | None, Some y when Bitvec.is_zero y -> b
  | _ ->
      let a, b = order2 a b in
      intern a.width (Binop (op, a, b))

and shift op a b =
  (* The amount operand may have any width; it is read unsigned. *)
  match (is_const a, is_const b) with
  | Some x, Some y ->
      let f = match op with Shl -> Bitvec.shl | Lshr -> Bitvec.lshr | _ -> Bitvec.ashr in
      const (f x y)
  | _, Some y when Bitvec.is_zero y -> a
  | _, Some y when (match Bitvec.to_int y with Some k -> k >= a.width | None -> true) ->
      (* Over-shift: zeros, or all-sign-bits for an arithmetic shift. *)
      if op = Ashr then ite (msb a) (ones a.width) (zero a.width) else zero a.width
  | Some x, None when Bitvec.is_zero x -> a
  | _ -> intern a.width (Binop (op, a, b))

and cmp op a b =
  check_same_width "cmp" a b;
  match (is_const a, is_const b) with
  | Some x, Some y ->
      let r =
        match op with
        | Eq -> Bitvec.equal x y
        | Ult -> Bitvec.ult x y
        | Ule -> Bitvec.ule x y
        | Slt -> Bitvec.slt x y
        | Sle -> Bitvec.sle x y
      in
      if r then tru else fls
  | _ when a == b -> (
      match op with Eq | Ule | Sle -> tru | Ult | Slt -> fls)
  | _ -> (
      match op with
      | Eq -> mk_eq a b
      | Ult | Slt | Ule | Sle ->
          intern 1 (Cmp (op, a, b)))

and mk_eq a b =
  (* Equality gets extra structure-aware rules because the synthesis
     post-conditions are conjunctions of equalities between spec-side and
     datapath-side terms; decomposing them early keeps SAT queries small. *)
  let a, b = order2 a b in
  match (a.node, b.node) with
  (* width-1 equalities are boolean identities *)
  | _ when a.width = 1 && is_true b -> a
  | _ when a.width = 1 && is_false b -> bnot a
  | _ when a.width = 1 && is_true a -> b
  | _ when a.width = 1 && is_false a -> bnot b
  (* split equalities over aligned concatenations *)
  | Concat (hi1, lo1), Concat (hi2, lo2) when lo1.width = lo2.width ->
      band (mk_eq_dispatch hi1 hi2) (mk_eq_dispatch lo1 lo2)
  | Concat (hi, lo), Const v | Const v, Concat (hi, lo) ->
      let wlo = lo.width in
      band
        (mk_eq_dispatch hi (const (Bitvec.extract ~high:(Bitvec.width v - 1) ~low:wlo v)))
        (mk_eq_dispatch lo (const (Bitvec.extract ~high:(wlo - 1) ~low:0 v)))
  (* (ite c k1 k2) = k resolves when the arms are constants *)
  | Ite (c, x, y), Const v | Const v, Ite (c, x, y) -> (
      match (is_const x, is_const y) with
      | Some xv, Some yv -> (
          match (Bitvec.equal xv v, Bitvec.equal yv v) with
          | true, true -> tru
          | true, false -> c
          | false, true -> bnot c
          | false, false -> fls)
      | _ -> intern 1 (Cmp (Eq, a, b)))
  | _ -> intern 1 (Cmp (Eq, a, b))

and mk_eq_dispatch a b = cmp Eq a b

and ite c a b =
  if c.width <> 1 then invalid_arg "Term.ite: condition width <> 1";
  check_same_width "ite" a b;
  if is_true c then a
  else if is_false c then b
  else if a == b then a
  else
    match c.node with
    | Not d -> ite d b a
    | _ ->
        if a.width = 1 && is_true a && is_false b then c
        else if a.width = 1 && is_false a && is_true b then bnot c
        else
          (* collapse nested ite on the same condition, or its negation
             (hash-consing makes the negation check a pointer test) *)
          let negates c' = match c'.node with Not d -> d == c | _ -> false in
          let a =
            match a.node with
            | Ite (c', x, y) ->
                if c' == c then x else if negates c' then y else a
            | _ -> a
          in
          let b =
            match b.node with
            | Ite (c', x, y) ->
                if c' == c then y else if negates c' then x else b
            | _ -> b
          in
          if a == b then a
          else
            (* guard merging: an arm that is itself an ite sharing the
               other arm folds into a single ite under a conjoined or
               disjoined guard — one mux (and one blasted select chain)
               instead of two:
                 ite c (ite c2 x b) b = ite (c & c2) x b
                 ite c (ite c2 b y) b = ite (c & ~c2) y b
                 ite c a (ite c2 a y) = ite (c | c2) a y
                 ite c a (ite c2 x a) = ite (c | ~c2) a x *)
            match (a.node, b.node) with
            | Ite (c2, x, y), _ when y == b -> ite (band c c2) x b
            | Ite (c2, x, y), _ when x == b -> ite (band c (bnot c2)) y b
            | _, Ite (c2, x, y) when x == a -> ite (bor c c2) a y
            | _, Ite (c2, x, y) when y == a -> ite (bor c (bnot c2)) a x
            | _ -> intern a.width (Ite (c, a, b))

and extract ~high ~low a =
  if low < 0 || high < low || high >= a.width then
    invalid_arg
      (Printf.sprintf "Term.extract: [%d:%d] out of width %d" high low a.width);
  if low = 0 && high = a.width - 1 then a
  else
    match a.node with
    | Const v -> const (Bitvec.extract ~high ~low v)
    | Extract (_, low', x) -> extract ~high:(high + low') ~low:(low + low') x
    | Concat (hi, lo) ->
        let wlo = lo.width in
        if high < wlo then extract ~high ~low lo
        else if low >= wlo then extract ~high:(high - wlo) ~low:(low - wlo) hi
        else concat (extract ~high:(high - wlo) ~low:0 hi) (extract ~high:(wlo - 1) ~low lo)
    | Ite (c, x, y) -> ite c (extract ~high ~low x) (extract ~high ~low y)
    | _ -> intern (high - low + 1) (Extract (high, low, a))

and concat hi lo =
  let w = hi.width + lo.width in
  match (hi.node, lo.node) with
  | Const x, Const y -> const (Bitvec.concat x y)
  | Extract (h1, l1, x), Extract (h2, l2, y) when x == y && l1 = h2 + 1 ->
      extract ~high:h1 ~low:l2 x
  | _, Concat (m, lo') ->
      (* Right-normalize so the adjacent-extract rule can fire across
         rebracketing: ((a @ b) @ c) becomes (a @ (b @ c)). *)
      concat (concat hi m) lo'
  | _ -> intern w (Concat (hi, lo))

and msb a = extract ~high:(a.width - 1) ~low:(a.width - 1) a

let bit a i = extract ~high:i ~low:i a

let eq = cmp Eq
let ult = cmp Ult
let ule = cmp Ule
let slt = cmp Slt
let sle = cmp Sle
let ne a b = bnot (eq a b)
let ugt a b = ult b a
let uge a b = ule b a
let sgt a b = slt b a
let sge a b = sle b a
let shl = shift Shl
let lshr = shift Lshr
let ashr = shift Ashr
let clmul = carryless Clmul
let clmulh = carryless Clmulh
let udiv = division Udiv
let urem = division Urem
let sdiv = division Sdiv
let srem = division Srem
let neg a = sub (zero a.width) a

let zext a w =
  if w < a.width then invalid_arg "Term.zext";
  if w = a.width then a else concat (zero (w - a.width)) a

let sext a w =
  if w < a.width then invalid_arg "Term.sext";
  if w = a.width then a
  else
    let k = w - a.width in
    concat (ite (msb a) (ones k) (zero k)) a

let read m addr =
  if addr.width <> m.addr_width then
    invalid_arg
      (Printf.sprintf "Term.read: mem %s expects address width %d, got %d"
         m.mem_name m.addr_width addr.width);
  intern m.data_width (Read (m, addr))

let table_read tb idx =
  if idx.width <> tb.tab_addr_width then invalid_arg "Term.table_read: index width";
  if Array.length tb.tab_data <> 1 lsl tb.tab_addr_width then
    invalid_arg "Term.table_read: table size must be 2^addr_width";
  let clash =
    Mutex.lock registry_lock;
    let c =
      match Hashtbl.find_opt table_registry tb.tab_name with
      | Some tb' when tb' != tb && tb'.tab_data <> tb.tab_data -> true
      | Some _ -> false
      | None ->
          Hashtbl.add table_registry tb.tab_name tb;
          false
    in
    Mutex.unlock registry_lock;
    c
  in
  if clash then
    invalid_arg
      (Printf.sprintf "Term.table_read: table %S redefined with new contents"
         tb.tab_name);
  match is_const idx with
  | Some v -> const tb.tab_data.(Bitvec.to_int_exn v)
  | None -> intern (Bitvec.width tb.tab_data.(0)) (Table (tb, idx))

let implies a b = bor (bnot a) b
let conj l = List.fold_left band tru l
let disj l = List.fold_left bor fls l

(* {1 Traversal} *)

let fold_dag f acc root =
  let visited = Hashtbl.create 64 in
  let acc = ref acc in
  let rec go t =
    if not (Hashtbl.mem visited t.id) then begin
      Hashtbl.add visited t.id ();
      (match t.node with
      | Const _ | Var _ -> ()
      | Not x | Extract (_, _, x) | Read (_, x) | Table (_, x) -> go x
      | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) ->
          go a;
          go b
      | Ite (c, a, b) ->
          go c;
          go a;
          go b);
      acc := f !acc t
    end
  in
  go root;
  !acc

let size t = fold_dag (fun n _ -> n + 1) 0 t

let vars t =
  let l =
    fold_dag
      (fun acc t -> match t.node with Var s -> (s, t.width) :: acc | _ -> acc)
      [] t
  in
  List.sort_uniq Stdlib.compare l

let reads t =
  fold_dag
    (fun acc t -> match t.node with Read (m, a) -> (m, a) :: acc | _ -> acc)
    [] t
  |> List.rev

(* {1 Printing} *)

let binop_name = function
  | And -> "bvand"
  | Or -> "bvor"
  | Xor -> "bvxor"
  | Add -> "bvadd"
  | Sub -> "bvsub"
  | Mul -> "bvmul"
  | Udiv -> "bvudiv"
  | Urem -> "bvurem"
  | Sdiv -> "bvsdiv"
  | Srem -> "bvsrem"
  | Clmul -> "clmul"
  | Clmulh -> "clmulh"
  | Shl -> "bvshl"
  | Lshr -> "bvlshr"
  | Ashr -> "bvashr"

let cmpop_name = function
  | Eq -> "="
  | Ult -> "bvult"
  | Ule -> "bvule"
  | Slt -> "bvslt"
  | Sle -> "bvsle"

let pp fmt root =
  (* Nodes referenced more than once print as [#id] after their first
     occurrence, which keeps DAG output linear in the DAG size. *)
  let seen = Hashtbl.create 64 in
  let shared = Hashtbl.create 64 in
  let count t =
    match Hashtbl.find_opt shared t.id with
    | Some n -> Hashtbl.replace shared t.id (n + 1)
    | None -> Hashtbl.add shared t.id 1
  in
  let rec cnt t =
    count t;
    if Hashtbl.find shared t.id = 1 then
      match t.node with
      | Const _ | Var _ -> ()
      | Not x | Extract (_, _, x) | Read (_, x) | Table (_, x) -> cnt x
      | Binop (_, a, b) | Cmp (_, a, b) | Concat (a, b) ->
          cnt a;
          cnt b
      | Ite (c, a, b) ->
          cnt c;
          cnt a;
          cnt b
  in
  cnt root;
  let rec go fmt t =
    let is_leaf = match t.node with Const _ | Var _ -> true | _ -> false in
    if (not is_leaf) && Hashtbl.mem seen t.id then Format.fprintf fmt "#%d" t.id
    else begin
      if not is_leaf then Hashtbl.add seen t.id ();
      let tag fmt t =
        if (not is_leaf) && Hashtbl.find shared t.id > 1 then
          Format.fprintf fmt "!%d:" t.id
      in
      match t.node with
      | Const v -> Format.fprintf fmt "%s" (Bitvec.to_string v)
      | Var s -> Format.fprintf fmt "%s" s
      | Not x -> Format.fprintf fmt "(%abvnot %a)" tag t go x
      | Binop (o, a, b) ->
          Format.fprintf fmt "(%a%s %a %a)" tag t (binop_name o) go a go b
      | Cmp (o, a, b) ->
          Format.fprintf fmt "(%a%s %a %a)" tag t (cmpop_name o) go a go b
      | Ite (c, a, b) -> Format.fprintf fmt "(%aite %a %a %a)" tag t go c go a go b
      | Extract (h, l, x) ->
          Format.fprintf fmt "(%aextract %d %d %a)" tag t h l go x
      | Concat (a, b) -> Format.fprintf fmt "(%aconcat %a %a)" tag t go a go b
      | Read (m, a) -> Format.fprintf fmt "(%aread %s %a)" tag t m.mem_name go a
      | Table (tb, a) -> Format.fprintf fmt "(%atable %s %a)" tag t tb.tab_name go a
    end
  in
  go fmt root

(* {1 Canonical serialization}

   A deterministic, self-contained text rendering of a term DAG, the basis
   of the synthesis cache's content-addressed fingerprints.  Nodes are
   numbered by shared post-order position (children before parents, roots
   in list order), never by the process-local allocation [id], so the same
   logical DAG serializes to the same bytes in every process and under any
   domain interleaving.  Tables are emitted once, contents included, so a
   document deserializes without any ambient registry state. *)

let binop_tag = function
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Udiv -> "udiv"
  | Urem -> "urem"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | Clmul -> "clmul"
  | Clmulh -> "clmulh"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let binop_of_tag = function
  | "and" -> And
  | "or" -> Or
  | "xor" -> Xor
  | "add" -> Add
  | "sub" -> Sub
  | "mul" -> Mul
  | "udiv" -> Udiv
  | "urem" -> Urem
  | "sdiv" -> Sdiv
  | "srem" -> Srem
  | "clmul" -> Clmul
  | "clmulh" -> Clmulh
  | "shl" -> Shl
  | "lshr" -> Lshr
  | "ashr" -> Ashr
  | s -> failwith ("Term.deserialize: unknown binop " ^ s)

let cmpop_tag = function
  | Eq -> "eq"
  | Ult -> "ult"
  | Ule -> "ule"
  | Slt -> "slt"
  | Sle -> "sle"

let cmpop_of_tag = function
  | "eq" -> Eq
  | "ult" -> Ult
  | "ule" -> Ule
  | "slt" -> Slt
  | "sle" -> Sle
  | s -> failwith ("Term.deserialize: unknown cmpop " ^ s)

let check_token_name what s =
  if s = "" then invalid_arg (Printf.sprintf "Term.serialize: empty %s" what);
  String.iter
    (fun c ->
      if c = ' ' || c = '\n' || c = '\r' || c = '\t' then
        invalid_arg
          (Printf.sprintf "Term.serialize: %s %S contains whitespace" what s))
    s

let serialize (roots : t list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "owlterm 1\n";
  (* table definitions, numbered in first-use (post-order) order *)
  let tables : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let table_defs = Buffer.create 256 in
  let table_idx (tb : table) =
    match Hashtbl.find_opt tables tb.tab_name with
    | Some k -> k
    | None ->
        check_token_name "table name" tb.tab_name;
        let k = Hashtbl.length tables in
        Hashtbl.add tables tb.tab_name k;
        Buffer.add_string table_defs
          (Printf.sprintf "T %d %d %s" k tb.tab_addr_width tb.tab_name);
        Array.iter
          (fun v ->
            Buffer.add_char table_defs ' ';
            Buffer.add_string table_defs (Bitvec.to_string v))
          tb.tab_data;
        Buffer.add_char table_defs '\n';
        k
  in
  let nodes = Buffer.create 4096 in
  let pos : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let next = ref 0 in
  let emit line =
    Buffer.add_string nodes line;
    Buffer.add_char nodes '\n';
    let k = !next in
    incr next;
    k
  in
  let rec go t =
    match Hashtbl.find_opt pos t.id with
    | Some k -> k
    | None ->
        let k =
          match t.node with
          | Const v -> emit (Printf.sprintf "c %s" (Bitvec.to_string v))
          | Var s ->
              check_token_name "variable name" s;
              emit (Printf.sprintf "v %d %s" t.width s)
          | Not x -> emit (Printf.sprintf "n %d" (go x))
          | Binop (o, a, b) ->
              emit (Printf.sprintf "b %s %d %d" (binop_tag o) (go a) (go b))
          | Cmp (o, a, b) ->
              emit (Printf.sprintf "p %s %d %d" (cmpop_tag o) (go a) (go b))
          | Ite (c, a, b) ->
              emit (Printf.sprintf "i %d %d %d" (go c) (go a) (go b))
          | Extract (h, l, x) -> emit (Printf.sprintf "x %d %d %d" h l (go x))
          | Concat (a, b) -> emit (Printf.sprintf "@ %d %d" (go a) (go b))
          | Read (m, addr) ->
              check_token_name "memory name" m.mem_name;
              let a = go addr in
              emit
                (Printf.sprintf "r %d %d %d %s" m.addr_width m.data_width a
                   m.mem_name)
          | Table (tb, idx) ->
              let ti = table_idx tb in
              emit (Printf.sprintf "t %d %d" ti (go idx))
        in
        Hashtbl.add pos t.id k;
        k
  in
  let root_ids = List.map go roots in
  Buffer.add_buffer buf table_defs;
  Buffer.add_buffer buf nodes;
  Buffer.add_string buf
    ("R" ^ String.concat "" (List.map (Printf.sprintf " %d") root_ids) ^ "\n");
  Buffer.contents buf

(* Rebuilds a serialized DAG through the smart constructors.  Every line is
   revalidated (widths, table sizes, registry consistency), so a malformed
   or stale document fails with [Failure]/[Invalid_argument] instead of
   producing an ill-formed term — cache readers treat any exception as a
   miss. *)
let deserialize (doc : string) : t list =
  let fail fmt = Printf.ksprintf failwith fmt in
  let lines =
    String.split_on_char '\n' doc |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: rest when header = "owlterm 1" ->
      let tables : (int, table) Hashtbl.t = Hashtbl.create 8 in
      let nodes : t array ref = ref (Array.make 64 tru) in
      let count = ref 0 in
      let node k =
        if k < 0 || k >= !count then fail "Term.deserialize: node %d undefined" k;
        !nodes.(k)
      in
      let push t =
        if !count = Array.length !nodes then begin
          let bigger = Array.make (2 * !count) tru in
          Array.blit !nodes 0 bigger 0 !count;
          nodes := bigger
        end;
        !nodes.(!count) <- t;
        incr count
      in
      let int_of s =
        match int_of_string_opt s with
        | Some n -> n
        | None -> fail "Term.deserialize: expected integer, got %S" s
      in
      let roots = ref None in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | "T" :: k :: aw :: name :: data ->
              let data = Array.of_list (List.map Bitvec.of_string data) in
              Hashtbl.replace tables (int_of k)
                { tab_name = name; tab_addr_width = int_of aw; tab_data = data }
          | [ "c"; v ] -> push (const (Bitvec.of_string v))
          | [ "v"; w; name ] -> push (var name (int_of w))
          | [ "n"; a ] -> push (bnot (node (int_of a)))
          | [ "b"; op; a; b ] ->
              let op = binop_of_tag op in
              let a = node (int_of a) and b = node (int_of b) in
              push
                (match op with
                | And -> band a b
                | Or -> bor a b
                | Xor -> bxor a b
                | Add -> add a b
                | Sub -> sub a b
                | Mul -> mul a b
                | Udiv -> udiv a b
                | Urem -> urem a b
                | Sdiv -> sdiv a b
                | Srem -> srem a b
                | Clmul -> clmul a b
                | Clmulh -> clmulh a b
                | Shl -> shl a b
                | Lshr -> lshr a b
                | Ashr -> ashr a b)
          | [ "p"; op; a; b ] ->
              let op = cmpop_of_tag op in
              let a = node (int_of a) and b = node (int_of b) in
              push
                (match op with
                | Eq -> eq a b
                | Ult -> ult a b
                | Ule -> ule a b
                | Slt -> slt a b
                | Sle -> sle a b)
          | [ "i"; c; a; b ] ->
              push (ite (node (int_of c)) (node (int_of a)) (node (int_of b)))
          | [ "x"; h; l; a ] ->
              push (extract ~high:(int_of h) ~low:(int_of l) (node (int_of a)))
          | [ "@"; a; b ] -> push (concat (node (int_of a)) (node (int_of b)))
          | [ "r"; aw; dw; a; name ] ->
              let m =
                { mem_name = name; addr_width = int_of aw; data_width = int_of dw }
              in
              push (read m (node (int_of a)))
          | [ "t"; ti; a ] -> (
              match Hashtbl.find_opt tables (int_of ti) with
              | Some tb -> push (table_read tb (node (int_of a)))
              | None -> fail "Term.deserialize: table %s undefined" ti)
          | "R" :: ids -> roots := Some (List.map (fun k -> node (int_of k)) ids)
          | _ -> fail "Term.deserialize: malformed line %S" line)
        rest;
      (match !roots with
      | Some rs -> rs
      | None -> fail "Term.deserialize: missing root line")
  | header :: _ -> fail "Term.deserialize: unknown header %S" header
  | [] -> fail "Term.deserialize: empty document"

(* {1 Evaluation and substitution} *)

type env = {
  lookup_var : string -> int -> Bitvec.t option;
  lookup_read : mem -> Bitvec.t -> Bitvec.t option;
}

let eval env root =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
        let v =
          match t.node with
          | Const v -> v
          | Var s -> (
              match env.lookup_var s t.width with
              | Some v ->
                  if Bitvec.width v <> t.width then
                    failwith (Printf.sprintf "Term.eval: %s bound at wrong width" s)
                  else v
              | None -> failwith (Printf.sprintf "Term.eval: unbound variable %s" s))
          | Not x -> Bitvec.lognot (go x)
          | Binop (o, a, b) -> (
              let a = go a and b = go b in
              match o with
              | And -> Bitvec.logand a b
              | Or -> Bitvec.logor a b
              | Xor -> Bitvec.logxor a b
              | Add -> Bitvec.add a b
              | Sub -> Bitvec.sub a b
              | Mul -> Bitvec.mul a b
              | Udiv -> Bitvec.udiv a b
              | Urem -> Bitvec.urem a b
              | Sdiv -> Bitvec.sdiv a b
              | Srem -> Bitvec.srem a b
              | Clmul -> Bitvec.clmul a b
              | Clmulh -> Bitvec.clmulh a b
              | Shl -> Bitvec.shl a b
              | Lshr -> Bitvec.lshr a b
              | Ashr -> Bitvec.ashr a b)
          | Cmp (o, a, b) ->
              let a = go a and b = go b in
              let r =
                match o with
                | Eq -> Bitvec.equal a b
                | Ult -> Bitvec.ult a b
                | Ule -> Bitvec.ule a b
                | Slt -> Bitvec.slt a b
                | Sle -> Bitvec.sle a b
              in
              if r then Bitvec.one 1 else Bitvec.zero 1
          | Ite (c, a, b) -> if Bitvec.is_ones (go c) then go a else go b
          | Extract (h, l, x) -> Bitvec.extract ~high:h ~low:l (go x)
          | Concat (a, b) -> Bitvec.concat (go a) (go b)
          | Read (m, a) -> (
              let addr = go a in
              match env.lookup_read m addr with
              | Some v -> v
              | None ->
                  failwith
                    (Printf.sprintf "Term.eval: unresolved read %s[%s]" m.mem_name
                       (Bitvec.to_string addr)))
          | Table (tb, a) -> tb.tab_data.(Bitvec.to_int_exn (go a))
        in
        Hashtbl.add memo t.id v;
        v
  in
  go root

let substitute env root =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
        let v =
          match t.node with
          | Const _ -> t
          | Var s -> (
              match env.lookup_var s t.width with Some v -> const v | None -> t)
          | Not x -> bnot (go x)
          | Binop (And, a, b) -> band (go a) (go b)
          | Binop (Or, a, b) -> bor (go a) (go b)
          | Binop (Xor, a, b) -> bxor (go a) (go b)
          | Binop (Add, a, b) -> add (go a) (go b)
          | Binop (Sub, a, b) -> sub (go a) (go b)
          | Binop (Mul, a, b) -> mul (go a) (go b)
          | Binop (Udiv, a, b) -> udiv (go a) (go b)
          | Binop (Urem, a, b) -> urem (go a) (go b)
          | Binop (Sdiv, a, b) -> sdiv (go a) (go b)
          | Binop (Srem, a, b) -> srem (go a) (go b)
          | Binop (Clmul, a, b) -> clmul (go a) (go b)
          | Binop (Clmulh, a, b) -> clmulh (go a) (go b)
          | Binop (Shl, a, b) -> shl (go a) (go b)
          | Binop (Lshr, a, b) -> lshr (go a) (go b)
          | Binop (Ashr, a, b) -> ashr (go a) (go b)
          | Cmp (o, a, b) -> cmp o (go a) (go b)
          | Ite (c, a, b) ->
              let c = go c in
              (* Avoid rebuilding the dead branch when the condition folds. *)
              if is_true c then go a else if is_false c then go b else ite c (go a) (go b)
          | Extract (h, l, x) -> extract ~high:h ~low:l (go x)
          | Concat (a, b) -> concat (go a) (go b)
          | Read (m, a) -> (
              let a = go a in
              match is_const a with
              | Some addr -> (
                  match env.lookup_read m addr with
                  | Some v -> const v
                  | None -> read m a)
              | None -> read m a)
          | Table (tb, a) -> table_read tb (go a)
        in
        Hashtbl.add memo t.id v;
        v
  in
  go root

let rename f root =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
        let v =
          match t.node with
          | Const _ -> t
          | Var s -> (match f s with Some s' -> var s' t.width | None -> t)
          | Not x -> bnot (go x)
          | Binop (And, a, b) -> band (go a) (go b)
          | Binop (Or, a, b) -> bor (go a) (go b)
          | Binop (Xor, a, b) -> bxor (go a) (go b)
          | Binop (Add, a, b) -> add (go a) (go b)
          | Binop (Sub, a, b) -> sub (go a) (go b)
          | Binop (Mul, a, b) -> mul (go a) (go b)
          | Binop (Udiv, a, b) -> udiv (go a) (go b)
          | Binop (Urem, a, b) -> urem (go a) (go b)
          | Binop (Sdiv, a, b) -> sdiv (go a) (go b)
          | Binop (Srem, a, b) -> srem (go a) (go b)
          | Binop (Clmul, a, b) -> clmul (go a) (go b)
          | Binop (Clmulh, a, b) -> clmulh (go a) (go b)
          | Binop (Shl, a, b) -> shl (go a) (go b)
          | Binop (Lshr, a, b) -> lshr (go a) (go b)
          | Binop (Ashr, a, b) -> ashr (go a) (go b)
          | Cmp (o, a, b) -> cmp o (go a) (go b)
          | Ite (c, a, b) -> ite (go c) (go a) (go b)
          | Extract (h, l, x) -> extract ~high:h ~low:l (go x)
          | Concat (a, b) -> concat (go a) (go b)
          | Read (m, a) -> read m (go a)
          | Table (tb, a) -> table_read tb (go a)
        in
        Hashtbl.add memo t.id v;
        v
  in
  go root
