(* SMT façade: Ackermannization + bit-blasting + CDCL.

   Two entry points share one engine:

   - [check]: the historical one-shot API.  A fresh session per call, so
     every call is independent and re-entrant.
   - [Session]: a persistent solving context.  The SAT instance, the
     blasting context (with its term -> literals cache) and the Ackermann
     instance table survive across checks, so a family of queries that
     differ by a few added constraints — the CEGIS inner loop — re-encodes
     only what is new and keeps learned clauses and variable activity. *)

type model = {
  var_value : string -> Bitvec.t option;
  read_values : (string * Bitvec.t * Bitvec.t) list;
  read_index : (string * string, Bitvec.t) Hashtbl.t Lazy.t;
}

type stats = {
  sat_vars : int;
  sat_clauses : int;
  sat_conflicts : int;
  sat_restarts : int;
  sat_learnt_kept : int;
  sat_learnt_deleted : int;
  sat_subsumed : int;
  sat_strengthened : int;
  sat_vivified : int;
  sat_eliminated : int;
  sat_rephases : int;
  trivially_unsat : bool;
}

let empty_stats =
  {
    sat_vars = 0;
    sat_clauses = 0;
    sat_conflicts = 0;
    sat_restarts = 0;
    sat_learnt_kept = 0;
    sat_learnt_deleted = 0;
    sat_subsumed = 0;
    sat_strengthened = 0;
    sat_vivified = 0;
    sat_eliminated = 0;
    sat_rephases = 0;
    trivially_unsat = false;
  }

type outcome = Sat of model * stats | Unsat of stats | Unknown of stats

let stats_of = function Sat (_, s) | Unsat s | Unknown s -> s

let outcome_name = function
  | Sat _ -> "sat"
  | Unsat _ -> "unsat"
  | Unknown _ -> "unknown"

(* Observability handles, registered once at module initialization *)
let c_checks = Obs.counter "solver.checks"
let c_ack_instances = Obs.counter "solver.ack_instances"
let h_check_latency = Obs.histogram "solver.check.latency_us"
let h_check_conflicts = Obs.histogram "solver.check.conflicts"
let h_check_clauses = Obs.histogram "solver.check.clauses"

(* Deterministic model corruption for fault injection ([Fault.Corrupt_model]):
   flip one seed-chosen bit of every variable the blaster saw, on a copy.
   The session itself is untouched, so retrying the same check recovers the
   honest model — phase saving replays the saved polarities, which are the
   model, so the retry finds it with zero conflicts. *)
let corrupt_model (m : model) =
  let s = Fault.seed () in
  let flip name v =
    let w = Bitvec.width v in
    let bit = Hashtbl.hash (s, name) mod w in
    Bitvec.logxor v (Bitvec.shl_int (Bitvec.one w) bit)
  in
  { m with var_value = (fun n -> Option.map (flip n) (m.var_value n)) }

(* {1 Ackermann expansion}

   Replace every [Read (m, addr)] node by a fresh variable, bottom-up, and
   record the (mem, rewritten-address, variable) instances.  For every pair
   of instances on the same memory, a congruence constraint
   [addr1 = addr2 -> v1 = v2] is required.

   The state is monotone so a session can extend it: the memo and instance
   tables persist, and rewriting a new assertion returns only the
   congruence constraints its {e new} instances introduce (each new
   instance against every instance recorded before it, in recording
   order).  A one-shot [check] uses a fresh state, which reproduces the
   historical per-call behavior.

   Ackermann variables are named per state ("ack!<mem>!<k>" with [k]
   counting from 1 in traversal order), never per process: each state is
   owned by exactly one SAT context, so reusing a name across independent
   sessions is harmless, and per-state numbering keeps the generated CNF —
   hence the whole query — deterministic no matter how many checks other
   domains ran before this one.  Widths cannot clash because the name
   embeds the memory, whose data width is fixed. *)

type ack = {
  ack_memo : (int, Term.t) Hashtbl.t;  (* original term id -> rewritten *)
  (* (mem name, rewritten address id) -> replacement variable *)
  ack_instance_tbl : (string * int, Term.t) Hashtbl.t;
  (* per memory, the (address, variable) instances, newest first *)
  ack_by_mem : (string, (Term.t * Term.t) list) Hashtbl.t;
  mutable ack_counter : int;
  (* all instances in traversal order, newest first *)
  mutable ack_instances_rev : (Term.mem * Term.t * Term.t) list;
}

let ack_create () =
  {
    ack_memo = Hashtbl.create 256;
    ack_instance_tbl = Hashtbl.create 64;
    ack_by_mem = Hashtbl.create 8;
    ack_counter = 0;
    ack_instances_rev = [];
  }

(* Rewrites [t], extending the instance table; appends the congruence
   constraints owed by newly discovered instances to [congs] (in reverse
   discovery order — callers reverse once at the end). *)
let ack_rewrite (a : ack) (congs : Term.t list ref) (t : Term.t) : Term.t =
  let rec go (t : Term.t) : Term.t =
    match Hashtbl.find_opt a.ack_memo (Term.id t) with
    | Some r -> r
    | None ->
        let r =
          match t.Term.node with
          | Term.Const _ | Term.Var _ -> t
          | Term.Not x -> Term.bnot (go x)
          | Term.Binop (op, x, y) -> (
              let x = go x and y = go y in
              match op with
              | Term.And -> Term.band x y
              | Term.Or -> Term.bor x y
              | Term.Xor -> Term.bxor x y
              | Term.Add -> Term.add x y
              | Term.Sub -> Term.sub x y
              | Term.Mul -> Term.mul x y
              | Term.Udiv -> Term.udiv x y
              | Term.Urem -> Term.urem x y
              | Term.Sdiv -> Term.sdiv x y
              | Term.Srem -> Term.srem x y
              | Term.Clmul -> Term.clmul x y
              | Term.Clmulh -> Term.clmulh x y
              | Term.Shl -> Term.shl x y
              | Term.Lshr -> Term.lshr x y
              | Term.Ashr -> Term.ashr x y)
          | Term.Cmp (op, x, y) -> (
              let x = go x and y = go y in
              match op with
              | Term.Eq -> Term.eq x y
              | Term.Ult -> Term.ult x y
              | Term.Ule -> Term.ule x y
              | Term.Slt -> Term.slt x y
              | Term.Sle -> Term.sle x y)
          | Term.Ite (c, x, y) -> Term.ite (go c) (go x) (go y)
          | Term.Extract (h, l, x) -> Term.extract ~high:h ~low:l (go x)
          | Term.Concat (x, y) -> Term.concat (go x) (go y)
          | Term.Table (tb, i) -> Term.table_read tb (go i)
          | Term.Read (m, addr) -> (
              let addr = go addr in
              let key = (m.Term.mem_name, Term.id addr) in
              match Hashtbl.find_opt a.ack_instance_tbl key with
              | Some v -> v
              | None ->
                  a.ack_counter <- a.ack_counter + 1;
                  Obs.incr c_ack_instances;
                  if Obs.enabled () then
                    Obs.instant "solver.ack_instance"
                      ~args:
                        [
                          ("mem", Obs.Str m.Term.mem_name);
                          ("instances", Obs.Int a.ack_counter);
                        ];
                  let v =
                    Term.var
                      (Printf.sprintf "ack!%s!%d" m.Term.mem_name a.ack_counter)
                      m.Term.data_width
                  in
                  Hashtbl.add a.ack_instance_tbl key v;
                  let earlier =
                    Option.value ~default:[]
                      (Hashtbl.find_opt a.ack_by_mem m.Term.mem_name)
                  in
                  (* congruence with every earlier instance of this memory;
                     [earlier] is newest-first, which is deterministic *)
                  List.iter
                    (fun (a2, v2) ->
                      congs :=
                        Term.implies (Term.eq addr a2) (Term.eq v v2) :: !congs)
                    earlier;
                  Hashtbl.replace a.ack_by_mem m.Term.mem_name
                    ((addr, v) :: earlier);
                  a.ack_instances_rev <- (m, addr, v) :: a.ack_instances_rev;
                  v)
        in
        Hashtbl.add a.ack_memo (Term.id t) r;
        r
  in
  go t

(* One-shot expansion (kept for tests and external callers): rewrites the
   assertions against a fresh state and returns the congruence constraints
   alongside, plus the instances in traversal order. *)
let ackermannize (assertions : Term.t list) =
  let a = ack_create () in
  let congs = ref [] in
  let rewritten = List.map (ack_rewrite a congs) assertions in
  (rewritten @ List.rev !congs, List.rev a.ack_instances_rev)

(* {1 Strategies}

   The first-class description of {e how} a query is solved: the pass
   profile, the restart/branching/phase diversification knobs, and the
   clause-sharing toggles the portfolio racers honor.  This used to be
   scattered across [Sat.config] plumbing in three layers (CLI flags, the
   engine options record, the serve codec); each layer now carries one
   [Strategy.t] and derives the [Sat.config] at the last moment. *)

module Strategy = struct
  type t = {
    profile : Sat.profile;  (* where [passes] started from, for display *)
    passes : Sat.config;  (* pass gates (retention/rephase/inprocessing) *)
    restart : Sat.restart_schedule;
    seed : int;  (* branching seed; 0 = undiversified *)
    phase : Sat.phase_init;
    share_in : bool;  (* import clauses other racers publish *)
    share_out : bool;  (* publish own glue clauses to the race *)
  }

  let of_profile p =
    let c = Sat.config_of_profile p in
    {
      profile = p;
      passes = c;
      restart = c.Sat.restart;
      seed = c.Sat.branch_seed;
      phase = c.Sat.phase;
      share_in = true;
      share_out = true;
    }

  let default = of_profile Sat.Default

  (* Adopt a raw [Sat.config] (the legacy plumbing's currency).  The
     profile tag is recovered structurally when the config matches a
     preset, so [describe] stays honest for the common cases. *)
  let of_config (c : Sat.config) =
    let base = { c with Sat.restart = Sat.default_config.Sat.restart;
                 branch_seed = 0; phase = Sat.Phase_neg } in
    let profile =
      if base = Sat.conservative_config then Sat.Conservative
      else if base = Sat.aggressive_config then Sat.Aggressive
      else Sat.Default
    in
    (* [passes] keeps only the pass gates; the diversification fields
       live in the record and are folded back by [sat_config], so two
       strategies that solve identically compare equal structurally *)
    {
      profile;
      passes = base;
      restart = c.Sat.restart;
      seed = c.Sat.branch_seed;
      phase = c.Sat.phase;
      share_in = true;
      share_out = true;
    }

  let with_profile p t =
    let c = Sat.config_of_profile p in
    { t with profile = p; passes = c }

  let with_restart r t =
    (match r with
    | Sat.Luby base when base < 1 ->
        invalid_arg "Strategy.with_restart: Luby base < 1"
    | Sat.Geometric (base, f) when base < 1 || f < 1.0 ->
        invalid_arg "Strategy.with_restart: Geometric base < 1 or factor < 1.0"
    | _ -> ());
    { t with restart = r }

  let with_seed seed t =
    if seed < 0 then invalid_arg "Strategy.with_seed: seed < 0";
    { t with seed }

  let with_phase phase t = { t with phase }
  let with_share_in share_in t = { t with share_in }
  let with_share_out share_out t = { t with share_out }

  (* escape hatch for the per-pass [--no-sat-*] shims: edit the pass gates
     without losing the diversification fields *)
  let with_passes f t = { t with passes = f t.passes }

  let sat_config t =
    { t.passes with Sat.restart = t.restart; branch_seed = t.seed;
      phase = t.phase }

  (* Racer [i]'s variant of a base strategy.  Racer 0 runs the base
     unchanged (so a portfolio is never slower than sequential by more
     than scheduling overhead, and the base's determinism is preserved);
     the rest cycle restart schedules, phases, seeds, and — every fourth
     racer — the aggressive inprocessing profile.  Purely a function of
     [(i, base)], so a portfolio of N racers is reproducible. *)
  let diversify i t =
    if i <= 0 then t
    else
      let seed = (if t.seed = 0 then 0 else t.seed) + i in
      let restart =
        match i mod 4 with
        | 1 -> Sat.Geometric (100, 1.3)
        | 2 -> Sat.Luby 50
        | 3 -> Sat.Geometric (150, 1.5)
        | _ -> Sat.Luby 200
      in
      let phase =
        match i mod 3 with
        | 1 -> Sat.Phase_pos
        | 2 -> Sat.Phase_rand
        | _ -> Sat.Phase_neg
      in
      let passes =
        if i mod 4 = 3 then Sat.aggressive_config else t.passes
      in
      { t with seed; restart; phase; passes }

  let restart_name = function
    | Sat.Luby b -> Printf.sprintf "luby:%d" b
    | Sat.Geometric (b, f) -> Printf.sprintf "geometric:%d:%g" b f

  (* inverse of [restart_name]; the CLI flag and the wire codec both
     speak this little language *)
  let restart_of_string s =
    match String.split_on_char ':' s with
    | [ "luby"; b ] -> (
        match int_of_string_opt b with
        | Some b when b >= 1 -> Some (Sat.Luby b)
        | _ -> None)
    | [ "geometric"; b; f ] -> (
        match (int_of_string_opt b, float_of_string_opt f) with
        | Some b, Some f when b >= 1 && f >= 1.0 ->
            Some (Sat.Geometric (b, f))
        | _ -> None)
    | _ -> None

  let phase_name = function
    | Sat.Phase_neg -> "neg"
    | Sat.Phase_pos -> "pos"
    | Sat.Phase_rand -> "rand"

  let phase_of_string = function
    | "neg" -> Some Sat.Phase_neg
    | "pos" -> Some Sat.Phase_pos
    | "rand" -> Some Sat.Phase_rand
    | _ -> None

  let describe t =
    Printf.sprintf "%s/%s/seed%d/%s%s"
      (Sat.profile_name t.profile)
      (restart_name t.restart) t.seed (phase_name t.phase)
      (match (t.share_in, t.share_out) with
      | true, true -> ""
      | false, false -> "/noshare"
      | true, false -> "/share-in"
      | false, true -> "/share-out")

  let equal (a : t) (b : t) = a = b
end

(* {1 Sessions} *)

module Session = struct
  type t = {
    sat : Sat.t;
    blast : Blast.t;
    ack : ack;
    mutable trivially_false : bool;
        (* a permanently asserted term simplified to constant false: the
           session is dead without ever consulting the SAT solver *)
    (* watermarks for per-check statistics deltas *)
    mutable last_vars : int;
    mutable last_clauses : int;
    mutable last_conflicts : int;
    mutable last_restarts : int;
    mutable last_learnt_kept : int;
    mutable last_learnt_deleted : int;
    mutable last_subsumed : int;
    mutable last_strengthened : int;
    mutable last_vivified : int;
    mutable last_eliminated : int;
    mutable last_rephases : int;
  }

  type guard = int

  let create ?config () =
    let sat = Sat.create ?config () in
    let blast = Blast.create sat in
    {
      sat;
      blast;
      ack = ack_create ();
      trivially_false = false;
      last_vars = 0;
      last_clauses = 0;
      last_conflicts = 0;
      last_restarts = 0;
      last_learnt_kept = 0;
      last_learnt_deleted = 0;
      last_subsumed = 0;
      last_strengthened = 0;
      last_vivified = 0;
      last_eliminated = 0;
      last_rephases = 0;
    }

  (* cumulative count of problem clauses ever encoded — inprocessing can
     delete live clauses, so [num_clauses - num_learnt] is no longer
     monotone and would produce negative per-check deltas *)
  let problem_clauses s = Sat.encoded_clauses s.sat

  let assert_always s t =
    if Term.width t <> 1 then
      invalid_arg "Solver.Session.assert_always: assertion width <> 1";
    if Term.is_false t then s.trivially_false <- true
    else begin
      let congs = ref [] in
      let t' = ack_rewrite s.ack congs t in
      List.iter (Blast.assert_term s.blast) (List.rev !congs);
      if Term.is_false t' then s.trivially_false <- true
      else Blast.assert_term s.blast t'
    end

  let assert_retractable s t =
    if Term.width t <> 1 then
      invalid_arg "Solver.Session.assert_retractable: assertion width <> 1";
    if Term.is_false t then begin
      (* enabling this guard must be contradictory on its own *)
      let g = Blast.fresh_lit s.blast in
      Sat.freeze s.sat g;
      Sat.add_clause s.sat [ -g ];
      g
    end
    else begin
      let congs = ref [] in
      let t' = ack_rewrite s.ack congs t in
      (* congruence constraints relate Ackermann variables only; they are
         valid regardless of which guarded assertions are active, so they
         are asserted permanently *)
      List.iter (Blast.assert_term s.blast) (List.rev !congs);
      if Term.is_false t' then begin
        let g = Blast.fresh_lit s.blast in
        Sat.freeze s.sat g;
        Sat.add_clause s.sat [ -g ];
        g
      end
      else begin
        (* blast first, then allocate the guard, so variable numbering for
           the encoded term matches what a fresh one-shot check would
           produce.  Guards are frozen: retraction re-constrains them at
           any time, and variable elimination must never touch them (a
           re-constrained eliminated variable forces a full clause
           restore) *)
        let bits = Blast.blast s.blast t' in
        let g = Blast.fresh_lit s.blast in
        Sat.freeze s.sat g;
        Sat.add_clause s.sat [ -g; bits.(0) ];
        g
      end
    end

  let retract s g = Sat.add_clause s.sat [ -g ]

  let take_stats ?(trivially_unsat = false) s =
    let vars = Sat.num_vars s.sat in
    let clauses = problem_clauses s in
    let conflicts = Sat.conflicts s.sat in
    let restarts = Sat.restarts s.sat in
    let learnt_kept = Sat.learnt_kept s.sat in
    let learnt_deleted = Sat.learnt_deleted s.sat in
    let subsumed = Sat.subsumed s.sat in
    let strengthened = Sat.strengthened s.sat in
    let vivified = Sat.vivified s.sat in
    let eliminated = Sat.eliminated_vars s.sat in
    let rephases = Sat.rephases s.sat in
    let d =
      {
        sat_vars = vars - s.last_vars;
        sat_clauses = clauses - s.last_clauses;
        sat_conflicts = conflicts - s.last_conflicts;
        sat_restarts = restarts - s.last_restarts;
        sat_learnt_kept = learnt_kept - s.last_learnt_kept;
        sat_learnt_deleted = learnt_deleted - s.last_learnt_deleted;
        sat_subsumed = subsumed - s.last_subsumed;
        sat_strengthened = strengthened - s.last_strengthened;
        sat_vivified = vivified - s.last_vivified;
        sat_eliminated = eliminated - s.last_eliminated;
        sat_rephases = rephases - s.last_rephases;
        trivially_unsat;
      }
    in
    s.last_vars <- vars;
    s.last_clauses <- clauses;
    s.last_conflicts <- conflicts;
    s.last_restarts <- restarts;
    s.last_learnt_kept <- learnt_kept;
    s.last_learnt_deleted <- learnt_deleted;
    s.last_subsumed <- subsumed;
    s.last_strengthened <- strengthened;
    s.last_vivified <- vivified;
    s.last_eliminated <- eliminated;
    s.last_rephases <- rephases;
    d

  (* One introspection snapshot instead of scattered accessors: the cache,
     the obs instrumentation, and the arena aggregate all read the same
     record, so adding a field means adding it in exactly one place. *)
  type stats = {
    vars : int;
    clauses : int;
    conflicts : int;
    learnt : int;
    restarts : int;
    learnt_kept : int;
    learnt_deleted : int;
    subsumed : int;
    strengthened : int;
    vivified : int;
    eliminated_vars : int;
    rephases : int;
    cached_terms : int;
    trivially_unsat : bool;
  }

  let stats s =
    {
      vars = Sat.num_vars s.sat;
      clauses = problem_clauses s;
      conflicts = Sat.conflicts s.sat;
      learnt = Sat.num_learnt s.sat;
      restarts = Sat.restarts s.sat;
      learnt_kept = Sat.learnt_kept s.sat;
      learnt_deleted = Sat.learnt_deleted s.sat;
      subsumed = Sat.subsumed s.sat;
      strengthened = Sat.strengthened s.sat;
      vivified = Sat.vivified s.sat;
      eliminated_vars = Sat.eliminated_vars s.sat;
      rephases = Sat.rephases s.sat;
      cached_terms = Blast.cached_terms s.blast;
      trivially_unsat = s.trivially_false;
    }

  (* Model reconstruction.  Assignments are snapshotted eagerly, so the
     model stays valid after further asserts/retracts/checks on the same
     session (the engine retracts a candidate before mining the model). *)
  let build_model s =
    let nvars = Sat.num_vars s.sat in
    let values = Array.init nvars (fun i -> Sat.value s.sat (i + 1)) in
    let lit_val l = if l > 0 then values.(l - 1) else not values.(-l - 1) in
    let var_value name =
      match Blast.var_bits s.blast name with
      | None -> None
      | Some bits when Array.exists (fun l -> abs l > nvars) bits -> None
      | Some bits -> Some (Bitvec.of_bits (Array.map lit_val bits))
    in
    (* Evaluate read instance addresses under the model to produce the
       word-level memory view.  Variables the blaster never saw were
       simplified away; any value works, so they default to zero. *)
    let env =
      {
        Term.lookup_var =
          (fun n w ->
            match var_value n with
            | Some v -> Some v
            | None -> Some (Bitvec.zero w));
        Term.lookup_read = (fun _ _ -> None);
      }
    in
    let read_values =
      List.rev_map
        (fun ((m : Term.mem), addr, v) ->
          (m.Term.mem_name, Term.eval env addr, Term.eval env v))
        s.ack.ack_instances_rev
    in
    (* First match in instance order is canonical (congruence forces
       aliasing instances to agree), so the index keeps the first binding
       per (memory, address). *)
    let read_index =
      lazy
        (let tbl = Hashtbl.create (List.length read_values) in
         List.iter
           (fun (name, a, v) ->
             let key = (name, Bitvec.to_string a) in
             if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v)
           read_values;
         tbl)
    in
    { var_value; read_values; read_index }

  let check_with_raw ?(assumptions = []) ?(budget = max_int) ?deadline s
      assertions =
    List.iter
      (fun t ->
        if Term.width t <> 1 then
          invalid_arg "Solver.Session.check_with: assertion width <> 1")
      assertions;
    (* Fast path: a constant-false conjunct poisons the session without
       blasting anything; the statistics still report honest deltas plus
       the [trivially_unsat] flag so budget accounting sees that no search
       happened. *)
    if List.exists Term.is_false assertions then s.trivially_false <- true
    else List.iter (assert_always s) assertions;
    if s.trivially_false then Unsat (take_stats ~trivially_unsat:true s)
    else begin
      (* Fault-injection hook: a planned spurious Unknown intercepts the
         check {e before} the SAT search, leaving the session untouched, so
         a retry of the same check is honest.  A planned corruption damages
         only the returned model copy, for the same reason. *)
      match Fault.on_check () with
      | Some Fault.Spurious_unknown -> Unknown (take_stats s)
      | injected -> (
          let result = Sat.solve ~assumptions ~budget ?deadline s.sat in
          let st = take_stats s in
          match result with
          | Sat.Unsat -> Unsat st
          | Sat.Unknown -> Unknown st
          | Sat.Sat ->
              let m = build_model s in
              let m =
                if injected = Some Fault.Corrupt_model then corrupt_model m
                else m
              in
              Sat (m, st))
    end

  (* Observability wrapper: the span's end arguments carry this check's
     statistics {e delta} (what the incremental encoding actually added),
     and the histograms feed the summary table. *)
  let check_with ?(assumptions = []) ?(budget = max_int) ?deadline s assertions
      =
    if not (Obs.enabled () || Obs.metrics_enabled ()) then
      check_with_raw ~assumptions ~budget ?deadline s assertions
    else begin
      let t_start = Unix.gettimeofday () in
      let outcome =
        Obs.span "solver.check"
          ~args:
            [
              ("assertions", Obs.Int (List.length assertions));
              ("assumptions", Obs.Int (List.length assumptions));
            ]
          ~result:(fun o ->
            let st = stats_of o in
            [
              ("result", Obs.Str (outcome_name o));
              ("delta_vars", Obs.Int st.sat_vars);
              ("delta_clauses", Obs.Int st.sat_clauses);
              ("conflicts", Obs.Int st.sat_conflicts);
              ("trivially_unsat", Obs.Bool st.trivially_unsat);
            ])
          (fun () -> check_with_raw ~assumptions ~budget ?deadline s assertions)
      in
      let st = stats_of outcome in
      Obs.incr c_checks;
      Obs.observe h_check_latency
        (int_of_float ((Unix.gettimeofday () -. t_start) *. 1e6));
      Obs.observe h_check_conflicts st.sat_conflicts;
      Obs.observe h_check_clauses st.sat_clauses;
      outcome
    end

  (* Cross-run warm starts: the cache exports a finished session's learned
     clauses and replays them into a future session for the {e same}
     problem fingerprint.  Replay is sound only under identical variable
     numbering, which the deterministic blasting order guarantees when the
     fingerprints match exactly — the cache layer enforces that guard. *)
  (* A raw DIMACS literal as an assumption guard: [check_with] hands
     guards straight to [Sat.solve ~assumptions], so any literal over an
     allocated variable is a valid assumption.  The cube splitter uses
     this to turn [top_vars] picks into cubes. *)
  let lit_guard s l =
    if l = 0 || l = min_int || abs l > Sat.num_vars s.sat then
      invalid_arg "Session.lit_guard: literal names no allocated variable";
    l

  let export_learnt ?max_lbd s = Sat.export_learnt ?max_lbd s.sat
  let import_learnt s clauses = Sat.import_learnt s.sat clauses
  let import_dropped s = Sat.import_dropped s.sat

  (* cube splitting support: the most clause-constrained SAT variables of
     this session's encoding, as raw DIMACS literals usable directly in
     [check_with ~assumptions] *)
  let top_vars s k = Sat.top_vars s.sat k
  let num_vars s = Sat.num_vars s.sat
end

(* {1 Arenas}

   A session allocation scope: one arena per worker domain gives each
   domain its own private sessions (nothing inside a session is locked, so
   sessions must never cross domains) while keeping an aggregate view for
   benchmarking.  [shared] memoizes one session per arena for callers that
   want cross-task reuse within a worker. *)

module Arena = struct
  type t = {
    config : Sat.config option;  (* applied to every session handed out *)
    mutable sessions : Session.t list;
    mutable shared_session : Session.t option;
  }

  let create ?config () = { config; sessions = []; shared_session = None }

  let session a =
    let s = Session.create ?config:a.config () in
    a.sessions <- s :: a.sessions;
    s

  let shared a =
    match a.shared_session with
    | Some s -> s
    | None ->
        let s = session a in
        a.shared_session <- Some s;
        s

  let session_count a = List.length a.sessions

  let stats a =
    List.fold_left
      (fun acc s ->
        let st = Session.stats s in
        {
          sat_vars = acc.sat_vars + st.Session.vars;
          sat_clauses = acc.sat_clauses + st.Session.clauses;
          sat_conflicts = acc.sat_conflicts + st.Session.conflicts;
          sat_restarts = acc.sat_restarts + st.Session.restarts;
          sat_learnt_kept = acc.sat_learnt_kept + st.Session.learnt_kept;
          sat_learnt_deleted =
            acc.sat_learnt_deleted + st.Session.learnt_deleted;
          sat_subsumed = acc.sat_subsumed + st.Session.subsumed;
          sat_strengthened = acc.sat_strengthened + st.Session.strengthened;
          sat_vivified = acc.sat_vivified + st.Session.vivified;
          sat_eliminated = acc.sat_eliminated + st.Session.eliminated_vars;
          sat_rephases = acc.sat_rephases + st.Session.rephases;
          trivially_unsat = false;
        })
      empty_stats a.sessions
end

(* {1 One-shot checking}

   [check] is re-entrant: it is a fresh session per call, so the SAT
   solver, the blasting context, and the returned statistics are all per
   call, and any number of checks may run concurrently from different
   domains. *)

let check ?config ?(budget = max_int) ?deadline assertions =
  let s = Session.create ?config () in
  Session.check_with ~budget ?deadline s assertions

(* First match in instance order.  Distinct read instances can evaluate to
   the same concrete address; the Ackermann congruence constraints force
   their values to agree in any model, so first-match is both deterministic
   and canonical — later duplicates are necessarily equal.  The index is a
   hash table built lazily once per model (keyed by memory name and
   address), replacing the per-lookup list scan that made dense lookup
   patterns quadratic. *)
let read_lookup model (m : Term.mem) addr =
  Hashtbl.find_opt
    (Lazy.force model.read_index)
    (m.Term.mem_name, Bitvec.to_string addr)
