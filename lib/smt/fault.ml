(* Deterministic fault injection.  See the interface for the plan grammar.

   The installed plan lives in one [Atomic.t]; the hot path with no plan
   installed is a single atomic load returning [None]/unit.  Counters are
   atomics inside the installed state, so concurrent worker domains index
   checks and task attempts in a coherent global order (which faults land
   on which worker under [jobs > 1] depends on the schedule — recovery,
   not fault placement, is what must be deterministic). *)

type action = Spurious_unknown | Corrupt_model
type frame_action = Drop_conn | Delay of float

exception Injected_crash of int
exception Injected_worker_kill of int
exception Parse_error of string

(* how long a [frame_delay@N] stalls its frame: long enough to reorder a
   race, short enough that chaos suites stay fast *)
let frame_delay_seconds = 0.05

type plan = {
  unknowns : int list;  (* sorted, 1-based check indices *)
  corrupts : int list;
  crashes : int list;  (* sorted, 1-based task-attempt indices *)
  worker_kills : int list;  (* sorted, 1-based service-job indices *)
  conn_drops : int list;  (* sorted, 1-based server-written frame indices *)
  frame_delays : int list;
  sheds : int list;  (* sorted, 1-based admission indices *)
  plan_seed : int;
}

type state = {
  plan : plan;
  checks : int Atomic.t;
  tasks : int Atomic.t;
  serve_jobs : int Atomic.t;
  frames : int Atomic.t;
  admits : int Atomic.t;
  hits : int Atomic.t;
}

let installed : state option Atomic.t = Atomic.make None

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse s =
  let index directive v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | Some n -> parse_error "fault plan: %s@%d: index must be >= 1" directive n
    | None -> parse_error "fault plan: %s@%s: not an integer" directive v
  in
  let parts =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then parse_error "fault plan: empty plan";
  let p =
    List.fold_left
      (fun acc part ->
        match String.index_opt part '@' with
        | Some i -> (
            let d = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            let n = index d v in
            match d with
            | "unknown" -> { acc with unknowns = n :: acc.unknowns }
            | "corrupt" -> { acc with corrupts = n :: acc.corrupts }
            | "crash" -> { acc with crashes = n :: acc.crashes }
            | "worker_kill" -> { acc with worker_kills = n :: acc.worker_kills }
            | "conn_drop" -> { acc with conn_drops = n :: acc.conn_drops }
            | "frame_delay" -> { acc with frame_delays = n :: acc.frame_delays }
            | "shed" -> { acc with sheds = n :: acc.sheds }
            | _ -> parse_error "fault plan: unknown directive %S" d)
        | None -> (
            match String.index_opt part '=' with
            | Some i when String.sub part 0 i = "seed" -> (
                let v = String.sub part (i + 1) (String.length part - i - 1) in
                match int_of_string_opt v with
                | Some n -> { acc with plan_seed = n }
                | None -> parse_error "fault plan: seed=%s: not an integer" v)
            | _ -> parse_error "fault plan: cannot parse element %S" part))
      {
        unknowns = [];
        corrupts = [];
        crashes = [];
        worker_kills = [];
        conn_drops = [];
        frame_delays = [];
        sheds = [];
        plan_seed = 0;
      }
      parts
  in
  {
    unknowns = List.sort_uniq compare p.unknowns;
    corrupts = List.sort_uniq compare p.corrupts;
    crashes = List.sort_uniq compare p.crashes;
    worker_kills = List.sort_uniq compare p.worker_kills;
    conn_drops = List.sort_uniq compare p.conn_drops;
    frame_delays = List.sort_uniq compare p.frame_delays;
    sheds = List.sort_uniq compare p.sheds;
    plan_seed = p.plan_seed;
  }

let to_string p =
  let tag d = List.map (fun n -> Printf.sprintf "%s@%d" d n) in
  String.concat ","
    (tag "unknown" p.unknowns @ tag "corrupt" p.corrupts
    @ tag "crash" p.crashes
    @ tag "worker_kill" p.worker_kills
    @ tag "conn_drop" p.conn_drops
    @ tag "frame_delay" p.frame_delays
    @ tag "shed" p.sheds
    @ if p.plan_seed = 0 then [] else [ Printf.sprintf "seed=%d" p.plan_seed ])

let install plan =
  Atomic.set installed
    (Some
       {
         plan;
         checks = Atomic.make 0;
         tasks = Atomic.make 0;
         serve_jobs = Atomic.make 0;
         frames = Atomic.make 0;
         admits = Atomic.make 0;
         hits = Atomic.make 0;
       })

let install_from_env () =
  match Sys.getenv_opt "OWL_FAULT_PLAN" with
  | Some s when String.trim s <> "" ->
      install (parse s);
      true
  | _ -> false

let clear () = Atomic.set installed None
let active () = Atomic.get installed <> None

let seed () =
  match Atomic.get installed with
  | Some st -> st.plan.plan_seed
  | None -> 0

let fired () =
  match Atomic.get installed with Some st -> Atomic.get st.hits | None -> 0

let on_check () =
  match Atomic.get installed with
  | None -> None
  | Some st ->
      let i = 1 + Atomic.fetch_and_add st.checks 1 in
      if List.mem i st.plan.unknowns then begin
        Atomic.incr st.hits;
        Some Spurious_unknown
      end
      else if List.mem i st.plan.corrupts then begin
        Atomic.incr st.hits;
        Some Corrupt_model
      end
      else None

let on_task () =
  match Atomic.get installed with
  | None -> ()
  | Some st ->
      let i = 1 + Atomic.fetch_and_add st.tasks 1 in
      if List.mem i st.plan.crashes then begin
        Atomic.incr st.hits;
        raise (Injected_crash i)
      end

let on_serve_job () =
  match Atomic.get installed with
  | None -> ()
  | Some st ->
      let i = 1 + Atomic.fetch_and_add st.serve_jobs 1 in
      if List.mem i st.plan.worker_kills then begin
        Atomic.incr st.hits;
        raise (Injected_worker_kill i)
      end

let on_frame () =
  match Atomic.get installed with
  | None -> None
  | Some st ->
      (* the plan-free fast path above keeps production sends at one
         atomic load; with a plan installed every server-written frame
         advances the shared index, drops included *)
      let i = 1 + Atomic.fetch_and_add st.frames 1 in
      if List.mem i st.plan.conn_drops then begin
        Atomic.incr st.hits;
        Some Drop_conn
      end
      else if List.mem i st.plan.frame_delays then begin
        Atomic.incr st.hits;
        Some (Delay frame_delay_seconds)
      end
      else None

let on_admit () =
  match Atomic.get installed with
  | None -> false
  | Some st ->
      let i = 1 + Atomic.fetch_and_add st.admits 1 in
      if List.mem i st.plan.sheds then begin
        Atomic.incr st.hits;
        true
      end
      else false
