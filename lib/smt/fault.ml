(* Deterministic fault injection.  See the interface for the plan grammar.

   The installed plan lives in one [Atomic.t]; the hot path with no plan
   installed is a single atomic load returning [None]/unit.  Counters are
   atomics inside the installed state, so concurrent worker domains index
   checks and task attempts in a coherent global order (which faults land
   on which worker under [jobs > 1] depends on the schedule — recovery,
   not fault placement, is what must be deterministic). *)

type action = Spurious_unknown | Corrupt_model

exception Injected_crash of int
exception Parse_error of string

type plan = {
  unknowns : int list;  (* sorted, 1-based check indices *)
  corrupts : int list;
  crashes : int list;  (* sorted, 1-based task-attempt indices *)
  plan_seed : int;
}

type state = {
  plan : plan;
  checks : int Atomic.t;
  tasks : int Atomic.t;
  hits : int Atomic.t;
}

let installed : state option Atomic.t = Atomic.make None

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse s =
  let index directive v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | Some n -> parse_error "fault plan: %s@%d: index must be >= 1" directive n
    | None -> parse_error "fault plan: %s@%s: not an integer" directive v
  in
  let parts =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then parse_error "fault plan: empty plan";
  let p =
    List.fold_left
      (fun acc part ->
        match String.index_opt part '@' with
        | Some i -> (
            let d = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            let n = index d v in
            match d with
            | "unknown" -> { acc with unknowns = n :: acc.unknowns }
            | "corrupt" -> { acc with corrupts = n :: acc.corrupts }
            | "crash" -> { acc with crashes = n :: acc.crashes }
            | _ -> parse_error "fault plan: unknown directive %S" d)
        | None -> (
            match String.index_opt part '=' with
            | Some i when String.sub part 0 i = "seed" -> (
                let v = String.sub part (i + 1) (String.length part - i - 1) in
                match int_of_string_opt v with
                | Some n -> { acc with plan_seed = n }
                | None -> parse_error "fault plan: seed=%s: not an integer" v)
            | _ -> parse_error "fault plan: cannot parse element %S" part))
      { unknowns = []; corrupts = []; crashes = []; plan_seed = 0 }
      parts
  in
  {
    unknowns = List.sort_uniq compare p.unknowns;
    corrupts = List.sort_uniq compare p.corrupts;
    crashes = List.sort_uniq compare p.crashes;
    plan_seed = p.plan_seed;
  }

let to_string p =
  let tag d = List.map (fun n -> Printf.sprintf "%s@%d" d n) in
  String.concat ","
    (tag "unknown" p.unknowns @ tag "corrupt" p.corrupts
    @ tag "crash" p.crashes
    @ if p.plan_seed = 0 then [] else [ Printf.sprintf "seed=%d" p.plan_seed ])

let install plan =
  Atomic.set installed
    (Some
       {
         plan;
         checks = Atomic.make 0;
         tasks = Atomic.make 0;
         hits = Atomic.make 0;
       })

let install_from_env () =
  match Sys.getenv_opt "OWL_FAULT_PLAN" with
  | Some s when String.trim s <> "" ->
      install (parse s);
      true
  | _ -> false

let clear () = Atomic.set installed None
let active () = Atomic.get installed <> None

let seed () =
  match Atomic.get installed with
  | Some st -> st.plan.plan_seed
  | None -> 0

let fired () =
  match Atomic.get installed with Some st -> Atomic.get st.hits | None -> 0

let on_check () =
  match Atomic.get installed with
  | None -> None
  | Some st ->
      let i = 1 + Atomic.fetch_and_add st.checks 1 in
      if List.mem i st.plan.unknowns then begin
        Atomic.incr st.hits;
        Some Spurious_unknown
      end
      else if List.mem i st.plan.corrupts then begin
        Atomic.incr st.hits;
        Some Corrupt_model
      end
      else None

let on_task () =
  match Atomic.get installed with
  | None -> ()
  | Some st ->
      let i = 1 + Atomic.fetch_and_add st.tasks 1 in
      if List.mem i st.plan.crashes then begin
        Atomic.incr st.hits;
        raise (Injected_crash i)
      end
