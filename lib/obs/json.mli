(** Minimal JSON: hand-rolled emission plus a small strict parser.

    The emission half is the escaping/formatting code that used to live
    privately inside the bench harness's Report module; it is shared here
    so the benchmark report and the Chrome trace sink agree byte-for-byte
    on escaping.  Each combinator returns a syntactically complete JSON
    fragment, so documents compose by plain concatenation.

    The parser exists for tests and smoke checks: it validates that the
    documents this library emits (trace files, bench reports) really are
    JSON, and lets tests round-trip required fields without an external
    dependency. *)

val escape : string -> string
(** Backslash-escapes double quotes and backslashes and renders control
    bytes (< 0x20) as [\uXXXX].  Every other byte passes through
    unchanged, so UTF-8 encoded text stays intact. *)

val str : string -> string
(** [str s] is the JSON string literal for [s] (quotes plus {!escape}). *)

val int : int -> string

val bool : bool -> string

val num : float -> string
(** JSON number for a float.  Non-finite values render as [null] — JSON
    has no representation for them. *)

val obj : (string * string) list -> string
(** [obj fields] renders an object.  Keys are escaped; values must already
    be JSON fragments. *)

val arr : string list -> string
(** [arr items] renders an array of already-rendered fragments. *)

(** {1 Parsing} *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | String of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

val parse : string -> value
(** Strict parse of one complete JSON document (trailing garbage is an
    error).  [\uXXXX] escapes decode to UTF-8, surrogate pairs included.
    Raises {!Parse_error}. *)

val member : string -> value -> value option
(** Field lookup in an [Obj]; [None] on a missing field or a non-object. *)
