(** Owl_obs: domain-safe tracing and metrics for the synthesis runtime.

    Two independent facilities share this module:

    - {b Tracing}: spans ({!span}) and instant events ({!instant}) carrying
      a timestamp, the recording domain's id, and structured key→value
      arguments.  Events land in a per-domain in-memory ring buffer (no
      locks on the hot path; buffer registration on a domain's first event
      is the only synchronized step) and are merged post-hoc into one
      deterministic stream ({!events}), exportable as Chrome trace-event
      JSON ({!write_chrome_trace}) that [chrome://tracing] and Perfetto
      open directly.

    - {b Metrics}: named {!counter}s and log-scaled {!histogram}s (powers
      of two), summarized as a table ({!summary_table}) or structured
      records ({!metrics}) for embedding in reports.

    Both are off by default.  The disabled path — the "null sink" — is one
    atomic load and a branch per call site: [span] runs its thunk directly,
    [instant]/[observe]/[incr] return immediately.  Instrumentation is
    therefore safe to leave in the hottest solver paths.

    {b Domain-safety.}  Recording is lock-free per domain; enabling,
    disabling, and draining are meant for the orchestrating domain.
    Timestamps come from [Unix.gettimeofday]; per-domain event order is
    preserved by construction (the merge never reorders one domain's
    events even if the clock steps), and cross-domain order is by
    timestamp with the domain id as the deterministic tie-break. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool  (** A structured span/event argument value. *)

(** {1 Tracing} *)

val enable : ?capacity:int -> unit -> unit
(** Starts a fresh recording epoch: clears any previous recording and
    begins collecting events into per-domain buffers of [capacity] events
    each (default 2{^18}).  When a domain's buffer fills, further events
    from that domain are dropped and counted ({!dropped}) — the kept
    prefix stays well-nested.  Raises [Invalid_argument] if
    [capacity < 1]. *)

val disable : unit -> unit
(** Stops recording and discards the recording state.  Call {!events} or
    {!write_chrome_trace} first to keep the data. *)

val enabled : unit -> bool

val span :
  ?args:(string * arg) list ->
  ?result:('a -> (string * arg) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span ~args ~result name f] runs [f ()] inside a named span: a [Begin]
    event with [args] before, an [End] event after.  [result] computes
    arguments for the [End] event from [f]'s value — the hook for delta
    statistics that only exist once the work is done; it is not called
    when tracing is disabled (unless a tap is active).  If [f] raises, the
    [End] event carries the exception (printed) as its argument and the
    exception is re-raised, so spans always nest properly per domain. *)

val instant : ?args:(string * arg) list -> string -> unit
(** Records a point event. *)

type phase = Begin | End | Instant

(** {2 Taps: per-domain event streaming}

    A tap observes every {!span} Begin/End and {!instant} emitted {e on its
    own domain} while installed, independently of the global recording
    epoch — the hook a long-lived server uses to stream one request's
    progress events without enabling (or resetting) whole-process tracing.
    Taps compose with tracing: when both are active an event goes to the
    ring buffer and to the tap. *)

val with_tap :
  (phase -> string -> (string * arg) list -> unit) -> (unit -> 'a) -> 'a
(** [with_tap f thunk] runs [thunk ()] with [f] installed as this domain's
    tap (replacing, and afterwards restoring, any previous one — taps on a
    domain nest, they do not stack).  [f] receives the phase, span/event
    name, and arguments of each event; with a tap active, a span's
    [result] hook runs even when tracing is disabled.  Exceptions raised
    by [f] are swallowed — a broken observer must not fail the observed
    work. *)

val tapping : unit -> bool
(** Whether the calling domain currently has a tap installed. *)

val recording : unit -> bool
(** [enabled () || tapping ()] — the guard instrumentation sites use
    around argument construction for conditional {!instant}s. *)

type event = {
  ph : phase;
  name : string;
  ts : float;  (** seconds since {!enable} *)
  dom : int;  (** recording domain id *)
  seq : int;  (** per-domain sequence number *)
  args : (string * arg) list;
}

val events : unit -> event list
(** The merged event stream of the current epoch: a deterministic k-way
    merge of the per-domain buffers ordered by [(ts, dom)] that preserves
    each domain's own order exactly.  Empty when disabled. *)

val dropped : unit -> int
(** Events dropped across all domains because a buffer filled. *)

val chrome_trace_string : unit -> string
(** The current epoch as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]): spans as ["B"]/["E"] pairs, instants as
    ["i"] with thread scope, one [tid] per domain, timestamps in
    microseconds, plus process/thread-name metadata.  Open the result in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val write_chrome_trace : out_channel -> unit

(** {1 Metrics} *)

val enable_metrics : unit -> unit
val disable_metrics : unit -> unit
val metrics_enabled : unit -> bool

type counter
type histogram

val counter : string -> counter
(** Registers (or returns the existing) named counter.  Call it once at
    module initialization and keep the handle: the handle path is
    lock-free, the registry lookup is not. *)

val histogram : string -> histogram
(** Registers (or returns the existing) named histogram.  Buckets are
    powers of two: bucket 0 holds values [<= 0], bucket [i >= 1] holds
    values in [[2^(i-1), 2^i - 1]]. *)

val incr : ?by:int -> counter -> unit
(** Adds to a counter; a no-op (one branch) when metrics are disabled. *)

val observe : histogram -> int -> unit
(** Records a value; a no-op (one branch) when metrics are disabled. *)

type metric = {
  metric_name : string;
  metric_kind : [ `Counter | `Histogram ];
  count : int;  (** counter value, or number of observations *)
  sum : int;
  min_value : int;
  max_value : int;
  p50 : int;  (** bucket upper bounds — log-scale approximations *)
  p90 : int;
  p99 : int;
}

val metrics : unit -> metric list
(** Snapshot of every registered metric with at least one recording,
    sorted by name.  Counter records carry the value in [count] and [sum];
    the distribution fields are zero. *)

val summary_table : unit -> string
(** Human-readable rendering of {!metrics}. *)

val reset_metrics : unit -> unit
(** Zeroes every registered metric (registrations persist). *)
