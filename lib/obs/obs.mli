(** Owl_obs: domain-safe tracing and metrics for the synthesis runtime.

    Three independent facilities share this module:

    - {b Tracing}: spans ({!span}) and instant events ({!instant}) carrying
      a timestamp, the recording domain's id, and structured key→value
      arguments.  Events land in a per-domain in-memory ring buffer (no
      locks on the hot path; buffer registration on a domain's first event
      is the only synchronized step) and are merged post-hoc into one
      deterministic stream ({!events}), exportable as Chrome trace-event
      JSON ({!write_chrome_trace}) that [chrome://tracing] and Perfetto
      open directly.

    - {b Flight recorder}: a second, always-on-capable sink with
      wraparound semantics — each domain keeps a bounded ring of its most
      recent events, overwriting the oldest — so a long-lived server can
      dump "what just happened" on demand or on failure without paying for
      (or truncating) a whole-process trace.

    - {b Metrics}: named {!counter}s, {!gauge}s, log-scaled {!histogram}s
      (powers of two), and sliding-window histograms ({!window}),
      summarized as a table ({!summary_table}) or structured records
      ({!metrics}) for embedding in reports.

    All are off by default.  The disabled path — the "null sink" — is one
    atomic load and a branch per call site: [span] runs its thunk directly,
    [instant]/[observe]/[incr] return immediately.  Instrumentation is
    therefore safe to leave in the hottest solver paths.

    {b Domain-safety.}  Recording is lock-free per domain; enabling,
    disabling, and draining are meant for the orchestrating domain.
    Timestamps come from [Unix.gettimeofday]; per-domain event order is
    preserved by construction (the merge never reorders one domain's
    events even if the clock steps), and cross-domain order is by
    timestamp with the domain id as the deterministic tie-break. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool  (** A structured span/event argument value. *)

(** {1 Tracing} *)

val enable : ?capacity:int -> unit -> unit
(** Starts a fresh recording epoch: clears any previous recording and
    begins collecting events into per-domain buffers of [capacity] events
    each (default 2{^18}).  When a domain's buffer fills, further events
    from that domain are dropped and counted ({!dropped}) — the kept
    prefix stays well-nested.  Raises [Invalid_argument] if
    [capacity < 1]. *)

val disable : unit -> unit
(** Stops recording and discards the recording state.  Call {!events} or
    {!write_chrome_trace} first to keep the data. *)

val enabled : unit -> bool

val span :
  ?args:(string * arg) list ->
  ?result:('a -> (string * arg) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [span ~args ~result name f] runs [f ()] inside a named span: a [Begin]
    event with [args] before, an [End] event after.  [result] computes
    arguments for the [End] event from [f]'s value — the hook for delta
    statistics that only exist once the work is done; it is not called
    when tracing is disabled (unless a tap or the flight recorder is
    active).  If [f] raises, the [End] event carries the exception
    (printed) as its argument and the exception is re-raised, so spans
    always nest properly per domain. *)

val instant : ?args:(string * arg) list -> string -> unit
(** Records a point event. *)

(** {2 Trace context: request-scoped identity}

    A per-domain slot naming the request the domain is currently working
    for.  While set, every event the domain records — in the tracing
    epoch and in the flight recorder — carries the id in its
    {!event.trace} field (and as a ["trace"] argument in Chrome exports),
    so one request's span tree can be filtered out of a merged stream.
    The serve daemon mints an id at admission, stores it with the queued
    job, and installs it on the worker domain for the duration of the
    job. *)

val set_trace_context : string option -> unit
(** Sets (or clears, with [None]) the calling domain's trace context. *)

val trace_context : unit -> string option
(** The calling domain's current trace context. *)

val with_trace_context : string -> (unit -> 'a) -> 'a
(** [with_trace_context id f] runs [f ()] with the context set to [id],
    restoring the previous context afterwards (also on exceptions). *)

(** {2 Flight recorder}

    A bounded per-domain ring of the most recent spans/instants with
    overwrite-oldest semantics, independent of the tracing epoch.  Meant
    to stay enabled for a server's whole life: the ring is the black box
    that a [dump_trace] request, a lost worker, or entry into degraded
    mode snapshots. *)

val enable_flight : ?capacity:int -> unit -> unit
(** Starts (or restarts, clearing) the flight recorder with per-domain
    rings of [capacity] events (default 4096).  Raises [Invalid_argument]
    if [capacity < 1]. *)

val disable_flight : unit -> unit
val flight_enabled : unit -> bool

val flight_trace_string : ?trace:string -> unit -> string
(** The flight recorder's current contents as a Chrome trace-event JSON
    document (same format as {!chrome_trace_string}).  With [?trace],
    only events recorded under that trace context are kept — a single
    request's span tree.  Concurrent recording may tear the window's
    edges but every exported event is whole. *)

type phase = Begin | End | Instant

(** {2 Taps: per-domain event streaming}

    A tap observes every {!span} Begin/End and {!instant} emitted {e on its
    own domain} while installed, independently of the global recording
    epoch — the hook a long-lived server uses to stream one request's
    progress events without enabling (or resetting) whole-process tracing.
    Taps compose with tracing: when both are active an event goes to the
    ring buffer and to the tap. *)

val with_tap :
  (phase -> string -> (string * arg) list -> unit) -> (unit -> 'a) -> 'a
(** [with_tap f thunk] runs [thunk ()] with [f] installed as this domain's
    tap (replacing, and afterwards restoring, any previous one — taps on a
    domain nest, they do not stack).  [f] receives the phase, span/event
    name, and arguments of each event; with a tap active, a span's
    [result] hook runs even when tracing is disabled.  Exceptions raised
    by [f] are swallowed — a broken observer must not fail the observed
    work. *)

val tapping : unit -> bool
(** Whether the calling domain currently has a tap installed. *)

val recording : unit -> bool
(** [enabled () || flight_enabled () || tapping ()] — the guard
    instrumentation sites use around argument construction for
    conditional {!instant}s. *)

type event = {
  ph : phase;
  name : string;
  ts : float;  (** seconds since {!enable} (or {!enable_flight}) *)
  dom : int;  (** recording domain id *)
  seq : int;  (** per-domain sequence number *)
  args : (string * arg) list;
  trace : string option;  (** the trace context at recording time *)
}

val events : unit -> event list
(** The merged event stream of the current epoch: a deterministic k-way
    merge of the per-domain buffers ordered by [(ts, dom)] that preserves
    each domain's own order exactly.  Empty when disabled. *)

val flight_events : ?trace:string -> unit -> event list
(** The flight recorder's surviving events, oldest first (sorted by
    [(ts, dom)]), optionally filtered to one trace context. *)

val dropped : unit -> int
(** Events dropped across all domains because a buffer filled. *)

val chrome_trace_string : unit -> string
(** The current epoch as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}]): spans as ["B"]/["E"] pairs, instants as
    ["i"] with thread scope, one [tid] per domain, timestamps in
    microseconds, plus process/thread-name metadata.  Open the result in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val write_chrome_trace : out_channel -> unit

(** {1 Metrics} *)

val enable_metrics : unit -> unit
val disable_metrics : unit -> unit
val metrics_enabled : unit -> bool

type counter
type gauge
type histogram
type window

val counter : string -> counter
(** Registers (or returns the existing) named counter.  Call it once at
    module initialization and keep the handle: the handle path is
    lock-free, the registry lookup is not. *)

val gauge : string -> gauge
(** Registers (or returns the existing) named gauge — a point-in-time
    level (queue depth, live workers) rather than a monotone count.  A
    gauge only appears in {!metrics} once it has been set. *)

val histogram : string -> histogram
(** Registers (or returns the existing) named histogram.  Buckets are
    powers of two: bucket 0 holds values [<= 0], bucket [i >= 1] holds
    values in [[2^(i-1), 2^i - 1]]. *)

val window : ?seconds:int -> string -> window
(** Registers (or returns the existing) named sliding-window histogram: a
    ring of [seconds] (default 60) per-second sub-histograms.  Snapshots
    aggregate only the slots whose second is still inside the window, so
    the reported distribution covers roughly the last [seconds] seconds
    rather than the process lifetime. *)

val incr : ?by:int -> counter -> unit
(** Adds to a counter; a no-op (one branch) when metrics are disabled. *)

val set_gauge : gauge -> int -> unit
(** Sets a gauge's level; a no-op when metrics are disabled. *)

val gauge_value : gauge -> int
(** The gauge's last set level (0 if never set). *)

val observe : histogram -> int -> unit
(** Records a value; a no-op (one branch) when metrics are disabled. *)

val observe_window : window -> int -> unit
(** Records a value into the window slot for the current second; a no-op
    when metrics are disabled.  Slot recycling races blur at most one
    second of attribution. *)

type metric = {
  metric_name : string;
  metric_kind : [ `Counter | `Gauge | `Histogram | `Window ];
  count : int;  (** counter/gauge value, or number of observations *)
  sum : int;
  min_value : int;
  max_value : int;
  p50 : int;
      (** quantiles are linearly interpolated within the landing log2
          bucket and clamped to the observed min/max (histograms) *)
  p90 : int;
  p99 : int;
}

val metrics : unit -> metric list
(** Snapshot of every registered metric with at least one recording,
    sorted by name.  Counter and gauge records carry the value in [count]
    and [sum]; the distribution fields are zero.  Window records cover
    only the last window of seconds. *)

val summary_table : unit -> string
(** Human-readable rendering of {!metrics}. *)

val reset_metrics : unit -> unit
(** Zeroes every registered metric (registrations persist). *)
