(* Hand-rolled JSON emission (shared by the bench report and the Chrome
   trace sink) and a strict recursive-descent parser used by tests to
   validate what the emitters produce. *)

(* {1 Emission} *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let int = string_of_int
let bool = string_of_bool

let num f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.12g" f

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"

(* {1 Parsing} *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | String of string
  | Arr of value list
  | Obj of (string * value) list

exception Parse_error of string

let utf8_add b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf
      (fun m -> raise (Parse_error (Printf.sprintf "byte %d: %s" !pos m)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error "expected %C, found %C" c c'
    | None -> error "expected %C, found end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> error "bad \\u escape %S" h
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then error "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            let cp = hex4 () in
            let cp =
              if
                cp >= 0xD800 && cp <= 0xDBFF
                && !pos + 2 <= n
                && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo < 0xDC00 || lo > 0xDFFF then
                  error "invalid low surrogate %04x" lo;
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else cp
            in
            utf8_add b cp
        | c -> error "invalid escape \\%c" c);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ ->
        let start = !pos in
        (match peek () with Some '-' -> advance () | _ -> ());
        let is_num_char c =
          (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+'
          || c = '-'
        in
        while
          match peek () with Some c when is_num_char c -> true | _ -> false
        do
          advance ()
        done;
        let sub = String.sub s start (!pos - start) in
        (match float_of_string_opt sub with
        | Some f when sub <> "" -> Num f
        | _ -> error "invalid number %S" sub)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
