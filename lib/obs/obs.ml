(* Tracing and metrics core.  See the interface for the contract.

   Layout mirrors {!Fault}: the whole recording state hangs off one
   [Atomic.t], so the disabled path of every instrumentation point is a
   single atomic load and a branch — the "null sink".  When enabled, each
   domain records into its own fixed-capacity buffer (reached through
   domain-local storage, so the hot path takes no locks); buffers register
   themselves with the epoch on a domain's first event, which is the only
   mutex in the system and runs once per domain per epoch. *)

type arg = Int of int | Float of float | Str of string | Bool of bool
type phase = Begin | End | Instant

type event = {
  ph : phase;
  name : string;
  ts : float;
  dom : int;
  seq : int;
  args : (string * arg) list;
}

type ring = {
  r_epoch : int;
  r_dom : int;
  r_events : event array;
  mutable r_len : int;
  mutable r_dropped : int;
}

type state = {
  epoch : int;
  capacity : int;
  t0 : float;
  mutable rings : ring list;  (* guarded by [reg_mutex]; newest first *)
  reg_mutex : Mutex.t;
}

let current : state option Atomic.t = Atomic.make None
let epoch_counter = Atomic.make 0

let dummy_event =
  { ph = Instant; name = ""; ts = 0.0; dom = 0; seq = 0; args = [] }

(* Each domain caches its ring here; the epoch tag invalidates rings from
   a previous enable so recordings never bleed across epochs. *)
let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let default_capacity = 1 lsl 18

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Obs.enable: capacity < 1";
  Atomic.set current
    (Some
       {
         epoch = 1 + Atomic.fetch_and_add epoch_counter 1;
         capacity;
         t0 = Unix.gettimeofday ();
         rings = [];
         reg_mutex = Mutex.create ();
       })

let disable () = Atomic.set current None
let enabled () = Atomic.get current <> None

(* {1 Taps}

   A tap is a per-domain callback that observes every span Begin/End and
   instant emitted on its own domain while installed — independent of the
   global recording epoch, so a server can stream one request's progress
   without enabling (or resetting) whole-process tracing.  The counter
   keeps the no-tap path at one extra atomic load and a branch; the DLS
   slot is only consulted when at least one tap exists somewhere. *)

let tap_key : (phase -> string -> (string * arg) list -> unit) option ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let taps_active = Atomic.make 0

let tapping () =
  Atomic.get taps_active > 0 && !(Domain.DLS.get tap_key) <> None

let feed_tap ph name args =
  if Atomic.get taps_active > 0 then
    match !(Domain.DLS.get tap_key) with
    | None -> ()
    | Some f -> ( try f ph name args with _ -> ())

let with_tap f thunk =
  let slot = Domain.DLS.get tap_key in
  let saved = !slot in
  slot := Some f;
  Atomic.incr taps_active;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr taps_active;
      slot := saved)
    thunk

let recording () = enabled () || tapping ()

let ring_for st =
  let slot = Domain.DLS.get ring_key in
  match !slot with
  | Some r when r.r_epoch = st.epoch -> r
  | _ ->
      let r =
        {
          r_epoch = st.epoch;
          r_dom = (Domain.self () :> int);
          r_events = Array.make st.capacity dummy_event;
          r_len = 0;
          r_dropped = 0;
        }
      in
      Mutex.lock st.reg_mutex;
      st.rings <- r :: st.rings;
      Mutex.unlock st.reg_mutex;
      slot := Some r;
      r

let emit st ph name args =
  let r = ring_for st in
  if r.r_len < Array.length r.r_events then begin
    r.r_events.(r.r_len) <-
      {
        ph;
        name;
        ts = Unix.gettimeofday () -. st.t0;
        dom = r.r_dom;
        seq = r.r_len;
        args;
      };
    r.r_len <- r.r_len + 1
  end
  else r.r_dropped <- r.r_dropped + 1

let span ?(args = []) ?result name f =
  let st = Atomic.get current in
  let tapped = tapping () in
  match st with
  | None when not tapped -> f ()
  | _ -> (
      (match st with Some s -> emit s Begin name args | None -> ());
      if tapped then feed_tap Begin name args;
      match f () with
      | v ->
          let rargs = match result with None -> [] | Some g -> g v in
          (match st with Some s -> emit s End name rargs | None -> ());
          if tapped then feed_tap End name rargs;
          v
      | exception e ->
          let eargs = [ ("exception", Str (Printexc.to_string e)) ] in
          (match st with Some s -> emit s End name eargs | None -> ());
          if tapped then feed_tap End name eargs;
          raise e)

let instant ?(args = []) name =
  (match Atomic.get current with
  | None -> ()
  | Some st -> emit st Instant name args);
  feed_tap Instant name args

let snapshot_rings st =
  Mutex.lock st.reg_mutex;
  let rings = st.rings in
  Mutex.unlock st.reg_mutex;
  (* snapshot each ring's length so concurrent recording after this point
     is invisible; sort by domain id for a canonical ring order *)
  List.sort (fun (a, _) (b, _) -> compare a.r_dom b.r_dom)
    (List.map (fun r -> (r, r.r_len)) rings)

(* K-way merge ordered by (ts, dom).  Heads are consumed in per-ring
   order, so one domain's events are never reordered even if its clock
   stepped backward; ties across domains break by domain id, making the
   merged stream a pure function of the buffers. *)
let events () =
  match Atomic.get current with
  | None -> []
  | Some st ->
      let rings = Array.of_list (snapshot_rings st) in
      let idx = Array.map (fun _ -> 0) rings in
      let out = ref [] in
      let continue = ref true in
      while !continue do
        let best = ref (-1) in
        Array.iteri
          (fun i (r, len) ->
            if idx.(i) < len then
              match !best with
              | -1 -> best := i
              | b ->
                  let rb, _ = rings.(b) in
                  let eb = rb.r_events.(idx.(b))
                  and ei = r.r_events.(idx.(i)) in
                  if ei.ts < eb.ts || (ei.ts = eb.ts && ei.dom < eb.dom) then
                    best := i)
          rings;
        if !best < 0 then continue := false
        else begin
          let r, _ = rings.(!best) in
          out := r.r_events.(idx.(!best)) :: !out;
          idx.(!best) <- idx.(!best) + 1
        end
      done;
      List.rev !out

let dropped () =
  match Atomic.get current with
  | None -> 0
  | Some st ->
      List.fold_left (fun acc (r, _) -> acc + r.r_dropped) 0 (snapshot_rings st)

(* {1 Chrome trace-event export}

   The JSON Object Format: {"traceEvents": [...]}.  Spans become "B"/"E"
   pairs, instants "i" with thread scope; one tid per domain; timestamps
   in microseconds.  Metadata events name the process and each domain so
   Perfetto's track labels are readable. *)

let arg_json = function
  | Int i -> Json.int i
  | Float f -> Json.num f
  | Str s -> Json.str s
  | Bool b -> Json.bool b

let chrome_event ev =
  let fields =
    [
      ("name", Json.str ev.name);
      ("cat", Json.str "owl");
      ( "ph",
        Json.str (match ev.ph with Begin -> "B" | End -> "E" | Instant -> "i")
      );
      ("ts", Printf.sprintf "%.3f" (ev.ts *. 1e6));
      ("pid", "1");
      ("tid", Json.int ev.dom);
    ]
  in
  let fields =
    match ev.ph with
    | Instant -> fields @ [ ("s", Json.str "t") ]
    | Begin | End -> fields
  in
  let fields =
    match ev.args with
    | [] -> fields
    | args ->
        fields
        @ [ ("args", Json.obj (List.map (fun (k, v) -> (k, arg_json v)) args))
          ]
  in
  Json.obj fields

let chrome_trace_string () =
  let evs = events () in
  let doms =
    List.sort_uniq compare (List.map (fun ev -> ev.dom) evs)
  in
  let meta =
    Json.obj
      [
        ("name", Json.str "process_name");
        ("ph", Json.str "M");
        ("pid", "1");
        ("args", Json.obj [ ("name", Json.str "owl") ]);
      ]
    :: List.map
         (fun d ->
           Json.obj
             [
               ("name", Json.str "thread_name");
               ("ph", Json.str "M");
               ("pid", "1");
               ("tid", Json.int d);
               ( "args",
                 Json.obj
                   [ ("name", Json.str (Printf.sprintf "domain %d" d)) ] );
             ])
         doms
  in
  let n_dropped = dropped () in
  let tail =
    if n_dropped = 0 then []
    else
      [
        Json.obj
          [
            ("name", Json.str "obs.dropped_events");
            ("cat", Json.str "owl");
            ("ph", Json.str "i");
            ("ts", "0");
            ("pid", "1");
            ("tid", "0");
            ("s", Json.str "g");
            ("args", Json.obj [ ("count", Json.int n_dropped) ]);
          ];
      ]
  in
  Json.obj
    [
      ( "traceEvents",
        Json.arr (meta @ List.map chrome_event evs @ tail) );
      ("displayTimeUnit", Json.str "ms");
    ]

let write_chrome_trace oc = output_string oc (chrome_trace_string ())

(* {1 Metrics}

   A flat registry of named counters and log₂-bucketed histograms.  The
   registry is mutex-guarded (metric handles are created once, at module
   initialization of the instrumented libraries); recording through a
   handle is atomic operations only.  The enabled flag makes the disabled
   path one load and a branch, like tracing. *)

let metrics_on = Atomic.make false
let enable_metrics () = Atomic.set metrics_on true
let disable_metrics () = Atomic.set metrics_on false
let metrics_enabled () = Atomic.get metrics_on

type counter = { c_name : string; c_value : int Atomic.t }

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_min : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array;  (* 64: bucket 0 = "<= 0", i = 2^(i-1).. *)
}

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c
  in
  Mutex.unlock registry_mutex;
  c

let histogram name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_min = Atomic.make max_int;
            h_max = Atomic.make min_int;
            h_buckets = Array.init 64 (fun _ -> Atomic.make 0);
          }
        in
        Hashtbl.add histograms name h;
        h
  in
  Mutex.unlock registry_mutex;
  h

let incr ?(by = 1) c =
  if Atomic.get metrics_on then ignore (Atomic.fetch_and_add c.c_value by)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min 63 (bits 0 v)
  end

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let observe h v =
  if Atomic.get metrics_on then begin
    Atomic.incr h.h_count;
    ignore (Atomic.fetch_and_add h.h_sum v);
    atomic_min h.h_min v;
    atomic_max h.h_max v;
    Atomic.incr h.h_buckets.(bucket_of v)
  end

type metric = {
  metric_name : string;
  metric_kind : [ `Counter | `Histogram ];
  count : int;
  sum : int;
  min_value : int;
  max_value : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

(* log-scale quantile: the upper bound of the first bucket whose
   cumulative count reaches the rank *)
let quantile buckets total q =
  if total = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let acc = ref 0 and result = ref 0 and found = ref false in
    Array.iteri
      (fun i b ->
        if not !found then begin
          acc := !acc + b;
          if !acc >= rank then begin
            result := (if i = 0 then 0 else (1 lsl i) - 1);
            found := true
          end
        end)
      buckets;
    !result
  end

let metrics () =
  Mutex.lock registry_mutex;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
  Mutex.unlock registry_mutex;
  let counter_metrics =
    List.filter_map
      (fun c ->
        let v = Atomic.get c.c_value in
        if v = 0 then None
        else
          Some
            {
              metric_name = c.c_name;
              metric_kind = `Counter;
              count = v;
              sum = v;
              min_value = 0;
              max_value = 0;
              p50 = 0;
              p90 = 0;
              p99 = 0;
            })
      cs
  in
  let histogram_metrics =
    List.filter_map
      (fun h ->
        let count = Atomic.get h.h_count in
        if count = 0 then None
        else begin
          let buckets = Array.map Atomic.get h.h_buckets in
          Some
            {
              metric_name = h.h_name;
              metric_kind = `Histogram;
              count;
              sum = Atomic.get h.h_sum;
              min_value = Atomic.get h.h_min;
              max_value = Atomic.get h.h_max;
              p50 = quantile buckets count 0.50;
              p90 = quantile buckets count 0.90;
              p99 = quantile buckets count 0.99;
            }
        end)
      hs
  in
  List.sort
    (fun a b -> compare a.metric_name b.metric_name)
    (counter_metrics @ histogram_metrics)

let summary_table () =
  let ms = metrics () in
  let b = Buffer.create 1024 in
  let hists = List.filter (fun m -> m.metric_kind = `Histogram) ms in
  let counts = List.filter (fun m -> m.metric_kind = `Counter) ms in
  if counts <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun m -> Buffer.add_string b (Printf.sprintf "  %-36s %12d\n" m.metric_name m.count))
      counts
  end;
  if hists <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "histograms (p50/p90/p99 are log-scale upper bounds):\n");
    Buffer.add_string b
      (Printf.sprintf "  %-36s %8s %12s %10s %7s %7s %7s %7s %9s\n" "name"
         "count" "sum" "mean" "min" "p50" "p90" "p99" "max");
    List.iter
      (fun m ->
        Buffer.add_string b
          (Printf.sprintf "  %-36s %8d %12d %10.1f %7d %7d %7d %7d %9d\n"
             m.metric_name m.count m.sum
             (float_of_int m.sum /. float_of_int (max 1 m.count))
             m.min_value m.p50 m.p90 m.p99 m.max_value))
      hists
  end;
  if ms = [] then Buffer.add_string b "no metrics recorded\n";
  Buffer.contents b

let reset_metrics () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0;
      Atomic.set h.h_min max_int;
      Atomic.set h.h_max min_int;
      Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    histograms;
  Mutex.unlock registry_mutex
