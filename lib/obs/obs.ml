(* Tracing and metrics core.  See the interface for the contract.

   Layout mirrors {!Fault}: the whole recording state hangs off one
   [Atomic.t], so the disabled path of every instrumentation point is a
   single atomic load and a branch — the "null sink".  When enabled, each
   domain records into its own fixed-capacity buffer (reached through
   domain-local storage, so the hot path takes no locks); buffers register
   themselves with the epoch on a domain's first event, which is the only
   mutex in the system and runs once per domain per epoch.

   The flight recorder is a second, independent sink with the same
   discipline but wraparound semantics: instead of dropping the newest
   events when full, each domain's ring overwrites the oldest, so a dump
   always shows the most recent window of activity. *)

type arg = Int of int | Float of float | Str of string | Bool of bool
type phase = Begin | End | Instant

type event = {
  ph : phase;
  name : string;
  ts : float;
  dom : int;
  seq : int;
  args : (string * arg) list;
  trace : string option;
}

type ring = {
  r_epoch : int;
  r_dom : int;
  r_events : event array;
  mutable r_len : int;
  mutable r_dropped : int;
}

type state = {
  epoch : int;
  capacity : int;
  t0 : float;
  mutable rings : ring list;  (* guarded by [reg_mutex]; newest first *)
  reg_mutex : Mutex.t;
}

let current : state option Atomic.t = Atomic.make None
let epoch_counter = Atomic.make 0

let dummy_event =
  { ph = Instant; name = ""; ts = 0.0; dom = 0; seq = 0; args = []; trace = None }

(* Each domain caches its ring here; the epoch tag invalidates rings from
   a previous enable so recordings never bleed across epochs. *)
let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let default_capacity = 1 lsl 18

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Obs.enable: capacity < 1";
  Atomic.set current
    (Some
       {
         epoch = 1 + Atomic.fetch_and_add epoch_counter 1;
         capacity;
         t0 = Unix.gettimeofday ();
         rings = [];
         reg_mutex = Mutex.create ();
       })

let disable () = Atomic.set current None
let enabled () = Atomic.get current <> None

(* {1 Trace context}

   A per-domain request identity.  The serve daemon installs the admitted
   request's trace id on the worker domain before running its job; every
   event recorded on that domain while the context is set — pool spans,
   CEGIS iterations, SAT queries — carries the id, so one request's span
   tree can be filtered out of a merged stream.  Reading the slot costs a
   DLS lookup only on paths that already record an event. *)

let trace_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_trace_context t = Domain.DLS.get trace_key := t
let trace_context () = !(Domain.DLS.get trace_key)

let with_trace_context id thunk =
  let slot = Domain.DLS.get trace_key in
  let saved = !slot in
  slot := Some id;
  Fun.protect ~finally:(fun () -> slot := saved) thunk

(* {1 Flight recorder}

   Always-on black box: a bounded per-domain ring of the most recent
   events, overwriting the oldest.  Independent of the tracing epoch so a
   server can keep it running for its whole life while one-shot traces
   come and go. *)

type fring = {
  f_epoch : int;
  f_dom : int;
  f_events : event array;
  mutable f_next : int;  (* next write slot *)
  mutable f_total : int;  (* lifetime writes; also the seq source *)
}

type fstate = {
  fl_epoch : int;
  fl_capacity : int;
  fl_t0 : float;
  mutable fl_rings : fring list;  (* guarded by [fl_mutex] *)
  fl_mutex : Mutex.t;
}

let flight : fstate option Atomic.t = Atomic.make None
let default_flight_capacity = 4096

let enable_flight ?(capacity = default_flight_capacity) () =
  if capacity < 1 then invalid_arg "Obs.enable_flight: capacity < 1";
  Atomic.set flight
    (Some
       {
         fl_epoch = 1 + Atomic.fetch_and_add epoch_counter 1;
         fl_capacity = capacity;
         fl_t0 = Unix.gettimeofday ();
         fl_rings = [];
         fl_mutex = Mutex.create ();
       })

let disable_flight () = Atomic.set flight None
let flight_enabled () = Atomic.get flight <> None

let fring_key : fring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fring_for fs =
  let slot = Domain.DLS.get fring_key in
  match !slot with
  | Some r when r.f_epoch = fs.fl_epoch -> r
  | _ ->
      let r =
        {
          f_epoch = fs.fl_epoch;
          f_dom = (Domain.self () :> int);
          f_events = Array.make fs.fl_capacity dummy_event;
          f_next = 0;
          f_total = 0;
        }
      in
      Mutex.lock fs.fl_mutex;
      fs.fl_rings <- r :: fs.fl_rings;
      Mutex.unlock fs.fl_mutex;
      slot := Some r;
      r

let femit fs ph name args trace =
  let r = fring_for fs in
  r.f_events.(r.f_next) <-
    {
      ph;
      name;
      ts = Unix.gettimeofday () -. fs.fl_t0;
      dom = r.f_dom;
      seq = r.f_total;
      args;
      trace;
    };
  r.f_next <- (r.f_next + 1) mod Array.length r.f_events;
  r.f_total <- r.f_total + 1

(* {1 Taps}

   A tap is a per-domain callback that observes every span Begin/End and
   instant emitted on its own domain while installed — independent of the
   global recording epoch, so a server can stream one request's progress
   without enabling (or resetting) whole-process tracing.  The counter
   keeps the no-tap path at one extra atomic load and a branch; the DLS
   slot is only consulted when at least one tap exists somewhere. *)

let tap_key : (phase -> string -> (string * arg) list -> unit) option ref
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let taps_active = Atomic.make 0

let tapping () =
  Atomic.get taps_active > 0 && !(Domain.DLS.get tap_key) <> None

let feed_tap ph name args =
  if Atomic.get taps_active > 0 then
    match !(Domain.DLS.get tap_key) with
    | None -> ()
    | Some f -> ( try f ph name args with _ -> ())

let with_tap f thunk =
  let slot = Domain.DLS.get tap_key in
  let saved = !slot in
  slot := Some f;
  Atomic.incr taps_active;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr taps_active;
      slot := saved)
    thunk

let recording () = enabled () || flight_enabled () || tapping ()

let ring_for st =
  let slot = Domain.DLS.get ring_key in
  match !slot with
  | Some r when r.r_epoch = st.epoch -> r
  | _ ->
      let r =
        {
          r_epoch = st.epoch;
          r_dom = (Domain.self () :> int);
          r_events = Array.make st.capacity dummy_event;
          r_len = 0;
          r_dropped = 0;
        }
      in
      Mutex.lock st.reg_mutex;
      st.rings <- r :: st.rings;
      Mutex.unlock st.reg_mutex;
      slot := Some r;
      r

let emit st ph name args trace =
  let r = ring_for st in
  if r.r_len < Array.length r.r_events then begin
    r.r_events.(r.r_len) <-
      {
        ph;
        name;
        ts = Unix.gettimeofday () -. st.t0;
        dom = r.r_dom;
        seq = r.r_len;
        args;
        trace;
      };
    r.r_len <- r.r_len + 1
  end
  else r.r_dropped <- r.r_dropped + 1

(* One fan-out point for every sink; the trace context is read only when
   at least one buffer sink is live (taps receive args as given — the
   trace id travels with the server's own progress protocol there). *)
let record st fs tapped ph name args =
  let trace =
    match (st, fs) with None, None -> None | _ -> trace_context ()
  in
  (match st with Some s -> emit s ph name args trace | None -> ());
  (match fs with Some f -> femit f ph name args trace | None -> ());
  if tapped then feed_tap ph name args

let span ?(args = []) ?result name f =
  let st = Atomic.get current in
  let fs = Atomic.get flight in
  let tapped = tapping () in
  match (st, fs) with
  | None, None when not tapped -> f ()
  | _ -> (
      record st fs tapped Begin name args;
      match f () with
      | v ->
          let rargs = match result with None -> [] | Some g -> g v in
          record st fs tapped End name rargs;
          v
      | exception e ->
          let eargs = [ ("exception", Str (Printexc.to_string e)) ] in
          record st fs tapped End name eargs;
          raise e)

let instant ?(args = []) name =
  let st = Atomic.get current in
  let fs = Atomic.get flight in
  if st <> None || fs <> None || Atomic.get taps_active > 0 then
    record st fs true Instant name args

let snapshot_rings st =
  Mutex.lock st.reg_mutex;
  let rings = st.rings in
  Mutex.unlock st.reg_mutex;
  (* snapshot each ring's length so concurrent recording after this point
     is invisible; sort by domain id for a canonical ring order *)
  List.sort (fun (a, _) (b, _) -> compare a.r_dom b.r_dom)
    (List.map (fun r -> (r, r.r_len)) rings)

(* K-way merge ordered by (ts, dom).  Heads are consumed in per-ring
   order, so one domain's events are never reordered even if its clock
   stepped backward; ties across domains break by domain id, making the
   merged stream a pure function of the buffers. *)
let events () =
  match Atomic.get current with
  | None -> []
  | Some st ->
      let rings = Array.of_list (snapshot_rings st) in
      let idx = Array.map (fun _ -> 0) rings in
      let out = ref [] in
      let continue = ref true in
      while !continue do
        let best = ref (-1) in
        Array.iteri
          (fun i (r, len) ->
            if idx.(i) < len then
              match !best with
              | -1 -> best := i
              | b ->
                  let rb, _ = rings.(b) in
                  let eb = rb.r_events.(idx.(b))
                  and ei = r.r_events.(idx.(i)) in
                  if ei.ts < eb.ts || (ei.ts = eb.ts && ei.dom < eb.dom) then
                    best := i)
          rings;
        if !best < 0 then continue := false
        else begin
          let r, _ = rings.(!best) in
          out := r.r_events.(idx.(!best)) :: !out;
          idx.(!best) <- idx.(!best) + 1
        end
      done;
      List.rev !out

let dropped () =
  match Atomic.get current with
  | None -> 0
  | Some st ->
      List.fold_left (fun acc (r, _) -> acc + r.r_dropped) 0 (snapshot_rings st)

(* Flight snapshot: each ring's slots in chronological order (from the
   oldest surviving slot through the newest write), then a stable sort by
   (ts, dom).  Writers may lap the snapshot mid-read — each slot read is
   still a whole event (a single pointer load), so the result is always a
   list of well-formed events even if the window edges tear. *)
let flight_events ?trace () =
  match Atomic.get flight with
  | None -> []
  | Some fs ->
      Mutex.lock fs.fl_mutex;
      let rings = fs.fl_rings in
      Mutex.unlock fs.fl_mutex;
      let ring_events r =
        let cap = Array.length r.f_events in
        let next = r.f_next and total = r.f_total in
        let n = min total cap in
        let first = if total <= cap then 0 else next in
        List.init n (fun i -> r.f_events.((first + i) mod cap))
      in
      let evs = List.concat_map ring_events rings in
      let evs =
        match trace with
        | None -> evs
        | Some id -> List.filter (fun ev -> ev.trace = Some id) evs
      in
      List.stable_sort
        (fun a b ->
          if a.ts <> b.ts then compare a.ts b.ts else compare a.dom b.dom)
        evs

(* {1 Chrome trace-event export}

   The JSON Object Format: {"traceEvents": [...]}.  Spans become "B"/"E"
   pairs, instants "i" with thread scope; one tid per domain; timestamps
   in microseconds.  Metadata events name the process and each domain so
   Perfetto's track labels are readable. *)

let arg_json = function
  | Int i -> Json.int i
  | Float f -> Json.num f
  | Str s -> Json.str s
  | Bool b -> Json.bool b

let chrome_event ev =
  let fields =
    [
      ("name", Json.str ev.name);
      ("cat", Json.str "owl");
      ( "ph",
        Json.str (match ev.ph with Begin -> "B" | End -> "E" | Instant -> "i")
      );
      ("ts", Printf.sprintf "%.3f" (ev.ts *. 1e6));
      ("pid", "1");
      ("tid", Json.int ev.dom);
    ]
  in
  let fields =
    match ev.ph with
    | Instant -> fields @ [ ("s", Json.str "t") ]
    | Begin | End -> fields
  in
  let args =
    match ev.trace with
    | Some id when not (List.mem_assoc "trace" ev.args) ->
        ("trace", Str id) :: ev.args
    | _ -> ev.args
  in
  let fields =
    match args with
    | [] -> fields
    | args ->
        fields
        @ [ ("args", Json.obj (List.map (fun (k, v) -> (k, arg_json v)) args))
          ]
  in
  Json.obj fields

let chrome_doc ?(tail = []) evs =
  let doms = List.sort_uniq compare (List.map (fun ev -> ev.dom) evs) in
  let meta =
    Json.obj
      [
        ("name", Json.str "process_name");
        ("ph", Json.str "M");
        ("pid", "1");
        ("args", Json.obj [ ("name", Json.str "owl") ]);
      ]
    :: List.map
         (fun d ->
           Json.obj
             [
               ("name", Json.str "thread_name");
               ("ph", Json.str "M");
               ("pid", "1");
               ("tid", Json.int d);
               ( "args",
                 Json.obj
                   [ ("name", Json.str (Printf.sprintf "domain %d" d)) ] );
             ])
         doms
  in
  Json.obj
    [
      ("traceEvents", Json.arr (meta @ List.map chrome_event evs @ tail));
      ("displayTimeUnit", Json.str "ms");
    ]

let chrome_trace_string () =
  let n_dropped = dropped () in
  let tail =
    if n_dropped = 0 then []
    else
      [
        Json.obj
          [
            ("name", Json.str "obs.dropped_events");
            ("cat", Json.str "owl");
            ("ph", Json.str "i");
            ("ts", "0");
            ("pid", "1");
            ("tid", "0");
            ("s", Json.str "g");
            ("args", Json.obj [ ("count", Json.int n_dropped) ]);
          ];
      ]
  in
  chrome_doc ~tail (events ())

let write_chrome_trace oc = output_string oc (chrome_trace_string ())
let flight_trace_string ?trace () = chrome_doc (flight_events ?trace ())

(* {1 Metrics}

   A flat registry of named counters, gauges, log₂-bucketed histograms,
   and sliding-window histograms.  The registry is mutex-guarded (metric
   handles are created once, at module initialization of the instrumented
   libraries); recording through a handle is atomic operations only.  The
   enabled flag makes the disabled path one load and a branch, like
   tracing. *)

let metrics_on = Atomic.make false
let enable_metrics () = Atomic.set metrics_on true
let disable_metrics () = Atomic.set metrics_on false
let metrics_enabled () = Atomic.get metrics_on

type counter = { c_name : string; c_value : int Atomic.t }

type gauge = { g_name : string; g_value : int Atomic.t; g_set : bool Atomic.t }

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_min : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array;  (* 64: bucket 0 = "<= 0", i = 2^(i-1).. *)
}

(* One slot per second of the window; a slot is reset (under its own
   mutex, at most once per second) the first time an observation lands in
   a new second that maps onto it. *)
type wslot = {
  ws_sec : int Atomic.t;  (* epoch second this slot holds; -1 = empty *)
  ws_count : int Atomic.t;
  ws_sum : int Atomic.t;
  ws_buckets : int Atomic.t array;
  ws_lock : Mutex.t;
}

type window = { w_name : string; w_seconds : int; w_slots : wslot array }

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32
let windows : (string, window) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c
  in
  Mutex.unlock registry_mutex;
  c

let gauge name =
  Mutex.lock registry_mutex;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g =
          { g_name = name; g_value = Atomic.make 0; g_set = Atomic.make false }
        in
        Hashtbl.add gauges name g;
        g
  in
  Mutex.unlock registry_mutex;
  g

let histogram name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_min = Atomic.make max_int;
            h_max = Atomic.make min_int;
            h_buckets = Array.init 64 (fun _ -> Atomic.make 0);
          }
        in
        Hashtbl.add histograms name h;
        h
  in
  Mutex.unlock registry_mutex;
  h

let default_window_seconds = 60

let window ?(seconds = default_window_seconds) name =
  if seconds < 1 then invalid_arg "Obs.window: seconds < 1";
  Mutex.lock registry_mutex;
  let w =
    match Hashtbl.find_opt windows name with
    | Some w -> w
    | None ->
        let w =
          {
            w_name = name;
            w_seconds = seconds;
            w_slots =
              Array.init seconds (fun _ ->
                  {
                    ws_sec = Atomic.make (-1);
                    ws_count = Atomic.make 0;
                    ws_sum = Atomic.make 0;
                    ws_buckets = Array.init 64 (fun _ -> Atomic.make 0);
                    ws_lock = Mutex.create ();
                  });
          }
        in
        Hashtbl.add windows name w;
        w
  in
  Mutex.unlock registry_mutex;
  w

let incr ?(by = 1) c =
  if Atomic.get metrics_on then ignore (Atomic.fetch_and_add c.c_value by)

let set_gauge g v =
  if Atomic.get metrics_on then begin
    Atomic.set g.g_value v;
    Atomic.set g.g_set true
  end

let gauge_value g = Atomic.get g.g_value

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min 63 (bits 0 v)
  end

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let observe h v =
  if Atomic.get metrics_on then begin
    Atomic.incr h.h_count;
    ignore (Atomic.fetch_and_add h.h_sum v);
    atomic_min h.h_min v;
    atomic_max h.h_max v;
    Atomic.incr h.h_buckets.(bucket_of v)
  end

let observe_window w v =
  if Atomic.get metrics_on then begin
    let now = int_of_float (Unix.gettimeofday ()) in
    let slot = w.w_slots.(now mod w.w_seconds) in
    if Atomic.get slot.ws_sec <> now then begin
      Mutex.lock slot.ws_lock;
      if Atomic.get slot.ws_sec <> now then begin
        Atomic.set slot.ws_count 0;
        Atomic.set slot.ws_sum 0;
        Array.iter (fun b -> Atomic.set b 0) slot.ws_buckets;
        Atomic.set slot.ws_sec now
      end;
      Mutex.unlock slot.ws_lock
    end;
    (* an observation racing the reset above can land in the freshly
       cleared slot or be cleared with the stale second — a one-in-a-slot
       attribution blur that sliding-window telemetry tolerates *)
    Atomic.incr slot.ws_count;
    ignore (Atomic.fetch_and_add slot.ws_sum v);
    Atomic.incr slot.ws_buckets.(bucket_of v)
  end

(* Merge the slots still inside the window into one bucket array. *)
let window_totals w =
  let now = int_of_float (Unix.gettimeofday ()) in
  let count = ref 0 and sum = ref 0 in
  let buckets = Array.make 64 0 in
  Array.iter
    (fun s ->
      let sec = Atomic.get s.ws_sec in
      if sec >= 0 && now - sec < w.w_seconds then begin
        count := !count + Atomic.get s.ws_count;
        sum := !sum + Atomic.get s.ws_sum;
        Array.iteri
          (fun i b -> buckets.(i) <- buckets.(i) + Atomic.get b)
          s.ws_buckets
      end)
    w.w_slots;
  (!count, !sum, buckets)

type metric = {
  metric_name : string;
  metric_kind : [ `Counter | `Gauge | `Histogram | `Window ];
  count : int;
  sum : int;
  min_value : int;
  max_value : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

(* Log-scale quantile with linear interpolation inside the landing
   bucket: bucket [i >= 1] spans [2^(i-1), 2^i - 1]; the estimate walks
   [q * total] observations into the cumulative distribution and places
   the result proportionally within the bucket's range, clamped to the
   observed min/max when the caller tracks them.  (Reporting the bucket's
   upper bound, as this used to, overstated skewed tails by up to 2×.) *)
let quantile ?(clamp_lo = 0) ?(clamp_hi = max_int) buckets total q =
  if total = 0 then 0
  else begin
    let rank = Float.max 1e-9 (q *. float_of_int total) in
    let acc = ref 0 and landing = ref (-1) and i = ref 0 in
    while !landing < 0 && !i < Array.length buckets do
      let b = buckets.(!i) in
      if b > 0 && float_of_int (!acc + b) >= rank then landing := !i
      else begin
        acc := !acc + b;
        Stdlib.incr i
      end
    done;
    let est =
      match !landing with
      | -1 | 0 -> 0 (* bucket 0 holds values <= 0 *)
      | i ->
          let lo = 1 lsl (i - 1) in
          let hi = if i >= 62 then max_int else (1 lsl i) - 1 in
          let frac =
            (rank -. float_of_int !acc) /. float_of_int buckets.(i)
          in
          lo
          + int_of_float
              (Float.round (float_of_int (hi - lo) *. Float.min 1.0 frac))
    in
    min clamp_hi (max clamp_lo est)
  end

let metrics () =
  Mutex.lock registry_mutex;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
  let gs = Hashtbl.fold (fun _ g acc -> g :: acc) gauges [] in
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
  let ws = Hashtbl.fold (fun _ w acc -> w :: acc) windows [] in
  Mutex.unlock registry_mutex;
  let counter_metrics =
    List.filter_map
      (fun c ->
        let v = Atomic.get c.c_value in
        if v = 0 then None
        else
          Some
            {
              metric_name = c.c_name;
              metric_kind = `Counter;
              count = v;
              sum = v;
              min_value = 0;
              max_value = 0;
              p50 = 0;
              p90 = 0;
              p99 = 0;
            })
      cs
  in
  let gauge_metrics =
    List.filter_map
      (fun g ->
        if not (Atomic.get g.g_set) then None
        else
          let v = Atomic.get g.g_value in
          Some
            {
              metric_name = g.g_name;
              metric_kind = `Gauge;
              count = v;
              sum = v;
              min_value = 0;
              max_value = 0;
              p50 = 0;
              p90 = 0;
              p99 = 0;
            })
      gs
  in
  let histogram_metrics =
    List.filter_map
      (fun h ->
        let count = Atomic.get h.h_count in
        if count = 0 then None
        else begin
          let buckets = Array.map Atomic.get h.h_buckets in
          let lo = Atomic.get h.h_min and hi = Atomic.get h.h_max in
          Some
            {
              metric_name = h.h_name;
              metric_kind = `Histogram;
              count;
              sum = Atomic.get h.h_sum;
              min_value = lo;
              max_value = hi;
              p50 = quantile ~clamp_lo:lo ~clamp_hi:hi buckets count 0.50;
              p90 = quantile ~clamp_lo:lo ~clamp_hi:hi buckets count 0.90;
              p99 = quantile ~clamp_lo:lo ~clamp_hi:hi buckets count 0.99;
            }
        end)
      hs
  in
  let window_metrics =
    List.filter_map
      (fun w ->
        let count, sum, buckets = window_totals w in
        if count = 0 then None
        else
          Some
            {
              metric_name = w.w_name;
              metric_kind = `Window;
              count;
              sum;
              min_value = 0;
              max_value = 0;
              p50 = quantile buckets count 0.50;
              p90 = quantile buckets count 0.90;
              p99 = quantile buckets count 0.99;
            })
      ws
  in
  List.sort
    (fun a b -> compare a.metric_name b.metric_name)
    (counter_metrics @ gauge_metrics @ histogram_metrics @ window_metrics)

let summary_table () =
  let ms = metrics () in
  let b = Buffer.create 1024 in
  let hists =
    List.filter
      (fun m -> m.metric_kind = `Histogram || m.metric_kind = `Window)
      ms
  in
  let counts = List.filter (fun m -> m.metric_kind = `Counter) ms in
  let gs = List.filter (fun m -> m.metric_kind = `Gauge) ms in
  if counts <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun m -> Buffer.add_string b (Printf.sprintf "  %-36s %12d\n" m.metric_name m.count))
      counts
  end;
  if gs <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun m -> Buffer.add_string b (Printf.sprintf "  %-36s %12d\n" m.metric_name m.count))
      gs
  end;
  if hists <> [] then begin
    Buffer.add_string b
      (Printf.sprintf
         "histograms (p50/p90/p99 interpolated within log2 buckets):\n");
    Buffer.add_string b
      (Printf.sprintf "  %-36s %8s %12s %10s %7s %7s %7s %7s %9s\n" "name"
         "count" "sum" "mean" "min" "p50" "p90" "p99" "max");
    List.iter
      (fun m ->
        Buffer.add_string b
          (Printf.sprintf "  %-36s %8d %12d %10.1f %7d %7d %7d %7d %9d\n"
             m.metric_name m.count m.sum
             (float_of_int m.sum /. float_of_int (max 1 m.count))
             m.min_value m.p50 m.p90 m.p99 m.max_value))
      hists
  end;
  if ms = [] then Buffer.add_string b "no metrics recorded\n";
  Buffer.contents b

let reset_metrics () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.iter
    (fun _ g ->
      Atomic.set g.g_value 0;
      Atomic.set g.g_set false)
    gauges;
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0;
      Atomic.set h.h_min max_int;
      Atomic.set h.h_max min_int;
      Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    histograms;
  Hashtbl.iter
    (fun _ w ->
      Array.iter
        (fun s ->
          Atomic.set s.ws_sec (-1);
          Atomic.set s.ws_count 0;
          Atomic.set s.ws_sum 0;
          Array.iter (fun b -> Atomic.set b 0) s.ws_buckets)
        w.w_slots)
    windows;
  Mutex.unlock registry_mutex
