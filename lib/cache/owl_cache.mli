(** Content-addressed, on-disk synthesis cache.

    Small per-instruction CEGIS queries are structurally stable across
    runs, sketch edits, and [jobs] settings, which makes them memoize
    well.  This store keys each synthesis problem by a {e fingerprint} —
    the SHA-256 of a canonical document combining {!Term.serialize} output
    (deterministic: same DAG ⇒ same bytes in every process) with the
    solver-relevant options — and persists two tiers per fingerprint:

    - the {b result tier} maps an exact problem fingerprint to the solved
      hole bindings plus the ground constraint terms they were proven
      against.  A hit is re-validated by concrete evaluation before being
      trusted, so a stale or corrupted entry degrades to a miss, never to
      a wrong answer;
    - the {b warm tier} is keyed by a coarser per-instruction key that
      survives sketch edits, and persists the accumulated counterexample
      constraints plus the learned SAT clauses (stamped with the exact
      fingerprint they were learned on).  Near-miss problems replay the
      counterexamples to skip early CEGIS rounds; the clauses are only
      replayed when the exact fingerprint still matches, because clause
      reuse is sound only under identical variable numbering.

    {b Crash and concurrency safety.}  Every write goes to a unique
    temporary file in the entry's directory and is published with
    [Unix.rename], which is atomic on POSIX — readers see either the old
    complete entry or the new complete entry, never a torn one, and
    concurrent writers (worker domains, or whole concurrent processes
    sharing one cache directory) at worst overwrite each other with
    equally valid entries.  Entries are version-stamped and checksummed;
    any mismatch, truncation, or parse failure reads as a miss.  Write
    failures (permissions, full disk) are swallowed: the cache can slow a
    run down by missing, but it can never break one. *)

type t
(** An open cache handle.  Handles are safe to share across domains: the
    hit/miss accounting is atomic and the store itself is append-only
    files published by atomic rename. *)

val format_version : int
(** Bumped whenever the entry encoding changes; entries stamped with any
    other version read as misses. *)

val open_dir : string -> t
(** Opens (creating if needed, parents included) a cache rooted at the
    given directory.  Raises [Unix.Unix_error] if the directory cannot be
    created or is not writable. *)

val dir : t -> string

(** {1 Fingerprints} *)

val fingerprint : string -> string
(** SHA-256 hex of a canonical key document.  Callers build the document
    from {!Term.serialize} output plus option lines; this just hashes. *)

(** {1 Per-handle accounting}

    Mirrored into the [cache.hit] / [cache.miss] / [cache.stale] /
    [cache.write] observability counters, but also kept as plain atomics
    on the handle so the CLI and the bench harness can report rates
    without enabling metrics globally. *)

type counters = {
  hits : int;  (** validated result hits + warm hits *)
  misses : int;  (** entry absent *)
  stale : int;
      (** entry present but unusable: version mismatch, truncation,
          checksum or parse failure, or failed re-validation *)
  writes : int;  (** entries successfully published *)
}

val counters : t -> counters

(** {1 Result tier} *)

val store_result :
  t ->
  fp:string ->
  bindings:(string * Bitvec.t) list ->
  constraints:Term.t list ->
  unit
(** Publishes solved hole bindings for an exact problem fingerprint,
    together with the ground constraint terms the solve proved them
    against (the evidence a later {!lookup_result} re-checks).
    Best-effort: write failures are swallowed. *)

val lookup_result :
  t ->
  fp:string ->
  validate:((string * Bitvec.t) list -> Term.t list -> bool) ->
  (string * Bitvec.t) list option
(** Looks up an exact fingerprint.  On a structurally sound entry the
    [validate] callback receives the stored bindings and constraint terms
    and must confirm them (the engine evaluates every constraint
    concretely under the bindings); [false] — or any exception — marks
    the entry stale and returns [None].  Only a validated entry counts as
    a hit. *)

(** {1 Warm tier} *)

type warm = {
  exact_fp : string;
      (** the exact problem fingerprint the clauses were learned on *)
  clauses : int list list;
      (** learned SAT clauses ({!Solver.Session.export_learnt}); replay
          {b only} when [exact_fp] equals the current problem fingerprint *)
  cex : Term.t list;
      (** accumulated counterexample constraints over hole variables,
          oldest first — replayable across sketch edits because the engine
          re-proves everything they imply *)
}

val store_warm : t -> key:string -> warm -> unit
(** Publishes warm-start state under a per-instruction key (already a
    fingerprint; see {!fingerprint}).  Best-effort like {!store_result}. *)

val lookup_warm : t -> key:string -> warm option
(** Structurally validated warm state, or [None] (miss or stale).  The
    caller still owes the soundness guards documented on {!warm}. *)

(** {1 Maintenance (the [owl cache] subcommands)} *)

type disk_stats = {
  result_entries : int;
  warm_entries : int;
  total_bytes : int;
}

val disk_stats : t -> disk_stats

val clear : t -> int
(** Removes every entry (and stray temporary file); returns how many
    files were deleted.  The directory structure is kept. *)

(** {1 In-process LRU}

    The hot tier the [owl serve] daemon puts in front of this store: a
    bounded, mutex-guarded, string-keyed LRU mapping problem fingerprints
    to already-computed values (encoded replies, in the daemon), so repeat
    problems from any client are answered without touching the solver or
    the disk tiers.  Purely in-memory; nothing here survives the process.
    Safe to share across domains and threads — every operation takes the
    internal lock for its pointer surgery only.

    Accounting mirrors the on-disk tiers: per-handle counters plus the
    [cache.hot.hit] / [cache.hot.miss] / [cache.hot.eviction] metrics. *)
module Lru : sig
  type 'v t

  val create : capacity:int -> 'v t
  (** A tier holding at most [capacity] entries; least-recently-used
      entries are evicted to make room.  [capacity = 0] is a valid
      always-miss tier ({!add} is a no-op), the [--hot-tier-size 0]
      escape hatch.  Raises [Invalid_argument] if [capacity < 0]. *)

  val capacity : 'v t -> int

  val find : 'v t -> string -> 'v option
  (** O(1); a hit refreshes the entry's recency. *)

  val add : 'v t -> string -> 'v -> unit
  (** Inserts or overwrites, evicting from the cold end on overflow. *)

  type stats = { hits : int; misses : int; evictions : int; size : int }

  val stats : 'v t -> stats
end
